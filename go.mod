module netplace

go 1.24
