package netplace_test

import (
	"fmt"

	"netplace"
	"netplace/internal/graph"
)

// A tiny two-site network: nodes 0-2 are site A (cheap LAN links), node 3
// is reached over an expensive WAN link and serves nodes 3-5 (site B).
func twoSites() *netplace.Instance {
	g := graph.New(6)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 2, 0.5)
	g.AddEdge(0, 3, 8) // WAN
	g.AddEdge(3, 4, 0.5)
	g.AddEdge(3, 5, 0.5)
	storage := []float64{2, 2, 2, 2, 2, 2}
	obj := netplace.Object{
		Name:   "doc",
		Reads:  []int64{4, 6, 5, 2, 7, 6},
		Writes: []int64{0, 1, 0, 0, 1, 0},
	}
	in, err := netplace.NewInstance(g, storage, []netplace.Object{obj})
	if err != nil {
		panic(err)
	}
	return in
}

// ExampleSolve runs the paper's approximation algorithm on a two-site
// network whose WAN link makes a single copy expensive: a copy appears in
// each site.
func ExampleSolve() {
	in := twoSites()
	p := netplace.Solve(in)
	fmt.Println("copies:", p.Copies[0])
	b := netplace.Cost(in, p)
	fmt.Printf("storage %.1f read %.1f update %.1f\n", b.Storage, b.Read, b.Update)
	// Output:
	// copies: [0 1 2 4 5]
	// storage 10.0 read 1.0 update 21.0
}

// ExampleSolveTree computes the exactly optimal placement on the same
// network (it happens to be a tree) with the Section 3 dynamic program.
func ExampleSolveTree() {
	in := twoSites()
	p, err := netplace.SolveTree(in)
	if err != nil {
		panic(err)
	}
	cost, err := netplace.TreeCost(in, p)
	if err != nil {
		panic(err)
	}
	fmt.Println("copies:", p.Copies[0])
	fmt.Printf("optimal tree cost %.1f\n", cost)
	// Output:
	// copies: [0 1 4 5]
	// optimal tree cost 30.5
}

// ExampleCost prices hand-picked what-if placements without solving: a
// single copy pays WAN reads, while a copy on each side of the WAN link
// nearly matches full replication at a third of the storage.
func ExampleCost() {
	in := twoSites()
	for _, c := range [][]int{{0}, {0, 1, 2, 3, 4, 5}, {1, 4}} {
		p := netplace.Placement{Copies: [][]int{c}}
		fmt.Printf("copies %v cost %.1f\n", c, netplace.Cost(in, p).Total())
	}
	// Output:
	// copies [0] cost 143.0
	// copies [0 1 2 3 4 5] cost 32.0
	// copies [1 4] cost 36.0
}

// ExampleSimulate replays every request hop by hop; the metered bill equals
// the analytic objective.
func ExampleSimulate() {
	in := twoSites()
	p := netplace.Solve(in)
	st, err := netplace.Simulate(in, p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("metered %.1f analytic %.1f\n", st.Total(), netplace.Cost(in, p).Total())
	// Output:
	// metered 32.0 analytic 32.0
}
