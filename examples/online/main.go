// Online example — what is knowing the request frequencies worth?
//
// The paper solves the *static* problem: frequencies are given up front.
// Its related work (Awerbuch–Bartal–Fiat; Maggs et al.) studies the
// *dynamic* problem where requests arrive one at a time. This example puts
// both on the same footing: a request sequence is drawn from a frequency
// table, the static algorithm places copies from the table (clairvoyant),
// and the dynamic strategy adapts online — replicating toward read traffic
// and invalidating write-battered replicas — paying pro-rata storage rent.
package main

import (
	"fmt"
	"math/rand"

	"netplace"
	"netplace/internal/gen"
	"netplace/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	g := gen.Clustered(gen.ClusteredParams{
		Clusters: 6, ClusterSize: 5,
		IntraWeight: 0.3, InterWeight: 3, Backbone: 0.3,
	}, rng)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 3
	}

	fmt.Println("online (adaptive) vs static (frequency-aware) on drawn sequences")
	fmt.Printf("%12s %12s %12s %10s %12s %10s\n",
		"write frac", "online cost", "static cost", "ratio", "replications", "drops")
	for _, wf := range []float64{0, 0.1, 0.3, 0.6} {
		objs := workload.Generate(n, workload.Spec{
			Objects: 3, MeanRate: 5, WriteFraction: wf, ZipfS: 0.8,
		}, rng)
		in, err := netplace.NewInstance(g.Clone(), storage, objs)
		if err != nil {
			panic(err)
		}
		seq := netplace.DrawSequence(in, 800, rng)
		if len(seq) == 0 {
			continue
		}
		on := netplace.SolveOnline(in, seq)
		static := netplace.SequenceCost(in, netplace.Solve(in), seq)
		fmt.Printf("%12.2f %12.1f %12.1f %10.2f %12d %10d\n",
			wf, on.Total(), static, on.Total()/static, on.Replications, on.Drops)
	}
	fmt.Println("\nratio > 1 is the price of not knowing the future: the online strategy")
	fmt.Println("pays to discover read clusters (replications) and to learn, write by")
	fmt.Println("write, which replicas are not worth updating (drops).")
}
