// VSM example — cache lines in a virtual shared memory system on a mesh of
// processors (the paper's third motivating scenario). Each processor node
// both computes and holds memory; moving a cache line across the mesh costs
// per hop, pinning a replica costs memory.
//
// The example sweeps the write intensity of a shared cache line and shows
// the replication collapse: read-mostly lines are replicated near their
// readers, write-hot lines degrade to a single home node. The chosen
// placements are then replayed through the message-level simulator to show
// the actual traffic.
package main

import (
	"fmt"

	"netplace"
	"netplace/internal/gen"
)

func main() {
	const side = 6
	g := gen.Grid(side, side, gen.UnitWeights) // 6x6 processor mesh, unit fee per hop
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 3 // memory pressure per pinned replica
	}
	fmt.Printf("processor mesh %dx%d (%d nodes, %d links)\n\n", side, side, n, g.M())

	// Four processors in opposite corners hammer the same cache line; the
	// rest touch it occasionally.
	corners := []int{0, side - 1, n - side, n - 1}
	fmt.Printf("%12s %8s %10s %12s %12s %14s\n",
		"write share", "copies", "cost", "read part", "update part", "sim messages")
	for _, wshare := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0} {
		obj := netplace.Object{
			Name:   "cacheline",
			Reads:  make([]int64, n),
			Writes: make([]int64, n),
		}
		const perCorner = 40
		w := int64(wshare * perCorner)
		for _, c := range corners {
			obj.Writes[c] = w
			obj.Reads[c] = perCorner - w
		}
		for v := 0; v < n; v++ {
			if obj.Reads[v] == 0 && obj.Writes[v] == 0 {
				obj.Reads[v] = 1
			}
		}
		in, err := netplace.NewInstance(g.Clone(), storage, []netplace.Object{obj})
		if err != nil {
			panic(err)
		}
		p := netplace.Solve(in)
		b := netplace.Cost(in, p)
		st, err := netplace.Simulate(in, p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%12.2f %8d %10.1f %12.1f %12.1f %14d\n",
			wshare, len(p.Copies[0]), b.Total(), b.Read, b.Update, st.Messages)
	}

	fmt.Println("\nplacement detail at write share 0.1:")
	obj := netplace.Object{Name: "cacheline", Reads: make([]int64, n), Writes: make([]int64, n)}
	for _, c := range corners {
		obj.Reads[c] = 36
		obj.Writes[c] = 4
	}
	for v := 0; v < n; v++ {
		if obj.Reads[v] == 0 {
			obj.Reads[v] = 1
		}
	}
	in, err := netplace.NewInstance(g.Clone(), storage, []netplace.Object{obj})
	if err != nil {
		panic(err)
	}
	p := netplace.Solve(in)
	has := make(map[int]bool)
	for _, c := range p.Copies[0] {
		has[c] = true
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			cell := "."
			if has[r*side+c] {
				cell = "#"
			}
			fmt.Printf(" %s", cell)
		}
		fmt.Println()
	}
	fmt.Println("(# = replica; corners are the hot readers)")
}
