// Adaptive example — what if the frequencies are not known, but can be
// learned?
//
// The paper's algorithm needs the request frequencies up front; the
// online strategy (examples/online) needs nothing but adapts by
// counting. The streaming engine sits between them: it estimates
// frequencies from the live request stream over a sliding window and
// re-solves the placement at epoch boundaries through the same
// incremental machinery the placement service uses, moving copies only
// when the estimated saving pays for the migration.
//
// This demo drives all three strategies over one drifting trace — the
// hotspot demand migrates to a different part of the network mid-trace —
// under identical accounting, and prints the per-epoch bills: watch the
// adaptive strategy converge after each drift while the clairvoyant
// static placement (solved from the *average* tables) overpays in both
// halves and the counter strategy keeps paying to rediscover locality.
package main

import (
	"fmt"
	"math/rand"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/stream"
	"netplace/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(4242))
	g := gen.Clustered(gen.ClusteredParams{
		Clusters: 4, ClusterSize: 5,
		IntraWeight: 0.3, InterWeight: 3, Backbone: 0.3,
	}, rng)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 2 + rng.Float64()*2
	}

	// Two demand regimes with hotspots on different node groups; the
	// static solver sees only the summed (average) tables.
	avg, seq := stream.Drift(n, 2, 600, rng, func(phase int) []core.Object {
		r2 := rand.New(rand.NewSource(int64(1000 + phase)))
		return workload.Generate(n, workload.Spec{
			Objects: 2, MeanRate: 3, WriteFraction: 0.15, ZipfS: 0.8,
			Hotspot: 0.7, HotspotNodes: 5,
		}, r2)
	})
	in := core.MustInstance(g, storage, avg)

	cmp := stream.Compare(in, seq, stream.Config{Epoch: 50, Window: 4})
	fmt.Printf("drifting trace: %d events, %d epochs of %d (drift at epoch %d)\n\n",
		cmp.Events, cmp.Epochs, cmp.EpochEvents, cmp.Epochs/2+1)
	fmt.Printf("%6s %10s %10s %10s\n", "epoch", "static", "online", "adaptive")
	for k := 0; k < cmp.Epochs; k++ {
		fmt.Printf("%6d %10.1f %10.1f %10.1f\n",
			k+1, cmp.Static.PerEpoch[k], cmp.Online.PerEpoch[k], cmp.Adaptive.PerEpoch[k])
	}
	fmt.Printf("\n%-9s %10.1f\n", "static", cmp.Static.Total())
	fmt.Printf("%-9s %10.1f  (%d replications, %d drops)\n",
		"online", cmp.Online.Total(), cmp.Online.Replications, cmp.Online.Drops)
	fmt.Printf("%-9s %10.1f  (%d moves over %d re-solves, %.1f migration fees)\n",
		"adaptive", cmp.Adaptive.Total(), cmp.Adaptive.Moves, cmp.Adaptive.Resolves,
		cmp.Adaptive.Migration)
	fmt.Println("\nthe adaptive engine pays estimation lag and migration fees, but unlike")
	fmt.Println("the static solve it follows the drift, and unlike the counter strategy")
	fmt.Println("it re-places from estimated frequencies instead of rediscovering them")
	fmt.Println("one replication threshold at a time.")
}
