// CDN example — the scenario from the paper's introduction: a content
// provider serves WWW pages over a commercial network, paying per
// transmitted byte on links and per stored byte in memory modules.
//
// The network is a two-level Internet-like clustered topology (cheap access
// links, expensive backbone); page popularity is Zipf distributed; a small
// fraction of requests are updates (page edits). The example sweeps the
// storage fee — the price of renting memory — and shows how the optimal
// degree of replication reacts, comparing the paper's algorithm with full
// replication ("mirror everywhere") and a single central server.
package main

import (
	"fmt"
	"math/rand"

	"netplace"
	"netplace/internal/gen"
	"netplace/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := gen.Clustered(gen.ClusteredParams{
		Clusters:    8,
		ClusterSize: 6,
		IntraWeight: 0.2, // cheap access links
		InterWeight: 4.0, // expensive backbone
		Backbone:    0.3,
	}, rng)
	n := g.N()
	fmt.Printf("content network: %d nodes (%d gateways), %d links\n\n", n, 8, g.M())

	objs := workload.Generate(n, workload.Spec{
		Objects:       12,
		MeanRate:      6,
		WriteFraction: 0.08, // occasional page updates
		ZipfS:         1.0,  // classic WWW popularity skew
	}, rng)

	fmt.Println("storage-fee sweep (per stored page):")
	fmt.Printf("%10s %14s %14s %14s %14s\n", "fee", "approx copies", "approx cost", "mirror-all", "central")
	for _, fee := range []float64{0.1, 1, 4, 16, 64} {
		storage := make([]float64, n)
		for v := range storage {
			storage[v] = fee
		}
		in, err := netplace.NewInstance(g.Clone(), storage, objs)
		if err != nil {
			panic(err)
		}
		p := netplace.Solve(in)
		copies := 0
		for i := range p.Copies {
			copies += len(p.Copies[i])
		}
		approx := netplace.Cost(in, p).Total()
		mirror := netplace.Cost(in, netplace.FullReplication(in)).Total()
		central := netplace.Cost(in, netplace.SingleBest(in)).Total()
		fmt.Printf("%10.1f %14.1f %14.1f %14.1f %14.1f\n",
			fee, float64(copies)/float64(len(objs)), approx, mirror, central)
	}

	fmt.Println("\nper-object replication at fee=4 (popularity rank -> copies):")
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 4
	}
	in, err := netplace.NewInstance(g.Clone(), storage, objs)
	if err != nil {
		panic(err)
	}
	p := netplace.Solve(in)
	for i := range objs {
		vol := objs[i].TotalReads() + objs[i].TotalWrites()
		fmt.Printf("  %-8s volume %5d -> %d copies at %v\n",
			objs[i].Name, vol, len(p.Copies[i]), p.Copies[i])
	}
}
