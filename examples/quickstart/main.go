// Quickstart: build a small network, describe one shared object's read and
// write traffic, and compare the paper's approximation algorithm against
// naive strategies.
package main

import (
	"fmt"

	"netplace"
	"netplace/internal/graph"
)

func main() {
	// A nine-node network: two office LANs (cheap links) joined by an
	// expensive WAN link. Nodes 0-3 are site A, 4 is the WAN router hub of
	// site B, 5-8 are site B workstations.
	g := graph.New(9)
	for _, v := range []int{1, 2, 3} {
		g.AddEdge(0, v, 0.5) // site A LAN
	}
	g.AddEdge(0, 4, 10) // WAN link: expensive per transmitted object
	for _, v := range []int{5, 6, 7, 8} {
		g.AddEdge(4, v, 0.5) // site B LAN
	}

	// Storing a copy costs 3 per node, a bit more on the WAN routers.
	storage := []float64{5, 3, 3, 3, 5, 3, 3, 3, 3}

	// One shared document: site A mostly reads it, site B edits it.
	obj := netplace.Object{
		Name:   "design-doc",
		Reads:  []int64{2, 9, 8, 7, 0, 3, 2, 2, 1},
		Writes: []int64{0, 0, 1, 0, 0, 4, 3, 2, 2},
	}

	in, err := netplace.NewInstance(g, storage, []netplace.Object{obj})
	if err != nil {
		panic(err)
	}

	p := netplace.Solve(in)
	fmt.Printf("approximation algorithm places copies at nodes %v\n", p.Copies[0])
	report(in, "approx     ", p)
	report(in, "single-best", netplace.SingleBest(in))
	report(in, "full-repl  ", netplace.FullReplication(in))
	report(in, "greedy-add ", netplace.GreedyAdd(in))

	// Replay the workload message by message: the metered bill equals the
	// analytic cost the optimiser used.
	st, err := netplace.Simulate(in, p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsimulated %d requests in %d messages; metered total %.2f\n",
		st.Requests, st.Messages, st.Total())
}

func report(in *netplace.Instance, name string, p netplace.Placement) {
	b := netplace.Cost(in, p)
	fmt.Printf("%s  copies=%d  storage=%7.2f  read=%7.2f  update=%7.2f  total=%8.2f\n",
		name, len(p.Copies[0]), b.Storage, b.Read, b.Update, b.Total())
}
