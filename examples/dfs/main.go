// DFS example — files in a distributed file system for Ethernet-connected
// workstations (the paper's second motivating scenario). The interconnect
// is a tree: workstations hang off switches, switches off a building
// router. On trees the paper's Section 3 dynamic program computes the
// exactly optimal placement; the example contrasts it with the general
// approximation algorithm and verifies the DP's optimality on this
// instance by exhaustive search.
package main

import (
	"fmt"
	"math/rand"

	"netplace"
	"netplace/internal/graph"
	"netplace/internal/tree"
)

func main() {
	// Building network: router (0) — 3 floor switches — 4 workstations
	// each. Switch uplinks are pricier than workstation links.
	g := graph.New(16)
	sw := []int{1, 2, 3}
	for _, s := range sw {
		g.AddEdge(0, s, 2.0)
	}
	for si, s := range sw {
		for k := 0; k < 4; k++ {
			g.AddEdge(s, 4+si*4+k, 0.5)
		}
	}
	n := g.N()

	// Storage: workstations have cheap disk, switches/router cost more
	// (they'd need attached storage).
	storage := make([]float64, n)
	for v := 0; v < n; v++ {
		switch {
		case v == 0:
			storage[v] = 8
		case v <= 3:
			storage[v] = 6
		default:
			storage[v] = 2
		}
	}

	// Three files with different sharing patterns.
	rng := rand.New(rand.NewSource(3))
	objs := []netplace.Object{
		hotFile("shared-lib", n, rng),      // read everywhere, rarely written
		teamFile("team-doc", n, 4, 8, rng), // floor-1 team reads and writes
		scratch("scratch", n, 12, rng),     // one workstation's scratch file
	}

	in, err := netplace.NewInstance(g, storage, objs)
	if err != nil {
		panic(err)
	}

	opt, err := netplace.SolveTree(in)
	if err != nil {
		panic(err)
	}
	optCost, _ := netplace.TreeCost(in, opt)
	fmt.Println("optimal placements (Section 3 tree DP):")
	for i := range objs {
		fmt.Printf("  %-10s -> copies at %v\n", objs[i].Name, opt.Copies[i])
	}
	fmt.Printf("  total tree-model cost: %.2f\n\n", optCost)

	// Verify optimality per object by brute force (the repo's test suite
	// does this on hundreds of random trees; here on the live instance).
	for i := range objs {
		_, want := tree.BruteForce(in.G, in.Storage, objs[i].Reads, objs[i].Writes)
		got := tree.ObjectCost(in.G, in.Storage, objs[i].Reads, objs[i].Writes, opt.Copies[i])
		fmt.Printf("  %-10s DP %.3f vs exhaustive %.3f\n", objs[i].Name, got, want)
	}

	// The general-network approximation on the same instance.
	ap := netplace.Solve(in)
	apCost, _ := netplace.TreeCost(in, ap)
	fmt.Printf("\napproximation algorithm on the same tree: cost %.2f (%.1f%% above optimal)\n",
		apCost, 100*(apCost/optCost-1))
}

func hotFile(name string, n int, rng *rand.Rand) netplace.Object {
	o := netplace.Object{Name: name, Reads: make([]int64, n), Writes: make([]int64, n)}
	for v := 4; v < n; v++ {
		o.Reads[v] = 5 + rng.Int63n(10)
	}
	o.Writes[4] = 1 // maintainer
	return o
}

func teamFile(name string, n, lo, hi int, rng *rand.Rand) netplace.Object {
	o := netplace.Object{Name: name, Reads: make([]int64, n), Writes: make([]int64, n)}
	for v := lo; v < hi; v++ {
		o.Reads[v] = 3 + rng.Int63n(6)
		o.Writes[v] = 1 + rng.Int63n(4)
	}
	return o
}

func scratch(name string, n, owner int, rng *rand.Rand) netplace.Object {
	o := netplace.Object{Name: name, Reads: make([]int64, n), Writes: make([]int64, n)}
	o.Reads[owner] = 10 + rng.Int63n(10)
	o.Writes[owner] = 5 + rng.Int63n(10)
	return o
}
