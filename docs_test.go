package netplace_test

// This file is the repository's documentation gate, run by CI alongside
// gofmt and go vet: every package must carry a package-level doc comment,
// every exported symbol (type, function, method, and var/const — at the
// declaration-group level, per godoc convention) must carry a doc
// comment, every HTTP route the service registers must be documented in
// docs/http-api.md, and every examples/ directory must be referenced
// from README.md. It is a test rather than a separate linter binary so
// that `go test ./...` enforces it without external tooling.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// sourceDirs returns every directory under the module root that contains
// non-test Go files, skipping hidden directories.
func sourceDirs(t *testing.T) []string {
	t.Helper()
	seen := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs
}

// TestPackageDocComments asserts that every package has a package-level doc
// comment on at least one of its files.
func TestPackageDocComments(t *testing.T) {
	for _, dir := range sourceDirs(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatal(err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package-level doc comment", name, dir)
			}
		}
	}
}

// TestExportedSymbolDocComments asserts that every exported top-level
// symbol carries a doc comment. Grouped var/const declarations satisfy the
// rule with one comment on the group; struct fields and interface methods
// are out of scope (they document themselves through their type's comment
// when short).
func TestExportedSymbolDocComments(t *testing.T) {
	var missing []string
	for _, dir := range sourceDirs(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					missing = append(missing, undocumented(fset, decl)...)
				}
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("missing doc comment: %s", m)
	}
}

// undocumented returns the exported, uncommented symbols of one top-level
// declaration, formatted as "position: name".
func undocumented(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		out = append(out, fmt.Sprintf("%s: %s %s", fset.Position(pos), kind, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) > 0 {
			recv := receiverType(d.Recv.List[0].Type)
			if recv != "" && !ast.IsExported(recv) {
				return nil // method on an unexported type
			}
			name = recv + "." + name
		}
		report(d.Pos(), "func", name)
	case *ast.GenDecl:
		if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
			return nil
		}
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				// A type in a grouped decl (type ( A; B )) needs its own
				// comment unless the group has one.
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && !groupDoc {
					report(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil || groupDoc {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), d.Tok.String(), n.Name)
					}
				}
			}
		}
	}
	return out
}

// routePattern matches the method+path literals registered on the
// service mux, e.g. `HandleFunc("POST /instances/{id}/solve"`.
var routePattern = regexp.MustCompile(`HandleFunc\("((?:GET|POST|PUT|DELETE|PATCH) [^"]+)"`)

// TestHTTPRoutesDocumented asserts that every HTTP route registered in
// internal/service/server.go appears verbatim (method and path) in
// docs/http-api.md — the docs cannot silently fall behind the API.
func TestHTTPRoutesDocumented(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("internal", "service", "server.go"))
	if err != nil {
		t.Fatal(err)
	}
	matches := routePattern.FindAllStringSubmatch(string(src), -1)
	if len(matches) < 10 {
		t.Fatalf("found only %d routes in internal/service/server.go; pattern rot?", len(matches))
	}
	docs, err := os.ReadFile(filepath.Join("docs", "http-api.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if !strings.Contains(string(docs), m[1]) {
			t.Errorf("route %q registered in internal/service/server.go but missing from docs/http-api.md", m[1])
		}
	}
}

// TestExamplesReferenced asserts that every examples/ directory is
// referenced from README.md, so shipped examples stay discoverable.
func TestExamplesReferenced(t *testing.T) {
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(string(readme), "examples/"+e.Name()) &&
			!strings.Contains(string(readme), "`"+e.Name()+"`") {
			t.Errorf("examples/%s is not referenced from README.md", e.Name())
		}
	}
}

// TestDocsCrossLinked asserts that the docs/ pages are linked from
// README.md and ARCHITECTURE.md.
func TestDocsCrossLinked(t *testing.T) {
	pages, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil || len(pages) < 3 {
		t.Fatalf("docs pages missing (%v): %v", pages, err)
	}
	for _, top := range []string{"README.md", "ARCHITECTURE.md"} {
		buf, err := os.ReadFile(top)
		if err != nil {
			t.Fatal(err)
		}
		for _, page := range pages {
			if !strings.Contains(string(buf), filepath.ToSlash(page)) {
				t.Errorf("%s does not link %s", top, page)
			}
		}
	}
}

// TestPersistenceDocs asserts the durability layer stays documented:
// docs/persistence.md exists and covers the data-dir flag, the WAL, and
// recovery; the HTTP API page links it (the /statz persistence fields
// live there); and cmd/netplaced's doc comment mentions -data-dir.
func TestPersistenceDocs(t *testing.T) {
	page, err := os.ReadFile(filepath.Join("docs", "persistence.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"-data-dir", "write-ahead", "wal_discarded_bytes", "recovered_sessions", "-no-sync"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("docs/persistence.md does not mention %q", want)
		}
	}
	api, err := os.ReadFile(filepath.Join("docs", "http-api.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(api), "persistence.md") {
		t.Error("docs/http-api.md does not link persistence.md")
	}
	cmd, err := os.ReadFile(filepath.Join("cmd", "netplaced", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(cmd), "-data-dir") || !strings.Contains(string(cmd), "docs/persistence.md") {
		t.Error("cmd/netplaced doc comment does not cover -data-dir / docs/persistence.md")
	}
}

// TestResilienceDocs asserts the overload-resilience layer stays
// documented: docs/resilience.md exists and covers admission control,
// deadlines, stale reads, idempotent retries, and group commit; the
// HTTP API page links it (the 429/headers/statz fields live there); and
// cmd/netplaced's doc comment mentions the new knobs.
func TestResilienceDocs(t *testing.T) {
	page, err := os.ReadFile(filepath.Join("docs", "resilience.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"-max-queue", "Retry-After", "X-Netplace-Deadline",
		"X-Netplace-Allow-Stale", "-fsync-interval", "deduped_batches",
		"/readyz", "429",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("docs/resilience.md does not mention %q", want)
		}
	}
	api, err := os.ReadFile(filepath.Join("docs", "http-api.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(api), "resilience.md") {
		t.Error("docs/http-api.md does not link resilience.md")
	}
	cmd, err := os.ReadFile(filepath.Join("cmd", "netplaced", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(cmd), "-max-queue") || !strings.Contains(string(cmd), "docs/resilience.md") {
		t.Error("cmd/netplaced doc comment does not cover -max-queue / docs/resilience.md")
	}
}

// TestClusterDocs asserts the scale-out layer stays documented:
// docs/cluster.md exists and covers the membership flags, the hash
// ring, the hop guard, the peer cache, and the merged stats view; the
// HTTP API page links it (the probe route and peer counters live
// there); and the two cluster-aware commands' doc comments point at it.
func TestClusterDocs(t *testing.T) {
	page, err := os.ReadFile(filepath.Join("docs", "cluster.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"-cluster", "-self", "-peer-cache", "-no-forward",
		"consistent-hash", "X-Netplace-Forwarded", "/statz?cluster=1",
		"byte-identical", "-peers",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("docs/cluster.md does not mention %q", want)
		}
	}
	api, err := os.ReadFile(filepath.Join("docs", "http-api.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(api), "cluster.md") {
		t.Error("docs/http-api.md does not link cluster.md")
	}
	daemon, err := os.ReadFile(filepath.Join("cmd", "netplaced", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(daemon), "-cluster") || !strings.Contains(string(daemon), "docs/cluster.md") {
		t.Error("cmd/netplaced doc comment does not cover -cluster / docs/cluster.md")
	}
	replay, err := os.ReadFile(filepath.Join("cmd", "netreplay", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(replay), "-peers") || !strings.Contains(string(replay), "docs/cluster.md") {
		t.Error("cmd/netreplay doc comment does not cover -peers / docs/cluster.md")
	}
}

// receiverType extracts the receiver's type name from a method receiver
// expression (*T, T, or generic T[...]).
func receiverType(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
