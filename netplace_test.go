package netplace

import (
	"math"
	"math/rand"
	"testing"

	"netplace/internal/gen"
	"netplace/internal/tree"
	"netplace/internal/workload"
)

func exampleInstance(t *testing.T, treeTopo bool, seed int64) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	topo := "clustered"
	if treeTopo {
		topo = "random-tree"
	}
	g, err := gen.Build(topo, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 1 + rng.Float64()*5
	}
	objs := workload.Generate(n, workload.Spec{Objects: 2, MeanRate: 4, WriteFraction: 0.25, ZipfS: 0.7}, rng)
	in, err := NewInstance(g, storage, objs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveEndToEnd(t *testing.T) {
	in := exampleInstance(t, false, 1)
	p := Solve(in)
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
	b := Cost(in, p)
	if b.Total() <= 0 || math.IsInf(b.Total(), 0) {
		t.Fatalf("implausible cost %v", b)
	}
	// The algorithm must beat naive full replication on a write-bearing
	// clustered workload.
	if fr := Cost(in, FullReplication(in)); fr.Total() < b.Total() {
		t.Fatalf("full replication (%v) beat the algorithm (%v)", fr.Total(), b.Total())
	}
}

func TestSolveTreeEndToEnd(t *testing.T) {
	in := exampleInstance(t, true, 2)
	p, err := SolveTree(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
	optCost, err := TreeCost(in, p)
	if err != nil {
		t.Fatal(err)
	}
	// Exact optimum must not lose to any baseline under the tree model.
	for name, bp := range map[string]Placement{
		"single-best": SingleBest(in),
		"full-repl":   FullReplication(in),
		"greedy":      GreedyAdd(in),
	} {
		c, err := TreeCost(in, bp)
		if err != nil {
			t.Fatal(err)
		}
		if c < optCost-1e-9 {
			t.Fatalf("%s cost %v beats tree optimum %v", name, c, optCost)
		}
	}
}

func TestSolveTreeRejectsNonTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.Ring(12, gen.UnitWeights)
	storage := make([]float64, 12)
	objs := workload.Generate(12, workload.Spec{Objects: 1, MeanRate: 3}, rng)
	in, err := NewInstance(g, storage, objs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveTree(in); err == nil {
		t.Fatal("non-tree accepted")
	}
	if _, err := TreeCost(in, SingleBest(in)); err == nil {
		t.Fatal("non-tree accepted by TreeCost")
	}
}

func TestSimulateMatchesCost(t *testing.T) {
	in := exampleInstance(t, false, 4)
	p := Solve(in)
	st, err := Simulate(in, p)
	if err != nil {
		t.Fatal(err)
	}
	want := Cost(in, p).Total()
	if math.Abs(st.Total()-want) > 1e-6*(1+want) {
		t.Fatalf("simulated %v, analytic %v", st.Total(), want)
	}
}

func TestFacilitySolversExposed(t *testing.T) {
	in := exampleInstance(t, false, 5)
	solvers := FacilitySolvers()
	for _, name := range []string{"local-search", "jain-vazirani", "mettu-plaxton"} {
		fl, ok := solvers[name]
		if !ok {
			t.Fatalf("missing solver %q", name)
		}
		p := SolveWithOptions(in, Options{FL: fl})
		if err := p.Validate(in); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFacilityOnlyBaseline(t *testing.T) {
	in := exampleInstance(t, false, 6)
	p := FacilityOnly(in)
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineFacade(t *testing.T) {
	in := exampleInstance(t, false, 9)
	rng := rand.New(rand.NewSource(4))
	seq := DrawSequence(in, 300, rng)
	if len(seq) != 300 {
		t.Fatalf("sequence length %d", len(seq))
	}
	st := SolveOnline(in, seq)
	if st.Total() <= 0 {
		t.Fatalf("online cost %v", st.Total())
	}
	static := SequenceCost(in, Solve(in), seq)
	if static <= 0 {
		t.Fatalf("static sequence cost %v", static)
	}
	if st.Total() > 30*static {
		t.Fatalf("online %v implausibly worse than static %v", st.Total(), static)
	}
}

func TestSolveTreeParallelConsistency(t *testing.T) {
	// SolveTree fans objects over goroutines; per-object results must match
	// a direct sequential solve.
	in := exampleInstance(t, true, 12)
	p, err := SolveTree(in)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.Build(in.G, 0)
	for i := range in.Objects {
		obj := &in.Objects[i]
		want, _ := tr.Solve(in.Storage, obj.Reads, obj.Writes)
		if len(want) != len(p.Copies[i]) {
			t.Fatalf("object %d: parallel %v vs sequential %v", i, p.Copies[i], want)
		}
		for k := range want {
			if want[k] != p.Copies[i][k] {
				t.Fatalf("object %d: parallel %v vs sequential %v", i, p.Copies[i], want)
			}
		}
	}
}
