// Benchmarks regenerating the evaluation suite: one benchmark per
// experiment table (E1–E18, see EXPERIMENTS.md), plus
// micro-benchmarks of the core algorithmic kernels. Run with
//
//	go test -bench=. -benchmem
package netplace

import (
	"fmt"
	"math/rand"
	"testing"

	"netplace/internal/benchkit"
	"netplace/internal/core"
	"netplace/internal/exper"
	"netplace/internal/facility"
	"netplace/internal/gen"
	"netplace/internal/metric"
	"netplace/internal/stream"
	"netplace/internal/tree"
	"netplace/internal/workload"
)

var benchSink float64 // defeats dead-code elimination

func benchTable(b *testing.B, fn func(exper.Config) exper.Table) {
	b.Helper()
	cfg := exper.Config{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := fn(cfg)
		benchSink += float64(len(t.Rows))
	}
}

// One benchmark per experiment table.

func BenchmarkE1ApproxRatio(b *testing.B)    { benchTable(b, exper.E1ApproxRatio) }
func BenchmarkE2TreeOptimality(b *testing.B) { benchTable(b, exper.E2TreeOptimality) }
func BenchmarkE2TreeScaling(b *testing.B)    { benchTable(b, exper.E2TreeScaling) }
func BenchmarkE3WriteSweep(b *testing.B)     { benchTable(b, exper.E3WriteSweep) }
func BenchmarkE4StorageSweep(b *testing.B)   { benchTable(b, exper.E4StorageSweep) }
func BenchmarkE5Baselines(b *testing.B)      { benchTable(b, exper.E5Baselines) }
func BenchmarkE6LoadModel(b *testing.B)      { benchTable(b, exper.E6LoadModel) }
func BenchmarkE7MSTvsSteiner(b *testing.B)   { benchTable(b, exper.E7MSTvsSteiner) }
func BenchmarkE8Restricted(b *testing.B)     { benchTable(b, exper.E8RestrictedGap) }
func BenchmarkE9Scale(b *testing.B)          { benchTable(b, exper.E9Scale) }
func BenchmarkE10Phases(b *testing.B)        { benchTable(b, exper.E10Phases) }
func BenchmarkE11FLChoice(b *testing.B)      { benchTable(b, exper.E11FLChoice) }
func BenchmarkE12Netsim(b *testing.B)        { benchTable(b, exper.E12Netsim) }
func BenchmarkE13Online(b *testing.B)        { benchTable(b, exper.E13Online) }
func BenchmarkE14Congestion(b *testing.B)    { benchTable(b, exper.E14Congestion) }
func BenchmarkE15Capacity(b *testing.B)      { benchTable(b, exper.E15Capacity) }
func BenchmarkE16Sizes(b *testing.B)         { benchTable(b, exper.E16Sizes) }
func BenchmarkE17Latency(b *testing.B)       { benchTable(b, exper.E17Latency) }
func BenchmarkE18Adaptive(b *testing.B)      { benchTable(b, exper.E18AdaptiveStreaming) }

// Micro-benchmarks of the algorithmic kernels.

func benchInstance(n, objects int, writeFrac float64) *core.Instance {
	rng := rand.New(rand.NewSource(17))
	g, err := gen.Build("clustered", n, rng)
	if err != nil {
		panic(err)
	}
	nn := g.N()
	storage := make([]float64, nn)
	for v := range storage {
		storage[v] = 2 + rng.Float64()*6
	}
	objs := workload.Generate(nn, workload.Spec{Objects: objects, MeanRate: 4, WriteFraction: writeFrac, ZipfS: 0.8}, rng)
	return core.MustInstance(g, storage, objs)
}

func BenchmarkApproximateN100(b *testing.B) {
	in := benchInstance(100, 1, 0.3)
	in.Dist() // exclude APSP warm-up from the measured loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.Approximate(in, core.Options{FL: facility.MettuPlaxton})
		benchSink += float64(len(p.Copies[0]))
	}
}

func BenchmarkApproximateLocalSearchN60(b *testing.B) {
	in := benchInstance(60, 1, 0.3)
	in.Dist()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.Approximate(in, core.Options{FL: facility.LocalSearch})
		benchSink += float64(len(p.Copies[0]))
	}
}

func benchTreeSolve(b *testing.B, build func(n int) int, n int) {
	b.Helper()
	_ = build
	rng := rand.New(rand.NewSource(23))
	g := gen.RandomTree(n, rng, gen.UniformWeights(rng, 1, 5))
	storage := make([]float64, n)
	reads := make([]int64, n)
	writes := make([]int64, n)
	for v := 0; v < n; v++ {
		storage[v] = 1 + rng.Float64()*9
		reads[v] = rng.Int63n(10)
		writes[v] = rng.Int63n(3)
	}
	tr := tree.Build(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cost := tr.Solve(storage, reads, writes)
		benchSink += cost
	}
}

func BenchmarkTreeSolveN100(b *testing.B)  { benchTreeSolve(b, nil, 100) }
func BenchmarkTreeSolveN1000(b *testing.B) { benchTreeSolve(b, nil, 1000) }

func BenchmarkTreeSolvePathN500(b *testing.B) {
	n := 500
	g := gen.Path(n, gen.UnitWeights)
	rng := rand.New(rand.NewSource(5))
	storage := make([]float64, n)
	reads := make([]int64, n)
	writes := make([]int64, n)
	for v := 0; v < n; v++ {
		storage[v] = 1 + rng.Float64()*9
		reads[v] = rng.Int63n(10)
		writes[v] = rng.Int63n(3)
	}
	tr := tree.Build(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cost := tr.Solve(storage, reads, writes)
		benchSink += cost
	}
}

func BenchmarkDijkstraN400(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g, err := gen.Build("geometric", 400, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := g.Dijkstra(i % g.N())
		benchSink += d[g.N()-1]
	}
}

func BenchmarkFacilityLocalSearchN40(b *testing.B)  { benchFacility(b, facility.LocalSearch, 40) }
func BenchmarkFacilityJainVaziraniN40(b *testing.B) { benchFacility(b, facility.JainVazirani, 40) }
func BenchmarkFacilityMettuPlaxtonN40(b *testing.B) { benchFacility(b, facility.MettuPlaxton, 40) }

func benchFacility(b *testing.B, solve facility.Solver, n int) {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	g, err := gen.Build("er", n, rng)
	if err != nil {
		b.Fatal(err)
	}
	in := &facility.Instance{Open: make([]float64, g.N()), Demand: make([]int64, g.N()), Metric: metric.New(g.AllPairs())}
	for v := 0; v < g.N(); v++ {
		in.Open[v] = 2 + rng.Float64()*20
		in.Demand[v] = rng.Int63n(8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := solve(in)
		benchSink += float64(len(s))
	}
}

// Large-graph benchmarks: the perf trajectory of the oracle backends.
// Dense and Lazy are compared head-to-head at a size where the Θ(n²)
// matrix is still affordable (2500 nodes ≈ 50 MB); the 50k-node grid and
// interconnect runs are lazy-only — their dense matrices would need ~20 GB,
// which is exactly what the lazy backend exists to avoid. Run with
// -benchmem to see allocated bytes per solve.

func largeGridInstance(side int) *core.Instance {
	g := gen.Grid(side, side, gen.UnitWeights)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(3 + v%5)
	}
	obj := core.Object{Reads: make([]int64, n), Writes: make([]int64, n)}
	for v := 0; v < n; v++ {
		obj.Reads[v] = 1
		if v%1201 == 0 {
			obj.Writes[v] = 1
		}
	}
	return core.MustInstance(g, storage, []core.Object{obj})
}

func benchSolveBackend(b *testing.B, side int, backend core.MetricBackend) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := largeGridInstance(side) // fresh instance: include metric build cost
		p := core.Approximate(in, core.Options{Metric: backend, MetricRows: 64})
		benchSink += float64(len(p.Copies[0]))
	}
}

func BenchmarkSolveGrid2500Dense(b *testing.B) { benchSolveBackend(b, 50, core.MetricDense) }
func BenchmarkSolveGrid2500Lazy(b *testing.B)  { benchSolveBackend(b, 50, core.MetricLazy) }
func BenchmarkSolveGrid10kLazy(b *testing.B)   { benchSolveBackend(b, 100, core.MetricLazy) }
func BenchmarkSolveGrid50kLazy(b *testing.B)   { benchSolveBackend(b, 224, core.MetricLazy) }

func BenchmarkSolveInterconnect46kLazy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := gen.Torus(215, 215, gen.UnitWeights) // 46225-node wrap-around mesh
		n := g.N()
		storage := make([]float64, n)
		for v := range storage {
			storage[v] = float64(4 + v%3)
		}
		obj := core.Object{Reads: make([]int64, n), Writes: make([]int64, n)}
		for v := 0; v < n; v++ {
			obj.Reads[v] = 1
			if v%997 == 0 {
				obj.Writes[v] = 1
			}
		}
		in := core.MustInstance(g, storage, []core.Object{obj})
		p := core.Approximate(in, core.Options{Metric: core.MetricLazy, MetricRows: 64})
		benchSink += float64(len(p.Copies[0]))
	}
}

// Resident-instance kernels: the steady-state hot path of the placement
// service — repeated solves, sweeps and cost evaluations over one warm
// instance whose lazy oracle has already been built. These are the
// BENCH_PR3.json trajectory benchmarks; cmd/benchreport runs the same
// kernels programmatically over the same internal/benchkit fixture.

func residentInstance(objects int) *core.Instance {
	return benchkit.ResidentInstance(objects)
}

// BenchmarkResidentSolve2500Lazy measures a full re-solve of a warm
// resident instance: the oracle is already built, so the numbers isolate
// the solve pipeline itself (facility location, radii, phases, scratch).
func BenchmarkResidentSolve2500Lazy(b *testing.B) {
	in := residentInstance(8)
	core.Approximate(in, core.Options{Metric: core.MetricLazy, MetricRows: 64}) // warm oracle + pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.Approximate(in, core.Options{Metric: core.MetricLazy, MetricRows: 64})
		benchSink += float64(len(p.Copies[0]))
	}
}

// BenchmarkResidentSolve2500LazyParallel is the same re-solve with
// intra-solve parallelism on all cores (Options.Parallel < 0): sharded
// storage-radius scans, sharded Mettu–Plaxton payment balls, and
// partitioned phase-3 write-radius scans — output byte-identical to the
// serial kernel. Matches cmd/benchreport's resident_solve_2500_lazy_par.
func BenchmarkResidentSolve2500LazyParallel(b *testing.B) {
	in := residentInstance(8)
	opts := core.Options{Metric: core.MetricLazy, MetricRows: 64, Parallel: -1}
	core.Approximate(in, opts) // warm oracle + pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.Approximate(in, opts)
		benchSink += float64(len(p.Copies[0]))
	}
}

// BenchmarkResidentObjectCost2500Lazy measures pricing one placement on the
// warm instance — the kernel behind cost evaluation and what-if splicing.
func BenchmarkResidentObjectCost2500Lazy(b *testing.B) {
	in := residentInstance(1)
	p := core.Approximate(in, core.Options{Metric: core.MetricLazy, MetricRows: 64})
	obj := &in.Objects[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += in.ObjectCost(obj, p.Copies[0]).Total()
	}
}

// BenchmarkResidentNearestOf2500Lazy measures the multi-source sweep that
// underlies cost evaluation and the phase machinery — the allocation-free
// Into form with a reused buffer, matching cmd/benchreport's kernel of
// the same name.
func BenchmarkResidentNearestOf2500Lazy(b *testing.B) {
	in := residentInstance(1)
	p := core.Approximate(in, core.Options{Metric: core.MetricLazy, MetricRows: 64})
	o := in.Metric()
	copies := p.Copies[0]
	dst := make([]float64, in.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += metric.NearestOfInto(o, copies, dst)[0]
	}
}

// BenchmarkStreamEpoch2500Lazy measures one full streaming epoch (512
// events of exact accounting plus the estimate roll, incremental
// re-solve and hysteresis at the close) on the warm resident instance —
// the same workload as cmd/benchreport's stream_epoch_2500 kernel.
func BenchmarkStreamEpoch2500Lazy(b *testing.B) {
	in := residentInstance(8)
	rng := rand.New(rand.NewSource(7))
	const epoch = 512
	seq := workload.Sequence(in.Objects, epoch*64, rng)
	eng := stream.New(in, stream.Config{
		Epoch: epoch, Window: 4,
		Solve: core.Options{Metric: core.MetricLazy, MetricRows: 64},
	})
	feed := func(k int) {
		for i := 0; i < epoch; i++ {
			if _, err := eng.Observe(seq[(k*epoch+i)%len(seq)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	feed(0) // warm: first epoch close adopts the initial placement
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed(i + 1)
	}
	benchSink += eng.Stats().Total()
}

// BenchmarkStreamEpoch2500LazyParallel is the streaming epoch with the
// per-object re-solves sharded across all cores — the session hot path
// when netplaced runs with -parallel on. Matches cmd/benchreport's
// stream_epoch_2500_par kernel.
func BenchmarkStreamEpoch2500LazyParallel(b *testing.B) {
	in := residentInstance(8)
	rng := rand.New(rand.NewSource(7))
	const epoch = 512
	seq := workload.Sequence(in.Objects, epoch*64, rng)
	eng := stream.New(in, stream.Config{
		Epoch: epoch, Window: 4,
		Solve: core.Options{Metric: core.MetricLazy, MetricRows: 64, Parallel: -1},
	})
	feed := func(k int) {
		for i := 0; i < epoch; i++ {
			if _, err := eng.Observe(seq[(k*epoch+i)%len(seq)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	feed(0) // warm: first epoch close adopts the initial placement
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed(i + 1)
	}
	benchSink += eng.Stats().Total()
}

// BenchmarkLazyRowHitByBudget measures a cache-hit Row fetch with the cache
// filled to capacity at several budgets. Hit cost must be independent of
// MetricRows: the LRU bookkeeping is an intrusive list, not a scan of the
// eviction order.
func BenchmarkLazyRowHitByBudget(b *testing.B) {
	for _, rows := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			in := largeGridInstance(50) // 2500 nodes
			in.UseMetric(core.MetricLazy, rows)
			o := in.Metric()
			for u := 0; u < rows; u++ { // fill the cache to capacity
				o.Row(u)
			}
			const working = 32
			for u := rows - working; u < rows; u++ { // working set resident
				o.Row(u)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				row := o.Row(rows - working + i%working)
				benchSink += row[0]
			}
		})
	}
}

// BenchmarkLazyRowCache measures the row cache under a point-query pattern
// whose working set (the copy set) fits the budget.
func BenchmarkLazyRowCacheHits(b *testing.B) {
	in := largeGridInstance(100)
	in.UseMetric(core.MetricLazy, 64)
	o := in.Metric()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += o.Dist(i%32, (i*7919)%in.N())
	}
}

func BenchmarkSimulateClusteredN48(b *testing.B) {
	in := benchInstance(48, 2, 0.3)
	p := core.Approximate(in, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Simulate(in, p)
		if err != nil {
			b.Fatal(err)
		}
		benchSink += st.TransmissionCost
	}
}
