// Package netplace is a library for cost-based static data management in
// networks, reproducing Krick, Räcke and Westermann, "Approximation
// Algorithms for Data Management in Networks" (SPAA 2001).
//
// A network is an undirected graph whose edges carry transmission fees and
// whose nodes carry storage fees. For every shared object, each node issues
// read and write requests with known frequencies. The library computes
// placements of object copies minimising total cost = storage + reads to
// the nearest copy + write accesses + multicast updates:
//
//   - Solve runs the paper's combinatorial constant-factor approximation
//     for arbitrary networks (facility location phase, storage-radius
//     augmentation, write-radius thinning);
//   - SolveTree runs the paper's optimal O(|X|·|V|·diam·log deg) dynamic
//     program when the network is a tree;
//   - FullReplication, SingleBest, GreedyAdd and FacilityOnly are baseline
//     strategies; Cost evaluates any placement; Simulate replays the
//     request pattern message-by-message and meters the same costs.
//
// Beyond the in-process API, cmd/netplaced serves the same algorithms as a
// long-running HTTP/JSON service (instance registry, solve cache, batched
// what-if queries); the wire types it speaks — InstanceJSON, PlacementJSON
// and friends — are re-exported here so client code can build payloads
// without reaching into internal packages.
//
// See the examples/ directory for end-to-end usage, ARCHITECTURE.md for
// the layer map, and EXPERIMENTS.md for the evaluation reproducing the
// paper's guarantees.
package netplace

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/facility"
	"netplace/internal/netsim"
	"netplace/internal/online"
	"netplace/internal/tree"
	"netplace/internal/workload"
)

// Re-exported model types. Instance describes a network plus workload,
// Object one shared object's request frequencies, Placement a copy set per
// object, Breakdown a cost decomposition, and Options the approximation
// algorithm's tuning knobs.
type (
	Instance  = core.Instance
	Object    = core.Object
	Placement = core.Placement
	Breakdown = core.Breakdown
	Options   = core.Options
)

// NewInstance assembles and validates an instance from a connected network
// graph (see the graph sub-API via Builder functions), per-node storage
// fees, and per-object request frequencies.
var NewInstance = core.NewInstance

// MetricBackend selects the distance-oracle backend behind an instance's
// shortest-path metric (Options.Metric). The default, MetricAuto, picks a
// dense matrix for small networks, the O(1) LCA oracle for large tree
// networks, and a lazily computed row cache for everything bigger — so
// placements on 50k+-node sparse networks never materialize the Θ(n²)
// all-pairs matrix.
type MetricBackend = core.MetricBackend

// Distance-oracle backends for Options.Metric.
const (
	MetricAuto  = core.MetricAuto
	MetricDense = core.MetricDense
	MetricLazy  = core.MetricLazy
	MetricTree  = core.MetricTree
)

// Solve runs the paper's approximation algorithm with default parameters:
// the 5·rs and 4·rw thresholds of Section 2.2, with the phase-1 facility
// solver auto-selected by size (local search up to 2048 nodes, the
// ball-scanning Mettu–Plaxton beyond — see Options.FL).
func Solve(in *Instance) Placement {
	return core.Approximate(in, core.Options{})
}

// SolveWithOptions runs the approximation algorithm with explicit options.
func SolveWithOptions(in *Instance, opt Options) Placement {
	return core.Approximate(in, opt)
}

// SolveTree computes an exact optimal placement on tree networks using the
// Section 3 dynamic program. It returns an error if the network is not a
// tree or if any per-object solve produces an ill-formed result. Costs
// follow the Section 3 model in which a write pays the minimal subtree
// spanning the copies and the writer.
func SolveTree(in *Instance) (Placement, error) {
	if !in.G.IsTree() {
		return Placement{}, fmt.Errorf("netplace: network with %d nodes / %d edges is not a tree", in.G.N(), in.G.M())
	}
	t := tree.Build(in.G, 0)
	p := Placement{Copies: make([][]int, len(in.Objects))}
	costs := make([]float64, len(in.Objects))
	// Objects are independent (the paper solves them one at a time); fan
	// out across GOMAXPROCS workers. The Tree structure is read-only
	// during Solve, so sharing it is safe.
	solveOne := func(i int) {
		obj := &in.Objects[i]
		p.Copies[i], costs[i] = t.Solve(in.Storage, obj.Reads, obj.Writes)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(in.Objects) {
		workers = len(in.Objects)
	}
	if workers <= 1 {
		for i := range in.Objects {
			solveOne(i)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(in.Objects) {
						return
					}
					solveOne(i)
				}
			}()
		}
		wg.Wait()
	}
	// The DP's optimum is a witness for each result; an empty copy set or a
	// non-finite cost means the solve failed and must not pass silently.
	for i := range in.Objects {
		if len(p.Copies[i]) == 0 || math.IsInf(costs[i], 0) || math.IsNaN(costs[i]) {
			return Placement{}, fmt.Errorf("netplace: tree DP failed on object %d (%d copies, cost %v)",
				i, len(p.Copies[i]), costs[i])
		}
	}
	return p, nil
}

// Request re-exports the online request event type.
type Request = workload.Request

// OnlineStats aggregates a dynamic-strategy run.
type OnlineStats = online.Stats

// DrawSequence samples a request sequence whose empirical frequencies
// follow the instance's fr/fw tables — the input of the dynamic strategy.
func DrawSequence(in *Instance, length int, rng *rand.Rand) []Request {
	return workload.Sequence(in.Objects, length, rng)
}

// SolveOnline replays a request sequence with the dynamic count-based
// strategy (replicate on read-traffic threshold, invalidate idle replicas
// on writes) that sees requests one at a time; see internal/online and
// experiment E13 for how it compares against the frequency-aware static
// algorithm.
func SolveOnline(in *Instance, seq []Request) OnlineStats {
	return online.Run(in, seq, online.DefaultConfig())
}

// SequenceCost prices a static placement against a concrete request
// sequence with the same accounting the online strategy uses, making the
// two directly comparable.
func SequenceCost(in *Instance, p Placement, seq []Request) float64 {
	return online.StaticCost(in, p, seq)
}

// TreeCost evaluates a placement under the Section 3 tree cost model.
func TreeCost(in *Instance, p Placement) (float64, error) {
	if !in.G.IsTree() {
		return 0, fmt.Errorf("netplace: network is not a tree")
	}
	if err := p.Validate(in); err != nil {
		return 0, err
	}
	total := 0.0
	for i := range in.Objects {
		obj := &in.Objects[i]
		total += obj.Scale() * tree.ObjectCost(in.G, in.Storage, obj.Reads, obj.Writes, p.Copies[i])
	}
	return total, nil
}

// Cost evaluates a placement under the Section 2 (restricted) cost model:
// storage + nearest-copy reads and write accesses + W·MST multicast.
func Cost(in *Instance, p Placement) Breakdown { return in.Cost(p) }

// Baseline strategies (see EXPERIMENTS.md, experiment E5).
var (
	FullReplication = core.FullReplication
	SingleBest      = core.SingleBest
	GreedyAdd       = core.GreedyAdd
)

// FacilityOnly ignores update costs and solves the related facility
// location problem only (phase 1 of the approximation algorithm).
func FacilityOnly(in *Instance) Placement {
	return core.FacilityOnly(in, facility.LocalSearch)
}

// FacilitySolvers exposes the combinatorial UFL algorithms for use with
// Options.FL: "local-search", "jain-vazirani", "mettu-plaxton", "greedy".
func FacilitySolvers() map[string]facility.Solver {
	return map[string]facility.Solver{
		"local-search":  facility.LocalSearch,
		"jain-vazirani": facility.JainVazirani,
		"mettu-plaxton": facility.MettuPlaxton,
		"greedy":        facility.Greedy,
	}
}

// Wire-format types (the JSON schema shared by the cmd/placer and
// cmd/gennet files and the cmd/netplaced HTTP service): InstanceJSON is an
// on-disk/on-wire problem, EdgeJSON and ObjectJSON its parts, and
// PlacementJSON a copy set per object name.
type (
	InstanceJSON  = encode.InstanceJSON
	EdgeJSON      = encode.EdgeJSON
	ObjectJSON    = encode.ObjectJSON
	PlacementJSON = encode.PlacementJSON
)

// EncodeInstance converts an instance to its wire form; the inverse is
// InstanceJSON.Instance, which validates and assembles the model type.
func EncodeInstance(in *Instance) InstanceJSON { return encode.InstanceJSONOf(in) }

// EncodePlacement converts a validated placement to its wire form, keyed
// by object name; the inverse is PlacementJSON.Placement.
func EncodePlacement(in *Instance, p Placement) (PlacementJSON, error) {
	return encode.PlacementJSONOf(in, p)
}

// HashInstance returns the stable content hash of an instance — the
// identity under which the placement service registers and caches it.
func HashInstance(in *Instance) string { return encode.HashInstance(in) }

// WriteInstance serialises an instance as indented JSON.
func WriteInstance(w io.Writer, in *Instance) error { return encode.WriteInstance(w, in) }

// WritePlacement serialises a placement using the instance's object names.
func WritePlacement(w io.Writer, in *Instance, p Placement) error {
	return encode.WritePlacement(w, in, p)
}

// ReadInstance deserialises and validates an instance from JSON.
func ReadInstance(r io.Reader) (*Instance, error) { return encode.ReadInstance(r) }

// ReadPlacement deserialises a placement against an instance.
func ReadPlacement(r io.Reader, in *Instance) (Placement, error) {
	return encode.ReadPlacement(r, in)
}

// SimulationStats aggregates a message-level replay.
type SimulationStats = netsim.Stats

// Simulate replays the instance's full request pattern against a placement
// in a discrete-event, hop-by-hop network simulation and returns the
// metered costs; Stats.Total() equals Cost(in, p).Total() by construction
// (experiment E12 asserts this).
func Simulate(in *Instance, p Placement) (SimulationStats, error) {
	s, err := netsim.New(in, p)
	if err != nil {
		return SimulationStats{}, err
	}
	return s.Run(), nil
}
