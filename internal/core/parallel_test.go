package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"netplace/internal/facility"
	"netplace/internal/gen"
	"netplace/internal/graph"
)

// Object-level parallelism must be exact: same placements as sequential.
func TestApproximateParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomCoreInstance(rng, 14, 6, 0.4)
		seq := Approximate(in, Options{Workers: 1})
		// Workers 0 defaults to GOMAXPROCS (parallel), like negative values.
		for _, workers := range []int{0, 2, 4, -1} {
			par := Approximate(in, Options{Workers: workers})
			if !reflect.DeepEqual(seq.Copies, par.Copies) {
				t.Fatalf("seed %d workers %d: parallel diverged: %v vs %v",
					seed, workers, par.Copies, seq.Copies)
			}
		}
	}
}

// Intra-solve parallelism must be exact: a solve sharded across any
// number of workers is byte-identical to the serial solve, on every
// oracle backend (the sharded scans write disjoint per-node results whose
// values do not depend on the schedule).
func TestIntraSolveParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, tree := range []bool{false, true} {
			rng := rand.New(rand.NewSource(seed))
			n := 10 + rng.Intn(30)
			nobj := 1 + rng.Intn(3)
			for _, b := range instanceBackends(tree) {
				in := intWeightInstance(rand.New(rand.NewSource(seed)), n, nobj, tree)
				in.UseMetric(b, 3)
				serial := Approximate(in, Options{Workers: 1})
				for _, par := range []int{2, 4, 8, -1} {
					got := Approximate(in, Options{Workers: 1, Parallel: par})
					if !reflect.DeepEqual(got.Copies, serial.Copies) {
						t.Fatalf("seed %d tree=%v backend %v parallel %d: %v vs serial %v",
							seed, tree, b, par, got.Copies, serial.Copies)
					}
					// Workers and Parallel must compose without changing output.
					both := Approximate(in, Options{Workers: 2, Parallel: par})
					if !reflect.DeepEqual(both.Copies, serial.Copies) {
						t.Fatalf("seed %d tree=%v backend %v workers 2 x parallel %d diverged",
							seed, tree, b, par)
					}
				}
			}
		}
	}
}

// The Mettu–Plaxton phase-1 solver is the one that shards its own radius
// scans; pin it explicitly at higher write pressure so the parallel FL
// path is exercised even on instances small enough to auto-select local
// search.
func TestIntraSolveParallelMettuPlaxton(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomCoreInstance(rng, 40, 3, 0.6)
		in.UseMetric(MetricLazy, 8)
		serial := Approximate(in, Options{Workers: 1, FL: facility.MettuPlaxton})
		for _, par := range []int{2, 8} {
			got := Approximate(in, Options{Workers: 1, FL: facility.MettuPlaxton, Parallel: par})
			if !reflect.DeepEqual(got.Copies, serial.Copies) {
				t.Fatalf("seed %d parallel %d: Mettu–Plaxton parallel solve diverged", seed, par)
			}
		}
	}
}

func TestAllPairsParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(40, 0.15, rng, gen.UniformWeights(rng, 1, 9))
		want := g.AllPairs()
		for _, workers := range []int{2, 3, 0} {
			got := g.AllPairsParallel(workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d workers %d: parallel APSP differs", seed, workers)
			}
		}
	}
}

// Concurrent lazy metric initialisation must be race-free (run with -race).
func TestDistConcurrentInit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomCoreInstance(rng, 20, 1, 0.3)
	done := make(chan [][]float64, 8)
	for k := 0; k < 8; k++ {
		go func() { done <- in.Dist() }()
	}
	first := <-done
	for k := 1; k < 8; k++ {
		if other := <-done; &other[0] != &first[0] {
			t.Fatal("concurrent Dist() returned distinct matrices")
		}
	}
}

// large50k builds the 50k-node sparse fixture of the parallel-equivalence
// property test on the requested backend: the sparse-grid acceptance
// topology for the lazy oracle, a random integer-weight tree of the same
// size for the tree oracle (the dense backend is excluded — Θ(n²) memory).
// Demand is CDN-like: every node reads once, writers sit on a sparse
// residue class, so payment balls stay local and a solve is heavy enough
// for the sharded kernels to matter without making the test minutes long.
func large50k(t *testing.T, backend MetricBackend) *Instance {
	t.Helper()
	const side = 224 // 50176 nodes
	n := side * side
	var g *graph.Graph
	switch backend {
	case MetricLazy:
		g = gen.Grid(side, side, gen.UnitWeights)
	case MetricTree:
		rng := rand.New(rand.NewSource(77))
		g = gen.RandomTree(n, rng, func(u, v int) float64 { return float64(1 + rng.Intn(5)) })
	default:
		t.Fatalf("large50k: unsupported backend %v", backend)
	}
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(3 + v%5)
	}
	obj := Object{Reads: make([]int64, n), Writes: make([]int64, n)}
	for v := 0; v < n; v++ {
		obj.Reads[v] = 1
		if v%1201 == 0 {
			obj.Writes[v] = 1
		}
	}
	in := MustInstance(g, storage, []Object{obj})
	in.UseMetric(backend, 64)
	return in
}

// At 50k nodes every parallel knob — auto (which resolves GOMAXPROCS past
// AutoParallelMinNodes), explicit counts, and all-cores — must place
// byte-identically to a solve pinned serial, on both large-instance
// backends. This is the property the size-aware default rests on: auto
// may only change the schedule, never the placement.
func TestParallel50kByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-node solves in -short mode")
	}
	for _, backend := range []MetricBackend{MetricLazy, MetricTree} {
		in := large50k(t, backend)
		serial := Approximate(in, Options{Workers: 1, Parallel: 1})
		for _, par := range []int{0, 2, 4, -1} {
			got := Approximate(in, Options{Workers: 1, Parallel: par})
			if !reflect.DeepEqual(got.Copies, serial.Copies) {
				t.Fatalf("backend %v parallel %d: placement diverged from serial", backend, par)
			}
		}
	}
}

// The auto policy's resolution itself: unset Parallel stays serial below
// the threshold and fans out at it, explicit knobs are untouched.
func TestEffectiveParallelAutoPolicy(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct{ parallel, n, want int }{
		{0, AutoParallelMinNodes - 1, 1},
		{0, AutoParallelMinNodes, procs},
		{0, 2500, 1},
		{1, 1 << 20, 1},
		{3, 1 << 20, 3},
		{3, 10, 3},
		{-1, 10, procs},
	}
	for _, c := range cases {
		if got := EffectiveParallel(c.parallel, c.n); got != c.want {
			t.Fatalf("EffectiveParallel(%d, %d) = %d, want %d", c.parallel, c.n, got, c.want)
		}
	}
	// Options.parallelFor is the same resolution the solve pipeline uses.
	if got := (Options{Parallel: 0}).parallelFor(AutoParallelMinNodes); got != procs {
		t.Fatalf("parallelFor at threshold = %d, want %d", got, procs)
	}
	if got := (Options{Parallel: 0}).parallelFor(2500); got != 1 {
		t.Fatalf("parallelFor below threshold = %d, want 1", got)
	}
}
