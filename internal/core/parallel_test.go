package core

import (
	"math/rand"
	"reflect"
	"testing"

	"netplace/internal/gen"
)

// Object-level parallelism must be exact: same placements as sequential.
func TestApproximateParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomCoreInstance(rng, 14, 6, 0.4)
		seq := Approximate(in, Options{Workers: 1})
		// Workers 0 defaults to GOMAXPROCS (parallel), like negative values.
		for _, workers := range []int{0, 2, 4, -1} {
			par := Approximate(in, Options{Workers: workers})
			if !reflect.DeepEqual(seq.Copies, par.Copies) {
				t.Fatalf("seed %d workers %d: parallel diverged: %v vs %v",
					seed, workers, par.Copies, seq.Copies)
			}
		}
	}
}

func TestAllPairsParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(40, 0.15, rng, gen.UniformWeights(rng, 1, 9))
		want := g.AllPairs()
		for _, workers := range []int{2, 3, 0} {
			got := g.AllPairsParallel(workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d workers %d: parallel APSP differs", seed, workers)
			}
		}
	}
}

// Concurrent lazy metric initialisation must be race-free (run with -race).
func TestDistConcurrentInit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomCoreInstance(rng, 20, 1, 0.3)
	done := make(chan [][]float64, 8)
	for k := 0; k < 8; k++ {
		go func() { done <- in.Dist() }()
	}
	first := <-done
	for k := 1; k < 8; k++ {
		if other := <-done; &other[0] != &first[0] {
			t.Fatal("concurrent Dist() returned distinct matrices")
		}
	}
}
