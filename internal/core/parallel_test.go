package core

import (
	"math/rand"
	"reflect"
	"testing"

	"netplace/internal/facility"
	"netplace/internal/gen"
)

// Object-level parallelism must be exact: same placements as sequential.
func TestApproximateParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomCoreInstance(rng, 14, 6, 0.4)
		seq := Approximate(in, Options{Workers: 1})
		// Workers 0 defaults to GOMAXPROCS (parallel), like negative values.
		for _, workers := range []int{0, 2, 4, -1} {
			par := Approximate(in, Options{Workers: workers})
			if !reflect.DeepEqual(seq.Copies, par.Copies) {
				t.Fatalf("seed %d workers %d: parallel diverged: %v vs %v",
					seed, workers, par.Copies, seq.Copies)
			}
		}
	}
}

// Intra-solve parallelism must be exact: a solve sharded across any
// number of workers is byte-identical to the serial solve, on every
// oracle backend (the sharded scans write disjoint per-node results whose
// values do not depend on the schedule).
func TestIntraSolveParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, tree := range []bool{false, true} {
			rng := rand.New(rand.NewSource(seed))
			n := 10 + rng.Intn(30)
			nobj := 1 + rng.Intn(3)
			for _, b := range instanceBackends(tree) {
				in := intWeightInstance(rand.New(rand.NewSource(seed)), n, nobj, tree)
				in.UseMetric(b, 3)
				serial := Approximate(in, Options{Workers: 1})
				for _, par := range []int{2, 4, 8, -1} {
					got := Approximate(in, Options{Workers: 1, Parallel: par})
					if !reflect.DeepEqual(got.Copies, serial.Copies) {
						t.Fatalf("seed %d tree=%v backend %v parallel %d: %v vs serial %v",
							seed, tree, b, par, got.Copies, serial.Copies)
					}
					// Workers and Parallel must compose without changing output.
					both := Approximate(in, Options{Workers: 2, Parallel: par})
					if !reflect.DeepEqual(both.Copies, serial.Copies) {
						t.Fatalf("seed %d tree=%v backend %v workers 2 x parallel %d diverged",
							seed, tree, b, par)
					}
				}
			}
		}
	}
}

// The Mettu–Plaxton phase-1 solver is the one that shards its own radius
// scans; pin it explicitly at higher write pressure so the parallel FL
// path is exercised even on instances small enough to auto-select local
// search.
func TestIntraSolveParallelMettuPlaxton(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomCoreInstance(rng, 40, 3, 0.6)
		in.UseMetric(MetricLazy, 8)
		serial := Approximate(in, Options{Workers: 1, FL: facility.MettuPlaxton})
		for _, par := range []int{2, 8} {
			got := Approximate(in, Options{Workers: 1, FL: facility.MettuPlaxton, Parallel: par})
			if !reflect.DeepEqual(got.Copies, serial.Copies) {
				t.Fatalf("seed %d parallel %d: Mettu–Plaxton parallel solve diverged", seed, par)
			}
		}
	}
}

func TestAllPairsParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(40, 0.15, rng, gen.UniformWeights(rng, 1, 9))
		want := g.AllPairs()
		for _, workers := range []int{2, 3, 0} {
			got := g.AllPairsParallel(workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d workers %d: parallel APSP differs", seed, workers)
			}
		}
	}
}

// Concurrent lazy metric initialisation must be race-free (run with -race).
func TestDistConcurrentInit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomCoreInstance(rng, 20, 1, 0.3)
	done := make(chan [][]float64, 8)
	for k := 0; k < 8; k++ {
		go func() { done <- in.Dist() }()
	}
	first := <-done
	for k := 1; k < 8; k++ {
		if other := <-done; &other[0] != &first[0] {
			t.Fatal("concurrent Dist() returned distinct matrices")
		}
	}
}
