package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"netplace/internal/facility"
	"netplace/internal/metric"
)

// Options configures the Section 2 approximation algorithm. The zero value
// selects the paper's parameters.
type Options struct {
	// FL is the facility-location solver used in phase 1. Nil auto-selects:
	// local search (the combinatorial 5-approximation of Korupolu et al.)
	// up to DenseMetricMaxNodes nodes, and the ball-scanning Mettu–Plaxton
	// 3-approximation beyond it (local search is Θ(n²) per sweep and does
	// not survive large networks).
	FL facility.Solver
	// Phase2Factor is the storage-radius multiple beyond which a node
	// demands its own copy; the paper uses 5. Zero selects 5.
	Phase2Factor float64
	// Phase3Factor is the write-radius multiple within which a scanned copy
	// deletes another; the paper uses 4. Zero selects 4.
	Phase3Factor float64
	// SkipPhase2 / SkipPhase3 disable the respective phases (ablations E10).
	SkipPhase2 bool
	SkipPhase3 bool
	// Workers bounds the goroutines placing objects concurrently (the
	// paper's algorithm treats objects independently, so object-level
	// parallelism is exact). 0 and negative values select GOMAXPROCS;
	// 1 runs sequentially. The result is bit-identical to the sequential
	// run either way.
	Workers int
	// Metric overrides the instance's distance-oracle backend for this
	// solve (MetricAuto keeps whatever the instance selects).
	Metric MetricBackend
	// MetricRows bounds the lazy backend's row cache, in rows; 0 selects
	// the default budget. Ignored by the dense and tree backends.
	MetricRows int
}

func (o Options) fl(n int) facility.Solver {
	if o.FL != nil {
		return o.FL
	}
	if n > DenseMetricMaxNodes {
		return facility.MettuPlaxton
	}
	return facility.LocalSearch
}

func (o Options) p2() float64 {
	if o.Phase2Factor == 0 {
		return 5
	}
	return o.Phase2Factor
}

func (o Options) p3() float64 {
	if o.Phase3Factor == 0 {
		return 4
	}
	return o.Phase3Factor
}

func (o Options) workers() int {
	if o.Workers == 1 {
		return 1
	}
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Approximate runs the paper's three-phase constant-factor approximation
// algorithm (Section 2.2) independently for every object:
//
//  1. Solve the related facility location problem (writes become reads).
//  2. While some node v has no copy within Phase2Factor * rs(v), place a
//     copy on v.
//  3. Scan copy holders in ascending write radius; the scanned copy deletes
//     any other copy u with ct(u, v) <= Phase3Factor * rw(u).
//
// The result is a proper placement with k1 = 29, k2 = 2 (Lemma 8) whose
// storage cost is near-optimal (Lemma 9), hence a constant-factor
// approximation of the total cost (Theorem 7).
func Approximate(in *Instance, opt Options) Placement {
	if opt.Metric != MetricAuto {
		in.UseMetric(opt.Metric, opt.MetricRows)
	}
	p := Placement{Copies: make([][]int, len(in.Objects))}
	workers := opt.workers()
	if workers > len(in.Objects) {
		workers = len(in.Objects)
	}
	if workers <= 1 {
		for i := range in.Objects {
			p.Copies[i] = approximateObject(in, &in.Objects[i], opt)
		}
		return p
	}
	in.Metric() // resolve the shared oracle before fanning out
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(in.Objects) {
					return
				}
				p.Copies[i] = approximateObject(in, &in.Objects[i], opt)
			}
		}()
	}
	wg.Wait()
	return p
}

// approximateObject places a single object.
func approximateObject(in *Instance, obj *Object, opt Options) []int {
	n := in.N()
	o := in.Metric()
	req := obj.Requests()
	total := req.Total()
	if total == 0 {
		// Degenerate object nobody accesses: cheapest single copy.
		best := 0
		for v := 1; v < n; v++ {
			if in.Storage[v] < in.Storage[best] {
				best = v
			}
		}
		return []int{best}
	}

	// Phase 1: related facility location problem. Writes count as reads;
	// update costs are ignored.
	fl := &facility.Instance{Open: in.Storage, Demand: req.Count, Metric: o}
	copies := opt.fl(n)(fl)

	radii := metric.ComputeRadii(o, req, obj.TotalWrites(), in.Storage)

	has := make([]bool, n)
	near := make([]float64, n) // distance to nearest copy
	for v := range near {
		near[v] = graphInf
	}
	addCopy := func(c int) {
		has[c] = true
		metric.ImproveNearest(o, c, near)
	}
	for _, c := range copies {
		addCopy(c)
	}

	// Phase 2: add copies where the storage radius demands one.
	if !opt.SkipPhase2 {
		k := opt.p2()
		for {
			added := false
			for v := 0; v < n; v++ {
				if !has[v] && near[v] > k*radii[v].RS {
					addCopy(v)
					added = true
				}
			}
			if !added {
				break
			}
		}
	}

	// Phase 3: delete clustered copies, scanning in ascending write radius.
	if !opt.SkipPhase3 {
		k := opt.p3()
		order := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if has[v] {
				order = append(order, v)
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			if radii[order[a]].RW != radii[order[b]].RW {
				return radii[order[a]].RW < radii[order[b]].RW
			}
			return order[a] < order[b]
		})
		scanBased := o.Kind() == metric.KindLazy
		for _, v := range order {
			if !has[v] {
				continue // already deleted by an earlier scan
			}
			if scanBased {
				// A copy u is deleted when d(u, v) <= k * rw(u), so no
				// deletion can happen beyond k * max alive rw: sweep the
				// ball up to that radius instead of fetching copy rows.
				limit := 0.0
				for _, u := range order {
					if u != v && has[u] && k*radii[u].RW > limit {
						limit = k * radii[u].RW
					}
				}
				metric.ScanNear(o, v, func(u int, d float64) bool {
					if d > limit {
						return false
					}
					if u != v && has[u] && d <= k*radii[u].RW {
						has[u] = false
					}
					return true
				})
				continue
			}
			for _, u := range order {
				if u == v || !has[u] {
					continue
				}
				if o.Dist(u, v) <= k*radii[u].RW {
					has[u] = false
				}
			}
		}
	}

	out := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if has[v] {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		// Cannot happen (phase 3 never deletes the scanned copy), but keep
		// the placement well-formed under pathological custom factors.
		out = append(out, copies[0])
	}
	return out
}

// graphInf is +Inf, for nearest-copy scans.
var graphInf = math.Inf(1)

// ProperReport describes how a placement relates to the proper-placement
// conditions of Section 2.1 for one object.
type ProperReport struct {
	// MaxK1 is the smallest k1 such that every node has a copy within
	// k1 * max(rw(v), rs(v)). Lemma 8 guarantees k1 <= 29 for the
	// algorithm's output.
	MaxK1 float64
	// MinPairFactor is the largest k such that all copy pairs (u, v) are at
	// distance >= k * max(rw(u), rw(v)); property 2 requires >= 2*k2 = 4.
	MinPairFactor float64
	// Copies is the number of copies.
	Copies int
}

// CheckProper measures the proper-placement constants achieved by a copy
// set for one object, to let tests assert Lemma 8 as an executable
// invariant.
func (in *Instance) CheckProper(obj *Object, copies []int) ProperReport {
	o := in.Metric()
	req := obj.Requests()
	radii := metric.ComputeRadii(o, req, obj.TotalWrites(), in.Storage)
	near := metric.NearestOf(o, copies)
	rep := ProperReport{Copies: len(copies), MinPairFactor: graphInf}
	for v := 0; v < in.N(); v++ {
		best := near[v]
		m := radii[v].RW
		if radii[v].RS > m {
			m = radii[v].RS
		}
		if m == 0 {
			if best > 0 {
				rep.MaxK1 = graphInf
			}
			continue
		}
		if f := best / m; f > rep.MaxK1 {
			rep.MaxK1 = f
		}
	}
	for i, u := range copies {
		for _, v := range copies[i+1:] {
			m := radii[u].RW
			if radii[v].RW > m {
				m = radii[v].RW
			}
			if m == 0 {
				continue
			}
			if f := o.Dist(u, v) / m; f < rep.MinPairFactor {
				rep.MinPairFactor = f
			}
		}
	}
	return rep
}
