package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"netplace/internal/facility"
	"netplace/internal/metric"
)

// Options configures the Section 2 approximation algorithm. The zero value
// selects the paper's parameters.
type Options struct {
	// FL is the facility-location solver used in phase 1. Nil selects
	// local search (the combinatorial 5-approximation of Korupolu et al.).
	FL facility.Solver
	// Phase2Factor is the storage-radius multiple beyond which a node
	// demands its own copy; the paper uses 5. Zero selects 5.
	Phase2Factor float64
	// Phase3Factor is the write-radius multiple within which a scanned copy
	// deletes another; the paper uses 4. Zero selects 4.
	Phase3Factor float64
	// SkipPhase2 / SkipPhase3 disable the respective phases (ablations E10).
	SkipPhase2 bool
	SkipPhase3 bool
	// Workers bounds the goroutines placing objects concurrently (the
	// paper's algorithm treats objects independently, so object-level
	// parallelism is exact). 0 or 1 runs sequentially; negative selects
	// GOMAXPROCS. The result is bit-identical to the sequential run.
	Workers int
}

func (o Options) fl() facility.Solver {
	if o.FL == nil {
		return facility.LocalSearch
	}
	return o.FL
}

func (o Options) p2() float64 {
	if o.Phase2Factor == 0 {
		return 5
	}
	return o.Phase2Factor
}

func (o Options) p3() float64 {
	if o.Phase3Factor == 0 {
		return 4
	}
	return o.Phase3Factor
}

// Approximate runs the paper's three-phase constant-factor approximation
// algorithm (Section 2.2) independently for every object:
//
//  1. Solve the related facility location problem (writes become reads).
//  2. While some node v has no copy within Phase2Factor * rs(v), place a
//     copy on v.
//  3. Scan copy holders in ascending write radius; the scanned copy deletes
//     any other copy u with ct(u, v) <= Phase3Factor * rw(u).
//
// The result is a proper placement with k1 = 29, k2 = 2 (Lemma 8) whose
// storage cost is near-optimal (Lemma 9), hence a constant-factor
// approximation of the total cost (Theorem 7).
func Approximate(in *Instance, opt Options) Placement {
	p := Placement{Copies: make([][]int, len(in.Objects))}
	workers := opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in.Objects) {
		workers = len(in.Objects)
	}
	if workers <= 1 {
		for i := range in.Objects {
			p.Copies[i] = approximateObject(in, &in.Objects[i], opt)
		}
		return p
	}
	in.Dist() // materialise the shared metric before fanning out
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(in.Objects) {
					return
				}
				p.Copies[i] = approximateObject(in, &in.Objects[i], opt)
			}
		}()
	}
	wg.Wait()
	return p
}

// approximateObject places a single object.
func approximateObject(in *Instance, obj *Object, opt Options) []int {
	n := in.N()
	dist := in.Dist()
	req := obj.Requests()
	total := req.Total()
	if total == 0 {
		// Degenerate object nobody accesses: cheapest single copy.
		best := 0
		for v := 1; v < n; v++ {
			if in.Storage[v] < in.Storage[best] {
				best = v
			}
		}
		return []int{best}
	}

	// Phase 1: related facility location problem. Writes count as reads;
	// update costs are ignored.
	fl := &facility.Instance{Open: in.Storage, Demand: req.Count, Dist: dist}
	copies := opt.fl()(fl)

	radii := metric.ComputeRadii(in.Space(), req, obj.TotalWrites(), in.Storage)

	has := make([]bool, n)
	near := make([]float64, n) // distance to nearest copy
	for v := range near {
		near[v] = graphInf
	}
	addCopy := func(c int) {
		has[c] = true
		for v := 0; v < n; v++ {
			if d := dist[v][c]; d < near[v] {
				near[v] = d
			}
		}
	}
	for _, c := range copies {
		addCopy(c)
	}

	// Phase 2: add copies where the storage radius demands one.
	if !opt.SkipPhase2 {
		k := opt.p2()
		for {
			added := false
			for v := 0; v < n; v++ {
				if !has[v] && near[v] > k*radii[v].RS {
					addCopy(v)
					added = true
				}
			}
			if !added {
				break
			}
		}
	}

	// Phase 3: delete clustered copies, scanning in ascending write radius.
	if !opt.SkipPhase3 {
		k := opt.p3()
		order := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if has[v] {
				order = append(order, v)
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			if radii[order[a]].RW != radii[order[b]].RW {
				return radii[order[a]].RW < radii[order[b]].RW
			}
			return order[a] < order[b]
		})
		for _, v := range order {
			if !has[v] {
				continue // already deleted by an earlier scan
			}
			for _, u := range order {
				if u == v || !has[u] {
					continue
				}
				if dist[u][v] <= k*radii[u].RW {
					has[u] = false
				}
			}
		}
	}

	out := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if has[v] {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		// Cannot happen (phase 3 never deletes the scanned copy), but keep
		// the placement well-formed under pathological custom factors.
		out = append(out, copies[0])
	}
	return out
}

// graphInf is +Inf, for nearest-copy scans.
var graphInf = math.Inf(1)

// ProperReport describes how a placement relates to the proper-placement
// conditions of Section 2.1 for one object.
type ProperReport struct {
	// MaxK1 is the smallest k1 such that every node has a copy within
	// k1 * max(rw(v), rs(v)). Lemma 8 guarantees k1 <= 29 for the
	// algorithm's output.
	MaxK1 float64
	// MinPairFactor is the largest k such that all copy pairs (u, v) are at
	// distance >= k * max(rw(u), rw(v)); property 2 requires >= 2*k2 = 4.
	MinPairFactor float64
	// Copies is the number of copies.
	Copies int
}

// CheckProper measures the proper-placement constants achieved by a copy
// set for one object, to let tests assert Lemma 8 as an executable
// invariant.
func (in *Instance) CheckProper(obj *Object, copies []int) ProperReport {
	dist := in.Dist()
	req := obj.Requests()
	radii := metric.ComputeRadii(in.Space(), req, obj.TotalWrites(), in.Storage)
	rep := ProperReport{Copies: len(copies), MinPairFactor: graphInf}
	for v := 0; v < in.N(); v++ {
		best := graphInf
		for _, c := range copies {
			if d := dist[v][c]; d < best {
				best = d
			}
		}
		m := radii[v].RW
		if radii[v].RS > m {
			m = radii[v].RS
		}
		if m == 0 {
			if best > 0 {
				rep.MaxK1 = graphInf
			}
			continue
		}
		if f := best / m; f > rep.MaxK1 {
			rep.MaxK1 = f
		}
	}
	for i, u := range copies {
		for _, v := range copies[i+1:] {
			m := radii[u].RW
			if radii[v].RW > m {
				m = radii[v].RW
			}
			if m == 0 {
				continue
			}
			if f := dist[u][v] / m; f < rep.MinPairFactor {
				rep.MinPairFactor = f
			}
		}
	}
	return rep
}
