package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"netplace/internal/facility"
	"netplace/internal/metric"
)

// Options configures the Section 2 approximation algorithm. The zero value
// selects the paper's parameters.
type Options struct {
	// FL is the facility-location solver used in phase 1. Nil auto-selects:
	// local search (the combinatorial 5-approximation of Korupolu et al.)
	// up to DenseMetricMaxNodes nodes, and the ball-scanning Mettu–Plaxton
	// 3-approximation beyond it (local search is Θ(n²) per sweep and does
	// not survive large networks).
	FL facility.Solver
	// Phase2Factor is the storage-radius multiple beyond which a node
	// demands its own copy; the paper uses 5. Zero selects 5.
	Phase2Factor float64
	// Phase3Factor is the write-radius multiple within which a scanned copy
	// deletes another; the paper uses 4. Zero selects 4.
	Phase3Factor float64
	// SkipPhase2 / SkipPhase3 disable the respective phases (ablations E10).
	SkipPhase2 bool
	SkipPhase3 bool
	// Workers bounds the goroutines placing whole objects concurrently —
	// object-level parallelism, the fan-out Approximate uses when an
	// instance has several (representative) objects. It does not speed up
	// a single object's solve; that is what Parallel is for. 0 and
	// negative values select GOMAXPROCS; 1 runs sequentially. The result
	// is bit-identical to the sequential run either way.
	Workers int
	// Parallel bounds the goroutines cooperating on a single object's
	// solve — intra-solve parallelism. The per-node radius scans (storage
	// radii, Mettu–Plaxton payment balls) and the phase-3 write-radius
	// candidate scans shard across this many workers, each with its own
	// pooled scan workspace; the merged output is byte-identical to the
	// serial solve. 0 selects the size-aware auto policy: serial below
	// AutoParallelMinNodes nodes (where scheduling overhead beats the
	// scans), GOMAXPROCS at or above. 1 pins serial, negative values
	// select GOMAXPROCS like Workers. Workers and Parallel multiply when
	// both exceed one — keep Workers × Parallel near GOMAXPROCS (see
	// docs/tuning.md).
	Parallel int
	// Metric overrides the instance's distance-oracle backend for this
	// solve (MetricAuto keeps whatever the instance selects).
	Metric MetricBackend
	// MetricRows bounds the lazy backend's row cache, in rows; 0 selects
	// the default budget. Ignored by the dense and tree backends.
	MetricRows int
}

func (o Options) fl(n int) facility.Solver {
	if o.FL != nil {
		return o.FL
	}
	if n > DenseMetricMaxNodes {
		return facility.MettuPlaxton
	}
	return facility.LocalSearch
}

func (o Options) p2() float64 {
	if o.Phase2Factor == 0 {
		return 5
	}
	return o.Phase2Factor
}

func (o Options) p3() float64 {
	if o.Phase3Factor == 0 {
		return 4
	}
	return o.Phase3Factor
}

// workers resolves the object-level fan-out: how many objects are placed
// at once. Intra-solve parallelism is resolved separately by
// parallelFor(n).
func (o Options) workers() int {
	if o.Workers == 1 {
		return 1
	}
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// AutoParallelMinNodes is the instance size at which an unset (zero)
// Parallel option switches from serial to GOMAXPROCS — the size-aware
// auto policy, re-exported from the metric package where the sharded
// kernels live.
const AutoParallelMinNodes = metric.AutoParallelMinNodes

// EffectiveParallel resolves a Parallel knob against an instance of n
// nodes: the worker count a solve with that knob actually uses. Exported
// so the service layer can report the resolved value per instance.
func EffectiveParallel(parallel, n int) int {
	return metric.AutoWorkers(parallel, n)
}

// parallelFor resolves the intra-solve worker count against the instance
// size: 1 pins a single object's solve serial (the historical
// behaviour), negative selects GOMAXPROCS like workers(), and 0 applies
// the size-aware auto policy (serial below AutoParallelMinNodes).
func (o Options) parallelFor(n int) int {
	return metric.AutoWorkers(o.Parallel, n)
}

// solveWS is the per-worker scratch of the solve pipeline: request vector,
// copy flags, scan order, plus the metric workspace (nearest fields, radii,
// MST scratch) and a reusable facility-location instance. Pooled via
// solvePool so repeated solves over a resident instance allocate only their
// results.
type solveWS struct {
	mws   metric.Workspace
	req   []int64
	has   []bool
	order []int
	fl    facility.Instance
}

// buffers returns the request, copy-flag and order buffers grown to length
// n; req and has are zeroed, order is emptied.
func (ws *solveWS) buffers(n int) (req []int64, has []bool, order []int) {
	if cap(ws.req) < n {
		ws.req = make([]int64, n)
		ws.has = make([]bool, n)
		ws.order = make([]int, 0, n)
	}
	req = ws.req[:n]
	has = ws.has[:n]
	for i := range req {
		req[i] = 0
		has[i] = false
	}
	return req, has, ws.order[:0]
}

// solvePool recycles solve workspaces across solves and workers.
var solvePool = sync.Pool{New: func() interface{} { return new(solveWS) }}

// putSolveWS returns a workspace to the pool, dropping its references to
// the solved instance (storage, demand view, oracle) first — a pooled
// workspace must not pin an evicted instance's memory, only its own
// scratch buffers.
func putSolveWS(ws *solveWS) {
	ws.fl.Open = nil
	ws.fl.Demand = nil
	ws.fl.Metric = nil
	solvePool.Put(ws)
}

// Approximate runs the paper's three-phase constant-factor approximation
// algorithm (Section 2.2) independently for every object:
//
//  1. Solve the related facility location problem (writes become reads).
//  2. While some node v has no copy within Phase2Factor * rs(v), place a
//     copy on v.
//  3. Scan copy holders in ascending write radius; the scanned copy deletes
//     any other copy u with ct(u, v) <= Phase3Factor * rw(u).
//
// The result is a proper placement with k1 = 29, k2 = 2 (Lemma 8) whose
// storage cost is near-optimal (Lemma 9), hence a constant-factor
// approximation of the total cost (Theorem 7).
//
// Objects whose request multiset and total write count coincide place
// identically (the three phases read nothing else about an object), so
// Approximate solves one representative per such group and copies the
// result to the rest — one multi-source pipeline serving many objects.
func Approximate(in *Instance, opt Options) Placement {
	if opt.Metric != MetricAuto {
		in.UseMetric(opt.Metric, opt.MetricRows)
	}
	p := Placement{Copies: make([][]int, len(in.Objects))}
	rep := demandGroups(in)
	reps := make([]int, 0, len(in.Objects))
	for i, r := range rep {
		if r == i {
			reps = append(reps, i)
		}
	}
	workers := opt.workers()
	if workers > len(reps) {
		workers = len(reps)
	}
	if workers <= 1 {
		ws := solvePool.Get().(*solveWS)
		for _, i := range reps {
			p.Copies[i] = approximateObject(in, &in.Objects[i], opt, ws)
		}
		putSolveWS(ws)
	} else {
		in.Metric() // resolve the shared oracle before fanning out
		var next int64 = -1
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				ws := solvePool.Get().(*solveWS)
				defer putSolveWS(ws)
				for {
					k := int(atomic.AddInt64(&next, 1))
					if k >= len(reps) {
						return
					}
					i := reps[k]
					p.Copies[i] = approximateObject(in, &in.Objects[i], opt, ws)
				}
			}()
		}
		wg.Wait()
	}
	for i, r := range rep {
		if r != i {
			p.Copies[i] = append([]int(nil), p.Copies[r]...)
		}
	}
	return p
}

// demandGroups assigns every object the index of its representative: the
// first object with an elementwise-identical fr+fw request vector and the
// same total write count. rep[i] == i marks a representative.
func demandGroups(in *Instance) []int {
	rep := make([]int, len(in.Objects))
	for i := range rep {
		rep[i] = i
	}
	if len(in.Objects) < 2 {
		return rep
	}
	byHash := make(map[uint64][]int, len(in.Objects))
	for i := range in.Objects {
		o := &in.Objects[i]
		h := demandHash(o)
		for _, j := range byHash[h] {
			if sameDemand(o, &in.Objects[j]) {
				rep[i] = j
				break
			}
		}
		if rep[i] == i {
			byHash[h] = append(byHash[h], i)
		}
	}
	return rep
}

// demandHash is an FNV-1a hash of an object's request vector and total
// write count — the exact inputs the solve pipeline reads.
func demandHash(o *Object) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime
		}
	}
	for v := range o.Reads {
		mix(uint64(o.Reads[v] + o.Writes[v]))
	}
	mix(uint64(o.TotalWrites()))
	return h
}

// sameDemand reports whether two objects present identical inputs to the
// solve pipeline: same fr+fw vector and same total write count.
func sameDemand(a, b *Object) bool {
	if a.TotalWrites() != b.TotalWrites() {
		return false
	}
	for v := range a.Reads {
		if a.Reads[v]+a.Writes[v] != b.Reads[v]+b.Writes[v] {
			return false
		}
	}
	return true
}

// ApproximateObject places a single object with the paper's three-phase
// algorithm, borrowing pooled scratch. It is the kernel behind Approximate
// and the placement service's incremental what-if path, which re-solves
// only the objects a scenario actually changed.
func ApproximateObject(in *Instance, obj *Object, opt Options) []int {
	ws := solvePool.Get().(*solveWS)
	out := approximateObject(in, obj, opt, ws)
	putSolveWS(ws)
	return out
}

// approximateObject places a single object using the given workspace.
func approximateObject(in *Instance, obj *Object, opt Options, ws *solveWS) []int {
	n := in.N()
	o := in.Metric()
	reqBuf, has, order := ws.buffers(n)
	req := obj.RequestsInto(reqBuf)
	total := req.Total()
	if total == 0 {
		// Degenerate object nobody accesses: cheapest single copy.
		best := 0
		for v := 1; v < n; v++ {
			if in.Storage[v] < in.Storage[best] {
				best = v
			}
		}
		return []int{best}
	}

	// Phase 1: related facility location problem. Writes count as reads;
	// update costs are ignored. The facility instance is reused across
	// objects so its internal scratch persists.
	par := opt.parallelFor(n)
	ws.fl.Open = in.Storage
	ws.fl.Demand = req.Count
	ws.fl.Metric = o
	ws.fl.Parallel = par
	copies := opt.fl(n)(&ws.fl)

	// Storage radii for every node (cheap payment-ball scans, sharded
	// across the intra-solve workers); write radii are computed later,
	// only for the copy candidates phase 3 actually compares — resolving
	// rw(v) means walking the W closest requests, which is a near-complete
	// sweep per node when writes are plentiful.
	radii := ws.mws.ComputeStorageRadiiParallel(o, req, in.Storage, par)

	near := ws.mws.Near(n) // distance to nearest copy
	for v := range near {
		near[v] = graphInf
	}
	addCopy := func(c int) {
		has[c] = true
		metric.ImproveNearest(o, c, near)
	}
	for _, c := range copies {
		addCopy(c)
	}

	// Phase 2: add copies where the storage radius demands one.
	if !opt.SkipPhase2 {
		k := opt.p2()
		for {
			added := false
			for v := 0; v < n; v++ {
				if !has[v] && near[v] > k*radii[v].RS {
					addCopy(v)
					added = true
				}
			}
			if !added {
				break
			}
		}
	}

	// Phase 3: delete clustered copies, scanning in ascending write radius.
	if !opt.SkipPhase3 {
		k := opt.p3()
		w := obj.TotalWrites()
		for v := 0; v < n; v++ {
			if has[v] {
				order = append(order, v)
			}
		}
		// Write radii for the candidates only — the expensive scans of the
		// pipeline. Candidates are independent, so the range is partitioned
		// across the intra-solve workers; each writes its own rw(v), so the
		// merged table is byte-identical to the serial fill.
		if par >= 2 && len(order) >= 2 {
			metric.WriteRadiiParallel(o, req, w, order, radii, par)
		} else {
			for _, v := range order {
				radii[v].RW = ws.mws.WriteRadius(o, req, w, v)
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			if radii[order[a]].RW != radii[order[b]].RW {
				return radii[order[a]].RW < radii[order[b]].RW
			}
			return order[a] < order[b]
		})
		scanBased := o.Kind() == metric.KindLazy
		for _, v := range order {
			if !has[v] {
				continue // already deleted by an earlier scan
			}
			if scanBased {
				// A copy u is deleted when d(u, v) <= k * rw(u), so no
				// deletion can happen beyond k * max alive rw: sweep the
				// ball up to that radius instead of fetching copy rows.
				limit := 0.0
				for _, u := range order {
					if u != v && has[u] && k*radii[u].RW > limit {
						limit = k * radii[u].RW
					}
				}
				metric.ScanNear(o, v, func(u int, d float64) bool {
					if d > limit {
						return false
					}
					if u != v && has[u] && d <= k*radii[u].RW {
						has[u] = false
					}
					return true
				})
				continue
			}
			for _, u := range order {
				if u == v || !has[u] {
					continue
				}
				if o.Dist(u, v) <= k*radii[u].RW {
					has[u] = false
				}
			}
		}
	}

	out := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if has[v] {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		// Cannot happen (phase 3 never deletes the scanned copy), but keep
		// the placement well-formed under pathological custom factors.
		out = append(out, copies[0])
	}
	return out
}

// graphInf is +Inf, for nearest-copy scans.
var graphInf = math.Inf(1)

// ProperReport describes how a placement relates to the proper-placement
// conditions of Section 2.1 for one object.
type ProperReport struct {
	// MaxK1 is the smallest k1 such that every node has a copy within
	// k1 * max(rw(v), rs(v)). Lemma 8 guarantees k1 <= 29 for the
	// algorithm's output.
	MaxK1 float64
	// MinPairFactor is the largest k such that all copy pairs (u, v) are at
	// distance >= k * max(rw(u), rw(v)); property 2 requires >= 2*k2 = 4.
	MinPairFactor float64
	// Copies is the number of copies.
	Copies int
}

// CheckProper measures the proper-placement constants achieved by a copy
// set for one object, to let tests assert Lemma 8 as an executable
// invariant.
func (in *Instance) CheckProper(obj *Object, copies []int) ProperReport {
	o := in.Metric()
	req := obj.Requests()
	radii := metric.ComputeRadii(o, req, obj.TotalWrites(), in.Storage)
	near := metric.NearestOf(o, copies)
	rep := ProperReport{Copies: len(copies), MinPairFactor: graphInf}
	for v := 0; v < in.N(); v++ {
		best := near[v]
		m := radii[v].RW
		if radii[v].RS > m {
			m = radii[v].RS
		}
		if m == 0 {
			if best > 0 {
				rep.MaxK1 = graphInf
			}
			continue
		}
		if f := best / m; f > rep.MaxK1 {
			rep.MaxK1 = f
		}
	}
	for i, u := range copies {
		for _, v := range copies[i+1:] {
			m := radii[u].RW
			if radii[v].RW > m {
				m = radii[v].RW
			}
			if m == 0 {
				continue
			}
			if f := o.Dist(u, v) / m; f < rep.MinPairFactor {
				rep.MinPairFactor = f
			}
		}
	}
	return rep
}
