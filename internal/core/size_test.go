package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// The non-uniform model: fees are per byte, so an object of size s pays
// s * cs per copy and s * ct per traversal. Size must scale every cost
// component linearly and leave the optimal placement unchanged.

func TestSizeScalesCostLinearly(t *testing.T) {
	fn := func(seed int64, sizeBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomCoreInstance(rng, 3+rng.Intn(8), 1, 0.5)
		obj := in.Objects[0]
		size := 0.25 + float64(sizeBits)/16 // 0.25 .. 16.2
		k := 1 + rng.Intn(in.N())
		copies := rng.Perm(in.N())[:k]

		base := in.ObjectCost(&obj, copies)
		scaled := obj
		scaled.Size = size
		got := in.ObjectCost(&scaled, copies)
		eps := 1e-9 * (1 + base.Total())
		return math.Abs(got.Storage-size*base.Storage) < eps &&
			math.Abs(got.Read-size*base.Read) < eps &&
			math.Abs(got.Update-size*base.Update) < eps
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeDoesNotChangePlacement(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomCoreInstance(rng, 4+rng.Intn(8), 1, 0.4)
		base := Approximate(in, Options{})

		big := MustInstance(in.G, in.Storage, []Object{{
			Size:   64,
			Reads:  in.Objects[0].Reads,
			Writes: in.Objects[0].Writes,
		}})
		scaled := Approximate(big, Options{})
		if !reflect.DeepEqual(base.Copies, scaled.Copies) {
			t.Fatalf("seed %d: size changed the placement: %v vs %v", seed, base.Copies, scaled.Copies)
		}
	}
}

func TestNewInstanceNormalisesSize(t *testing.T) {
	in := randomCoreInstance(rand.New(rand.NewSource(1)), 5, 1, 0)
	if in.Objects[0].Size != 1 {
		t.Fatalf("unset size normalised to %v, want 1", in.Objects[0].Size)
	}
	obj := Object{Size: math.NaN(), Reads: make([]int64, 5), Writes: make([]int64, 5)}
	if _, err := NewInstance(in.G, in.Storage, []Object{obj}); err == nil {
		t.Fatal("NaN size accepted")
	}
	obj.Size = math.Inf(1)
	if _, err := NewInstance(in.G, in.Storage, []Object{obj}); err == nil {
		t.Fatal("infinite size accepted")
	}
}

func TestScaleDefault(t *testing.T) {
	o := Object{}
	if o.Scale() != 1 {
		t.Fatal("zero size must scale as 1")
	}
	o.Size = 2.5
	if o.Scale() != 2.5 {
		t.Fatal("explicit size ignored")
	}
}
