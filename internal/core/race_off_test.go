//go:build !race

package core

// raceEnabled reports that the race detector is active.
const raceEnabled = false
