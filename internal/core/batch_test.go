package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDemandGroupBatching pins the batched solve's contract: objects with
// identical request multisets and write totals share one representative
// solve, and the result — sequential, parallel, or via the single-object
// kernel — is identical to solving every object from scratch.
func TestDemandGroupBatching(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := intWeightInstance(rng, 20, 3, false)
	// Duplicate object 0's workload into two clones: same reads+writes
	// elementwise (identical placement inputs), different names and sizes
	// (which must not affect the copy set).
	clone := func(name string, size float64) Object {
		o := Object{Name: name, Size: size,
			Reads:  append([]int64(nil), in.Objects[0].Reads...),
			Writes: append([]int64(nil), in.Objects[0].Writes...)}
		return o
	}
	objs := append(append([]Object(nil), in.Objects...), clone("dup-a", 2), clone("dup-b", 7))
	// A demand-equivalent pair with a different read/write split but the
	// same fr+fw vector and the same total writes must also share a group.
	swapped := clone("dup-swapped", 1)
	for v := range swapped.Reads {
		if swapped.Writes[v] > 0 && swapped.Reads[v] > 0 {
			swapped.Reads[v]++
			swapped.Writes[v]--
		}
	}
	if swapped.TotalWrites() == in.Objects[0].TotalWrites() {
		objs = append(objs, swapped)
	}
	batched := MustInstance(in.G, in.Storage, objs)

	rep := demandGroups(batched)
	if rep[len(in.Objects)] != 0 || rep[len(in.Objects)+1] != 0 {
		t.Fatalf("duplicated objects not grouped under object 0: rep=%v", rep)
	}

	got := Approximate(batched, Options{Workers: 1})
	par := Approximate(batched, Options{Workers: 4})
	if !reflect.DeepEqual(got.Copies, par.Copies) {
		t.Fatalf("parallel batched solve diverged from sequential:\n%v\n%v", par.Copies, got.Copies)
	}
	for i := range batched.Objects {
		want := ApproximateObject(batched, &batched.Objects[i], Options{Workers: 1})
		if !reflect.DeepEqual(got.Copies[i], want) {
			t.Fatalf("object %d: batched copies %v, from-scratch %v", i, got.Copies[i], want)
		}
	}
	// Shared copy sets must not alias: mutating one object's result cannot
	// corrupt its group siblings.
	got.Copies[len(in.Objects)][0] = -1
	if got.Copies[0][0] == -1 {
		t.Fatal("grouped objects share a copy-set backing array")
	}
}
