package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"netplace/internal/facility"
	"netplace/internal/gen"
	"netplace/internal/graph"
	"netplace/internal/metric"
)

// intWeightInstance builds a random instance whose edge weights and fees
// are small integers, so shortest-path and cost sums are exact in float64
// and backend equivalence can be asserted bit-for-bit.
func intWeightInstance(rng *rand.Rand, n, objects int, tree bool) *Instance {
	w := func(u, v int) float64 { return float64(1 + rng.Intn(9)) }
	var g *graph.Graph
	if tree {
		g = gen.RandomTree(n, rng, w)
	} else {
		g = gen.RandomTree(n, rng, w)
		for e := 0; e < n/2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, w(u, v))
			}
		}
	}
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(rng.Intn(25))
	}
	objs := make([]Object, objects)
	for i := range objs {
		objs[i] = Object{Reads: make([]int64, n), Writes: make([]int64, n)}
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.8 {
				objs[i].Reads[v] = rng.Int63n(8)
			}
			if rng.Float64() < 0.4 {
				objs[i].Writes[v] = rng.Int63n(4)
			}
		}
	}
	return MustInstance(g, storage, objs)
}

// instanceBackends lists the backends valid for the instance's network.
func instanceBackends(tree bool) []MetricBackend {
	if tree {
		return []MetricBackend{MetricDense, MetricLazy, MetricTree}
	}
	return []MetricBackend{MetricDense, MetricLazy}
}

// TestBackendPlacementEquivalence is the tentpole's contract: the paper's
// algorithm and every baseline must produce identical placements and costs
// whichever oracle backend serves the metric.
func TestBackendPlacementEquivalence(t *testing.T) {
	strategies := map[string]func(*Instance) Placement{
		"approximate":    func(in *Instance) Placement { return Approximate(in, Options{Workers: 1}) },
		"approx-mp":      func(in *Instance) Placement { return Approximate(in, Options{Workers: 1, FL: facility.MettuPlaxton}) },
		"approx-greedy":  func(in *Instance) Placement { return Approximate(in, Options{Workers: 1, FL: facility.Greedy}) },
		"approx-jv":      func(in *Instance) Placement { return Approximate(in, Options{Workers: 1, FL: facility.JainVazirani}) },
		"single-best":    SingleBest,
		"greedy-add":     GreedyAdd,
		"facility-only":  func(in *Instance) Placement { return FacilityOnly(in, nil) },
		"full-replicate": FullReplication,
	}
	for seed := int64(0); seed < 6; seed++ {
		for _, tree := range []bool{false, true} {
			rng := rand.New(rand.NewSource(seed))
			n := 8 + rng.Intn(18)
			nobj := 1 + rng.Intn(3)
			for name, strat := range strategies {
				var want Placement
				var wantCost Breakdown
				for i, b := range instanceBackends(tree) {
					// Fresh instance per backend so no state leaks between
					// oracle implementations.
					in := intWeightInstance(rand.New(rand.NewSource(seed)), n, nobj, tree)
					in.UseMetric(b, 3) // tiny lazy cache: eviction must not change results
					got := strat(in)
					cost := in.Cost(got)
					if i == 0 {
						want, wantCost = got, cost
						continue
					}
					if !reflect.DeepEqual(got.Copies, want.Copies) {
						t.Fatalf("seed %d tree=%v %s: backend %v placement %v, dense %v",
							seed, tree, name, b, got.Copies, want.Copies)
					}
					if cost != wantCost {
						t.Fatalf("seed %d tree=%v %s: backend %v cost %+v, dense %+v",
							seed, tree, name, b, cost, wantCost)
					}
				}
			}
		}
	}
}

// TestBackendRestrictedEquivalence covers the Lemma 1 machinery and the
// proper-placement report across backends.
func TestBackendRestrictedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, tree := range []bool{false, true} {
			rng := rand.New(rand.NewSource(seed))
			n := 6 + rng.Intn(14)
			k := 2 + rng.Intn(n-1)
			copies := rng.Perm(n)[:k]
			var wantRes []int
			var wantServe []int64
			var wantProper ProperReport
			for i, b := range instanceBackends(tree) {
				in := intWeightInstance(rand.New(rand.NewSource(seed)), n, 1, tree)
				in.UseMetric(b, 3)
				obj := &in.Objects[0]
				res := MakeRestricted(in, obj, copies)
				serve := in.ServeCounts(obj, copies)
				proper := in.CheckProper(obj, copies)
				if i == 0 {
					wantRes, wantServe, wantProper = res, serve, proper
					continue
				}
				if !reflect.DeepEqual(res, wantRes) {
					t.Fatalf("seed %d tree=%v: MakeRestricted backend %v = %v, dense %v", seed, tree, b, res, wantRes)
				}
				if !reflect.DeepEqual(serve, wantServe) {
					t.Fatalf("seed %d tree=%v: ServeCounts backend %v diverged", seed, tree, b)
				}
				if proper != wantProper {
					t.Fatalf("seed %d tree=%v: CheckProper backend %v = %+v, dense %+v", seed, tree, b, proper, wantProper)
				}
			}
		}
	}
}

// TestMetricOptionOverride checks Options.Metric installs the requested
// backend and MetricAuto respects the instance's own choice.
func TestMetricOptionOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := intWeightInstance(rng, 12, 1, false)
	Approximate(in, Options{Workers: 1, Metric: MetricLazy, MetricRows: 4})
	if in.Metric().Kind() != metric.KindLazy {
		t.Fatalf("Options.Metric did not install the lazy backend (got %v)", in.Metric().Kind())
	}
	// Auto keeps the installed backend.
	Approximate(in, Options{Workers: 1})
	if in.Metric().Kind() != metric.KindLazy {
		t.Fatal("MetricAuto overrode an explicitly selected backend")
	}
	// Explicit dense replaces it.
	Approximate(in, Options{Workers: 1, Metric: MetricDense})
	if in.Metric().Kind() != metric.KindDense {
		t.Fatal("Options.Metric dense did not replace the lazy backend")
	}
	// An explicit MetricRows differing from the installed lazy budget must
	// rebuild the oracle so the cache cap actually applies.
	Approximate(in, Options{Workers: 1, Metric: MetricLazy, MetricRows: 4})
	Approximate(in, Options{Workers: 1, Metric: MetricLazy, MetricRows: 8})
	if l, ok := in.Metric().(*metric.Lazy); !ok || l.Budget() != 8 {
		t.Fatalf("MetricRows change ignored: %T budget %v", in.Metric(), in.Metric())
	}
	// MetricRows 0 keeps the installed lazy oracle (and its budget).
	Approximate(in, Options{Workers: 1, Metric: MetricLazy})
	if l, ok := in.Metric().(*metric.Lazy); !ok || l.Budget() != 8 {
		t.Fatal("MetricRows 0 should keep the installed lazy oracle")
	}
}

// TestAutoBackendSelection checks the size/shape rules of MetricAuto.
func TestAutoBackendSelection(t *testing.T) {
	small := intWeightInstance(rand.New(rand.NewSource(2)), 30, 1, false)
	if small.Metric().Kind() != metric.KindDense {
		t.Fatalf("small network auto-selected %v, want dense", small.Metric().Kind())
	}
	bigTree := MustInstance(
		gen.KaryTree(DenseMetricMaxNodes+10, 3, gen.UnitWeights),
		make([]float64, DenseMetricMaxNodes+10),
		nil)
	if bigTree.Metric().Kind() != metric.KindTree {
		t.Fatalf("large tree auto-selected %v, want tree", bigTree.Metric().Kind())
	}
	big := MustInstance(
		gen.Grid(60, 40, gen.UnitWeights), // 2400 > DenseMetricMaxNodes
		make([]float64, 2400),
		nil)
	if big.Metric().Kind() != metric.KindLazy {
		t.Fatalf("large network auto-selected %v, want lazy", big.Metric().Kind())
	}
}

// TestLazySolve50k is the acceptance bar of the oracle refactor: the
// paper's algorithm completes on a 50k+-node sparse network with the lazy
// backend, without ever materializing the Θ(n²) all-pairs matrix (which
// would be ~20 GB here). Peak metric memory is bounded by the row-cache
// budget.
func TestLazySolve50k(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-node solve in -short mode")
	}
	const side = 224 // 50176 nodes
	g := gen.Grid(side, side, gen.UnitWeights)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(3 + v%5)
	}
	obj := Object{Reads: make([]int64, n), Writes: make([]int64, n)}
	for v := 0; v < n; v++ {
		obj.Reads[v] = 1 // a CDN-like read floor keeps payment balls local
		if v%1201 == 0 {
			obj.Writes[v] = 1 // sparse writers: W = 42
		}
	}
	in := MustInstance(g, storage, []Object{obj})
	p := Approximate(in, Options{Metric: MetricLazy, MetricRows: 64})

	if in.dist != nil {
		t.Fatal("dense all-pairs matrix was materialized behind the lazy oracle")
	}
	if in.Metric().Kind() != metric.KindLazy {
		t.Fatalf("solve ran on %v backend, want lazy", in.Metric().Kind())
	}
	copies := p.Copies[0]
	if len(copies) == 0 || len(copies) == n {
		t.Fatalf("degenerate placement: %d copies", len(copies))
	}
	// Spot-check the proper-placement property on sampled nodes: every node
	// has a copy within a small multiple of max(rs, rw) (Lemma 8 bounds the
	// full sweep; sampling keeps the test cheap).
	o := in.Metric()
	near := metric.NearestOf(o, copies)
	req := obj.Requests()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 32; i++ {
		v := rng.Intn(n)
		rad := metric.AvgDist(o, req, v, 42) // d(v, W) = rw(v)
		// rs(v) <= cs(v) here (zs >= 2 because every node reads), so
		// 64 * max(rw, cs) comfortably dominates the Lemma 8 k1 = 29 bound.
		bound := 64 * math.Max(rad, float64(3+v%5))
		if near[v] > bound {
			t.Fatalf("node %d: nearest copy at %v, beyond Lemma-8-style bound %v", v, near[v], bound)
		}
	}
	t.Logf("50k lazy solve: %d copies placed", len(copies))
}
