package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestMakeRestrictedProperty(t *testing.T) {
	// After the transform every surviving copy serves >= W requests
	// (whenever more than one copy survives).
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		in := randomCoreInstance(rng, n, 1, 0.7)
		obj := &in.Objects[0]
		W := obj.TotalWrites()
		k := 2 + rng.Intn(n-1)
		copies := rng.Perm(n)[:k]

		restricted := MakeRestricted(in, obj, copies)
		if len(restricted) == 0 {
			t.Fatalf("seed %d: transform deleted every copy", seed)
		}
		if len(restricted) > 1 {
			for i, s := range in.ServeCounts(obj, restricted) {
				if s < W {
					t.Fatalf("seed %d: copy %d serves %d < W = %d after transform",
						seed, restricted[i], s, W)
				}
			}
		}
		// Survivors are a subset of the input.
		inSet := map[int]bool{}
		for _, c := range copies {
			inSet[c] = true
		}
		for _, c := range restricted {
			if !inSet[c] {
				t.Fatalf("seed %d: transform invented copy %d", seed, c)
			}
		}
	}
}

func TestMakeRestrictedNoWritesIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomCoreInstance(rng, 8, 1, 0)
	obj := &in.Objects[0]
	copies := []int{1, 4, 6}
	got := MakeRestricted(in, obj, copies)
	if len(got) != 3 {
		t.Fatalf("read-only transform changed the placement: %v", got)
	}
}

// TestMakeRestrictedCostBound applies the transform to the *unrestricted
// optimum* and checks the evaluated restricted cost against Lemma 1's
// charging argument: provably <= 8x (4x from the proof, 2x from rebuilding
// the MST over survivors); observed far below 4.
func TestMakeRestrictedCostBound(t *testing.T) {
	worst := 1.0
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		in := randomCoreInstance(rng, n, 1, 0.6)
		obj := &in.Objects[0]
		if obj.TotalWrites() == 0 {
			continue
		}
		// Unrestricted optimum by direct enumeration over the restricted
		// evaluator's own model lower bound: use the best copy set under
		// ObjectCost as the stand-in for OPT here (the exact unrestricted
		// optimum is checked in the solver package's Lemma 1 test).
		best, bestSet := math.Inf(1), []int(nil)
		set := make([]int, 0, n)
		for mask := 1; mask < 1<<n; mask++ {
			set = set[:0]
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					set = append(set, v)
				}
			}
			if c := in.ObjectCost(obj, set).Total(); c < best {
				best = c
				bestSet = append(bestSet[:0], set...)
			}
		}
		restricted := MakeRestricted(in, obj, bestSet)
		cost := in.ObjectCost(obj, restricted).Total()
		if best > 0 {
			r := cost / best
			if r > worst {
				worst = r
			}
			if r > 8+1e-9 {
				t.Fatalf("seed %d: restricted transform ratio %v exceeds provable 8", seed, r)
			}
		}
	}
	if worst > 4 {
		t.Logf("observed worst ratio %.3f above Lemma 1's idealised 4 (MST-rebuild slack)", worst)
	} else {
		t.Logf("observed worst ratio %.3f (Lemma 1 charges 4)", worst)
	}
}

func TestServeCountsPartitionRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomCoreInstance(rng, 9, 1, 0.5)
	obj := &in.Objects[0]
	copies := []int{0, 3, 7}
	counts := in.ServeCounts(obj, copies)
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != obj.Requests().Total() {
		t.Fatalf("serve counts sum %d, want all %d requests", sum, obj.Requests().Total())
	}
}
