package core

import (
	"testing"

	"netplace/internal/gen"
)

// Allocation-regression tests for the instance-level hot kernels, mirroring
// the ones in internal/metric: once the pools are warm, pricing a placement
// on a resident instance must not allocate.

func TestObjectCostAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	g := gen.Grid(20, 20, gen.UnitWeights)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(2 + v%5)
	}
	obj := Object{Reads: make([]int64, n), Writes: make([]int64, n)}
	for v := 0; v < n; v++ {
		obj.Reads[v] = int64(1 + v%3)
		if v%37 == 0 {
			obj.Writes[v] = 1
		}
	}
	in := MustInstance(g, storage, []Object{obj})
	in.UseMetric(MetricLazy, 64)
	copies := []int{7, 133, 250, 388}
	in.ObjectCost(&in.Objects[0], copies) // warm pools and the row cache
	allocs := testing.AllocsPerRun(50, func() {
		in.ObjectCost(&in.Objects[0], copies)
	})
	if allocs != 0 {
		t.Errorf("ObjectCost allocates %.1f objects per call on a warm instance, want 0", allocs)
	}
}
