// Package core implements the paper's primary contribution: the cost-based
// static data management model (Section 1.1) and the combinatorial
// constant-factor approximation algorithm for arbitrary networks
// (Section 2), together with cost accounting, baselines, and the
// proper-placement invariants of Lemma 8.
package core

import (
	"fmt"
	"math"
	"sync"

	"netplace/internal/graph"
	"netplace/internal/metric"
)

// Object holds the request frequencies of one shared data object:
// Reads[v] = fr(v, x), Writes[v] = fw(v, x).
//
// Size realises the paper's non-uniform model ("all our results hold also
// in a non-uniform model"): fees are per byte, so an object of Size s pays
// s * cs(v) per stored copy and s * ct(e) per traversed edge. Size <= 0 is
// normalised to 1 by NewInstance. Because Size scales storage and
// transmission identically, the optimal copy set of an object is invariant
// under it; only the bill changes (tests assert both facts).
type Object struct {
	Name   string
	Size   float64
	Reads  []int64
	Writes []int64
}

// Scale returns the normalised object size (1 when Size is unset).
func (o *Object) Scale() float64 {
	if o.Size <= 0 {
		return 1
	}
	return o.Size
}

// TotalReads returns sum_v fr(v).
func (o *Object) TotalReads() int64 {
	var t int64
	for _, r := range o.Reads {
		t += r
	}
	return t
}

// TotalWrites returns W = sum_v fw(v), the paper's total write count.
func (o *Object) TotalWrites() int64 {
	var t int64
	for _, w := range o.Writes {
		t += w
	}
	return t
}

// Requests returns the request multiset fr + fw used by the radius
// definitions and by the related facility location problem.
func (o *Object) Requests() metric.Requests {
	return o.RequestsInto(make([]int64, len(o.Reads)))
}

// RequestsInto is Requests writing into buf, a caller-owned buffer of
// length len(Reads): the allocation-free form for pooled solve workspaces.
func (o *Object) RequestsInto(buf []int64) metric.Requests {
	for v := range buf {
		buf[v] = o.Reads[v] + o.Writes[v]
	}
	return metric.Requests{Count: buf}
}

// MetricBackend selects a distance-oracle backend for an instance.
type MetricBackend int

const (
	// MetricAuto picks by network shape and size: dense up to
	// DenseMetricMaxNodes, the O(1)-per-query tree oracle for larger tree
	// networks, and the lazy row-cached oracle for everything bigger.
	MetricAuto MetricBackend = iota
	// MetricDense materializes the full Θ(n²) matrix.
	MetricDense
	// MetricLazy computes rows on demand behind a bounded LRU cache.
	MetricLazy
	// MetricTree uses LCA depths; valid only for tree networks.
	MetricTree
)

// DenseMetricMaxNodes is the largest network for which MetricAuto still
// materializes the dense matrix (2048² float64s ≈ 33 MB). Above it the
// auto-selected backend is memory-bounded.
const DenseMetricMaxNodes = 2048

// Instance is a static data management problem: a network with storage fees
// cs(v) and a set of shared objects with read/write frequencies. The metric
// ct(v, v') is the shortest-path closure of the network's edge fees, which
// the paper proves is a metric; it is served by a pluggable distance oracle
// (dense matrix, lazy row cache, or tree LCA) selected on first use.
type Instance struct {
	G       *graph.Graph
	Storage []float64
	Objects []Object

	mu     sync.Mutex
	oracle metric.Oracle

	distOnce sync.Once
	dist     [][]float64
}

// NewInstance validates and assembles an instance.
func NewInstance(g *graph.Graph, storage []float64, objects []Object) (*Instance, error) {
	if len(storage) != g.N() {
		return nil, fmt.Errorf("core: storage has %d entries for %d nodes", len(storage), g.N())
	}
	for _, s := range storage {
		if s < 0 || math.IsNaN(s) {
			return nil, fmt.Errorf("core: negative or NaN storage cost %v", s)
		}
	}
	for i := range objects {
		o := &objects[i]
		if len(o.Reads) != g.N() || len(o.Writes) != g.N() {
			return nil, fmt.Errorf("core: object %d frequency vectors must have length %d", i, g.N())
		}
		if math.IsNaN(o.Size) || math.IsInf(o.Size, 0) {
			return nil, fmt.Errorf("core: object %d has invalid size %v", i, o.Size)
		}
		if o.Size <= 0 {
			o.Size = 1
		}
		for v := 0; v < g.N(); v++ {
			if o.Reads[v] < 0 || o.Writes[v] < 0 {
				return nil, fmt.Errorf("core: object %d has negative frequency at node %d", i, v)
			}
		}
	}
	if !g.Connected() {
		return nil, fmt.Errorf("core: network must be connected")
	}
	return &Instance{G: g, Storage: storage, Objects: objects}, nil
}

// WithObjects returns a variant of the instance carrying the given objects
// while sharing the network, storage fees, and — crucially — the
// already-built metric oracle, whose warmed caches make re-solving a
// changed object nearly free. Objects are validated like NewInstance's
// (the shared network needs no re-validation). It is the substrate of the
// service's incremental what-if path.
func (in *Instance) WithObjects(objects []Object) (*Instance, error) {
	for i := range objects {
		o := &objects[i]
		if len(o.Reads) != in.G.N() || len(o.Writes) != in.G.N() {
			return nil, fmt.Errorf("core: object %d frequency vectors must have length %d", i, in.G.N())
		}
		if math.IsNaN(o.Size) || math.IsInf(o.Size, 0) {
			return nil, fmt.Errorf("core: object %d has invalid size %v", i, o.Size)
		}
		if o.Size <= 0 {
			o.Size = 1
		}
		for v := 0; v < in.G.N(); v++ {
			if o.Reads[v] < 0 || o.Writes[v] < 0 {
				return nil, fmt.Errorf("core: object %d has negative frequency at node %d", i, v)
			}
		}
	}
	out := &Instance{G: in.G, Storage: in.Storage, Objects: objects}
	out.SetMetric(in.Metric())
	return out, nil
}

// QuantiseDemand converts an estimated per-event rate vector into the
// integral frequency table the solvers consume: dst[v] = round(rate[v] *
// scale), clamped at zero. scale is the number of events the demand patch
// should represent — typically the horizon one storage fee amortises
// over, so that estimated traffic and storage fees meet at the same
// balance point the static model uses. It is the quantisation step of
// every estimate-driven re-solve (internal/stream, and any controller
// patching demand through Instance.WithObjects).
func QuantiseDemand(dst []int64, rate []float64, scale float64) {
	for v := range dst {
		c := math.Round(rate[v] * scale)
		if c < 0 || math.IsNaN(c) {
			c = 0
		}
		dst[v] = int64(c)
	}
}

// MustInstance is NewInstance that panics on error; for tests and examples.
func MustInstance(g *graph.Graph, storage []float64, objects []Object) *Instance {
	in, err := NewInstance(g, storage, objects)
	if err != nil {
		panic(err)
	}
	return in
}

// N returns the number of network nodes.
func (in *Instance) N() int { return in.G.N() }

// Metric returns the instance's distance oracle, auto-selecting a backend
// on first use (see MetricAuto). Safe for concurrent use.
func (in *Instance) Metric() metric.Oracle {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.oracle == nil {
		in.oracle = in.buildOracle(MetricAuto, 0)
	}
	return in.oracle
}

// SetMetric installs a specific oracle, overriding auto-selection. Install
// before the first solve; switching backends mid-computation is safe for
// correctness (all backends agree on distances) but wastes whatever the
// previous backend cached.
func (in *Instance) SetMetric(o metric.Oracle) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.oracle = o
}

// UseMetric selects a backend by name. cacheRows bounds the lazy backend's
// row cache (0 selects the default budget); other backends ignore it. An
// already-installed oracle of the requested backend is kept — except a lazy
// oracle whose budget differs from an explicitly requested cacheRows, which
// is rebuilt so MetricRows actually caps memory.
func (in *Instance) UseMetric(b MetricBackend, cacheRows int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.oracle != nil && backendOf(in.oracle) == b {
		l, ok := in.oracle.(*metric.Lazy)
		if !ok || cacheRows <= 0 || l.Budget() == cacheRows {
			return
		}
	}
	in.oracle = in.buildOracle(b, cacheRows)
}

// backendOf maps an oracle back to the selector that would build it.
func backendOf(o metric.Oracle) MetricBackend {
	switch o.Kind() {
	case metric.KindDense:
		return MetricDense
	case metric.KindLazy:
		return MetricLazy
	case metric.KindTree:
		return MetricTree
	}
	return MetricAuto
}

// buildOracle constructs the requested backend; called with in.mu held.
func (in *Instance) buildOracle(b MetricBackend, cacheRows int) metric.Oracle {
	if b == MetricAuto {
		switch {
		case in.G.N() <= DenseMetricMaxNodes:
			b = MetricDense
		case in.G.IsTree():
			b = MetricTree
		default:
			b = MetricLazy
		}
	}
	switch b {
	case MetricDense:
		return metric.New(in.G.AllPairsParallel(0))
	case MetricTree:
		if !in.G.IsTree() {
			panic("core: MetricTree on a non-tree network")
		}
		return metric.NewTree(in.G)
	default:
		return metric.NewLazy(in.G, cacheRows)
	}
}

// Dist returns the dense shortest-path matrix, computing it on first use.
// Safe for concurrent use; the computation itself is parallelised.
//
// Deprecated: Dist materializes Θ(n²) memory regardless of the selected
// backend. New code should use Metric and the helpers in internal/metric;
// Dist remains for the small-n exact solvers and tests that genuinely need
// a matrix.
func (in *Instance) Dist() [][]float64 {
	in.distOnce.Do(func() {
		in.mu.Lock()
		if in.oracle == nil {
			in.oracle = in.buildOracle(MetricDense, 0)
		}
		o := in.oracle
		in.mu.Unlock()
		if s, ok := o.(*metric.Space); ok {
			in.dist = s.D
			return
		}
		in.dist = in.G.AllPairsParallel(0)
	})
	return in.dist
}

// Space returns the dense metric-space view of the network.
//
// Deprecated: see Dist; use Metric instead.
func (in *Instance) Space() *metric.Space { return metric.New(in.Dist()) }

// Placement assigns every object a non-empty copy set (node ids, sorted).
type Placement struct {
	Copies [][]int
}

// Clone deep-copies a placement.
func (p Placement) Clone() Placement {
	c := Placement{Copies: make([][]int, len(p.Copies))}
	for i, s := range p.Copies {
		c.Copies[i] = append([]int(nil), s...)
	}
	return c
}

// Validate checks that the placement matches the instance shape: one
// non-empty copy set of in-range nodes per object.
func (p Placement) Validate(in *Instance) error {
	if len(p.Copies) != len(in.Objects) {
		return fmt.Errorf("core: placement covers %d objects, instance has %d", len(p.Copies), len(in.Objects))
	}
	for i, s := range p.Copies {
		if len(s) == 0 {
			return fmt.Errorf("core: object %d has no copies", i)
		}
		for _, v := range s {
			if v < 0 || v >= in.N() {
				return fmt.Errorf("core: object %d placed on invalid node %d", i, v)
			}
		}
	}
	return nil
}
