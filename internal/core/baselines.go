package core

import (
	"math"
	"math/rand"

	"netplace/internal/facility"
)

// Baseline strategies the evaluation compares against (experiment E5). Each
// returns a placement for the whole instance.

// FullReplication places a copy of every object on every node: reads are
// free, storage and updates are maximal. This is the classic "mirror
// everywhere" strategy.
func FullReplication(in *Instance) Placement {
	all := make([]int, in.N())
	for v := range all {
		all[v] = v
	}
	p := Placement{Copies: make([][]int, len(in.Objects))}
	for i := range p.Copies {
		p.Copies[i] = append([]int(nil), all...)
	}
	return p
}

// SingleBest places each object on the single node minimising the exact
// total cost of a one-copy placement (a weighted 1-median including the
// storage fee). With one copy there is no update multicast, so this is
// exactly optimal among single-copy placements. Inherently Θ(n²) distance
// work (one oracle row per candidate node).
func SingleBest(in *Instance) Placement {
	o := in.Metric()
	p := Placement{Copies: make([][]int, len(in.Objects))}
	for i := range in.Objects {
		obj := &in.Objects[i]
		best, bestCost := 0, math.Inf(1)
		for v := 0; v < in.N(); v++ {
			row := o.Row(v)
			c := in.Storage[v]
			for u := 0; u < in.N(); u++ {
				c += float64(obj.Reads[u]+obj.Writes[u]) * row[u]
			}
			if c < bestCost {
				best, bestCost = v, c
			}
		}
		p.Copies[i] = []int{best}
	}
	return p
}

// FacilityOnly runs only phase 1 of the approximation algorithm (the
// related facility location problem), ignoring update costs entirely. It is
// the natural "treat it as pure facility location" strawman and the E10
// ablation's phase-1-only arm.
func FacilityOnly(in *Instance, solver facility.Solver) Placement {
	if solver == nil {
		solver = facility.LocalSearch
	}
	o := in.Metric()
	p := Placement{Copies: make([][]int, len(in.Objects))}
	for i := range in.Objects {
		obj := &in.Objects[i]
		req := obj.Requests()
		if req.Total() == 0 {
			p.Copies[i] = cheapestNode(in)
			continue
		}
		fl := &facility.Instance{Open: in.Storage, Demand: req.Count, Metric: o}
		p.Copies[i] = solver(fl)
	}
	return p
}

// GreedyAdd grows each object's copy set greedily from the best single
// node, adding the copy that most reduces the exact total cost (including
// updates) until no addition helps. A strong heuristic baseline.
func GreedyAdd(in *Instance) Placement {
	p := SingleBest(in)
	for i := range in.Objects {
		obj := &in.Objects[i]
		cur := in.ObjectCost(obj, p.Copies[i]).Total()
		has := make([]bool, in.N())
		for _, c := range p.Copies[i] {
			has[c] = true
		}
		for {
			bestV, bestCost := -1, cur
			for v := 0; v < in.N(); v++ {
				if has[v] {
					continue
				}
				c := in.ObjectCost(obj, append(p.Copies[i], v)).Total()
				if c < bestCost {
					bestV, bestCost = v, c
				}
			}
			if bestV < 0 {
				break
			}
			has[bestV] = true
			p.Copies[i] = insertSorted(p.Copies[i], bestV)
			cur = bestCost
		}
	}
	return p
}

// RandomPlacement places each object on k distinct uniform random nodes.
func RandomPlacement(in *Instance, k int, rng *rand.Rand) Placement {
	if k < 1 {
		k = 1
	}
	if k > in.N() {
		k = in.N()
	}
	p := Placement{Copies: make([][]int, len(in.Objects))}
	for i := range p.Copies {
		perm := rng.Perm(in.N())[:k]
		set := append([]int(nil), perm...)
		sortInts(set)
		p.Copies[i] = set
	}
	return p
}

func cheapestNode(in *Instance) []int {
	best := 0
	for v := 1; v < in.N(); v++ {
		if in.Storage[v] < in.Storage[best] {
			best = v
		}
	}
	return []int{best}
}

func insertSorted(s []int, v int) []int {
	s = append(s, v)
	for i := len(s) - 1; i > 0 && s[i-1] > s[i]; i-- {
		s[i-1], s[i] = s[i], s[i-1]
	}
	return s
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
