package core

import (
	"math"
	"sync"

	"netplace/internal/metric"
)

// Breakdown decomposes the total cost of a placement for one object or for a
// whole instance, following the restricted-placement accounting of
// Section 2: the write request's message from its home to the nearest copy
// is booked under Read (the paper folds it into the read cost, "we do not
// differentiate between read and write requests any more"); Update is the
// multicast cost W * mst(S).
type Breakdown struct {
	Storage float64 // sum of cs over copy nodes
	Read    float64 // sum over reads and writes of distance to nearest copy
	Update  float64 // W * weight of the multicast (MST) tree over copies
}

// Total returns Storage + Read + Update.
func (b Breakdown) Total() float64 { return b.Storage + b.Read + b.Update }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Storage += o.Storage
	b.Read += o.Read
	b.Update += o.Update
}

// Scale returns the breakdown with every component multiplied by s — the
// per-byte fee model applied to an object of size s. ObjectCost is
// exactly ObjectCostRaw followed by Scale, and the incremental what-if
// path relies on that identity: a size-only change reuses the raw
// breakdown and re-scales, byte-identical to a fresh evaluation.
func (b Breakdown) Scale(s float64) Breakdown {
	return Breakdown{Storage: b.Storage * s, Read: b.Read * s, Update: b.Update * s}
}

// costPool recycles metric workspaces for cost evaluations, so repeated
// pricing of placements over a resident instance allocates nothing.
var costPool = sync.Pool{New: func() interface{} { return metric.NewWorkspace() }}

// ObjectCost computes the cost breakdown of placing object obj on copy set
// copies (non-empty) under the restricted model: reads and write-access
// messages go to the nearest copy; updates propagate along a metric-closure
// minimum spanning tree over the copies. All three components scale with
// the object's size (fees are per byte). Nearest-copy distances come from
// one multi-source sweep of the oracle through pooled scratch, so the
// evaluation needs neither a dense matrix nor steady-state allocations.
func (in *Instance) ObjectCost(obj *Object, copies []int) Breakdown {
	return in.ObjectCostRaw(obj, copies).Scale(obj.Scale())
}

// ObjectCostParallel is ObjectCost with an explicit worker knob for the
// update-tree row prefetch (0: size-aware auto, 1: serial, negative: all
// cores — Options.Parallel semantics). The breakdown is bit-identical at
// every worker count; the knob only decides whether uncached copy rows
// build concurrently when the copy set outgrows the oracle's row cache.
func (in *Instance) ObjectCostParallel(obj *Object, copies []int, parallel int) Breakdown {
	return in.ObjectCostRawParallel(obj, copies, parallel).Scale(obj.Scale())
}

// ObjectCostRaw is ObjectCost before size scaling: the breakdown of a
// size-1 object with the same request frequencies. The incremental what-if
// path caches raw breakdowns so size changes re-scale instead of re-sweep.
func (in *Instance) ObjectCostRaw(obj *Object, copies []int) Breakdown {
	return in.ObjectCostRawParallel(obj, copies, 0)
}

// ObjectCostRawParallel is ObjectCostRaw with the ObjectCostParallel
// worker knob.
func (in *Instance) ObjectCostRawParallel(obj *Object, copies []int, parallel int) Breakdown {
	ws := costPool.Get().(*metric.Workspace)
	b := in.objectCostRaw(ws, obj, copies, parallel)
	costPool.Put(ws)
	return b
}

// objectCostRaw evaluates the unscaled breakdown using ws for scratch.
func (in *Instance) objectCostRaw(ws *metric.Workspace, obj *Object, copies []int, parallel int) Breakdown {
	o := in.Metric()
	var b Breakdown
	for _, v := range copies {
		b.Storage += in.Storage[v]
	}
	near := ws.NearestOf(o, copies)
	for v := 0; v < in.N(); v++ {
		f := obj.Reads[v] + obj.Writes[v]
		if f == 0 {
			continue
		}
		b.Read += float64(f) * near[v]
	}
	if w := obj.TotalWrites(); w > 0 && len(copies) > 1 {
		b.Update = float64(w) * ws.PairwiseMSTParallel(o, copies, parallel)
	}
	return b
}

// Cost computes the full-instance cost breakdown of a placement.
func (in *Instance) Cost(p Placement) Breakdown {
	ws := costPool.Get().(*metric.Workspace)
	var b Breakdown
	for i := range in.Objects {
		obj := &in.Objects[i]
		b.Add(in.objectCostRaw(ws, obj, p.Copies[i], 0).Scale(obj.Scale()))
	}
	costPool.Put(ws)
	return b
}

// NearestCopy returns, for every node, the distance to and identity of the
// nearest copy in the given copy set (ties broken toward the earlier copy).
func (in *Instance) NearestCopy(copies []int) (dist []float64, which []int) {
	d, idx := metric.NearestIdx(in.Metric(), copies)
	which = idx
	for v, i := range idx {
		if i >= 0 {
			which[v] = copies[i]
		} else {
			d[v] = math.Inf(1)
			which[v] = -1
		}
	}
	return d, which
}
