package core

import (
	"math"
	"math/rand"
	"testing"

	"netplace/internal/gen"
	"netplace/internal/graph"
	"netplace/internal/steiner"
)

func randomCoreInstance(rng *rand.Rand, n, objects int, writeP float64) *Instance {
	g := gen.ErdosRenyi(n, 0.35, rng, gen.UniformWeights(rng, 1, 6))
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = rng.Float64() * 20
	}
	objs := make([]Object, objects)
	for i := range objs {
		objs[i] = Object{Reads: make([]int64, n), Writes: make([]int64, n)}
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.8 {
				objs[i].Reads[v] = rng.Int63n(10)
			}
			if rng.Float64() < writeP {
				objs[i].Writes[v] = rng.Int63n(6)
			}
		}
	}
	return MustInstance(g, storage, objs)
}

func TestObjectCostAgainstLiteralDefinition(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		in := randomCoreInstance(rng, n, 1, 0.5)
		obj := &in.Objects[0]
		k := 1 + rng.Intn(n)
		copies := rng.Perm(n)[:k]
		got := in.ObjectCost(obj, copies)

		dist := in.Dist()
		var storage, read float64
		for _, c := range copies {
			storage += in.Storage[c]
		}
		for v := 0; v < n; v++ {
			best := math.Inf(1)
			for _, c := range copies {
				best = math.Min(best, dist[v][c])
			}
			read += float64(obj.Reads[v]+obj.Writes[v]) * best
		}
		update := float64(obj.TotalWrites()) * graph.MetricMST(dist, copies)
		if math.Abs(got.Storage-storage) > 1e-9 || math.Abs(got.Read-read) > 1e-9 || math.Abs(got.Update-update) > 1e-9 {
			t.Fatalf("seed %d: breakdown %+v, want {%v %v %v}", seed, got, storage, read, update)
		}
		if math.Abs(got.Total()-(storage+read+update)) > 1e-9 {
			t.Fatalf("seed %d: Total inconsistent", seed)
		}
	}
}

func TestSingleCopyHasNoUpdateCost(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomCoreInstance(rng, 8, 1, 1)
	b := in.ObjectCost(&in.Objects[0], []int{3})
	if b.Update != 0 {
		t.Fatalf("single copy update cost %v", b.Update)
	}
}

// TestApproximateProperPlacement asserts Lemma 8 as an executable
// invariant: the algorithm's output satisfies the proper-placement
// conditions with k1 <= 29 and pairwise factor >= 4 (k2 = 2).
func TestApproximateProperPlacement(t *testing.T) {
	worstK1 := 0.0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(14)
		in := randomCoreInstance(rng, n, 1, 0.6)
		obj := &in.Objects[0]
		if obj.Requests().Total() == 0 {
			continue
		}
		p := Approximate(in, Options{})
		rep := in.CheckProper(obj, p.Copies[0])
		if rep.MaxK1 > 29+1e-9 {
			t.Fatalf("seed %d: k1 = %v exceeds Lemma 8's 29", seed, rep.MaxK1)
		}
		if rep.MaxK1 > worstK1 {
			worstK1 = rep.MaxK1
		}
		if rep.Copies > 1 && rep.MinPairFactor < 4-1e-9 {
			t.Fatalf("seed %d: copy pair factor %v below 4", seed, rep.MinPairFactor)
		}
	}
	t.Logf("worst k1 observed: %.3f (Lemma 8 bound: 29)", worstK1)
}

// TestApproximateNearOptimal measures the empirical approximation factor
// against the exact restricted-model optimum on small instances; the
// theorem guarantees a constant, observed ratios should be small.
func TestApproximateNearOptimal(t *testing.T) {
	worst := 1.0
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7)
		in := randomCoreInstance(rng, n, 1, 0.5)
		obj := &in.Objects[0]
		p := Approximate(in, Options{})
		got := in.ObjectCost(obj, p.Copies[0]).Total()
		// exact optimum by enumeration
		best := math.Inf(1)
		set := make([]int, 0, n)
		for mask := 1; mask < 1<<n; mask++ {
			set = set[:0]
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					set = append(set, v)
				}
			}
			if c := in.ObjectCost(obj, set).Total(); c < best {
				best = c
			}
		}
		if got < best-1e-9 {
			t.Fatalf("seed %d: algorithm cost %v below optimum %v", seed, got, best)
		}
		if best > 0 {
			if r := got / best; r > worst {
				worst = r
			}
		}
	}
	if worst > 10 {
		t.Fatalf("empirical approximation ratio %v implausibly large", worst)
	}
	t.Logf("worst empirical ratio vs restricted optimum: %.4f", worst)
}

func TestApproximateZeroRequestObject(t *testing.T) {
	g := gen.Path(5, gen.UnitWeights)
	storage := []float64{9, 4, 1, 6, 2}
	objs := []Object{{Reads: make([]int64, 5), Writes: make([]int64, 5)}}
	in := MustInstance(g, storage, objs)
	p := Approximate(in, Options{})
	if len(p.Copies[0]) != 1 || p.Copies[0][0] != 2 {
		t.Fatalf("zero-request object placed at %v, want cheapest node [2]", p.Copies[0])
	}
}

func TestApproximatePhaseAblation(t *testing.T) {
	// Skipping phase 2 must never *create* copies; skipping phase 3 must
	// never delete them. Sizes must be consistent.
	rng := rand.New(rand.NewSource(11))
	in := randomCoreInstance(rng, 14, 1, 0.4)
	full := Approximate(in, Options{})
	noP3 := Approximate(in, Options{SkipPhase3: true})
	if len(noP3.Copies[0]) < len(full.Copies[0]) {
		t.Fatalf("phase 3 removed nothing yet full placement bigger: %d vs %d",
			len(full.Copies[0]), len(noP3.Copies[0]))
	}
	noP2 := Approximate(in, Options{SkipPhase2: true, SkipPhase3: true})
	if len(noP2.Copies[0]) > len(noP3.Copies[0]) {
		t.Fatal("skipping phase 2 must not add copies")
	}
}

func TestWriteHeavyCollapsesReplication(t *testing.T) {
	// With massive write traffic, maintaining many copies is a losing
	// proposition: the algorithm must place dramatically fewer copies than
	// in the read-only twin instance.
	rng := rand.New(rand.NewSource(5))
	n := 24
	g := gen.Clustered(gen.ClusteredParams{Clusters: 4, ClusterSize: 6, IntraWeight: 0.2, InterWeight: 4, Backbone: 0.3}, rng)
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 0.5
	}
	readObj := Object{Reads: make([]int64, n), Writes: make([]int64, n)}
	writeObj := Object{Reads: make([]int64, n), Writes: make([]int64, n)}
	for v := 0; v < n; v++ {
		readObj.Reads[v] = 20
		writeObj.Reads[v] = 2
		writeObj.Writes[v] = 18
	}
	in := MustInstance(g, storage, []Object{readObj, writeObj})
	p := Approximate(in, Options{})
	if len(p.Copies[0]) <= len(p.Copies[1]) {
		t.Fatalf("read-only object got %d copies, write-heavy got %d; expected strictly more for read-only",
			len(p.Copies[0]), len(p.Copies[1]))
	}
}

func TestBaselinesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomCoreInstance(rng, 10, 2, 0.5)
	fr := FullReplication(in)
	if len(fr.Copies[0]) != 10 || len(fr.Copies[1]) != 10 {
		t.Fatal("full replication must use all nodes")
	}
	sb := SingleBest(in)
	for i := range sb.Copies {
		if len(sb.Copies[i]) != 1 {
			t.Fatal("single best must place one copy")
		}
	}
	if err := fr.Validate(in); err != nil {
		t.Fatal(err)
	}
	if err := sb.Validate(in); err != nil {
		t.Fatal(err)
	}
	ga := GreedyAdd(in)
	if err := ga.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Greedy starts from SingleBest and only improves.
	if in.Cost(ga).Total() > in.Cost(sb).Total()+1e-9 {
		t.Fatal("greedy-add worse than its own starting point")
	}
	fo := FacilityOnly(in, nil)
	if err := fo.Validate(in); err != nil {
		t.Fatal(err)
	}
	rp := RandomPlacement(in, 3, rng)
	if err := rp.Validate(in); err != nil {
		t.Fatal(err)
	}
	for i := range rp.Copies {
		if len(rp.Copies[i]) != 3 {
			t.Fatal("random placement size wrong")
		}
	}
}

func TestSingleBestIsOptimalAmongSingletons(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := randomCoreInstance(rng, 9, 1, 0.7)
	sb := SingleBest(in)
	obj := &in.Objects[0]
	best := in.ObjectCost(obj, sb.Copies[0]).Total()
	for v := 0; v < in.N(); v++ {
		if c := in.ObjectCost(obj, []int{v}).Total(); c < best-1e-9 {
			t.Fatalf("node %d beats SingleBest: %v < %v", v, c, best)
		}
	}
}

func TestInstanceValidation(t *testing.T) {
	g := gen.Path(3, gen.UnitWeights)
	if _, err := NewInstance(g, []float64{1, 2}, nil); err == nil {
		t.Fatal("short storage vector accepted")
	}
	if _, err := NewInstance(g, []float64{1, 2, -1}, nil); err == nil {
		t.Fatal("negative storage accepted")
	}
	bad := []Object{{Reads: []int64{1}, Writes: []int64{0, 0, 0}}}
	if _, err := NewInstance(g, []float64{1, 2, 3}, bad); err == nil {
		t.Fatal("malformed object accepted")
	}
	neg := []Object{{Reads: []int64{0, -1, 0}, Writes: []int64{0, 0, 0}}}
	if _, err := NewInstance(g, []float64{1, 2, 3}, neg); err == nil {
		t.Fatal("negative frequency accepted")
	}
	disc := graph.New(2)
	if _, err := NewInstance(disc, []float64{1, 1}, nil); err == nil {
		t.Fatal("disconnected network accepted")
	}
}

func TestPlacementValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomCoreInstance(rng, 5, 2, 0.3)
	p := Placement{Copies: [][]int{{0}, {4}}}
	if err := p.Validate(in); err != nil {
		t.Fatal(err)
	}
	if err := (Placement{Copies: [][]int{{0}}}).Validate(in); err == nil {
		t.Fatal("object count mismatch accepted")
	}
	if err := (Placement{Copies: [][]int{{0}, {}}}).Validate(in); err == nil {
		t.Fatal("empty copy set accepted")
	}
	if err := (Placement{Copies: [][]int{{0}, {9}}}).Validate(in); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestUpdateCostUsesMetricMSTNotSteiner(t *testing.T) {
	// On a star with leaf copies, the restricted model's MST update is up
	// to 2x the Steiner tree; the accounting must use the MST figure.
	k := 5
	g := graph.New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddEdge(0, i, 1)
	}
	storage := make([]float64, k+1)
	obj := Object{Reads: make([]int64, k+1), Writes: make([]int64, k+1)}
	obj.Writes[0] = 1
	in := MustInstance(g, storage, []Object{obj})
	copies := []int{1, 2, 3, 4, 5}
	b := in.ObjectCost(&in.Objects[0], copies)
	wantMST := float64(2 * (k - 1))
	if math.Abs(b.Update-wantMST) > 1e-9 {
		t.Fatalf("update %v, want MST-based %v", b.Update, wantMST)
	}
	st := steiner.Exact(g, copies)
	if st >= wantMST {
		t.Fatal("test instance does not separate MST from Steiner")
	}
}
