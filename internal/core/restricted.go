package core

import (
	"sort"

	"netplace/internal/metric"
)

// MakeRestricted applies the copy-deletion procedure from the proof of
// Lemma 1 to an arbitrary copy set: while some copy serves fewer than W
// requests (W = total writes of the object), delete the under-used copy
// with maximum tree distance from the root of the multicast MST (built once
// over the input copies, rooted at the first copy) and reassign its
// requests to the nearest remaining copy. The result is a "restricted"
// placement in which every copy serves at least min(W, total requests)
// requests.
//
// The proof charges each deletion's reassignment cost against the update
// cost of the placement, giving C_OPTW <= 4 C_OPT when the input is an
// optimal placement. One accounting subtlety carries over to evaluated
// costs: the proof keeps multicasting over the *original* copies' MST,
// whereas ObjectCost rebuilds the MST over the survivors, which in a metric
// is at most 2x the original (Euler-tour shortcutting), so the evaluated
// bound is 8x in the worst case; measured gaps are far below 4 (see
// TestMakeRestrictedCostBound and experiment E8).
func MakeRestricted(in *Instance, obj *Object, copies []int) []int {
	W := obj.TotalWrites()
	if W == 0 || len(copies) <= 1 {
		return append([]int(nil), copies...)
	}
	o := in.Metric()

	// Multicast tree over the input copies, rooted at copies[0]; tree
	// distance of a copy = weight of its unique MST path to the root.
	edges, _ := metric.PairwiseMSTTree(o, copies)
	children := make([][]int, len(copies))
	for _, e := range edges {
		children[e[0]] = append(children[e[0]], e[1])
	}
	treeDist := make([]float64, len(copies))
	var walk func(ci int)
	walk = func(ci int) {
		for _, ch := range children[ci] {
			treeDist[ch] = treeDist[ci] + o.Dist(copies[ci], copies[ch])
			walk(ch)
		}
	}
	walk(0)

	alive := make([]bool, len(copies))
	for i := range alive {
		alive[i] = true
	}
	aliveCount := len(copies)

	// served[i] = number of requests whose nearest alive copy is copies[i]
	// (ties broken toward the lower copy index — NearestIdx's contract,
	// preserved because alive copies keep their relative order).
	served := make([]int64, len(copies))
	aliveSet := make([]int, 0, len(copies))
	aliveIdx := make([]int, 0, len(copies))
	recount := func() {
		for i := range served {
			served[i] = 0
		}
		aliveSet, aliveIdx = aliveSet[:0], aliveIdx[:0]
		for i, c := range copies {
			if alive[i] {
				aliveSet = append(aliveSet, c)
				aliveIdx = append(aliveIdx, i)
			}
		}
		_, idx := metric.NearestIdx(o, aliveSet)
		for v := 0; v < in.N(); v++ {
			f := obj.Reads[v] + obj.Writes[v]
			if f == 0 {
				continue
			}
			served[aliveIdx[idx[v]]] += f
		}
	}

	for aliveCount > 1 {
		recount()
		// victim: under-used copy farthest from the MST root.
		victim := -1
		for i := range copies {
			if !alive[i] || served[i] >= W {
				continue
			}
			if victim < 0 || treeDist[i] > treeDist[victim] {
				victim = i
			}
		}
		if victim < 0 {
			break // every alive copy serves >= W requests
		}
		alive[victim] = false
		aliveCount--
	}

	out := make([]int, 0, aliveCount)
	for i, c := range copies {
		if alive[i] {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// ServeCounts reports, for each copy, the number of requests (fr + fw) whose
// nearest copy it is, with ties broken toward the earlier copy in the slice.
// Used to check the restricted-placement property.
func (in *Instance) ServeCounts(obj *Object, copies []int) []int64 {
	_, idx := metric.NearestIdx(in.Metric(), copies)
	served := make([]int64, len(copies))
	for v := 0; v < in.N(); v++ {
		f := obj.Reads[v] + obj.Writes[v]
		if f == 0 {
			continue
		}
		served[idx[v]] += f
	}
	return served
}
