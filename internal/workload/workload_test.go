package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Objects: 4, MeanRate: 3, WriteFraction: 0.4, ZipfS: 1.0}
	a := Generate(20, spec, rand.New(rand.NewSource(42)))
	b := Generate(20, spec, rand.New(rand.NewSource(42)))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different workloads")
	}
	c := Generate(20, spec, rand.New(rand.NewSource(43)))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateShapeAndNames(t *testing.T) {
	objs := Generate(12, Spec{Objects: 30, MeanRate: 1}, rand.New(rand.NewSource(1)))
	if len(objs) != 30 {
		t.Fatalf("got %d objects", len(objs))
	}
	seen := map[string]bool{}
	for _, o := range objs {
		if len(o.Reads) != 12 || len(o.Writes) != 12 {
			t.Fatal("frequency vector length wrong")
		}
		if o.Name == "" || seen[o.Name] {
			t.Fatalf("bad or duplicate name %q", o.Name)
		}
		seen[o.Name] = true
		for v := 0; v < 12; v++ {
			if o.Reads[v] < 0 || o.Writes[v] < 0 {
				t.Fatal("negative frequency")
			}
		}
	}
}

func TestWriteFractionRespected(t *testing.T) {
	for _, wf := range []float64{0, 0.5, 1} {
		objs := Generate(200, Spec{Objects: 3, MeanRate: 5, WriteFraction: wf}, rand.New(rand.NewSource(7)))
		var reads, writes int64
		for _, o := range objs {
			reads += o.TotalReads()
			writes += o.TotalWrites()
		}
		total := reads + writes
		if total == 0 {
			t.Fatal("empty workload")
		}
		got := float64(writes) / float64(total)
		if math.Abs(got-wf) > 0.05 {
			t.Fatalf("write fraction %v, want ~%v", got, wf)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	objs := Generate(100, Spec{Objects: 10, MeanRate: 4, ZipfS: 1.2}, rand.New(rand.NewSource(3)))
	first := objs[0].TotalReads() + objs[0].TotalWrites()
	last := objs[9].TotalReads() + objs[9].TotalWrites()
	if first <= 2*last {
		t.Fatalf("zipf skew too weak: rank-1 volume %d vs rank-10 %d", first, last)
	}
}

func TestHotspotConcentration(t *testing.T) {
	n := 100
	objs := Generate(n, Spec{Objects: 1, MeanRate: 5, Hotspot: 0.8, HotspotNodes: 5},
		rand.New(rand.NewSource(11)))
	o := objs[0]
	type nv struct {
		v int
		c int64
	}
	var total int64
	counts := make([]nv, n)
	for v := 0; v < n; v++ {
		c := o.Reads[v] + o.Writes[v]
		counts[v] = nv{v, c}
		total += c
	}
	// top 5 nodes by volume should carry well over half the mass
	top := int64(0)
	for i := 0; i < 5; i++ {
		best := i
		for j := i; j < n; j++ {
			if counts[j].c > counts[best].c {
				best = j
			}
		}
		counts[i], counts[best] = counts[best], counts[i]
		top += counts[i].c
	}
	if total == 0 || float64(top)/float64(total) < 0.5 {
		t.Fatalf("hotspot mass %d of %d too diffuse", top, total)
	}
}

func TestUniformAndPointLoad(t *testing.T) {
	u := Uniform(5, 3, 2)[0]
	for v := 0; v < 5; v++ {
		if u.Reads[v] != 3 || u.Writes[v] != 2 {
			t.Fatal("uniform load wrong")
		}
	}
	p := PointLoad(6, map[int]int64{2: 7}, map[int]int64{4: 1})[0]
	if p.Reads[2] != 7 || p.Writes[4] != 1 || p.Reads[0] != 0 {
		t.Fatal("point load wrong")
	}
}

func TestObjNames(t *testing.T) {
	if objName(0) != "obj-a" {
		t.Fatalf("objName(0) = %q", objName(0))
	}
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		n := objName(i)
		if seen[n] {
			t.Fatalf("duplicate name %q at %d", n, i)
		}
		seen[n] = true
	}
}
