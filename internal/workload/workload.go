// Package workload generates request-frequency patterns for the evaluation:
// uniform background load, Zipf-ranked object popularity (WWW pages),
// hotspot locality (a few nodes produce most requests), and read/write
// mixes swept from read-only to write-only.
package workload

import (
	"math"
	"math/rand"

	"netplace/internal/core"
)

// Spec describes one generated workload.
type Spec struct {
	Objects int // number of shared objects
	// MeanRate is the average number of requests per node-object pair.
	MeanRate float64
	// WriteFraction in [0, 1]: expected share of requests that are writes.
	WriteFraction float64
	// ZipfS is the Zipf exponent ranking object popularity; 0 disables
	// popularity skew (all objects equally hot).
	ZipfS float64
	// Hotspot concentrates request mass: fraction in [0,1) of total volume
	// issued by the HotspotNodes busiest nodes. 0 disables.
	Hotspot      float64
	HotspotNodes int
	// SizeSpread > 0 draws per-object sizes from a log-uniform distribution
	// over [1/SizeSpread, SizeSpread] (the paper's non-uniform model);
	// 0 leaves all sizes at the uniform default 1.
	SizeSpread float64
}

// Generate draws the per-object read/write frequencies for an n-node
// network. Frequencies are Poisson-like (rounded exponentials) so that
// instances have integral counts; determinism comes from rng.
func Generate(n int, spec Spec, rng *rand.Rand) []core.Object {
	if spec.Objects < 1 {
		spec.Objects = 1
	}
	objects := make([]core.Object, spec.Objects)
	// Zipf popularity weights per object.
	pop := make([]float64, spec.Objects)
	var popSum float64
	for i := range pop {
		if spec.ZipfS > 0 {
			pop[i] = 1 / math.Pow(float64(i+1), spec.ZipfS)
		} else {
			pop[i] = 1
		}
		popSum += pop[i]
	}
	// Node activity weights (hotspots).
	act := make([]float64, n)
	for v := range act {
		act[v] = 1
	}
	if spec.Hotspot > 0 && spec.HotspotNodes > 0 && spec.HotspotNodes < n {
		perm := rng.Perm(n)
		hot := perm[:spec.HotspotNodes]
		cold := float64(n - spec.HotspotNodes)
		for _, v := range hot {
			act[v] = spec.Hotspot / (1 - spec.Hotspot) * cold / float64(spec.HotspotNodes)
		}
	}
	for i := range objects {
		o := &objects[i]
		o.Name = objName(i)
		o.Reads = make([]int64, n)
		o.Writes = make([]int64, n)
		if spec.SizeSpread > 1 {
			lg := math.Log(spec.SizeSpread)
			o.Size = math.Exp((2*rng.Float64() - 1) * lg)
		}
		// Per node-object rate scaled by popularity and activity so the
		// overall mean matches MeanRate.
		base := spec.MeanRate * pop[i] * float64(spec.Objects) / popSum
		for v := 0; v < n; v++ {
			rate := base * act[v]
			total := drawCount(rng, rate)
			writes := int64(0)
			for k := int64(0); k < total; k++ {
				if rng.Float64() < spec.WriteFraction {
					writes++
				}
			}
			o.Writes[v] = writes
			o.Reads[v] = total - writes
		}
	}
	return objects
}

// drawCount draws a non-negative integer with the given mean using a
// geometric-ish rounded exponential; cheap, deterministic and adequate for
// load generation.
func drawCount(rng *rand.Rand, mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	x := rng.ExpFloat64() * mean
	return int64(math.Round(x))
}

func objName(i int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	name := []byte{'o', 'b', 'j', '-'}
	if i == 0 {
		return string(append(name, 'a'))
	}
	var digits []byte
	for i > 0 {
		digits = append(digits, alpha[i%26])
		i /= 26
	}
	for k := len(digits) - 1; k >= 0; k-- {
		name = append(name, digits[k])
	}
	return string(name)
}

// Request is one event of a request sequence: node V issues a read or
// write for object Obj.
type Request struct {
	Obj   int
	V     int
	Write bool
}

// Sequence draws a random request sequence of the given length whose
// empirical frequencies follow the objects' fr/fw tables — the dynamic
// (online) counterpart of a static instance. Sampling is proportional
// without replacement-style exhaustion so short sequences remain faithful
// in expectation.
func Sequence(objects []core.Object, length int, rng *rand.Rand) []Request {
	type entry struct {
		req    Request
		weight int64
	}
	var entries []entry
	var total int64
	for oi := range objects {
		o := &objects[oi]
		for v := range o.Reads {
			if o.Reads[v] > 0 {
				entries = append(entries, entry{Request{Obj: oi, V: v}, o.Reads[v]})
				total += o.Reads[v]
			}
			if o.Writes[v] > 0 {
				entries = append(entries, entry{Request{Obj: oi, V: v, Write: true}, o.Writes[v]})
				total += o.Writes[v]
			}
		}
	}
	if total == 0 {
		return nil
	}
	// cumulative weights for O(log k) sampling
	cum := make([]int64, len(entries))
	var run int64
	for i, e := range entries {
		run += e.weight
		cum[i] = run
	}
	out := make([]Request, length)
	for i := 0; i < length; i++ {
		x := rng.Int63n(total)
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out[i] = entries[lo].req
	}
	return out
}

// Uniform returns a single-object workload with every node issuing exactly
// reads reads and writes writes; useful for analytic test cases.
func Uniform(n int, reads, writes int64) []core.Object {
	o := core.Object{Name: "obj-uniform", Reads: make([]int64, n), Writes: make([]int64, n)}
	for v := 0; v < n; v++ {
		o.Reads[v] = reads
		o.Writes[v] = writes
	}
	return []core.Object{o}
}

// PointLoad returns a single-object workload where only the given nodes
// issue requests, with the supplied read/write counts.
func PointLoad(n int, readsAt map[int]int64, writesAt map[int]int64) []core.Object {
	o := core.Object{Name: "obj-point", Reads: make([]int64, n), Writes: make([]int64, n)}
	for v, c := range readsAt {
		o.Reads[v] = c
	}
	for v, c := range writesAt {
		o.Writes[v] = c
	}
	return []core.Object{o}
}
