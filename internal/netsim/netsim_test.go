package netsim

import (
	"math"
	"math/rand"
	"testing"

	"netplace/internal/core"
	"netplace/internal/gen"
)

func randomSetup(rng *rand.Rand, n, objects int) (*core.Instance, core.Placement) {
	g := gen.ErdosRenyi(n, 0.35, rng, gen.UniformWeights(rng, 1, 5))
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = rng.Float64() * 10
	}
	objs := make([]core.Object, objects)
	for i := range objs {
		objs[i] = core.Object{Reads: make([]int64, n), Writes: make([]int64, n)}
		for v := 0; v < n; v++ {
			objs[i].Reads[v] = rng.Int63n(4)
			objs[i].Writes[v] = rng.Int63n(3)
		}
	}
	in := core.MustInstance(g, storage, objs)
	p := core.Placement{Copies: make([][]int, objects)}
	for i := range p.Copies {
		k := 1 + rng.Intn(n)
		set := append([]int(nil), rng.Perm(n)[:k]...)
		p.Copies[i] = set
	}
	return in, p
}

// TestMeteredEqualsAnalytic is experiment E12's core assertion: replaying
// the workload message-by-message meters exactly the closed-form cost the
// optimisation algorithms use.
func TestMeteredEqualsAnalytic(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in, p := randomSetup(rng, 3+rng.Intn(10), 1+rng.Intn(3))
		sim, err := New(in, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := sim.Run()
		want := in.Cost(p)
		if math.Abs(st.Total()-want.Total()) > 1e-6*(1+want.Total()) {
			t.Fatalf("seed %d: metered %v, analytic %v", seed, st.Total(), want.Total())
		}
		if math.Abs(st.StorageCost-want.Storage) > 1e-9 {
			t.Fatalf("seed %d: storage metered %v, analytic %v", seed, st.StorageCost, want.Storage)
		}
		if math.Abs(st.TransmissionCost-(want.Read+want.Update)) > 1e-6*(1+want.Total()) {
			t.Fatalf("seed %d: transmission metered %v, analytic %v", seed,
				st.TransmissionCost, want.Read+want.Update)
		}
	}
}

func TestPerEdgeBillSumsToTransmission(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in, p := randomSetup(rng, 9, 2)
	sim, err := New(in, p)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	sum := 0.0
	for _, c := range st.PerEdge {
		sum += c
	}
	if math.Abs(sum-st.TransmissionCost) > 1e-9 {
		t.Fatalf("per-edge bill %v != transmission %v", sum, st.TransmissionCost)
	}
	if st.Requests == 0 || st.Messages == 0 {
		t.Fatal("no traffic simulated")
	}
}

func TestLocalRequestsAreFree(t *testing.T) {
	// All requests issued at the copy node: no transmission cost at all.
	g := gen.Path(4, gen.UnitWeights)
	storage := []float64{1, 1, 1, 1}
	obj := core.Object{Reads: []int64{0, 5, 0, 0}, Writes: []int64{0, 3, 0, 0}}
	in := core.MustInstance(g, storage, []core.Object{obj})
	p := core.Placement{Copies: [][]int{{1}}}
	sim, err := New(in, p)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.TransmissionCost != 0 {
		t.Fatalf("transmission %v, want 0", st.TransmissionCost)
	}
	if st.StorageCost != 1 {
		t.Fatalf("storage %v, want 1", st.StorageCost)
	}
}

func TestInvalidPlacementRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in, _ := randomSetup(rng, 5, 1)
	if _, err := New(in, core.Placement{Copies: [][]int{{}}}); err == nil {
		t.Fatal("empty copy set accepted")
	}
}

func TestFinalTimeAdvances(t *testing.T) {
	g := gen.Path(3, gen.UnitWeights)
	obj := core.Object{Reads: []int64{0, 0, 1}, Writes: []int64{0, 0, 0}}
	in := core.MustInstance(g, []float64{0, 0, 0}, []core.Object{obj})
	sim, err := New(in, core.Placement{Copies: [][]int{{0}}})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.FinalTime != 2 {
		t.Fatalf("final time %v, want 2 (two unit hops)", st.FinalTime)
	}
	if st.Messages != 2 {
		t.Fatalf("messages %d, want 2", st.Messages)
	}
}
