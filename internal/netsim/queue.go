package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// QueueConfig enables the finite-bandwidth timing model: messages crossing
// the same link serialise, so a message's hop time is queueing wait plus
// size/Bandwidth transfer plus the propagation delay Latency[e].
type QueueConfig struct {
	// Bandwidth per edge id (object-size units per time unit). Required.
	Bandwidth []float64
	// Latency per edge id (propagation delay). Nil means zero.
	Latency []float64
	// Spacing separates consecutive request injections at the same node so
	// the run models a paced workload instead of a single burst. 0 injects
	// everything at time 0 (worst-case contention).
	Spacing float64
}

// QueueStats extends the fee metering with timing under contention.
type QueueStats struct {
	Stats
	// Completion-time distribution over requests (a write completes when
	// its last multicast delivery lands).
	MeanLatency float64
	P50Latency  float64
	P95Latency  float64
	MaxLatency  float64
	// BusiestEdge is the edge with the largest total busy time, and
	// BusyTime its utilisation numerator.
	BusiestEdge int
	BusyTime    float64
}

// qevent is an event in the queued simulation; unlike the fee-only run it
// carries the request identity and injection time.
type qevent struct {
	t     float64
	seq   int64
	node  int
	kind  eventKind
	obj   int
	req   int
	start float64
	route []int
}

type qeventQueue []qevent

func (q qeventQueue) Len() int { return len(q) }
func (q qeventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q qeventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *qeventQueue) Push(x interface{}) { *q = append(*q, x.(qevent)) }
func (q *qeventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// RunQueued replays the workload under the finite-bandwidth model and
// returns both the fee bill (identical to Run's, by construction) and the
// latency profile. It must be called on a fresh Simulator.
func (s *Simulator) RunQueued(qc QueueConfig) (QueueStats, error) {
	m := s.in.G.M()
	if len(qc.Bandwidth) != m {
		return QueueStats{}, fmt.Errorf("netsim: %d bandwidths for %d edges", len(qc.Bandwidth), m)
	}
	for id, bw := range qc.Bandwidth {
		if bw <= 0 {
			return QueueStats{}, fmt.Errorf("netsim: non-positive bandwidth on edge %d", id)
		}
	}
	if qc.Latency != nil && len(qc.Latency) != m {
		return QueueStats{}, fmt.Errorf("netsim: %d latencies for %d edges", len(qc.Latency), m)
	}
	latency := func(id int) float64 {
		if qc.Latency == nil {
			return 0
		}
		return qc.Latency[id]
	}

	nextFree := make([]float64, m)
	busy := make([]float64, m)
	completion := map[int]float64{}
	var q qeventQueue
	var seq int64
	push := func(e qevent) {
		e.seq = seq
		seq++
		heap.Push(&q, e)
	}

	// Inject all requests, paced per node.
	reqID := 0
	nodeClock := make([]float64, s.in.N())
	for oi := range s.in.Objects {
		obj := &s.in.Objects[oi]
		for v := 0; v < s.in.N(); v++ {
			total := obj.Reads[v] + obj.Writes[v]
			for k := int64(0); k < total; k++ {
				write := k >= obj.Reads[v]
				kind := evDeliverRead
				if write {
					kind = evDeliverWriteAccess
				}
				t0 := nodeClock[v]
				nodeClock[v] += qc.Spacing
				push(qevent{t: t0, node: v, kind: kind, obj: oi, req: reqID,
					start: t0, route: s.paths[oi][v]})
				completion[reqID] = t0
				s.st.Requests++
				reqID++
			}
		}
	}

	finish := func(e qevent) {
		if e.t > completion[e.req] {
			completion[e.req] = e.t
		}
	}

	for q.Len() > 0 {
		e := heap.Pop(&q).(qevent)
		if len(e.route) > 1 {
			u, v := e.route[0], e.route[1]
			id, ok := s.edgeOf[[2]int{u, v}]
			if !ok {
				panic(fmt.Sprintf("netsim: no edge %d-%d on route", u, v))
			}
			size := s.in.Objects[e.obj].Scale()
			fee := s.edgeFee[id] * size
			s.st.TransmissionCost += fee
			s.st.PerEdge[id] += fee
			s.st.Messages++
			start := math.Max(e.t, nextFree[id])
			service := size / qc.Bandwidth[id]
			nextFree[id] = start + service
			busy[id] += service
			ne := e
			ne.t = start + service + latency(id)
			ne.node = v
			ne.route = e.route[1:]
			push(ne)
			continue
		}
		switch e.kind {
		case evDeliverRead:
			finish(e)
		case evDeliverWriteAccess:
			root := s.p.Copies[e.obj][0]
			finish(e) // access leg done; multicast may extend it below
			push(qevent{t: e.t, node: root, kind: evMulticast, obj: e.obj,
				req: e.req, start: e.start, route: []int{root}})
		case evMulticast:
			finish(e)
			ci := s.copyIdx[e.obj][e.node]
			for _, path := range s.mcNext[e.obj][ci] {
				push(qevent{t: e.t, node: e.node, kind: evMulticast, obj: e.obj,
					req: e.req, start: e.start, route: path})
			}
		}
		if e.t > s.st.FinalTime {
			s.st.FinalTime = e.t
		}
	}

	// Latency distribution: completion minus injection per request.
	lat := make([]float64, 0, reqID)
	// Recover injection times: they were the initial completion[] values;
	// recompute from pacing deterministically.
	inj := make([]float64, reqID)
	{
		id := 0
		clock := make([]float64, s.in.N())
		for oi := range s.in.Objects {
			obj := &s.in.Objects[oi]
			for v := 0; v < s.in.N(); v++ {
				total := obj.Reads[v] + obj.Writes[v]
				for k := int64(0); k < total; k++ {
					inj[id] = clock[v]
					clock[v] += qc.Spacing
					id++
				}
			}
		}
	}
	for r := 0; r < reqID; r++ {
		lat = append(lat, completion[r]-inj[r])
	}
	sort.Float64s(lat)
	out := QueueStats{Stats: s.st, BusiestEdge: -1}
	if len(lat) > 0 {
		sum := 0.0
		for _, l := range lat {
			sum += l
		}
		out.MeanLatency = sum / float64(len(lat))
		out.P50Latency = lat[len(lat)/2]
		out.P95Latency = lat[int(float64(len(lat))*0.95)]
		out.MaxLatency = lat[len(lat)-1]
	}
	for id, b := range busy {
		if b > out.BusyTime {
			out.BusyTime = b
			out.BusiestEdge = id
		}
	}
	return out, nil
}
