// Package netsim is a discrete-event, message-level network simulator. It
// replays a static request pattern against a placement: every read walks
// the shortest path to its nearest copy, every write first walks to its
// nearest copy and then triggers a multicast along the minimum spanning
// tree over the copies (the paper's update rule), hop by hop. Every edge
// traversal is metered with the edge's fee and every stored copy with the
// node's fee.
//
// Its purpose in the reproduction is experiment E12: the metered cost of an
// operational execution must equal the closed-form cost the algorithms
// optimise, which validates the cost accounting used everywhere else.
package netsim

import (
	"container/heap"
	"fmt"
	"math"

	"netplace/internal/core"
	"netplace/internal/metric"
	"netplace/internal/workload"
)

// Stats aggregates a simulation run.
type Stats struct {
	// TransmissionCost is the summed fee over every edge traversal.
	TransmissionCost float64
	// StorageCost is the summed storage fee over all placed copies.
	StorageCost float64
	// Messages counts point-to-point hop deliveries.
	Messages int64
	// Requests counts injected read and write requests.
	Requests int64
	// PerEdge is the metered fee total per edge id (the "bill" per link).
	PerEdge []float64
	// FinalTime is the virtual time at which the last delivery happened
	// (edge fee doubles as propagation delay).
	FinalTime float64
}

// Total returns transmission plus storage cost.
func (s Stats) Total() float64 { return s.TransmissionCost + s.StorageCost }

// MaxEdgeBill returns the largest per-link bill — the "hottest" link by
// fee volume.
func (s Stats) MaxEdgeBill() float64 {
	max := 0.0
	for _, c := range s.PerEdge {
		if c > max {
			max = c
		}
	}
	return max
}

// Congestion converts the per-edge bill into the congestion measure of the
// total-load literature (Maggs et al.): transferred volume divided by
// bandwidth, maximised over links. fees[i] must be the fee of edge i (the
// bill is volume * fee) and bandwidths[i] its bandwidth. Edges with zero
// fee are skipped (their volume is not recoverable from the bill).
func (s Stats) Congestion(fees, bandwidths []float64) float64 {
	max := 0.0
	for i, bill := range s.PerEdge {
		if fees[i] <= 0 || bandwidths[i] <= 0 {
			continue
		}
		if c := bill / fees[i] / bandwidths[i]; c > max {
			max = c
		}
	}
	return max
}

// event is a message arriving at a node at virtual time t.
type event struct {
	t    float64
	seq  int64 // FIFO tie-break for determinism
	node int
	kind eventKind
	obj  int
	// route is the remaining node path for unicast messages.
	route []int
}

type eventKind uint8

const (
	evDeliverRead eventKind = iota
	evDeliverWriteAccess
	evMulticast
)

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Simulator replays requests for one instance and placement.
type Simulator struct {
	in *core.Instance
	p  core.Placement

	// per object: nearest copy of every node and the unicast path to it;
	// multicast tree as adjacency over copies expanded to edge paths.
	nearest [][]int
	paths   [][][]int   // [obj][node] -> node path to nearest copy
	mcNext  [][][][]int // [obj][copyIdx] -> list of node paths to child copies
	copyIdx []map[int]int
	edgeOf  map[[2]int]int // node pair -> edge id (first edge wins)
	edgeFee []float64
	st      Stats
	q       eventQueue
	seq     int64
}

// New prepares a simulator; the placement must validate against in.
func New(in *core.Instance, p core.Placement) (*Simulator, error) {
	if err := p.Validate(in); err != nil {
		return nil, err
	}
	s := &Simulator{in: in, p: p}
	g := in.G
	s.edgeOf = make(map[[2]int]int)
	s.edgeFee = make([]float64, g.M())
	for id, e := range g.Edges() {
		s.edgeFee[id] = e.W
		k1 := [2]int{e.U, e.V}
		k2 := [2]int{e.V, e.U}
		// With parallel edges, route along the cheapest one (shortest paths
		// never use a costlier parallel edge).
		if prev, ok := s.edgeOf[k1]; !ok || e.W < s.edgeFee[prev] {
			s.edgeOf[k1] = id
			s.edgeOf[k2] = id
		}
	}
	o := in.Metric()
	nobj := len(in.Objects)
	s.nearest = make([][]int, nobj)
	s.paths = make([][][]int, nobj)
	s.mcNext = make([][][][]int, nobj)
	s.copyIdx = make([]map[int]int, nobj)
	for oi := range in.Objects {
		copies := p.Copies[oi]
		// Unicast shortest paths: per copy, a Dijkstra tree; per node pick
		// the nearest copy and walk the parent pointers.
		type tree struct {
			dist   []float64
			parent []int
		}
		trees := make([]tree, len(copies))
		for ci, c := range copies {
			d, par := g.Dijkstra(c)
			trees[ci] = tree{dist: d, parent: par}
		}
		s.nearest[oi] = make([]int, g.N())
		s.paths[oi] = make([][]int, g.N())
		for v := 0; v < g.N(); v++ {
			best, bestD := -1, math.Inf(1)
			for ci := range copies {
				if trees[ci].dist[v] < bestD {
					best, bestD = ci, trees[ci].dist[v]
				}
			}
			s.nearest[oi][v] = copies[best]
			// path v -> copy: walk up the copy-rooted tree from v.
			var path []int
			for u := v; u != -1; u = trees[best].parent[u] {
				path = append(path, u)
				if u == copies[best] {
					break
				}
			}
			s.paths[oi][v] = path
		}
		// Multicast: metric MST over copies, each metric edge expanded to a
		// shortest node path. Root the MST at copy index 0 for directioning.
		s.copyIdx[oi] = make(map[int]int, len(copies))
		for ci, c := range copies {
			s.copyIdx[oi][c] = ci
		}
		edges, _ := metric.PairwiseMSTTree(o, copies)
		children := make([][]int, len(copies))
		for _, e := range edges {
			children[e[0]] = append(children[e[0]], e[1])
		}
		s.mcNext[oi] = make([][][]int, len(copies))
		for ci := range copies {
			if len(children[ci]) == 0 {
				continue
			}
			_, par := g.Dijkstra(copies[ci])
			for _, child := range children[ci] {
				path := walkUp(par, copies[child], copies[ci])
				s.mcNext[oi][ci] = append(s.mcNext[oi][ci], path)
			}
		}
	}
	s.st.PerEdge = make([]float64, g.M())
	s.st.StorageCost = 0
	for oi := range in.Objects {
		size := in.Objects[oi].Scale()
		for _, c := range p.Copies[oi] {
			s.st.StorageCost += size * in.Storage[c]
		}
	}
	return s, nil
}

// walkUp returns the node path from `from` to `root` using parent pointers
// of a Dijkstra tree rooted at root.
func walkUp(parent []int, from, root int) []int {
	var path []int
	for u := from; u != -1; u = parent[u] {
		path = append(path, u)
		if u == root {
			break
		}
	}
	// reverse so the path goes root -> from? callers forward copy -> child;
	// the metered cost is symmetric, keep from -> root and reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Run injects every request in the instance (fr(v) reads and fw(v) writes
// per node-object pair, interleaved deterministically) and processes events
// until the network drains. It returns the metered statistics.
func (s *Simulator) Run() Stats {
	for oi := range s.in.Objects {
		obj := &s.in.Objects[oi]
		for v := 0; v < s.in.N(); v++ {
			for k := int64(0); k < obj.Reads[v]; k++ {
				s.injectRead(oi, v)
			}
			for k := int64(0); k < obj.Writes[v]; k++ {
				s.injectWrite(oi, v)
			}
		}
	}
	for s.q.Len() > 0 {
		e := heap.Pop(&s.q).(event)
		if e.t > s.st.FinalTime {
			s.st.FinalTime = e.t
		}
		s.dispatch(e)
	}
	return s.st
}

// RunSequence injects an explicit request sequence (instead of the
// instance's frequency tables) against the fixed placement and processes
// events until the network drains — the adapter that lets the
// message-level simulator meter one epoch of a trace, so the analytic
// per-epoch bills of the streaming harness can be cross-checked hop by
// hop. Storage is booked as in Run: the full fee of the fixed placement,
// matching the static strategy's accounting. Call on a fresh Simulator;
// metered costs accumulate across calls.
func (s *Simulator) RunSequence(seq []workload.Request) Stats {
	for _, r := range seq {
		if r.Write {
			s.injectWrite(r.Obj, r.V)
		} else {
			s.injectRead(r.Obj, r.V)
		}
	}
	for s.q.Len() > 0 {
		e := heap.Pop(&s.q).(event)
		if e.t > s.st.FinalTime {
			s.st.FinalTime = e.t
		}
		s.dispatch(e)
	}
	return s.st
}

func (s *Simulator) injectRead(obj, v int) {
	s.st.Requests++
	s.send(event{t: 0, node: v, kind: evDeliverRead, obj: obj, route: s.paths[obj][v]})
}

func (s *Simulator) injectWrite(obj, v int) {
	s.st.Requests++
	s.send(event{t: 0, node: v, kind: evDeliverWriteAccess, obj: obj, route: s.paths[obj][v]})
}

func (s *Simulator) send(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.q, e)
}

// dispatch advances a message one hop, metering the edge fee; when a
// message reaches the end of its route its kind decides what happens next.
func (s *Simulator) dispatch(e event) {
	if len(e.route) > 1 {
		// advance one hop: route[0] is the current node; the fee is per
		// byte, so an object of size s pays s times the edge fee.
		u, v := e.route[0], e.route[1]
		id, ok := s.edgeOf[[2]int{u, v}]
		if !ok {
			panic(fmt.Sprintf("netsim: no edge %d-%d on route", u, v))
		}
		fee := s.edgeFee[id] * s.in.Objects[e.obj].Scale()
		s.st.TransmissionCost += fee
		s.st.PerEdge[id] += fee
		s.st.Messages++
		ne := e
		ne.t += fee
		ne.node = v
		ne.route = e.route[1:]
		s.send(ne)
		return
	}
	// Arrived.
	switch e.kind {
	case evDeliverRead:
		// served; nothing further to do.
	case evDeliverWriteAccess:
		// The serving copy initiates the multicast from the MST root. The
		// paper's update set is the path h->s(r) (already metered) plus the
		// whole MST; fan the multicast out from every copy along tree
		// children, starting at the root copy (index 0).
		root := s.p.Copies[e.obj][0]
		s.send(event{t: e.t, node: root, kind: evMulticast, obj: e.obj, route: []int{root}})
	case evMulticast:
		ci := s.copyIdx[e.obj][e.node]
		for _, path := range s.mcNext[e.obj][ci] {
			s.send(event{t: e.t, node: e.node, kind: evMulticast, obj: e.obj, route: path})
		}
	}
}
