package netsim

import (
	"math"
	"math/rand"
	"testing"

	"netplace/internal/core"
	"netplace/internal/gen"
)

func unitBandwidths(m int, bw float64) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = bw
	}
	return out
}

func TestRunQueuedBillsMatchRun(t *testing.T) {
	// Queueing changes timing, never money: the fee bill must equal the
	// untimed run's exactly.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in, p := randomSetup(rng, 3+rng.Intn(8), 1+rng.Intn(2))
		simA, err := New(in, p)
		if err != nil {
			t.Fatal(err)
		}
		plain := simA.Run()
		simB, err := New(in, p)
		if err != nil {
			t.Fatal(err)
		}
		queued, err := simB.RunQueued(QueueConfig{Bandwidth: unitBandwidths(in.G.M(), 2)})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plain.TransmissionCost-queued.TransmissionCost) > 1e-9 {
			t.Fatalf("seed %d: queued bill %v, plain %v", seed, queued.TransmissionCost, plain.TransmissionCost)
		}
		if plain.Messages != queued.Messages {
			t.Fatalf("seed %d: message counts differ: %d vs %d", seed, plain.Messages, queued.Messages)
		}
	}
}

func TestContentionRaisesLatency(t *testing.T) {
	// All requests from one node over one link: they serialise, so the max
	// latency grows with the request count while the mean link is busy the
	// whole time.
	g := gen.Path(2, gen.UnitWeights)
	obj := core.Object{Reads: []int64{0, 50}, Writes: []int64{0, 0}}
	in := core.MustInstance(g, []float64{0, 0}, []core.Object{obj})
	sim, err := New(in, core.Placement{Copies: [][]int{{0}}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunQueued(QueueConfig{Bandwidth: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	// 50 unit-size transfers over a unit-bandwidth link injected at once:
	// the k-th finishes at time k.
	if st.MaxLatency != 50 {
		t.Fatalf("max latency %v, want 50", st.MaxLatency)
	}
	if math.Abs(st.MeanLatency-25.5) > 1e-9 {
		t.Fatalf("mean latency %v, want 25.5", st.MeanLatency)
	}
	if st.BusyTime != 50 {
		t.Fatalf("busy time %v, want 50", st.BusyTime)
	}
}

func TestSpacingRemovesContention(t *testing.T) {
	g := gen.Path(2, gen.UnitWeights)
	obj := core.Object{Reads: []int64{0, 50}, Writes: []int64{0, 0}}
	in := core.MustInstance(g, []float64{0, 0}, []core.Object{obj})
	sim, err := New(in, core.Placement{Copies: [][]int{{0}}})
	if err != nil {
		t.Fatal(err)
	}
	// Paced at exactly the service time: no queueing, every latency 1.
	st, err := sim.RunQueued(QueueConfig{Bandwidth: []float64{1}, Spacing: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxLatency != 1 || st.MeanLatency != 1 {
		t.Fatalf("paced latencies mean %v max %v, want 1", st.MeanLatency, st.MaxLatency)
	}
}

func TestPropagationLatencyAdds(t *testing.T) {
	g := gen.Path(3, gen.UnitWeights)
	obj := core.Object{Reads: []int64{0, 0, 1}, Writes: []int64{0, 0, 0}}
	in := core.MustInstance(g, []float64{0, 0, 0}, []core.Object{obj})
	sim, err := New(in, core.Placement{Copies: [][]int{{0}}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunQueued(QueueConfig{
		Bandwidth: []float64{2, 2},
		Latency:   []float64{3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// two hops: each 0.5 transfer, plus 3 + 4 propagation
	want := 0.5 + 0.5 + 3 + 4
	if math.Abs(st.MaxLatency-want) > 1e-9 {
		t.Fatalf("latency %v, want %v", st.MaxLatency, want)
	}
}

func TestRunQueuedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in, p := randomSetup(rng, 5, 1)
	sim, err := New(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunQueued(QueueConfig{Bandwidth: []float64{1}}); err == nil {
		t.Fatal("short bandwidth vector accepted")
	}
	sim2, _ := New(in, p)
	bad := unitBandwidths(in.G.M(), 1)
	bad[0] = 0
	if _, err := sim2.RunQueued(QueueConfig{Bandwidth: bad}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	sim3, _ := New(in, p)
	if _, err := sim3.RunQueued(QueueConfig{Bandwidth: unitBandwidths(in.G.M(), 1), Latency: []float64{1}}); err == nil {
		t.Fatal("short latency vector accepted")
	}
}

func TestWriteLatencyIncludesMulticast(t *testing.T) {
	// A write's completion includes the farthest multicast delivery.
	g := gen.Path(3, gen.UnitWeights)
	obj := core.Object{Reads: []int64{0, 0, 0}, Writes: []int64{1, 0, 0}}
	in := core.MustInstance(g, []float64{0, 0, 0}, []core.Object{obj})
	sim, err := New(in, core.Placement{Copies: [][]int{{0, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunQueued(QueueConfig{Bandwidth: unitBandwidths(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	// write at node 0: access leg 0 hops; multicast root 0 -> copy at 2:
	// two serialised unit transfers = 2.
	if st.MaxLatency != 2 {
		t.Fatalf("write latency %v, want 2", st.MaxLatency)
	}
}
