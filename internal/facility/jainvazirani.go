package facility

import (
	"math"
	"sort"
)

// JainVazirani runs the Jain–Vazirani primal–dual algorithm (STOC '99
// version), a 3-approximation for metric UFL.
//
// Phase 1 (dual ascent): every unconnected client j raises its dual α_j at
// unit rate. Once α_j reaches d(j, i), the excess (α_j − d(j, i)) pays
// toward facility i's opening cost. A facility is "temporarily opened" when
// its opening cost is fully paid; clients with α_j ≥ d(j, i) to a
// temporarily open facility freeze.
//
// Phase 2 (pruning): temporarily open facilities that share a paying client
// conflict; scanning them in opening order and keeping a maximal independent
// set yields the final set.
//
// Demands are handled by treating a client of demand w as w unit clients
// with a common α (their duals rise together), which the implementation
// realises by weighting contributions by the demand.
func JainVazirani(in *Instance) []int {
	n := in.N()
	type clientState struct {
		alpha     float64
		connected bool
		demand    float64
	}
	cs := make([]clientState, n)
	active := 0
	for j := 0; j < n; j++ {
		cs[j].demand = float64(in.Demand[j])
		if in.Demand[j] == 0 {
			cs[j].connected = true
		} else {
			active++
		}
	}
	paid := make([]float64, n)   // amount paid toward each facility
	openAt := make([]float64, n) // time the facility was temporarily opened
	isOpen := make([]bool, n)    // temporarily open
	witness := make([]int, n)    // for each client, an open facility within alpha
	contrib := make([][]bool, n) // contrib[i][j]: client j has positive contribution to i
	for i := range contrib {
		contrib[i] = make([]bool, n)
		openAt[i] = math.Inf(1)
	}
	for j := range witness {
		witness[j] = -1
	}

	t := 0.0
	for active > 0 {
		// Next event: either some unconnected client reaches an open
		// facility (α_j = d(j,i)), or some facility becomes fully paid.
		dt := math.Inf(1)

		// Event A: unconnected client j hits distance to an already-open
		// facility i: happens after d(j,i) - α_j.
		for j := 0; j < n; j++ {
			if cs[j].connected {
				continue
			}
			for i := 0; i < n; i++ {
				if !isOpen[i] {
					continue
				}
				if need := in.Metric.Dist(j, i) - cs[j].alpha; need < dt {
					dt = need
				}
			}
		}
		// Event B: facility i becomes fully paid. Its payment grows at rate
		// sum of demands of unconnected clients with α_j >= d(j,i), plus new
		// clients crossing the distance threshold — handle thresholds as
		// events too.
		for i := 0; i < n; i++ {
			if isOpen[i] {
				continue
			}
			rate := 0.0
			for j := 0; j < n; j++ {
				if !cs[j].connected && cs[j].alpha >= in.Metric.Dist(j, i) {
					rate += cs[j].demand
				}
			}
			if rate > 0 {
				if need := (in.Open[i] - paid[i]) / rate; need < dt {
					dt = need
				}
			}
			// Threshold crossings: client starts contributing to i.
			for j := 0; j < n; j++ {
				if !cs[j].connected && cs[j].alpha < in.Metric.Dist(j, i) {
					if need := in.Metric.Dist(j, i) - cs[j].alpha; need < dt {
						dt = need
					}
				}
			}
		}
		if math.IsInf(dt, 1) {
			// No demand left that can trigger anything; open cheapest.
			break
		}
		if dt < 0 {
			dt = 0
		}
		// Advance time by dt.
		t += dt
		for j := 0; j < n; j++ {
			if !cs[j].connected {
				cs[j].alpha += dt
			}
		}
		for i := 0; i < n; i++ {
			if isOpen[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if !cs[j].connected && cs[j].alpha >= in.Metric.Dist(j, i) {
					paid[i] += cs[j].demand * math.Min(dt, cs[j].alpha-in.Metric.Dist(j, i))
				}
			}
		}
		// Open fully-paid facilities.
		const tie = 1e-12
		for i := 0; i < n; i++ {
			if !isOpen[i] && paid[i] >= in.Open[i]-tie {
				isOpen[i] = true
				openAt[i] = t
				for j := 0; j < n; j++ {
					if cs[j].alpha >= in.Metric.Dist(j, i)-tie && cs[j].demand > 0 {
						contrib[i][j] = true
					}
				}
			}
		}
		// Freeze clients adjacent to open facilities.
		for j := 0; j < n; j++ {
			if cs[j].connected {
				continue
			}
			for i := 0; i < n; i++ {
				if isOpen[i] && cs[j].alpha >= in.Metric.Dist(j, i)-tie {
					cs[j].connected = true
					witness[j] = i
					active--
					break
				}
			}
		}
	}

	// Phase 2: prune conflicting facilities in opening order.
	var opened []int
	for i := 0; i < n; i++ {
		if isOpen[i] {
			opened = append(opened, i)
		}
	}
	if len(opened) == 0 {
		// Degenerate: no demand; open the cheapest facility.
		best := 0
		for i := 1; i < n; i++ {
			if in.Open[i] < in.Open[best] {
				best = i
			}
		}
		return []int{best}
	}
	sort.SliceStable(opened, func(a, b int) bool { return openAt[opened[a]] < openAt[opened[b]] })
	var final []int
	conflict := func(i, k int) bool {
		for j := 0; j < n; j++ {
			if contrib[i][j] && contrib[k][j] {
				return true
			}
		}
		return false
	}
	for _, i := range opened {
		ok := true
		for _, k := range final {
			if conflict(i, k) {
				ok = false
				break
			}
		}
		if ok {
			final = append(final, i)
		}
	}
	if len(final) == 0 {
		final = opened[:1]
	}
	sort.Ints(final)
	return final
}
