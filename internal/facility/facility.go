// Package facility solves the uncapacitated facility location problem (UFL)
// with combinatorial algorithms. Phase 1 of the paper's approximation
// algorithm reduces static data management to UFL on the "related facility
// location problem" (all writes treated as reads); the paper only requires
// some constant-factor UFL algorithm, so this package provides the three
// classic LP-free ones its reference list points at:
//
//   - local search with add/drop/swap moves (Korupolu, Plaxton, Rajaraman),
//   - the Jain–Vazirani primal–dual algorithm (3-approximation),
//   - the Mettu–Plaxton radius-greedy algorithm (3-approximation),
//
// plus an exact brute-force solver for evaluation on small instances.
//
// Distances come from a pluggable metric.Oracle. Local search, Jain–Vazirani
// and the greedy are inherently Θ(n²)-query algorithms and belong on small
// instances (dense backend); Mettu–Plaxton is written against nearest-first
// ball scans and runs on large sparse networks with a lazy backend without
// ever touching a full matrix.
package facility

import (
	"math"
	"sort"

	"netplace/internal/metric"
)

// Instance is a UFL instance over a finite metric: Open[i] is the cost of
// opening a facility at node i; Demand[j] is the (integral) request weight
// of client j; Metric is the distance oracle. Facilities and clients share
// the node universe 0..n-1, as in the data-management reduction where every
// node may both issue requests and hold a copy.
type Instance struct {
	Open   []float64
	Demand []int64
	Metric metric.Oracle

	// Parallel bounds the goroutines sharding Mettu–Plaxton's per-node
	// radius scans (each node's payment-ball walk is independent). 0 and
	// 1 run serially; negative selects GOMAXPROCS. Results are identical
	// either way; the greedy open pass is sequential regardless. The
	// other solvers ignore it.
	Parallel int

	// Reusable scratch, grown on demand and kept across calls so a solver
	// instance threaded through repeated solves (the core workspace reuses
	// one per worker) does not allocate per object. Instances are therefore
	// not safe for concurrent use.
	scratch []float64 // nearest-facility buffer for Cost
	mpR     []float64 // Mettu–Plaxton radii
	mpOrder []int     // Mettu–Plaxton scan order
	mpOpen  []bool    // Mettu–Plaxton open-facility flags

	// Pre-bound scan callbacks with their state structs: a closure passed
	// through the metric.Oracle interface escapes, so building one per
	// node used to allocate the closure and every captured accumulator on
	// each of Mettu–Plaxton's 2n ball scans.
	mpRadSt  mpRadiusState
	mpRadFn  func(u int, d float64) bool
	mpOpenSt mpOpenState
	mpOpenFn func(u int, d float64) bool
}

// mpRadiusState accumulates one mpRadius ball walk: slope is the demand
// inside the current ball, value the left-hand side of the payment
// equation at the current radius.
type mpRadiusState struct {
	demand []int64
	target float64
	slope  int64
	value  float64
	radius float64
	solved float64
}

// step consumes one scanned node of the payment-ball walk.
func (st *mpRadiusState) step(u int, d float64) bool {
	if st.slope > 0 {
		// advance radius to d
		need := (st.target - st.value) / float64(st.slope)
		if st.radius+need <= d {
			st.solved = st.radius + need
			return false
		}
		st.value += float64(st.slope) * (d - st.radius)
	}
	st.radius = d
	st.slope += st.demand[u]
	return true
}

// mpOpenState tracks the open-facility ball check: ok turns false when an
// already-open facility appears within the limit radius.
type mpOpenState struct {
	isOpen []bool
	limit  float64
	ok     bool
}

// step consumes one scanned node of the open-facility check.
func (st *mpOpenState) step(u int, d float64) bool {
	if d > st.limit {
		return false
	}
	if st.isOpen[u] {
		st.ok = false
		return false
	}
	return true
}

// N returns the number of nodes.
func (in *Instance) N() int { return len(in.Open) }

// nearestOpen fills in.scratch with each client's distance to the nearest
// open facility, iterating facility rows (row-shaped access keeps a lazy
// backend's cache on the small facility set, not the whole client universe).
// Instances are not safe for concurrent Cost calls because of this buffer.
func (in *Instance) nearestOpen(open []int) []float64 {
	n := in.N()
	if cap(in.scratch) < n {
		in.scratch = make([]float64, n)
	}
	best := in.scratch[:n]
	for j := range best {
		best[j] = math.Inf(1)
	}
	for _, f := range open {
		row := in.Metric.Row(f)
		for j, d := range row {
			if d < best[j] {
				best[j] = d
			}
		}
	}
	return best
}

// Cost returns the UFL objective of opening exactly the given facility set:
// total opening cost plus each client's demand times its distance to the
// nearest open facility. An empty set costs +Inf.
func (in *Instance) Cost(open []int) float64 {
	if len(open) == 0 {
		return math.Inf(1)
	}
	c := 0.0
	for _, f := range open {
		c += in.Open[f]
	}
	best := in.nearestOpen(open)
	for j := 0; j < in.N(); j++ {
		if in.Demand[j] == 0 {
			continue
		}
		c += float64(in.Demand[j]) * best[j]
	}
	return c
}

// ConnectionCost returns only the service part of the objective.
func (in *Instance) ConnectionCost(open []int) float64 {
	c := 0.0
	best := in.nearestOpen(open)
	for j := 0; j < in.N(); j++ {
		if in.Demand[j] == 0 {
			continue
		}
		c += float64(in.Demand[j]) * best[j]
	}
	return c
}

// Solver is a UFL algorithm: it returns a non-empty facility set.
type Solver func(in *Instance) []int

// BruteForce enumerates all non-empty facility subsets and returns an
// optimal one. Exponential; use only for n <= ~20 in evaluation.
func BruteForce(in *Instance) []int {
	n := in.N()
	if n > 24 {
		panic("facility: brute force instance too large")
	}
	bestCost := math.Inf(1)
	var best []int
	set := make([]int, 0, n)
	for mask := 1; mask < 1<<n; mask++ {
		set = set[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, v)
			}
		}
		if c := in.Cost(set); c < bestCost {
			bestCost = c
			best = append(best[:0], set...)
		}
	}
	return best
}

// LocalSearch runs add/drop/swap local search starting from the best single
// facility, accepting a move only if it improves the objective by more than
// a (1 + eps/n) factor so termination is polynomial. With eps -> 0 the
// solution is a (5)-approximation (Korupolu et al.); we use eps = 1e-6.
// Inherently Θ(n²) distance queries per sweep: a small-instance solver.
func LocalSearch(in *Instance) []int {
	n := in.N()
	if n == 0 {
		return nil
	}
	open := make([]bool, n)
	// Start: best single facility.
	best, bestCost := -1, math.Inf(1)
	for v := 0; v < n; v++ {
		if c := in.Cost([]int{v}); c < bestCost {
			best, bestCost = v, c
		}
	}
	open[best] = true
	cur := bestCost
	const eps = 1e-6
	improves := func(c float64) bool { return c < cur*(1-eps/float64(n)) }

	openSet := func() []int {
		var s []int
		for v := 0; v < n; v++ {
			if open[v] {
				s = append(s, v)
			}
		}
		return s
	}

	for iter := 0; iter < 10000; iter++ {
		improved := false
		s := openSet()
		// Add moves.
		for v := 0; v < n && !improved; v++ {
			if open[v] {
				continue
			}
			if c := in.Cost(append(s, v)); improves(c) {
				open[v] = true
				cur = c
				improved = true
			}
		}
		// Drop moves.
		if !improved && len(s) > 1 {
			for _, v := range s {
				t := without(s, v)
				if c := in.Cost(t); improves(c) {
					open[v] = false
					cur = c
					improved = true
					break
				}
			}
		}
		// Swap moves.
		if !improved {
			for _, v := range s {
				for u := 0; u < n; u++ {
					if open[u] {
						continue
					}
					t := append(without(s, v), u)
					if c := in.Cost(t); improves(c) {
						open[v] = false
						open[u] = true
						cur = c
						improved = true
						break
					}
				}
				if improved {
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return openSet()
}

func without(s []int, v int) []int {
	t := make([]int, 0, len(s))
	for _, x := range s {
		if x != v {
			t = append(t, x)
		}
	}
	return t
}

// MettuPlaxton runs the Mettu–Plaxton radius-greedy algorithm: for every
// node compute the radius r(v) at which the ball around v "pays for" the
// opening cost, then scan nodes by ascending radius and open v unless an
// already-open facility lies within 2 r(v). 3-approximation.
//
// Both steps are nearest-first ball scans that stop as soon as they are
// resolved, so on a lazy backend the algorithm explores only the payment
// ball of each node — this is the phase-1 solver that scales to 50k+ node
// sparse networks.
func MettuPlaxton(in *Instance) []int {
	n := in.N()
	if cap(in.mpR) < n {
		in.mpR = make([]float64, n)
		in.mpOrder = make([]int, n)
		in.mpOpen = make([]bool, n)
	}
	r := in.mpR[:n]
	if workers := metric.ShardWorkers(in.Parallel, n, metric.ShardBlock); workers > 1 {
		mpRadiiParallel(in, r, workers)
	} else {
		for v := 0; v < n; v++ {
			r[v] = mpRadius(in, v)
		}
	}
	order := in.mpOrder[:n]
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return r[order[a]] < r[order[b]] })
	var open []int
	isOpen := in.mpOpen[:n]
	for i := range isOpen {
		isOpen[i] = false
	}
	pointCheap := in.Metric.Kind() != metric.KindLazy
	for _, v := range order {
		ok := true
		if pointCheap {
			for _, f := range open {
				if in.Metric.Dist(v, f) <= 2*r[v] {
					ok = false
					break
				}
			}
		} else {
			// Ball scan: an open facility within 2 r(v) is found before the
			// scan passes that radius; the scan never leaves the ball.
			if in.mpOpenFn == nil {
				in.mpOpenFn = func(u int, d float64) bool { return in.mpOpenSt.step(u, d) }
			}
			in.mpOpenSt = mpOpenState{isOpen: isOpen, limit: 2 * r[v], ok: true}
			metric.ScanNear(in.Metric, v, in.mpOpenFn)
			ok = in.mpOpenSt.ok
		}
		if ok {
			open = append(open, v)
			isOpen[v] = true
		}
	}
	if len(open) == 0 && n > 0 {
		open = append(open, order[0])
	}
	sort.Ints(open)
	return open
}

// mpRadius solves sum_{u: d(u,v) <= r} demand(u) * (r - d(u,v)) = open(v)
// for r. The left side is piecewise linear and increasing in r, so walk the
// request ball outward accumulating slope and stop at the paying radius —
// nodes beyond it are never visited. State and callback live on the
// Instance so the per-node walk allocates nothing.
func mpRadius(in *Instance, v int) float64 {
	if in.mpRadFn == nil {
		in.mpRadFn = func(u int, d float64) bool { return in.mpRadSt.step(u, d) }
	}
	return mpRadiusWith(in, &in.mpRadSt, in.mpRadFn, v)
}

// mpRadiusWith is mpRadius against caller-owned scan state, so sharded
// workers can each walk their own balls concurrently.
func mpRadiusWith(in *Instance, st *mpRadiusState, fn func(u int, d float64) bool, v int) float64 {
	*st = mpRadiusState{demand: in.Demand, target: in.Open[v], solved: math.Inf(1)}
	metric.ScanNear(in.Metric, v, fn)
	if !math.IsInf(st.solved, 1) {
		return st.solved
	}
	if st.slope == 0 {
		return math.Inf(1) // no demand anywhere: never pays off
	}
	return st.radius + (st.target-st.value)/float64(st.slope)
}

// mpRadiiParallel fills r with every node's Mettu–Plaxton radius using
// workers goroutines (metric.Shard's block cursor), each with private
// scan state writing disjoint entries — values identical to the serial
// loop, in any schedule.
func mpRadiiParallel(in *Instance, r []float64, workers int) {
	metric.Shard(len(r), metric.ShardBlock, workers, func(claim func() (int, int, bool)) {
		var st mpRadiusState
		fn := func(u int, d float64) bool { return st.step(u, d) }
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			for v := lo; v < hi; v++ {
				r[v] = mpRadiusWith(in, &st, fn, v)
			}
		}
	})
}
