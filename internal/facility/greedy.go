package facility

import (
	"math"
	"sort"
)

// Greedy runs the classic cost-effectiveness greedy for UFL (Hochbaum's
// set-cover reduction): repeatedly open the facility (or reuse an open one)
// whose next batch of clients has the lowest (opening + connection) cost
// per unit of newly served demand, until every client is connected. An
// O(log n)-approximation in general, typically strong in practice; included
// as the fourth phase-1 option and as a baseline for E11-style ablations.
func Greedy(in *Instance) []int {
	n := in.N()
	connected := make([]bool, n)
	remaining := 0
	for j := 0; j < n; j++ {
		if in.Demand[j] > 0 {
			remaining++
		} else {
			connected[j] = true
		}
	}
	isOpen := make([]bool, n)
	var open []int

	if remaining == 0 {
		best := 0
		for i := 1; i < n; i++ {
			if in.Open[i] < in.Open[best] {
				best = i
			}
		}
		return []int{best}
	}

	type cand struct {
		d float64
		j int
		w float64
	}
	for remaining > 0 {
		bestFac, bestK := -1, 0
		bestRatio := math.Inf(1)
		var bestList []cand
		for i := 0; i < n; i++ {
			// Unconnected clients by distance to i (one oracle row per
			// candidate facility).
			row := in.Metric.Row(i)
			var cs []cand
			for j := 0; j < n; j++ {
				if !connected[j] {
					cs = append(cs, cand{d: row[j], j: j, w: float64(in.Demand[j])})
				}
			}
			sort.Slice(cs, func(a, b int) bool { return cs[a].d < cs[b].d })
			openCost := in.Open[i]
			if isOpen[i] {
				openCost = 0
			}
			// Best prefix of clients for this facility.
			cost := openCost
			demand := 0.0
			for k, c := range cs {
				cost += c.d * c.w
				demand += c.w
				if demand == 0 {
					continue
				}
				if ratio := cost / demand; ratio < bestRatio {
					bestRatio = ratio
					bestFac = i
					bestK = k + 1
					bestList = cs
				}
			}
		}
		if bestFac < 0 {
			break // only zero-demand clients remain
		}
		if !isOpen[bestFac] {
			isOpen[bestFac] = true
			open = append(open, bestFac)
		}
		for k := 0; k < bestK; k++ {
			j := bestList[k].j
			if !connected[j] {
				connected[j] = true
				remaining--
			}
		}
	}
	if len(open) == 0 {
		best := 0
		for i := 1; i < n; i++ {
			if in.Open[i] < in.Open[best] {
				best = i
			}
		}
		open = append(open, best)
	}
	sort.Ints(open)
	return open
}
