package facility

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"netplace/internal/gen"
	"netplace/internal/metric"
)

func randomInstance(rng *rand.Rand, n int) *Instance {
	g := gen.ErdosRenyi(n, 0.4, rng, gen.UniformWeights(rng, 1, 8))
	in := &Instance{
		Open:   make([]float64, n),
		Demand: make([]int64, n),
		Metric: metric.New(g.AllPairs()),
	}
	for v := 0; v < n; v++ {
		in.Open[v] = rng.Float64() * 25
		in.Demand[v] = rng.Int63n(8)
	}
	return in
}

func checkSolver(t *testing.T, name string, solve Solver, ratio float64, seeds int) {
	t.Helper()
	worst := 0.0
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		in := randomInstance(rng, n)
		got := solve(in)
		if len(got) == 0 {
			t.Fatalf("%s seed %d: empty facility set", name, seed)
		}
		gc := in.Cost(got)
		opt := in.Cost(BruteForce(in))
		if gc < opt-1e-9 {
			t.Fatalf("%s seed %d: solver cost %v below optimum %v", name, seed, gc, opt)
		}
		r := 1.0
		if opt > 0 {
			r = gc / opt
		}
		if r > worst {
			worst = r
		}
		if r > ratio {
			t.Fatalf("%s seed %d: ratio %.3f exceeds bound %.1f (cost %v, opt %v)", name, seed, r, ratio, gc, opt)
		}
	}
	t.Logf("%s: worst observed ratio %.4f over %d instances", name, worst, seeds)
}

func TestLocalSearchRatio(t *testing.T)  { checkSolver(t, "local-search", LocalSearch, 5.01, 120) }
func TestJainVaziraniRatio(t *testing.T) { checkSolver(t, "jain-vazirani", JainVazirani, 3.01, 120) }
func TestMettuPlaxtonRatio(t *testing.T) { checkSolver(t, "mettu-plaxton", MettuPlaxton, 3.01, 120) }

func TestBruteForceKnownInstance(t *testing.T) {
	// Two demand clusters far apart, cheap openings: optimum opens both.
	in := &Instance{
		Open:   []float64{1, 100, 1},
		Demand: []int64{10, 0, 10},
		Metric: metric.New([][]float64{
			{0, 5, 10},
			{5, 0, 5},
			{10, 5, 0},
		}),
	}
	got := BruteForce(in)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("optimum %v, want [0 2]", got)
	}
	if c := in.Cost(got); c != 2 {
		t.Fatalf("optimal cost %v, want 2", c)
	}
}

func TestCostEmptySetInfinite(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(1)), 5)
	if !math.IsInf(in.Cost(nil), 1) {
		t.Fatal("empty facility set must cost +Inf")
	}
}

func TestConnectionCostExcludesOpening(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(2)), 6)
	open := []int{0, 3}
	total := in.Cost(open)
	conn := in.ConnectionCost(open)
	if math.Abs(total-(conn+in.Open[0]+in.Open[3])) > 1e-9 {
		t.Fatal("cost decomposition inconsistent")
	}
}

func TestSolversHandleZeroDemand(t *testing.T) {
	in := &Instance{
		Open:   []float64{5, 2, 7},
		Demand: []int64{0, 0, 0},
		Metric: metric.New([][]float64{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}}),
	}
	for name, solve := range map[string]Solver{
		"local-search":  LocalSearch,
		"jain-vazirani": JainVazirani,
		"mettu-plaxton": MettuPlaxton,
	} {
		got := solve(in)
		if len(got) == 0 {
			t.Fatalf("%s: returned no facility on zero-demand instance", name)
		}
	}
}

func TestSolversHandleSingleNode(t *testing.T) {
	in := &Instance{Open: []float64{3}, Demand: []int64{4}, Metric: metric.New([][]float64{{0}})}
	for name, solve := range map[string]Solver{
		"local-search":  LocalSearch,
		"jain-vazirani": JainVazirani,
		"mettu-plaxton": MettuPlaxton,
	} {
		got := solve(in)
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("%s: %v", name, got)
		}
	}
}

func TestLocalSearchImprovesOverSingleton(t *testing.T) {
	// A line of heavy demand nodes with cheap facilities everywhere: any
	// single placement pays long hauls, local search must open several.
	n := 9
	d := make([][]float64, n)
	in := &Instance{Open: make([]float64, n), Demand: make([]int64, n), Metric: metric.New(d)}
	for i := 0; i < n; i++ {
		in.Open[i] = 2
		in.Demand[i] = 5
		d[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			d[i][j] = math.Abs(float64(i - j))
		}
	}
	got := LocalSearch(in)
	if len(got) < 2 {
		t.Fatalf("local search stuck at %v", got)
	}
	bestSingle := math.Inf(1)
	for v := 0; v < n; v++ {
		if c := in.Cost([]int{v}); c < bestSingle {
			bestSingle = c
		}
	}
	if in.Cost(got) >= bestSingle {
		t.Fatal("local search no better than best singleton")
	}
}

func TestGreedyRatio(t *testing.T) { checkSolver(t, "greedy", Greedy, 4.0, 120) }

func TestGreedyZeroDemandAndSingleton(t *testing.T) {
	in := &Instance{
		Open:   []float64{5, 2, 7},
		Demand: []int64{0, 0, 0},
		Metric: metric.New([][]float64{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}}),
	}
	got := Greedy(in)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("zero-demand greedy = %v, want cheapest [1]", got)
	}
	one := &Instance{Open: []float64{3}, Demand: []int64{4}, Metric: metric.New([][]float64{{0}})}
	if got := Greedy(one); len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton greedy = %v", got)
	}
}
