package online

import (
	"math"
	"math/rand"
	"testing"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/workload"
)

func setup(seed int64, n, objects int, writeFrac float64) (*core.Instance, []workload.Request) {
	rng := rand.New(rand.NewSource(seed))
	g, err := gen.Build("clustered", n, rng)
	if err != nil {
		panic(err)
	}
	nn := g.N()
	storage := make([]float64, nn)
	for v := range storage {
		storage[v] = 2 + rng.Float64()*4
	}
	objs := workload.Generate(nn, workload.Spec{Objects: objects, MeanRate: 5, WriteFraction: writeFrac, ZipfS: 0.8}, rng)
	in := core.MustInstance(g, storage, objs)
	seq := workload.Sequence(objs, 400, rng)
	return in, seq
}

func TestOnlineRunsAndPaysSomething(t *testing.T) {
	in, seq := setup(1, 24, 2, 0.2)
	if len(seq) == 0 {
		t.Fatal("empty sequence")
	}
	st := Run(in, seq, DefaultConfig())
	if st.Total() <= 0 || math.IsInf(st.Total(), 0) || math.IsNaN(st.Total()) {
		t.Fatalf("implausible online cost %v", st.Total())
	}
	if len(st.FinalCopies) == 0 {
		t.Fatal("strategy ended with no copies")
	}
}

func TestOnlineReplicatesUnderReadTraffic(t *testing.T) {
	// Heavy disjoint read clusters: the strategy must create replicas.
	in, _ := setup(2, 24, 1, 0)
	rng := rand.New(rand.NewSource(3))
	seq := workload.Sequence(in.Objects, 600, rng)
	st := Run(in, seq, DefaultConfig())
	if st.Replications == 0 {
		t.Fatal("read-only workload triggered no replication")
	}
}

func TestOnlineDropsUnderWritePressure(t *testing.T) {
	in, _ := setup(4, 24, 1, 0.6)
	rng := rand.New(rand.NewSource(5))
	seq := workload.Sequence(in.Objects, 600, rng)
	st := Run(in, seq, DefaultConfig())
	if st.Replications > 0 && st.Drops == 0 {
		t.Fatal("write-heavy workload never invalidated a replica")
	}
}

// The static optimum (which knows the frequencies) must not lose badly to
// the online strategy, and the online strategy must stay within a sane
// constant of the static algorithm on steady-state workloads.
func TestOnlineVsStaticCompetitive(t *testing.T) {
	worst := 0.0
	for seed := int64(0); seed < 6; seed++ {
		in, seq := setup(10+seed, 24, 2, 0.25)
		if len(seq) == 0 {
			continue
		}
		st := Run(in, seq, DefaultConfig())
		static := StaticCost(in, core.Approximate(in, core.Options{}), seq)
		if static <= 0 {
			continue
		}
		ratio := st.Total() / static
		if ratio > worst {
			worst = ratio
		}
		if ratio > 25 {
			t.Fatalf("seed %d: online/static ratio %.2f implausibly bad", seed, ratio)
		}
	}
	t.Logf("worst online/static ratio: %.3f", worst)
}

func TestStaticCostMatchesExpectedFrequencies(t *testing.T) {
	// Pricing the placement against the full expected sequence (every
	// request exactly as frequent as its table says) must reproduce the
	// analytic Cost breakdown.
	in, _ := setup(7, 20, 1, 0.3)
	var seq []workload.Request
	obj := &in.Objects[0]
	for v := 0; v < in.N(); v++ {
		for k := int64(0); k < obj.Reads[v]; k++ {
			seq = append(seq, workload.Request{Obj: 0, V: v})
		}
		for k := int64(0); k < obj.Writes[v]; k++ {
			seq = append(seq, workload.Request{Obj: 0, V: v, Write: true})
		}
	}
	p := core.Approximate(in, core.Options{})
	got := StaticCost(in, p, seq)
	want := in.Cost(p).Total()
	if math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("sequence pricing %v, analytic %v", got, want)
	}
}

func TestSequenceEmpiricalFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 10
	objs := workload.Uniform(n, 9, 3) // 75% reads
	seq := workload.Sequence(objs, 6000, rng)
	writes := 0
	for _, r := range seq {
		if r.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(len(seq))
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("write fraction %v, want ~0.25", frac)
	}
}
