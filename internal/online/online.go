// Package online implements a dynamic (online) data management strategy in
// the spirit of the paper's related work (Awerbuch–Bartal–Fiat; Maggs et
// al.'s dynamic tree strategies): requests arrive one by one with no
// knowledge of future frequencies, and the strategy adapts the copy set by
// replicating toward read traffic and invalidating replicas that writes
// make expensive.
//
// The paper itself only treats the static problem; this package exists to
// quantify, in the same cost model, how much the static algorithm's
// knowledge of frequencies is worth (experiment E13). Costs are accounted
// exactly as in the static model, with one necessary adaptation: a replica
// held for only part of the sequence rents its storage pro rata
// (fee * holding-time / sequence-length), so a strategy that holds a copy
// throughout pays exactly the static fee.
package online

import (
	"math"

	"netplace/internal/core"
	"netplace/internal/metric"
	"netplace/internal/workload"
)

// Config tunes the counter-based strategy.
type Config struct {
	// ReplicateFactor scales the replication threshold: a copy appears at v
	// once the read traffic from v has paid ReplicateFactor times the
	// storage fee cs(v). The classic count-to-threshold rule; 0 selects 2.
	ReplicateFactor float64
	// DropIdle drops a replica that served no read between two consecutive
	// writes (keeping at least one copy). Enabled by default semantics:
	// the zero Config uses true via DefaultConfig.
	DropIdle bool
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config { return Config{ReplicateFactor: 2, DropIdle: true} }

// Stats aggregates an online run.
type Stats struct {
	Transmission float64 // read/write access + multicast fees paid
	Storage      float64 // pro-rata storage rent
	Replications int     // copies created
	Drops        int     // copies invalidated
	FinalCopies  []int   // copy set at the end of the sequence
}

// Total returns transmission plus storage cost.
func (s Stats) Total() float64 { return s.Transmission + s.Storage }

// state tracks one object's copy set.
type state struct {
	has   []bool
	count int
	gain  []float64 // accumulated read-distance savings per node
	idle  []bool    // replica saw no read since the last write
}

// Checkpoint is a cumulative snapshot of an online run after Events
// events: the transmission paid so far, the storage accrual so far
// expressed as fee × event-steps (divide by the final trace length for
// the pro-rata rent), and the adaptation counters. Consecutive
// checkpoints diff into per-epoch costs — the adapter that lets the
// online strategy run under the same epoch-sliced harness as the static
// and streaming-adaptive strategies (stream.Compare, cmd/netreplay).
type Checkpoint struct {
	Events          int
	Transmission    float64
	StorageFeeSteps float64
	Replications    int
	Drops           int
	Copies          int // live replicas across objects at the checkpoint
}

// Run replays the request sequence against the instance's network with the
// counter-based dynamic strategy, starting each object at its single best
// node (the information-free starting point: first requester).
func Run(in *core.Instance, seq []workload.Request, cfg Config) Stats {
	st, _ := RunCheckpoints(in, seq, cfg, 0)
	return st
}

// RunCheckpoints is Run additionally snapshotting cumulative costs every
// `every` events (and after the final partial stretch); every <= 0
// disables checkpoints. The returned Stats are identical to Run's.
func RunCheckpoints(in *core.Instance, seq []workload.Request, cfg Config, every int) (Stats, []Checkpoint) {
	if cfg.ReplicateFactor <= 0 {
		cfg.ReplicateFactor = 2
	}
	o := in.Metric()
	n := in.N()
	states := make([]*state, len(in.Objects))

	var st Stats
	// feePerStep is the storage fee all live replicas accrue per
	// event-step (Σ size·cs over held copies, across objects), maintained
	// at seeding, replication and invalidation; feeSteps accumulates it
	// per trace event, so a copy held throughout pays exactly the static
	// fee after the final /len(seq) normalisation.
	var feePerStep, feeSteps float64
	ensure := func(oi, v int) *state {
		s := states[oi]
		if s == nil {
			s = &state{
				has:  make([]bool, n),
				gain: make([]float64, n),
				idle: make([]bool, n),
			}
			// First touch: the object materialises at its first requester
			// (no knowledge of the future).
			s.has[v] = true
			s.count = 1
			states[oi] = s
			feePerStep += in.Objects[oi].Scale() * in.Storage[v]
		}
		return s
	}

	var cps []Checkpoint
	snapshot := func(events int) {
		cp := Checkpoint{
			Events: events, Transmission: st.Transmission,
			StorageFeeSteps: feeSteps,
			Replications:    st.Replications, Drops: st.Drops,
		}
		for _, s := range states {
			if s != nil {
				cp.Copies += s.count
			}
		}
		cps = append(cps, cp)
	}

	steps := float64(len(seq))
	for i, r := range seq {
		s := ensure(r.Obj, r.V)
		size := in.Objects[r.Obj].Scale()
		// storage rent accrues per event-step for every live replica of
		// every object (normalised by the trace length at the end)
		feeSteps += feePerStep
		// nearest copy (point queries hit the cached rows of the live
		// copy set on a lazy backend)
		best, bestD := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !s.has[v] {
				continue
			}
			if d := o.Dist(v, r.V); d < bestD {
				best, bestD = v, d
			}
		}
		st.Transmission += size * bestD
		if r.Write {
			// multicast update over the current copies
			if s.count > 1 {
				st.Transmission += size * metric.PairwiseMST(o, copySet(s))
			}
			// invalidate idle replicas (classic write-invalidate pressure)
			if cfg.DropIdle {
				for v := 0; v < n; v++ {
					if s.has[v] && v != best && s.idle[v] && s.count > 1 {
						s.has[v] = false
						s.count--
						st.Drops++
						feePerStep -= size * in.Storage[v]
					}
				}
			}
			for v := 0; v < n; v++ {
				s.idle[v] = s.has[v] // becomes non-idle on the next read
			}
		} else {
			s.idle[best] = false
			// replicate-on-threshold: reads from v accumulate the distance
			// they would save with a local copy.
			if bestD > 0 {
				s.gain[r.V] += size * bestD
				if s.gain[r.V] >= cfg.ReplicateFactor*size*in.Storage[r.V] {
					s.has[r.V] = true
					s.count++
					s.gain[r.V] = 0
					s.idle[r.V] = false
					st.Replications++
					feePerStep += size * in.Storage[r.V]
				}
			}
		}
		if every > 0 && (i+1)%every == 0 {
			snapshot(i + 1)
		}
	}
	if every > 0 && len(seq)%every != 0 {
		snapshot(len(seq))
	}

	// pro-rata storage rent + final copy sets
	if steps > 0 {
		st.Storage = feeSteps / steps
	}
	for _, s := range states {
		if s == nil {
			continue
		}
		for v := 0; v < n; v++ {
			if s.has[v] {
				st.FinalCopies = append(st.FinalCopies, v)
			}
		}
	}
	return st, cps
}

func copySet(s *state) []int {
	out := make([]int, 0, s.count)
	for v, h := range s.has {
		if h {
			out = append(out, v)
		}
	}
	return out
}

// StaticCost prices a fixed placement against the same request sequence
// with identical accounting (per-request transmission, full storage fee),
// so online and static strategies are directly comparable.
func StaticCost(in *core.Instance, p core.Placement, seq []workload.Request) float64 {
	o := in.Metric()
	total := 0.0
	for oi := range in.Objects {
		size := in.Objects[oi].Scale()
		for _, c := range p.Copies[oi] {
			total += size * in.Storage[c]
		}
	}
	mst := make([]float64, len(in.Objects))
	for oi := range in.Objects {
		mst[oi] = metric.PairwiseMST(o, p.Copies[oi])
	}
	for _, r := range seq {
		size := in.Objects[r.Obj].Scale()
		best := math.Inf(1)
		for _, c := range p.Copies[r.Obj] {
			if d := o.Dist(c, r.V); d < best {
				best = d
			}
		}
		total += size * best
		if r.Write {
			total += size * mst[r.Obj]
		}
	}
	return total
}
