package capacity

import (
	"math"
	"math/rand"
	"testing"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/workload"
)

func problem(seed int64, n, objects int, capPer int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	g := gen.ErdosRenyi(n, 0.4, rng, gen.UniformWeights(rng, 1, 6))
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 1 + rng.Float64()*6
	}
	objs := workload.Generate(n, workload.Spec{Objects: objects, MeanRate: 4, ZipfS: 0.6}, rng)
	in := core.MustInstance(g, storage, objs)
	cap := make([]int, n)
	for v := range cap {
		cap[v] = capPer
	}
	return &Problem{In: in, Cap: cap}
}

func TestSolveRespectsCapacities(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := problem(seed, 8, 5, 2)
		pl, err := Solve(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := pl.Validate(p.In); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !p.Feasible(pl) {
			t.Fatalf("seed %d: capacity violated", seed)
		}
	}
}

func TestSolveNearBruteForce(t *testing.T) {
	worst := 1.0
	for seed := int64(0); seed < 15; seed++ {
		p := problem(seed, 5, 3, 2)
		pl, err := Solve(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := p.Cost(pl)
		_, want, err := BruteForce(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got < want-1e-9 {
			t.Fatalf("seed %d: local search %v beats brute force %v", seed, got, want)
		}
		if want > 0 {
			if r := got / want; r > worst {
				worst = r
			}
		}
	}
	if worst > 1.5 {
		t.Fatalf("local search ratio %v too far from optimum", worst)
	}
	t.Logf("worst local-search/optimum ratio: %.4f", worst)
}

func TestLooseCapacityMatchesUncapacitated(t *testing.T) {
	// With capacity >= |X| everywhere the constraint is void: the solution
	// cost must be close to the unconstrained greedy/approx cost.
	for seed := int64(0); seed < 10; seed++ {
		p := problem(seed, 7, 3, 3)
		pl, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		got := p.Cost(pl)
		free := core.GreedyAdd(p.In)
		base := p.In.Cost(free).Total()
		if got > 1.5*base+1e-9 {
			t.Fatalf("seed %d: capacitated %v far above unconstrained %v", seed, got, base)
		}
	}
}

func TestTightCapacityForcesSpread(t *testing.T) {
	// Capacity 1 per node, as many heavy objects as popular nodes: objects
	// cannot all sit on the cheapest node.
	p := problem(3, 6, 4, 1)
	pl, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]int{}
	for _, set := range pl.Copies {
		for _, v := range set {
			used[v]++
			if used[v] > 1 {
				t.Fatalf("node %d reused beyond its capacity", v)
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	p := problem(1, 5, 3, 1)
	p.Cap = []int{1, 1} // wrong length
	if err := p.Validate(); err == nil {
		t.Fatal("short cap vector accepted")
	}
	p = problem(1, 5, 3, 1)
	p.Cap[0] = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative cap accepted")
	}
	p = problem(1, 5, 6, 1)
	for v := range p.Cap {
		p.Cap[v] = 0
	}
	if err := p.Validate(); err == nil {
		t.Fatal("infeasible total capacity accepted")
	}
	// writes are rejected
	p = problem(1, 5, 1, 2)
	p.In.Objects[0].Writes[2] = 3
	if err := p.Validate(); err == nil {
		t.Fatal("writes accepted in read-only model")
	}
}

func TestCostAgainstManual(t *testing.T) {
	p := problem(2, 6, 2, 2)
	pl, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	manual := 0.0
	for i := range p.In.Objects {
		manual += p.In.ObjectCost(&p.In.Objects[i], pl.Copies[i]).Total()
	}
	if math.Abs(manual-p.Cost(pl)) > 1e-9 {
		t.Fatal("cost decomposition mismatch")
	}
}
