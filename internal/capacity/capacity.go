// Package capacity extends the static data management problem with memory
// capacity constraints — the setting of Baev and Rajaraman [3] in the
// paper's related work: each node can hold at most Cap[v] object copies,
// objects are read-only, and every object still needs at least one copy
// somewhere.
//
// Baev–Rajaraman round an LP relaxation; in keeping with this repository's
// combinatorial theme the solver here is a joint local search over all
// objects (add / drop / move / swap moves that respect capacities), with an
// exact brute-force reference for small instances. The uncapacitated
// optimum is a lower bound the tests exploit: with loose capacities the
// local search must land within its usual factor of it, and with tight
// capacities constraint satisfaction is asserted exactly.
package capacity

import (
	"fmt"
	"math"

	"netplace/internal/core"
)

// Problem is a capacitated read-only data placement instance.
type Problem struct {
	In  *core.Instance
	Cap []int // copies node v may hold across all objects
}

// Validate checks shape and feasibility (total capacity >= one copy per
// object, per-node caps non-negative, read-only workload).
func (p *Problem) Validate() error {
	if len(p.Cap) != p.In.N() {
		return fmt.Errorf("capacity: %d caps for %d nodes", len(p.Cap), p.In.N())
	}
	total := 0
	for v, c := range p.Cap {
		if c < 0 {
			return fmt.Errorf("capacity: negative cap at node %d", v)
		}
		total += c
	}
	if total < len(p.In.Objects) {
		return fmt.Errorf("capacity: total capacity %d below object count %d", total, len(p.In.Objects))
	}
	for i := range p.In.Objects {
		if p.In.Objects[i].TotalWrites() != 0 {
			return fmt.Errorf("capacity: object %d has writes; the capacitated model is read-only", i)
		}
	}
	return nil
}

// Feasible reports whether a placement satisfies the capacities.
func (p *Problem) Feasible(pl core.Placement) bool {
	used := make([]int, p.In.N())
	for _, set := range pl.Copies {
		for _, v := range set {
			used[v]++
			if used[v] > p.Cap[v] {
				return false
			}
		}
	}
	return true
}

// Cost is the read-only objective: storage plus nearest-copy reads.
func (p *Problem) Cost(pl core.Placement) float64 {
	return p.In.Cost(pl).Total()
}

// Solve runs the joint local search. It returns a feasible placement or an
// error when the instance itself is infeasible.
func Solve(p *Problem) (core.Placement, error) {
	if err := p.Validate(); err != nil {
		return core.Placement{}, err
	}
	in := p.In
	n := in.N()
	nobj := len(in.Objects)
	o := in.Metric()

	used := make([]int, n)
	pl := core.Placement{Copies: make([][]int, nobj)}

	// Greedy initialisation: objects in descending demand pick their best
	// node with free capacity (heaviest objects choose first).
	order := make([]int, nobj)
	for i := range order {
		order[i] = i
	}
	demand := make([]int64, nobj)
	for i := range in.Objects {
		demand[i] = in.Objects[i].TotalReads()
	}
	for a := 0; a < nobj; a++ {
		for b := a + 1; b < nobj; b++ {
			if demand[order[b]] > demand[order[a]] {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	for _, oi := range order {
		obj := &in.Objects[oi]
		best, bestCost := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if used[v] >= p.Cap[v] {
				continue
			}
			row := o.Row(v)
			c := in.Storage[v] * obj.Scale()
			for u := 0; u < n; u++ {
				c += float64(obj.Reads[u]) * row[u] * obj.Scale()
			}
			if c < bestCost {
				best, bestCost = v, c
			}
		}
		if best < 0 {
			return core.Placement{}, fmt.Errorf("capacity: no free node for object %d", oi)
		}
		pl.Copies[oi] = []int{best}
		used[best]++
	}

	objCost := func(oi int, set []int) float64 {
		return in.ObjectCost(&in.Objects[oi], set).Total()
	}
	cur := make([]float64, nobj)
	for oi := range cur {
		cur[oi] = objCost(oi, pl.Copies[oi])
	}

	// Local search: add, drop, move. A move is accepted if it lowers the
	// total cost; capacities stay respected throughout.
	const maxRounds = 200
	for round := 0; round < maxRounds; round++ {
		improved := false
		for oi := 0; oi < nobj; oi++ {
			set := pl.Copies[oi]
			has := make(map[int]bool, len(set))
			for _, v := range set {
				has[v] = true
			}
			// add
			for v := 0; v < n; v++ {
				if has[v] || used[v] >= p.Cap[v] {
					continue
				}
				cand := append(append([]int(nil), set...), v)
				if c := objCost(oi, cand); c < cur[oi]-1e-12 {
					pl.Copies[oi] = sortedInts(cand)
					used[v]++
					cur[oi] = c
					improved = true
					break
				}
			}
			if improved {
				break
			}
			// drop
			if len(set) > 1 {
				for k, v := range set {
					cand := append(append([]int(nil), set[:k]...), set[k+1:]...)
					if c := objCost(oi, cand); c < cur[oi]-1e-12 {
						pl.Copies[oi] = cand
						used[v]--
						cur[oi] = c
						improved = true
						break
					}
				}
			}
			if improved {
				break
			}
			// move one copy elsewhere
			for k, v := range set {
				for u := 0; u < n; u++ {
					if has[u] || used[u] >= p.Cap[u] {
						continue
					}
					cand := append(append([]int(nil), set[:k]...), set[k+1:]...)
					cand = append(cand, u)
					if c := objCost(oi, cand); c < cur[oi]-1e-12 {
						pl.Copies[oi] = sortedInts(cand)
						used[v]--
						used[u]++
						cur[oi] = c
						improved = true
						break
					}
				}
				if improved {
					break
				}
			}
			if improved {
				break
			}
		}
		if improved {
			continue
		}
		// Cross-object exchange: objects A and B swap one copy location
		// each (A: v -> u, B: u -> v). Node usage is unchanged, so the move
		// is always feasible; it escapes contention deadlocks that
		// per-object moves cannot.
		for a := 0; a < nobj && !improved; a++ {
			for b := a + 1; b < nobj && !improved; b++ {
				for ka, v := range pl.Copies[a] {
					for kb, u := range pl.Copies[b] {
						if v == u || contains(pl.Copies[a], u) || contains(pl.Copies[b], v) {
							continue
						}
						candA := replaceAt(pl.Copies[a], ka, u)
						candB := replaceAt(pl.Copies[b], kb, v)
						ca := objCost(a, candA)
						cb := objCost(b, candB)
						if ca+cb < cur[a]+cur[b]-1e-12 {
							pl.Copies[a] = sortedInts(candA)
							pl.Copies[b] = sortedInts(candB)
							cur[a], cur[b] = ca, cb
							improved = true
							break
						}
					}
					if improved {
						break
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	return pl, nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func replaceAt(s []int, k, v int) []int {
	out := append([]int(nil), s...)
	out[k] = v
	return out
}

// BruteForce enumerates all feasible placements for tiny instances (the
// per-object copy sets jointly respecting capacities) and returns an
// optimal one. Cost grows as (2^n)^|X|; use only for n*|X| <= ~16.
func BruteForce(p *Problem) (core.Placement, float64, error) {
	if err := p.Validate(); err != nil {
		return core.Placement{}, 0, err
	}
	in := p.In
	n := in.N()
	nobj := len(in.Objects)
	if n*nobj > 24 {
		return core.Placement{}, 0, fmt.Errorf("capacity: brute force instance too large")
	}
	best := math.Inf(1)
	var bestPl core.Placement
	masks := make([]int, nobj)
	used := make([]int, n)

	var rec func(oi int, cost float64)
	rec = func(oi int, cost float64) {
		if cost >= best {
			return
		}
		if oi == nobj {
			best = cost
			bestPl = core.Placement{Copies: make([][]int, nobj)}
			for i, m := range masks {
				for v := 0; v < n; v++ {
					if m&(1<<v) != 0 {
						bestPl.Copies[i] = append(bestPl.Copies[i], v)
					}
				}
			}
			return
		}
		for m := 1; m < 1<<n; m++ {
			ok := true
			for v := 0; v < n && ok; v++ {
				if m&(1<<v) != 0 && used[v]+1 > p.Cap[v] {
					ok = false
				}
			}
			if !ok {
				continue
			}
			var set []int
			for v := 0; v < n; v++ {
				if m&(1<<v) != 0 {
					set = append(set, v)
					used[v]++
				}
			}
			masks[oi] = m
			rec(oi+1, cost+in.ObjectCost(&in.Objects[oi], set).Total())
			for v := 0; v < n; v++ {
				if m&(1<<v) != 0 {
					used[v]--
				}
			}
		}
	}
	rec(0, 0)
	if math.IsInf(best, 1) {
		return core.Placement{}, 0, fmt.Errorf("capacity: no feasible placement")
	}
	return bestPl, best, nil
}

func sortedInts(s []int) []int {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	return s
}
