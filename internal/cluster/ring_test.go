package cluster

import (
	"fmt"
	"testing"
)

// ringKeys synthesises n distinct instance-hash-shaped keys.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x", mix64(uint64(i)+1))
	}
	return keys
}

func TestRingBasics(t *testing.T) {
	for _, tc := range []struct {
		name     string
		replicas []string
	}{
		{"single", []string{"a"}},
		{"pair", []string{"a", "b"}},
		{"quad", []string{"r0", "r1", "r2", "r3"}},
		{"urls", []string{"http://127.0.0.1:4001", "http://127.0.0.1:4002"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRingOf(0, tc.replicas...)
			if r.Len() != len(tc.replicas) {
				t.Fatalf("Len = %d, want %d", r.Len(), len(tc.replicas))
			}
			for _, key := range ringKeys(64) {
				owner := r.Owner(key)
				if !r.Has(owner) {
					t.Fatalf("Owner(%q) = %q, not a member", key, owner)
				}
				if again := r.Owner(key); again != owner {
					t.Fatalf("Owner(%q) unstable: %q then %q", key, owner, again)
				}
			}
		})
	}
}

func TestRingEmptyAndDuplicates(t *testing.T) {
	r := NewRing(8)
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	if !r.Add("a") || r.Add("a") {
		t.Fatal("Add should report true once, then false for a duplicate")
	}
	if want := 8 * ringSubPoints; len(r.points) != want {
		t.Fatalf("duplicate Add grew the ring to %d points, want %d", len(r.points), want)
	}
	if !r.Remove("a") || r.Remove("a") {
		t.Fatal("Remove should report true once, then false")
	}
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("drained ring Owner = %q, want empty", got)
	}
}

// TestRingOrderIndependence asserts ownership depends only on the member
// set: the same members added in different orders (with removals in
// between) yield identical owners for every key.
func TestRingOrderIndependence(t *testing.T) {
	keys := ringKeys(512)
	a := NewRingOf(0, "r0", "r1", "r2", "r3")
	b := NewRing(0)
	for _, m := range []string{"r3", "r1", "r0", "r2", "dead"} {
		b.Add(m)
	}
	b.Remove("dead")
	for _, key := range keys {
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("Owner(%q) differs by construction order: %q vs %q", key, ao, bo)
		}
	}
}

// TestRingDistributionUniform asserts that at DefaultVnodes every
// replica's key share stays within 15% of uniform — the satellite's
// pinned bound.
func TestRingDistributionUniform(t *testing.T) {
	keys := ringKeys(100000)
	for _, n := range []int{2, 3, 4, 8} {
		replicas := make([]string, n)
		for i := range replicas {
			replicas[i] = fmt.Sprintf("http://10.0.0.%d:8723", i+1)
		}
		r := NewRingOf(DefaultVnodes, replicas...)
		counts := map[string]int{}
		for _, key := range keys {
			counts[r.Owner(key)]++
		}
		want := float64(len(keys)) / float64(n)
		for _, rep := range replicas {
			got := float64(counts[rep])
			if dev := (got - want) / want; dev < -0.15 || dev > 0.15 {
				t.Errorf("n=%d: replica %s owns %.0f keys, %.1f%% off uniform (%0.f)",
					n, rep, got, 100*dev, want)
			}
		}
	}
}

// TestRingMinimalMovementOnAdd asserts that adding one replica moves
// keys only TO the new replica (nothing shuffles between the old ones),
// and that the moved fraction is about 1/(N+1).
func TestRingMinimalMovementOnAdd(t *testing.T) {
	keys := ringKeys(50000)
	for _, n := range []int{1, 2, 3, 4, 7} {
		r := NewRing(DefaultVnodes)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("r%d", i))
		}
		before := make([]string, len(keys))
		for i, key := range keys {
			before[i] = r.Owner(key)
		}
		r.Add("rNew")
		moved := 0
		for i, key := range keys {
			after := r.Owner(key)
			if after == before[i] {
				continue
			}
			if after != "rNew" {
				t.Fatalf("n=%d: key %q moved %q → %q, not to the new replica", n, key, before[i], after)
			}
			moved++
		}
		want := float64(len(keys)) / float64(n+1)
		if got := float64(moved); got > 1.5*want {
			t.Errorf("n=%d: add moved %d keys, want ≈%.0f (≤1.5x)", n, moved, want)
		}
		if moved == 0 {
			t.Errorf("n=%d: add moved no keys at all", n)
		}
	}
}

// TestRingMinimalMovementOnRemove asserts the dual: removing a replica
// changes owners ONLY for the keys it owned — an exact property of
// consistent hashing, not an approximation.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	keys := ringKeys(50000)
	for _, n := range []int{2, 3, 4, 8} {
		r := NewRing(DefaultVnodes)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("r%d", i))
		}
		before := make([]string, len(keys))
		for i, key := range keys {
			before[i] = r.Owner(key)
		}
		const victim = "r0"
		r.Remove(victim)
		moved := 0
		for i, key := range keys {
			after := r.Owner(key)
			if before[i] == victim {
				if after == victim {
					t.Fatalf("n=%d: key %q still owned by removed replica", n, key)
				}
				moved++
				continue
			}
			if after != before[i] {
				t.Fatalf("n=%d: key %q owned by %q moved to %q although only %q was removed",
					n, key, before[i], after, victim)
			}
		}
		want := float64(len(keys)) / float64(n)
		if got := float64(moved); got > 1.5*want || moved == 0 {
			t.Errorf("n=%d: remove reassigned %d keys, want ≈%.0f", n, moved, want)
		}
	}
}

func TestRingSuccessor(t *testing.T) {
	r := NewRingOf(0, "http://c", "http://a", "http://b")
	// Successor follows SORTED member order, independent of insertion
	// order or ring-point adjacency, wrapping at the end.
	for _, tc := range []struct{ self, want string }{
		{"http://a", "http://b"},
		{"http://b", "http://c"},
		{"http://c", "http://a"},
	} {
		if got := r.Successor(tc.self); got != tc.want {
			t.Errorf("Successor(%q) = %q, want %q", tc.self, got, tc.want)
		}
	}
	// A non-member has no successor, nor does a single-member ring.
	if got := r.Successor("http://zz"); got != "" {
		t.Errorf("Successor of non-member = %q, want empty", got)
	}
	if got := NewRingOf(0, "http://a").Successor("http://a"); got != "" {
		t.Errorf("single-member Successor = %q, want empty", got)
	}
	// SuccessorOf is the coordination-free form every layer shares: it
	// must agree with the ring and not mutate its input.
	members := []string{"http://b", "http://a", "http://c"}
	if got := SuccessorOf(members, "http://c"); got != "http://a" {
		t.Errorf("SuccessorOf wrap = %q, want http://a", got)
	}
	if members[0] != "http://b" {
		t.Error("SuccessorOf sorted its input in place")
	}
	if got := SuccessorOf(nil, "http://a"); got != "" {
		t.Errorf("SuccessorOf(nil) = %q, want empty", got)
	}
}
