package cluster

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// FaultMode selects how a replica's fault proxy treats new connections.
type FaultMode int32

const (
	// FaultNone passes traffic through untouched.
	FaultNone FaultMode = iota
	// FaultBlackhole accepts connections but never moves a byte in
	// either direction — the classic silent partition, where only
	// timeouts reveal the peer is gone.
	FaultBlackhole
	// FaultReset refuses every connection with a TCP RST (SO_LINGER 0
	// close), the fast-failure flavor of a dead peer.
	FaultReset
	// FaultOneWay delivers client bytes to the replica but drops every
	// response — an asymmetric partition: the replica sees and applies
	// requests, callers see only timeouts.
	FaultOneWay
)

// faultProxy is a per-replica TCP forwarder the harness interposes
// between a replica's advertised URL and its real listener, so tests
// can partition one replica from the cluster without touching the
// process. The proxy owns the advertised port for the replica's whole
// lifetime — kills and restarts of the process behind it leave the
// proxy (and any configured fault) in place.
type faultProxy struct {
	backend string
	ln      net.Listener
	mode    atomic.Int32

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// newFaultProxy listens on front and forwards (mode permitting) to
// backend.
func newFaultProxy(front, backend string) (*faultProxy, error) {
	ln, err := net.Listen("tcp", front)
	if err != nil {
		return nil, err
	}
	fp := &faultProxy{backend: backend, ln: ln, conns: make(map[net.Conn]struct{})}
	fp.wg.Add(1)
	go fp.acceptLoop()
	return fp, nil
}

// SetMode switches the fault and severs every established connection,
// so an in-flight request feels the partition immediately instead of
// completing over a pre-fault pipe.
func (fp *faultProxy) SetMode(mode FaultMode) {
	fp.mode.Store(int32(mode))
	fp.mu.Lock()
	for c := range fp.conns {
		c.Close()
	}
	fp.mu.Unlock()
}

// Mode reports the current fault.
func (fp *faultProxy) Mode() FaultMode { return FaultMode(fp.mode.Load()) }

// Close shuts the listener and every connection down and waits for the
// proxy's goroutines.
func (fp *faultProxy) Close() {
	fp.mu.Lock()
	fp.closed = true
	fp.mu.Unlock()
	fp.ln.Close()
	fp.SetMode(FaultReset) // also closes tracked conns
	fp.wg.Wait()
}

// track registers a connection for severing on SetMode/Close; it
// reports false (and closes the connection) when the proxy is already
// closed.
func (fp *faultProxy) track(c net.Conn) bool {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.closed {
		c.Close()
		return false
	}
	fp.conns[c] = struct{}{}
	return true
}

// untrack forgets a finished connection.
func (fp *faultProxy) untrack(c net.Conn) {
	fp.mu.Lock()
	delete(fp.conns, c)
	fp.mu.Unlock()
}

// acceptLoop dispatches each accepted connection per the mode at
// accept time.
func (fp *faultProxy) acceptLoop() {
	defer fp.wg.Done()
	for {
		c, err := fp.ln.Accept()
		if err != nil {
			return
		}
		switch fp.Mode() {
		case FaultReset:
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetLinger(0) //nolint:errcheck // best-effort RST
			}
			c.Close()
		case FaultBlackhole:
			// Hold the connection open, moving nothing; it dies on
			// SetMode/Close or when the client gives up.
			fp.track(c)
		default:
			fp.wg.Add(1)
			go fp.pipe(c, fp.Mode() == FaultOneWay)
		}
	}
}

// pipe shuttles bytes between a client connection and the backend;
// with oneWay set, responses are read and dropped instead of relayed.
func (fp *faultProxy) pipe(client net.Conn, oneWay bool) {
	defer fp.wg.Done()
	backend, err := net.Dial("tcp", fp.backend)
	if err != nil {
		client.Close()
		return
	}
	if !fp.track(client) {
		backend.Close()
		return
	}
	if !fp.track(backend) {
		fp.untrack(client)
		client.Close()
		return
	}
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(backend, client) //nolint:errcheck // a broken pipe ends the fault-injected stream
		done <- struct{}{}
	}()
	go func() {
		dst := io.Writer(client)
		if oneWay {
			dst = io.Discard
		}
		io.Copy(dst, backend) //nolint:errcheck // a broken pipe ends the fault-injected stream
		done <- struct{}{}
	}()
	<-done
	fp.untrack(client)
	fp.untrack(backend)
	client.Close()
	backend.Close()
	<-done
}
