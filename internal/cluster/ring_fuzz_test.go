package cluster

import (
	"fmt"
	"testing"
)

// FuzzRingMembership drives random join/leave/lookup interleavings
// against a model membership set and asserts the ring never loses a key
// (every probe key always has a live owner) and never returns a dead
// replica, while each membership change moves only the keys consistent
// hashing allows: an add moves keys only to the joiner, a remove moves
// only the leaver's keys. Each input byte is one operation: the low two
// bits select join/leave/lookup, the next three bits pick one of eight
// replica names. The checked-in corpus under
// testdata/fuzz/FuzzRingMembership extends the seeds.
func FuzzRingMembership(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x04, 0x08, 0x01, 0x05, 0x02, 0x06})
	f.Add([]byte("join and leave and look up, repeatedly"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256] // bound the op count, not the coverage
		}
		r := NewRing(4) // few vnodes: membership churn dominates the run
		live := map[string]bool{}
		probes := ringKeys(32)
		owners := func() []string {
			out := make([]string, len(probes))
			for i, key := range probes {
				out[i] = r.Owner(key)
			}
			return out
		}
		prev := owners()
		for opIdx, b := range data {
			name := fmt.Sprintf("replica-%d", (b>>2)&7)
			switch b & 3 {
			case 0, 3: // join (twice as likely, so rings actually grow)
				changed := r.Add(name)
				if changed == live[name] {
					t.Fatalf("op %d: Add(%s) reported %v with live=%v", opIdx, name, changed, live[name])
				}
				live[name] = true
			case 1: // leave
				if r.Remove(name) != live[name] {
					t.Fatalf("op %d: Remove(%s) disagreed with model live=%v", opIdx, name, live[name])
				}
				delete(live, name)
			case 2: // lookup of an op-dependent key
				key := fmt.Sprintf("lookup-%d-%d", opIdx, b)
				owner := r.Owner(key)
				if len(live) == 0 {
					if owner != "" {
						t.Fatalf("op %d: empty ring returned owner %q", opIdx, owner)
					}
				} else if !live[owner] {
					t.Fatalf("op %d: Owner(%q) = %q, not live", opIdx, key, owner)
				}
			}
			if r.Len() != len(live) {
				t.Fatalf("op %d: ring has %d members, model %d", opIdx, r.Len(), len(live))
			}
			cur := owners()
			for i, o := range cur {
				if len(live) == 0 {
					if o != "" {
						t.Fatalf("op %d: key %q owned by %q on an empty ring", opIdx, probes[i], o)
					}
					continue
				}
				if !live[o] {
					t.Fatalf("op %d: key %q owned by dead replica %q", opIdx, probes[i], o)
				}
				if o == prev[i] {
					continue
				}
				// The key moved: only the op's replica may be involved —
				// gained by a joiner, or abandoned by a leaver.
				switch b & 3 {
				case 0, 3:
					if o != name {
						t.Fatalf("op %d (join %s): key %q moved %q → %q", opIdx, name, probes[i], prev[i], o)
					}
				case 1:
					if prev[i] != name {
						t.Fatalf("op %d (leave %s): key %q moved %q → %q", opIdx, name, probes[i], prev[i], o)
					}
				case 2:
					t.Fatalf("op %d (lookup): key %q moved %q → %q without a membership change", opIdx, probes[i], prev[i], o)
				}
			}
			prev = cur
		}
	})
}
