package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/service"
)

// ShardedClient routes every instance, solve, and session call to the
// replica owning the key on the consistent-hash ring, so a caller uses a
// netplaced cluster exactly like one server. Instances are keyed by
// their content-derived registry id (service.InstanceIDFor), computed
// client-side, so an upload goes straight to its owner; a session lives
// on its instance's owner and its id is returned in the composite form
// "sid@replicaURL", which later session calls route by parsing — the
// client itself stays stateless, so two ShardedClients over the same
// cluster agree on every route.
//
// Each per-replica client shares one retry policy (SetRetryPolicy); with
// sequenced ingest (SessionEventsSeq) a replica restart mid-stream is
// absorbed transparently: the retry reconnects and the server's
// idempotent dedup discards anything the torn response already applied.
type ShardedClient struct {
	ring     *Ring
	replicas []string
	clients  map[string]*service.Client
	health   *service.PeerHealth // passive per-replica breakers (no prober)
}

// NewShardedClient builds a sharded client over the replica base URLs
// (e.g. "http://127.0.0.1:4001"). httpClient may be nil for
// http.DefaultClient; retries are off until SetRetryPolicy. Every
// per-replica client carries a circuit breaker fed passively by its
// request outcomes (tune with SetBreakerConfig): calls to a replica
// whose breaker is open fail fast with service.ErrReplicaDown, and
// SolveStale fails over to the key's snapshot successor.
func NewShardedClient(replicas []string, httpClient *http.Client) (*ShardedClient, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: sharded client needs at least one replica")
	}
	sc := &ShardedClient{ring: NewRing(0), clients: make(map[string]*service.Client)}
	sc.health = service.NewPeerHealth(service.BreakerConfig{})
	for _, rep := range replicas {
		rep = strings.TrimRight(rep, "/")
		if !sc.ring.Add(rep) {
			continue // duplicate URL
		}
		sc.replicas = append(sc.replicas, rep)
		c := service.NewClient(rep, httpClient)
		c.SetBreaker(sc.health.For(rep))
		sc.clients[rep] = c
	}
	return sc, nil
}

// SetRetryPolicy installs the retry policy on every per-replica client.
// Call before sharing the client across goroutines.
func (sc *ShardedClient) SetRetryPolicy(p service.RetryPolicy) {
	for _, c := range sc.clients {
		c.SetRetryPolicy(p)
	}
}

// SetBreakerConfig rebuilds the per-replica circuit breakers with cfg's
// thresholds. Call before sharing the client across goroutines.
func (sc *ShardedClient) SetBreakerConfig(cfg service.BreakerConfig) {
	sc.health = service.NewPeerHealth(cfg)
	for rep, c := range sc.clients {
		c.SetBreaker(sc.health.For(rep))
	}
}

// Health exposes the per-replica breaker tracker, so callers can
// inspect (or tests can manipulate) replica state.
func (sc *ShardedClient) Health() *service.PeerHealth { return sc.health }

// Successor returns the replica holding the read-only snapshot of an
// instance — the next member after its owner in sorted member order
// (the same rule every server layer uses), "" on a single-replica ring.
func (sc *ShardedClient) Successor(instanceID string) string {
	return sc.ring.Successor(sc.ring.Owner(instanceID))
}

// RemovePeer drops a replica from the client's ring and breaker
// tracker — the client-side half of a cluster drain. Keys the removed
// replica owned re-route to the survivors with the ring's
// minimal-movement guarantee.
func (sc *ShardedClient) RemovePeer(url string) {
	url = strings.TrimRight(url, "/")
	if !sc.ring.Remove(url) {
		return
	}
	delete(sc.clients, url)
	sc.health.Remove(url)
	for i, rep := range sc.replicas {
		if rep == url {
			sc.replicas = append(sc.replicas[:i], sc.replicas[i+1:]...)
			break
		}
	}
}

// Replicas returns the replica URLs in ring-membership order.
func (sc *ShardedClient) Replicas() []string { return sc.ring.Members() }

// Owner returns the replica URL owning an instance id.
func (sc *ShardedClient) Owner(instanceID string) string { return sc.ring.Owner(instanceID) }

// clientFor returns the owning replica's client for an instance key.
func (sc *ShardedClient) clientFor(instanceID string) *service.Client {
	return sc.clients[sc.ring.Owner(instanceID)]
}

// splitSessionID parses the composite "sid@replicaURL" form minted by
// OpenSession. The replica URL may itself contain '@' in theory, the
// session id ("s-%06x") never does, so the split is on the FIRST '@'.
func (sc *ShardedClient) splitSessionID(id string) (sid string, c *service.Client, err error) {
	sid, rep, ok := strings.Cut(id, "@")
	if !ok {
		return "", nil, fmt.Errorf("cluster: session id %q lacks the @replica suffix minted by OpenSession", id)
	}
	c, ok = sc.clients[rep]
	if !ok {
		return "", nil, fmt.Errorf("cluster: session id %q names unknown replica %q", id, rep)
	}
	return sid, c, nil
}

// Upload registers an instance on its owning replica. The owner is
// computed from the instance's content hash before any network round
// trip, so re-uploads of identical content always land on the same
// replica.
func (sc *ShardedClient) Upload(ctx context.Context, name string, in *core.Instance) (service.UploadResponse, error) {
	return sc.clientFor(service.InstanceIDFor(in)).Upload(ctx, name, in)
}

// Info returns an instance's record from its owning replica.
func (sc *ShardedClient) Info(ctx context.Context, id string) (service.InstanceInfo, error) {
	return sc.clientFor(id).Info(ctx, id)
}

// Delete drops an instance from its owning replica.
func (sc *ShardedClient) Delete(ctx context.Context, id string) error {
	return sc.clientFor(id).Delete(ctx, id)
}

// Solve solves on the instance's owning replica.
func (sc *ShardedClient) Solve(ctx context.Context, id string, opts service.SolveOptions) (service.SolveResult, error) {
	return sc.clientFor(id).Solve(ctx, id, opts)
}

// SolveStale is Solve with degraded-mode opt-in, cluster-wide: it asks
// the owning replica first (service.Client.SolveStale semantics —
// overload there serves the last good placement), and when the owner is
// down — its breaker open, or the call failing at the transport level —
// it fails over to the key's snapshot successor, which answers from its
// hash-verified read-only replica with Stale=true. Writes never fail
// over; only this read path does.
func (sc *ShardedClient) SolveStale(ctx context.Context, id string, opts service.SolveOptions) (service.SolveResult, error) {
	owner := sc.ring.Owner(id)
	if sc.health.For(owner).Ready() {
		res, err := sc.clients[owner].SolveStale(ctx, id, opts)
		if err == nil || !replicaFault(err) {
			return res, err
		}
	}
	succ := sc.ring.Successor(owner)
	if succ == "" {
		return service.SolveResult{}, &service.ReplicaDownError{Replica: owner}
	}
	return sc.clients[succ].SolveDegraded(ctx, id, opts)
}

// replicaFault reports errors that mean "the replica is unreachable or
// known down" — the faults failover covers — as opposed to application
// errors (bad options, 404) the successor would only repeat.
func replicaFault(err error) bool {
	if errors.Is(err, service.ErrReplicaDown) {
		return true
	}
	var ae *service.APIError
	if errors.As(err, &ae) {
		return false // the owner answered; its verdict stands
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	return true // transport-level fault
}

// WhatIf batches options variants on the instance's owning replica.
func (sc *ShardedClient) WhatIf(ctx context.Context, id string, variants []service.SolveOptions) ([]service.WhatIfOutcome, error) {
	return sc.clientFor(id).WhatIf(ctx, id, variants)
}

// Cost evaluates a placement on the instance's owning replica.
func (sc *ShardedClient) Cost(ctx context.Context, id string, p encode.PlacementJSON) (service.BreakdownJSON, error) {
	return sc.clientFor(id).Cost(ctx, id, p)
}

// Simulate replays the instance's workload on its owning replica.
func (sc *ShardedClient) Simulate(ctx context.Context, id string, p encode.PlacementJSON) (service.SimulationResult, error) {
	return sc.clientFor(id).Simulate(ctx, id, p)
}

// OpenSession opens a streaming session on the replica owning the
// instance and rewrites the returned SessionID to the composite
// "sid@replicaURL" form every later session call routes by.
func (sc *ShardedClient) OpenSession(ctx context.Context, instanceID string, cfg service.SessionConfig) (service.SessionInfo, error) {
	owner := sc.ring.Owner(instanceID)
	info, err := sc.clients[owner].OpenSession(ctx, instanceID, cfg)
	if err != nil {
		return info, err
	}
	info.SessionID = info.SessionID + "@" + owner
	return info, nil
}

// Session returns a session's record from the replica named in its
// composite id.
func (sc *ShardedClient) Session(ctx context.Context, id string) (service.SessionInfo, error) {
	sid, c, err := sc.splitSessionID(id)
	if err != nil {
		return service.SessionInfo{}, err
	}
	info, err := c.Session(ctx, sid)
	if err != nil {
		return info, err
	}
	info.SessionID = id
	return info, nil
}

// SessionEvents streams an unsequenced batch to the session's replica.
// Like service.Client.SessionEvents it is NOT retried on transport
// faults; prefer SessionEventsSeq on a cluster, where replica restarts
// are exactly the fault being absorbed.
func (sc *ShardedClient) SessionEvents(ctx context.Context, id string, events []service.SessionEvent) (service.SessionEventsResponse, error) {
	sid, c, err := sc.splitSessionID(id)
	if err != nil {
		return service.SessionEventsResponse{}, err
	}
	return c.SessionEvents(ctx, sid, events)
}

// SessionEventsSeq streams a sequenced batch to the session's replica —
// the cluster's idempotent ingest path: retried on any fault, and the
// owning replica's durable dedup turns the retries into exactly-once.
func (sc *ShardedClient) SessionEventsSeq(ctx context.Context, id string, seq int64, events []service.SessionEvent) (service.SessionEventsResponse, error) {
	sid, c, err := sc.splitSessionID(id)
	if err != nil {
		return service.SessionEventsResponse{}, err
	}
	return c.SessionEventsSeq(ctx, sid, seq, events)
}

// SessionFlush closes the session's open partial epoch on its replica.
func (sc *ShardedClient) SessionFlush(ctx context.Context, id string) (service.SessionEventsResponse, error) {
	sid, c, err := sc.splitSessionID(id)
	if err != nil {
		return service.SessionEventsResponse{}, err
	}
	return c.SessionFlush(ctx, sid)
}

// SessionPlacement reads the session's adaptive placement from its
// replica, echoing the composite id back in the response.
func (sc *ShardedClient) SessionPlacement(ctx context.Context, id string) (service.SessionPlacementResponse, error) {
	sid, c, err := sc.splitSessionID(id)
	if err != nil {
		return service.SessionPlacementResponse{}, err
	}
	resp, err := c.SessionPlacement(ctx, sid)
	if err != nil {
		return resp, err
	}
	resp.SessionID = id
	return resp, nil
}

// CloseSession drops the session on its replica.
func (sc *ShardedClient) CloseSession(ctx context.Context, id string) error {
	sid, c, err := sc.splitSessionID(id)
	if err != nil {
		return err
	}
	return c.CloseSession(ctx, sid)
}

// Stats snapshots every replica's /statz, keyed by replica URL. A
// replica that cannot be reached yields an error for its slot in errs
// (same key); stats holds only the reachable ones.
func (sc *ShardedClient) Stats(ctx context.Context) (stats map[string]service.Stats, errs map[string]error) {
	stats = make(map[string]service.Stats)
	errs = make(map[string]error)
	for _, rep := range sc.ring.Members() {
		st, err := sc.clients[rep].Stats(ctx)
		if err != nil {
			errs[rep] = err
			continue
		}
		stats[rep] = st
	}
	return stats, errs
}

// Ready reports the first replica that fails its /readyz probe, or nil
// when every replica is ready.
func (sc *ShardedClient) Ready(ctx context.Context) error {
	for _, rep := range sc.ring.Members() {
		if err := sc.clients[rep].Ready(ctx); err != nil {
			return fmt.Errorf("cluster: replica %s not ready: %w", rep, err)
		}
	}
	return nil
}
