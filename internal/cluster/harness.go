package cluster

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"netplace/internal/service"
)

// Harness boots a real netplaced cluster as child processes — one
// compiled binary per replica, each with its own -data-dir, port, and
// -cluster peer list — and supports SIGKILL plus same-port restart
// mid-test. It is the substrate of the multi-process conformance suite:
// unlike the in-process CrashHarness (internal/service), a kill here
// takes the whole process with its sockets, caches, and singleflight
// state, exactly like a crashed replica in production.
//
// Determinism rules (the flake-hardening contract, mirrored in
// service.CrashHarness's doc comment): ports are pre-allocated by
// binding :0 and closing, readiness is only ever established by polling
// /readyz — never by sleeping a guessed duration — and a boot that
// loses its pre-allocated port to a raced bind tears the whole cluster
// down and retries with fresh ports, because every replica's -cluster
// flag embeds every port.
type Harness struct {
	cfg HarnessConfig
	bin string
	rep []*Replica
}

// HarnessConfig configures a cluster boot.
type HarnessConfig struct {
	// N is the replica count (at least 1).
	N int
	// BaseDir is the root under which per-replica data directories and
	// log files are created (required; use t.TempDir() from tests).
	BaseDir string
	// PeerCache passes -peer-cache to every replica.
	PeerCache bool
	// NoForward passes -no-forward to every replica (sharded clients
	// route themselves; a replica answers only what it owns).
	NoForward bool
	// ExtraArgs appends additional netplaced flags to every replica.
	ExtraArgs []string
	// FaultProxy interposes a TCP fault proxy in front of every
	// replica: the advertised URL is the proxy's port, the process
	// listens on a private inner port, and SetFault can partition a
	// replica (blackhole, reset, one-way) without touching its process.
	FaultProxy bool
	// Binary is the netplaced executable to run. Empty uses the
	// NETPLACED_BIN environment variable or, failing that, builds
	// netplace/cmd/netplaced once per test process.
	Binary string
	// ReadyTimeout bounds one replica's boot-to-ready wait (default 30s).
	ReadyTimeout time.Duration
}

// Replica is one netplaced process slot in the harness: its URL and
// data directory are stable across Kill/Restart cycles.
type Replica struct {
	// Index is the replica's position in the harness.
	Index int
	// URL is the replica's base URL ("http://127.0.0.1:<port>").
	URL string
	// DataDir is the replica's persistent state directory.
	DataDir string

	port    int
	logPath string
	cmd     *exec.Cmd
	waitCh  chan error

	// innerPort is the process's real listen port when a fault proxy
	// owns the advertised one; zero otherwise.
	innerPort int
	fault     *faultProxy
}

// listenPort is the port the replica process itself binds: the inner
// port behind a fault proxy, else the advertised one.
func (r *Replica) listenPort() int {
	if r.fault != nil {
		return r.innerPort
	}
	return r.port
}

// netplacedBuild memoizes building the netplaced binary once per test
// process.
var netplacedBuild struct {
	once sync.Once
	path string
	err  error
}

// netplacedBinary resolves the binary to run: NETPLACED_BIN when set
// (CI builds it once in its own step), else a go-build into a temp
// directory, shared by every harness in the process.
func netplacedBinary() (string, error) {
	if p := os.Getenv("NETPLACED_BIN"); p != "" {
		return p, nil
	}
	netplacedBuild.once.Do(func() {
		dir, err := os.MkdirTemp("", "netplaced-bin-")
		if err != nil {
			netplacedBuild.err = err
			return
		}
		out := filepath.Join(dir, "netplaced")
		cmd := exec.Command("go", "build", "-o", out, "netplace/cmd/netplaced")
		if msg, err := cmd.CombinedOutput(); err != nil {
			netplacedBuild.err = fmt.Errorf("cluster: building netplaced: %v\n%s", err, msg)
			return
		}
		netplacedBuild.path = out
	})
	return netplacedBuild.path, netplacedBuild.err
}

// NewHarness prepares a harness (builds or resolves the binary, creates
// the per-replica directories) without starting any process; call Start.
func NewHarness(cfg HarnessConfig) (*Harness, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("cluster: harness needs N >= 1 replicas, got %d", cfg.N)
	}
	if cfg.BaseDir == "" {
		return nil, fmt.Errorf("cluster: harness needs a BaseDir")
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 30 * time.Second
	}
	bin := cfg.Binary
	if bin == "" {
		var err error
		if bin, err = netplacedBinary(); err != nil {
			return nil, err
		}
	}
	h := &Harness{cfg: cfg, bin: bin}
	for i := 0; i < cfg.N; i++ {
		dataDir := filepath.Join(cfg.BaseDir, fmt.Sprintf("replica-%d", i))
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return nil, err
		}
		h.rep = append(h.rep, &Replica{
			Index:   i,
			DataDir: dataDir,
			logPath: filepath.Join(cfg.BaseDir, fmt.Sprintf("replica-%d.log", i)),
		})
	}
	return h, nil
}

// allocPort reserves a free TCP port by binding :0 and closing — the
// standard pre-allocation pattern; the tiny close-to-exec window is
// covered by Start's whole-cluster retry.
func allocPort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	return port, ln.Close()
}

// Start allocates ports and boots every replica, returning once all of
// them answer /readyz. A boot that fails because a pre-allocated port
// was raced away is retried from scratch (fresh ports for everyone) up
// to three times; any other failure surfaces with the replica's log.
func (h *Harness) Start() error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if err := h.tryStart(); err != nil {
			lastErr = err
			h.Stop()
			if strings.Contains(err.Error(), "address already in use") {
				continue // port raced away: fresh ports, new attempt
			}
			return err
		}
		return nil
	}
	return fmt.Errorf("cluster: harness start failed after 3 attempts: %w", lastErr)
}

// tryStart is one whole-cluster boot attempt.
func (h *Harness) tryStart() error {
	for _, r := range h.rep {
		port, err := allocPort()
		if err != nil {
			return err
		}
		r.port = port
		r.URL = "http://127.0.0.1:" + strconv.Itoa(port)
		if h.cfg.FaultProxy {
			inner, err := allocPort()
			if err != nil {
				return err
			}
			r.innerPort = inner
			// The proxy binds the advertised port right now and holds
			// it for the replica's lifetime, so only the inner port is
			// exposed to the close-to-exec race.
			fp, err := newFaultProxy("127.0.0.1:"+strconv.Itoa(port), "127.0.0.1:"+strconv.Itoa(inner))
			if err != nil {
				return err
			}
			r.fault = fp
		}
	}
	for _, r := range h.rep {
		if err := h.StartReplica(r.Index); err != nil {
			return err
		}
	}
	return h.AwaitReady()
}

// StartReplica launches one replica's process on its pre-assigned port
// and data directory. It does not wait for readiness; pair with
// AwaitReady (Restart does both).
func (h *Harness) StartReplica(i int) error {
	r := h.rep[i]
	if r.cmd != nil {
		return fmt.Errorf("cluster: replica %d already running; Kill it first", i)
	}
	urls := make([]string, len(h.rep))
	for j, rr := range h.rep {
		urls[j] = rr.URL
	}
	args := []string{
		"-addr", "127.0.0.1:" + strconv.Itoa(r.listenPort()),
		"-data-dir", r.DataDir,
		"-cluster", strings.Join(urls, ","),
		"-self", r.URL,
	}
	if h.cfg.PeerCache {
		args = append(args, "-peer-cache")
	}
	if h.cfg.NoForward {
		args = append(args, "-no-forward")
	}
	args = append(args, h.cfg.ExtraArgs...)
	logf, err := os.OpenFile(r.logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(h.bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return err
	}
	r.cmd = cmd
	r.waitCh = make(chan error, 1)
	go func() {
		r.waitCh <- cmd.Wait()
		logf.Close()
	}()
	return nil
}

// AwaitReady polls every running replica's /readyz until it answers 200
// — the only readiness signal the harness ever trusts. A replica whose
// process exits while being polled fails fast with its log tail.
func (h *Harness) AwaitReady() error {
	for _, r := range h.rep {
		if r.cmd == nil {
			continue
		}
		if err := h.awaitOne(r); err != nil {
			return err
		}
	}
	return nil
}

// awaitOne polls one replica until ready, its process exits, or the
// configured timeout lapses.
func (h *Harness) awaitOne(r *Replica) error {
	deadline := time.Now().Add(h.cfg.ReadyTimeout)
	client := &http.Client{Timeout: time.Second}
	for {
		select {
		case err := <-r.waitCh:
			r.cmd = nil
			return fmt.Errorf("cluster: replica %d exited while booting (%v)\n%s", r.Index, err, h.LogTail(r.Index))
		default:
		}
		resp, err := client.Get(r.URL + "/readyz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: replica %d not ready within %v\n%s", r.Index, h.cfg.ReadyTimeout, h.LogTail(r.Index))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Kill SIGKILLs one replica and reaps the process — no drain, no
// flush: durable state is exactly what the replica fsynced, like a real
// crash. The port and data directory stay reserved for Restart.
func (h *Harness) Kill(i int) error {
	r := h.rep[i]
	if r.cmd == nil {
		return fmt.Errorf("cluster: replica %d is not running", i)
	}
	if err := r.cmd.Process.Kill(); err != nil {
		return err
	}
	<-r.waitCh // reap; the error is the expected "killed"
	r.cmd = nil
	return nil
}

// Restart boots a previously killed replica on its original port and
// data directory and waits until it answers /readyz (recovery replayed).
func (h *Harness) Restart(i int) error {
	if err := h.StartReplica(i); err != nil {
		return err
	}
	return h.awaitOne(h.rep[i])
}

// Stop kills every running replica and tears down fault proxies; safe
// to defer unconditionally.
func (h *Harness) Stop() {
	for i, r := range h.rep {
		if r.cmd != nil {
			h.Kill(i) //nolint:errcheck // teardown is best-effort
		}
		if r.fault != nil {
			r.fault.Close()
			r.fault = nil
		}
	}
}

// SetFault applies a fault mode to one replica's TCP proxy; the
// harness must have been built with FaultProxy. Existing connections
// through the proxy are severed so the fault is felt immediately.
func (h *Harness) SetFault(i int, mode FaultMode) error {
	r := h.rep[i]
	if r.fault == nil {
		return fmt.Errorf("cluster: replica %d has no fault proxy (HarnessConfig.FaultProxy not set)", i)
	}
	r.fault.SetMode(mode)
	return nil
}

// Heal clears any fault on one replica's TCP proxy.
func (h *Harness) Heal(i int) error { return h.SetFault(i, FaultNone) }

// URLs returns every replica's base URL in index order.
func (h *Harness) URLs() []string {
	urls := make([]string, len(h.rep))
	for i, r := range h.rep {
		urls[i] = r.URL
	}
	return urls
}

// Replica returns the i-th replica slot.
func (h *Harness) Replica(i int) *Replica { return h.rep[i] }

// Client builds a ShardedClient over the cluster with the service's
// default retry policy — the configuration under which a mid-replay
// kill+restart is absorbed transparently.
func (h *Harness) Client() (*ShardedClient, error) {
	sc, err := NewShardedClient(h.URLs(), nil)
	if err != nil {
		return nil, err
	}
	sc.SetRetryPolicy(defaultHarnessRetry())
	return sc, nil
}

// defaultHarnessRetry is service.DefaultRetryPolicy with a doubled
// attempt budget: enough patience to ride out a replica that is being
// killed and restarted under the client's feet, while still bounded so
// a genuinely dead cluster fails the test instead of hanging it.
func defaultHarnessRetry() service.RetryPolicy {
	p := service.DefaultRetryPolicy()
	p.MaxAttempts = 8
	return p
}

// LogTail returns up to the last 4 KiB of a replica's combined output,
// for failure messages.
func (h *Harness) LogTail(i int) string {
	data, err := os.ReadFile(h.rep[i].logPath)
	if err != nil {
		return ""
	}
	if len(data) > 4096 {
		data = data[len(data)-4096:]
	}
	return string(data)
}
