package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"netplace/internal/service"
)

// TestProxyAnyReplicaEntryPoint: with forwarding on (the default), a
// plain un-sharded service.Client can talk to ANY replica — uploads,
// instance reads, solves, and session calls for keys owned elsewhere
// are transparently forwarded to the owner, and session calls land via
// the local-first-then-scatter path.
func TestProxyAnyReplicaEntryPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process suite; skipped in -short mode")
	}
	ctx := context.Background()
	h, err := NewHarness(HarnessConfig{N: 2, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	in := conformanceInstance(t)
	id := service.InstanceIDFor(in)
	ring := NewRingOf(0, h.URLs()...)
	owner := ring.Owner(id)
	var nonOwner string
	for _, u := range h.URLs() {
		if u != owner {
			nonOwner = u
		}
	}
	if nonOwner == "" {
		t.Fatalf("no non-owner replica for %s in %v", id, h.URLs())
	}
	// Drive everything through the replica that does NOT own the key.
	c := service.NewClient(nonOwner, nil)

	up, err := c.Upload(ctx, "via-proxy", in)
	if err != nil {
		t.Fatalf("upload via non-owner: %v\n%s", err, h.LogTail(0))
	}
	if up.ID != id {
		t.Fatalf("uploaded id %s, want %s", up.ID, id)
	}
	// Readable from both entry points: owner directly, non-owner via a
	// forwarded hop.
	for _, u := range h.URLs() {
		if _, err := service.NewClient(u, nil).Info(ctx, id); err != nil {
			t.Fatalf("info via %s: %v", u, err)
		}
	}
	if _, err := c.Solve(ctx, id, service.SolveOptions{}); err != nil {
		t.Fatalf("solve via non-owner: %v", err)
	}

	// Sessions live on the instance's owner; the proxy routes the open
	// by the body's instance_id, and later session calls from the
	// non-owner find it by scattering on the replica-local id.
	sess, err := c.OpenSession(ctx, id, service.SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatalf("open session via non-owner: %v", err)
	}
	if _, err := c.SessionEventsSeq(ctx, sess.SessionID, 1, conformanceTrace(24, 8)); err != nil {
		t.Fatalf("session events via non-owner: %v", err)
	}
	pl, err := c.SessionPlacement(ctx, sess.SessionID)
	if err != nil {
		t.Fatalf("session placement via non-owner: %v", err)
	}
	if pl.Stats.Events != 8 {
		t.Fatalf("session saw %d events, want 8", pl.Stats.Events)
	}
	// The session is resident on the owner only; statz proves the
	// non-owner served it by forwarding, not by hosting a copy.
	ownStats, err := service.NewClient(owner, nil).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ownStats.SessionsOpen != 1 || ownStats.SessionEvents != 8 {
		t.Fatalf("owner sessions_open=%d session_events=%d, want 1/8",
			ownStats.SessionsOpen, ownStats.SessionEvents)
	}

	// A genuinely unknown session still reads as 404 after the scatter.
	if _, err := c.Session(ctx, "s-ffffff"); err == nil {
		t.Fatal("unknown session id did not 404 through the proxy")
	}

	// Hop guard: a request arriving with the forwarded header is served
	// strictly locally — the non-owner answers 404 for an instance it
	// does not host instead of forwarding again.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, nonOwner+"/instances/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(service.HeaderForwarded, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("hop-guarded request got %d, want 404 (served locally)", resp.StatusCode)
	}

	// The merged cluster view is reachable through any entry point and
	// agrees on membership.
	cs, err := c.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Totals.Replicas != 2 || len(cs.Errors) != 0 {
		t.Fatalf("cluster view replicas=%d errors=%v, want 2 and none", cs.Totals.Replicas, cs.Errors)
	}
}

// TestScatterUnreachablePeer502: a session scatter that cannot reach
// every peer must not claim 404 — the session may live on a replica
// that did not answer. It answers 502 with a ScatterError naming the
// silent peers, both for transport failures and for peers skipped by
// an open circuit breaker; with every peer answering, an all-404
// scatter still reads as a clean 404.
func TestScatterUnreachablePeer502(t *testing.T) {
	notFound := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	scatter := func(p *Proxy) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/sessions/s-abc123", nil))
		return rec
	}

	// Port 1 is never listening: every forward fails at dial time.
	dead := "http://127.0.0.1:1"
	p := NewProxy("http://self.test", []string{"http://self.test", dead}, notFound, nil)
	rec := scatter(p)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("scatter with unreachable peer answered %d, want 502", rec.Code)
	}
	var se ScatterError
	if err := json.Unmarshal(rec.Body.Bytes(), &se); err != nil {
		t.Fatalf("502 body is not a ScatterError: %v\n%s", err, rec.Body.Bytes())
	}
	if se.Error == "" || se.Peers[dead] == "" {
		t.Fatalf("ScatterError does not name the silent peer: %+v", se)
	}

	// The dial failures fed the peer's breaker; once it opens the peer
	// is skipped without a connection attempt — still 502, with the
	// breaker named as the reason.
	for i := 0; i < 3; i++ {
		scatter(p)
	}
	rec = scatter(p)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("scatter with open-breaker peer answered %d, want 502", rec.Code)
	}
	se = ScatterError{}
	if err := json.Unmarshal(rec.Body.Bytes(), &se); err != nil {
		t.Fatal(err)
	}
	if se.Peers[dead] != "circuit breaker open" {
		t.Fatalf("open-breaker skip reason = %q, want \"circuit breaker open\"", se.Peers[dead])
	}

	// Every peer answering 404 is a provable miss: clean 404, no error.
	peer := httptest.NewServer(notFound)
	defer peer.Close()
	p2 := NewProxy("http://self.test", []string{"http://self.test", peer.URL}, notFound, nil)
	if rec := scatter(p2); rec.Code != http.StatusNotFound {
		t.Fatalf("all-404 scatter answered %d, want 404", rec.Code)
	}
}
