package cluster

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// TestFaultProxyModes drives the harness's TCP fault proxy directly:
// pass-through works, a blackhole hangs new connections until the
// client times out, a reset refuses them immediately, and healing
// restores service on the same front address.
func TestFaultProxyModes(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()
	bu, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := newFaultProxy("127.0.0.1:0", bu.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	front := "http://" + fp.ln.Addr().String()
	// Disable keep-alives so every request dials fresh and feels the
	// mode at accept time rather than reusing a pre-fault pipe.
	client := &http.Client{
		Timeout:   250 * time.Millisecond,
		Transport: &http.Transport{DisableKeepAlives: true},
	}

	resp, err := client.Get(front + "/readyz")
	if err != nil {
		t.Fatalf("pass-through GET: %v", err)
	}
	resp.Body.Close()

	fp.SetMode(FaultBlackhole)
	start := time.Now()
	if _, err := client.Get(front + "/readyz"); err == nil {
		t.Fatal("blackholed GET succeeded")
	} else if !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("blackholed GET failed with %v, want client timeout", err)
	}
	if since := time.Since(start); since < 200*time.Millisecond {
		t.Fatalf("blackholed GET failed after %v — a blackhole must stall, not refuse", since)
	}

	fp.SetMode(FaultReset)
	start = time.Now()
	if _, err := client.Get(front + "/readyz"); err == nil {
		t.Fatal("reset GET succeeded")
	} else if errors.Is(err, net.ErrClosed) {
		t.Fatalf("reset GET failed with %v", err)
	}
	if since := time.Since(start); since > 200*time.Millisecond {
		t.Fatalf("reset GET took %v — a reset must refuse fast", since)
	}

	fp.SetMode(FaultNone)
	resp, err = client.Get(front + "/readyz")
	if err != nil {
		t.Fatalf("healed GET: %v", err)
	}
	resp.Body.Close()
}
