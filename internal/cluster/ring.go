// Package cluster shards the netplace service horizontally: a
// consistent-hash ring assigns every instance (and with it every
// streaming session) to one netplaced replica, a ShardedClient routes
// each call to the owning replica, and an optional stateless Proxy lets
// any replica forward requests it does not own. The multi-process
// Harness boots real netplaced binaries and is the substrate of the
// conformance suite proving N replicas are byte-indistinguishable from
// one. See docs/cluster.md.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per replica used when a Ring
// (or a component embedding one) is configured with vnodes <= 0. 128
// points per replica keeps the key distribution within a few percent of
// uniform while membership changes stay cheap to apply.
const DefaultVnodes = 128

// Ring is a consistent-hash ring with virtual nodes: each replica owns
// vnodes points on a 64-bit circle and a key belongs to the replica of
// the first point at or after the key's hash. Adding or removing one
// replica therefore moves only the ~1/N key fraction adjacent to its
// points — never reshuffles the rest — and ownership depends only on
// the member set, not on insertion order. Not safe for concurrent
// mutation; guard with a lock or copy via Clone when shared.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by (hash, replica)
	members map[string]bool
}

// ringPoint is one virtual node: a position on the circle and the
// replica owning it.
type ringPoint struct {
	h       uint64
	replica string
}

// NewRing returns an empty ring granting each replica vnodes virtual
// nodes (<= 0 selects DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// NewRingOf is NewRing followed by Add of every replica.
func NewRingOf(vnodes int, replicas ...string) *Ring {
	r := NewRing(vnodes)
	for _, rep := range replicas {
		r.Add(rep)
	}
	return r
}

// hashKey positions a key on the circle. FNV-1a alone clusters short
// sequential strings, so the digest goes through a splitmix64-style
// finalizer for avalanche; the test suite pins the resulting
// distribution to within 15% of uniform.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 output finalizer: full-avalanche mixing of a
// 64-bit word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ringSubPoints spreads each virtual node over this many circle points
// (derived from the vnode's base hash by golden-ratio stepping). The
// per-replica share's relative spread shrinks with the square root of
// the point count, so 128 vnodes land within ~6% of uniform instead of
// the ~20% a single point per vnode allows — the margin behind the
// pinned 15% distribution bound.
const ringSubPoints = 8

// Add inserts a replica's virtual nodes. Adding a present replica is a
// no-op; it reports whether the membership changed.
func (r *Ring) Add(replica string) bool {
	if r.members[replica] {
		return false
	}
	r.members[replica] = true
	for i := 0; i < r.vnodes; i++ {
		base := hashKey(replica + "#" + strconv.Itoa(i))
		for s := 0; s < ringSubPoints; s++ {
			r.points = append(r.points, ringPoint{
				h:       mix64(base + uint64(s)*0x9e3779b97f4a7c15),
				replica: replica,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].h != r.points[b].h {
			return r.points[a].h < r.points[b].h
		}
		return r.points[a].replica < r.points[b].replica
	})
	return true
}

// Remove drops a replica and its virtual nodes; it reports whether the
// replica was a member. Only keys the removed replica owned change
// owners.
func (r *Ring) Remove(replica string) bool {
	if !r.members[replica] {
		return false
	}
	delete(r.members, replica)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.replica != replica {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Owner returns the replica owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the circle's start
	}
	return r.points[i].replica
}

// Has reports whether replica is a member.
func (r *Ring) Has(replica string) bool { return r.members[replica] }

// Members returns the replicas in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Successor returns the member after m in sorted member order (wrapping
// past the last back to the first), or "" when m is not a member or the
// ring has fewer than two members. This — not ring-point adjacency — is
// the cluster's replication successor rule: every layer (replica
// pushes, proxy failover, ShardedClient degraded reads, the drain tool)
// computes it identically from the member list alone, so they agree on
// where an instance's read-only snapshot lives without coordination.
// See docs/cluster.md "Failure modes & membership".
func (r *Ring) Successor(m string) string {
	return SuccessorOf(r.Members(), m)
}

// SuccessorOf is Ring.Successor on a plain member list (sorted
// internally): the next member after self in sorted order, "" when self
// is absent or fewer than two members remain.
func SuccessorOf(members []string, self string) string {
	if len(members) < 2 {
		return ""
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == self {
			return sorted[(i+1)%len(sorted)]
		}
	}
	return ""
}

// Clone returns an independent copy of the ring.
func (r *Ring) Clone() *Ring {
	c := &Ring{vnodes: r.vnodes, members: make(map[string]bool, len(r.members))}
	for m := range r.members {
		c.members[m] = true
	}
	c.points = append([]ringPoint(nil), r.points...)
	return c
}

// String renders the membership, for logs and errors.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d vnodes)", len(r.members), r.vnodes)
}
