package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"netplace/internal/service"
)

// uploadInstanceID decodes an upload body just far enough to compute the
// content-derived registry id the instance will get — the proxy's
// routing key for POST /instances.
func uploadInstanceID(body []byte) (string, error) {
	var req service.UploadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", err
	}
	in, err := req.Instance.Instance()
	if err != nil {
		return "", err
	}
	return service.InstanceIDFor(in), nil
}

// Proxy makes every replica a valid entry point to the cluster: an
// http.Handler that serves requests for keys this replica owns from the
// wrapped local handler and transparently forwards the rest to the
// ring's owner, so un-sharded clients (curl, a plain service.Client) can
// talk to any replica. Forwarded requests carry the
// service.HeaderForwarded hop guard; a request arriving with it is
// always served locally, so a membership disagreement between replicas
// costs one extra hop, never a loop.
//
// Routing: instance-keyed paths (/instances/{id}...) route by the id in
// the path; POST /instances decodes the body and routes by the
// instance's content-derived id; POST /v1/sessions routes by the body's
// instance_id, placing each session on its instance's owner. Session
// paths (/v1/sessions/{id}...) carry a replica-local id, so they are
// served locally first and scattered to the peers on a local 404 —
// stateless, at the price of a fan-out for misdirected session calls.
// Everything else (list endpoints, probes, /statz) is local.
type Proxy struct {
	ring   *Ring
	self   string
	inner  http.Handler
	client *http.Client
	// maxBody bounds how much of a request body the proxy buffers to
	// route or re-send it.
	maxBody int64
}

// NewProxy wraps a local replica's handler in cluster routing. self is
// this replica's own base URL as it appears in peers (it is added to the
// ring if absent); peers lists every replica. httpClient may be nil for
// http.DefaultClient.
func NewProxy(self string, peers []string, inner http.Handler, httpClient *http.Client) *Proxy {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	ring := NewRingOf(0, peers...)
	ring.Add(self)
	return &Proxy{
		ring:    ring,
		self:    strings.TrimRight(self, "/"),
		inner:   inner,
		client:  httpClient,
		maxBody: service.DefaultMaxUploadBytes,
	}
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(service.HeaderForwarded) != "" {
		p.inner.ServeHTTP(w, r) // hop guard: never forward twice
		return
	}
	seg := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	switch {
	case seg[0] == "instances" && len(seg) >= 2:
		p.routeByKey(w, r, seg[1], nil)
	case seg[0] == "instances" && r.Method == http.MethodPost:
		body, err := p.buffer(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := uploadInstanceID(body)
		if err != nil {
			// Not routable: let the local handler produce its usual error.
			r.Body = io.NopCloser(bytes.NewReader(body))
			p.inner.ServeHTTP(w, r)
			return
		}
		p.routeByKey(w, r, id, body)
	case seg[0] == "v1" && len(seg) >= 2 && seg[1] == "sessions" && len(seg) == 2 && r.Method == http.MethodPost:
		body, err := p.buffer(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var req service.SessionRequest
		if json.Unmarshal(body, &req) != nil || req.InstanceID == "" {
			r.Body = io.NopCloser(bytes.NewReader(body))
			p.inner.ServeHTTP(w, r)
			return
		}
		p.routeByKey(w, r, req.InstanceID, body)
	case seg[0] == "v1" && len(seg) >= 3 && seg[1] == "sessions":
		p.localThenScatter(w, r)
	default:
		p.inner.ServeHTTP(w, r)
	}
}

// routeByKey serves locally when the ring maps key here, else forwards
// to the owner. body, when non-nil, replaces the (already consumed)
// request body.
func (p *Proxy) routeByKey(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	owner := p.ring.Owner(key)
	if owner == p.self || owner == "" {
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		p.inner.ServeHTTP(w, r)
		return
	}
	if body == nil {
		buf, err := p.buffer(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		body = buf
	}
	resp, err := p.forward(r, owner, body)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: forwarding to %s: %v", owner, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	copyResponse(w, resp)
}

// localThenScatter serves a replica-local-keyed path (a session id)
// locally and, if the local handler answers 404, retries every peer with
// the hop guard set; the first non-404 answer wins. All-404 replays the
// local 404, so a genuinely unknown session still reads as one.
func (p *Proxy) localThenScatter(w http.ResponseWriter, r *http.Request) {
	body, err := p.buffer(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rec := &bufferedResponse{header: make(http.Header)}
	r.Body = io.NopCloser(bytes.NewReader(body))
	p.inner.ServeHTTP(rec, r)
	if rec.code != http.StatusNotFound {
		rec.replay(w)
		return
	}
	for _, peer := range p.ring.Members() {
		if peer == p.self {
			continue
		}
		resp, err := p.forward(r, peer, body)
		if err != nil {
			continue // unreachable peer: keep scattering
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
		return
	}
	rec.replay(w)
}

// forward re-issues the request against a peer with the hop guard set.
func (p *Proxy) forward(r *http.Request, peer string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, peer+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	req.Header.Set(service.HeaderForwarded, p.self)
	return p.client.Do(req)
}

// buffer reads the request body fully (bounded by maxBody) so it can be
// routed on and re-sent.
func (p *Proxy) buffer(r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	defer r.Body.Close()
	body, err := io.ReadAll(io.LimitReader(r.Body, p.maxBody+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading request body: %w", err)
	}
	if int64(len(body)) > p.maxBody {
		return nil, fmt.Errorf("cluster: request body exceeds the %d-byte proxy buffer", p.maxBody)
	}
	return body, nil
}

// copyResponse relays a forwarded response verbatim.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // headers are out; nothing left to do
}

// bufferedResponse captures a local handler's answer so the proxy can
// decide whether to scatter before committing bytes to the client.
type bufferedResponse struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

// Header implements http.ResponseWriter.
func (b *bufferedResponse) Header() http.Header { return b.header }

// WriteHeader implements http.ResponseWriter.
func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

// Write implements http.ResponseWriter.
func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	return b.body.Write(p)
}

// replay commits the captured answer to the real writer.
func (b *bufferedResponse) replay(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if b.code == 0 {
		b.code = http.StatusOK
	}
	w.WriteHeader(b.code)
	w.Write(b.body.Bytes()) //nolint:errcheck // headers are out; nothing left to do
}
