package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"netplace/internal/service"
)

// uploadInstanceID decodes an upload body just far enough to compute the
// content-derived registry id the instance will get — the proxy's
// routing key for POST /instances.
func uploadInstanceID(body []byte) (string, error) {
	var req service.UploadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", err
	}
	in, err := req.Instance.Instance()
	if err != nil {
		return "", err
	}
	return service.InstanceIDFor(in), nil
}

// Proxy makes every replica a valid entry point to the cluster: an
// http.Handler that serves requests for keys this replica owns from the
// wrapped local handler and transparently forwards the rest to the
// ring's owner, so un-sharded clients (curl, a plain service.Client) can
// talk to any replica. Forwarded requests carry the
// service.HeaderForwarded hop guard; a request arriving with it is
// always served locally, so a membership disagreement between replicas
// costs one extra hop, never a loop.
//
// Routing: instance-keyed paths (/instances/{id}...) route by the id in
// the path; POST /instances decodes the body and routes by the
// instance's content-derived id; POST /v1/sessions routes by the body's
// instance_id, placing each session on its instance's owner. Session
// paths (/v1/sessions/{id}...) carry a replica-local id, so they are
// served locally first and scattered to the peers on a local 404 —
// stateless, at the price of a fan-out for misdirected session calls.
// Everything else (list endpoints, probes, /statz) is local.
type Proxy struct {
	// mu guards ring membership: drains remove peers from the ring
	// while requests are routing on it.
	mu     sync.RWMutex
	ring   *Ring
	self   string
	inner  http.Handler
	client *http.Client
	// health tracks per-peer circuit breakers: forwards that fail feed
	// them, and an open breaker makes routing fail fast (or fail over
	// to the owner's replica successor for stale-tolerant reads)
	// instead of waiting out a timeout per request.
	health *service.PeerHealth
	// maxBody bounds how much of a request body the proxy buffers to
	// route or re-send it.
	maxBody int64
}

// NewProxy wraps a local replica's handler in cluster routing. self is
// this replica's own base URL as it appears in peers (it is added to the
// ring if absent); peers lists every replica. httpClient may be nil for
// http.DefaultClient.
func NewProxy(self string, peers []string, inner http.Handler, httpClient *http.Client) *Proxy {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	ring := NewRingOf(0, peers...)
	ring.Add(self)
	return &Proxy{
		ring:    ring,
		self:    strings.TrimRight(self, "/"),
		inner:   inner,
		client:  httpClient,
		health:  service.NewPeerHealth(service.BreakerConfig{}),
		maxBody: service.DefaultMaxUploadBytes,
	}
}

// UseHealth shares a peer-health tracker with the proxy, so breakers
// opened by the server's prober (or by other traffic) short-circuit
// proxy forwards too. Call before serving traffic.
func (p *Proxy) UseHealth(h *service.PeerHealth) {
	if h != nil {
		p.health = h
	}
}

// removeMember drops a drained replica from the ring and forgets its
// breaker, so no future request routes to it.
func (p *Proxy) removeMember(url string) {
	url = strings.TrimRight(url, "/")
	p.mu.Lock()
	p.ring.Remove(url)
	p.mu.Unlock()
	p.health.Remove(url)
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(service.HeaderForwarded) != "" {
		p.inner.ServeHTTP(w, r) // hop guard: never forward twice
		return
	}
	seg := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	switch {
	case seg[0] == "instances" && len(seg) >= 2:
		p.routeByKey(w, r, seg[1], nil)
	case seg[0] == "instances" && r.Method == http.MethodPost:
		body, err := p.buffer(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := uploadInstanceID(body)
		if err != nil {
			// Not routable: let the local handler produce its usual error.
			r.Body = io.NopCloser(bytes.NewReader(body))
			p.inner.ServeHTTP(w, r)
			return
		}
		p.routeByKey(w, r, id, body)
	case seg[0] == "v1" && len(seg) >= 2 && seg[1] == "sessions" && len(seg) == 2 && r.Method == http.MethodPost:
		body, err := p.buffer(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var req service.SessionRequest
		if json.Unmarshal(body, &req) != nil || req.InstanceID == "" {
			r.Body = io.NopCloser(bytes.NewReader(body))
			p.inner.ServeHTTP(w, r)
			return
		}
		p.routeByKey(w, r, req.InstanceID, body)
	case seg[0] == "v1" && len(seg) >= 3 && seg[1] == "sessions":
		p.localThenScatter(w, r)
	case r.Method == http.MethodPost && len(seg) == 3 && seg[0] == "v1" && seg[1] == "cluster" && seg[2] == "drain":
		p.handleDrain(w, r)
	default:
		p.inner.ServeHTTP(w, r)
	}
}

// routeByKey serves locally when the ring maps key here, else forwards
// to the owner. body, when non-nil, replaces the (already consumed)
// request body.
//
// The owner's circuit breaker gates the forward: an open breaker fails
// fast with 503 and service.HeaderReplicaDown instead of burning a
// timeout, and stale-tolerant reads (service.HeaderAllowStale on an
// instance GET, solve, or cost) fail over to the owner's ring
// successor, which holds a read-only replica of the owner's instances.
func (p *Proxy) routeByKey(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	p.mu.RLock()
	owner := p.ring.Owner(key)
	p.mu.RUnlock()
	if owner == p.self || owner == "" {
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		p.inner.ServeHTTP(w, r)
		return
	}
	if body == nil {
		buf, err := p.buffer(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		body = buf
	}
	b := p.health.For(owner)
	if !b.Allow() {
		if p.failover(w, r, owner, body) {
			return
		}
		writeReplicaDown(w, owner, b.RetryAfter())
		return
	}
	resp, err := p.forward(r, owner, body)
	if err != nil {
		if r.Context().Err() == nil {
			b.Failure()
		}
		if p.failover(w, r, owner, body) {
			return
		}
		http.Error(w, fmt.Sprintf("cluster: forwarding to %s: %v", owner, err), http.StatusBadGateway)
		return
	}
	b.Success()
	defer resp.Body.Close()
	copyResponse(w, resp)
}

// staleEligible reports whether a request may be served from a replica
// snapshot: the client opted in with service.HeaderAllowStale and the
// request is a side-effect-free instance read (info, solve, or cost).
func staleEligible(r *http.Request) bool {
	if r.Header.Get(service.HeaderAllowStale) == "" {
		return false
	}
	seg := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	if seg[0] != "instances" || len(seg) < 2 {
		return false
	}
	switch {
	case r.Method == http.MethodGet && len(seg) == 2:
		return true
	case r.Method == http.MethodPost && len(seg) == 3 && (seg[2] == "solve" || seg[2] == "cost"):
		return true
	}
	return false
}

// failover reroutes a stale-eligible read for a down owner to the
// owner's ring successor, which serves it from its replica store. It
// reports whether it produced a response; the caller falls back to an
// error answer when it did not.
func (p *Proxy) failover(w http.ResponseWriter, r *http.Request, owner string, body []byte) bool {
	if !staleEligible(r) {
		return false
	}
	p.mu.RLock()
	succ := p.ring.Successor(owner)
	p.mu.RUnlock()
	if succ == "" || succ == owner {
		return false
	}
	w.Header().Set(service.HeaderReplicaDown, owner)
	if succ == p.self {
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		p.inner.ServeHTTP(w, r)
		return true
	}
	resp, err := p.forward(r, succ, body)
	if err != nil {
		w.Header().Del(service.HeaderReplicaDown)
		return false
	}
	defer resp.Body.Close()
	copyResponse(w, resp)
	return true
}

// writeReplicaDown renders the fail-fast answer for an owner whose
// breaker is open: 503 with the down replica named in
// service.HeaderReplicaDown and a Retry-After matching the breaker's
// reopen-probe schedule.
func writeReplicaDown(w http.ResponseWriter, replica string, retryAfter time.Duration) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set(service.HeaderReplicaDown, replica)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]string{ //nolint:errcheck // headers are out; nothing left to do
		"error": fmt.Sprintf("cluster: replica %s is down", replica),
	})
}

// handleDrain intercepts POST /v1/cluster/drain so a drain that names
// a peer also removes it from this proxy's ring before the local
// service updates its own peer set — routing and membership change
// together.
func (p *Proxy) handleDrain(w http.ResponseWriter, r *http.Request) {
	body, err := p.buffer(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req service.ClusterDrainRequest
	if json.Unmarshal(body, &req) == nil && req.Peer != "" && strings.TrimRight(req.Peer, "/") != p.self {
		p.removeMember(req.Peer)
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	p.inner.ServeHTTP(w, r)
}

// ScatterError is the 502 body for a session scatter that could not
// rule the session out: at least one peer was unreachable (or its
// breaker open), so the session may live on a replica that did not
// answer and a 404 would be a lie. Peers maps each silent replica to
// the reason it was skipped.
type ScatterError struct {
	Error string            `json:"error"`
	Peers map[string]string `json:"peers"`
}

// localThenScatter serves a replica-local-keyed path (a session id)
// locally and, if the local handler answers 404, retries every peer with
// the hop guard set; the first non-404 answer wins. All-404 replays the
// local 404, so a genuinely unknown session still reads as one — but
// only when every peer actually answered: if any peer was unreachable,
// the scatter answers 502 with a ScatterError naming the silent peers,
// because the session may live on one of them.
func (p *Proxy) localThenScatter(w http.ResponseWriter, r *http.Request) {
	body, err := p.buffer(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rec := &bufferedResponse{header: make(http.Header)}
	r.Body = io.NopCloser(bytes.NewReader(body))
	p.inner.ServeHTTP(rec, r)
	if rec.code != http.StatusNotFound {
		rec.replay(w)
		return
	}
	p.mu.RLock()
	members := p.ring.Members()
	p.mu.RUnlock()
	unreachable := make(map[string]string)
	for _, peer := range members {
		if peer == p.self {
			continue
		}
		b := p.health.For(peer)
		if !b.Allow() {
			unreachable[peer] = "circuit breaker open"
			continue
		}
		resp, err := p.forward(r, peer, body)
		if err != nil {
			if r.Context().Err() == nil {
				b.Failure()
			}
			unreachable[peer] = err.Error()
			continue
		}
		b.Success()
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
		return
	}
	if len(unreachable) > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		json.NewEncoder(w).Encode(ScatterError{ //nolint:errcheck // headers are out; nothing left to do
			Error: "cluster: scatter incomplete: unreachable peers may hold the session",
			Peers: unreachable,
		})
		return
	}
	rec.replay(w)
}

// forward re-issues the request against a peer with the hop guard set.
func (p *Proxy) forward(r *http.Request, peer string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, peer+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	req.Header.Set(service.HeaderForwarded, p.self)
	return p.client.Do(req)
}

// buffer reads the request body fully (bounded by maxBody) so it can be
// routed on and re-sent.
func (p *Proxy) buffer(r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	defer r.Body.Close()
	body, err := io.ReadAll(io.LimitReader(r.Body, p.maxBody+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading request body: %w", err)
	}
	if int64(len(body)) > p.maxBody {
		return nil, fmt.Errorf("cluster: request body exceeds the %d-byte proxy buffer", p.maxBody)
	}
	return body, nil
}

// copyResponse relays a forwarded response verbatim.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // headers are out; nothing left to do
}

// bufferedResponse captures a local handler's answer so the proxy can
// decide whether to scatter before committing bytes to the client.
type bufferedResponse struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

// Header implements http.ResponseWriter.
func (b *bufferedResponse) Header() http.Header { return b.header }

// WriteHeader implements http.ResponseWriter.
func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

// Write implements http.ResponseWriter.
func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	return b.body.Write(p)
}

// replay commits the captured answer to the real writer.
func (b *bufferedResponse) replay(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if b.code == 0 {
		b.code = http.StatusOK
	}
	w.WriteHeader(b.code)
	w.Write(b.body.Bytes()) //nolint:errcheck // headers are out; nothing left to do
}
