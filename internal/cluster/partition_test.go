package cluster

// Partition conformance: the self-healing property. A cluster that
// loses a replica to a network partition mid-replay must (a) open its
// circuit breakers and fail fast with the typed replica-down error,
// (b) keep the healthy shards serving exactly as before, (c) serve
// stale-tolerant reads for the dead owner's keys from its successor's
// snapshot, and (d) after the partition heals, converge to a state
// byte-identical to an uninterrupted single-node run. Every test here
// drives real netplaced processes through per-replica TCP fault
// proxies (HarnessConfig.FaultProxy) — the partition is at the socket
// layer, exactly as a production network failure would be.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os/exec"
	"strings"
	"testing"
	"time"

	"netplace/internal/core"
	"netplace/internal/graph"
	"netplace/internal/service"
)

// partitionInstance builds the conformance fixture with hot spots
// shifted by k: content-distinct instances of identical shape, used to
// find pairs owned by different replicas.
func partitionInstance(t *testing.T, k int) *core.Instance {
	t.Helper()
	const n = 24
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, 1)
	}
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(1 + (v+k)%3)
	}
	objs := make([]core.Object, 3)
	for oi := range objs {
		o := core.Object{Name: string(rune('a' + oi)), Reads: make([]int64, n), Writes: make([]int64, n)}
		o.Reads[(oi*7+3+k)%n] = 4
		o.Writes[oi] = 1
		objs[oi] = o
	}
	in, err := core.NewInstance(g, storage, objs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// partitionFaultArgs tightens the failure-detection knobs so a
// partition is detected in tens of milliseconds instead of seconds.
func partitionFaultArgs() []string {
	return []string{
		"-probe-interval", "50ms",
		"-peer-timeout", "250ms",
		"-breaker-threshold", "3",
		"-breaker-backoff", "100ms",
	}
}

// sessionFingerprint is one session's slice of the byte-identity
// property: epochs in arrival order, final placement, accounting.
type sessionFingerprint struct {
	Epochs    []service.SessionEpochJSON       `json:"epochs"`
	Placement service.SessionPlacementResponse `json:"placement"`
	Stats     service.SessionStats             `json:"stats"`
	LastSeq   int64                            `json:"last_seq"`
}

// partitionFingerprint covers both sessions plus the summed session
// counters; json.Marshal sorts the map keys, keeping it byte-stable.
type partitionFingerprint struct {
	Sessions map[string]sessionFingerprint `json:"sessions"`
	Counters clusterSessionCounters        `json:"counters"`
}

// partSession tracks one label's composite session id and accumulating
// fingerprint while a trace is replayed.
type partSession struct {
	label string
	id    string
	fp    sessionFingerprint
}

// sendBatches replays sequenced batches [from, to] of the drift trace
// into one session, accumulating epoch reports.
func sendBatches(t *testing.T, sc *ShardedClient, s *partSession, trace []service.SessionEvent, from, to int) {
	t.Helper()
	const batch = 8
	for seq := from; seq <= to; seq++ {
		start := (seq - 1) * batch
		resp, err := sc.SessionEventsSeq(context.Background(), s.id, int64(seq), trace[start:start+batch])
		if err != nil {
			t.Fatalf("session %s batch %d: %v", s.label, seq, err)
		}
		if resp.Deduplicated || resp.Accepted != batch {
			t.Fatalf("session %s batch %d: accepted=%d deduplicated=%v", s.label, seq, resp.Accepted, resp.Deduplicated)
		}
		s.fp.Epochs = append(s.fp.Epochs, resp.Epochs...)
	}
}

// finishSession flushes the open epoch and captures the session's
// placement and accounting into its fingerprint.
func finishSession(t *testing.T, sc *ShardedClient, s *partSession) {
	t.Helper()
	ctx := context.Background()
	flush, err := sc.SessionFlush(ctx, s.id)
	if err != nil {
		t.Fatalf("session %s flush: %v", s.label, err)
	}
	s.fp.Epochs = append(s.fp.Epochs, flush.Epochs...)
	pl, err := sc.SessionPlacement(ctx, s.id)
	if err != nil {
		t.Fatal(err)
	}
	pl.SessionID = "" // embeds a replica URL
	s.fp.Placement = pl
	info, err := sc.Session(ctx, s.id)
	if err != nil {
		t.Fatal(err)
	}
	s.fp.Stats = info.Stats
	s.fp.LastSeq = info.LastSeq
}

// waitPeerOpen polls a replica's /statz until its breaker for peer
// reports open — the failure-detection latency under test.
func waitPeerOpen(t *testing.T, c *service.Client, peer string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last map[string]string
	var lastErr error
	for time.Now().Before(deadline) {
		st, err := c.Stats(context.Background())
		if err == nil && st.PeerHealth[peer] == "open" {
			return
		}
		last, lastErr = st.PeerHealth, err
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("breaker for %s never opened; last peer_health=%v err=%v", peer, last, lastErr)
}

// runPartitionTrace replays the two-session drift trace against an
// n-replica cluster and returns the marshalled fingerprint. With
// faults enabled (n must be 2) it picks the instance pair so the two
// sessions live on different replicas, blackholes session a's owner
// after batch 3 — asserting typed fail-fast errors, breaker opening on
// the healthy replica, and a stale failover read from the successor's
// snapshot — heals, and finishes the trace. inA/inB nil means pick the
// pair from the booted ring (they are returned for the baseline run).
func runPartitionTrace(t *testing.T, backend string, n int, faults bool, inA, inB *core.Instance) ([]byte, *core.Instance, *core.Instance) {
	t.Helper()
	ctx := context.Background()
	cfg := HarnessConfig{N: n, BaseDir: t.TempDir()}
	if faults {
		cfg.FaultProxy = true
		cfg.ExtraArgs = partitionFaultArgs()
	}
	h, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	sc, err := NewShardedClient(h.URLs(), &http.Client{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rp := service.DefaultRetryPolicy()
	rp.MaxAttempts = 6
	sc.SetRetryPolicy(rp)
	sc.SetBreakerConfig(service.BreakerConfig{Threshold: 3, Backoff: 100 * time.Millisecond})

	if inA == nil {
		inA = partitionInstance(t, 0)
		ownerA := sc.Owner(service.InstanceIDFor(inA))
		for k := 1; k < 32 && inB == nil; k++ {
			cand := partitionInstance(t, k)
			if sc.Owner(service.InstanceIDFor(cand)) != ownerA {
				inB = cand
			}
		}
		if inB == nil {
			t.Fatal("no instance pair with distinct owners among 32 candidates")
		}
	}

	upA, err := sc.Upload(ctx, "part-a", inA)
	if err != nil {
		t.Fatal(err)
	}
	upB, err := sc.Upload(ctx, "part-b", inB)
	if err != nil {
		t.Fatal(err)
	}
	opts := service.SolveOptions{Metric: backend}
	for _, id := range []string{upA.ID, upB.ID} {
		if _, err := sc.Solve(ctx, id, opts); err != nil {
			t.Fatalf("pin solve (%s): %v", backend, err)
		}
	}
	scfg := service.SessionConfig{Epoch: 16, Window: 3, Options: opts}
	sessA, err := sc.OpenSession(ctx, upA.ID, scfg)
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := sc.OpenSession(ctx, upB.ID, scfg)
	if err != nil {
		t.Fatal(err)
	}
	sA := &partSession{label: "a", id: sessA.SessionID}
	sB := &partSession{label: "b", id: sessB.SessionID}
	trace := conformanceTrace(24, 96)

	sendBatches(t, sc, sA, trace, 1, 3)
	sendBatches(t, sc, sB, trace, 1, 3)

	if faults {
		ownerURL := sc.Owner(upA.ID)
		idx := replicaIndex(t, h, ownerURL)
		if err := h.SetFault(idx, FaultBlackhole); err != nil {
			t.Fatal(err)
		}
		// The next batch for session a cannot land; the retries burn
		// out against timeouts and the client-side breaker opens.
		if _, err := sc.SessionEventsSeq(ctx, sA.id, 4, trace[24:32]); err == nil {
			t.Fatal("batch to blackholed owner succeeded")
		}
		if got := sc.Health().States()[ownerURL]; got != "open" {
			t.Fatalf("client breaker=%q after failed batch, want open", got)
		}
		// With the breaker open, a retry-free call fails fast with the
		// typed error instead of burning another timeout. The first
		// attempt may consume the breaker's due reopen probe (and its
		// timeout); right after any failure the breaker is freshly
		// open, so a typed sub-timeout answer must show up quickly.
		direct := service.NewClient(ownerURL, &http.Client{Timeout: time.Second})
		direct.SetBreaker(sc.Health().For(ownerURL))
		sawTyped := false
		for i := 0; i < 5 && !sawTyped; i++ {
			start := time.Now()
			_, err := direct.Solve(ctx, upA.ID, opts)
			if err == nil {
				t.Fatal("solve against blackholed owner succeeded")
			}
			sawTyped = errors.Is(err, service.ErrReplicaDown) && time.Since(start) < 500*time.Millisecond
		}
		if !sawTyped {
			t.Fatal("no fail-fast ErrReplicaDown within 5 attempts after breaker opened")
		}
		// The healthy replica's prober notices the partition too.
		healthy := ""
		for _, u := range h.URLs() {
			if u != ownerURL {
				healthy = u
				break
			}
		}
		waitPeerOpen(t, service.NewClient(healthy, nil), ownerURL)
		// Stale-tolerant reads for the dead owner's key fail over to
		// the successor's hash-verified snapshot, marked stale.
		res, err := sc.SolveStale(ctx, upA.ID, opts)
		if err != nil {
			t.Fatalf("stale failover read: %v", err)
		}
		if !res.Stale {
			t.Fatal("failover read not marked stale")
		}
		// The healthy shard is untouched by its peer's partition.
		sendBatches(t, sc, sB, trace, 4, 6)

		if err := h.Heal(idx); err != nil {
			t.Fatal(err)
		}
		// The owner process never died; once the network heals the
		// sequenced ingest resumes exactly where it left off (batch 4
		// never reached it, so no dedup).
		sendBatches(t, sc, sA, trace, 4, 12)
		sendBatches(t, sc, sB, trace, 7, 12)
	} else {
		sendBatches(t, sc, sA, trace, 4, 12)
		sendBatches(t, sc, sB, trace, 4, 12)
	}

	finishSession(t, sc, sA)
	finishSession(t, sc, sB)

	fp := partitionFingerprint{Sessions: map[string]sessionFingerprint{"a": sA.fp, "b": sB.fp}}
	stats, errs := sc.Stats(ctx)
	if len(errs) > 0 {
		t.Fatalf("statz errors after heal: %v", errs)
	}
	for _, st := range stats {
		fp.Counters.Open += st.SessionsOpen
		fp.Counters.Opened += st.SessionsOpened
		fp.Counters.Events += st.SessionEvents
		fp.Counters.Epochs += st.SessionEpochs
		fp.Counters.Resolves += st.SessionResolves
		fp.Counters.Moves += st.SessionMoves
	}
	buf, err := json.Marshal(fp)
	if err != nil {
		t.Fatal(err)
	}
	return buf, inA, inB
}

// TestPartitionConformanceByteIdentical is the self-healing property:
// a two-replica cluster that loses one session's owner to a TCP
// blackhole mid-replay — failing fast while partitioned, serving the
// other shard normally, answering stale failover reads from the
// successor's snapshot — converges, once healed, to per-session
// epochs, placements, accounting, and summed session counters
// byte-identical to an uninterrupted single-node run, across all three
// oracle backends.
func TestPartitionConformanceByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process suite; skipped in -short mode")
	}
	for _, backend := range []string{"dense", "lazy", "tree"} {
		t.Run(backend, func(t *testing.T) {
			got, inA, inB := runPartitionTrace(t, backend, 2, true, nil, nil)
			want, _, _ := runPartitionTrace(t, backend, 1, false, inA, inB)
			if !bytes.Equal(got, want) {
				t.Errorf("partitioned cluster diverges from single node\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestBreakerFailFast exercises the server-side breaker through the
// forwarding proxy: once a replica's peer breaker opens, requests for
// the dead owner's keys answer the typed 503 in well under the peer
// timeout, and stale-opted solves are served from the entry replica's
// own snapshot of the dead owner's instance.
func TestBreakerFailFast(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process suite; skipped in -short mode")
	}
	ctx := context.Background()
	h, err := NewHarness(HarnessConfig{
		N: 2, BaseDir: t.TempDir(),
		FaultProxy: true,
		ExtraArgs:  partitionFaultArgs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	sc, err := NewShardedClient(h.URLs(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Find an instance owned by replica 1; replica 0 is the entry point.
	var in *core.Instance
	var id string
	for k := 0; k < 32 && in == nil; k++ {
		cand := partitionInstance(t, k)
		if cid := service.InstanceIDFor(cand); sc.Owner(cid) == h.URLs()[1] {
			in, id = cand, cid
		}
	}
	if in == nil {
		t.Fatal("no replica-1-owned instance among 32 candidates")
	}
	entry := service.NewClient(h.URLs()[0], &http.Client{Timeout: 2 * time.Second})
	if _, err := entry.Upload(ctx, "failfast", in); err != nil {
		t.Fatal(err)
	}
	opts := service.SolveOptions{Metric: "dense"}
	if _, err := entry.Solve(ctx, id, opts); err != nil {
		t.Fatalf("pre-partition forwarded solve: %v", err)
	}

	if err := h.SetFault(1, FaultBlackhole); err != nil {
		t.Fatal(err)
	}
	waitPeerOpen(t, entry, h.URLs()[1])

	// Plain reads for the dead owner's key fail fast with the typed
	// error. An attempt may consume the breaker's due reopen probe and
	// burn a timeout; one of a handful must answer typed and fast.
	sawTyped := false
	for i := 0; i < 5 && !sawTyped; i++ {
		start := time.Now()
		_, err := entry.Info(ctx, id)
		if err == nil {
			t.Fatal("info for dead owner's instance succeeded without stale opt-in")
		}
		sawTyped = errors.Is(err, service.ErrReplicaDown) && time.Since(start) < 500*time.Millisecond
	}
	if !sawTyped {
		t.Fatal("no fail-fast ErrReplicaDown within 5 attempts after breaker opened")
	}

	// A stale-opted solve fails over: replica 0 is the dead owner's
	// ring successor and answers from its own snapshot.
	var res service.SolveResult
	var lastErr error
	for i := 0; i < 3; i++ {
		if res, lastErr = entry.SolveStale(ctx, id, opts); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("stale failover solve: %v", lastErr)
	}
	if !res.Stale {
		t.Fatal("failover solve not marked stale")
	}

	// Healing closes the loop: the prober's reopen probe succeeds and
	// plain reads work again.
	if err := h.Heal(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := entry.Info(ctx, id); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("forwarded reads never recovered after heal: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDrainPeerHandoff retires a replica with the netplaced -drain-peer
// admin command and verifies the handoff: the victim drains, the
// survivor drops it from ring and peer set, and every instance the
// victim owned is re-homed onto (and solvable from) the survivor.
func TestDrainPeerHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process suite; skipped in -short mode")
	}
	ctx := context.Background()
	h, err := NewHarness(HarnessConfig{N: 2, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	sc, err := h.Client()
	if err != nil {
		t.Fatal(err)
	}

	victim := h.URLs()[1]
	ids := make([]string, 0, 4)
	victimOwned := ""
	for k := 0; k < 32 && (len(ids) < 4 || victimOwned == ""); k++ {
		in := partitionInstance(t, k)
		cid := service.InstanceIDFor(in)
		if len(ids) >= 4 && sc.Owner(cid) != victim {
			continue
		}
		up, err := sc.Upload(ctx, fmt.Sprintf("drain-%d", k), in)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, up.ID)
		if victimOwned == "" && sc.Owner(up.ID) == victim {
			victimOwned = up.ID
		}
	}
	if victimOwned == "" {
		t.Fatal("no victim-owned instance among 32 candidates")
	}
	// A live session on the victim gives the drain something to flush.
	sess, err := sc.OpenSession(ctx, victimOwned, service.SessionConfig{Epoch: 16, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.SessionEventsSeq(ctx, sess.SessionID, 1, conformanceTrace(24, 8)); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(h.bin, "-drain-peer", victim, "-cluster", strings.Join(h.URLs(), ",")).CombinedOutput()
	if err != nil {
		t.Fatalf("netplaced -drain-peer: %v\n%s", err, out)
	}

	// The victim is drained out of rotation.
	if err := service.NewClient(victim, nil).Ready(ctx); err == nil {
		t.Fatal("drained replica still answers /readyz 200")
	}
	// The survivor serves every instance — including the re-homed ones
	// — and no longer counts the victim as a peer.
	surv := service.NewClient(h.URLs()[0], nil)
	for _, id := range ids {
		if _, err := surv.Solve(ctx, id, service.SolveOptions{}); err != nil {
			t.Fatalf("instance %s not served by survivor after drain: %v", id, err)
		}
	}
	st, err := surv.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Peers != 0 {
		t.Fatalf("survivor live peer count=%d after drain, want 0", st.Peers)
	}
}
