package cluster

// The multi-process conformance suite: the proof that a sharded
// netplaced cluster is observationally identical to one server. Every
// test here boots real netplaced processes through Harness — no
// httptest, no in-process shortcuts — and drives them over the wire
// with a ShardedClient, so what is asserted is exactly what a
// production deployment would see.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"

	"netplace/internal/core"
	"netplace/internal/graph"
	"netplace/internal/service"
)

// conformanceInstance mirrors the crash tests' shared fixture (a
// 24-node path, integer weights, three objects with spread hot spots);
// integer weights keep every oracle backend's distances exactly
// representable, so byte-identity can span dense/lazy/tree.
func conformanceInstance(t *testing.T) *core.Instance {
	t.Helper()
	const n = 24
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, 1)
	}
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(1 + v%3)
	}
	objs := make([]core.Object, 3)
	for oi := range objs {
		o := core.Object{Name: string(rune('a' + oi)), Reads: make([]int64, n), Writes: make([]int64, n)}
		o.Reads[(oi*7+3)%n] = 4
		o.Writes[oi] = 1
		objs[oi] = o
	}
	in, err := core.NewInstance(g, storage, objs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// conformanceTrace mirrors the crash tests' drifting trace: the hot
// region moves across the path every 40 events, forcing real moves.
func conformanceTrace(n, events int) []service.SessionEvent {
	names := []string{"a", "b", "c"}
	evs := make([]service.SessionEvent, events)
	for i := range evs {
		phase := i / 40
		evs[i] = service.SessionEvent{
			Obj:   names[i%3],
			Node:  ((i*5)%7 + phase*(n/3) + i%3) % n,
			Write: i%5 == 0,
		}
	}
	return evs
}

// clusterSizes returns the replica counts the conformance property runs
// at beyond the single-node baseline. NETPLACE_CLUSTER_N caps the
// largest size (the CI cluster lane sets 2 to keep -race runs quick);
// unset runs the full {2, 4}.
func clusterSizes(t *testing.T) []int {
	t.Helper()
	maxN := 4
	if v := os.Getenv("NETPLACE_CLUSTER_N"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad NETPLACE_CLUSTER_N=%q", v)
		}
		maxN = n
	}
	var sizes []int
	for _, n := range []int{2, 4} {
		if n <= maxN {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 {
		sizes = []int{maxN}
	}
	return sizes
}

// clusterFingerprint is everything the byte-identity property covers,
// assembled purely from wire responses: the per-epoch cost reports in
// arrival order, the final placement (session id blanked — it embeds a
// replica URL), the session's own accounting, the ingest high-water
// mark, and the /statz session counters summed across the cluster.
type clusterFingerprint struct {
	Epochs    []service.SessionEpochJSON       `json:"epochs"`
	Placement service.SessionPlacementResponse `json:"placement"`
	Stats     service.SessionStats             `json:"stats"`
	LastSeq   int64                            `json:"last_seq"`
	Counters  clusterSessionCounters           `json:"counters"`
}

// clusterSessionCounters sums the /statz session counters over every
// replica; on a conforming cluster the sum equals a single server's.
type clusterSessionCounters struct {
	Open     int   `json:"open"`
	Opened   int64 `json:"opened"`
	Events   int64 `json:"events"`
	Epochs   int64 `json:"epochs"`
	Resolves int64 `json:"resolves"`
	Moves    int64 `json:"moves"`
}

// replicaIndex maps a replica URL back to its harness slot.
func replicaIndex(t *testing.T, h *Harness, url string) int {
	t.Helper()
	for i, u := range h.URLs() {
		if u == url {
			return i
		}
	}
	t.Fatalf("URL %s not in harness %v", url, h.URLs())
	return -1
}

// runClusterTrace boots an N-replica cluster, replays the drift trace
// through a ShardedClient in sequenced batches, and returns the
// marshalled fingerprint. With kills enabled it SIGKILLs and restarts
// the instance's owner after batch 3 (mid-epoch: 24 events, epoch 16)
// and, on clusters of more than one, the owner's ring neighbour after
// batch 7 — both between acked batches, so durable state is exactly the
// acked prefix.
func runClusterTrace(t *testing.T, n int, backend string, kills bool) []byte {
	t.Helper()
	ctx := context.Background()
	h, err := NewHarness(HarnessConfig{N: n, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	sc, err := h.Client()
	if err != nil {
		t.Fatal(err)
	}

	up, err := sc.Upload(ctx, "conformance", conformanceInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	// Pin the oracle backend over the wire, exactly as the in-process
	// crash tests pin it directly: a solve with the metric option.
	if _, err := sc.Solve(ctx, up.ID, service.SolveOptions{Metric: backend}); err != nil {
		t.Fatalf("pin solve (%s): %v", backend, err)
	}
	sess, err := sc.OpenSession(ctx, up.ID, service.SessionConfig{
		Epoch: 16, Window: 3,
		Options: service.SolveOptions{Metric: backend},
	})
	if err != nil {
		t.Fatal(err)
	}

	owner := replicaIndex(t, h, sc.Owner(up.ID))
	trace := conformanceTrace(24, 96)
	const batch = 8
	var fp clusterFingerprint
	for start := 0; start < len(trace); start += batch {
		seq := int64(start/batch) + 1
		resp, err := sc.SessionEventsSeq(ctx, sess.SessionID, seq, trace[start:start+batch])
		if err != nil {
			t.Fatalf("batch %d: %v\nowner log:\n%s", seq, err, h.LogTail(owner))
		}
		if resp.Deduplicated || resp.Accepted != batch {
			t.Fatalf("batch %d: accepted=%d deduplicated=%v", seq, resp.Accepted, resp.Deduplicated)
		}
		fp.Epochs = append(fp.Epochs, resp.Epochs...)
		if kills && seq == 3 {
			if err := h.Kill(owner); err != nil {
				t.Fatal(err)
			}
			if err := h.Restart(owner); err != nil {
				t.Fatalf("restarting owner: %v", err)
			}
		}
		if kills && seq == 7 && n > 1 {
			other := (owner + 1) % n
			if err := h.Kill(other); err != nil {
				t.Fatal(err)
			}
			if err := h.Restart(other); err != nil {
				t.Fatalf("restarting replica %d: %v", other, err)
			}
		}
	}
	flush, err := sc.SessionFlush(ctx, sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	fp.Epochs = append(fp.Epochs, flush.Epochs...)

	pl, err := sc.SessionPlacement(ctx, sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	pl.SessionID = ""
	fp.Placement = pl

	info, err := sc.Session(ctx, sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	fp.Stats = info.Stats
	fp.LastSeq = info.LastSeq

	stats, errs := sc.Stats(ctx)
	if len(errs) > 0 {
		t.Fatalf("statz errors: %v", errs)
	}
	for _, st := range stats {
		fp.Counters.Open += st.SessionsOpen
		fp.Counters.Opened += st.SessionsOpened
		fp.Counters.Events += st.SessionEvents
		fp.Counters.Epochs += st.SessionEpochs
		fp.Counters.Resolves += st.SessionResolves
		fp.Counters.Moves += st.SessionMoves
	}

	buf, err := json.Marshal(fp)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestClusterConformanceByteIdentical is the scale-out property: the
// same drift trace replayed through a sharded cluster of N real
// netplaced processes — with the instance's owner SIGKILLed and
// restarted mid-replay, plus a second replica on larger clusters —
// produces byte-identical placements, per-epoch cost reports, session
// accounting, and summed /statz session counters to an uninterrupted
// single-node run, across all three oracle backends.
func TestClusterConformanceByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process suite; skipped in -short mode")
	}
	sizes := clusterSizes(t)
	for _, backend := range []string{"dense", "lazy", "tree"} {
		t.Run(backend, func(t *testing.T) {
			want := runClusterTrace(t, 1, backend, false)
			for _, n := range sizes {
				t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
					got := runClusterTrace(t, n, backend, true)
					if !bytes.Equal(got, want) {
						t.Errorf("cluster n=%d diverges from single node\n got %s\nwant %s", n, got, want)
					}
				})
			}
		})
	}
}
