package cluster

import (
	"context"
	"encoding/json"
	"testing"

	"netplace/internal/service"
)

// peerCacheRun boots a 2-replica cluster (forwarding off, so each
// replica answers exactly what it is asked), uploads the same instance
// to BOTH replicas directly, solves it on each in turn, and returns the
// two results plus the merged cluster stats.
func peerCacheRun(t *testing.T, peerCache bool) (a, b service.SolveResult, cs service.ClusterStats) {
	t.Helper()
	ctx := context.Background()
	h, err := NewHarness(HarnessConfig{N: 2, BaseDir: t.TempDir(), PeerCache: peerCache, NoForward: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	in := conformanceInstance(t)
	cA := service.NewClient(h.URLs()[0], nil)
	cB := service.NewClient(h.URLs()[1], nil)
	upA, err := cA.Upload(ctx, "dup", in)
	if err != nil {
		t.Fatal(err)
	}
	upB, err := cB.Upload(ctx, "dup", in)
	if err != nil {
		t.Fatal(err)
	}
	if upA.ID != upB.ID {
		t.Fatalf("content-derived ids disagree: %s vs %s", upA.ID, upB.ID)
	}

	if a, err = cA.Solve(ctx, upA.ID, service.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if b, err = cB.Solve(ctx, upB.ID, service.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if cs, err = cA.ClusterStats(ctx); err != nil {
		t.Fatal(err)
	}
	return a, b, cs
}

// TestPeerCacheCollapsesSolves: with PeerCache on, the second replica's
// solve of an instance the first already solved is answered from the
// peer's result cache — one solver execution cluster-wide, visible in
// the merged /statz?cluster=1 totals. With PeerCache off the replicas
// fall back to per-process caching and both execute the solver.
func TestPeerCacheCollapsesSolves(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process suite; skipped in -short mode")
	}
	t.Run("on", func(t *testing.T) {
		a, b, cs := peerCacheRun(t, true)
		if b.PeerCached != true {
			t.Errorf("second solve not marked peer_cached")
		}
		if a.PeerCached {
			t.Errorf("first solve marked peer_cached; nothing to probe yet")
		}
		ja, _ := json.Marshal(a.Placement)
		jb, _ := json.Marshal(b.Placement)
		if string(ja) != string(jb) {
			t.Errorf("peer-cached placement diverges:\n a %s\n b %s", ja, jb)
		}
		if cs.Totals.Replicas != 2 {
			t.Fatalf("cluster view sees %d replicas (errors: %v)", cs.Totals.Replicas, cs.Errors)
		}
		if cs.Totals.SolvesTotal != 1 {
			t.Errorf("solves_total = %d across the cluster, want 1 (collapsed)", cs.Totals.SolvesTotal)
		}
		// Two probes: the first solve probes its peer too (and misses,
		// since nothing is cached anywhere yet); only the second hits.
		if cs.Totals.PeerProbes != 2 || cs.Totals.PeerHits != 1 || cs.Totals.PeerServed != 1 {
			t.Errorf("peer counters probes=%d hits=%d served=%d, want 2/1/1",
				cs.Totals.PeerProbes, cs.Totals.PeerHits, cs.Totals.PeerServed)
		}
	})
	t.Run("off", func(t *testing.T) {
		_, b, cs := peerCacheRun(t, false)
		if b.PeerCached {
			t.Errorf("peer_cached set with PeerCache disabled")
		}
		if cs.Totals.SolvesTotal != 2 {
			t.Errorf("solves_total = %d with peer cache off, want 2 (per-process)", cs.Totals.SolvesTotal)
		}
		if cs.Totals.PeerProbes != 0 || cs.Totals.PeerServed != 0 {
			t.Errorf("peer counters probes=%d served=%d with peer cache off, want 0/0",
				cs.Totals.PeerProbes, cs.Totals.PeerServed)
		}
	})
}
