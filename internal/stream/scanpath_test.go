package stream

import (
	"math/rand"
	"reflect"
	"testing"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/workload"
)

// gridInstance builds an integer-distance fixture (unit-weight grid) so
// every metric value is exact in float64: accounting on any backend, in
// either query orientation, must then agree bit for bit.
func gridInstance(t *testing.T, side, objects int, seed int64) *core.Instance {
	t.Helper()
	g := gen.Grid(side, side, gen.UnitWeights)
	n := g.N()
	rng := rand.New(rand.NewSource(seed))
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(2 + rng.Intn(4))
	}
	objs := workload.Generate(n, workload.Spec{
		Objects: objects, MeanRate: 4, WriteFraction: 0.15, ZipfS: 0.6,
	}, rng)
	in, err := core.NewInstance(g, storage, objs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// When the live copy set outgrows the lazy oracle's row budget the engine
// switches the nearest-copy accounting from per-copy point queries to a
// truncated outward scan from the event node (and migration pricing
// likewise). On an integer-distance network the scan path must reproduce
// the dense point-query run exactly: same stats, same reports, same
// placements — the regime split may only change what the accounting
// costs, never what it says.
func TestNearestCopyScanPathMatchesPointQueries(t *testing.T) {
	const side, objects = 9, 3
	mkTrace := func() []workload.Request {
		rng := rand.New(rand.NewSource(9))
		return workload.Sequence(gridInstance(t, side, objects, 5).Objects, 4*48, rng)
	}
	run := func(backend core.MetricBackend, rows int) (Stats, core.Placement, []EpochReport) {
		in := gridInstance(t, side, objects, 5)
		in.UseMetric(backend, rows)
		eng := New(in, Config{Epoch: 48, Window: 2, Solve: core.Options{Parallel: 1}})
		var reps []EpochReport
		for _, r := range mkTrace() {
			rep, err := eng.Observe(r)
			if err != nil {
				t.Fatal(err)
			}
			if rep != nil {
				reps = append(reps, *rep)
			}
		}
		return eng.Stats(), eng.Placement(), reps
	}

	// Row budget 2: any copy set of 3+ takes the scan path on the lazy
	// backend; the dense backend always point-queries.
	wantStats, wantPlace, wantReps := run(core.MetricDense, 0)
	gotStats, gotPlace, gotReps := run(core.MetricLazy, 2)

	maxCopies := 0
	for _, cs := range wantPlace.Copies {
		if len(cs) > maxCopies {
			maxCopies = len(cs)
		}
	}
	if maxCopies <= 2 {
		t.Fatalf("fixture never exceeded the row budget (max copy set %d); the scan path was not exercised", maxCopies)
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("scan-path stats diverged:\n lazy  %+v\n dense %+v", gotStats, wantStats)
	}
	if !reflect.DeepEqual(gotPlace, wantPlace) {
		t.Fatalf("scan-path placements diverged: %v vs %v", gotPlace.Copies, wantPlace.Copies)
	}
	if !reflect.DeepEqual(gotReps, wantReps) {
		t.Fatalf("scan-path epoch reports diverged:\n lazy  %+v\n dense %+v", gotReps, wantReps)
	}
}
