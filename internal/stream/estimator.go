package stream

import (
	"netplace/internal/workload"
)

// Estimator maintains per-object, per-node read/write frequency estimates
// over a request stream, refreshed at epoch boundaries. Two modes share
// one interface: a sliding window sums the last Window epochs' integer
// counts exactly (so estimates that have seen the true workload reproduce
// it bit-for-bit), and an EWMA (Alpha > 0) forgets exponentially — cheaper
// in memory and quicker to track drift, at the price of never being exact.
//
// Estimates are exposed as per-event rates; the engine scales them by its
// Horizon and quantises them into solver frequency tables (see
// core.QuantiseDemand).
type Estimator struct {
	alpha  float64
	window int

	// open-epoch counts, [object][node]
	curR, curW [][]int64

	// sliding window: ring of closed-epoch count matrices and their sizes,
	// plus running sums so estimates update in O(objects · nodes).
	ringR, ringW [][][]int64
	ringEvents   []int
	ringPos      int
	ringLen      int
	sumR, sumW   [][]int64
	sumEvents    int

	// EWMA state: per-epoch count averages and the average epoch size.
	ewmaR, ewmaW [][]float64
	ewmaEvents   float64
	ewmaInit     bool

	// exposed rates, recomputed at every epoch close
	rateR, rateW [][]float64
	epochs       int
}

// NewEstimator builds an estimator for nobj objects over an n-node
// network. cfg must already carry resolved defaults.
func NewEstimator(nobj, n int, cfg Config) *Estimator {
	e := &Estimator{alpha: cfg.Alpha, window: cfg.Window}
	mk64 := func() [][]int64 {
		m := make([][]int64, nobj)
		for i := range m {
			m[i] = make([]int64, n)
		}
		return m
	}
	mkf := func() [][]float64 {
		m := make([][]float64, nobj)
		for i := range m {
			m[i] = make([]float64, n)
		}
		return m
	}
	e.curR, e.curW = mk64(), mk64()
	e.rateR, e.rateW = mkf(), mkf()
	if e.alpha > 0 {
		e.ewmaR, e.ewmaW = mkf(), mkf()
	} else {
		e.sumR, e.sumW = mk64(), mk64()
		e.ringR = make([][][]int64, e.window)
		e.ringW = make([][][]int64, e.window)
		e.ringEvents = make([]int, e.window)
		for k := 0; k < e.window; k++ {
			e.ringR[k], e.ringW[k] = mk64(), mk64()
		}
	}
	return e
}

// Observe counts one event into the open epoch.
func (e *Estimator) Observe(r workload.Request) {
	if r.Write {
		e.curW[r.Obj][r.V]++
	} else {
		e.curR[r.Obj][r.V]++
	}
}

// Epochs returns the number of closed epochs.
func (e *Estimator) Epochs() int { return e.epochs }

// WindowFull reports whether the estimator has seen enough epochs to fill
// its configured memory (Window epochs for the sliding window; one
// effective window, ~1/Alpha epochs, for the EWMA).
func (e *Estimator) WindowFull() bool {
	if e.alpha > 0 {
		return float64(e.epochs)*e.alpha >= 1
	}
	return e.epochs >= e.window
}

// CloseEpoch folds the open epoch (events events long) into the estimate
// and resets the epoch counters. Rates are refreshed.
func (e *Estimator) CloseEpoch(events int) {
	e.epochs++
	if e.alpha > 0 {
		e.closeEWMA(events)
	} else {
		e.closeWindow(events)
	}
	for i := range e.curR {
		zero64(e.curR[i])
		zero64(e.curW[i])
	}
}

// closeWindow pushes the epoch into the ring, maintaining exact integer
// window sums.
func (e *Estimator) closeWindow(events int) {
	slotR, slotW := e.ringR[e.ringPos], e.ringW[e.ringPos]
	if e.ringLen == e.window {
		// evict the slot leaving the window
		for i := range slotR {
			for v := range slotR[i] {
				e.sumR[i][v] -= slotR[i][v]
				e.sumW[i][v] -= slotW[i][v]
			}
		}
		e.sumEvents -= e.ringEvents[e.ringPos]
	} else {
		e.ringLen++
	}
	for i := range e.curR {
		copy(slotR[i], e.curR[i])
		copy(slotW[i], e.curW[i])
		for v := range e.curR[i] {
			e.sumR[i][v] += e.curR[i][v]
			e.sumW[i][v] += e.curW[i][v]
		}
	}
	e.ringEvents[e.ringPos] = events
	e.sumEvents += events
	e.ringPos = (e.ringPos + 1) % e.window
	inv := 0.0
	if e.sumEvents > 0 {
		inv = 1 / float64(e.sumEvents)
	}
	for i := range e.sumR {
		for v := range e.sumR[i] {
			e.rateR[i][v] = float64(e.sumR[i][v]) * inv
			e.rateW[i][v] = float64(e.sumW[i][v]) * inv
		}
	}
}

// closeEWMA folds the epoch into the exponential averages.
func (e *Estimator) closeEWMA(events int) {
	a := e.alpha
	if !e.ewmaInit {
		// First epoch seeds the average directly, so early estimates are
		// not biased toward the zero initial state.
		a = 1
		e.ewmaInit = true
	}
	e.ewmaEvents = a*float64(events) + (1-a)*e.ewmaEvents
	inv := 0.0
	if e.ewmaEvents > 0 {
		inv = 1 / e.ewmaEvents
	}
	for i := range e.ewmaR {
		for v := range e.ewmaR[i] {
			e.ewmaR[i][v] = a*float64(e.curR[i][v]) + (1-a)*e.ewmaR[i][v]
			e.ewmaW[i][v] = a*float64(e.curW[i][v]) + (1-a)*e.ewmaW[i][v]
			e.rateR[i][v] = e.ewmaR[i][v] * inv
			e.rateW[i][v] = e.ewmaW[i][v] * inv
		}
	}
}

// ReadRate returns object i's estimated per-event read rate per node. The
// slice is owned by the estimator and refreshed at every epoch close.
func (e *Estimator) ReadRate(i int) []float64 { return e.rateR[i] }

// WriteRate returns object i's estimated per-event write rate per node.
func (e *Estimator) WriteRate(i int) []float64 { return e.rateW[i] }

func zero64(s []int64) {
	for i := range s {
		s[i] = 0
	}
}
