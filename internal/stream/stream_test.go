package stream

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/netsim"
	"netplace/internal/online"
	"netplace/internal/workload"
)

// testInstance builds a small clustered instance with a skewed workload.
func testInstance(t *testing.T, seed int64, objects int) *core.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := gen.Build("clustered", 24, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 2 + rng.Float64()*3
	}
	objs := workload.Generate(n, workload.Spec{
		Objects: objects, MeanRate: 4, WriteFraction: 0.2, ZipfS: 0.8,
	}, rng)
	return core.MustInstance(g, storage, objs)
}

// enumerate expands an instance's frequency tables into a deterministic
// event list: every read and write of every node-object pair, in index
// order.
func enumerate(in *core.Instance) []workload.Request {
	var seq []workload.Request
	for oi := range in.Objects {
		o := &in.Objects[oi]
		for v := range o.Reads {
			for k := int64(0); k < o.Reads[v]; k++ {
				seq = append(seq, workload.Request{Obj: oi, V: v})
			}
			for k := int64(0); k < o.Writes[v]; k++ {
				seq = append(seq, workload.Request{Obj: oi, V: v, Write: true})
			}
		}
	}
	return seq
}

// TestConvergesToStaticPlacement is the convergence property of the
// ISSUE: a session whose estimates equal the true frequencies must land
// on the static solver's placement with byte-identical copy sets once
// the window fills. The trace feeds the exact frequency tables split
// across two flushed epochs, so only the summed two-epoch window sees
// the whole table — the assertion therefore also pins the sliding-window
// summation, the rate quantisation round trip, and the epoch re-solve.
func TestConvergesToStaticPlacement(t *testing.T) {
	in := testInstance(t, 42, 3)
	seq := enumerate(in)
	half := len(seq) / 2

	cfg := Config{
		Epoch:           1 << 30, // epochs close only via Flush
		Window:          2,
		Horizon:         len(seq), // window span == one full table
		MigrationFactor: -1,       // no hysteresis: adopt every re-solve
	}
	eng := New(in, cfg)
	feed := func(part []workload.Request) *EpochReport {
		for _, r := range part {
			if _, err := eng.Observe(r); err != nil {
				t.Fatal(err)
			}
		}
		return eng.Flush()
	}
	rep1 := feed(seq[:half])
	if rep1 == nil || rep1.Resolved == 0 {
		t.Fatalf("first epoch: no re-solve (report %+v)", rep1)
	}
	rep2 := feed(seq[half:])
	if rep2 == nil {
		t.Fatal("second epoch: no report")
	}

	want := core.Approximate(in, cfg.Solve)
	got := eng.Placement()
	if !reflect.DeepEqual(got.Copies, want.Copies) {
		t.Fatalf("after window fill, placement diverges from static solve:\n got %v\nwant %v", got.Copies, want.Copies)
	}

	// A third identical pass changes no estimate: nothing re-solves,
	// nothing moves.
	rep3a := feed(seq[:half])
	rep3b := feed(seq[half:])
	if rep3a.Resolved+rep3b.Resolved != 0 || rep3a.Moved+rep3b.Moved != 0 {
		t.Fatalf("stationary estimates still re-solved/moved: %+v %+v", rep3a, rep3b)
	}
	if !reflect.DeepEqual(eng.Placement().Copies, want.Copies) {
		t.Fatal("placement drifted under stationary estimates")
	}
}

// TestHysteresisZeroSavingMovesNothing: an epoch whose estimates propose
// no saving must move no copies, and a prohibitive migration factor must
// reject even genuinely saving moves.
func TestHysteresisZeroSavingMovesNothing(t *testing.T) {
	in := testInstance(t, 7, 2)
	seq := enumerate(in)

	// Stationary stream: epoch 2 sees exactly what epoch 1 saw. The
	// estimates do not change, so no object re-solves and none moves.
	cfg := Config{Epoch: 1 << 30, Window: 4, Horizon: len(seq)}
	eng := New(in, cfg)
	for _, r := range seq {
		if _, err := eng.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	rep1 := eng.Flush()
	if rep1.Moved == 0 {
		t.Fatal("first epoch should adopt the initial placement")
	}
	before := eng.Placement().Clone()
	for _, r := range seq {
		if _, err := eng.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	rep2 := eng.Flush()
	if rep2.Moved != 0 || rep2.Migration != 0 {
		t.Fatalf("zero-saving epoch moved copies: %+v", rep2)
	}
	if !reflect.DeepEqual(eng.Placement().Copies, before.Copies) {
		t.Fatal("placement changed on a zero-saving epoch")
	}

	// Prohibitive migration pricing: drift the demand hard; re-solves
	// happen but every move is rejected, so the placement stays put.
	cfg2 := Config{Epoch: 1 << 30, Window: 1, Horizon: len(seq), MigrationFactor: 1e12}
	eng2 := New(in, cfg2)
	for _, r := range seq {
		if _, err := eng2.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	eng2.Flush() // initial adoption (migration-free) is always taken
	held := eng2.Placement().Clone()
	flip := make([]workload.Request, len(seq))
	for i, r := range seq {
		r.V = (r.V + in.N()/2) % in.N() // shift all demand to other nodes
		flip[i] = r
	}
	for _, r := range flip {
		if _, err := eng2.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	rep := eng2.Flush()
	if rep.Resolved == 0 {
		t.Fatal("drifted epoch should re-solve")
	}
	if rep.Moved != 0 {
		t.Fatalf("prohibitive migration factor still moved %d objects", rep.Moved)
	}
	if rep.Rejected == 0 {
		t.Fatal("expected rejected moves under prohibitive migration pricing")
	}
	if !reflect.DeepEqual(eng2.Placement().Copies, held.Copies) {
		t.Fatal("placement changed despite prohibitive migration pricing")
	}
}

// TestCompareAccountingConsistency: the harness's static strategy must
// bill exactly online.StaticCost on the same trace, per-epoch costs must
// sum to each strategy's total, and the adaptive total must match its
// engine components.
func TestCompareAccountingConsistency(t *testing.T) {
	in := testInstance(t, 11, 2)
	rng := rand.New(rand.NewSource(99))
	seq := workload.Sequence(in.Objects, 600, rng)
	cfg := Config{Epoch: 128, Window: 2}
	cmp := Compare(in, seq, cfg)

	wantStatic := online.StaticCost(in, core.Approximate(in, core.Options{}), seq)
	if math.Abs(cmp.Static.Total()-wantStatic) > 1e-6*math.Abs(wantStatic) {
		t.Fatalf("static harness total %.9f != StaticCost %.9f", cmp.Static.Total(), wantStatic)
	}
	for _, sc := range []StrategyCost{cmp.Static, cmp.Online, cmp.Adaptive} {
		if len(sc.PerEpoch) != cmp.Epochs {
			t.Fatalf("%s: %d per-epoch entries, want %d", sc.Name, len(sc.PerEpoch), cmp.Epochs)
		}
		sum := 0.0
		for _, c := range sc.PerEpoch {
			sum += c
		}
		if math.Abs(sum-sc.Total()) > 1e-6*math.Max(1, math.Abs(sc.Total())) {
			t.Fatalf("%s: per-epoch sum %.9f != total %.9f", sc.Name, sum, sc.Total())
		}
	}
	wantOnline := online.Run(in, seq, online.DefaultConfig())
	if math.Abs(cmp.Online.Total()-wantOnline.Total()) > 1e-9 {
		t.Fatalf("online harness total %.9f != Run total %.9f", cmp.Online.Total(), wantOnline.Total())
	}
}

// TestStaticEpochMatchesNetsim cross-checks one epoch's analytic
// transmission bill against the message-level simulator metering the
// same events hop by hop.
func TestStaticEpochMatchesNetsim(t *testing.T) {
	in := testInstance(t, 23, 2)
	rng := rand.New(rand.NewSource(5))
	seq := workload.Sequence(in.Objects, 200, rng)
	p := core.Approximate(in, core.Options{})
	sc := staticCost(in, p, seq, len(seq)) // one epoch spanning the trace

	sim, err := netsim.New(in, p)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.RunSequence(seq)
	if math.Abs(st.TransmissionCost-sc.Transmission) > 1e-6*math.Max(1, sc.Transmission) {
		t.Fatalf("metered transmission %.9f != analytic %.9f", st.TransmissionCost, sc.Transmission)
	}
}

// TestTraceRoundTrip: WriteTrace then ReadTrace reproduces the sequence.
func TestTraceRoundTrip(t *testing.T) {
	in := testInstance(t, 3, 3)
	rng := rand.New(rand.NewSource(1))
	seq := workload.Sequence(in.Objects, 250, rng)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in, seq); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()), in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seq) {
		t.Fatalf("trace round trip diverged: %d vs %d events", len(got), len(seq))
	}
	// Comments, blank lines, and counts.
	extra := "# a comment\n\n" + `{"obj":"` + in.Objects[0].Name + `","node":1,"count":3}` + "\n"
	got, err = ReadTrace(bytes.NewReader([]byte(extra)), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Obj != 0 || got[0].V != 1 || got[0].Write {
		t.Fatalf("count expansion wrong: %+v", got)
	}
	if _, err := ReadTrace(bytes.NewReader([]byte(`{"obj":"nope","node":0}`)), in); err == nil {
		t.Fatal("unknown object accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte(`{"obj":"`+in.Objects[0].Name+`","node":999}`)), in); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestEWMATracksDrift: after demand flips to a new regime, the EWMA
// estimator's rates must approach the new regime and the engine must
// move copies toward it.
func TestEWMATracksDrift(t *testing.T) {
	in := testInstance(t, 17, 1)
	n := in.N()
	// Regime A: all reads at node 0; regime B: all reads at the far half.
	mk := func(v int) []workload.Request {
		seq := make([]workload.Request, 64)
		for i := range seq {
			seq[i] = workload.Request{Obj: 0, V: v}
		}
		return seq
	}
	cfg := Config{Epoch: 64, Alpha: 0.5, Horizon: 64, MigrationFactor: -1}
	eng := New(in, cfg)
	for pass := 0; pass < 3; pass++ {
		for _, r := range mk(0) {
			if _, err := eng.Observe(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !eng.est.WindowFull() {
		t.Fatal("EWMA window not considered full after 3 epochs at alpha 0.5")
	}
	for pass := 0; pass < 6; pass++ {
		for _, r := range mk(n - 1) {
			if _, err := eng.Observe(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	rate := eng.est.ReadRate(0)
	if rate[n-1] < 0.9 || rate[0] > 0.1 {
		t.Fatalf("EWMA did not track drift: rate[0]=%v rate[n-1]=%v", rate[0], rate[n-1])
	}
	p := eng.Placement()
	found := false
	for _, c := range p.Copies[0] {
		if c == n-1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("engine did not move a copy to the new hotspot: %v", p.Copies[0])
	}
}

// TestStatsNormalisation: a copy held throughout pays exactly the static
// storage fee under the pro-rata accounting.
func TestStatsNormalisation(t *testing.T) {
	in := testInstance(t, 31, 1)
	cfg := Config{Epoch: 50, Window: 2}
	eng := New(in, cfg)
	seq := make([]workload.Request, 100)
	for i := range seq {
		seq[i] = workload.Request{Obj: 0, V: 3}
	}
	for _, r := range seq {
		if _, err := eng.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Events != 100 || st.Epochs != 2 {
		t.Fatalf("stats events/epochs wrong: %+v", st)
	}
	// All events at node 3; the object materialises there at event 1 and
	// the first epoch close can only keep it (single requester). Whatever
	// the copy set is per step, storage must be the time-average of the
	// held fees — recompute independently and compare.
	if st.Storage <= 0 {
		t.Fatalf("no storage rent accrued: %+v", st)
	}
	if st.Transmission != 0 {
		t.Fatalf("all requests local, transmission should be 0, got %v", st.Transmission)
	}
}
