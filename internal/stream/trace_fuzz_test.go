package stream

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"netplace/internal/core"
	"netplace/internal/graph"
)

// fuzzInstance returns a small fixed instance shared by the fuzz targets:
// a 6-node path with one named and one unnamed object (so both wire-name
// forms resolve).
var fuzzInstance = sync.OnceValue(func() *core.Instance {
	const n = 6
	g := graph.New(n)
	for v := 0; v < n-1; v++ {
		g.AddEdge(v, v+1, 1)
	}
	storage := make([]float64, n)
	reads := func(v int) []int64 {
		r := make([]int64, n)
		r[v] = 4
		return r
	}
	for v := range storage {
		storage[v] = 2
	}
	objs := []core.Object{
		{Name: "obj", Reads: reads(0), Writes: make([]int64, n)},
		{Reads: reads(n - 1), Writes: make([]int64, n)}, // wire name object-1
	}
	return core.MustInstance(g, storage, objs)
})

// boundedCounts reports whether every parseable event line in data keeps
// its expansion count small. The decoders expand Count into that many
// events, so the fuzz harness skips inputs that would legitimately
// allocate huge sequences — that is capacity, not a parsing bug.
func boundedCounts(data []byte) bool {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if ev, err := decodeEventLine(text); err == nil && ev.Count > 1<<16 {
			return false
		}
	}
	return sc.Err() == nil
}

// addTraceSeeds registers the shared seed inputs for both decoder fuzz
// targets; the checked-in corpora under testdata/fuzz extend them.
func addTraceSeeds(f *testing.F) {
	seeds := []string{
		"",
		"{\"obj\":\"obj\",\"node\":1}\n",
		"{\"obj\":\"obj\",\"node\":1}\n{\"obj\":\"object-1\",\"node\":5,\"write\":true}\n",
		"{\"obj\":\"obj\",\"node\":2,\"count\":3}\n",
		"# comment\n\n{\"obj\":\"obj\",\"node\":0}\n",
		"{\"obj\":\"obj\",\"node\":1}\n{\"obj\":\"obj\",\"nod",         // torn tail
		"{\"obj\":\"obj\",\"node\":1}\n{\"obj\":\"obj\",\"node\":1}\n", // duplicated line
		"{\"obj\":\"nope\",\"node\":0}\n",
		"{\"obj\":\"obj\",\"node\":99}\n",
		"{\"obj\":\"obj\",\"node\":1,\"bogus\":true}\n",
		"{\"obj\":\"obj\",\"node\":1} trailing\n",
		"{garbage\n",
		"null\n",
		"[]\n",
		"{\"obj\":\"obj\",\"node\":-1}\n",
		"{\"obj\":\"obj\",\"node\":1,\"count\":-5}\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
}

// FuzzReadTrace: arbitrary bytes must never panic the trace reader, and
// every accepted trace must survive a write/read round trip.
func FuzzReadTrace(f *testing.F) {
	addTraceSeeds(f)
	in := fuzzInstance()
	f.Fuzz(func(t *testing.T, data []byte) {
		if !boundedCounts(data) {
			t.Skip("unbounded count expansion")
		}
		seq, err := ReadTrace(bytes.NewReader(data), in)
		if err != nil {
			return
		}
		for _, r := range seq {
			if r.Obj < 0 || r.Obj >= len(in.Objects) || r.V < 0 || r.V >= in.N() {
				t.Fatalf("accepted out-of-range event %+v", r)
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, in, seq); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		back, err := ReadTrace(bytes.NewReader(buf.Bytes()), in)
		if err != nil {
			t.Fatalf("re-encoded trace failed to parse: %v", err)
		}
		if !reflect.DeepEqual(seq, back) {
			t.Fatalf("trace round trip diverged: %d vs %d events", len(seq), len(back))
		}
	})
}

// FuzzDecodeWAL: arbitrary bytes must never panic the WAL decoder or
// yield an error (content problems end the prefix instead), the valid
// prefix must be bounded by the input, and re-decoding exactly that
// prefix must reproduce the result — the property WAL truncation after a
// torn write relies on.
func FuzzDecodeWAL(f *testing.F) {
	addTraceSeeds(f)
	in := fuzzInstance()
	f.Fuzz(func(t *testing.T, data []byte) {
		if !boundedCounts(data) {
			t.Skip("unbounded count expansion")
		}
		seq, valid, err := DecodeWAL(bytes.NewReader(data), in)
		if err != nil {
			t.Fatalf("in-memory decode returned I/O error: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(data))
		}
		if valid > 0 && data[valid-1] != '\n' {
			t.Fatalf("valid prefix of %d bytes not newline-terminated", valid)
		}
		for _, r := range seq {
			if r.Obj < 0 || r.Obj >= len(in.Objects) || r.V < 0 || r.V >= in.N() {
				t.Fatalf("decoded out-of-range event %+v", r)
			}
		}
		seq2, valid2, err := DecodeWAL(bytes.NewReader(data[:valid]), in)
		if err != nil {
			t.Fatal(err)
		}
		if valid2 != valid || !reflect.DeepEqual(seq, seq2) {
			t.Fatalf("prefix re-decode diverged: %d/%d bytes, %d/%d events",
				valid2, valid, len(seq2), len(seq))
		}
		// The prefix must also be a valid strict trace: DecodeWAL accepts
		// exactly what ReadTrace would, up to the tear.
		seq3, err := ReadTrace(bytes.NewReader(data[:valid]), in)
		if err != nil {
			t.Fatalf("valid WAL prefix rejected by ReadTrace: %v", err)
		}
		if !reflect.DeepEqual(seq, seq3) {
			t.Fatalf("WAL prefix decode disagrees with ReadTrace: %d vs %d events", len(seq), len(seq3))
		}
	})
}

// FuzzDecodeWALBatches: the batch-atomic decoder shares DecodeWAL's
// robustness contract — no panics, no content errors, bounded
// newline-terminated prefix — plus the commit invariant: the committed
// prefix alone re-decodes to the same events and sequence watermark.
func FuzzDecodeWALBatches(f *testing.F) {
	addTraceSeeds(f)
	f.Add([]byte("{\"obj\":\"o0\",\"node\":1}\n{\"seq\":1,\"n\":1}\n"))
	f.Add([]byte("{\"obj\":\"o0\",\"node\":1,\"count\":2}\n{\"seq\":3,\"n\":2}\n{\"seq\":4,\"n\":0}\n"))
	in := fuzzInstance()
	f.Fuzz(func(t *testing.T, data []byte) {
		if !boundedCounts(data) {
			t.Skip("unbounded count expansion")
		}
		seq, lastSeq, valid, err := DecodeWALBatches(bytes.NewReader(data), in)
		if err != nil {
			t.Fatalf("in-memory decode returned I/O error: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(data))
		}
		if valid > 0 && data[valid-1] != '\n' {
			t.Fatalf("valid prefix of %d bytes not newline-terminated", valid)
		}
		for _, r := range seq {
			if r.Obj < 0 || r.Obj >= len(in.Objects) || r.V < 0 || r.V >= in.N() {
				t.Fatalf("decoded out-of-range event %+v", r)
			}
		}
		seq2, lastSeq2, valid2, err := DecodeWALBatches(bytes.NewReader(data[:valid]), in)
		if err != nil {
			t.Fatal(err)
		}
		if valid2 != valid || lastSeq2 != lastSeq || !reflect.DeepEqual(seq, seq2) {
			t.Fatalf("prefix re-decode diverged: %d/%d bytes, seq %d/%d, %d/%d events",
				valid2, valid, lastSeq2, lastSeq, len(seq2), len(seq))
		}
	})
}
