package stream

import (
	"fmt"
	"slices"

	"netplace/internal/core"
)

// EngineStateVersion is the format version stamped into every captured
// EngineState; Restore rejects states written by an incompatible version.
const EngineStateVersion = 1

// ObjectState is one object's live placement bookkeeping inside an
// EngineState: the current copy set, the quantised estimate vector of the
// last completed re-solve, and the first-touch seeding flag.
type ObjectState struct {
	// Copies is the current copy set, sorted ascending; null when the
	// object has never been seeded or solved.
	Copies []int `json:"copies"`
	// Solved is the quantised fr+fw estimate vector of the last re-solve
	// (null before the first), SolvedW the matching write total.
	Solved  []int64 `json:"solved"`
	SolvedW int64   `json:"solved_w"`
	// Seeded reports whether the object has materialised (first-touch or
	// first solve) and therefore accrues storage rent.
	Seeded bool `json:"seeded"`
}

// EstimatorState is the frequency estimator's complete serialisable
// state. Exactly one of the ring (sliding window) and EWMA field groups
// is populated, matching the configuration the estimator ran under.
type EstimatorState struct {
	// Epochs is the number of closed epochs.
	Epochs int `json:"epochs"`
	// CurR / CurW are the open epoch's per-object, per-node counts.
	CurR [][]int64 `json:"cur_r"`
	CurW [][]int64 `json:"cur_w"`
	// Sliding-window mode: the ring of closed-epoch count matrices with
	// their event totals, the ring cursor, and the maintained window sums.
	RingR      [][][]int64 `json:"ring_r,omitempty"`
	RingW      [][][]int64 `json:"ring_w,omitempty"`
	RingEvents []int       `json:"ring_events,omitempty"`
	RingPos    int         `json:"ring_pos,omitempty"`
	RingLen    int         `json:"ring_len,omitempty"`
	SumR       [][]int64   `json:"sum_r,omitempty"`
	SumW       [][]int64   `json:"sum_w,omitempty"`
	SumEvents  int         `json:"sum_events,omitempty"`
	// EWMA mode: the exponential count averages, the average epoch size,
	// and the first-epoch seeding flag.
	EwmaR      [][]float64 `json:"ewma_r,omitempty"`
	EwmaW      [][]float64 `json:"ewma_w,omitempty"`
	EwmaEvents float64     `json:"ewma_events,omitempty"`
	EwmaInit   bool        `json:"ewma_init,omitempty"`
	// RateR / RateW are the exposed per-event rates as of the last epoch
	// close. They are derivable from the mode state, but carrying the
	// exact floats keeps a restored engine bit-identical without
	// re-deriving.
	RateR [][]float64 `json:"rate_r"`
	RateW [][]float64 `json:"rate_w"`
}

// EngineState is a complete, JSON-serialisable snapshot of a streaming
// Engine, capturable at any point — mid-epoch included. Restoring it over
// the same instance and configuration yields an engine whose every future
// output (placements, accounting, reports) is byte-identical to the
// original's: all floats survive the JSON round trip exactly (Go emits
// the shortest representation that parses back to the same bits), and the
// engine itself is deterministic. It is the snapshot half of the
// service's session durability (snapshot + event WAL).
type EngineState struct {
	// Version is EngineStateVersion at capture time.
	Version int `json:"version"`
	// Objects carries per-object placement and estimate bookkeeping.
	Objects []ObjectState `json:"objects"`
	// Stats is the run accounting so far (storage un-normalised, exactly
	// as accrued).
	Stats Stats `json:"stats"`
	// Report is the open epoch's accumulating report and Fill its event
	// count so far.
	Report EpochReport `json:"report"`
	Fill   int         `json:"fill"`
	// FeePerStep is the storage fee the live copy sets accrue per
	// event-step. Derivable from Objects, but the engine maintains it
	// incrementally, so the exact float is carried to preserve
	// bit-identical future accrual.
	FeePerStep float64 `json:"fee_per_step"`
	// Estimator is the frequency estimator's state.
	Estimator EstimatorState `json:"estimator"`
}

// State captures the engine's complete current state as a deep copy: the
// engine may keep observing events without invalidating the snapshot.
func (e *Engine) State() *EngineState {
	st := &EngineState{
		Version:    EngineStateVersion,
		Objects:    make([]ObjectState, len(e.objs)),
		Stats:      e.stats,
		Report:     e.report,
		Fill:       e.fill,
		FeePerStep: e.feePerStep,
	}
	for i := range e.objs {
		o := &e.objs[i]
		st.Objects[i] = ObjectState{
			Copies:  slices.Clone(o.copies),
			Solved:  slices.Clone(o.solved),
			SolvedW: o.solvedW,
			Seeded:  o.seeded,
		}
	}
	es := e.est
	st.Estimator = EstimatorState{
		Epochs: es.epochs,
		CurR:   clone2i(es.curR),
		CurW:   clone2i(es.curW),
		RateR:  clone2f(es.rateR),
		RateW:  clone2f(es.rateW),
	}
	if es.alpha > 0 {
		st.Estimator.EwmaR = clone2f(es.ewmaR)
		st.Estimator.EwmaW = clone2f(es.ewmaW)
		st.Estimator.EwmaEvents = es.ewmaEvents
		st.Estimator.EwmaInit = es.ewmaInit
	} else {
		st.Estimator.RingR = clone3i(es.ringR)
		st.Estimator.RingW = clone3i(es.ringW)
		st.Estimator.RingEvents = slices.Clone(es.ringEvents)
		st.Estimator.RingPos = es.ringPos
		st.Estimator.RingLen = es.ringLen
		st.Estimator.SumR = clone2i(es.sumR)
		st.Estimator.SumW = clone2i(es.sumW)
		st.Estimator.SumEvents = es.sumEvents
	}
	return st
}

// Restore builds an engine over in under cfg and installs a previously
// captured state, deep-copied so the caller's EngineState stays intact.
// The instance and configuration must match the ones the state was
// captured under (Restore validates shapes, not provenance): feeding the
// restored engine the events the original saw after the capture
// reproduces the original's placements and accounting byte for byte.
func Restore(in *core.Instance, cfg Config, st *EngineState) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("stream: restore: nil state")
	}
	if st.Version != EngineStateVersion {
		return nil, fmt.Errorf("stream: restore: state version %d, want %d", st.Version, EngineStateVersion)
	}
	e := New(in, cfg)
	n := in.N()
	if len(st.Objects) != len(e.objs) {
		return nil, fmt.Errorf("stream: restore: state has %d objects, instance %d", len(st.Objects), len(e.objs))
	}
	if st.Fill < 0 || st.Fill >= e.cfg.Epoch {
		return nil, fmt.Errorf("stream: restore: fill %d outside [0,%d)", st.Fill, e.cfg.Epoch)
	}
	for i := range st.Objects {
		o := &st.Objects[i]
		if !slices.IsSorted(o.Copies) {
			return nil, fmt.Errorf("stream: restore: object %d copy set not sorted", i)
		}
		for _, c := range o.Copies {
			if c < 0 || c >= n {
				return nil, fmt.Errorf("stream: restore: object %d copy node %d out of range [0,%d)", i, c, n)
			}
		}
		if o.Solved != nil && len(o.Solved) != n {
			return nil, fmt.Errorf("stream: restore: object %d solved vector length %d, want %d", i, len(o.Solved), n)
		}
		e.objs[i] = objState{
			copies:  slices.Clone(o.Copies),
			solved:  slices.Clone(o.Solved),
			solvedW: o.SolvedW,
			seeded:  o.Seeded,
		}
	}
	e.stats = st.Stats
	e.report = st.Report
	e.fill = st.Fill
	e.feePerStep = st.FeePerStep
	if err := restoreEstimator(e.est, &st.Estimator, len(e.objs), n); err != nil {
		return nil, err
	}
	return e, nil
}

// restoreEstimator copies serialised estimator state into a freshly built
// estimator, validating every matrix shape against (nobj, n) and the
// estimator's own mode and window.
func restoreEstimator(es *Estimator, st *EstimatorState, nobj, n int) error {
	if st.Epochs < 0 {
		return fmt.Errorf("stream: restore: negative epoch count %d", st.Epochs)
	}
	es.epochs = st.Epochs
	if err := copy2i(es.curR, st.CurR, nobj, n, "cur_r"); err != nil {
		return err
	}
	if err := copy2i(es.curW, st.CurW, nobj, n, "cur_w"); err != nil {
		return err
	}
	if err := copy2f(es.rateR, st.RateR, nobj, n, "rate_r"); err != nil {
		return err
	}
	if err := copy2f(es.rateW, st.RateW, nobj, n, "rate_w"); err != nil {
		return err
	}
	if es.alpha > 0 {
		if st.RingR != nil || st.SumR != nil {
			return fmt.Errorf("stream: restore: window state in an EWMA session")
		}
		if err := copy2f(es.ewmaR, st.EwmaR, nobj, n, "ewma_r"); err != nil {
			return err
		}
		if err := copy2f(es.ewmaW, st.EwmaW, nobj, n, "ewma_w"); err != nil {
			return err
		}
		es.ewmaEvents = st.EwmaEvents
		es.ewmaInit = st.EwmaInit
		return nil
	}
	if st.EwmaR != nil || st.EwmaW != nil {
		return fmt.Errorf("stream: restore: EWMA state in a sliding-window session")
	}
	if len(st.RingR) != es.window || len(st.RingW) != es.window || len(st.RingEvents) != es.window {
		return fmt.Errorf("stream: restore: ring of %d/%d/%d epochs, window %d",
			len(st.RingR), len(st.RingW), len(st.RingEvents), es.window)
	}
	if st.RingPos < 0 || st.RingPos >= es.window || st.RingLen < 0 || st.RingLen > es.window {
		return fmt.Errorf("stream: restore: ring cursor %d/%d outside window %d", st.RingPos, st.RingLen, es.window)
	}
	for k := 0; k < es.window; k++ {
		if err := copy2i(es.ringR[k], st.RingR[k], nobj, n, fmt.Sprintf("ring_r[%d]", k)); err != nil {
			return err
		}
		if err := copy2i(es.ringW[k], st.RingW[k], nobj, n, fmt.Sprintf("ring_w[%d]", k)); err != nil {
			return err
		}
	}
	copy(es.ringEvents, st.RingEvents)
	es.ringPos = st.RingPos
	es.ringLen = st.RingLen
	if err := copy2i(es.sumR, st.SumR, nobj, n, "sum_r"); err != nil {
		return err
	}
	if err := copy2i(es.sumW, st.SumW, nobj, n, "sum_w"); err != nil {
		return err
	}
	es.sumEvents = st.SumEvents
	return nil
}

// clone2i / clone2f / clone3i deep-copy the estimator's nested matrices.
func clone2i(m [][]int64) [][]int64 {
	if m == nil {
		return nil
	}
	out := make([][]int64, len(m))
	for i := range m {
		out[i] = slices.Clone(m[i])
	}
	return out
}

func clone2f(m [][]float64) [][]float64 {
	if m == nil {
		return nil
	}
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = slices.Clone(m[i])
	}
	return out
}

func clone3i(m [][][]int64) [][][]int64 {
	if m == nil {
		return nil
	}
	out := make([][][]int64, len(m))
	for i := range m {
		out[i] = clone2i(m[i])
	}
	return out
}

// copy2i / copy2f copy a serialised matrix into a pre-shaped destination,
// validating its dimensions.
func copy2i(dst [][]int64, src [][]int64, nobj, n int, name string) error {
	if len(src) != nobj {
		return fmt.Errorf("stream: restore: %s has %d objects, want %d", name, len(src), nobj)
	}
	for i := range src {
		if len(src[i]) != n {
			return fmt.Errorf("stream: restore: %s[%d] has %d nodes, want %d", name, i, len(src[i]), n)
		}
		copy(dst[i], src[i])
	}
	return nil
}

func copy2f(dst [][]float64, src [][]float64, nobj, n int, name string) error {
	if len(src) != nobj {
		return fmt.Errorf("stream: restore: %s has %d objects, want %d", name, len(src), nobj)
	}
	for i := range src {
		if len(src[i]) != n {
			return fmt.Errorf("stream: restore: %s[%d] has %d nodes, want %d", name, i, len(src[i]), n)
		}
		copy(dst[i], src[i])
	}
	return nil
}
