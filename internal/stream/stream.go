// Package stream implements a streaming adaptive placement engine — the
// missing middle ground between the paper's static algorithm (frequencies
// known up front) and the counter-based dynamic strategy of
// internal/online (no frequency model at all).
//
// An Engine consumes a live request trace one event at a time, maintains
// sliding-window or EWMA frequency estimates per object and node, and at
// every epoch boundary re-solves the placement from the estimates through
// the same incremental demand-patch machinery the service's what-if path
// uses (core.Instance.WithObjects + core.ApproximateObject): only objects
// whose quantised estimates changed since the last solve are re-placed,
// the rest keep their copy sets verbatim. A hysteresis rule prices every
// proposed move — a copy materialising on a new node pays a migration
// transfer from the nearest existing copy, at metric distance — and only
// adopts moves whose estimated per-epoch saving pays that price back
// within a configurable number of epochs.
//
// Costs are accounted exactly as in the paper's model, with the same
// pro-rata adaptation internal/online uses: each request pays its size
// times the distance to the nearest current copy, a write additionally
// pays the metric-MST multicast over the current copies, storage is
// rented per event-step (a copy held for the whole trace pays exactly the
// static fee), and migrations pay size times transfer distance. This
// makes static-clairvoyant, counter-online, and adaptive-streaming
// strategies directly comparable on the same trace — see Compare and
// experiment E18.
//
// Scaling note: the estimator keeps dense per-object, per-node count
// matrices (O(objects × nodes × window)), sized for the service's
// resident-instance shape (thousands of nodes), not for the 50k+-node
// networks the lazy oracle solves one-shot. A sparse estimator keyed by
// active (object, node) pairs is the natural extension when sessions
// over such networks are needed.
package stream

import (
	"fmt"
	"math"
	"slices"

	"netplace/internal/core"
	"netplace/internal/metric"
	"netplace/internal/workload"
)

// Config tunes a streaming engine. The zero value selects the documented
// defaults (see DefaultConfig).
type Config struct {
	// Epoch is the number of events per epoch: estimates refresh and
	// re-placement runs once per Epoch observed events. 0 selects 256.
	Epoch int
	// Window is the sliding-window width in epochs over which frequencies
	// are estimated. 0 selects 4. Ignored when Alpha > 0.
	Window int
	// Alpha, when positive, switches the estimator from a sliding window
	// to an exponentially weighted moving average with this per-epoch
	// weight (higher = faster forgetting). The EWMA's effective window is
	// roughly 1/Alpha epochs.
	Alpha float64
	// Horizon is the number of events one storage fee amortises over when
	// estimates are quantised into solver frequencies: the solver sees
	// round(rate * Horizon) requests against the unscaled storage fees.
	// 0 selects the estimator's window span (Window*Epoch events, or
	// Epoch/Alpha for the EWMA).
	Horizon int
	// Payback is the number of epochs the estimated per-epoch saving of a
	// proposed move must need to pay back its migration cost before the
	// move is adopted. 0 selects 2; negative disables the saving test
	// (any strictly improving move is taken).
	Payback float64
	// MigrationFactor scales the migration price used in the hysteresis
	// decision (the booked migration cost is always the unscaled
	// transfer). 0 selects 1; negative disables hysteresis entirely —
	// every re-solved placement is adopted as-is.
	MigrationFactor float64
	// Solve configures the per-object re-solve (see core.Options).
	// Epoch closes re-solve one object at a time, so object-level
	// Workers cannot help them; set Solve.Parallel (negative for all
	// cores) to shard each re-solve's radius scans instead — output is
	// byte-identical to serial.
	Solve core.Options
	// SolveGate, when non-nil, wraps each epoch close's re-solve and
	// re-placement work. The placement service installs the engine's
	// worker-pool semaphore here so session re-solves compete with
	// ordinary solves for the configured slots instead of bypassing
	// them. A gate may decline to call solve (e.g. the waiting request
	// was cancelled): the epoch then closes without re-placement, and
	// the next close re-solves as usual — the unchanged-estimate check
	// compares against the last *completed* solve.
	SolveGate func(solve func())
}

// Defaults applied by New for zero Config fields.
const (
	DefaultEpoch   = 256
	DefaultWindow  = 4
	DefaultPayback = 2.0
)

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{Epoch: DefaultEpoch, Window: DefaultWindow, Payback: DefaultPayback, MigrationFactor: 1}
}

// withDefaults resolves zero fields to their documented defaults and
// clamps Alpha into [0, 1] (an EWMA weight above 1 extrapolates into
// oscillation; the service additionally rejects such configs up front).
func (c Config) withDefaults() Config {
	if c.Epoch <= 0 {
		c.Epoch = DefaultEpoch
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Alpha < 0 {
		c.Alpha = 0
	}
	if c.Alpha > 1 {
		c.Alpha = 1
	}
	if c.Payback == 0 {
		c.Payback = DefaultPayback
	}
	if c.MigrationFactor == 0 {
		c.MigrationFactor = 1
	}
	// maxHorizon keeps the derived horizon well inside int range on any
	// platform (a denormally small alpha, or a huge Window×Epoch product,
	// must not wrap to a non-positive horizon and zero out every
	// quantised estimate).
	const maxHorizon = math.MaxInt32
	if c.Horizon <= 0 {
		if c.Alpha > 0 {
			h := float64(c.Epoch) / c.Alpha
			if h > maxHorizon {
				h = maxHorizon
			}
			c.Horizon = int(h)
		} else if c.Window > maxHorizon/c.Epoch {
			c.Horizon = maxHorizon
		} else {
			c.Horizon = c.Window * c.Epoch
		}
	}
	if c.Horizon > maxHorizon {
		c.Horizon = maxHorizon
	}
	return c
}

// Stats aggregates an adaptive run. All costs follow the pro-rata
// accounting shared with internal/online: Total is directly comparable to
// online.Stats.Total and online.StaticCost on the same trace.
type Stats struct {
	Events       int     // events observed
	Epochs       int     // epochs closed
	Resolves     int     // objects re-solved at epoch boundaries
	Moves        int     // per-object placement changes adopted
	Rejected     int     // proposed changes rejected by hysteresis
	Transmission float64 // read/write access + multicast fees paid
	Storage      float64 // pro-rata storage rent over observed events
	Migration    float64 // copy-transfer fees paid at adopted moves
}

// Total returns transmission + storage + migration cost.
func (s Stats) Total() float64 { return s.Transmission + s.Storage + s.Migration }

// EpochReport describes one closed epoch: what the engine estimated,
// re-solved, and moved, and what the epoch cost. StorageFeeSteps is the
// un-normalised storage accrual (fee × event-steps held); divide by the
// final trace length for the pro-rata rent of this epoch.
type EpochReport struct {
	Epoch           int     // 1-based epoch number
	Events          int     // events in this epoch (== Config.Epoch except a final Flush)
	Resolved        int     // objects re-solved (estimates changed since last solve)
	Moved           int     // objects whose copy set changed
	Rejected        int     // objects whose proposed change hysteresis rejected
	Transmission    float64 // access + multicast fees paid during the epoch
	StorageFeeSteps float64 // storage fee × event-steps accrued during the epoch
	Migration       float64 // transfer fees paid at this boundary's moves
	EstimatedSaving float64 // estimated per-horizon saving of the adopted moves
}

// objState tracks one object's live copy set and estimate bookkeeping.
type objState struct {
	copies  []int   // current copy set (sorted); nil until first touch
	solved  []int64 // quantised fr+fw estimate vector of the last re-solve
	solvedW int64   // quantised write total of the last re-solve
	seeded  bool    // true once the object materialised at its first requester
}

// Engine is a streaming adaptive placement session over one instance. Not
// safe for concurrent use; callers serialise access (the service wraps it
// in a per-session mutex).
type Engine struct {
	in     *core.Instance
	oracle metric.Oracle // pinned at New: per-event accounting must not take the instance mutex
	cfg    Config
	est    *Estimator

	objs   []objState
	report EpochReport // accumulating current epoch
	stats  Stats
	fill   int // events in the current (open) epoch

	// feePerStep is the storage fee the live copy sets accrue per
	// event-step (Σ size·cs over all held copies), maintained at seeding
	// and at epoch closes so per-event accounting is O(1) in the number
	// of objects.
	feePerStep float64

	// Nearest-copy fast path: once a copy set outgrows the oracle's row
	// cache, per-copy point queries thrash — every miss recomputes a full
	// distance row, so a single event costs up to len(copies) Dijkstra
	// sweeps. Past rowBudget copies the engine walks outward from the
	// event node instead (nearScan) and stops at the first copy it meets,
	// paying only for the ball to the nearest replica. The callback is
	// pre-bound (scanFn over scanCopies/scanBest) so the per-event scan
	// does not allocate a closure.
	nearScan   metric.NearScanner
	rowBudget  int
	scanCopies []int
	scanBest   float64
	scanFn     func(u int, d float64) bool

	// scratch reused across epoch closes
	estObjects []core.Object
	quantBuf   []int64
}

// New assembles an engine over an instance. The instance's frequency
// tables are not consulted — only its network, storage fees, object names
// and sizes; the engine learns frequencies from the trace.
func New(in *core.Instance, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		in:     in,
		oracle: in.Metric(),
		cfg:    cfg,
		est:    NewEstimator(len(in.Objects), in.N(), cfg),
		objs:   make([]objState, len(in.Objects)),
	}
	// The scan path only beats point queries when the oracle both scans
	// truncated balls and bounds its row cache (copy sets within the
	// budget stay cached, so Dist hits are free there).
	e.rowBudget = math.MaxInt
	if ns, ok := e.oracle.(metric.NearScanner); ok {
		if b, ok := e.oracle.(interface{ Budget() int }); ok {
			e.nearScan = ns
			e.rowBudget = b.Budget()
		}
	}
	e.scanFn = func(u int, d float64) bool {
		if _, ok := slices.BinarySearch(e.scanCopies, u); ok {
			e.scanBest = d
			return false
		}
		return true
	}
	e.estObjects = make([]core.Object, len(in.Objects))
	for i := range e.estObjects {
		e.estObjects[i] = core.Object{
			Name:   in.Objects[i].Name,
			Size:   in.Objects[i].Size,
			Reads:  make([]int64, in.N()),
			Writes: make([]int64, in.N()),
		}
	}
	e.quantBuf = make([]int64, in.N())
	e.report = EpochReport{Epoch: 1}
	return e
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats snapshots the run so far. Storage is normalised pro rata over the
// events observed so far, so Total is comparable to online accounting on
// the same prefix; the open epoch's transmission and storage accruals are
// included.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Transmission += e.report.Transmission
	s.Storage += e.report.StorageFeeSteps
	return s.normalise()
}

// Placement returns the current copy sets (shared slices; do not mutate).
// Objects never requested and never solved hold nil until the first epoch
// closes.
func (e *Engine) Placement() core.Placement {
	p := core.Placement{Copies: make([][]int, len(e.objs))}
	for i := range e.objs {
		p.Copies[i] = e.objs[i].copies
	}
	return p
}

// Observe feeds one event. It returns a non-nil report when the event
// completed an epoch (estimates refreshed, re-placement ran).
func (e *Engine) Observe(r workload.Request) (*EpochReport, error) {
	if r.Obj < 0 || r.Obj >= len(e.objs) {
		return nil, fmt.Errorf("stream: event object %d out of range [0,%d)", r.Obj, len(e.objs))
	}
	if r.V < 0 || r.V >= e.in.N() {
		return nil, fmt.Errorf("stream: event node %d out of range [0,%d)", r.V, e.in.N())
	}
	o := e.oracle
	st := &e.objs[r.Obj]
	size := e.in.Objects[r.Obj].Scale()
	if !st.seeded {
		// Information-free start, as in internal/online: the object
		// materialises at its first requester.
		st.copies = []int{r.V}
		st.seeded = true
		e.feePerStep += size * e.in.Storage[r.V]
	}
	// Storage rent accrues per event-step for every live replica of every
	// seeded object (normalised by the trace length in Stats).
	e.report.StorageFeeSteps += e.feePerStep
	// Access: nearest current copy. Copy sets within the oracle's row
	// budget use point queries (steady state: every Dist hits a cached
	// copy row); larger sets use the truncated outward scan — the metric
	// is symmetric, so the first copy met in nondecreasing distance from
	// the event node is the nearest one.
	best := math.Inf(1)
	if e.nearScan != nil && len(st.copies) > e.rowBudget {
		e.scanCopies, e.scanBest = st.copies, best
		e.nearScan.ScanNear(r.V, e.scanFn)
		best = e.scanBest
	} else {
		for _, c := range st.copies {
			if d := o.Dist(c, r.V); d < best {
				best = d
			}
		}
	}
	e.report.Transmission += size * best
	if r.Write && len(st.copies) > 1 {
		// The multicast price honours the session's parallel knob: a copy
		// set past the row budget rebuilds its rows, batched when allowed.
		e.report.Transmission += size * metric.PairwiseMSTParallel(o, st.copies, e.cfg.Solve.Parallel)
	}
	e.est.Observe(r)
	e.stats.Events++
	e.fill++
	if e.fill >= e.cfg.Epoch {
		return e.closeEpoch(), nil
	}
	return nil, nil
}

// Flush closes the current epoch early (estimates refresh over the
// partial epoch, re-placement runs). It returns nil when the epoch is
// empty.
func (e *Engine) Flush() *EpochReport {
	if e.fill == 0 {
		return nil
	}
	return e.closeEpoch()
}

// closeEpoch rolls the estimator, re-solves changed objects, applies the
// hysteresis rule, and resets the per-epoch accumulators.
func (e *Engine) closeEpoch() *EpochReport {
	e.est.CloseEpoch(e.fill)
	rep := e.report
	rep.Events = e.fill

	// Quantise estimates into solver frequency tables (the demand patch).
	for i := range e.estObjects {
		obj := &e.estObjects[i]
		core.QuantiseDemand(obj.Reads, e.est.ReadRate(i), float64(e.cfg.Horizon))
		core.QuantiseDemand(obj.Writes, e.est.WriteRate(i), float64(e.cfg.Horizon))
	}
	// Re-solve exactly the objects whose quantised estimates changed since
	// their last solve — the same object-at-a-time incremental path the
	// service's what-if scenarios use.
	scen, err := e.in.WithObjects(e.estObjects)
	if err != nil {
		// Quantised estimates are structurally valid by construction
		// (non-negative, right length); a failure here is a bug.
		panic(fmt.Sprintf("stream: estimate instance rejected: %v", err))
	}
	o := e.oracle
	replace := func() {
		for i := range e.objs {
			st := &e.objs[i]
			obj := &scen.Objects[i]
			req := e.quantBuf
			for v := range req {
				req[v] = obj.Reads[v] + obj.Writes[v]
			}
			w := obj.TotalWrites()
			if st.solved != nil && w == st.solvedW && slices.Equal(req, st.solved) {
				continue // estimate unchanged: placement kept verbatim
			}
			cand := core.ApproximateObject(scen, obj, e.cfg.Solve)
			rep.Resolved++
			e.stats.Resolves++
			if st.solved == nil {
				st.solved = make([]int64, len(req))
			}
			copy(st.solved, req)
			st.solvedW = w

			if slices.Equal(cand, st.copies) {
				continue
			}
			if st.copies == nil {
				// Initial placement: nothing to migrate from, always adopted.
				st.copies = cand
				st.seeded = true
				rep.Moved++
				e.stats.Moves++
				continue
			}
			// Hysteresis: estimated saving per epoch must pay the migration
			// transfer back within Payback epochs.
			curCost := scen.ObjectCostParallel(obj, st.copies, e.cfg.Solve.Parallel).Total()
			candCost := scen.ObjectCostParallel(obj, cand, e.cfg.Solve.Parallel).Total()
			saving := curCost - candCost // per Horizon events
			transfer := e.migrationCost(o, i, st.copies, cand)
			if e.cfg.MigrationFactor >= 0 {
				rejected := false
				if e.cfg.Payback < 0 {
					rejected = saving <= 0 // take any strictly improving move
				} else {
					perEpoch := saving * float64(e.cfg.Epoch) / float64(e.cfg.Horizon)
					rejected = perEpoch*e.cfg.Payback <= e.cfg.MigrationFactor*transfer
				}
				if rejected {
					rep.Rejected++
					e.stats.Rejected++
					continue
				}
			}
			st.copies = cand
			rep.Moved++
			e.stats.Moves++
			rep.Migration += transfer
			rep.EstimatedSaving += saving
			e.stats.Migration += transfer
		}
	}
	if e.cfg.SolveGate != nil {
		e.cfg.SolveGate(replace)
	} else {
		replace()
	}

	e.stats.Transmission += rep.Transmission
	e.stats.Storage += rep.StorageFeeSteps // normalised lazily in Stats()
	e.stats.Epochs++
	e.fill = 0
	e.report = EpochReport{Epoch: rep.Epoch + 1}
	// Re-derive the per-step storage fee from the (possibly moved) copy
	// sets; between closes it only changes at first-touch seeding.
	e.feePerStep = 0
	for i := range e.objs {
		st := &e.objs[i]
		if !st.seeded {
			continue
		}
		size := e.in.Objects[i].Scale()
		for _, v := range st.copies {
			e.feePerStep += size * e.in.Storage[v]
		}
	}
	return &rep
}

// migrationCost prices materialising the copies of next that cur lacks:
// each new node receives the object from its nearest current copy, paying
// size times the metric distance. Dropping copies is free.
func (e *Engine) migrationCost(o metric.Oracle, obj int, cur, next []int) float64 {
	size := e.in.Objects[obj].Scale()
	total := 0.0
	// Same regime split as the per-event accounting: a source set past
	// the row budget is priced by truncated scans from each new copy.
	scan := e.nearScan != nil && len(cur) > e.rowBudget
	for _, u := range next {
		if _, ok := slices.BinarySearch(cur, u); ok {
			continue
		}
		best := math.Inf(1)
		if scan {
			e.scanCopies, e.scanBest = cur, best
			e.nearScan.ScanNear(u, e.scanFn)
			best = e.scanBest
		} else {
			for _, c := range cur {
				if d := o.Dist(c, u); d < best {
					best = d
				}
			}
		}
		if !math.IsInf(best, 1) {
			total += size * best
		}
	}
	return total
}

// normalise converts accrued storage fee-steps into pro-rata rent.
func (s Stats) normalise() Stats {
	if s.Events > 0 {
		s.Storage /= float64(s.Events)
	}
	return s
}
