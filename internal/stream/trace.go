package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/workload"
)

// EventJSON is one trace line in the JSONL wire format: object (by wire
// name — Object.Name, or object-<index> for unnamed objects), issuing
// node, and whether the request is a write. Count > 1 expands to that
// many identical consecutive events (Count 0 means 1).
type EventJSON struct {
	Obj   string `json:"obj"`
	Node  int    `json:"node"`
	Write bool   `json:"write,omitempty"`
	Count int    `json:"count,omitempty"`
}

// ObjectIndex maps an instance's wire object names (encode.ObjectName)
// to object indices — the resolution step shared by trace parsing and
// the service's session event ingestion.
func ObjectIndex(in *core.Instance) map[string]int {
	idx := make(map[string]int, len(in.Objects))
	for i := range in.Objects {
		idx[encode.ObjectName(&in.Objects[i], i)] = i
	}
	return idx
}

// ReadTrace parses a JSONL request trace against an instance, resolving
// object names and validating node ids. Blank lines and lines starting
// with '#' are skipped, so traces can carry comments.
func ReadTrace(r io.Reader, in *core.Instance) ([]workload.Request, error) {
	idx := ObjectIndex(in)
	var seq []workload.Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var ev EventJSON
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("stream: trace line %d: %w", line, err)
		}
		oi, ok := idx[ev.Obj]
		if !ok {
			return nil, fmt.Errorf("stream: trace line %d: unknown object %q", line, ev.Obj)
		}
		if ev.Node < 0 || ev.Node >= in.N() {
			return nil, fmt.Errorf("stream: trace line %d: node %d out of range [0,%d)", line, ev.Node, in.N())
		}
		count := ev.Count
		if count <= 0 {
			count = 1
		}
		for k := 0; k < count; k++ {
			seq = append(seq, workload.Request{Obj: oi, V: ev.Node, Write: ev.Write})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: reading trace: %w", err)
	}
	return seq, nil
}

// WriteTrace serialises a request sequence as JSONL, one event per line,
// using the instance's wire object names. The inverse of ReadTrace.
func WriteTrace(w io.Writer, in *core.Instance, seq []workload.Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range seq {
		if r.Obj < 0 || r.Obj >= len(in.Objects) {
			return fmt.Errorf("stream: event object %d out of range", r.Obj)
		}
		name := encode.ObjectName(&in.Objects[r.Obj], r.Obj)
		buf, err := json.Marshal(EventJSON{Obj: name, Node: r.V, Write: r.Write})
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(buf, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}
