package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/workload"
)

// EventJSON is one trace line in the JSONL wire format: object (by wire
// name — Object.Name, or object-<index> for unnamed objects), issuing
// node, and whether the request is a write. Count > 1 expands to that
// many identical consecutive events (Count 0 means 1).
type EventJSON struct {
	Obj   string `json:"obj"`
	Node  int    `json:"node"`
	Write bool   `json:"write,omitempty"`
	Count int    `json:"count,omitempty"`
}

// ObjectIndex maps an instance's wire object names (encode.ObjectName)
// to object indices — the resolution step shared by trace parsing and
// the service's session event ingestion.
func ObjectIndex(in *core.Instance) map[string]int {
	idx := make(map[string]int, len(in.Objects))
	for i := range in.Objects {
		idx[encode.ObjectName(&in.Objects[i], i)] = i
	}
	return idx
}

// decodeEventLine parses one trimmed trace/WAL line into its wire form,
// rejecting unknown fields and trailing garbage after the JSON object.
func decodeEventLine(text string) (EventJSON, error) {
	var ev EventJSON
	dec := json.NewDecoder(strings.NewReader(text))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		return EventJSON{}, err
	}
	if dec.More() {
		return EventJSON{}, fmt.Errorf("trailing data after event")
	}
	return ev, nil
}

// resolveEvent validates a wire event against an instance and returns the
// resolved request plus its expansion count (Count 0 means 1).
func resolveEvent(ev EventJSON, idx map[string]int, n int) (workload.Request, int, error) {
	oi, ok := idx[ev.Obj]
	if !ok {
		return workload.Request{}, 0, fmt.Errorf("unknown object %q", ev.Obj)
	}
	if ev.Node < 0 || ev.Node >= n {
		return workload.Request{}, 0, fmt.Errorf("node %d out of range [0,%d)", ev.Node, n)
	}
	count := ev.Count
	if count <= 0 {
		count = 1
	}
	return workload.Request{Obj: oi, V: ev.Node, Write: ev.Write}, count, nil
}

// ReadTrace parses a JSONL request trace against an instance, resolving
// object names and validating node ids. Blank lines and lines starting
// with '#' are skipped, so traces can carry comments.
func ReadTrace(r io.Reader, in *core.Instance) ([]workload.Request, error) {
	idx := ObjectIndex(in)
	var seq []workload.Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		ev, err := decodeEventLine(text)
		if err != nil {
			return nil, fmt.Errorf("stream: trace line %d: %w", line, err)
		}
		req, count, err := resolveEvent(ev, idx, in.N())
		if err != nil {
			return nil, fmt.Errorf("stream: trace line %d: %w", line, err)
		}
		for k := 0; k < count; k++ {
			seq = append(seq, req)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: reading trace: %w", err)
	}
	return seq, nil
}

// DecodeWAL parses a session write-ahead log — the same JSONL event
// format ReadTrace consumes — but tolerates a torn tail instead of
// failing on it: it returns the events of the longest valid prefix and
// that prefix's byte length. A prefix line is valid when it is
// newline-terminated and parses and validates cleanly (blank and '#'
// comment lines count as valid padding); the first torn, malformed, or
// unresolvable line ends the prefix, and everything from it on is
// excluded from both return values so the caller can truncate the file
// there and log the discarded tail. The error is non-nil only for I/O
// failures of r itself, never for content.
func DecodeWAL(r io.Reader, in *core.Instance) (seq []workload.Request, valid int64, err error) {
	idx := ObjectIndex(in)
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadString('\n')
		if rerr == io.EOF {
			// A final chunk without its newline is a torn write: exclude it.
			return seq, valid, nil
		}
		if rerr != nil {
			return seq, valid, fmt.Errorf("stream: reading wal: %w", rerr)
		}
		text := strings.TrimSpace(line)
		if text != "" && !strings.HasPrefix(text, "#") {
			ev, err := decodeEventLine(text)
			if err != nil {
				return seq, valid, nil
			}
			req, count, err := resolveEvent(ev, idx, in.N())
			if err != nil {
				return seq, valid, nil
			}
			for k := 0; k < count; k++ {
				seq = append(seq, req)
			}
		}
		valid += int64(len(line))
	}
}

// WALCommit is a batch-commit marker line in a version-2 session WAL:
// written after the N event lines of one ingest batch, carrying the
// client's idempotency sequence number (0 for unsequenced batches). Its
// field set is disjoint from EventJSON's required fields, so a marker
// can never parse as an event (decodeEventLine rejects unknown fields)
// and vice versa.
type WALCommit struct {
	Seq int64 `json:"seq"`
	N   int   `json:"n"`
}

// decodeCommitLine parses one trimmed WAL line as a batch-commit marker,
// rejecting unknown fields, trailing garbage, and negative counts.
func decodeCommitLine(text string) (WALCommit, error) {
	var cm WALCommit
	dec := json.NewDecoder(strings.NewReader(text))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cm); err != nil {
		return WALCommit{}, err
	}
	if dec.More() {
		return WALCommit{}, fmt.Errorf("trailing data after commit marker")
	}
	if cm.N < 0 {
		return WALCommit{}, fmt.Errorf("negative commit count %d", cm.N)
	}
	return cm, nil
}

// DecodeWALBatches parses a version-2 session WAL — event lines grouped
// into batches, each terminated by a WALCommit marker line — with
// batch-granular torn-tail tolerance: it returns the events of every
// complete batch (one whose marker is present, newline-terminated, and
// counts exactly the expanded events written before it), the highest
// committed sequence number, and the byte length of that committed
// prefix. Event lines after the last marker are an unacknowledged batch
// the client never got a response for; they are excluded so the caller
// can truncate the file at the commit boundary and let the client's
// retry (same sequence number) apply the batch exactly once. Blank and
// '#' comment lines are valid padding inside the committed prefix. The
// error is non-nil only for I/O failures of r itself, never for content.
func DecodeWALBatches(r io.Reader, in *core.Instance) (seq []workload.Request, lastSeq int64, valid int64, err error) {
	idx := ObjectIndex(in)
	br := bufio.NewReader(r)
	var pending []workload.Request
	var off int64
	for {
		line, rerr := br.ReadString('\n')
		if rerr == io.EOF {
			// A final chunk without its newline is a torn write; with or
			// without it, anything after the last marker is uncommitted.
			return seq, lastSeq, valid, nil
		}
		if rerr != nil {
			return seq, lastSeq, valid, fmt.Errorf("stream: reading wal: %w", rerr)
		}
		off += int64(len(line))
		text := strings.TrimSpace(line)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if ev, everr := decodeEventLine(text); everr == nil {
			req, count, rerr := resolveEvent(ev, idx, in.N())
			if rerr != nil {
				return seq, lastSeq, valid, nil
			}
			for k := 0; k < count; k++ {
				pending = append(pending, req)
			}
			continue
		}
		cm, cerr := decodeCommitLine(text)
		if cerr != nil || cm.N != len(pending) {
			// Malformed line, or a marker that does not count its batch
			// (a torn middle would have been caught by the event decode):
			// the committed prefix ends at the previous marker.
			return seq, lastSeq, valid, nil
		}
		seq = append(seq, pending...)
		pending = pending[:0]
		if cm.Seq > lastSeq {
			lastSeq = cm.Seq
		}
		valid = off
	}
}

// WriteTrace serialises a request sequence as JSONL, one event per line,
// using the instance's wire object names. The inverse of ReadTrace.
func WriteTrace(w io.Writer, in *core.Instance, seq []workload.Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range seq {
		if r.Obj < 0 || r.Obj >= len(in.Objects) {
			return fmt.Errorf("stream: event object %d out of range", r.Obj)
		}
		name := encode.ObjectName(&in.Objects[r.Obj], r.Obj)
		buf, err := json.Marshal(EventJSON{Obj: name, Node: r.V, Write: r.Write})
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(buf, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}
