package stream

import (
	"math/rand"

	"netplace/internal/core"
	"netplace/internal/metric"
	"netplace/internal/online"
	"netplace/internal/workload"
)

// StrategyCost is one strategy's bill over a trace, epoch by epoch, under
// the shared pro-rata accounting: per-request transmission to the nearest
// live copy, write multicasts over the live copy set, storage rented per
// event-step, and (adaptive only) migration transfers. Total sums the
// components; PerEpoch[k] is epoch k's share of it.
type StrategyCost struct {
	Name         string
	Transmission float64
	Storage      float64
	Migration    float64
	PerEpoch     []float64

	// Adaptation counters: Moves/Resolves for the streaming engine,
	// Replications/Drops for the counter-online strategy; zero for static.
	Moves        int
	Resolves     int
	Replications int
	Drops        int
}

// Total returns the strategy's full-trace cost.
func (s StrategyCost) Total() float64 { return s.Transmission + s.Storage + s.Migration }

// Comparison carries the three strategies' bills on one trace: the
// paper's static algorithm placed from the instance's true frequency
// tables (clairvoyant), the counter-based online strategy
// (internal/online), and the streaming adaptive engine — all priced with
// identical accounting so the totals are directly comparable.
type Comparison struct {
	Events      int
	EpochEvents int
	Epochs      int
	Static      StrategyCost
	Online      StrategyCost
	Adaptive    StrategyCost
}

// Compare replays one trace under all three strategies. The static
// strategy solves once from in's frequency tables and holds the placement
// throughout (paying the full storage fee, exactly as a held-throughout
// copy does under pro-rata rent); the online strategy runs
// online.DefaultConfig; the adaptive strategy runs a streaming Engine
// under cfg. Epoch boundaries for all three follow cfg.Epoch.
func Compare(in *core.Instance, seq []workload.Request, cfg Config) Comparison {
	cfg = cfg.withDefaults()
	cmp := Comparison{Events: len(seq), EpochEvents: cfg.Epoch}
	if len(seq) == 0 {
		return cmp
	}
	cmp.Epochs = (len(seq) + cfg.Epoch - 1) / cfg.Epoch
	cmp.Static = staticCost(in, core.Approximate(in, cfg.Solve), seq, cfg.Epoch)
	cmp.Online = onlineCost(in, seq, cfg.Epoch)
	cmp.Adaptive = adaptiveCost(in, seq, cfg)
	return cmp
}

// staticCost prices a fixed placement epoch by epoch. The sum over epochs
// equals online.StaticCost(in, p, seq) on the same trace.
func staticCost(in *core.Instance, p core.Placement, seq []workload.Request, epoch int) StrategyCost {
	sc := StrategyCost{Name: "static"}
	o := in.Metric()
	T := float64(len(seq))
	// Per-object nearest-copy fields and multicast weights, computed once.
	near := make([][]float64, len(in.Objects))
	mst := make([]float64, len(in.Objects))
	var storage float64
	for oi := range in.Objects {
		near[oi] = metric.NearestOf(o, p.Copies[oi])
		mst[oi] = metric.PairwiseMST(o, p.Copies[oi])
		size := in.Objects[oi].Scale()
		for _, c := range p.Copies[oi] {
			storage += size * in.Storage[c]
		}
	}
	sc.Storage = storage
	for start := 0; start < len(seq); start += epoch {
		end := start + epoch
		if end > len(seq) {
			end = len(seq)
		}
		var tx float64
		for _, r := range seq[start:end] {
			size := in.Objects[r.Obj].Scale()
			tx += size * near[r.Obj][r.V]
			if r.Write {
				tx += size * mst[r.Obj]
			}
		}
		sc.Transmission += tx
		sc.PerEpoch = append(sc.PerEpoch, tx+storage*float64(end-start)/T)
	}
	return sc
}

// onlineCost runs the counter-based strategy and slices its cumulative
// checkpoints into per-epoch bills.
func onlineCost(in *core.Instance, seq []workload.Request, epoch int) StrategyCost {
	sc := StrategyCost{Name: "online"}
	st, cps := online.RunCheckpoints(in, seq, online.DefaultConfig(), epoch)
	sc.Transmission = st.Transmission
	sc.Storage = st.Storage
	sc.Replications = st.Replications
	sc.Drops = st.Drops
	T := float64(len(seq))
	var prev online.Checkpoint
	for _, cp := range cps {
		sc.PerEpoch = append(sc.PerEpoch,
			(cp.Transmission-prev.Transmission)+(cp.StorageFeeSteps-prev.StorageFeeSteps)/T)
		prev = cp
	}
	return sc
}

// adaptiveCost replays the trace through a streaming Engine.
func adaptiveCost(in *core.Instance, seq []workload.Request, cfg Config) StrategyCost {
	sc := StrategyCost{Name: "adaptive"}
	eng := New(in, cfg)
	T := float64(len(seq))
	record := func(rep *EpochReport) {
		if rep == nil {
			return
		}
		sc.PerEpoch = append(sc.PerEpoch,
			rep.Transmission+rep.StorageFeeSteps/T+rep.Migration)
	}
	for _, r := range seq {
		rep, err := eng.Observe(r)
		if err != nil {
			// Events come from the same instance the engine wraps; a
			// mismatch is a caller bug surfaced by ReadTrace earlier.
			panic(err)
		}
		record(rep)
	}
	record(eng.Flush())
	st := eng.Stats()
	sc.Transmission = st.Transmission
	sc.Storage = st.Storage
	sc.Migration = st.Migration
	sc.Moves = st.Moves
	sc.Resolves = st.Resolves
	return sc
}

// Drift synthesises a drifting-demand trace: gen produces one frequency
// table per phase (typically with hotspots on disjoint node groups), the
// trace concatenates one drawn sequence per phase (events total), and the
// returned objects hold the summed tables — the average demand a
// clairvoyant static solver is given. Used by experiment E18, the
// adaptive example, and the bundled cmd/netreplay trace.
func Drift(n, phases, events int, rng *rand.Rand, gen func(phase int) []core.Object) ([]core.Object, []workload.Request) {
	if phases <= 0 {
		phases = 2
	}
	if events <= 0 {
		events = 2048
	}
	var avg []core.Object
	var seq []workload.Request
	per := events / phases
	for k := 0; k < phases; k++ {
		objs := gen(k)
		if avg == nil {
			avg = make([]core.Object, len(objs))
			for i := range objs {
				avg[i] = core.Object{
					Name: objs[i].Name, Size: objs[i].Size,
					Reads:  make([]int64, n),
					Writes: make([]int64, n),
				}
			}
		}
		for i := range objs {
			for v := 0; v < n; v++ {
				avg[i].Reads[v] += objs[i].Reads[v]
				avg[i].Writes[v] += objs[i].Writes[v]
			}
		}
		want := per
		if k == phases-1 {
			want = events - per*(phases-1)
		}
		seq = append(seq, workload.Sequence(objs, want, rng)...)
	}
	return avg, seq
}
