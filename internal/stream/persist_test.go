package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"netplace/internal/workload"
)

// stateJSON marshals an engine's full observable state for byte-level
// comparison: captured state, normalised stats, and placement.
func stateJSON(t *testing.T, e *Engine) []byte {
	t.Helper()
	buf, err := json.Marshal(struct {
		State     *EngineState
		Stats     Stats
		Placement [][]int
	}{e.State(), e.Stats(), e.Placement().Copies})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestStateRoundTripByteIdentical: capturing State mid-epoch, restoring it
// into a fresh engine, and feeding both the same remaining events must
// keep every future output byte-identical, in both estimator modes.
func TestStateRoundTripByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"window", Config{Epoch: 32, Window: 3}},
		{"ewma", Config{Epoch: 32, Alpha: 0.4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := testInstance(t, 42, 3)
			rng := rand.New(rand.NewSource(9))
			seq := workload.Sequence(in.Objects, 500, rng)
			// Cut mid-epoch (not on a multiple of Epoch) so the capture
			// carries open-epoch fill, report, and estimator counts.
			cut := 197

			orig := New(in, tc.cfg)
			for _, r := range seq[:cut] {
				if _, err := orig.Observe(r); err != nil {
					t.Fatal(err)
				}
			}
			snap := orig.State()
			buf, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			// The restore path always goes through JSON in production;
			// exercise exactly that round trip.
			var decoded EngineState
			if err := json.Unmarshal(buf, &decoded); err != nil {
				t.Fatal(err)
			}
			rest, err := Restore(in, tc.cfg, &decoded)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(stateJSON(t, orig), stateJSON(t, rest)) {
				t.Fatal("restored state diverges immediately after restore")
			}

			for _, r := range seq[cut:] {
				if _, err := orig.Observe(r); err != nil {
					t.Fatal(err)
				}
				if _, err := rest.Observe(r); err != nil {
					t.Fatal(err)
				}
			}
			orig.Flush()
			rest.Flush()
			a, b := stateJSON(t, orig), stateJSON(t, rest)
			if !bytes.Equal(a, b) {
				t.Fatalf("state diverged after restore+replay:\n orig %s\n rest %s", a, b)
			}

			// The snapshot must be a deep copy: the original kept running
			// above, so the captured state must still restore to the cut
			// point, not to the original's current state.
			rest2, err := Restore(in, tc.cfg, snap)
			if err != nil {
				t.Fatal(err)
			}
			if rest2.Stats().Events != cut {
				t.Fatalf("snapshot mutated by continued run: %d events, want %d", rest2.Stats().Events, cut)
			}
		})
	}
}

// TestStateCapturesNilVsSeeded: an object never touched must restore with
// a nil copy set (the engine's first-touch branch keys on nilness), while
// a seeded object restores its exact copies.
func TestStateCapturesNilVsSeeded(t *testing.T) {
	in := testInstance(t, 5, 2)
	eng := New(in, Config{Epoch: 1 << 30, Window: 2})
	// Touch only object 0.
	if _, err := eng.Observe(workload.Request{Obj: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	st := eng.State()
	if st.Objects[0].Copies == nil || !st.Objects[0].Seeded {
		t.Fatalf("touched object not captured: %+v", st.Objects[0])
	}
	if st.Objects[1].Copies != nil || st.Objects[1].Seeded {
		t.Fatalf("untouched object captured as seeded: %+v", st.Objects[1])
	}
	buf, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var dec EngineState
	if err := json.Unmarshal(buf, &dec); err != nil {
		t.Fatal(err)
	}
	rest, err := Restore(in, Config{Epoch: 1 << 30, Window: 2}, &dec)
	if err != nil {
		t.Fatal(err)
	}
	if rest.objs[1].copies != nil {
		t.Fatal("nil copy set did not survive the JSON round trip")
	}
	// First touch of object 1 must still seed it at its first requester.
	if _, err := rest.Observe(workload.Request{Obj: 1, V: 4}); err != nil {
		t.Fatal(err)
	}
	if got := rest.objs[1].copies; len(got) != 1 || got[0] != 4 {
		t.Fatalf("restored engine did not first-touch-seed: %v", got)
	}
}

// TestRestoreValidation: malformed states must be rejected, not installed.
func TestRestoreValidation(t *testing.T) {
	in := testInstance(t, 8, 2)
	cfg := Config{Epoch: 32, Window: 2}
	good := func() *EngineState {
		e := New(in, cfg)
		for i := 0; i < 40; i++ {
			if _, err := e.Observe(workload.Request{Obj: 0, V: i % in.N()}); err != nil {
				t.Fatal(err)
			}
		}
		return e.State()
	}
	for _, tc := range []struct {
		name string
		mut  func(*EngineState)
	}{
		{"version", func(st *EngineState) { st.Version = 99 }},
		{"object count", func(st *EngineState) { st.Objects = st.Objects[:1] }},
		{"fill range", func(st *EngineState) { st.Fill = cfg.Epoch }},
		{"negative fill", func(st *EngineState) { st.Fill = -1 }},
		{"copy out of range", func(st *EngineState) { st.Objects[0].Copies = []int{in.N()} }},
		{"copies unsorted", func(st *EngineState) { st.Objects[0].Copies = []int{2, 1} }},
		{"solved length", func(st *EngineState) { st.Objects[0].Solved = []int64{1} }},
		{"cur shape", func(st *EngineState) { st.Estimator.CurR = st.Estimator.CurR[:1] }},
		{"rate shape", func(st *EngineState) { st.Estimator.RateR[0] = st.Estimator.RateR[0][:1] }},
		{"ring size", func(st *EngineState) { st.Estimator.RingR = st.Estimator.RingR[:1] }},
		{"ring cursor", func(st *EngineState) { st.Estimator.RingPos = cfg.Window }},
		{"negative epochs", func(st *EngineState) { st.Estimator.Epochs = -1 }},
		{"mode mismatch", func(st *EngineState) { st.Estimator.EwmaR = [][]float64{{1}} }},
	} {
		st := good()
		tc.mut(st)
		if _, err := Restore(in, cfg, st); err == nil {
			t.Errorf("%s: invalid state accepted", tc.name)
		}
	}
	if _, err := Restore(in, cfg, nil); err == nil {
		t.Error("nil state accepted")
	}
	// EWMA session must reject window-mode state.
	st := good()
	if _, err := Restore(in, Config{Epoch: 32, Alpha: 0.5}, st); err == nil {
		t.Error("window state accepted into an EWMA session")
	}
	// And the unmutated state must restore cleanly.
	if _, err := Restore(in, cfg, good()); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}

// TestDecodeWALPrefixSemantics pins DecodeWAL's contract: longest valid
// newline-terminated prefix, content errors end the prefix silently,
// comments and blanks count as padding.
func TestDecodeWALPrefixSemantics(t *testing.T) {
	in := testInstance(t, 3, 2)
	name := in.Objects[0].Name
	line1 := `{"obj":"` + name + `","node":1}` + "\n"
	line2 := `{"obj":"` + name + `","node":2,"write":true}` + "\n"

	for _, tc := range []struct {
		name      string
		data      string
		events    int
		valid     int64
		wantWrite bool
	}{
		{"clean", line1 + line2, 2, int64(len(line1) + len(line2)), true},
		{"torn tail", line1 + line2[:len(line2)-5], 1, int64(len(line1)), false},
		{"unterminated", line1[:len(line1)-1], 0, 0, false},
		{"malformed line", line1 + "{garbage\n" + line2, 1, int64(len(line1)), false},
		{"unknown object", line1 + `{"obj":"nope","node":0}` + "\n" + line2, 1, int64(len(line1)), false},
		{"node out of range", line1 + `{"obj":"` + name + `","node":9999}` + "\n", 1, int64(len(line1)), false},
		{"trailing garbage on line", line1 + `{"obj":"` + name + `","node":2} extra` + "\n", 1, int64(len(line1)), false},
		{"comment padding", "# header\n\n" + line1, 1, int64(len("# header\n\n" + line1)), false},
		{"comment after tear", line1 + "#partial-comment-no-newline", 1, int64(len(line1)), false},
		{"empty", "", 0, 0, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq, valid, err := DecodeWAL(strings.NewReader(tc.data), in)
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) != tc.events || valid != tc.valid {
				t.Fatalf("got %d events, %d valid bytes; want %d, %d", len(seq), valid, tc.events, tc.valid)
			}
			if tc.events == 2 && seq[1].Write != tc.wantWrite {
				t.Fatalf("second event write=%v, want %v", seq[1].Write, tc.wantWrite)
			}
			// Re-decoding the valid prefix alone must reproduce the result.
			seq2, valid2, err := DecodeWAL(strings.NewReader(tc.data[:tc.valid]), in)
			if err != nil {
				t.Fatal(err)
			}
			if valid2 != tc.valid || !reflect.DeepEqual(seq, seq2) {
				t.Fatalf("prefix re-decode diverged: %d/%d bytes, %d/%d events", valid2, tc.valid, len(seq2), len(seq))
			}
		})
	}

	// Count expansion: a count line expands in the decoded sequence.
	data := `{"obj":"` + name + `","node":1,"count":3}` + "\n"
	seq, valid, err := DecodeWAL(strings.NewReader(data), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 || valid != int64(len(data)) {
		t.Fatalf("count expansion: %d events, %d valid", len(seq), valid)
	}
}

// TestDecodeWALBatchesSemantics pins the v2 batch-atomic contract: a
// batch counts only when its commit marker is intact and counts its
// expanded events exactly; everything after the last good marker is an
// unacknowledged suffix the caller truncates.
func TestDecodeWALBatchesSemantics(t *testing.T) {
	in := testInstance(t, 3, 2)
	name := in.Objects[0].Name
	e1 := `{"obj":"` + name + `","node":1}` + "\n"
	e2 := `{"obj":"` + name + `","node":2,"write":true}` + "\n"
	e3c := `{"obj":"` + name + `","node":0,"count":3}` + "\n"
	m := func(seq int64, n int) string { return fmt.Sprintf(`{"seq":%d,"n":%d}`, seq, n) + "\n" }

	for _, tc := range []struct {
		name    string
		data    string
		events  int
		lastSeq int64
		valid   int64
	}{
		{"empty", "", 0, 0, 0},
		{"one batch", e1 + e2 + m(5, 2), 2, 5, int64(len(e1 + e2 + m(5, 2)))},
		{"two batches", e1 + m(1, 1) + e2 + m(2, 1), 2, 2, int64(len(e1 + m(1, 1) + e2 + m(2, 1)))},
		{"missing final marker", e1 + m(1, 1) + e2, 1, 1, int64(len(e1 + m(1, 1)))},
		{"torn marker", e1 + m(1, 1) + e2 + m(2, 1)[:3], 1, 1, int64(len(e1 + m(1, 1)))},
		{"marker count mismatch", e1 + e2 + m(7, 1), 0, 0, 0},
		{"count expansion", e3c + m(4, 3), 3, 4, int64(len(e3c + m(4, 3)))},
		{"unexpanded count rejected", e3c + m(4, 1), 0, 0, 0},
		{"padding inside batch", "# hdr\n" + e1 + "\n" + m(9, 1), 1, 9, int64(len("# hdr\n" + e1 + "\n" + m(9, 1)))},
		{"malformed mid-batch", e1 + m(1, 1) + "{garbage\n" + e2 + m(2, 1), 1, 1, int64(len(e1 + m(1, 1)))},
		{"negative n marker", e1 + `{"seq":1,"n":-1}` + "\n", 0, 0, 0},
		{"empty batch marker", m(3, 0) + e1 + m(4, 1), 1, 4, int64(len(m(3, 0) + e1 + m(4, 1)))},
		{"seq watermark is max", e1 + m(9, 1) + e2 + m(2, 1), 2, 9, int64(len(e1 + m(9, 1) + e2 + m(2, 1)))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq, lastSeq, valid, err := DecodeWALBatches(strings.NewReader(tc.data), in)
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) != tc.events || lastSeq != tc.lastSeq || valid != tc.valid {
				t.Fatalf("got %d events, seq %d, %d valid; want %d, %d, %d",
					len(seq), lastSeq, valid, tc.events, tc.lastSeq, tc.valid)
			}
			// Re-decoding the committed prefix alone reproduces the result —
			// the property post-crash truncation relies on.
			seq2, lastSeq2, valid2, err := DecodeWALBatches(strings.NewReader(tc.data[:tc.valid]), in)
			if err != nil {
				t.Fatal(err)
			}
			if valid2 != tc.valid || lastSeq2 != tc.lastSeq || !reflect.DeepEqual(seq, seq2) {
				t.Fatalf("prefix re-decode diverged: %d/%d bytes, seq %d/%d, %d/%d events",
					valid2, tc.valid, lastSeq2, tc.lastSeq, len(seq2), len(seq))
			}
		})
	}
}
