// Package benchkit builds the shared fixtures of the kernel benchmarks,
// so the in-tree benchmarks (bench_test.go) and the CI trajectory gate
// (cmd/benchreport, BENCH_PR3.json) measure exactly the same workload —
// a fixture tuned in one place cannot silently diverge from the other.
package benchkit

import (
	"math/rand"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/workload"
)

// ResidentInstance is the canonical resident-solve fixture: a 2500-node
// unit-weight grid with clustered Zipf demand and a lazy oracle bounded to
// 64 rows — the steady-state shape of a placement-service instance. The
// oracle is selected but not warmed; benchmarks warm it outside their
// timed loops.
func ResidentInstance(objects int) *core.Instance {
	rng := rand.New(rand.NewSource(41))
	g := gen.Grid(50, 50, gen.UnitWeights)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 2 + rng.Float64()*6
	}
	objs := workload.Generate(n, workload.Spec{Objects: objects, MeanRate: 3, WriteFraction: 0.25, ZipfS: 0.8}, rng)
	in := core.MustInstance(g, storage, objs)
	in.UseMetric(core.MetricLazy, 64)
	return in
}
