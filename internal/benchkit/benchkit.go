// Package benchkit builds the shared fixtures of the kernel benchmarks,
// so the in-tree benchmarks (bench_test.go) and the CI trajectory gate
// (cmd/benchreport, BENCH_PR3.json) measure exactly the same workload —
// a fixture tuned in one place cannot silently diverge from the other.
package benchkit

import (
	"fmt"
	"math/rand"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/workload"
)

// ResidentInstance is the canonical resident-solve fixture: a 2500-node
// unit-weight grid with clustered Zipf demand and a lazy oracle bounded to
// 64 rows — the steady-state shape of a placement-service instance. The
// oracle is selected but not warmed; benchmarks warm it outside their
// timed loops.
func ResidentInstance(objects int) *core.Instance {
	rng := rand.New(rand.NewSource(41))
	g := gen.Grid(50, 50, gen.UnitWeights)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 2 + rng.Float64()*6
	}
	objs := workload.Generate(n, workload.Spec{Objects: objects, MeanRate: 3, WriteFraction: 0.25, ZipfS: 0.8}, rng)
	in := core.MustInstance(g, storage, objs)
	in.UseMetric(core.MetricLazy, 64)
	return in
}

// LargeInstance is the 50k-node tier fixture: the PR 1 sparse-grid
// acceptance topology (a 224×224 unit-weight grid, 50176 nodes) with a
// CDN-like demand shape — every node reads once, so payment balls stay
// local, and each object has sparse writers on its own residue class
// (W = 42 per object). Past core.AutoParallelMinNodes, this is the size
// at which the sharded and batched kernels are expected to pay; the lazy
// oracle is bounded to 64 rows as in the acceptance test.
func LargeInstance(objects int) *core.Instance {
	const side = 224 // 50176 nodes
	g := gen.Grid(side, side, gen.UnitWeights)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(3 + v%5)
	}
	objs := make([]core.Object, objects)
	for k := range objs {
		obj := core.Object{Name: fmt.Sprintf("obj%d", k), Reads: make([]int64, n), Writes: make([]int64, n)}
		for v := 0; v < n; v++ {
			obj.Reads[v] = 1
			if (v+k*601)%1201 == 0 {
				obj.Writes[v] = 1
			}
		}
		objs[k] = obj
	}
	in := core.MustInstance(g, storage, objs)
	in.UseMetric(core.MetricLazy, 64)
	return in
}
