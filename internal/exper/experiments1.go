package exper

import (
	"math"
	"math/rand"
	"time"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/graph"
	"netplace/internal/solver"
	"netplace/internal/tree"
	"netplace/internal/workload"
)

// smallInstance builds a random instance on a named topology small enough
// for exact enumeration.
func smallInstance(rng *rand.Rand, topo string, n int, writeFrac float64) *core.Instance {
	g, err := gen.Build(topo, n, rng)
	if err != nil {
		panic(err)
	}
	nn := g.N()
	storage := make([]float64, nn)
	for v := range storage {
		storage[v] = 1 + rng.Float64()*15
	}
	obj := core.Object{Name: "x", Reads: make([]int64, nn), Writes: make([]int64, nn)}
	for v := 0; v < nn; v++ {
		total := rng.Int63n(10)
		w := int64(float64(total) * writeFrac)
		obj.Writes[v] = w
		obj.Reads[v] = total - w
	}
	return core.MustInstance(g, storage, []core.Object{obj})
}

// E1ApproxRatio measures Theorem 7 empirically: the three-phase algorithm's
// total cost against the exact restricted-model optimum and the exact
// unrestricted optimum, per topology family. The theorem guarantees a
// constant factor; the table reports the constants actually observed.
func E1ApproxRatio(cfg Config) Table {
	t := Table{
		ID:     "E1",
		Title:  "approximation factor of the Section 2 algorithm vs exact optima (Theorem 7)",
		Header: []string{"topology", "n", "trials", "mean vs OPT_R", "max vs OPT_R", "mean vs OPT_U", "max vs OPT_U"},
		Notes: []string{
			"OPT_R: exact restricted-model optimum (nearest-copy access + MST updates)",
			"OPT_U: exact unrestricted optimum (per-write optimal Steiner update sets)",
			"paper: constant factor (Theorem 7); Lemma 1 adds a further factor <= 4 vs OPT_U",
		},
	}
	trials := cfg.trials(20, 4)
	for _, topo := range []string{"random-tree", "ring", "er", "geometric", "clustered"} {
		n := 10
		var sumR, maxR, sumU, maxU float64
		count := 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			in := smallInstance(rng, topo, n, 0.3)
			if in.Objects[0].Requests().Total() == 0 {
				continue
			}
			p := core.Approximate(in, core.Options{})
			cost := in.ObjectCost(&in.Objects[0], p.Copies[0]).Total()
			optR := solver.OptimalRestricted(in)[0].Cost
			optU := solver.OptimalUnrestricted(in)[0].Cost
			if optR <= 0 || optU <= 0 {
				continue
			}
			rr, ru := cost/optR, cost/optU
			sumR += rr
			sumU += ru
			maxR = math.Max(maxR, rr)
			maxU = math.Max(maxU, ru)
			count++
		}
		if count == 0 {
			continue
		}
		t.AddRow(topo, d(n), d(count), f3(sumR/float64(count)), f3(maxR), f3(sumU/float64(count)), f3(maxU))
	}
	return t
}

// E2TreeOptimality verifies Theorem 13's optimality claim: the tree DP's
// cost equals brute force on random trees, read-only and with writes.
func E2TreeOptimality(cfg Config) Table {
	t := Table{
		ID:     "E2a",
		Title:  "tree DP vs brute-force optimum (Theorem 13: optimal placement)",
		Header: []string{"workload", "trials", "max n", "max rel gap", "mean copies"},
		Notes:  []string{"paper: exact optimum; gap must be 0 up to float tolerance"},
	}
	trials := cfg.trials(60, 8)
	for _, wl := range []struct {
		name      string
		writeFrac float64
	}{{"read-only", 0}, {"mixed", 0.4}, {"write-heavy", 0.9}} {
		maxGap := 0.0
		copies := 0
		maxN := 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(7000 + trial)))
			n := 4 + rng.Intn(9)
			if n > maxN {
				maxN = n
			}
			in := smallInstance(rng, "random-tree", n, wl.writeFrac)
			obj := &in.Objects[0]
			tr := tree.Build(in.G, 0)
			set, got := tr.Solve(in.Storage, obj.Reads, obj.Writes)
			_, want := tree.BruteForce(in.G, in.Storage, obj.Reads, obj.Writes)
			if want > 0 {
				maxGap = math.Max(maxGap, math.Abs(got-want)/want)
			}
			copies += len(set)
		}
		t.AddRow(wl.name, d(trials), d(maxN), f3(maxGap)+" (want 0)", f2(float64(copies)/float64(trials)))
	}
	return t
}

// E2TreeScaling measures the DP's running time across tree families whose
// diameters and degrees differ, against the O(|V| * diam * log deg) bound.
func E2TreeScaling(cfg Config) Table {
	t := Table{
		ID:     "E2b",
		Title:  "tree DP runtime scaling (Theorem 13: O(|V|·diam(T)·log deg(T)))",
		Header: []string{"family", "n", "diam", "maxdeg", "time", "time / (n·diam·log2(deg))"},
		Notes: []string{
			"the last column should stay roughly flat within a family as n grows",
			"path: diam = n-1 -> quadratic total; star/balanced: near-linear total",
		},
	}
	sizes := []int{200, 400, 800}
	if cfg.Quick {
		sizes = []int{100, 200}
	}
	rng := rand.New(rand.NewSource(99))
	families := []struct {
		name  string
		build func(n int) *graph.Graph
	}{
		{"path", func(n int) *graph.Graph { return gen.Path(n, gen.UnitWeights) }},
		{"balanced-binary", func(n int) *graph.Graph { return gen.KaryTree(n, 2, gen.UnitWeights) }},
		{"star", func(n int) *graph.Graph { return gen.Star(n, gen.UnitWeights) }},
		{"random", func(n int) *graph.Graph { return gen.RandomTree(n, rng, gen.UnitWeights) }},
	}
	for _, fam := range families {
		for _, n := range sizes {
			g := fam.build(n)
			storage := make([]float64, n)
			reads := make([]int64, n)
			writes := make([]int64, n)
			wrng := rand.New(rand.NewSource(int64(n)))
			for v := 0; v < n; v++ {
				storage[v] = 1 + wrng.Float64()*10
				reads[v] = wrng.Int63n(10)
				writes[v] = wrng.Int63n(3)
			}
			tr := tree.Build(g, 0)
			start := time.Now()
			tr.Solve(storage, reads, writes)
			elapsed := time.Since(start)
			diam := g.UnweightedDiameter()
			deg := g.MaxDegree()
			denom := float64(n) * float64(diam) * math.Max(1, math.Log2(float64(deg)))
			t.AddRow(fam.name, d(n), d(diam), d(deg),
				elapsed.Round(time.Microsecond).String(),
				f3(float64(elapsed.Nanoseconds())/denom)+" ns")
		}
	}
	return t
}

// E3WriteSweep reproduces the qualitative behaviour motivating the model:
// as the write share of a fixed request volume grows, the optimal number of
// copies collapses toward 1 — updates make replication expensive.
func E3WriteSweep(cfg Config) Table {
	t := Table{
		ID:     "E3",
		Title:  "replication degree vs write share (fixed request volume)",
		Header: []string{"write frac", "copies (approx)", "copies (greedy)", "cost (approx)", "cost (greedy)", "read%", "update%"},
		Notes: []string{
			"clustered Internet-like topology; per-node request volume constant at 20",
			"expected shape: copies monotonically (weakly) fall as writes grow",
		},
	}
	rng := rand.New(rand.NewSource(4242))
	clusters := 6
	size := 5
	if cfg.Quick {
		clusters, size = 4, 4
	}
	g := gen.Clustered(gen.ClusteredParams{Clusters: clusters, ClusterSize: size, IntraWeight: 0.2, InterWeight: 3, Backbone: 0.3}, rng)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 4
	}
	for _, wf := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		const volume = 20
		w := int64(math.Round(volume * wf))
		objs := workload.Uniform(n, volume-w, w)
		in := core.MustInstance(g.Clone(), storage, objs)
		pa := core.Approximate(in, core.Options{})
		pg := core.GreedyAdd(in)
		ba := in.Cost(pa)
		bg := in.Cost(pg)
		tot := ba.Total()
		readPct, updPct := 0.0, 0.0
		if tot > 0 {
			readPct = 100 * ba.Read / tot
			updPct = 100 * ba.Update / tot
		}
		t.AddRow(f2(wf), d(len(pa.Copies[0])), d(len(pg.Copies[0])),
			f1(tot), f1(bg.Total()), f1(readPct), f1(updPct))
	}
	return t
}

// E4StorageSweep shows storage-fee sensitivity: expensive memory prices out
// replication even for read-only objects.
func E4StorageSweep(cfg Config) Table {
	t := Table{
		ID:     "E4",
		Title:  "replication degree vs storage fee (read-only workload)",
		Header: []string{"storage fee", "copies (approx)", "copies (greedy)", "cost (approx)", "storage%"},
		Notes:  []string{"same clustered topology as E3; reads only, volume 20/node"},
	}
	rng := rand.New(rand.NewSource(777))
	clusters := 6
	size := 5
	if cfg.Quick {
		clusters, size = 4, 4
	}
	g := gen.Clustered(gen.ClusteredParams{Clusters: clusters, ClusterSize: size, IntraWeight: 0.2, InterWeight: 3, Backbone: 0.3}, rng)
	n := g.N()
	for _, fee := range []float64{0.05, 0.5, 5, 50, 500} {
		storage := make([]float64, n)
		for v := range storage {
			storage[v] = fee
		}
		objs := workload.Uniform(n, 20, 0)
		in := core.MustInstance(g.Clone(), storage, objs)
		pa := core.Approximate(in, core.Options{})
		pg := core.GreedyAdd(in)
		b := in.Cost(pa)
		pct := 0.0
		if b.Total() > 0 {
			pct = 100 * b.Storage / b.Total()
		}
		t.AddRow(f2(fee), d(len(pa.Copies[0])), d(len(pg.Copies[0])), f1(b.Total()), f1(pct))
	}
	return t
}

// E5Baselines compares the algorithm against the classic strategies across
// topology families; entries are total cost normalised to the algorithm.
func E5Baselines(cfg Config) Table {
	t := Table{
		ID:     "E5",
		Title:  "total cost of baselines relative to the Section 2 algorithm (=1.00)",
		Header: []string{"topology", "n", "full-repl", "single-best", "fl-only", "greedy-add"},
		Notes: []string{
			"mixed workload (30% writes); values > 1 mean the baseline is worse",
			"fl-only ignores update cost entirely (phase 1 alone)",
		},
	}
	n := 30
	if cfg.Quick {
		n = 16
	}
	for _, topo := range []string{"path", "ring", "grid", "er", "geometric", "clustered"} {
		rng := rand.New(rand.NewSource(31))
		g, err := gen.Build(topo, n, rng)
		if err != nil {
			panic(err)
		}
		nn := g.N()
		storage := make([]float64, nn)
		for v := range storage {
			storage[v] = 2 + rng.Float64()*6
		}
		objs := workload.Generate(nn, workload.Spec{Objects: 3, MeanRate: 6, WriteFraction: 0.3, ZipfS: 0.8}, rng)
		in := core.MustInstance(g, storage, objs)
		base := in.Cost(core.Approximate(in, core.Options{})).Total()
		if base <= 0 {
			continue
		}
		rel := func(p core.Placement) string { return f2(in.Cost(p).Total() / base) }
		t.AddRow(topo, d(nn),
			rel(core.FullReplication(in)),
			rel(core.SingleBest(in)),
			rel(core.FacilityOnly(in, nil)),
			rel(core.GreedyAdd(in)))
	}
	return t
}

// E6LoadModel demonstrates the generalisation claim of Section 1: with
// storage fees 0 and edge fees 1/bandwidth, minimising commercial cost is
// minimising total communication load. The tree optimum under our cost
// function must equal the load-optimal placement computed by an independent
// load accounting.
func E6LoadModel(cfg Config) Table {
	t := Table{
		ID:     "E6",
		Title:  "total-load model as a special case (cs=0, ct=1/bandwidth) on trees",
		Header: []string{"trials", "n range", "max |cost - load|", "placements identical"},
		Notes: []string{
			"load(S) = sum over links of transferred objects / bandwidth, measured independently",
			"paper (Section 1): cost model generalises the total communication load model",
		},
	}
	trials := cfg.trials(40, 6)
	maxGap := 0.0
	identical := 0
	minN, maxN := 1<<30, 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(8800 + trial)))
		n := 4 + rng.Intn(8)
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
		// bandwidths in [1,8]; fee = 1/bandwidth
		g := graph.New(n)
		for v := 1; v < n; v++ {
			bw := 1 + rng.Float64()*7
			g.AddEdge(rng.Intn(v), v, 1/bw)
		}
		storage := make([]float64, n)
		obj := core.Object{Reads: make([]int64, n), Writes: make([]int64, n)}
		for v := 0; v < n; v++ {
			obj.Reads[v] = rng.Int63n(8)
			if rng.Float64() < 0.5 {
				obj.Writes[v] = rng.Int63n(4)
			}
		}
		tr := tree.Build(g, 0)
		set, cost := tr.Solve(storage, obj.Reads, obj.Writes)
		// Independent load accounting: for each copy set, total load =
		// reads' shortest paths + per-write spanning subtree, all weighted
		// by 1/bandwidth — computed from first principles via brute force.
		bSet, bLoad := tree.BruteForce(g, storage, obj.Reads, obj.Writes)
		maxGap = math.Max(maxGap, math.Abs(cost-bLoad))
		if equalSets(set, bSet) || math.Abs(cost-bLoad) < 1e-9 {
			identical++
		}
	}
	t.AddRow(d(trials), fmt2Range(minN, maxN), f3(maxGap)+" (want 0)", d(identical)+"/"+d(trials))
	return t
}

func fmt2Range(a, b int) string { return d(a) + "-" + d(b) }

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[int]bool{}
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			return false
		}
	}
	return true
}
