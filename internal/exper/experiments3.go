package exper

import (
	"math"
	"math/rand"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/graph"
	"netplace/internal/netsim"
	"netplace/internal/online"
	"netplace/internal/workload"
)

// E13Online compares the paper's static algorithm (which knows the request
// frequencies) against a dynamic count-based strategy that sees requests
// one at a time — the setting of the related work the paper cites
// (Awerbuch et al.; Maggs et al., dynamic). Both are priced on the same
// drawn request sequences; "static clairvoyant" is the paper's algorithm
// placed from the true frequency tables.
func E13Online(cfg Config) Table {
	t := Table{
		ID:     "E13",
		Title:  "static (frequency-aware) vs dynamic (online) strategy, same sequences",
		Header: []string{"write frac", "trials", "online/static mean", "online/static max", "repl/drop per obj"},
		Notes: []string{
			"online: replicate-on-threshold, invalidate idle replicas on write; storage rented pro rata",
			"extension experiment: the paper treats only the static problem; this quantifies the value of knowing frequencies",
		},
	}
	trials := cfg.trials(12, 3)
	for _, wf := range []float64{0, 0.15, 0.4} {
		var sum, max float64
		var repl, drops, count int
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(9100 + trial)))
			g, err := gen.Build("clustered", 24, rng)
			if err != nil {
				panic(err)
			}
			n := g.N()
			storage := make([]float64, n)
			for v := range storage {
				storage[v] = 2 + rng.Float64()*4
			}
			objs := workload.Generate(n, workload.Spec{Objects: 2, MeanRate: 5, WriteFraction: wf, ZipfS: 0.8}, rng)
			in := core.MustInstance(g, storage, objs)
			seq := workload.Sequence(objs, 500, rng)
			if len(seq) == 0 {
				continue
			}
			st := online.Run(in, seq, online.DefaultConfig())
			static := online.StaticCost(in, core.Approximate(in, core.Options{}), seq)
			if static <= 0 {
				continue
			}
			r := st.Total() / static
			sum += r
			max = math.Max(max, r)
			repl += st.Replications
			drops += st.Drops
			count++
		}
		if count == 0 {
			continue
		}
		t.AddRow(f2(wf), d(count), f3(sum/float64(count)), f3(max),
			f1(float64(repl)/float64(2*count))+"/"+f1(float64(drops)/float64(2*count)))
	}
	return t
}

// E14Congestion reports the congestion (max link volume / bandwidth, the
// objective of Maggs et al. [10]) induced by cost-optimal placements when
// fees are set to 1/bandwidth — connecting the paper's cost model back to
// the load literature it generalises.
func E14Congestion(cfg Config) Table {
	t := Table{
		ID:     "E14",
		Title:  "link congestion of cost-optimal placements (fees = 1/bandwidth)",
		Header: []string{"strategy", "total cost", "congestion", "hottest-link bill"},
		Notes: []string{
			"clustered network, heterogeneous bandwidths; congestion = max over links of volume/bandwidth",
			"with fees = 1/bandwidth the per-link bill *is* the congestion contribution, so the columns coincide",
			"total cost and congestion are different objectives: the cost optimum may concentrate traffic on one",
			"link if that is globally cheapest — exactly the distinction between this paper and Maggs et al. [10]",
		},
	}
	rng := rand.New(rand.NewSource(606))
	clusters := 6
	if cfg.Quick {
		clusters = 4
	}
	// Build a clustered topology with explicit bandwidths: backbone fat,
	// access thin; fee = 1/bandwidth per the paper's reduction.
	g := gen.Clustered(gen.ClusteredParams{Clusters: clusters, ClusterSize: 5, IntraWeight: 1, InterWeight: 1, Backbone: 0.3}, rng)
	n := g.N()
	// assign bandwidths by edge class and rebuild fees
	fees := make([]float64, g.M())
	bws := make([]float64, g.M())
	g2 := graph.New(n)
	for id, e := range g.Edges() {
		bw := 2.0 // access link
		if e.U < clusters && e.V < clusters {
			bw = 10 // backbone link
		}
		bws[id] = bw
		fees[id] = 1 / bw
		g2.AddEdge(e.U, e.V, 1/bw)
	}
	storage := make([]float64, n) // cs = 0: the pure total-load model
	objs := workload.Generate(n, workload.Spec{Objects: 3, MeanRate: 5, WriteFraction: 0.2, ZipfS: 0.8}, rng)
	in := core.MustInstance(g2, storage, objs)

	strategies := []struct {
		name string
		p    core.Placement
	}{
		{"approx (cost-optimal)", core.Approximate(in, core.Options{})},
		{"single-best", core.SingleBest(in)},
		{"full-replication", core.FullReplication(in)},
	}
	for _, s := range strategies {
		sim, err := netsim.New(in, s.p)
		if err != nil {
			panic(err)
		}
		st := sim.Run()
		t.AddRow(s.name, f1(st.Total()), f2(st.Congestion(fees, bws)), f2(st.MaxEdgeBill()))
	}
	return t
}
