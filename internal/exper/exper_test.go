package exper

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	tables := All(Config{Quick: true})
	if len(tables) != 19 {
		t.Fatalf("got %d tables, want 19", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" {
			t.Fatalf("table missing identity: %+v", tb)
		}
		if seen[tb.ID] {
			t.Fatalf("duplicate table id %s", tb.ID)
		}
		seen[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: no rows", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s: row width %d, header width %d", tb.ID, len(row), len(tb.Header))
			}
		}
		var buf bytes.Buffer
		tb.Fprint(&buf)
		if !strings.Contains(buf.String(), tb.ID) {
			t.Fatalf("%s: printed table lacks its id", tb.ID)
		}
	}
}

// TestE1WithinTheoremBound: the measured approximation factors must be
// finite, >= 1, and comfortably constant.
func TestE1WithinTheoremBound(t *testing.T) {
	tb := E1ApproxRatio(Config{Quick: true})
	for _, row := range tb.Rows {
		for _, col := range []int{3, 4, 5, 6} {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("unparsable cell %q: %v", row[col], err)
			}
			if v < 1-1e-9 {
				t.Fatalf("%s: ratio %v below 1 (beating the optimum?)", row[0], v)
			}
			if v > 30 {
				t.Fatalf("%s: ratio %v not plausibly constant", row[0], v)
			}
		}
	}
}

// TestE7RespectsClaim2 and TestE8RespectsLemma1 parse the measured maxima
// and re-assert the theoretical bounds end-to-end.
func TestE7RespectsClaim2(t *testing.T) {
	tb := E7MSTvsSteiner(Config{Quick: true})
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v > 2+1e-9 || v < 1-1e-9 {
			t.Fatalf("%s: max MST/Steiner ratio %v outside [1, 2]", row[0], v)
		}
	}
}

func TestE8RespectsLemma1(t *testing.T) {
	tb := E8RestrictedGap(Config{Quick: true})
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v > 4+1e-9 || v < 1-1e-9 {
			t.Fatalf("%s: restricted gap %v outside [1, 4]", row[0], v)
		}
	}
}

// TestE2TreeIsExact: the DP's measured gap column must be the zero string.
func TestE2TreeIsExact(t *testing.T) {
	tb := E2TreeOptimality(Config{Quick: true})
	for _, row := range tb.Rows {
		if !strings.HasPrefix(row[3], "0.000") {
			t.Fatalf("%s: nonzero optimality gap %q", row[0], row[3])
		}
	}
}

// TestE3CopiesMonotone: replication must (weakly) fall as writes grow.
func TestE3CopiesMonotone(t *testing.T) {
	tb := E3WriteSweep(Config{Quick: true})
	prev := 1 << 30
	for _, row := range tb.Rows {
		c, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		if c > prev {
			t.Fatalf("copies increased with write share: %v", tb.Rows)
		}
		prev = c
	}
	// read-only end must replicate more than the write-only end
	first, _ := strconv.Atoi(tb.Rows[0][1])
	last, _ := strconv.Atoi(tb.Rows[len(tb.Rows)-1][1])
	if first <= last {
		t.Fatalf("no replication collapse: %d -> %d copies", first, last)
	}
}

// TestE4CopiesMonotone: replication must (weakly) fall as storage fees grow.
func TestE4CopiesMonotone(t *testing.T) {
	tb := E4StorageSweep(Config{Quick: true})
	prev := 1 << 30
	for _, row := range tb.Rows {
		c, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		if c > prev {
			t.Fatalf("copies increased with storage fee: %v", tb.Rows)
		}
		prev = c
	}
}

// TestE18AdaptiveBetweenStaticAndOnline is the ISSUE's acceptance
// assertion: on the drifting-demand traces, the streaming adaptive
// strategy's total cost must land between the clairvoyant static
// algorithm's and the counter-online strategy's — it pays estimation lag
// and migration fees (so it cannot beat clairvoyance here) but recovers
// enough frequency knowledge to beat counting. Asserted on the trial
// means (individual drifts can favour any strategy; the means are what
// the experiment claims).
func TestE18AdaptiveBetweenStaticAndOnline(t *testing.T) {
	tb := E18AdaptiveStreaming(Config{})
	if len(tb.Rows) == 0 {
		t.Fatal("E18 produced no rows")
	}
	var s, a, o float64
	for _, row := range tb.Rows {
		for col, dst := range map[int]*float64{1: &s, 2: &a, 3: &o} {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("unparsable cell %q: %v", row[col], err)
			}
			*dst += v
		}
	}
	if !(s < a && a < o) {
		t.Fatalf("mean totals not ordered static < adaptive < online: %.1f / %.1f / %.1f", s, a, o)
	}
}

// TestE12GapZero: metered and analytic costs must agree.
func TestE12GapZero(t *testing.T) {
	tb := E12Netsim(Config{Quick: true})
	if !strings.HasPrefix(tb.Rows[0][3], "0.000") {
		t.Fatalf("netsim gap %q", tb.Rows[0][3])
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tb := Table{
		ID:     "EX",
		Title:  "demo, with comma",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "two, three"}, {"4", `say "hi"`}},
		Notes:  []string{"a note"},
	}
	var md bytes.Buffer
	if err := tb.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### EX", "| a | b |", "| --- | --- |", "*a note*"} {
		if !strings.Contains(md.String(), want) {
			t.Fatalf("markdown missing %q:\n%s", want, md.String())
		}
	}
	var csv bytes.Buffer
	if err := tb.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"demo, with comma"`, `"two, three"`, `"say ""hi"""`, "a,b"} {
		if !strings.Contains(csv.String(), want) {
			t.Fatalf("csv missing %q:\n%s", want, csv.String())
		}
	}
}
