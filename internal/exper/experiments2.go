package exper

import (
	"math"
	"math/rand"
	"time"

	"netplace/internal/core"
	"netplace/internal/facility"
	"netplace/internal/gen"
	"netplace/internal/netsim"
	"netplace/internal/solver"
	"netplace/internal/steiner"
	"netplace/internal/workload"
)

// E7MSTvsSteiner measures Claim 2's engine: the metric-closure MST over a
// copy set costs at most twice the exact minimum Steiner tree.
func E7MSTvsSteiner(cfg Config) Table {
	t := Table{
		ID:     "E7",
		Title:  "MST multicast vs exact Steiner multicast (Claim 2: factor <= 2)",
		Header: []string{"topology", "trials", "mean ratio", "max ratio", "bound"},
		Notes:  []string{"random copy sets of size 2..7; exact trees via Dreyfus–Wagner"},
	}
	trials := cfg.trials(40, 8)
	for _, topo := range []string{"er", "geometric", "grid", "ring"} {
		var sum, max float64
		count := 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(500 + trial)))
			g, err := gen.Build(topo, 12, rng)
			if err != nil {
				panic(err)
			}
			n := g.N()
			dist := g.AllPairs()
			k := 2 + rng.Intn(6)
			if k > n {
				k = n
			}
			terms := rng.Perm(n)[:k]
			mst := steiner.ApproxMST(dist, terms)
			exact := steiner.ExactMetric(dist, terms)
			if exact <= 0 {
				continue
			}
			r := mst / exact
			sum += r
			max = math.Max(max, r)
			count++
		}
		if count == 0 {
			continue
		}
		t.AddRow(topo, d(count), f3(sum/float64(count)), f3(max), "2.000")
	}
	return t
}

// E8RestrictedGap measures Lemma 1: the exact restricted optimum against
// the exact unrestricted optimum; the lemma proves a factor <= 4.
func E8RestrictedGap(cfg Config) Table {
	t := Table{
		ID:     "E8",
		Title:  "restricted vs unrestricted optimum (Lemma 1: C_OPTW <= 4 C_OPT)",
		Header: []string{"topology", "trials", "mean ratio", "max ratio", "bound"},
		Notes: []string{
			"restricted: shared MST multicast per write; unrestricted: per-write optimal Steiner sets",
		},
	}
	trials := cfg.trials(25, 5)
	for _, topo := range []string{"random-tree", "ring", "er", "clustered"} {
		var sum, max float64
		count := 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(8100 + trial)))
			in := smallInstance(rng, topo, 9, 0.5)
			r := solver.OptimalRestricted(in)[0].Cost
			u := solver.OptimalUnrestricted(in)[0].Cost
			if u <= 0 {
				continue
			}
			ratio := r / u
			sum += ratio
			max = math.Max(max, ratio)
			count++
		}
		if count == 0 {
			continue
		}
		t.AddRow(topo, d(count), f3(sum/float64(count)), f3(max), "4.000")
	}
	return t
}

// E9Scale measures the Section 2 pipeline's wall time as the network and
// object count grow (the paper claims polynomial time; the table shows the
// practical profile, dominated by all-pairs shortest paths and phase 1).
func E9Scale(cfg Config) Table {
	t := Table{
		ID:     "E9",
		Title:  "approximation algorithm scalability (clustered networks)",
		Header: []string{"n", "objects", "copies/obj", "total time", "time/object"},
		Notes:  []string{"greedy facility-location phase dominates; all-pairs Dijkstra amortised over objects"},
	}
	sizes := []int{60, 120, 240}
	if cfg.Quick {
		sizes = []int{40, 80}
	}
	for _, n := range sizes {
		for _, objs := range []int{1, 4} {
			rng := rand.New(rand.NewSource(int64(n * objs)))
			g, err := gen.Build("clustered", n, rng)
			if err != nil {
				panic(err)
			}
			nn := g.N()
			storage := make([]float64, nn)
			for v := range storage {
				storage[v] = 2 + rng.Float64()*8
			}
			ow := workload.Generate(nn, workload.Spec{Objects: objs, MeanRate: 4, WriteFraction: 0.3, ZipfS: 0.8}, rng)
			in := core.MustInstance(g, storage, ow)
			// Mettu–Plaxton keeps the phase-1 cost near-linear for the
			// scaling run; local search would be quadratic in moves.
			start := time.Now()
			p := core.Approximate(in, core.Options{FL: facility.MettuPlaxton})
			elapsed := time.Since(start)
			copies := 0
			for i := range p.Copies {
				copies += len(p.Copies[i])
			}
			t.AddRow(d(nn), d(objs), f1(float64(copies)/float64(objs)),
				elapsed.Round(time.Millisecond).String(),
				(elapsed / time.Duration(objs)).Round(time.Millisecond).String())
		}
	}
	return t
}

// E10Phases ablates phases 2 and 3 of the algorithm: without phase 2 the
// proper-placement covering constant k1 can blow up (nodes stranded far
// from every copy); without phase 3 redundant clustered copies survive and
// update costs rise.
func E10Phases(cfg Config) Table {
	t := Table{
		ID:     "E10",
		Title:  "phase ablation of the Section 2 algorithm",
		Header: []string{"variant", "mean copies", "mean cost vs full", "worst k1", "worst pair factor"},
		Notes: []string{
			"k1: smallest covering constant (Lemma 8 proves <= 29 for the full algorithm)",
			"pair factor: min distance between copies over max(4·rw); >= 4 required (k2 = 2)",
		},
	}
	trials := cfg.trials(25, 5)
	type variant struct {
		name string
		opt  core.Options
	}
	variants := []variant{
		{"full", core.Options{}},
		{"no-phase2", core.Options{SkipPhase2: true}},
		{"no-phase3", core.Options{SkipPhase3: true}},
		{"phase1-only", core.Options{SkipPhase2: true, SkipPhase3: true}},
	}
	// Evaluate all variants on the same instances.
	type agg struct {
		copies  int
		rel     float64
		worstK1 float64
		worstPF float64
		count   int
	}
	res := make([]agg, len(variants))
	for i := range res {
		res[i].worstPF = math.Inf(1)
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1300 + trial)))
		in := smallInstance(rng, "clustered", 18, 0.4)
		obj := &in.Objects[0]
		if obj.Requests().Total() == 0 {
			continue
		}
		full := in.ObjectCost(obj, core.Approximate(in, variants[0].opt).Copies[0]).Total()
		if full <= 0 {
			continue
		}
		for i, v := range variants {
			p := core.Approximate(in, v.opt)
			cost := in.ObjectCost(obj, p.Copies[0]).Total()
			rep := in.CheckProper(obj, p.Copies[0])
			res[i].copies += len(p.Copies[0])
			res[i].rel += cost / full
			res[i].worstK1 = math.Max(res[i].worstK1, rep.MaxK1)
			if rep.Copies > 1 {
				res[i].worstPF = math.Min(res[i].worstPF, rep.MinPairFactor)
			}
			res[i].count++
		}
	}
	for i, v := range variants {
		r := res[i]
		if r.count == 0 {
			continue
		}
		pf := "n/a (single copies)"
		if !math.IsInf(r.worstPF, 1) {
			pf = f2(r.worstPF)
		}
		t.AddRow(v.name, f2(float64(r.copies)/float64(r.count)), f3(r.rel/float64(r.count)), f2(r.worstK1), pf)
	}
	return t
}

// E11FLChoice ablates the phase-1 facility location algorithm: Lemma 9 ties
// the storage-cost guarantee to the FL approximation factor f, but any
// constant-factor algorithm yields a constant overall.
func E11FLChoice(cfg Config) Table {
	t := Table{
		ID:     "E11",
		Title:  "phase-1 facility location algorithm ablation",
		Header: []string{"fl algorithm", "trials", "mean vs OPT_R", "max vs OPT_R", "mean copies"},
		Notes:  []string{"same instances across rows; OPT_R as in E1"},
	}
	trials := cfg.trials(20, 4)
	solvers := []struct {
		name string
		fn   facility.Solver
	}{
		{"local-search", facility.LocalSearch},
		{"jain-vazirani", facility.JainVazirani},
		{"mettu-plaxton", facility.MettuPlaxton},
		{"greedy", facility.Greedy},
	}
	for _, s := range solvers {
		var sum, max float64
		copies, count := 0, 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(2600 + trial)))
			in := smallInstance(rng, "er", 10, 0.3)
			if in.Objects[0].Requests().Total() == 0 {
				continue
			}
			p := core.Approximate(in, core.Options{FL: s.fn})
			cost := in.ObjectCost(&in.Objects[0], p.Copies[0]).Total()
			opt := solver.OptimalRestricted(in)[0].Cost
			if opt <= 0 {
				continue
			}
			r := cost / opt
			sum += r
			max = math.Max(max, r)
			copies += len(p.Copies[0])
			count++
		}
		if count == 0 {
			continue
		}
		t.AddRow(s.name, d(count), f3(sum/float64(count)), f3(max), f2(float64(copies)/float64(count)))
	}
	return t
}

// E12Netsim replays workloads message-by-message and checks the metered
// bill equals the analytic objective the algorithms optimise.
func E12Netsim(cfg Config) Table {
	t := Table{
		ID:     "E12",
		Title:  "discrete-event replay vs analytic cost (model validation)",
		Header: []string{"trials", "requests", "messages", "max rel gap", "mean hops/request"},
		Notes:  []string{"gap must be 0 up to float tolerance: the simulator meters the closed form"},
	}
	trials := cfg.trials(20, 4)
	var requests, messages int64
	maxGap := 0.0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(660 + trial)))
		in := smallInstance(rng, "geometric", 14, 0.3)
		p := core.Approximate(in, core.Options{})
		sim, err := netsim.New(in, p)
		if err != nil {
			panic(err)
		}
		st := sim.Run()
		analytic := in.Cost(p).Total()
		if analytic > 0 {
			maxGap = math.Max(maxGap, math.Abs(st.Total()-analytic)/analytic)
		}
		requests += st.Requests
		messages += st.Messages
	}
	hops := 0.0
	if requests > 0 {
		hops = float64(messages) / float64(requests)
	}
	t.AddRow(d(trials), d(int(requests)), d(int(messages)), f3(maxGap)+" (want 0)", f2(hops))
	return t
}
