package exper

import (
	"math/rand"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/stream"
	"netplace/internal/workload"
)

// E18AdaptiveStreaming compares the three strategy classes on
// drifting-demand traces: the clairvoyant static algorithm (placed once
// from the true average tables), the counter-based online strategy, and
// the streaming adaptive engine (windowed estimates, epoch re-solve
// through the incremental demand-patch path, hysteresis). All three are
// priced with identical pro-rata accounting on the same trace
// (stream.Compare), so the ratios are directly comparable: the adaptive
// engine should land between clairvoyance and counting — it pays an
// estimation lag and migration fees the static solver never sees, but
// recovers most of the frequency knowledge the online strategy lacks.
// (Extension experiment: the paper treats only the static problem.)
func E18AdaptiveStreaming(cfg Config) Table {
	t := Table{
		ID:     "E18",
		Title:  "streaming adaptive engine vs static (clairvoyant) and online on drifting demand",
		Header: []string{"trial", "static", "adaptive", "online", "adaptive/static", "online/static", "moves"},
		Notes: []string{
			"two-phase drift: hotspot demand migrates between disjoint node groups mid-trace",
			"adaptive: 50-event epochs, 4-epoch sliding window, default hysteresis (payback 2)",
			"identical pro-rata accounting for all three (stream.Compare); migration fees included",
			"individual drifts can favour any strategy (a tracker may even beat the clairvoyant",
			"average); the claim — static < adaptive < online — holds on the trial means",
		},
	}
	trials := cfg.trials(5, 2)
	events := 600
	streamCfg := stream.Config{Epoch: 50, Window: 4}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(4242 + trial)))
		g := gen.Clustered(gen.ClusteredParams{
			Clusters: 4, ClusterSize: 5, IntraWeight: 0.3, InterWeight: 3, Backbone: 0.3,
		}, rng)
		n := g.N()
		storage := make([]float64, n)
		for v := range storage {
			storage[v] = 2 + rng.Float64()*2
		}
		avg, seq := stream.Drift(n, 2, events, rng, func(phase int) []core.Object {
			r2 := rand.New(rand.NewSource(int64(1000 + 10*trial + phase)))
			return workload.Generate(n, workload.Spec{
				Objects: 2, MeanRate: 3, WriteFraction: 0.15, ZipfS: 0.8,
				Hotspot: 0.7, HotspotNodes: 5,
			}, r2)
		})
		if len(seq) == 0 {
			continue
		}
		in := core.MustInstance(g, storage, avg)
		cmp := stream.Compare(in, seq, streamCfg)
		s, a, o := cmp.Static.Total(), cmp.Adaptive.Total(), cmp.Online.Total()
		if s <= 0 {
			continue
		}
		t.AddRow(d(trial), f1(s), f1(a), f1(o), f3(a/s), f3(o/s), d(cmp.Adaptive.Moves))
	}
	return t
}
