package exper

import (
	"math"
	"math/rand"

	"netplace/internal/capacity"
	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/workload"
)

// E15Capacity sweeps memory-capacity pressure in the read-only capacitated
// extension (Baev–Rajaraman's setting from the related work): as per-node
// capacity shrinks toward one copy per node, placements are forced off
// their preferred nodes and the cost rises over the uncapacitated optimum.
func E15Capacity(cfg Config) Table {
	t := Table{
		ID:     "E15",
		Title:  "capacitated read-only placement vs capacity pressure (extension, cf. Baev–Rajaraman [3])",
		Header: []string{"cap/node", "feasible", "cost vs uncap", "copies total", "nodes saturated"},
		Notes: []string{
			"uncapacitated reference: greedy-add on the same instance (capacity = ∞)",
			"combinatorial local search with cross-object exchanges, not the LP rounding of [3]",
		},
	}
	rng := rand.New(rand.NewSource(4040))
	n := 14
	objects := 8
	if cfg.Quick {
		n, objects = 10, 5
	}
	g := gen.ErdosRenyi(n, 0.4, rng, gen.UniformWeights(rng, 1, 5))
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 1 + rng.Float64()*4
	}
	objs := workload.Generate(n, workload.Spec{Objects: objects, MeanRate: 6, ZipfS: 0.7}, rng)
	in := core.MustInstance(g, storage, objs)
	base := in.Cost(core.GreedyAdd(in)).Total()

	for _, capPer := range []int{objects, 4, 2, 1} {
		caps := make([]int, n)
		for v := range caps {
			caps[v] = capPer
		}
		p := &capacity.Problem{In: in, Cap: caps}
		pl, err := capacity.Solve(p)
		if err != nil {
			t.AddRow(d(capPer), "no", "-", "-", "-")
			continue
		}
		copies, saturated := 0, 0
		used := make([]int, n)
		for _, set := range pl.Copies {
			copies += len(set)
			for _, v := range set {
				used[v]++
			}
		}
		for v := range used {
			if used[v] == capPer {
				saturated++
			}
		}
		rel := math.Inf(1)
		if base > 0 {
			rel = p.Cost(pl) / base
		}
		t.AddRow(d(capPer), "yes", f3(rel), d(copies), d(saturated))
	}
	return t
}

// E16Sizes exercises the paper's non-uniform model: per-byte fees with
// heterogeneous object sizes. Two invariants are reported: per-object
// placements are size-invariant (the argmin does not see the common
// factor), and total bills decompose linearly in size.
func E16Sizes(cfg Config) Table {
	t := Table{
		ID:     "E16",
		Title:  "non-uniform object sizes (per-byte fees): invariance and billing",
		Header: []string{"size spread", "objects", "placements size-invariant", "max bill gap", "mean copies"},
		Notes: []string{
			"paper (§1.1): \"all our results hold also in a non-uniform model\"",
			"bill gap: |cost(sized) - size*cost(unit)| relative, must be 0",
		},
	}
	trials := cfg.trials(10, 3)
	for _, spread := range []float64{1, 4, 16} {
		invariant := 0
		maxGap := 0.0
		copies, count := 0, 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(7600 + trial)))
			g, err := gen.Build("clustered", 20, rng)
			if err != nil {
				panic(err)
			}
			n := g.N()
			storage := make([]float64, n)
			for v := range storage {
				storage[v] = 2 + rng.Float64()*5
			}
			objs := workload.Generate(n, workload.Spec{Objects: 3, MeanRate: 4, WriteFraction: 0.25, ZipfS: 0.5, SizeSpread: spread}, rng)
			in := core.MustInstance(g, storage, objs)
			p := core.Approximate(in, core.Options{})

			// unit-size twin
			unitObjs := make([]core.Object, len(objs))
			for i := range objs {
				unitObjs[i] = core.Object{Name: objs[i].Name, Reads: objs[i].Reads, Writes: objs[i].Writes}
			}
			uin := core.MustInstance(g.Clone(), storage, unitObjs)
			up := core.Approximate(uin, core.Options{})

			same := true
			for i := range p.Copies {
				if !equalSets(p.Copies[i], up.Copies[i]) {
					same = false
				}
				copies += len(p.Copies[i])
				count++
				sized := in.ObjectCost(&in.Objects[i], p.Copies[i]).Total()
				unit := uin.ObjectCost(&uin.Objects[i], p.Copies[i]).Total()
				want := in.Objects[i].Scale() * unit
				if want > 0 {
					if gap := math.Abs(sized-want) / want; gap > maxGap {
						maxGap = gap
					}
				}
			}
			if same {
				invariant++
			}
		}
		t.AddRow(f1(spread), d(count), d(invariant)+"/"+d(trials), f3(maxGap)+" (want 0)", f2(float64(copies)/float64(count)))
	}
	return t
}
