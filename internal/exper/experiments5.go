package exper

import (
	"math/rand"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/netsim"
	"netplace/internal/workload"
)

// E17Latency measures request latency under finite link bandwidths: the
// same placements that minimise fees also spread traffic across replicas,
// which shows up as tail latency under contention. Full replication pays
// for its update storms; a single site serialises every reader through one
// uplink. (Extension experiment: the paper's model is cost-only.)
func E17Latency(cfg Config) Table {
	t := Table{
		ID:     "E17",
		Title:  "request latency under finite bandwidth (queued replay)",
		Header: []string{"strategy", "copies", "fee total", "mean lat", "p95 lat", "max lat", "busiest link busy"},
		Notes: []string{
			"clustered network; backbone links 10x the access bandwidth; burst injection",
			"latency counts queueing + transfer (propagation 0), a write completes with its last update delivery",
		},
	}
	rng := rand.New(rand.NewSource(1717))
	clusters := 6
	if cfg.Quick {
		clusters = 4
	}
	g := gen.Clustered(gen.ClusteredParams{Clusters: clusters, ClusterSize: 5, IntraWeight: 0.3, InterWeight: 3, Backbone: 0.3}, rng)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 3
	}
	objs := workload.Generate(n, workload.Spec{Objects: 2, MeanRate: 4, WriteFraction: 0.15, ZipfS: 0.6}, rng)
	in := core.MustInstance(g, storage, objs)

	bw := make([]float64, g.M())
	for id, e := range g.Edges() {
		if e.U < clusters && e.V < clusters {
			bw[id] = 10 // backbone
		} else {
			bw[id] = 1 // access link
		}
	}

	strategies := []struct {
		name string
		p    core.Placement
	}{
		{"approx", core.Approximate(in, core.Options{})},
		{"single-best", core.SingleBest(in)},
		{"full-replication", core.FullReplication(in)},
		{"greedy-add", core.GreedyAdd(in)},
	}
	for _, s := range strategies {
		sim, err := netsim.New(in, s.p)
		if err != nil {
			panic(err)
		}
		st, err := sim.RunQueued(netsim.QueueConfig{Bandwidth: bw})
		if err != nil {
			panic(err)
		}
		copies := 0
		for _, set := range s.p.Copies {
			copies += len(set)
		}
		t.AddRow(s.name, d(copies), f1(st.Total()),
			f2(st.MeanLatency), f2(st.P95Latency), f2(st.MaxLatency), f1(st.BusyTime))
	}
	return t
}
