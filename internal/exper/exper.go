// Package exper implements the evaluation suite E1–E18.
// The paper itself is purely theoretical (no tables or figures),
// so each experiment here is the synthetic equivalent: it measures a stated
// theorem, lemma, or claim — approximation factors against exact optima,
// runtime scaling against the proven complexity, and the qualitative
// behaviour (replication vs. write share, storage-fee sensitivity) that the
// paper's introduction motivates. cmd/experiments regenerates EXPERIMENTS.md
// from these tables; the root bench_test.go exposes one benchmark per
// experiment.
package exper

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid of rows, printed in the
// aligned plain-text form EXPERIMENTS.md embeds.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Markdown writes the table as GitHub-flavoured markdown.
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as RFC-4180-ish CSV (quotes only where needed),
// with a leading comment line carrying the id and title.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s,%s\n", t.ID, csvQuote(t.Title)); err != nil {
		return err
	}
	row := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			quoted[i] = csvQuote(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func d(x int) string      { return fmt.Sprintf("%d", x) }

// Config scales the experiment suite: Quick shrinks instance counts and
// sizes so benchmarks stay tractable; the full suite is what
// cmd/experiments runs.
type Config struct {
	Quick bool
}

func (c Config) trials(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// All runs every experiment in order.
func All(cfg Config) []Table {
	return []Table{
		E1ApproxRatio(cfg),
		E2TreeOptimality(cfg),
		E2TreeScaling(cfg),
		E3WriteSweep(cfg),
		E4StorageSweep(cfg),
		E5Baselines(cfg),
		E6LoadModel(cfg),
		E7MSTvsSteiner(cfg),
		E8RestrictedGap(cfg),
		E9Scale(cfg),
		E10Phases(cfg),
		E11FLChoice(cfg),
		E12Netsim(cfg),
		E13Online(cfg),
		E14Congestion(cfg),
		E15Capacity(cfg),
		E16Sizes(cfg),
		E17Latency(cfg),
		E18AdaptiveStreaming(cfg),
	}
}
