package encode

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/graph"
	"netplace/internal/workload"
)

func sample(rng *rand.Rand) *core.Instance {
	g := gen.ErdosRenyi(8, 0.4, rng, gen.UniformWeights(rng, 1, 4))
	storage := make([]float64, 8)
	for v := range storage {
		storage[v] = rng.Float64() * 9
	}
	objs := workload.Generate(8, workload.Spec{Objects: 3, MeanRate: 2, WriteFraction: 0.3, ZipfS: 0.8}, rng)
	return core.MustInstance(g, storage, objs)
}

func TestInstanceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := sample(rng)
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.G.N() != in.G.N() || back.G.M() != in.G.M() {
		t.Fatal("graph shape changed in round trip")
	}
	if !reflect.DeepEqual(back.Storage, in.Storage) {
		t.Fatal("storage fees changed")
	}
	if len(back.Objects) != len(in.Objects) {
		t.Fatal("object count changed")
	}
	for i := range in.Objects {
		if !reflect.DeepEqual(back.Objects[i].Reads, in.Objects[i].Reads) ||
			!reflect.DeepEqual(back.Objects[i].Writes, in.Objects[i].Writes) ||
			back.Objects[i].Name != in.Objects[i].Name {
			t.Fatalf("object %d changed", i)
		}
	}
}

func TestHashInstanceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		in := sample(rng)
		want := HashInstance(in)
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatal(err)
		}
		back, err := ReadInstance(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got := HashInstance(back); got != want {
			t.Fatalf("trial %d: hash changed across JSON round trip: %s vs %s", trial, got, want)
		}
		// Hashing must be repeatable on the same instance (no dependence on
		// lazily built metric state).
		in.Metric()
		if got := HashInstance(in); got != want {
			t.Fatalf("trial %d: hash changed after oracle construction", trial)
		}
	}
}

func TestHashInstanceEdgeOrderInvariant(t *testing.T) {
	build := func(perm [][3]float64) *core.Instance {
		g := graph.New(4)
		for _, e := range perm {
			g.AddEdge(int(e[0]), int(e[1]), e[2])
		}
		storage := []float64{1, 2, 3, 4}
		obj := core.Object{Name: "x", Reads: []int64{1, 0, 2, 0}, Writes: []int64{0, 1, 0, 0}}
		return core.MustInstance(g, storage, []core.Object{obj})
	}
	a := build([][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}})
	b := build([][3]float64{{3, 2, 3}, {2, 1, 2}, {1, 0, 1}})
	if HashInstance(a) != HashInstance(b) {
		t.Fatal("hash depends on edge insertion order or orientation")
	}
	c := build([][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 3, 3.5}})
	if HashInstance(a) == HashInstance(c) {
		t.Fatal("hash ignores edge fees")
	}
}

func TestPlacementRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := sample(rng)
	p := core.Placement{Copies: [][]int{{0, 3}, {5}, {1, 2, 7}}}
	var buf bytes.Buffer
	if err := WritePlacement(&buf, in, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlacement(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Copies, p.Copies) {
		t.Fatalf("placement changed: %v vs %v", back.Copies, p.Copies)
	}
}

func TestReadInstanceRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"nodes":0}`,
		`{"nodes":2,"edges":[{"u":0,"v":5,"fee":1}],"storage":[1,1]}`,
		`{"nodes":2,"edges":[{"u":0,"v":0,"fee":1}],"storage":[1,1]}`,
		`{"nodes":2,"edges":[{"u":0,"v":1,"fee":-1}],"storage":[1,1]}`,
		`{"nodes":2,"edges":[{"u":0,"v":1,"fee":1}],"storage":[1]}`,
		`not json`,
	}
	for i, c := range cases {
		if _, err := ReadInstance(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %s", i, c)
		}
	}
}

func TestReadPlacementMissingObject(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := sample(rng)
	if _, err := ReadPlacement(strings.NewReader(`{"copies":{}}`), in); err == nil {
		t.Fatal("placement without objects accepted")
	}
}
