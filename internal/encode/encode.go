// Package encode serialises instances and placements as JSON — the wire
// format shared by the CLI tools (cmd/gennet writes instances, cmd/placer
// reads them and writes placements) and the cmd/netplaced placement
// service. It also provides stable content hashing of instances
// (HashInstance), which the service uses as registry identity and as the
// instance half of its solve-cache key.
package encode

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"netplace/internal/core"
	"netplace/internal/graph"
)

// EdgeJSON is one undirected edge with its transmission fee.
type EdgeJSON struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"fee"`
}

// ObjectJSON is one shared object's request frequencies and size (bytes per
// copy/transfer; 0 means the uniform default of 1).
type ObjectJSON struct {
	Name   string  `json:"name"`
	Size   float64 `json:"size,omitempty"`
	Reads  []int64 `json:"reads"`
	Writes []int64 `json:"writes"`
}

// InstanceJSON is the on-disk instance format.
type InstanceJSON struct {
	Nodes   int          `json:"nodes"`
	Edges   []EdgeJSON   `json:"edges"`
	Storage []float64    `json:"storage"`
	Objects []ObjectJSON `json:"objects"`
}

// PlacementJSON is the on-disk placement format: per object name, the list
// of copy-holding nodes.
type PlacementJSON struct {
	Copies map[string][]int `json:"copies"`
}

// InstanceJSONOf converts an instance to its wire representation.
func InstanceJSONOf(in *core.Instance) InstanceJSON {
	ij := InstanceJSON{Nodes: in.G.N(), Storage: in.Storage}
	for _, e := range in.G.Edges() {
		ij.Edges = append(ij.Edges, EdgeJSON{U: e.U, V: e.V, W: e.W})
	}
	for i := range in.Objects {
		o := &in.Objects[i]
		ij.Objects = append(ij.Objects, ObjectJSON{Name: o.Name, Size: o.Size, Reads: o.Reads, Writes: o.Writes})
	}
	return ij
}

// Instance validates the wire representation and assembles an instance.
func (ij InstanceJSON) Instance() (*core.Instance, error) {
	if ij.Nodes <= 0 {
		return nil, fmt.Errorf("encode: instance has %d nodes", ij.Nodes)
	}
	g := graph.New(ij.Nodes)
	for _, e := range ij.Edges {
		if e.U < 0 || e.U >= ij.Nodes || e.V < 0 || e.V >= ij.Nodes || e.U == e.V || e.W < 0 {
			return nil, fmt.Errorf("encode: bad edge %+v", e)
		}
		g.AddEdge(e.U, e.V, e.W)
	}
	objs := make([]core.Object, len(ij.Objects))
	for i, oj := range ij.Objects {
		objs[i] = core.Object{Name: oj.Name, Size: oj.Size, Reads: oj.Reads, Writes: oj.Writes}
	}
	return core.NewInstance(g, ij.Storage, objs)
}

// WriteInstance serialises an instance.
func WriteInstance(w io.Writer, in *core.Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(InstanceJSONOf(in))
}

// ReadInstance deserialises and validates an instance.
func ReadInstance(r io.Reader) (*core.Instance, error) {
	var ij InstanceJSON
	if err := json.NewDecoder(r).Decode(&ij); err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	return ij.Instance()
}

// PlacementJSONOf converts a validated placement to its wire
// representation, keyed by the instance's object names (object-<index> for
// unnamed objects).
func PlacementJSONOf(in *core.Instance, p core.Placement) (PlacementJSON, error) {
	if err := p.Validate(in); err != nil {
		return PlacementJSON{}, err
	}
	pj := PlacementJSON{Copies: make(map[string][]int, len(in.Objects))}
	for i := range in.Objects {
		pj.Copies[objectName(in, i)] = p.Copies[i]
	}
	return pj, nil
}

// Placement resolves the wire representation against an instance (objects
// are matched by name, falling back to object-<index>) and validates it.
func (pj PlacementJSON) Placement(in *core.Instance) (core.Placement, error) {
	p := core.Placement{Copies: make([][]int, len(in.Objects))}
	for i := range in.Objects {
		name := objectName(in, i)
		copies, ok := pj.Copies[name]
		if !ok {
			return core.Placement{}, fmt.Errorf("encode: placement missing object %q", name)
		}
		p.Copies[i] = copies
	}
	if err := p.Validate(in); err != nil {
		return core.Placement{}, err
	}
	return p, nil
}

// objectName is the wire name of object i: its Name, or object-<i>.
func objectName(in *core.Instance, i int) string {
	return ObjectName(&in.Objects[i], i)
}

// ObjectName is the wire name of object o at index i: its Name, or
// object-<i> when unnamed. Every component that keys objects by name on
// the wire (placements, what-if patches, traces, session events) must
// use this one rule.
func ObjectName(o *core.Object, i int) string {
	if o.Name != "" {
		return o.Name
	}
	return fmt.Sprintf("object-%d", i)
}

// WritePlacement serialises a placement using the instance's object names.
func WritePlacement(w io.Writer, in *core.Instance, p core.Placement) error {
	pj, err := PlacementJSONOf(in, p)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pj)
}

// HashInstance returns a stable hex SHA-256 content hash of an instance.
// The hash depends only on the problem the instance describes — node count,
// the undirected edge multiset with fees, storage fees, and each object's
// name, size and frequency vectors — not on edge insertion order, metric
// backend, or any lazily computed state. Serialising an instance with
// WriteInstance and reading it back therefore preserves the hash, which is
// what lets the placement service use it as cache identity.
func HashInstance(in *core.Instance) string {
	h := sha256.New()
	buf := make([]byte, 8)
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf, uint64(int64(v)))
		h.Write(buf)
	}
	writeFloat := func(f float64) {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(f))
		h.Write(buf)
	}
	writeString := func(s string) {
		writeInt(len(s))
		io.WriteString(h, s)
	}
	writeInt(in.G.N())
	// Canonicalise the edge list: orient each edge low-high and sort by
	// (u, v, fee) so graphs built in different orders hash identically.
	edges := append([]graph.Edge(nil), in.G.Edges()...)
	for i, e := range edges {
		if e.U > e.V {
			edges[i].U, edges[i].V = e.V, e.U
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		if edges[a].V != edges[b].V {
			return edges[a].V < edges[b].V
		}
		return edges[a].W < edges[b].W
	})
	writeInt(len(edges))
	for _, e := range edges {
		writeInt(e.U)
		writeInt(e.V)
		writeFloat(e.W)
	}
	writeInt(len(in.Storage))
	for _, s := range in.Storage {
		writeFloat(s)
	}
	writeInt(len(in.Objects))
	for i := range in.Objects {
		o := &in.Objects[i]
		writeString(o.Name)
		writeFloat(o.Scale())
		writeInt(len(o.Reads))
		for _, r := range o.Reads {
			writeInt(int(r))
		}
		writeInt(len(o.Writes))
		for _, w := range o.Writes {
			writeInt(int(w))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ReadPlacement deserialises a placement against an instance (objects are
// matched by name, falling back to object-<index>).
func ReadPlacement(r io.Reader, in *core.Instance) (core.Placement, error) {
	var pj PlacementJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return core.Placement{}, fmt.Errorf("encode: %w", err)
	}
	return pj.Placement(in)
}
