// Package encode serialises instances and placements as JSON for the CLI
// tools (cmd/gennet writes instances, cmd/placer reads them and writes
// placements).
package encode

import (
	"encoding/json"
	"fmt"
	"io"

	"netplace/internal/core"
	"netplace/internal/graph"
)

// EdgeJSON is one undirected edge with its transmission fee.
type EdgeJSON struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"fee"`
}

// ObjectJSON is one shared object's request frequencies and size (bytes per
// copy/transfer; 0 means the uniform default of 1).
type ObjectJSON struct {
	Name   string  `json:"name"`
	Size   float64 `json:"size,omitempty"`
	Reads  []int64 `json:"reads"`
	Writes []int64 `json:"writes"`
}

// InstanceJSON is the on-disk instance format.
type InstanceJSON struct {
	Nodes   int          `json:"nodes"`
	Edges   []EdgeJSON   `json:"edges"`
	Storage []float64    `json:"storage"`
	Objects []ObjectJSON `json:"objects"`
}

// PlacementJSON is the on-disk placement format: per object name, the list
// of copy-holding nodes.
type PlacementJSON struct {
	Copies map[string][]int `json:"copies"`
}

// WriteInstance serialises an instance.
func WriteInstance(w io.Writer, in *core.Instance) error {
	ij := InstanceJSON{Nodes: in.G.N(), Storage: in.Storage}
	for _, e := range in.G.Edges() {
		ij.Edges = append(ij.Edges, EdgeJSON{U: e.U, V: e.V, W: e.W})
	}
	for i := range in.Objects {
		o := &in.Objects[i]
		ij.Objects = append(ij.Objects, ObjectJSON{Name: o.Name, Size: o.Size, Reads: o.Reads, Writes: o.Writes})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ij)
}

// ReadInstance deserialises and validates an instance.
func ReadInstance(r io.Reader) (*core.Instance, error) {
	var ij InstanceJSON
	if err := json.NewDecoder(r).Decode(&ij); err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	if ij.Nodes <= 0 {
		return nil, fmt.Errorf("encode: instance has %d nodes", ij.Nodes)
	}
	g := graph.New(ij.Nodes)
	for _, e := range ij.Edges {
		if e.U < 0 || e.U >= ij.Nodes || e.V < 0 || e.V >= ij.Nodes || e.U == e.V || e.W < 0 {
			return nil, fmt.Errorf("encode: bad edge %+v", e)
		}
		g.AddEdge(e.U, e.V, e.W)
	}
	objs := make([]core.Object, len(ij.Objects))
	for i, oj := range ij.Objects {
		objs[i] = core.Object{Name: oj.Name, Size: oj.Size, Reads: oj.Reads, Writes: oj.Writes}
	}
	return core.NewInstance(g, ij.Storage, objs)
}

// WritePlacement serialises a placement using the instance's object names.
func WritePlacement(w io.Writer, in *core.Instance, p core.Placement) error {
	if err := p.Validate(in); err != nil {
		return err
	}
	pj := PlacementJSON{Copies: make(map[string][]int, len(in.Objects))}
	for i := range in.Objects {
		name := in.Objects[i].Name
		if name == "" {
			name = fmt.Sprintf("object-%d", i)
		}
		pj.Copies[name] = p.Copies[i]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pj)
}

// ReadPlacement deserialises a placement against an instance (objects are
// matched by name, falling back to object-<index>).
func ReadPlacement(r io.Reader, in *core.Instance) (core.Placement, error) {
	var pj PlacementJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return core.Placement{}, fmt.Errorf("encode: %w", err)
	}
	p := core.Placement{Copies: make([][]int, len(in.Objects))}
	for i := range in.Objects {
		name := in.Objects[i].Name
		if name == "" {
			name = fmt.Sprintf("object-%d", i)
		}
		copies, ok := pj.Copies[name]
		if !ok {
			return core.Placement{}, fmt.Errorf("encode: placement missing object %q", name)
		}
		p.Copies[i] = copies
	}
	if err := p.Validate(in); err != nil {
		return core.Placement{}, err
	}
	return p, nil
}
