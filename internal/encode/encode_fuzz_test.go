package encode

import (
	"bytes"
	"encoding/json"
	"testing"
)

// nodeCap bounds the node counts the instance fuzz target will build: the
// wire format allocates O(nodes) adjacency up front, so a ten-digit
// "nodes" field is a capacity question, not a parsing one.
const nodeCap = 1 << 12

// FuzzReadInstance: arbitrary bytes must never panic the instance
// decoder, and every accepted instance must survive a write/read round
// trip with its content hash — the service's registry identity — intact.
func FuzzReadInstance(f *testing.F) {
	seeds := []string{
		"",
		"{}",
		"null",
		`{"nodes":0}`,
		`{"nodes":2,"edges":[{"u":0,"v":1,"fee":1}],"storage":[1,1],"objects":[{"name":"a","reads":[1,0],"writes":[0,0]}]}`,
		`{"nodes":2,"edges":[{"u":0,"v":1,"fee":1}],"storage":[1,1],"objects":[{"reads":[1,0],"writes":[0,1],"size":2.5}]}`,
		`{"nodes":3,"edges":[{"u":0,"v":1,"fee":1},{"u":1,"v":2,"fee":0.5}],"storage":[1,2,3],"objects":[]}`,
		`{"nodes":2,"edges":[{"u":0,"v":0,"fee":1}]}`,  // self loop
		`{"nodes":2,"edges":[{"u":0,"v":5,"fee":1}]}`,  // endpoint out of range
		`{"nodes":2,"edges":[{"u":0,"v":1,"fee":-1}]}`, // negative fee
		`{"nodes":2,"storage":[1]}`, // storage length mismatch
		`{"nodes":2,"storage":[1,1],"objects":[{"reads":[1],"writes":[0,0]}]}`, // vector length mismatch
		`{"nodes":2,"storage":[-1,1]}`,                                         // negative storage fee
		`{"nodes":2,"storage":[1,1],"objects":[{"reads":[-1,0],"writes":[0,0]}]}`,
		`{"nodes":1e9}`,
		`{"nodes":2,"edges"`, // truncated
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Skip inputs whose declared node count is a pure allocation
		// stress; everything structural still fuzzes below the cap.
		var probe struct {
			Nodes int `json:"nodes"`
		}
		if err := json.Unmarshal(data, &probe); err == nil && probe.Nodes > nodeCap {
			t.Skip("node count beyond fuzz cap")
		}
		in, err := ReadInstance(bytes.NewReader(data))
		if err != nil {
			return
		}
		hash := HashInstance(in)
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatalf("accepted instance failed to re-encode: %v", err)
		}
		back, err := ReadInstance(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded instance failed to parse: %v", err)
		}
		if got := HashInstance(back); got != hash {
			t.Fatalf("content hash changed across round trip: %s -> %s", hash, got)
		}
		if back.N() != in.N() || len(back.Objects) != len(in.Objects) {
			t.Fatalf("shape changed across round trip: %d/%d nodes, %d/%d objects",
				back.N(), in.N(), len(back.Objects), len(in.Objects))
		}
	})
}
