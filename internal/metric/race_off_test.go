//go:build !race

package metric

// raceEnabled reports that the race detector is active.
const raceEnabled = false
