package metric

import (
	"testing"

	"netplace/internal/gen"
)

// Allocation-regression tests: the pooled kernels must stay allocation-free
// in steady state, or the workspace refactor silently rots. Each test warms
// the relevant pools once, then measures with testing.AllocsPerRun. Under
// -race sync.Pool drops items on purpose, so the tests skip themselves.

// allocGrid is a 20x20 unit grid with a small lazy oracle.
func allocGrid(rows int) *Lazy {
	g := gen.Grid(20, 20, gen.UnitWeights)
	return NewLazy(g, rows)
}

// skipUnderRace skips allocation accounting when the race detector is on.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
}

func TestNearestOfIntoAllocationFree(t *testing.T) {
	skipUnderRace(t)
	l := allocGrid(32)
	sources := []int{3, 57, 211, 399}
	dst := make([]float64, l.N())
	NearestOfInto(l, sources, dst) // warm the scanner pool
	allocs := testing.AllocsPerRun(50, func() {
		NearestOfInto(l, sources, dst)
	})
	if allocs != 0 {
		t.Errorf("NearestOfInto allocates %.1f objects per sweep, want 0", allocs)
	}
}

func TestLazyRowHitAllocationFree(t *testing.T) {
	skipUnderRace(t)
	l := allocGrid(32)
	l.Row(7) // miss: computes and caches
	allocs := testing.AllocsPerRun(50, func() {
		l.Row(7)
	})
	if allocs != 0 {
		t.Errorf("cache-hit Row allocates %.1f objects, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		l.Dist(7, 211)
	})
	if allocs != 0 {
		t.Errorf("cache-hit Dist allocates %.1f objects, want 0", allocs)
	}
}

func TestPairwiseMSTAllocationFree(t *testing.T) {
	skipUnderRace(t)
	l := allocGrid(32)
	points := []int{3, 57, 211, 399, 120}
	PairwiseMST(l, points) // warm the workspace pool and row cache
	allocs := testing.AllocsPerRun(50, func() {
		PairwiseMST(l, points)
	})
	if allocs != 0 {
		t.Errorf("PairwiseMST allocates %.1f objects per call, want 0", allocs)
	}
}

func TestWorkspaceComputeRadiiAllocationFree(t *testing.T) {
	skipUnderRace(t)
	l := allocGrid(32)
	n := l.N()
	req := Requests{Count: make([]int64, n)}
	cs := make([]float64, n)
	for v := 0; v < n; v++ {
		req.Count[v] = int64(v % 3)
		cs[v] = float64(2 + v%5)
	}
	ws := NewWorkspace()
	ws.ComputeRadii(l, req, 10, cs) // warm buffers
	allocs := testing.AllocsPerRun(20, func() {
		ws.ComputeRadii(l, req, 10, cs)
	})
	if allocs != 0 {
		t.Errorf("Workspace.ComputeRadii allocates %.1f objects per call, want 0", allocs)
	}
}
