package metric

import (
	"math"
	"sort"
)

// Kind identifies a distance-oracle backend, letting algorithms choose
// between point-query and scan-based formulations of the same step.
type Kind int

const (
	// KindDense backs distances with a materialized n x n matrix: point
	// queries and rows are free, memory is Θ(n²).
	KindDense Kind = iota
	// KindLazy computes per-source shortest-path rows on demand behind a
	// bounded LRU cache: memory is bounded by the cache budget, point
	// queries cost a cached row.
	KindLazy
	// KindTree answers distances on tree networks in O(1) via LCA depths,
	// with O(n) preprocessing and no distance rows stored at all.
	KindTree
)

// String names the backend kind.
func (k Kind) String() string {
	switch k {
	case KindDense:
		return "dense"
	case KindLazy:
		return "lazy"
	case KindTree:
		return "tree"
	}
	return "unknown"
}

// Oracle is a finite metric over nodes 0..N-1: the shortest-path closure of
// a network's transmission fees, served by a pluggable backend. All
// implementations in this package assume a symmetric metric
// (Dist(u, v) == Dist(v, u)), which holds for undirected networks.
//
// Row returns the full distance row of u; callers must treat it as
// read-only. Backends may cache and evict rows, so callers should not
// retain rows across unrelated operations when memory matters.
type Oracle interface {
	N() int
	Dist(u, v int) float64
	Row(u int) []float64
	Kind() Kind
}

// NearScanner is an optional Oracle capability: visit nodes in
// nondecreasing distance from v, stopping when fn returns false. Graph
// backends implement it with a truncated Dijkstra, so an early-stopping
// scan pays only for the ball it explores.
type NearScanner interface {
	ScanNear(v int, fn func(u int, d float64) bool)
}

// NearestSetInto is an optional Oracle capability: the distance from every
// node to its nearest member of sources in one pass, written into a
// caller-owned buffer of length N so steady-state sweeps allocate nothing.
// Graph backends implement it with a multi-source Dijkstra; all backends
// in this package implement it.
type NearestSetInto interface {
	NearestOfInto(sources []int, dst []float64) []float64
}

// NearImprover is an optional Oracle capability: fold source src into an
// existing nearest-source field near (near[v] = min(near[v], d(src, v))).
// Graph backends implement it with a pruned Dijkstra that explores only the
// region src improves.
type NearImprover interface {
	ImproveNearest(src int, near []float64)
}

// RowBatcher is an optional Oracle capability: materialise the distance
// rows of several nodes in one call. The lazy backend resolves cache hits
// up front and builds the misses with a pool of per-worker scanners —
// batched multi-source row construction — instead of faulting one row at
// a time. workers follows AutoWorkers (negative GOMAXPROCS, 0 size-aware
// auto, positive literal); rows is caller-owned scratch, grown and
// returned like append. Returned rows are backend-shared and read-only,
// and identical to len(us) serial Row calls in every schedule.
type RowBatcher interface {
	RowsInto(us []int, rows [][]float64, workers int) [][]float64
}

// Rows returns the distance rows of the nodes in us, using the oracle's
// batched row construction when available (misses built in parallel
// across workers; see RowBatcher) and one Row fetch per node otherwise.
func Rows(o Oracle, us []int, workers int) [][]float64 {
	rows := make([][]float64, len(us))
	if rb, ok := o.(RowBatcher); ok {
		return rb.RowsInto(us, rows, workers)
	}
	for i, u := range us {
		rows[i] = o.Row(u)
	}
	return rows
}

// ScanNear visits nodes in nondecreasing distance from v, calling
// fn(u, d) until it returns false. It uses the oracle's native scanner when
// available and otherwise sorts the distance row of v (ties broken toward
// the lower node id, matching the historical dense scanner).
func ScanNear(o Oracle, v int, fn func(u int, d float64) bool) {
	if sc, ok := o.(NearScanner); ok {
		sc.ScanNear(v, fn)
		return
	}
	row := o.Row(v)
	n := o.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return row[order[a]] < row[order[b]] })
	for _, u := range order {
		if !fn(u, row[u]) {
			return
		}
	}
}

// NearestOf returns, for every node, the distance to the nearest member of
// sources (+Inf for an empty source set). Backends with a native
// multi-source sweep use it; the fallback folds one source row at a time.
func NearestOf(o Oracle, sources []int) []float64 {
	return NearestOfInto(o, sources, make([]float64, o.N()))
}

// NearestOfInto is NearestOf writing into dst, a caller-owned buffer of
// length o.N(): the allocation-free form for hot sweeps. It returns dst.
func NearestOfInto(o Oracle, sources []int, dst []float64) []float64 {
	if ns, ok := o.(NearestSetInto); ok && len(sources) > 0 {
		return ns.NearestOfInto(sources, dst)
	}
	for v := range dst {
		dst[v] = math.Inf(1)
	}
	for _, s := range sources {
		row := o.Row(s)
		for v, d := range row {
			if d < dst[v] {
				dst[v] = d
			}
		}
	}
	return dst
}

// ImproveNearest folds src into near in place: near[v] = min(near[v],
// d(src, v)).
func ImproveNearest(o Oracle, src int, near []float64) {
	if im, ok := o.(NearImprover); ok {
		im.ImproveNearest(src, near)
		return
	}
	row := o.Row(src)
	for v, d := range row {
		if d < near[v] {
			near[v] = d
		}
	}
}

// NearestIdx returns, for every node, the distance to and index (into
// sources) of its nearest source, ties broken toward the earlier source —
// the deterministic tie-break the restricted-placement machinery relies
// on. Past the auto-parallel threshold with a batching backend the source
// rows are prefetched in one parallel RowsInto call; the fold itself
// stays serial in source order, so the tie-break (and every output byte)
// is unchanged.
func NearestIdx(o Oracle, sources []int) (dist []float64, idx []int) {
	n := o.N()
	dist = make([]float64, n)
	idx = make([]int, n)
	for v := range dist {
		dist[v] = math.Inf(1)
		idx[v] = -1
	}
	var rows [][]float64
	if rb, ok := o.(RowBatcher); ok && len(sources) >= 2 && AutoWorkers(0, n) > 1 {
		rows = rb.RowsInto(sources, nil, 0)
	}
	for i, s := range sources {
		var row []float64
		if rows != nil {
			row = rows[i]
		} else {
			row = o.Row(s)
		}
		for v, d := range row {
			if d < dist[v] {
				dist[v] = d
				idx[v] = i
			}
		}
	}
	return dist, idx
}

// Pairwise extracts the k x k distance matrix over the given points using
// one row fetch per point.
func Pairwise(o Oracle, points []int) [][]float64 {
	k := len(points)
	d := make([][]float64, k)
	for i, p := range points {
		row := o.Row(p)
		d[i] = make([]float64, k)
		for j, q := range points {
			d[i][j] = row[q]
		}
	}
	return d
}

// PairwiseMST returns the weight of a minimum spanning tree over points
// under the oracle metric — the paper's multicast-tree cost for updating a
// copy set. Prim in O(k²) after k row fetches; 0 for k <= 1. Scratch comes
// from a pooled Workspace, so steady-state calls allocate nothing.
func PairwiseMST(o Oracle, points []int) float64 {
	return PairwiseMSTParallel(o, points, 0)
}

// PairwiseMSTParallel is PairwiseMST with an explicit worker knob for the
// row prefetch (0: size-aware auto, 1: serial, negative: all cores); the
// result is bit-identical at every worker count.
func PairwiseMSTParallel(o Oracle, points []int, workers int) float64 {
	ws := wsPool.Get().(*Workspace)
	total := ws.PairwiseMSTParallel(o, points, workers)
	putWorkspace(ws)
	return total
}

// PairwiseMSTTree returns the MST edges (as index pairs into points, parent
// first) plus total weight.
func PairwiseMSTTree(o Oracle, points []int) ([][2]int, float64) {
	if len(points) <= 1 {
		return nil, 0
	}
	var edges [][2]int
	ws := wsPool.Get().(*Workspace)
	total := ws.prim(o, points, &edges, 0)
	putWorkspace(ws)
	return edges, total
}

// Materialize returns the full dense distance matrix of the oracle. It
// defeats the purpose of a lazy backend — Θ(n²) memory — and exists for the
// small-n exact solvers and tests that genuinely need a matrix.
func Materialize(o Oracle) [][]float64 {
	n := o.N()
	d := make([][]float64, n)
	for v := 0; v < n; v++ {
		row := o.Row(v)
		d[v] = make([]float64, n)
		copy(d[v], row)
	}
	return d
}
