// Package metric provides the metric-space view of a network's transmission
// costs and the request-radius machinery of Section 2.1 of the paper: the
// average distance d(v, z) to the z closest requests, the write radius
// rw(v), and the storage radius rs(v) with its storage number zs(v).
package metric

import (
	"math"
	"sort"
)

// Space is a finite metric space over nodes 0..N-1, given by a dense
// distance matrix. It is typically the shortest-path closure of a network's
// edge fees ct (see graph.AllPairs), which the paper shows is a metric.
type Space struct {
	D [][]float64
}

// New wraps a dense distance matrix. The matrix is not copied.
func New(d [][]float64) *Space { return &Space{D: d} }

// N returns the number of points.
func (s *Space) N() int { return len(s.D) }

// Dist returns the distance between u and v.
func (s *Space) Dist(u, v int) float64 { return s.D[u][v] }

// Check verifies the metric axioms up to tolerance eps: non-negativity,
// identity, symmetry, and the triangle inequality. It returns false on the
// first violation. O(n^3); intended for tests.
func (s *Space) Check(eps float64) bool {
	n := s.N()
	for i := 0; i < n; i++ {
		if s.D[i][i] != 0 {
			return false
		}
		for j := 0; j < n; j++ {
			if s.D[i][j] < 0 || math.Abs(s.D[i][j]-s.D[j][i]) > eps {
				return false
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if s.D[i][j] > s.D[i][k]+s.D[k][j]+eps {
					return false
				}
			}
		}
	}
	return true
}

// Median returns the 1-median of the space under non-negative node weights:
// the node v minimising sum_u weight[u] * d(v, u), and that minimum value.
func (s *Space) Median(weight []float64) (int, float64) {
	best, bestCost := -1, math.Inf(1)
	for v := 0; v < s.N(); v++ {
		c := 0.0
		for u := 0; u < s.N(); u++ {
			c += weight[u] * s.D[v][u]
		}
		if c < bestCost {
			best, bestCost = v, c
		}
	}
	return best, bestCost
}

// Requests is the per-node request multiset for one object: Count[u] is the
// number of requests issued at node u (for the radius definitions this is
// fr(u) + fw(u), since a restricted placement does not differentiate reads
// from the read-component of writes).
type Requests struct {
	Count []int64
}

// Total returns the total number of requests.
func (r Requests) Total() int64 {
	var t int64
	for _, c := range r.Count {
		t += c
	}
	return t
}

// Radii holds, for one node v, the quantities defined in Section 2.1.
type Radii struct {
	// RW is the write radius rw(v) = d(v, W): the average distance from v
	// to the W closest requests, W being the total write count.
	RW float64
	// RS is the storage radius rs(v) and ZS the storage number zs(v),
	// chosen such that (zs-1)*rs <= cs(v) < zs*rs and
	// d(v, zs-1) <= rs < d(v, zs).
	RS float64
	ZS int64
}

// scanner computes d(v, z) for increasing z in O(n log n) per node by
// sorting nodes by distance from v and walking the request multiset with a
// running prefix sum.
type scanner struct {
	order []int     // nodes sorted by distance from v
	dists []float64 // distance of order[i] from v
}

func newScanner(s *Space, v int) *scanner {
	n := s.N()
	sc := &scanner{order: make([]int, n), dists: make([]float64, n)}
	for i := 0; i < n; i++ {
		sc.order[i] = i
	}
	row := s.D[v]
	sort.SliceStable(sc.order, func(a, b int) bool { return row[sc.order[a]] < row[sc.order[b]] })
	for i, u := range sc.order {
		sc.dists[i] = row[u]
	}
	return sc
}

// AvgDist computes d(v, z): the average distance from v to the z distinct
// requests closest to v. z must satisfy 0 <= z <= total requests; d(v, 0)
// is defined as 0.
func AvgDist(s *Space, req Requests, v int, z int64) float64 {
	if z == 0 {
		return 0
	}
	sc := newScanner(s, v)
	sum, taken := 0.0, int64(0)
	for i, u := range sc.order {
		c := req.Count[u]
		if c == 0 {
			continue
		}
		take := c
		if taken+take > z {
			take = z - taken
		}
		sum += float64(take) * sc.dists[i]
		taken += take
		if taken == z {
			return sum / float64(z)
		}
	}
	panic("metric: AvgDist z exceeds total requests")
}

// ComputeRadii evaluates rw, rs and zs for every node. writes is the total
// write count W for the object; req is the full request multiset
// (fr + fw per node); cs is the per-node storage fee.
//
// The choice of zs and rs follows the paper exactly: pick zs such that
// (zs-1) * d(v, zs-1) <= cs(v) < zs * d(v, zs), then pick rs in
// [d(v, zs-1), d(v, zs)) satisfying (zs-1)*rs <= cs(v) < zs*rs.
// If no finite zs exists (cs so large that even all requests are too few),
// zs is set past the total request count and rs to the largest average
// distance, which makes the node maximally unattractive for extra copies.
func ComputeRadii(s *Space, req Requests, writes int64, cs []float64) []Radii {
	n := s.N()
	total := req.Total()
	out := make([]Radii, n)
	for v := 0; v < n; v++ {
		sc := newScanner(s, v)
		out[v] = radiiForNode(sc, req, writes, total, cs[v])
	}
	return out
}

// radiiForNode does the per-node scan. It walks requests in ascending
// distance maintaining z (count so far) and sum (distance mass so far), so
// d(v, z) = sum / z at every prefix.
func radiiForNode(sc *scanner, req Requests, writes, total int64, storeCost float64) Radii {
	var r Radii
	// Write radius: d(v, W).
	if writes > 0 {
		r.RW = avgFromScan(sc, req, writes)
	}
	// Storage number: smallest zs with cs < zs * d(v, zs); equivalently walk
	// z upward until z * d(v,z) exceeds cs.
	// d(v,z) is nondecreasing in z, so z*d(v,z) is strictly increasing once
	// d > 0; a linear scan over the distinct distances suffices.
	// Observe z * d(v, z) = (prefix sum of the z smallest request
	// distances), so zs is the smallest z whose distance prefix sum
	// exceeds cs(v).
	var z int64
	sum := 0.0
	found := false
	for i := 0; i < len(sc.order) && !found; i++ {
		c := req.Count[sc.order[i]]
		if c == 0 {
			continue
		}
		d := sc.dists[i]
		// Requests arrive one at a time at distance d; check the defining
		// inequality after each. Batch: after taking k of them,
		// z' = z + k, sum' = sum + k*d, d(v, z') = sum'/z'.
		// We need the smallest z' with z' * d(v, z') > cs, i.e.
		// sum + k*d > cs  =>  k > (cs - sum) / d  (d > 0).
		if d == 0 {
			z += c
			continue // z*d(v,z) stays sum; cannot exceed cs yet unless sum>cs
		}
		var k int64
		if sum > storeCost {
			k = 1
		} else {
			k = int64(math.Floor((storeCost-sum)/d)) + 1
		}
		if k <= c {
			z += k
			sum += float64(k) * d
			found = true
			break
		}
		z += c
		sum += float64(c) * d
	}
	if !found {
		// cs(v) >= z * d(v, z) for all feasible z: no finite storage number.
		// Use zs = total+1 sentinel and rs = d(v, total) so that
		// 5*rs-style thresholds stay meaningful and maximal.
		r.ZS = total + 1
		if total > 0 {
			r.RS = sum / float64(total)
		}
		return r
	}
	r.ZS = z
	// rs in [d(v, zs-1), d(v, zs)) with (zs-1)*rs <= cs < zs*rs.
	dz := sum / float64(z) // d(v, zs)
	var dzm float64        // d(v, zs-1)
	if z > 1 {
		// recompute d(v, zs-1) from the same scan state: sum excludes the
		// last request taken, which sat at distance lastD.
		dzm = avgFromScan(sc, req, z-1)
	}
	// Feasible interval for rs: [max(dzm, cs/zs-epsilonish), min(dz, cs/(zs-1))].
	lo := dzm
	if z > 0 {
		if lb := storeCost / float64(z); lb > lo {
			// need cs < zs*rs, i.e. rs > cs/zs
			lo = math.Nextafter(lb, math.Inf(1))
		}
	}
	hi := dz
	if z > 1 {
		if ub := storeCost / float64(z-1); ub < hi {
			// need (zs-1)*rs <= cs, i.e. rs <= cs/(zs-1)
			hi = ub
		}
	}
	if lo > hi {
		// Numerical corner: collapse to hi (satisfies the paper's intent).
		lo = hi
	}
	r.RS = lo
	return r
}

// avgFromScan computes d(v, z) from a prepared scanner.
func avgFromScan(sc *scanner, req Requests, z int64) float64 {
	if z == 0 {
		return 0
	}
	sum, taken := 0.0, int64(0)
	for i, u := range sc.order {
		c := req.Count[u]
		if c == 0 {
			continue
		}
		take := c
		if taken+take > z {
			take = z - taken
		}
		sum += float64(take) * sc.dists[i]
		taken += take
		if taken == z {
			return sum / float64(z)
		}
	}
	panic("metric: avgFromScan z exceeds total requests")
}
