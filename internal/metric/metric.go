// Package metric provides the metric-space view of a network's transmission
// costs and the request-radius machinery of Section 2.1 of the paper: the
// average distance d(v, z) to the z closest requests, the write radius
// rw(v), and the storage radius rs(v) with its storage number zs(v).
//
// Distances are served through the pluggable Oracle interface with three
// backends: Space (dense matrix, the historical representation), Lazy
// (per-source rows computed on demand behind a bounded LRU cache), and
// TreeMetric (O(1) LCA distances on tree networks). The radius machinery is
// written against nearest-first scans, so on lazy backends it only pays for
// the ball each node actually needs instead of a full sorted row.
package metric

import (
	"math"
)

// Space is a finite metric space over nodes 0..N-1, given by a dense
// distance matrix — the Oracle backend of choice for small networks, where
// Θ(n²) memory is cheap and every query is an array read. It is typically
// the shortest-path closure of a network's edge fees ct (see
// graph.AllPairs), which the paper shows is a metric.
type Space struct {
	D [][]float64
}

// New wraps a dense distance matrix. The matrix is not copied.
func New(d [][]float64) *Space { return &Space{D: d} }

// N returns the number of points.
func (s *Space) N() int { return len(s.D) }

// Dist returns the distance between u and v.
func (s *Space) Dist(u, v int) float64 { return s.D[u][v] }

// Row returns the distance row of u. Callers must not modify it.
func (s *Space) Row(u int) []float64 { return s.D[u] }

// Kind reports the dense backend.
func (s *Space) Kind() Kind { return KindDense }

// NearestOfInto returns, for every node, the distance to the nearest
// member of sources, writing into dst (length n): one row fold per source,
// no allocation.
func (s *Space) NearestOfInto(sources []int, dst []float64) []float64 {
	for v := range dst {
		dst[v] = math.Inf(1)
	}
	for _, src := range sources {
		row := s.D[src]
		for v, d := range row {
			if d < dst[v] {
				dst[v] = d
			}
		}
	}
	return dst
}

// Check verifies the metric axioms up to tolerance eps: non-negativity,
// identity, symmetry, and the triangle inequality. It returns false on the
// first violation. O(n^3); intended for tests.
func (s *Space) Check(eps float64) bool {
	n := s.N()
	for i := 0; i < n; i++ {
		if s.D[i][i] != 0 {
			return false
		}
		for j := 0; j < n; j++ {
			if s.D[i][j] < 0 || math.Abs(s.D[i][j]-s.D[j][i]) > eps {
				return false
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if s.D[i][j] > s.D[i][k]+s.D[k][j]+eps {
					return false
				}
			}
		}
	}
	return true
}

// Median returns the 1-median of the space under non-negative node weights:
// the node v minimising sum_u weight[u] * d(v, u), and that minimum value.
func (s *Space) Median(weight []float64) (int, float64) {
	return Median(s, weight)
}

// Median returns the 1-median of the oracle metric under non-negative node
// weights. O(n) row fetches; inherently quadratic work.
func Median(o Oracle, weight []float64) (int, float64) {
	best, bestCost := -1, math.Inf(1)
	n := o.N()
	for v := 0; v < n; v++ {
		row := o.Row(v)
		c := 0.0
		for u := 0; u < n; u++ {
			c += weight[u] * row[u]
		}
		if c < bestCost {
			best, bestCost = v, c
		}
	}
	return best, bestCost
}

// Requests is the per-node request multiset for one object: Count[u] is the
// number of requests issued at node u (for the radius definitions this is
// fr(u) + fw(u), since a restricted placement does not differentiate reads
// from the read-component of writes).
type Requests struct {
	Count []int64
}

// Total returns the total number of requests.
func (r Requests) Total() int64 {
	var t int64
	for _, c := range r.Count {
		t += c
	}
	return t
}

// Radii holds, for one node v, the quantities defined in Section 2.1.
type Radii struct {
	// RW is the write radius rw(v) = d(v, W): the average distance from v
	// to the W closest requests, W being the total write count.
	RW float64
	// RS is the storage radius rs(v) and ZS the storage number zs(v),
	// chosen such that (zs-1)*rs <= cs(v) < zs*rs and
	// d(v, zs-1) <= rs < d(v, zs).
	RS float64
	ZS int64
}

// AvgDist computes d(v, z): the average distance from v to the z distinct
// requests closest to v. z must satisfy 0 <= z <= total requests; d(v, 0)
// is defined as 0. The scan stops as soon as z requests are gathered.
func AvgDist(o Oracle, req Requests, v int, z int64) float64 {
	if z == 0 {
		return 0
	}
	sum, taken := 0.0, int64(0)
	ScanNear(o, v, func(u int, d float64) bool {
		c := req.Count[u]
		if c == 0 {
			return true
		}
		take := c
		if taken+take > z {
			take = z - taken
		}
		sum += float64(take) * d
		taken += take
		return taken < z
	})
	if taken < z {
		panic("metric: AvgDist z exceeds total requests")
	}
	return sum / float64(z)
}

// ComputeRadii evaluates rw, rs and zs for every node. writes is the total
// write count W for the object; req is the full request multiset
// (fr + fw per node); cs is the per-node storage fee.
//
// The choice of zs and rs follows the paper exactly: pick zs such that
// (zs-1) * d(v, zs-1) <= cs(v) < zs * d(v, zs), then pick rs in
// [d(v, zs-1), d(v, zs)) satisfying (zs-1)*rs <= cs(v) < zs*rs.
// If no finite zs exists (cs so large that even all requests are too few),
// zs is set past the total request count and rs to the largest average
// distance, which makes the node maximally unattractive for extra copies.
//
// Each node's scan terminates as soon as both radii are resolved, so on a
// lazy backend the cost per node is the request ball around it, not Θ(n).
// Scratch comes from a pooled Workspace, so steady-state calls allocate
// only the returned slice.
func ComputeRadii(o Oracle, req Requests, writes int64, cs []float64) []Radii {
	n := o.N()
	total := req.Total()
	out := make([]Radii, n)
	ws := wsPool.Get().(*Workspace)
	for v := 0; v < n; v++ {
		out[v] = ws.radiiForNode(o, req, v, writes, total, cs[v])
	}
	putWorkspace(ws)
	return out
}

// radiiState carries the accumulators of one per-node radii scan: the scan
// walks requests in ascending distance from v, maintaining z (count so
// far) and sum (distance mass so far), so d(v, z) = sum / z at every
// prefix. The write-radius and storage-number prefixes are tracked in the
// same pass; the scan stops once both are resolved. It lives in the
// Workspace so the callback reading it is built once, not per node.
type radiiState struct {
	req       Requests
	writes    int64
	storeCost float64

	// Write radius accumulation toward d(v, W).
	rw      float64
	rwSum   float64
	rwTaken int64
	rwDone  bool
	// Storage-number accumulation: zs is the smallest z whose distance
	// prefix sum exceeds cs(v), because z * d(v, z) = (prefix sum of the z
	// smallest request distances).
	z     int64
	sum   float64
	lastD float64
	found bool
}

// step consumes one scanned node; it is the ScanNear callback body.
func (st *radiiState) step(u int, d float64) bool {
	c := st.req.Count[u]
	if c == 0 {
		return true
	}
	if !st.rwDone {
		take := c
		if st.rwTaken+take > st.writes {
			take = st.writes - st.rwTaken
		}
		st.rwSum += float64(take) * d
		st.rwTaken += take
		if st.rwTaken == st.writes {
			st.rw = st.rwSum / float64(st.writes)
			st.rwDone = true
		}
	}
	if !st.found {
		// Requests arrive c at a time at distance d; we need the
		// smallest z' with z' * d(v, z') > cs, i.e. sum + k*d > cs
		// => k > (cs - sum) / d (for d > 0).
		if d == 0 {
			st.z += c
		} else {
			var k int64
			if st.sum > st.storeCost {
				k = 1
			} else {
				k = int64(math.Floor((st.storeCost-st.sum)/d)) + 1
			}
			if k <= c {
				st.z += k
				st.sum += float64(k) * d
				st.lastD = d
				st.found = true
			} else {
				st.z += c
				st.sum += float64(c) * d
			}
		}
	}
	return !(st.rwDone && st.found)
}

// finalize derives the Radii from a completed scan.
func (st *radiiState) finalize(total int64, storeCost float64) Radii {
	r := Radii{RW: st.rw}
	if !st.found {
		// cs(v) >= z * d(v, z) for all feasible z: no finite storage number.
		// Use zs = total+1 sentinel and rs = d(v, total) so that
		// 5*rs-style thresholds stay meaningful and maximal.
		r.ZS = total + 1
		if total > 0 {
			r.RS = st.sum / float64(total)
		}
		return r
	}
	z := st.z
	r.ZS = z
	// rs in [d(v, zs-1), d(v, zs)) with (zs-1)*rs <= cs < zs*rs.
	dz := st.sum / float64(z) // d(v, zs)
	var dzm float64           // d(v, zs-1): drop the last request taken, at lastD.
	if z > 1 {
		dzm = (st.sum - st.lastD) / float64(z-1)
	}
	// Feasible interval for rs: [max(dzm, cs/zs-epsilonish), min(dz, cs/(zs-1))].
	lo := dzm
	if z > 0 {
		if lb := storeCost / float64(z); lb > lo {
			// need cs < zs*rs, i.e. rs > cs/zs
			lo = math.Nextafter(lb, math.Inf(1))
		}
	}
	hi := dz
	if z > 1 {
		if ub := storeCost / float64(z-1); ub < hi {
			// need (zs-1)*rs <= cs, i.e. rs <= cs/(zs-1)
			hi = ub
		}
	}
	if lo > hi {
		// Numerical corner: collapse to hi (satisfies the paper's intent).
		lo = hi
	}
	r.RS = lo
	return r
}
