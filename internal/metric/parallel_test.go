package metric

import (
	"math/rand"
	"reflect"
	"testing"

	"netplace/internal/graph"
)

// randomScanGraph builds a random connected graph with both backends'
// request/storage fixtures for the radii kernels.
func radiiFixture(t *testing.T, seed int64, n int) (o Oracle, req Requests, writes int64, cs []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for k := 0; k < n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	req = Requests{Count: make([]int64, n)}
	cs = make([]float64, n)
	for v := 0; v < n; v++ {
		req.Count[v] = rng.Int63n(5)
		cs[v] = 1 + rng.Float64()*20
		if rng.Intn(4) == 0 {
			writes += rng.Int63n(3)
		}
	}
	if req.Total() == 0 {
		req.Count[0] = 1
	}
	if writes > req.Total() {
		writes = req.Total()
	}
	return NewLazy(g, 64), req, writes, cs
}

// Sharded radii sweeps must be byte-identical to the serial kernels at
// every worker count, on both the full and the storage-only variant.
func TestComputeRadiiParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		o, req, writes, cs := radiiFixture(t, seed, 120)
		ws := NewWorkspace()
		serial := append([]Radii(nil), ws.ComputeRadii(o, req, writes, cs)...)
		serialStore := append([]Radii(nil), ws.ComputeStorageRadii(o, req, cs)...)
		for _, workers := range []int{2, 3, 8, -1} {
			par := append([]Radii(nil), ws.ComputeRadiiParallel(o, req, writes, cs, workers)...)
			if !reflect.DeepEqual(par, serial) {
				t.Fatalf("seed %d workers %d: parallel radii diverged", seed, workers)
			}
			parStore := append([]Radii(nil), ws.ComputeStorageRadiiParallel(o, req, cs, workers)...)
			if !reflect.DeepEqual(parStore, serialStore) {
				t.Fatalf("seed %d workers %d: parallel storage radii diverged", seed, workers)
			}
		}
		// The per-candidate helpers must agree with the full kernel too.
		var order []int
		for v := 0; v < o.N(); v += 17 {
			if rw := WriteRadiusOf(o, req, writes, v); rw != serial[v].RW {
				t.Fatalf("seed %d: WriteRadiusOf(%d) = %v, want %v", seed, v, rw, serial[v].RW)
			}
			order = append(order, v)
		}
		got := make([]Radii, o.N())
		WriteRadiiParallel(o, req, writes, order, got, 4)
		for _, v := range order {
			if got[v].RW != serial[v].RW {
				t.Fatalf("seed %d: WriteRadiiParallel rw(%d) = %v, want %v", seed, v, got[v].RW, serial[v].RW)
			}
		}
	}
}
