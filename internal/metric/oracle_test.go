package metric

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"netplace/internal/graph"
)

// intWeights draws integer edge weights so that shortest-path sums are
// exact in float64 regardless of summation order: the property tests can
// then demand bit-identical distances across backends.
func intWeights(rng *rand.Rand) func(u, v int) float64 {
	return func(u, v int) float64 { return float64(1 + rng.Intn(9)) }
}

// randomSparse returns a connected sparse graph: a random spanning tree
// plus a few extra edges.
func randomSparse(rng *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New(n)
	w := intWeights(rng)
	for v := 1; v < n; v++ {
		p := rng.Intn(v)
		g.AddEdge(p, v, w(p, v))
	}
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, w(u, v))
		}
	}
	return g
}

func backendsFor(g *graph.Graph) map[string]Oracle {
	m := map[string]Oracle{
		"dense":      New(g.AllPairs()),
		"lazy":       NewLazy(g, 0),
		"lazy-tiny":  NewLazy(g, 2), // thrashing cache must stay correct
		"lazy-large": NewLazy(g, 4096),
	}
	if g.IsTree() {
		m["tree"] = NewTree(g)
	}
	return m
}

func TestOracleDistanceEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		extra := rng.Intn(3) * rng.Intn(n) // every third graph is a tree
		g := randomSparse(rng, n, extra)
		want := New(g.AllPairs())
		for name, o := range backendsFor(g) {
			if o.N() != n {
				t.Fatalf("%s: N() = %d, want %d", name, o.N(), n)
			}
			for u := 0; u < n; u++ {
				row := o.Row(u)
				for v := 0; v < n; v++ {
					if row[v] != want.D[u][v] {
						t.Fatalf("seed %d %s: Row(%d)[%d] = %v, want %v", seed, name, u, v, row[v], want.D[u][v])
					}
					if d := o.Dist(u, v); d != want.D[u][v] {
						t.Fatalf("seed %d %s: Dist(%d,%d) = %v, want %v", seed, name, u, v, d, want.D[u][v])
					}
				}
			}
		}
	}
}

func TestScanNearOrderAndCoverage(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomSparse(rng, n, rng.Intn(n))
		for name, o := range backendsFor(g) {
			src := rng.Intn(n)
			seen := make(map[int]float64, n)
			last := math.Inf(-1)
			ScanNear(o, src, func(u int, d float64) bool {
				if d < last {
					t.Fatalf("%s: scan from %d not nondecreasing (%v after %v)", name, src, d, last)
				}
				last = d
				seen[u] = d
				return true
			})
			if len(seen) != n {
				t.Fatalf("%s: scan from %d visited %d of %d nodes", name, src, len(seen), n)
			}
			for u, d := range seen {
				if d != o.Dist(src, u) {
					t.Fatalf("%s: scan distance to %d = %v, Dist = %v", name, u, d, o.Dist(src, u))
				}
			}
			// Early stop after k nodes must see the k nearest.
			k := 1 + rng.Intn(n)
			count := 0
			ScanNear(o, src, func(u int, d float64) bool {
				count++
				return count < k
			})
			if count != k {
				t.Fatalf("%s: early-stopped scan visited %d nodes, want %d", name, count, k)
			}
		}
	}
}

func TestNearestHelpersEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomSparse(rng, n, rng.Intn(n))
		srcCount := 1 + rng.Intn(5)
		sources := rng.Perm(n)
		if srcCount > n {
			srcCount = n
		}
		sources = sources[:srcCount]
		dense := New(g.AllPairs())
		want := NearestOf(dense, sources)
		wantMST := PairwiseMST(dense, sources)
		for name, o := range backendsFor(g) {
			if got := NearestOf(o, sources); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d %s: NearestOf diverged\n got %v\nwant %v", seed, name, got, want)
			}
			near := make([]float64, n)
			for v := range near {
				near[v] = math.Inf(1)
			}
			for _, s := range sources {
				ImproveNearest(o, s, near)
			}
			if !reflect.DeepEqual(near, want) {
				t.Fatalf("seed %d %s: incremental ImproveNearest diverged", seed, name)
			}
			if got := PairwiseMST(o, sources); got != wantMST {
				t.Fatalf("seed %d %s: PairwiseMST = %v, want %v", seed, name, got, wantMST)
			}
		}
	}
}

func TestComputeRadiiEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomSparse(rng, n, rng.Intn(n))
		req := Requests{Count: make([]int64, n)}
		cs := make([]float64, n)
		var writes int64
		for v := 0; v < n; v++ {
			req.Count[v] = rng.Int63n(6)
			cs[v] = float64(rng.Intn(40))
		}
		total := req.Total()
		if total == 0 {
			req.Count[0] = 1
			total = 1
		}
		writes = rng.Int63n(total + 1)
		want := ComputeRadii(New(g.AllPairs()), req, writes, cs)
		for name, o := range backendsFor(g) {
			got := ComputeRadii(o, req, writes, cs)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d %s: radii diverged\n got %+v\nwant %+v", seed, name, got, want)
			}
		}
		// AvgDist prefixes agree as well.
		v := rng.Intn(n)
		for z := int64(0); z <= total; z++ {
			want := AvgDist(New(g.AllPairs()), req, v, z)
			for name, o := range backendsFor(g) {
				if got := AvgDist(o, req, v, z); got != want {
					t.Fatalf("seed %d %s: AvgDist(%d,%d) = %v, want %v", seed, name, v, z, got, want)
				}
			}
		}
	}
}

func TestLazyDistSymmetricCacheUse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomSparse(rng, 50, 30)
	l := NewLazy(g, 4)
	dense := New(g.AllPairs())
	// Random access pattern with a tiny cache: every answer must match.
	for i := 0; i < 2000; i++ {
		u, v := rng.Intn(50), rng.Intn(50)
		if got := l.Dist(u, v); got != dense.D[u][v] {
			t.Fatalf("Dist(%d,%d) = %v, want %v", u, v, got, dense.D[u][v])
		}
	}
}

func TestLazyRowConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomSparse(rng, 80, 40)
	dense := New(g.AllPairs())
	l := NewLazy(g, 8)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				u := rng.Intn(80)
				row := l.Row(u)
				for v, d := range row {
					if d != dense.D[u][v] {
						done <- errMismatch
						return
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errString("concurrent lazy row mismatch")

type errString string

func (e errString) Error() string { return string(e) }

func TestTreeMetricAgainstDijkstra(t *testing.T) {
	shapes := []func(rng *rand.Rand) *graph.Graph{
		func(rng *rand.Rand) *graph.Graph { return randomSparse(rng, 1, 0) },
		func(rng *rand.Rand) *graph.Graph { return randomSparse(rng, 2, 0) },
		func(rng *rand.Rand) *graph.Graph { return randomSparse(rng, 40, 0) },
		func(rng *rand.Rand) *graph.Graph { // star: high degree stress
			g := graph.New(30)
			for v := 1; v < 30; v++ {
				g.AddEdge(0, v, float64(1+rng.Intn(5)))
			}
			return g
		},
		func(rng *rand.Rand) *graph.Graph { // path: depth stress
			g := graph.New(60)
			for v := 1; v < 60; v++ {
				g.AddEdge(v-1, v, float64(1+rng.Intn(5)))
			}
			return g
		},
	}
	for si, shape := range shapes {
		rng := rand.New(rand.NewSource(int64(si)))
		g := shape(rng)
		tm := NewTree(g)
		for u := 0; u < g.N(); u++ {
			want, _ := g.Dijkstra(u)
			for v := 0; v < g.N(); v++ {
				if got := tm.Dist(u, v); got != want[v] {
					t.Fatalf("shape %d: Dist(%d,%d) = %v, want %v", si, u, v, got, want[v])
				}
			}
		}
	}
}

func TestMaterializeMatchesAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomSparse(rng, 25, 10)
	want := g.AllPairs()
	for name, o := range backendsFor(g) {
		got := Materialize(o)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Materialize diverged", name)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{KindDense: "dense", KindLazy: "lazy", KindTree: "tree", Kind(99): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
