package metric

import (
	"math"
	"sync"
)

// Workspace holds reusable scratch buffers for the sweep- and MST-shaped
// metric kernels — nearest-source fields, radii tables, pairwise MST
// scratch — so the steady-state solve pipeline allocates nothing per call.
// Buffers grow to the largest instance seen and are reused verbatim after.
//
// A Workspace is not safe for concurrent use; pool one per goroutine (the
// core solver keeps one per worker, the package-level helpers borrow one
// from an internal sync.Pool).
type Workspace struct {
	near     []float64
	radii    []Radii
	pairD    []float64   // k×k pairwise distances, flattened row-major
	pairRows [][]float64 // batched row prefetch scratch (RowBatcher path)
	pairBest []float64
	pairFrom []int
	pairIn   []bool

	// radSt/radiiFn implement the per-node radii scan without per-call
	// closures: radiiFn is built once and reads radSt, so a ComputeRadii
	// over n nodes performs n scans and zero allocations. (A closure
	// passed through the Oracle interface escapes, so the naive per-node
	// closure allocated it plus every captured accumulator on each call.)
	radSt   radiiState
	radiiFn func(u int, d float64) bool
}

// NewWorkspace returns an empty workspace; buffers are grown on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// wsPool backs the workspace-free package helpers (PairwiseMST and
// friends), so even one-shot callers stay allocation-free in steady state.
var wsPool = sync.Pool{New: func() interface{} { return NewWorkspace() }}

// putWorkspace returns a borrowed workspace to the pool, dropping the
// caller-owned request multiset its radii state may still reference — a
// pooled workspace must pin only its own scratch.
func putWorkspace(w *Workspace) {
	w.radSt.req = Requests{}
	wsPool.Put(w)
}

// Near returns the workspace's length-n float64 buffer, growing it if
// needed. Contents are unspecified; kernels overwrite it. The slice is
// valid until the next Near call on this workspace.
func (w *Workspace) Near(n int) []float64 {
	if cap(w.near) < n {
		w.near = make([]float64, n)
	}
	w.near = w.near[:n]
	return w.near
}

// NearestOf is NearestOf writing into the workspace's buffer: the returned
// slice is valid until the workspace's next use.
func (w *Workspace) NearestOf(o Oracle, sources []int) []float64 {
	return NearestOfInto(o, sources, w.Near(o.N()))
}

// ComputeRadii is ComputeRadii writing into the workspace's radii buffer:
// the returned slice is valid until the workspace's next use.
func (w *Workspace) ComputeRadii(o Oracle, req Requests, writes int64, cs []float64) []Radii {
	n := o.N()
	if cap(w.radii) < n {
		w.radii = make([]Radii, n)
	}
	w.radii = w.radii[:n]
	total := req.Total()
	for v := 0; v < n; v++ {
		w.radii[v] = w.radiiForNode(o, req, v, writes, total, cs[v])
	}
	return w.radii
}

// radiiForNode runs one per-node radii scan through the workspace's
// pre-bound callback and state.
func (w *Workspace) radiiForNode(o Oracle, req Requests, v int, writes, total int64, storeCost float64) Radii {
	if w.radiiFn == nil {
		w.radiiFn = func(u int, d float64) bool { return w.radSt.step(u, d) }
	}
	w.radSt = radiiState{req: req, writes: writes, storeCost: storeCost, rwDone: writes == 0}
	ScanNear(o, v, w.radiiFn)
	return w.radSt.finalize(total, storeCost)
}

// ComputeStorageRadii is ComputeRadii restricted to the storage radius:
// RS and ZS are filled for every node, RW is left 0. Each scan stops at
// the (typically small) payment ball of the storage fee, whereas the write
// radius needs the W closest requests — a near-complete sweep when writes
// are plentiful. The solve pipeline therefore computes storage radii for
// all nodes here and write radii per copy candidate via WriteRadius,
// turning n expensive scans into n cheap ones plus a handful of expensive
// ones. Values are identical to ComputeRadii's.
func (w *Workspace) ComputeStorageRadii(o Oracle, req Requests, cs []float64) []Radii {
	n := o.N()
	if cap(w.radii) < n {
		w.radii = make([]Radii, n)
	}
	w.radii = w.radii[:n]
	total := req.Total()
	for v := 0; v < n; v++ {
		w.radii[v] = w.storageRadiiForNode(o, req, v, total, cs[v])
	}
	return w.radii
}

// storageRadiiForNode runs one per-node storage-radius scan through the
// workspace's pre-bound callback: the rwDone preset makes the scan resolve
// only the storage prefix.
func (w *Workspace) storageRadiiForNode(o Oracle, req Requests, v int, total int64, storeCost float64) Radii {
	if w.radiiFn == nil {
		w.radiiFn = func(u int, d float64) bool { return w.radSt.step(u, d) }
	}
	w.radSt = radiiState{req: req, storeCost: storeCost, rwDone: true}
	ScanNear(o, v, w.radiiFn)
	return w.radSt.finalize(total, storeCost)
}

// WriteRadius returns rw(v) = d(v, W), the average distance from v to the
// writes closest requests — the write-radius half of ComputeRadii for one
// node, identical in value.
func (w *Workspace) WriteRadius(o Oracle, req Requests, writes int64, v int) float64 {
	if writes == 0 {
		return 0
	}
	if w.radiiFn == nil {
		w.radiiFn = func(u int, d float64) bool { return w.radSt.step(u, d) }
	}
	// found preset: the scan resolves only the write prefix.
	w.radSt = radiiState{req: req, writes: writes, found: true}
	ScanNear(o, v, w.radiiFn)
	return w.radSt.rw
}

// pairwise fills the workspace's flattened k×k distance matrix over points
// using one row fetch per point and returns it. When the resolved worker
// count exceeds one (workers follows AutoWorkers: 0 is the size-aware
// auto policy) and the backend batches rows, the rows are prefetched in
// one RowsInto call so cache misses build in parallel instead of
// faulting one at a time; the extracted matrix is identical either way —
// cached row values do not depend on the schedule — so serial resolutions
// keep the point-loop byte-for-byte.
func (w *Workspace) pairwise(o Oracle, points []int, workers int) []float64 {
	k := len(points)
	if cap(w.pairD) < k*k {
		w.pairD = make([]float64, k*k)
	}
	d := w.pairD[:k*k]
	if rb, ok := o.(RowBatcher); ok && k >= 2 && AutoWorkers(workers, o.N()) > 1 {
		w.pairRows = rb.RowsInto(points, w.pairRows, workers)
		for i, row := range w.pairRows {
			for j, q := range points {
				d[i*k+j] = row[q]
			}
			w.pairRows[i] = nil // do not pin cache rows past the call
		}
		return d
	}
	for i, p := range points {
		row := o.Row(p)
		for j, q := range points {
			d[i*k+j] = row[q]
		}
	}
	return d
}

// PairwiseMST returns the weight of a minimum spanning tree over points
// under the oracle metric using the workspace's scratch; identical in
// result to the package-level PairwiseMST.
func (w *Workspace) PairwiseMST(o Oracle, points []int) float64 {
	return w.PairwiseMSTParallel(o, points, 0)
}

// PairwiseMSTParallel is PairwiseMST with an explicit worker knob for the
// row prefetch (0: size-aware auto, 1: serial, negative: all cores). The
// result is bit-identical at every worker count; the knob only decides
// whether uncached copy rows build concurrently.
func (w *Workspace) PairwiseMSTParallel(o Oracle, points []int, workers int) float64 {
	if len(points) <= 1 {
		return 0
	}
	return w.prim(o, points, nil, workers)
}

// prim runs Prim's algorithm over the workspace's pairwise matrix; when
// edges is non-nil the MST edges (parent-first index pairs into points) are
// appended to it. The selection order matches the historical dense
// implementation exactly, so results are bit-identical across call paths.
func (w *Workspace) prim(o Oracle, points []int, edges *[][2]int, workers int) float64 {
	d := w.pairwise(o, points, workers)
	k := len(points)
	if cap(w.pairBest) < k {
		w.pairBest = make([]float64, k)
		w.pairFrom = make([]int, k)
		w.pairIn = make([]bool, k)
	}
	best := w.pairBest[:k]
	from := w.pairFrom[:k]
	inTree := w.pairIn[:k]
	for i := range best {
		best[i] = math.Inf(1)
		from[i] = -1
		inTree[i] = false
	}
	inTree[0] = true
	for j := 1; j < k; j++ {
		best[j] = d[j] // d[0][j]
		from[j] = 0
	}
	total := 0.0
	for it := 1; it < k; it++ {
		sel := -1
		for j := 0; j < k; j++ {
			if !inTree[j] && (sel == -1 || best[j] < best[sel]) {
				sel = j
			}
		}
		if edges != nil {
			*edges = append(*edges, [2]int{from[sel], sel})
		}
		total += best[sel]
		inTree[sel] = true
		row := d[sel*k : sel*k+k]
		for j := 0; j < k; j++ {
			if !inTree[j] && row[j] < best[j] {
				best[j] = row[j]
				from[j] = sel
			}
		}
	}
	return total
}
