//go:build race

package metric

// raceEnabled reports that the race detector is active; allocation
// accounting tests skip themselves then, because -race makes sync.Pool
// deliberately drop items to expose misuse.
const raceEnabled = true
