package metric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"netplace/internal/gen"
)

func randomSpace(rng *rand.Rand, n int) *Space {
	g := gen.ErdosRenyi(n, 0.3, rng, gen.UniformWeights(rng, 1, 10))
	return New(g.AllPairs())
}

func TestShortestPathClosureIsMetric(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomSpace(rng, 3+rng.Intn(15))
		if !s.Check(1e-9) {
			t.Fatalf("seed %d: closure violates metric axioms", seed)
		}
	}
}

func TestCheckRejectsNonMetric(t *testing.T) {
	d := [][]float64{
		{0, 1, 5},
		{1, 0, 1},
		{5, 1, 0}, // 5 > 1 + 1 violates triangle inequality
	}
	if New(d).Check(1e-9) {
		t.Fatal("triangle violation not detected")
	}
	d2 := [][]float64{{0, 1}, {2, 0}} // asymmetric
	if New(d2).Check(1e-9) {
		t.Fatal("asymmetry not detected")
	}
}

// naiveAvgDist is the direct definition of d(v, z): expand the request
// multiset, sort by distance, average the z closest.
func naiveAvgDist(s *Space, req Requests, v int, z int64) float64 {
	var all []float64
	for u := 0; u < s.N(); u++ {
		for k := int64(0); k < req.Count[u]; k++ {
			all = append(all, s.Dist(v, u))
		}
	}
	sort.Float64s(all)
	sum := 0.0
	for i := int64(0); i < z; i++ {
		sum += all[i]
	}
	return sum / float64(z)
}

func TestAvgDistMatchesDefinition(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		s := randomSpace(rng, n)
		req := Requests{Count: make([]int64, n)}
		for v := range req.Count {
			req.Count[v] = rng.Int63n(6)
		}
		total := req.Total()
		if total == 0 {
			continue
		}
		v := rng.Intn(n)
		for z := int64(1); z <= total; z++ {
			got := AvgDist(s, req, v, z)
			want := naiveAvgDist(s, req, v, z)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: d(%d,%d) = %v, want %v", seed, v, z, got, want)
			}
		}
	}
}

func TestAvgDistMonotoneInZ(t *testing.T) {
	fn := func(counts []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := len(counts)
		if n < 2 {
			return true
		}
		if n > 12 {
			n = 12
		}
		s := randomSpace(rng, n)
		req := Requests{Count: make([]int64, n)}
		for v := 0; v < n; v++ {
			req.Count[v] = int64(counts[v] % 5)
		}
		total := req.Total()
		if total == 0 {
			return true
		}
		v := rng.Intn(n)
		prev := 0.0
		for z := int64(1); z <= total; z++ {
			d := AvgDist(s, req, v, z)
			if d < prev-1e-12 {
				return false // d(v, z) must be nondecreasing in z
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeRadiiDefinitions(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		s := randomSpace(rng, n)
		req := Requests{Count: make([]int64, n)}
		cs := make([]float64, n)
		var writes int64
		for v := 0; v < n; v++ {
			req.Count[v] = 1 + rng.Int63n(5)
			cs[v] = rng.Float64() * 30
		}
		total := req.Total()
		writes = rng.Int63n(total + 1)
		radii := ComputeRadii(s, req, writes, cs)
		for v := 0; v < n; v++ {
			r := radii[v]
			// Write radius is exactly d(v, W).
			if writes > 0 {
				want := naiveAvgDist(s, req, v, writes)
				if math.Abs(r.RW-want) > 1e-9 {
					t.Fatalf("seed %d: rw(%d) = %v, want %v", seed, v, r.RW, want)
				}
			} else if r.RW != 0 {
				t.Fatalf("seed %d: rw(%d) = %v with no writes", seed, v, r.RW)
			}
			// Storage number/radius inequalities from Section 2.1, whenever
			// a finite zs exists (zs <= total).
			if r.ZS <= total {
				zs := r.ZS
				if !(float64(zs-1)*r.RS <= cs[v]+1e-9) {
					t.Fatalf("seed %d: (zs-1)*rs = %v > cs = %v at node %d", seed, float64(zs-1)*r.RS, cs[v], v)
				}
				if !(cs[v] < float64(zs)*r.RS+1e-9) {
					t.Fatalf("seed %d: cs = %v >= zs*rs = %v at node %d", seed, cs[v], float64(zs)*r.RS, v)
				}
				dzs := naiveAvgDist(s, req, v, zs)
				if r.RS > dzs+1e-9 {
					t.Fatalf("seed %d: rs = %v > d(v,zs) = %v", seed, r.RS, dzs)
				}
				if zs > 1 {
					dzm := naiveAvgDist(s, req, v, zs-1)
					if r.RS < dzm-1e-9 {
						t.Fatalf("seed %d: rs = %v < d(v,zs-1) = %v", seed, r.RS, dzm)
					}
				}
				// zs is the smallest z with z*d(v,z) > cs: check the
				// prefix-sum characterisation.
				if zs > 1 {
					prev := float64(zs-1) * naiveAvgDist(s, req, v, zs-1)
					if prev > cs[v]+1e-9 {
						t.Fatalf("seed %d: zs not minimal at node %d", seed, v)
					}
				}
				cur := float64(zs) * dzs
				if cur <= cs[v]-1e-9 {
					t.Fatalf("seed %d: zs*d(v,zs) = %v <= cs = %v", seed, cur, cs[v])
				}
			}
		}
	}
}

func TestRadiiNoRequests(t *testing.T) {
	s := New([][]float64{{0, 1}, {1, 0}})
	radii := ComputeRadii(s, Requests{Count: []int64{0, 0}}, 0, []float64{3, 4})
	for v, r := range radii {
		if r.RW != 0 || r.RS != 0 {
			t.Fatalf("node %d: radii %+v for empty request set", v, r)
		}
		if r.ZS != 1 {
			t.Fatalf("node %d: zs sentinel %d, want total+1 = 1", v, r.ZS)
		}
	}
}

func TestMedian(t *testing.T) {
	// Path 0-1-2 with unit edges: weighted 1-median with heavy node 2.
	s := New([][]float64{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}})
	v, cost := s.Median([]float64{1, 1, 10})
	if v != 2 {
		t.Fatalf("median %d, want 2", v)
	}
	if cost != 2+1 {
		t.Fatalf("median cost %v, want 3", cost)
	}
}

func TestAvgDistPanicsBeyondTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New([][]float64{{0, 1}, {1, 0}})
	AvgDist(s, Requests{Count: []int64{1, 0}}, 0, 5)
}
