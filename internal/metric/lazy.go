package metric

import (
	"sync"
	"sync/atomic"

	"netplace/internal/graph"
)

// DefaultLazyRows is the default row-cache budget of the lazy oracle. At
// this budget a 1M-node network costs ~2 GB of cached rows in the worst
// case and a 50k-node network ~100 MB; tune per deployment via the
// constructor (or core.Options.MetricRows).
const DefaultLazyRows = 256

// Lazy serves the shortest-path metric of a network by running per-source
// Dijkstra rows on demand behind a bounded, sharded, concurrency-safe LRU
// row cache. Peak memory is O(budget * n) instead of Θ(n²), which is what
// lets the placement algorithms run on 50k–1M-node sparse topologies.
//
// Point queries consult the cache for either endpoint's row (the metric is
// symmetric), so access patterns that keep one side in a small working set
// — distances to the current copy set, for example — never recompute.
// Nearest-first scans and multi-source sweeps bypass rows entirely and run
// truncated or multi-source Dijkstra on the graph through pooled Scanners,
// so steady-state sweeps allocate nothing.
type Lazy struct {
	g      *graph.Graph
	cache  []lazyShard
	pool   sync.Pool // *graph.Scanner
	budget int
}

const lazyShards = 16

// lazyShard is one LRU shard: a map from node id to entry plus an intrusive
// doubly-linked recency list (head = most recent). The list makes every
// touch O(1); with the historical order-slice scan a cache-hit Row cost
// grew linearly with the shard's share of MetricRows.
type lazyShard struct {
	mu   sync.Mutex
	rows map[int]*lazyEntry
	head *lazyEntry
	tail *lazyEntry
	cap  int
}

// lazyEntry is one cached row with its intrusive LRU links. The row pointer
// is written once (guarded by once) and read without the shard lock.
type lazyEntry struct {
	key        int
	prev, next *lazyEntry
	once       sync.Once
	row        atomic.Pointer[[]float64]
}

// NewLazy returns a lazy oracle over g with a row cache bounded to
// maxRows rows (<= 0 selects DefaultLazyRows).
func NewLazy(g *graph.Graph, maxRows int) *Lazy {
	if maxRows <= 0 {
		maxRows = DefaultLazyRows
	}
	l := &Lazy{g: g, cache: make([]lazyShard, lazyShards), budget: maxRows}
	// Distribute the budget exactly: total capacity sums to maxRows (tiny
	// budgets must not be exceeded shard by shard).
	for i := range l.cache {
		perShard := maxRows / lazyShards
		if i < maxRows%lazyShards {
			perShard++
		}
		l.cache[i] = lazyShard{rows: make(map[int]*lazyEntry), cap: perShard}
	}
	l.pool.New = func() interface{} { return graph.NewScanner(g) }
	return l
}

// shardOf mixes the node id before sharding so that access patterns with a
// regular stride (copies on a grid, say) spread across shards instead of
// collapsing into one residue class.
func (l *Lazy) shardOf(u int) *lazyShard {
	h := uint32(u) * 2654435761 // Knuth multiplicative hash
	sh := &l.cache[h>>28&(lazyShards-1)]
	if sh.cap == 0 {
		// A budget below lazyShards leaves some shards empty; fall back to
		// the first non-empty shard for those ids.
		for i := range l.cache {
			if l.cache[i].cap > 0 {
				return &l.cache[i]
			}
		}
	}
	return sh
}

// scanner borrows a pooled Scanner; release it with putScanner.
func (l *Lazy) scanner() *graph.Scanner { return l.pool.Get().(*graph.Scanner) }

// putScanner returns a borrowed Scanner to the pool.
func (l *Lazy) putScanner(sc *graph.Scanner) { l.pool.Put(sc) }

// N returns the number of nodes.
func (l *Lazy) N() int { return l.g.N() }

// Kind reports the lazy backend.
func (l *Lazy) Kind() Kind { return KindLazy }

// Budget returns the row-cache budget in rows.
func (l *Lazy) Budget() int { return l.budget }

// pushFront links e at the recency head. Called with the shard lock held.
func (sh *lazyShard) pushFront(e *lazyEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes e from the recency list. Called with the shard lock held.
func (sh *lazyShard) unlink(e *lazyEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// touch moves e to the recency head in O(1). Called with the shard lock
// held.
func (sh *lazyShard) touch(e *lazyEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// entryFor returns u's cache entry, creating it (and evicting the
// least-recently-used entry past the shard's capacity) on a miss,
// refreshing its recency on a hit. The entry's row may not be computed
// yet; callers resolve it through the entry's once.
func (l *Lazy) entryFor(u int) *lazyEntry {
	sh := l.shardOf(u)
	sh.mu.Lock()
	e, ok := sh.rows[u]
	if !ok {
		e = &lazyEntry{key: u}
		sh.rows[u] = e
		sh.pushFront(e)
		if len(sh.rows) > sh.cap {
			evict := sh.tail
			sh.unlink(evict)
			delete(sh.rows, evict.key)
		}
	} else {
		sh.touch(e)
	}
	sh.mu.Unlock()
	return e
}

// fill computes e's row with the given scanner if no other goroutine has
// yet; concurrent fills of the same entry collapse through the entry's
// once. The SSSP kernel is auto-selected per the graph's weight profile
// (bucketed on bounded-spread weights, heap Dijkstra otherwise);
// distances are identical either way.
func (l *Lazy) fill(e *lazyEntry, sc *graph.Scanner) {
	e.once.Do(func() {
		row := sc.RowAutoInto(e.key, make([]float64, l.g.N()))
		e.row.Store(&row)
	})
}

// Row returns the distance row of u, computing it with a single-source
// shortest-path sweep on a cache miss. The returned slice is shared with
// the cache; callers must not modify it. It remains valid after eviction
// (eviction only drops the cache's reference).
func (l *Lazy) Row(u int) []float64 {
	e := l.entryFor(u)
	if p := e.row.Load(); p == nil {
		sc := l.scanner()
		l.fill(e, sc)
		l.putScanner(sc)
	}
	return *e.row.Load()
}

// RowsInto fills rows[i] with the distance row of us[i] and returns the
// slice, growing it as needed. Cache hits are resolved up front; the
// missing rows are then built together — each worker borrows one pooled
// Scanner for its whole share and the misses are claimed one at a time
// off an atomic cursor — instead of faulting one row at a time inside
// the caller's loop. This is the batched multi-source row construction
// behind PairwiseMST and the other row-plural kernels on large
// instances, where K independent Dijkstra runs are the serial floor.
//
// workers follows AutoWorkers: negative is GOMAXPROCS, 0 the size-aware
// auto policy, positive literal. Concurrent batches sharing entries (or
// racing point queries) collapse through each entry's once, so the rows
// produced are identical to serial fills in every schedule. Returned
// rows are cache-shared and read-only, like Row's.
func (l *Lazy) RowsInto(us []int, rows [][]float64, workers int) [][]float64 {
	if cap(rows) < len(us) {
		rows = make([][]float64, len(us))
	}
	rows = rows[:len(us)]
	// Resolve entries serially — shard-locked map touches are cheap —
	// and collect the entries whose rows still need a sweep.
	var missEntries []*lazyEntry
	var missIdx []int
	for i, u := range us {
		e := l.entryFor(u)
		if p := e.row.Load(); p != nil {
			rows[i] = *p
			continue
		}
		missEntries = append(missEntries, e)
		missIdx = append(missIdx, i)
	}
	if len(missEntries) == 0 {
		return rows
	}
	workers = AutoWorkers(workers, l.g.N())
	Shard(len(missEntries), 1, workers, func(claim func() (lo, hi int, ok bool)) {
		sc := l.scanner()
		defer l.putScanner(sc)
		for {
			i, _, ok := claim()
			if !ok {
				return
			}
			l.fill(missEntries[i], sc)
		}
	})
	for k, e := range missEntries {
		rows[missIdx[k]] = *e.row.Load()
	}
	return rows
}

// peek returns u's row if it is cached and already computed, refreshing its
// LRU recency on a hit (point-query workloads must keep their hot rows
// alive, not decay to insertion-order FIFO).
func (l *Lazy) peek(u int) ([]float64, bool) {
	sh := l.shardOf(u)
	sh.mu.Lock()
	e, ok := sh.rows[u]
	if ok {
		sh.touch(e)
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	p := e.row.Load()
	if p == nil {
		return nil, false
	}
	return *p, true
}

// Dist returns d(u, v). Because the metric is symmetric it is served from
// whichever endpoint's row is already cached, and computes u's row
// otherwise.
func (l *Lazy) Dist(u, v int) float64 {
	if u == v {
		return 0
	}
	if row, ok := l.peek(u); ok {
		return row[v]
	}
	if row, ok := l.peek(v); ok {
		return row[u]
	}
	return l.Row(u)[v]
}

// ScanNear visits nodes in nondecreasing distance from v with a truncated
// Dijkstra: stopping early pays only for the explored ball.
func (l *Lazy) ScanNear(v int, fn func(u int, d float64) bool) {
	sc := l.scanner()
	sc.Scan(v, fn)
	l.putScanner(sc)
}

// NearestOfInto fills dst (length n) with every node's distance to the
// nearest source: one pooled multi-source Dijkstra, no allocation.
func (l *Lazy) NearestOfInto(sources []int, dst []float64) []float64 {
	sc := l.scanner()
	sc.NearestInto(sources, dst)
	l.putScanner(sc)
	return dst
}

// ImproveNearest folds src into near with a pruned Dijkstra that explores
// only the region src improves.
func (l *Lazy) ImproveNearest(src int, near []float64) {
	sc := l.scanner()
	sc.ImproveNearest(src, near)
	l.putScanner(sc)
}
