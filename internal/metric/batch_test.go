package metric

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"netplace/internal/graph"
)

// batchFixture builds a random connected graph plus a fresh serial lazy
// oracle serving as the reference for bitwise row comparison.
func batchFixture(seed int64, n int) (*graph.Graph, *Lazy) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for k := 0; k < n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	return g, NewLazy(g, n)
}

func rowsEqualBitwise(t *testing.T, got, want []float64, tag string) {
	t.Helper()
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("%s: row differs at node %d: %v want %v", tag, v, got[v], want[v])
		}
	}
}

// Batched row construction must hand back exactly the rows len(us) serial
// Row calls would, at every worker count, with hits, misses and duplicate
// keys mixed in one batch.
func TestRowsIntoMatchesRow(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, ref := batchFixture(seed, 160)
		rng := rand.New(rand.NewSource(seed * 31))
		for _, workers := range []int{0, 1, 2, 4, -1} {
			l := NewLazy(g, 24) // budget below the batch's key spread
			// Warm a few rows so the batch sees cache hits too.
			for i := 0; i < 6; i++ {
				l.Row(rng.Intn(g.N()))
			}
			us := make([]int, 40)
			for i := range us {
				us[i] = rng.Intn(g.N())
			}
			us[7] = us[3] // duplicate keys collapse through the entry once
			var scratch [][]float64
			rows := l.RowsInto(us, scratch, workers)
			if len(rows) != len(us) {
				t.Fatalf("workers %d: got %d rows, want %d", workers, len(rows), len(us))
			}
			for i, u := range us {
				rowsEqualBitwise(t, rows[i], ref.Row(u), "RowsInto")
			}
		}
	}
}

// The package helper must serve batching backends through RowsInto and
// everything else through per-node Row fetches, identically.
func TestRowsHelperFallback(t *testing.T) {
	g, ref := batchFixture(9, 80)
	us := []int{3, 41, 3, 77, 0}

	l := NewLazy(g, 16)
	for i, row := range Rows(l, us, 2) {
		rowsEqualBitwise(t, row, ref.Row(us[i]), "Rows(lazy)")
	}

	var dense Oracle = New(Materialize(ref)) // no RowBatcher capability
	if _, ok := dense.(RowBatcher); ok {
		t.Fatal("dense Space unexpectedly implements RowBatcher")
	}
	for i, row := range Rows(dense, us, 2) {
		rowsEqualBitwise(t, row, ref.Row(us[i]), "Rows(dense)")
	}
}

// Concurrent batches sharing one small-budget lazy oracle — overlapping
// keys, interleaved point queries, eviction churn — must still produce
// rows bitwise identical to a serial reference. This is the -race hammer
// for the per-entry once / atomic row publication protocol.
func TestRowsIntoConcurrentHammer(t *testing.T) {
	g, ref := batchFixture(17, 120)
	l := NewLazy(g, 8) // tiny budget: constant eviction under the hammer
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var scratch [][]float64
			for iter := 0; iter < 30; iter++ {
				us := make([]int, 12)
				for i := range us {
					us[i] = rng.Intn(g.N())
				}
				scratch = l.RowsInto(us, scratch, 2)
				for i, u := range us {
					want := ref.Row(u)
					for v := range want {
						if math.Float64bits(scratch[i][v]) != math.Float64bits(want[v]) {
							errs <- "concurrent batch row diverged"
							return
						}
					}
				}
				// Interleave point queries racing the batches. Dist may be
				// served from either endpoint's row (symmetric metric), and
				// the reverse sweep sums the same path in the opposite
				// order, so accept either orientation's bits.
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				got := math.Float64bits(l.Dist(u, v))
				if got != math.Float64bits(ref.Row(u)[v]) && got != math.Float64bits(ref.Row(v)[u]) {
					errs <- "concurrent Dist diverged"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
