package metric

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The paper's radius machinery is embarrassingly parallel per node: every
// node's radii derive from one independent nearest-first scan. The
// parallel variants below shard the node range across a worker pool, each
// worker owning its own pooled Workspace (private scan state and
// pre-bound callback) and writing disjoint entries of the shared result
// slice — no locks, and per-node values identical to the serial kernels,
// so parallel output is byte-identical to serial. Oracle backends are
// already safe for concurrent scans: the lazy backend hands each scan a
// pooled graph.Scanner over the immutable CSR adjacency, and row fills
// go through its sharded LRU.
//
// Shard and ShardWorkers are exported so the other sharded kernels of
// the solve pipeline (facility's Mettu–Plaxton radii, core's phase-3
// write radii) reuse the same cursor loop instead of growing their own.

// ShardBlock is the dynamic-scheduling grain of the sharded radii
// sweeps: payment balls vary wildly in size, so workers claim small node
// blocks from an atomic cursor instead of fixed ranges. Kernels whose
// per-index work is heavy (phase-3 write radii) shard with grain 1.
const ShardBlock = 32

// AutoParallelMinNodes is the node-count threshold of the size-aware
// auto-parallel policy: below it a parallelism knob of 0 resolves to
// serial, at or above it to GOMAXPROCS. Calibrated on the committed
// bench trajectory — at 2500 nodes the sharded kernels lose to serial
// (goroutine hand-off costs more than a payment-ball scan; see the
// BENCH_PR5 _par entries), while at 50k nodes per-node sweeps are heavy
// enough that sharding wins — so the threshold sits between those two
// measured sizes, at the first power of two past the dense-backend
// cutoff where per-node scan cost clearly dominates scheduling cost.
const AutoParallelMinNodes = 16384

// AutoWorkers resolves a parallelism knob against an instance size n:
// negative selects GOMAXPROCS, positive values are taken literally, and
// 0 selects the size-aware auto policy — serial below
// AutoParallelMinNodes nodes, GOMAXPROCS at or above — so leaving the
// knob unset is never a regression at small sizes and never leaves
// cores idle at large ones.
func AutoWorkers(workers, n int) int {
	switch {
	case workers < 0:
		return runtime.GOMAXPROCS(0)
	case workers > 0:
		return workers
	case n >= AutoParallelMinNodes:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// ShardWorkers normalises a worker count against an n-index range
// sharded at the given grain: negative selects GOMAXPROCS, and the count
// never exceeds the number of claimable blocks (a worker with no block
// to claim is pure overhead).
func ShardWorkers(workers, n, grain int) int {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (n + grain - 1) / grain; workers > max {
		workers = max
	}
	return workers
}

// Shard runs worker on several goroutines over the index range [0, n):
// each invocation repeatedly calls its claim function, which yields
// half-open [lo, hi) blocks of up to grain indices off a shared atomic
// cursor until the range is exhausted. The worker count is normalised
// via ShardWorkers; one worker runs inline on the caller's goroutine.
func Shard(n, grain, workers int, worker func(claim func() (lo, hi int, ok bool))) {
	var cursor atomic.Int64
	cursor.Store(-1)
	claim := func() (int, int, bool) {
		lo := int(cursor.Add(1)) * grain
		if lo >= n {
			return 0, 0, false
		}
		hi := lo + grain
		if hi > n {
			hi = n
		}
		return lo, hi, true
	}
	if workers = ShardWorkers(workers, n, grain); workers <= 1 {
		worker(claim)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			worker(claim)
		}()
	}
	wg.Wait()
}

// shardRadii runs per(ws, v) for every v in [0, n) across workers
// goroutines, each with its own pooled Workspace. per must write only
// results indexed by v.
func shardRadii(n, workers int, per func(ws *Workspace, v int)) {
	Shard(n, ShardBlock, workers, func(claim func() (int, int, bool)) {
		ws := wsPool.Get().(*Workspace)
		defer putWorkspace(ws)
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			for v := lo; v < hi; v++ {
				per(ws, v)
			}
		}
	})
}

// ComputeRadiiParallel is ComputeRadii with the per-node scans sharded
// across workers goroutines (<= 1 runs serially; negative selects
// GOMAXPROCS). Results are byte-identical to the serial kernel.
func (w *Workspace) ComputeRadiiParallel(o Oracle, req Requests, writes int64, cs []float64, workers int) []Radii {
	n := o.N()
	if workers = ShardWorkers(workers, n, ShardBlock); workers <= 1 {
		return w.ComputeRadii(o, req, writes, cs)
	}
	if cap(w.radii) < n {
		w.radii = make([]Radii, n)
	}
	w.radii = w.radii[:n]
	radii := w.radii
	total := req.Total()
	shardRadii(n, workers, func(ws *Workspace, v int) {
		radii[v] = ws.radiiForNode(o, req, v, writes, total, cs[v])
	})
	return radii
}

// ComputeStorageRadiiParallel is ComputeStorageRadii with the per-node
// scans sharded across workers goroutines (<= 1 runs serially; negative
// selects GOMAXPROCS). Results are byte-identical to the serial kernel.
func (w *Workspace) ComputeStorageRadiiParallel(o Oracle, req Requests, cs []float64, workers int) []Radii {
	n := o.N()
	if workers = ShardWorkers(workers, n, ShardBlock); workers <= 1 {
		return w.ComputeStorageRadii(o, req, cs)
	}
	if cap(w.radii) < n {
		w.radii = make([]Radii, n)
	}
	w.radii = w.radii[:n]
	radii := w.radii
	total := req.Total()
	shardRadii(n, workers, func(ws *Workspace, v int) {
		radii[v] = ws.storageRadiiForNode(o, req, v, total, cs[v])
	})
	return radii
}

// WriteRadiusOf is Workspace.WriteRadius with pooled scratch: rw(v) for
// one node, identical in value — the one-shot form for callers without a
// workspace of their own.
func WriteRadiusOf(o Oracle, req Requests, writes int64, v int) float64 {
	ws := wsPool.Get().(*Workspace)
	rw := ws.WriteRadius(o, req, writes, v)
	putWorkspace(ws)
	return rw
}

// WriteRadiiParallel fills radii[v].RW = rw(v) for every copy candidate
// v in order, sharding the truncated nearest-first scans across workers
// at grain 1 (each candidate's scan is expensive). Every worker borrows
// one pooled Workspace for its whole share; values are identical to
// Workspace.WriteRadius's in any schedule. This is phase 3's candidate
// kernel in the core solve pipeline.
func WriteRadiiParallel(o Oracle, req Requests, writes int64, order []int, radii []Radii, workers int) {
	Shard(len(order), 1, workers, func(claim func() (int, int, bool)) {
		ws := wsPool.Get().(*Workspace)
		defer putWorkspace(ws)
		for {
			i, _, ok := claim()
			if !ok {
				return
			}
			v := order[i]
			radii[v].RW = ws.WriteRadius(o, req, writes, v)
		}
	})
}
