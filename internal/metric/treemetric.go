package metric

import (
	"math/bits"
	"sync"

	"netplace/internal/graph"
)

// TreeMetric serves the shortest-path metric of a tree network in O(1) per
// point query after O(n log n) preprocessing: on a tree the unique path
// between u and v passes through their lowest common ancestor, so
// d(u, v) = depth(u) + depth(v) - 2 * depth(lca(u, v)) with weighted
// depths. No distance rows are ever stored, so tree networks of any size
// cost O(n) memory — SolveTree-scale instances never pay Θ(n²).
//
// LCA queries use the Euler-tour + sparse-table scheme (O(1) per query).
type TreeMetric struct {
	g     *graph.Graph
	depth []float64 // weighted depth from the root
	level []int32   // unweighted depth, for LCA minimisation
	first []int     // first occurrence of each node in the Euler tour
	euler []int32   // Euler tour of node ids, len 2n-1
	table [][]int32 // sparse table over euler positions, argmin by level
	pool  sync.Pool // *graph.Scanner
}

// NewTree builds a TreeMetric over the tree network g. It panics if g is
// not a tree.
func NewTree(g *graph.Graph) *TreeMetric {
	if !g.IsTree() {
		panic("metric: NewTree on non-tree network")
	}
	n := g.N()
	t := &TreeMetric{
		g:     g,
		depth: make([]float64, n),
		level: make([]int32, n),
		first: make([]int, n),
	}
	t.pool.New = func() interface{} { return graph.NewScanner(g) }
	if n == 0 {
		return t
	}
	t.euler = make([]int32, 0, 2*n-1)
	// Root at 0, collect children lists, then run an iterative Euler tour:
	// a frame re-emits its node after each child subtree returns.
	parent, pw, order := g.TreeParents(0)
	kids := make([][]int32, n)
	for _, v := range order {
		if p := parent[v]; p >= 0 {
			kids[p] = append(kids[p], int32(v))
			t.depth[v] = t.depth[p] + pw[v]
			t.level[v] = t.level[p] + 1
		}
	}
	type frame struct {
		node    int32
		nextKid int
	}
	t.first[0] = 0
	t.euler = append(t.euler, 0)
	stack := []frame{{node: 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.nextKid < len(kids[f.node]) {
			child := kids[f.node][f.nextKid]
			f.nextKid++
			t.first[child] = len(t.euler)
			t.euler = append(t.euler, child)
			stack = append(stack, frame{node: child})
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			t.euler = append(t.euler, stack[len(stack)-1].node)
		}
	}
	// Sparse table of argmin-by-level over the Euler tour.
	m := len(t.euler)
	levels := bits.Len(uint(m))
	t.table = make([][]int32, levels)
	t.table[0] = t.euler
	for k := 1; k < levels; k++ {
		span := 1 << k
		prev := t.table[k-1]
		cur := make([]int32, m-span+1)
		for i := range cur {
			a, b := prev[i], prev[i+span/2]
			if t.level[a] <= t.level[b] {
				cur[i] = a
			} else {
				cur[i] = b
			}
		}
		t.table[k] = cur
	}
	return t
}

// N returns the number of nodes.
func (t *TreeMetric) N() int { return t.g.N() }

// Kind reports the tree backend.
func (t *TreeMetric) Kind() Kind { return KindTree }

// LCA returns the lowest common ancestor of u and v (with respect to the
// root the metric was built at).
func (t *TreeMetric) LCA(u, v int) int {
	a, b := t.first[u], t.first[v]
	if a > b {
		a, b = b, a
	}
	k := bits.Len(uint(b-a+1)) - 1
	x, y := t.table[k][a], t.table[k][b-(1<<k)+1]
	if t.level[x] <= t.level[y] {
		return int(x)
	}
	return int(y)
}

// Dist returns d(u, v) in O(1) via the LCA depth identity.
func (t *TreeMetric) Dist(u, v int) float64 {
	if u == v {
		return 0
	}
	return t.depth[u] + t.depth[v] - 2*t.depth[t.LCA(u, v)]
}

// Row computes the distance row of u in O(n) point queries. The row is not
// cached; prefer Dist, ScanNear or NearestOf where possible.
func (t *TreeMetric) Row(u int) []float64 {
	n := t.g.N()
	row := make([]float64, n)
	for v := 0; v < n; v++ {
		row[v] = t.Dist(u, v)
	}
	return row
}

// ScanNear visits nodes in nondecreasing distance from v with a truncated
// Dijkstra over the tree.
func (t *TreeMetric) ScanNear(v int, fn func(u int, d float64) bool) {
	sc := t.pool.Get().(*graph.Scanner)
	sc.Scan(v, fn)
	t.pool.Put(sc)
}

// NearestOfInto fills dst (length n) with every node's distance to the
// nearest source: one pooled multi-source Dijkstra, no allocation.
func (t *TreeMetric) NearestOfInto(sources []int, dst []float64) []float64 {
	sc := t.pool.Get().(*graph.Scanner)
	sc.NearestInto(sources, dst)
	t.pool.Put(sc)
	return dst
}

// ImproveNearest folds src into near with a pruned Dijkstra.
func (t *TreeMetric) ImproveNearest(src int, near []float64) {
	sc := t.pool.Get().(*graph.Scanner)
	sc.ImproveNearest(src, near)
	t.pool.Put(sc)
}
