package service

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestSessionDeleteMidIngest races a DELETE against a stream of event
// batches: the delete must win cleanly (no panic, files gone, ingests
// after it 404) while any batch that already held the session lock
// finishes normally.
func TestSessionDeleteMidIngest(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "race", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := driftTrace(24, 8)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.SessionEvents(ctx, sid, batch); err != nil {
				// The delete won; every later attempt must fail too.
				if _, err := c.SessionEvents(ctx, sid, batch); err == nil {
					t.Error("ingest succeeded after the session was deleted")
				}
				return
			}
		}
	}()
	if err := c.CloseSession(ctx, sid); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if _, ok := srv.sessions.get(sid); ok {
		t.Fatal("session still registered after delete")
	}
	// Double delete is a plain 404.
	if err := c.CloseSession(ctx, sid); err == nil {
		t.Fatal("second delete succeeded")
	}
	// The session's durable files are gone, so a restart recovers nothing.
	matches, err := filepath.Glob(filepath.Join(h.Dir(), "sessions", sid+".*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("session files survive delete: %v", matches)
	}
	h.Kill()
	srv, err = h.Start()
	if err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.RecoveredSessions != 0 || st.SessionsOpen != 0 {
		t.Fatalf("deleted session resurrected: %+v", st)
	}
}

// TestMaxSessionsOrderingAndRecovery pins the session-table semantics:
// the cap rejects opens, a delete frees a slot, ids are monotonic and
// never reused — and recovery re-admits pre-crash sessions even past a
// (possibly lowered) cap, bumping the id counter over them.
func TestMaxSessionsOrderingAndRecovery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	h := NewCrashHarness(dir, Config{MaxSessions: 2})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "cap", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}

	s1, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s1.SessionID != "s-000001" || s2.SessionID != "s-000002" {
		t.Fatalf("ids: %s, %s", s1.SessionID, s2.SessionID)
	}
	if _, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8}); err == nil {
		t.Fatal("open past MaxSessions succeeded")
	} else if !strings.Contains(err.Error(), "session limit") {
		t.Fatalf("cap error: %v", err)
	}
	if err := c.CloseSession(ctx, s1.SessionID); err != nil {
		t.Fatal(err)
	}
	s3, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s3.SessionID != "s-000003" {
		t.Fatalf("id after delete: %s (ids must never be reused)", s3.SessionID)
	}
	h.Kill()

	// Reopen the same data dir with a LOWER cap: the two surviving
	// sessions were admitted before the restart, so recovery keeps both;
	// only new opens feel the cap.
	h2 := NewCrashHarness(dir, Config{MaxSessions: 1})
	srv, err = h2.Start()
	if err != nil {
		t.Fatal(err)
	}
	c = serveExisting(t, srv)
	got, err := c.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d sessions, want 2", len(got))
	}
	if _, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8}); err == nil {
		t.Fatal("open past the lowered cap succeeded")
	}
	if err := c.CloseSession(ctx, s2.SessionID); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseSession(ctx, s3.SessionID); err != nil {
		t.Fatal(err)
	}
	s4, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s4.SessionID != "s-000004" {
		t.Fatalf("id after recovery: %s (counter must advance past recovered ids)", s4.SessionID)
	}
}

// TestSessionReopenSameInstance: re-POSTing a session for an instance
// opens an independent session — separate estimates, separate WAL —
// and deleting one leaves the other untouched.
func TestSessionReopenSameInstance(t *testing.T) {
	ctx := context.Background()
	// NoSync: the fsync-free persistence path must behave identically for
	// a plain process kill (only an OS crash may lose acked events).
	h := NewCrashHarness(t.TempDir(), Config{NoSync: true})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "twin", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Feed the twins different workloads: their states must not bleed.
	ingestBatches(t, c, a.SessionID, driftTrace(24, 24), 8)
	if resp, err := c.SessionEvents(ctx, b.SessionID, []SessionEvent{{Obj: "a", Node: 23, Count: 3}}); err != nil || resp.Accepted != 3 {
		t.Fatalf("count-expanded ingest: %+v err=%v", resp, err)
	}

	ai, err := c.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	events := map[string]int{}
	for _, s := range ai {
		events[s.SessionID] = s.Stats.Events
	}
	if events[a.SessionID] != 24 || events[b.SessionID] != 3 {
		t.Fatalf("per-session events: %v", events)
	}
	if err := c.CloseSession(ctx, a.SessionID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionEvents(ctx, b.SessionID, []SessionEvent{{Obj: "b", Node: 2}}); err != nil {
		t.Fatalf("surviving session broken by sibling delete: %v", err)
	}
	// And the survivor alone is what a restart recovers.
	h.Kill()
	srv, err = h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c = serveExisting(t, srv)
	got, err := c.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SessionID != b.SessionID || got[0].Stats.Events != 4 {
		t.Fatalf("recovered sessions: %+v", got)
	}
	// The single-session endpoint (netreplay's resume source) agrees.
	info, err := c.Session(ctx, b.SessionID)
	if err != nil || info.SessionID != b.SessionID || info.Stats.Events != 4 {
		t.Fatalf("session info: %+v err=%v", info, err)
	}
	if _, err := c.Session(ctx, a.SessionID); err == nil {
		t.Fatal("deleted session still answers")
	}
}
