package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// This file is the server half of the resilience layer (see
// docs/resilience.md): admission control over the solve queue, request
// deadline propagation with reject-on-arrival, the degraded stale-read
// mode, and the readiness/drain lifecycle. The client half (RetryPolicy,
// typed APIError) lives in client.go; idempotent session ingest in
// session.go and persist.go.

// Resilience wire headers. HeaderDeadline carries a Go duration string
// ("250ms", "2s") — the client's remaining budget for the request; the
// server rejects on arrival work it estimates cannot finish in time.
// HeaderRetry marks a retried request with its attempt number (sent by
// Client for attempts after the first; counted into /statz).
// HeaderAllowStale on a solve opts into the degraded mode: when the
// solver is saturated, serve the last completed placement instead of
// 429, flagged by HeaderStale carrying its age in seconds.
// HeaderShed marks an error response the server produced BEFORE
// applying anything (admission shed, on-arrival deadline reject) — the
// client may retry it even on non-idempotent calls. Its absence on a
// 502/504 means the status may have come from an intermediary after the
// backend did the work, so only idempotent calls retry those.
const (
	HeaderDeadline   = "X-Netplace-Deadline"
	HeaderRetry      = "X-Netplace-Retry"
	HeaderAllowStale = "X-Netplace-Allow-Stale"
	HeaderStale      = "X-Netplace-Stale-Seconds"
	HeaderShed       = "X-Netplace-Shed"
)

// ErrOverloaded reports that admission control shed the request: the
// solve queue already holds Workers+MaxSolveQueue admitted executions.
// The HTTP layer renders it as 429 with a Retry-After header; Client
// treats it as retryable. Match with errors.Is.
var ErrOverloaded = errors.New("service: overloaded, solve queue is full")

// ErrDeadlineUnmeetable reports that a request carried a deadline the
// server estimates it cannot meet, so it was rejected on arrival rather
// than queued to time out. Rendered as 504; match with errors.Is.
var ErrDeadlineUnmeetable = errors.New("service: request deadline cannot be met")

// shedRetryAfter is the Retry-After hint (seconds) attached to 429s.
const shedRetryAfter = 1

// admit claims a slot in the engine's bounded admission window
// (Workers executing + MaxSolveQueue waiting) and then a worker slot,
// returning the paired release. With shedding enabled, an admission
// beyond the window fails fast with ErrOverloaded instead of queueing;
// the high-water gauge records the rejected attempt too, so /statz
// shows the real pressure. ctx cancels the wait for a worker slot.
func (e *Engine) admit(ctx context.Context) (release func(), err error) {
	q := e.counters.queued.Add(1)
	e.counters.bumpHighWater(q)
	if e.cfg.MaxSolveQueue > 0 && q > int64(e.cfg.Workers+e.cfg.MaxSolveQueue) {
		e.counters.queued.Add(-1)
		e.counters.sheds.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.counters.queued.Add(-1)
		e.counters.errors.Add(1)
		return nil, ctx.Err()
	}
	e.counters.inflight.Add(1)
	return func() {
		e.counters.inflight.Add(-1)
		<-e.sem
		e.counters.queued.Add(-1)
	}, nil
}

// checkDeadline rejects on arrival a request whose context deadline is
// closer than the engine's smoothed estimate of one solver run — by the
// time it reached the front of the queue it would only burn a worker
// slot to produce a 504 anyway. Requests without a deadline, and engines
// that have not completed a run yet, always pass.
func (e *Engine) checkDeadline(ctx context.Context) error {
	dl, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	est := e.solveEWMA.Load()
	if est <= 0 {
		return nil
	}
	if remaining := time.Until(dl); remaining < time.Duration(est) {
		e.counters.deadlineRejects.Add(1)
		return fmt.Errorf("%w: ~%v estimated vs %v remaining",
			ErrDeadlineUnmeetable, time.Duration(est).Round(time.Millisecond), remaining.Round(time.Millisecond))
	}
	return nil
}

// observeSolveTime folds a completed run's wall-clock time into the
// exponentially weighted estimate checkDeadline consults (weight 1/4 on
// the new sample — reactive enough to track instance churn, smooth
// enough to ignore one outlier).
func (e *Engine) observeSolveTime(d time.Duration) {
	for {
		old := e.solveEWMA.Load()
		next := int64(d)
		if old > 0 {
			next = (3*old + int64(d)) / 4
		}
		if e.solveEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// staleEntry is one last-good solve kept for the degraded read path.
type staleEntry struct {
	res *SolveResult
	at  time.Time
}

// keepStale records a completed solve as the instance's last-good
// answer, for serving under overload. Keyed by instance content hash
// alone — not the options key the solve cache uses — because the
// degraded question is "what was this network's placement" rather than
// "this exact solve": a shed request with options nobody solved before
// (a cache miss by construction) still gets the freshest completed
// placement of the same instance. Bounded by the same LRU policy as the
// solve cache.
func (e *Engine) keepStale(hash string, res *SolveResult) {
	e.stale.Put(hash, &staleEntry{res: res, at: time.Now()})
}

// StaleResult returns the instance's last completed solve and its age —
// the degraded answer handleSolve serves when admission sheds a request
// that opted in via the X-Netplace-Allow-Stale header. The result
// carries the options of the run that produced it, which may differ
// from the shed request's. The boolean is false when no solve of this
// instance ever completed (or it aged out of the bounded cache).
func (e *Engine) StaleResult(id string) (SolveResult, time.Duration, bool) {
	_, info, ok := e.registry.Get(id)
	if !ok {
		return SolveResult{}, 0, false
	}
	v, ok := e.stale.Get(info.Hash)
	if !ok {
		return SolveResult{}, 0, false
	}
	ent := v.(*staleEntry)
	out := *ent.res
	return out, time.Since(ent.at), true
}

// Ready reports whether the server should receive traffic: recovery has
// finished (Open flips it on before returning) and drain has not begun.
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// BeginDrain marks the server draining: /readyz starts answering 503 so
// load balancers stop routing new work here, while in-flight requests
// (and the enclosing http.Server.Shutdown) complete normally. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain completes the durability story on shutdown: after BeginDrain
// (implied) and http.Server.Shutdown have quiesced traffic, it rotates
// every live durable session — final engine snapshot written and
// fsynced, WAL emptied — so the next startup recovers with zero WAL
// replay and wal_discarded_bytes == 0. Returns the first rotation error;
// later sessions are still drained (an un-drained session merely
// recovers by replay, as after a crash).
func (s *Server) Drain() error {
	s.BeginDrain()
	var first error
	for _, sess := range s.sessions.list() {
		sess.mu.Lock()
		if sess.log != nil {
			if err := sess.log.rotate(sess.engine.State(), sess.lastSeq); err != nil {
				s.counters.persistErrors.Add(1)
				if first == nil {
					first = err
				}
			}
		}
		sess.mu.Unlock()
	}
	return first
}

// handleReady is GET /readyz: 200 while the server should receive
// traffic, 503 during recovery or drain. Distinct from /healthz, which
// stays 200 as long as the process lives — a draining server is healthy
// but must be rotated out of load balancing.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// serveHTTP is the resilience middleware in front of the route mux: it
// counts retried requests and lowers the X-Netplace-Deadline header onto
// the request context, so every handler (and the engine's queue wait)
// observes the client's budget. An already-expired deadline is rejected
// immediately as 504.
func (s *Server) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if n, err := strconv.Atoi(r.Header.Get(HeaderRetry)); err == nil && n > 0 {
		s.counters.retriesObserved.Add(1)
	}
	if h := r.Header.Get(HeaderDeadline); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil {
			writeError(w, fmt.Errorf("service: bad %s header %q: %v", HeaderDeadline, h, err))
			return
		}
		if d <= 0 {
			s.counters.deadlineRejects.Add(1)
			writeError(w, fmt.Errorf("%w: deadline %q already elapsed on arrival", ErrDeadlineUnmeetable, h))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}
