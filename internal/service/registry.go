package service

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/metric"
)

// InstanceInfo is the registry's public record of one resident instance.
type InstanceInfo struct {
	// ID is the short registry identifier (a prefix of Hash): uploading the
	// same problem twice yields the same ID.
	ID string `json:"id"`
	// Hash is the full stable content hash (encode.HashInstance).
	Hash string `json:"hash"`
	// Name is the client-supplied label, if any.
	Name string `json:"name,omitempty"`
	// Nodes, Edges and Objects describe the instance's shape.
	Nodes   int `json:"nodes"`
	Edges   int `json:"edges"`
	Objects int `json:"objects"`
	// MemBytes is the registry's estimate of the instance's resident size,
	// the unit of the memory budget.
	MemBytes int64 `json:"mem_bytes"`
	// CreatedAt and LastUsed drive LRU eviction.
	CreatedAt time.Time `json:"created_at"`
	LastUsed  time.Time `json:"last_used"`
}

// idLen is how many hash hex digits form a registry ID; 16 hex digits = 64
// bits, far beyond collision range for any realistic instance count.
const idLen = 16

// InstanceIDFor computes the registry id an instance gets when uploaded
// — the content-hash prefix, identical on every replica. The cluster
// routing layer (internal/cluster) uses it to know an upload's owner
// before any server has seen the instance.
func InstanceIDFor(in *core.Instance) string {
	return encode.HashInstance(in)[:idLen]
}

// Registry keeps uploaded instances resident and identity-deduplicated by
// content hash, evicting least-recently-used instances once the estimated
// memory exceeds the budget. Safe for concurrent use.
type Registry struct {
	budget int64 // negative: unbounded

	mu        sync.Mutex
	entries   map[string]*regEntry
	order     *list.List // front = most recently used
	used      int64
	evictions *atomic.Int64 // nil: evictions are not counted
}

// regEntry is one resident instance plus its LRU hook.
type regEntry struct {
	info InstanceInfo
	in   *core.Instance
	elem *list.Element
}

// NewRegistry returns an empty registry with the given memory budget in
// estimated bytes (negative: unbounded). evictions, when non-nil, is
// incremented once per evicted instance.
func NewRegistry(budget int64, evictions *atomic.Int64) *Registry {
	return &Registry{
		budget:    budget,
		entries:   make(map[string]*regEntry),
		order:     list.New(),
		evictions: evictions,
	}
}

// Add registers an instance under its content hash and returns its record.
// Re-uploading an identical instance is idempotent: the existing record is
// refreshed (and renamed if name is non-empty) and created reports false.
// Adding may evict least-recently-used other instances to respect the
// memory budget; the new instance itself is never evicted by its own Add.
func (r *Registry) Add(name string, in *core.Instance) (info InstanceInfo, created bool) {
	hash := encode.HashInstance(in)
	id := hash[:idLen]
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok {
		if name != "" {
			e.info.Name = name
		}
		e.info.LastUsed = now
		r.order.MoveToFront(e.elem)
		return e.info, false
	}
	e := &regEntry{
		info: InstanceInfo{
			ID: id, Hash: hash, Name: name,
			Nodes: in.G.N(), Edges: in.G.M(), Objects: len(in.Objects),
			MemBytes:  estimateBytes(in),
			CreatedAt: now, LastUsed: now,
		},
		in: in,
	}
	e.elem = r.order.PushFront(e)
	r.entries[id] = e
	r.used += e.info.MemBytes
	r.evictLocked(e)
	return e.info, true
}

// Get returns a resident instance and refreshes its recency. The boolean
// reports whether the id was resident.
func (r *Registry) Get(id string) (*core.Instance, InstanceInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, InstanceInfo{}, false
	}
	e.info.LastUsed = time.Now()
	r.order.MoveToFront(e.elem)
	return e.in, e.info, true
}

// Delete removes an instance; it reports whether the id was resident.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return false
	}
	r.removeLocked(e)
	return true
}

// List returns records of all resident instances, most recently used first
// except for ties, which sort by ID for determinism.
func (r *Registry) List() []InstanceInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]InstanceInfo, 0, len(r.entries))
	for el := r.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*regEntry).info)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if !out[a].LastUsed.Equal(out[b].LastUsed) {
			return out[a].LastUsed.After(out[b].LastUsed)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Len returns the number of resident instances.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// UsedBytes returns the estimated resident memory.
func (r *Registry) UsedBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// evictLocked drops least-recently-used instances (never keep, which is the
// entry being added) until the estimated memory fits the budget or nothing
// else is left. Called with r.mu held.
func (r *Registry) evictLocked(keep *regEntry) {
	if r.budget < 0 {
		return
	}
	for r.used > r.budget && r.order.Len() > 1 {
		back := r.order.Back()
		e := back.Value.(*regEntry)
		if e == keep {
			// keep is the only candidate left besides itself; stop rather
			// than evict the instance we were asked to admit.
			return
		}
		r.removeLocked(e)
		if r.evictions != nil {
			r.evictions.Add(1)
		}
	}
}

// removeLocked unlinks an entry. Called with r.mu held.
func (r *Registry) removeLocked(e *regEntry) {
	delete(r.entries, e.info.ID)
	r.order.Remove(e.elem)
	r.used -= e.info.MemBytes
}

// estimateBytes approximates an instance's resident footprint: graph
// adjacency (one Edge plus two half-edges per edge), the per-node slices,
// the per-object frequency vectors, and — the dominant term for networks
// the auto-selected backend serves densely — the Θ(n²) distance matrix.
// Larger networks get the lazy row cache's default budget instead.
func estimateBytes(in *core.Instance) int64 {
	n := int64(in.G.N())
	m := int64(in.G.M())
	b := 72*m + 8*n // edges + storage fees
	b += int64(len(in.Objects)) * (16 * n)
	if n <= core.DenseMetricMaxNodes {
		b += 8 * n * n
	} else {
		// Lazy backend: a bounded row cache of DefaultLazyRows rows of 8n
		// bytes each, not Θ(n²). (Tree networks cost even less; charging
		// them the lazy budget only makes eviction slightly eager.)
		b += 8 * n * metric.DefaultLazyRows
	}
	return b
}

// String renders a short human identity, for logs.
func (i InstanceInfo) String() string {
	return fmt.Sprintf("%s (%d nodes, %d edges, %d objects)", i.ID, i.Nodes, i.Edges, i.Objects)
}
