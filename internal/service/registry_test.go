package service

import (
	"sync/atomic"
	"testing"

	"netplace/internal/core"
	"netplace/internal/graph"
)

// pathInstance builds a small path network with one object whose hot node
// is `hot`, so different hot values yield different content hashes.
func pathInstance(t *testing.T, n, hot int) *core.Instance {
	t.Helper()
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, 1)
	}
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 2
	}
	obj := core.Object{Name: "obj", Reads: make([]int64, n), Writes: make([]int64, n)}
	obj.Reads[hot] = 5
	obj.Writes[0] = 1
	in, err := core.NewInstance(g, storage, []core.Object{obj})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRegistryCRUD(t *testing.T) {
	r := NewRegistry(-1, nil)
	in := pathInstance(t, 6, 2)
	info, created := r.Add("demo", in)
	if !created {
		t.Fatal("first Add reported created=false")
	}
	if info.ID == "" || len(info.ID) != idLen || info.Nodes != 6 || info.Edges != 5 || info.Objects != 1 {
		t.Fatalf("bad info: %+v", info)
	}
	// Idempotent re-upload: same ID, not created.
	again, created := r.Add("", in)
	if created || again.ID != info.ID {
		t.Fatalf("re-upload: created=%v id=%s, want false/%s", created, again.ID, info.ID)
	}
	if again.Name != "demo" {
		t.Fatalf("re-upload with empty name dropped label: %+v", again)
	}
	got, gotInfo, ok := r.Get(info.ID)
	if !ok || got != in || gotInfo.ID != info.ID {
		t.Fatal("Get did not return the registered instance")
	}
	other, _ := r.Add("other", pathInstance(t, 6, 3))
	if other.ID == info.ID {
		t.Fatal("different instances collided on ID")
	}
	if l := r.List(); len(l) != 2 || l[0].ID != other.ID {
		t.Fatalf("List = %+v, want other first (most recent)", l)
	}
	if !r.Delete(info.ID) || r.Delete(info.ID) {
		t.Fatal("Delete semantics broken")
	}
	if _, _, ok := r.Get(info.ID); ok {
		t.Fatal("deleted instance still resident")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	var evictions atomic.Int64
	one := estimateBytes(pathInstance(t, 8, 0))
	// Budget for two instances, not three.
	r := NewRegistry(2*one, &evictions)
	a, _ := r.Add("a", pathInstance(t, 8, 0))
	b, _ := r.Add("b", pathInstance(t, 8, 1))
	// Touch a so b becomes the LRU victim.
	if _, _, ok := r.Get(a.ID); !ok {
		t.Fatal("a missing")
	}
	c, _ := r.Add("c", pathInstance(t, 8, 2))
	if evictions.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", evictions.Load())
	}
	if _, _, ok := r.Get(b.ID); ok {
		t.Fatal("LRU instance b survived over-budget Add")
	}
	for _, id := range []string{a.ID, c.ID} {
		if _, _, ok := r.Get(id); !ok {
			t.Fatalf("instance %s evicted although recently used", id)
		}
	}
	if r.UsedBytes() != 2*one {
		t.Fatalf("UsedBytes = %d, want %d", r.UsedBytes(), 2*one)
	}
}

func TestRegistryNeverEvictsNewestEntry(t *testing.T) {
	// Budget below a single instance: the incoming entry must survive its
	// own Add (evicting everything else).
	r := NewRegistry(1, nil)
	a, _ := r.Add("a", pathInstance(t, 8, 0))
	b, _ := r.Add("b", pathInstance(t, 8, 1))
	if _, _, ok := r.Get(a.ID); ok {
		t.Fatal("a survived although budget fits nothing")
	}
	if _, _, ok := r.Get(b.ID); !ok {
		t.Fatal("newest instance evicted by its own Add")
	}
}
