package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// waitUntil polls cond for up to two seconds — for crossing a known
// goroutine handoff, never for correctness of the final state.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadShedsWith429 drives the admission controller to capacity:
// with one worker and a one-deep queue, a third concurrent solve must be
// shed with 429 + Retry-After while both admitted solves complete, and
// /readyz must flip to 503 the moment a drain begins.
func TestOverloadShedsWith429(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, Config{Workers: 1, MaxSolveQueue: 1})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.engine.testHookSolveStart = func() { started <- struct{}{}; <-block }

	up, err := c.Upload(ctx, "overload", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	// Distinct FL solvers make distinct cache/singleflight keys, so the
	// three solves genuinely contend for the worker instead of sharing.
	solveErr := make(chan error, 2)
	go func() {
		_, err := c.Solve(ctx, up.ID, SolveOptions{FL: "local-search"})
		solveErr <- err
	}()
	<-started // A holds the worker
	go func() {
		_, err := c.Solve(ctx, up.ID, SolveOptions{FL: "greedy"})
		solveErr <- err
	}()
	waitUntil(t, "queue depth 2", func() bool { return srv.Stats().QueueDepth == 2 })

	// C arrives over capacity (1 worker + 1 queue slot): shed, typed.
	_, err = c.Solve(ctx, up.ID, SolveOptions{FL: "mettu-plaxton"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("over-capacity solve: %v, want 429", err)
	}
	if !ae.Retryable() || ae.RetryAfter != time.Second {
		t.Fatalf("429 error: retryable=%v retryAfter=%v", ae.Retryable(), ae.RetryAfter)
	}
	if !strings.Contains(ae.Error(), "HTTP 429") {
		t.Fatalf("error text %q lacks the status", ae.Error())
	}

	// Readiness flips during drain; health stays up.
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("readyz before drain: %v", err)
	}
	srv.BeginDrain()
	err = c.Ready(ctx)
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %v, want 503", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz during drain: %v", err)
	}

	// The admitted solves complete despite the drain and the shed.
	close(block)
	for i := 0; i < 2; i++ {
		if err := <-solveErr; err != nil {
			t.Fatalf("admitted solve %d failed: %v", i, err)
		}
	}
	waitUntil(t, "queue to empty", func() bool { return srv.Stats().QueueDepth == 0 })
	st := srv.Stats()
	if st.Sheds != 1 || st.QueueHighWater != 3 || st.MaxSolveQueue != 1 {
		t.Fatalf("stats sheds=%d highwater=%d maxqueue=%d, want 1/3/1", st.Sheds, st.QueueHighWater, st.MaxSolveQueue)
	}
	if st.Ready || !st.Draining {
		t.Fatalf("stats ready=%v draining=%v after BeginDrain", st.Ready, st.Draining)
	}
}

// TestStaleReadDegradedMode saturates the solver and asserts the two
// overload outcomes: without opt-in the request is shed with 429; with
// X-Netplace-Allow-Stale it gets the instance's last completed placement
// flagged stale, carrying the producing run's options and age.
func TestStaleReadDegradedMode(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, Config{Workers: 1, MaxSolveQueue: 1})
	up, err := c.Upload(ctx, "stale", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	// A clean solve seeds the last-good entry.
	if _, err := c.Solve(ctx, up.ID, SolveOptions{FL: "greedy"}); err != nil {
		t.Fatal(err)
	}

	block := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.engine.testHookSolveStart = func() { started <- struct{}{}; <-block }
	defer close(block)
	bg := make(chan error, 2)
	go func() {
		_, err := c.Solve(ctx, up.ID, SolveOptions{FL: "local-search"})
		bg <- err
	}()
	<-started
	go func() {
		_, err := c.Solve(ctx, up.ID, SolveOptions{FL: "mettu-plaxton"})
		bg <- err
	}()
	waitUntil(t, "queue depth 2", func() bool { return srv.Stats().QueueDepth == 2 })

	// Saturated, no opt-in: shed.
	_, err = c.Solve(ctx, up.ID, SolveOptions{FL: "jain-vazirani"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("no opt-in under saturation: %v, want 429", err)
	}
	// Saturated, opted in: degraded 200 with the greedy run's result.
	res, err := c.SolveStale(ctx, up.ID, SolveOptions{FL: "jain-vazirani"})
	if err != nil {
		t.Fatalf("stale solve: %v", err)
	}
	if !res.Stale || res.StaleSeconds < 0 || res.Options.FL != "greedy" {
		t.Fatalf("stale result: stale=%v age=%v opts=%+v", res.Stale, res.StaleSeconds, res.Options)
	}
	if len(res.Placement.Copies) == 0 {
		t.Fatal("stale result has no placement")
	}
	if st := srv.Stats(); st.StaleReads != 1 || st.Sheds != 2 {
		t.Fatalf("stats staleReads=%d sheds=%d, want 1/2", st.StaleReads, st.Sheds)
	}
}

// TestDeadlineHeaderMiddleware exercises X-Netplace-Deadline parsing and
// the reject-on-arrival path fed by the solve-time EWMA.
func TestDeadlineHeaderMiddleware(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, Config{})
	get := func(header string) int {
		req, _ := http.NewRequest(http.MethodGet, c.base+"/healthz", nil)
		if header != "" {
			req.Header.Set(HeaderDeadline, header)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("banana"); code != http.StatusBadRequest {
		t.Fatalf("malformed deadline: %d, want 400", code)
	}
	if code := get("-5ms"); code != http.StatusGatewayTimeout {
		t.Fatalf("elapsed deadline: %d, want 504", code)
	}
	if code := get("5s"); code != http.StatusOK {
		t.Fatalf("healthy deadline: %d, want 200", code)
	}
	if st := srv.Stats(); st.DeadlineRejects != 1 {
		t.Fatalf("deadlineRejects=%d, want 1", st.DeadlineRejects)
	}

	// Reject-on-arrival: with a 10s EWMA estimate, a 200ms budget is
	// turned away before touching the worker pool.
	up, err := c.Upload(ctx, "deadline", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.engine.solveEWMA.Store(int64(10 * time.Second))
	sctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	_, err = c.Solve(sctx, up.ID, SolveOptions{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout {
		t.Fatalf("unmeetable solve: %v, want 504", err)
	}
	if !strings.Contains(ae.Message, "estimated") {
		t.Fatalf("reject message %q lacks the estimate", ae.Message)
	}
	// The on-arrival reject carries the shed marker, so the client knows
	// this 504 preceded any work and may retry it on any call.
	if !ae.Shed || !ae.Retryable() {
		t.Fatalf("on-arrival 504 not shed-marked retryable: %+v", ae)
	}
	if st := srv.Stats(); st.DeadlineRejects != 2 || st.SolvesTotal != 0 {
		t.Fatalf("deadlineRejects=%d solves=%d, want 2/0", st.DeadlineRejects, st.SolvesTotal)
	}
	// A realistic estimate lets the same budget through.
	srv.engine.solveEWMA.Store(int64(time.Millisecond))
	sctx2, cancel2 := context.WithTimeout(ctx, 5*time.Second)
	defer cancel2()
	if _, err := c.Solve(sctx2, up.ID, SolveOptions{}); err != nil {
		t.Fatalf("meetable solve: %v", err)
	}
	// The completed run refreshed the EWMA with a real sample.
	if est := srv.engine.solveEWMA.Load(); est <= 0 || est >= int64(10*time.Second) {
		t.Fatalf("EWMA after solve: %v", time.Duration(est))
	}
}

// TestRetriesObservedCounter: the middleware counts client-declared
// retries (X-Netplace-Retry), giving /statz a fleet-health signal.
func TestRetriesObservedCounter(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	req, _ := http.NewRequest(http.MethodGet, c.base+"/healthz", nil)
	req.Header.Set(HeaderRetry, "2")
	resp, err := c.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := srv.Stats(); st.RetriesObserved != 1 {
		t.Fatalf("retriesObserved=%d, want 1", st.RetriesObserved)
	}
}

// TestStatzResilienceFields pins the wire names of the new /statz
// counters so dashboards can rely on them.
func TestStatzResilienceFields(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	raw, err := json.Marshal(srv.Stats())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"ready", "draining", "sheds", "max_solve_queue", "queue_depth",
		"queue_high_water", "stale_reads", "retries_observed",
		"deadline_rejects", "deduped_batches",
	} {
		if !bytes.Contains(raw, []byte(`"`+field+`"`)) {
			t.Errorf("stats JSON lacks %q: %s", field, raw)
		}
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Draining || st.MaxSolveQueue != DefaultMaxSolveQueue {
		t.Fatalf("fresh server stats: ready=%v draining=%v maxqueue=%d", st.Ready, st.Draining, st.MaxSolveQueue)
	}
}

// countingRT counts round trips and fails the first `fail` of them with
// a synthetic transport error.
type countingRT struct {
	inner http.RoundTripper
	hits  atomic.Int64
	fail  int64
}

func (rt *countingRT) RoundTrip(req *http.Request) (*http.Response, error) {
	n := rt.hits.Add(1)
	if n <= rt.fail {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("countingRT: synthetic transport failure %d", n)
	}
	return rt.inner.RoundTrip(req)
}

// TestClientRetryPolicy covers the client-side loop: Retry-After is
// honored over backoff, attempts carry X-Netplace-Retry, transport
// faults retry only idempotent calls, and typed errors decode.
func TestClientRetryPolicy(t *testing.T) {
	ctx := context.Background()
	var hits atomic.Int64
	var retryHeaders []string
	mux := http.NewServeMux()
	mux.HandleFunc("GET /flaky", func(w http.ResponseWriter, r *http.Request) {
		retryHeaders = append(retryHeaders, r.Header.Get(HeaderRetry))
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"draining"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var slept []time.Duration
	c := NewClient(ts.URL, ts.Client())
	c.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		Sleep:       func(ctx context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	})
	if err := c.do(ctx, http.MethodGet, "/flaky", nil, nil); err != nil {
		t.Fatalf("flaky GET: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server hit %d times, want 3", hits.Load())
	}
	// Both waits came from Retry-After (2s), not the 10ms backoff.
	if len(slept) != 2 || slept[0] != 2*time.Second || slept[1] != 2*time.Second {
		t.Fatalf("slept %v, want [2s 2s]", slept)
	}
	if fmt.Sprint(retryHeaders) != "[ 1 2]" {
		t.Fatalf("X-Netplace-Retry per attempt: %q", retryHeaders)
	}
}

// TestClientTransportRetryIdempotencyGate: a transport fault retries
// Health (idempotent) but surfaces immediately from OpenSession and
// unsequenced SessionEvents, whose lost response may have been applied.
func TestClientTransportRetryIdempotencyGate(t *testing.T) {
	ctx := context.Background()
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	policy := RetryPolicy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	newFlaky := func(fail int64) (*Client, *countingRT) {
		rt := &countingRT{inner: ts.Client().Transport, fail: fail}
		c := NewClient(ts.URL, &http.Client{Transport: rt})
		c.SetRetryPolicy(policy)
		return c, rt
	}

	c, rt := newFlaky(1)
	if err := c.Health(ctx); err != nil {
		t.Fatalf("health with one transport fault: %v", err)
	}
	if rt.hits.Load() != 2 {
		t.Fatalf("health attempts=%d, want 2", rt.hits.Load())
	}

	c, rt = newFlaky(1)
	if _, err := c.OpenSession(ctx, "whatever", SessionConfig{}); err == nil || rt.hits.Load() != 1 {
		t.Fatalf("OpenSession retried a transport fault: err=%v attempts=%d", err, rt.hits.Load())
	}
	c, rt = newFlaky(1)
	if _, err := c.SessionEvents(ctx, "whatever", []SessionEvent{{Obj: "a"}}); err == nil || rt.hits.Load() != 1 {
		t.Fatalf("unsequenced SessionEvents retried a transport fault: err=%v attempts=%d", err, rt.hits.Load())
	}
	// Sequenced ingest IS transport-retryable; it fails here with a
	// typed 404 (no such session) after the fault is retried through.
	c, rt = newFlaky(1)
	_, err := c.SessionEventsSeq(ctx, "whatever", 1, []SessionEvent{{Obj: "a"}})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound || rt.hits.Load() != 2 {
		t.Fatalf("sequenced events: err=%v attempts=%d, want typed 404 after 2", err, rt.hits.Load())
	}
}

// TestClientGatewayStatusRetryGate: a bare 502/504 may be minted by a
// reverse proxy after the backend applied the request, so it retries
// like a transport fault — idempotent calls only — while the server's
// own X-Netplace-Shed-marked 504 (rejected on arrival, nothing applied)
// retries on any call.
func TestClientGatewayStatusRetryGate(t *testing.T) {
	ctx := context.Background()
	var hits atomic.Int64
	var mode atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		switch mode.Load().(string) {
		case "bad-gateway":
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprint(w, "upstream connect error")
		case "shed-504-once":
			if n == 1 {
				w.Header().Set(HeaderShed, "1")
				writeJSON(w, http.StatusGatewayTimeout, errorJSON{Error: "rejected on arrival"})
				return
			}
			writeJSON(w, http.StatusOK, SessionInfo{SessionID: "s1"})
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }})

	// A proxy 502 on a non-idempotent call surfaces without a retry —
	// the backend may already have opened the session.
	mode.Store("bad-gateway")
	_, err := c.OpenSession(ctx, "whatever", SessionConfig{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadGateway || hits.Load() != 1 {
		t.Fatalf("OpenSession on 502: err=%v attempts=%d, want 1 attempt", err, hits.Load())
	}
	if ae.Retryable() || ae.Shed {
		t.Fatalf("bare 502 classified pre-application: %+v", ae)
	}
	// The same 502 on an idempotent call burns the full retry budget.
	hits.Store(0)
	if err := c.Health(ctx); err == nil || hits.Load() != 3 {
		t.Fatalf("Health on 502: err=%v attempts=%d, want 3 attempts", err, hits.Load())
	}
	// The server's own on-arrival 504 carries the shed marker: safe to
	// retry even on a non-idempotent call.
	hits.Store(0)
	mode.Store("shed-504-once")
	info, err := c.OpenSession(ctx, "whatever", SessionConfig{})
	if err != nil || info.SessionID != "s1" || hits.Load() != 2 {
		t.Fatalf("OpenSession through shed 504: %+v, %v, attempts=%d", info, err, hits.Load())
	}
}

// TestClientBackoffShape pins the backoff math: exponential from
// BaseDelay, capped at MaxDelay, jitter-free when Jitter is 0, and
// cancellation is never retried.
func TestClientBackoffShape(t *testing.T) {
	c := NewClient("http://unused", nil)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 9, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond})
	plain := errors.New("reset")
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		8: 400 * time.Millisecond,
	} {
		if got := c.backoff(attempt, plain); got != want {
			t.Errorf("backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
	if got := c.backoff(1, &APIError{Status: 429, RetryAfter: 5 * time.Second}); got != 5*time.Second {
		t.Errorf("Retry-After backoff = %v, want 5s", got)
	}
	if retryableError(fmt.Errorf("wrap: %w", context.Canceled), true) {
		t.Error("cancellation classified retryable")
	}
	// A deadline error is a per-attempt client timeout (the caller's own
	// deadline stops the loop via doRetry's ctx guard instead): a hung
	// peer must not exempt itself from idempotent retries.
	if !retryableError(fmt.Errorf("wrap: %w", context.DeadlineExceeded), true) {
		t.Error("per-attempt timeout classified non-retryable on an idempotent call")
	}
	if retryableError(fmt.Errorf("wrap: %w", context.DeadlineExceeded), false) {
		t.Error("per-attempt timeout classified retryable on a non-idempotent call")
	}
	if !retryableError(&APIError{Status: 429}, false) {
		t.Error("429 not retryable on a non-idempotent call")
	}
	if retryableError(&APIError{Status: 400}, true) {
		t.Error("400 classified retryable")
	}
	if !retryableError(errors.New("conn reset"), true) || retryableError(errors.New("conn reset"), false) {
		t.Error("transport-fault idempotency gate broken")
	}
	if retryableError(&APIError{Status: 502}, false) || !retryableError(&APIError{Status: 502}, true) {
		t.Error("bare 502 idempotency gate broken")
	}
	if retryableError(&APIError{Status: 504}, false) || !retryableError(&APIError{Status: 504}, true) {
		t.Error("bare 504 idempotency gate broken")
	}
	if !retryableError(&APIError{Status: 504, Shed: true}, false) {
		t.Error("shed-marked 504 not retryable on a non-idempotent call")
	}
}

// TestClientDeadlineHeaderAuto: a context deadline is propagated to the
// server as X-Netplace-Deadline; calls without one send nothing.
func TestClientDeadlineHeaderAuto(t *testing.T) {
	var got atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("GET /probe", func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(HeaderDeadline))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())

	if err := c.do(context.Background(), http.MethodGet, "/probe", nil, nil); err != nil {
		t.Fatal(err)
	}
	if h := got.Load().(string); h != "" {
		t.Fatalf("deadline header without a deadline: %q", h)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := c.do(ctx, http.MethodGet, "/probe", nil, nil); err != nil {
		t.Fatal(err)
	}
	d, err := time.ParseDuration(got.Load().(string))
	if err != nil || d <= 0 || d > 3*time.Second {
		t.Fatalf("propagated deadline %q (%v)", got.Load(), err)
	}
}

// TestFaultInjectionByteIdenticalAcrossBackends is the resilience
// layer's core property: a session ingested through a fault-injecting
// transport — connection resets, torn responses after the server
// applied the batch, latency, blackholes — with sequenced batches and
// client retries ends byte-identical (engine state, placement, /statz
// session counters) to a fault-free run of the same trace. Torn
// responses force idempotent dedupes, so the test proves zero lost AND
// zero duplicated events, across the three oracle backends.
func TestFaultInjectionByteIdenticalAcrossBackends(t *testing.T) {
	ctx := context.Background()
	trace := driftTrace(24, 96)
	const batch = 4

	for _, backend := range []string{"dense", "lazy", "tree"} {
		t.Run(backend, func(t *testing.T) {
			// Fault-free control run.
			ctrlSrv, ctrlC := newTestServer(t, Config{})
			ctrlUp, err := ctrlC.Upload(ctx, "ctrl", crashInstance(t))
			if err != nil {
				t.Fatal(err)
			}
			pinBackend(t, ctrlSrv, ctrlUp.ID, backend)
			ctrlSess, err := ctrlC.OpenSession(ctx, ctrlUp.ID, SessionConfig{Epoch: 16})
			if err != nil {
				t.Fatal(err)
			}
			for start := 0; start < len(trace); start += batch {
				if _, err := ctrlC.SessionEventsSeq(ctx, ctrlSess.SessionID, int64(start/batch)+1, trace[start:start+batch]); err != nil {
					t.Fatal(err)
				}
			}
			want := sessionFingerprint(t, ctrlSrv, ctrlC, ctrlSess.SessionID)

			// Chaos run: same trace through an armed fault transport.
			srv := New(Config{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			ft := NewFaultTransport(ts.Client().Transport, 0xC0FFEE+int64(len(backend)), FaultConfig{
				ResetProb:     0.15,
				TruncateProb:  0.20,
				LatencyProb:   0.10,
				BlackholeProb: 0.05,
			})
			c := NewClient(ts.URL, &http.Client{Transport: ft})
			c.SetRetryPolicy(RetryPolicy{
				MaxAttempts: 30,
				Seed:        42,
				Jitter:      0.2,
				Sleep:       func(context.Context, time.Duration) error { return nil },
			})
			up, err := c.Upload(ctx, "chaos", crashInstance(t))
			if err != nil {
				t.Fatal(err)
			}
			pinBackend(t, srv, up.ID, backend)
			sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 16})
			if err != nil {
				t.Fatal(err)
			}
			ft.Arm()
			deduped := 0
			for start := 0; start < len(trace); start += batch {
				resp, err := c.SessionEventsSeq(ctx, sess.SessionID, int64(start/batch)+1, trace[start:start+batch])
				if err != nil {
					t.Fatalf("batch %d under faults: %v", start/batch+1, err)
				}
				if resp.Deduplicated {
					deduped++
				}
			}
			ft.Disarm()

			got := sessionFingerprint(t, srv, c, sess.SessionID)
			if !bytes.Equal(got, want) {
				t.Errorf("chaos run diverges from fault-free run\n got %s\nwant %s", got, want)
			}
			counts := ft.Counts()
			if ft.Total() == 0 || counts["reset"] == 0 || counts["truncate"] == 0 {
				t.Fatalf("fault schedule too quiet to prove anything: %v", counts)
			}
			// Every torn response forced the retry down the dedupe path.
			st := srv.Stats()
			if st.DedupedBatches == 0 || st.RetriesObserved == 0 {
				t.Fatalf("dedupedBatches=%d retriesObserved=%d with %v faults", st.DedupedBatches, st.RetriesObserved, counts)
			}
			t.Logf("backend %s: faults=%v dedupedResponses=%d", backend, counts, deduped)
		})
	}
}

// TestIsInjectedFault: fault errors are recognizable through the
// url.Error wrapping http.Client applies.
func TestIsInjectedFault(t *testing.T) {
	ft := NewFaultTransport(nil, 1, FaultConfig{ResetProb: 1})
	ft.Arm()
	c := &http.Client{Transport: ft}
	_, err := c.Get("http://127.0.0.1:0/never")
	if err == nil || !IsInjectedFault(err) {
		t.Fatalf("injected reset not recognized: %v", err)
	}
	if IsInjectedFault(errors.New("organic")) {
		t.Fatal("organic error classified as injected")
	}
}
