package service

import (
	"context"
	"math"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"netplace/internal/core"
	"netplace/internal/encode"
)

// newTestServer returns a server (default config unless overridden) and a
// client talking to it over a real HTTP listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, ts.Client())
}

func TestServerUploadSolveCostSimulateFlow(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	in := pathInstance(t, 10, 7)

	up, err := c.Upload(ctx, "flow", in)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Created || up.Nodes != 10 {
		t.Fatalf("upload: %+v", up)
	}
	// Idempotent re-upload.
	again, err := c.Upload(ctx, "", in)
	if err != nil {
		t.Fatal(err)
	}
	if again.Created || again.ID != up.ID {
		t.Fatalf("re-upload: %+v", again)
	}

	res, err := c.Solve(ctx, up.ID, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.Copies == 0 || res.Breakdown.Total <= 0 {
		t.Fatalf("solve: %+v", res)
	}
	// The placement the server returned prices to the same breakdown.
	b, err := c.Cost(ctx, up.ID, res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if b != res.Breakdown {
		t.Fatalf("cost of returned placement %+v != solve breakdown %+v", b, res.Breakdown)
	}
	// And the message-level simulation meters the same total (E12 invariant).
	sim, err := c.Simulate(ctx, up.ID, res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim.Total-b.Total) > 1e-6*math.Max(1, b.Total) {
		t.Fatalf("simulated total %v != analytic %v", sim.Total, b.Total)
	}
	if sim.Requests == 0 || sim.Messages == 0 {
		t.Fatalf("simulation did not move messages: %+v", sim)
	}

	// A repeated identical solve is a cache hit, visible in /statz.
	res2, err := c.Solve(ctx, up.ID, SolveOptions{Algo: "approx"})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("repeated identical solve not served from cache")
	}
	if !reflect.DeepEqual(res2.Placement, res.Placement) {
		t.Fatal("cached placement differs")
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheHitRate != 0.5 {
		t.Fatalf("stats after hit: %+v", st)
	}
	if st.SolvesTotal != 1 || st.Instances != 1 || st.Simulations != 1 {
		t.Fatalf("stats counters: %+v", st)
	}

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, up.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, up.ID, SolveOptions{}); err == nil {
		t.Fatal("solve of deleted instance succeeded")
	}
}

func TestServerRegistryList(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	a, err := c.Upload(ctx, "a", pathInstance(t, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload(ctx, "b", pathInstance(t, 6, 2)); err != nil {
		t.Fatal(err)
	}
	l, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 {
		t.Fatalf("List: %+v", l)
	}
	info, err := c.Info(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "a" || info.Hash != a.Hash {
		t.Fatalf("Info: %+v", info)
	}
	if _, err := c.Info(ctx, "does-not-exist-00"); err == nil {
		t.Fatal("Info of unknown id succeeded")
	}
}

// TestConcurrentIdenticalSolvesCollapse holds the first solver run in
// flight, fires a second identical request, and asserts the solver executed
// exactly once for both.
func TestConcurrentIdenticalSolvesCollapse(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ctx := context.Background()
	up, err := c.Upload(ctx, "collapse", pathInstance(t, 12, 4))
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.Engine().testHookSolveStart = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}

	results := make([]SolveResult, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = c.Solve(ctx, up.ID, SolveOptions{})
	}()
	<-entered // leader is inside the solver
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[1], errs[1] = c.Solve(ctx, up.ID, SolveOptions{})
	}()
	// Give the second request time to reach the singleflight join; even if
	// it is delayed past the release it hits the cache — either way the
	// solver must have executed exactly once.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(results[0].Placement, results[1].Placement) {
		t.Fatal("collapsed requests returned different placements")
	}
	st := srv.Stats()
	if st.SolvesTotal != 1 {
		t.Fatalf("solver executed %d times for two identical concurrent requests", st.SolvesTotal)
	}
	if st.SharedSolves+st.CacheHits != 1 {
		t.Fatalf("second request neither shared nor cache-served: %+v", st)
	}
}

func TestEngineBatchWhatIf(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	up, err := c.Upload(ctx, "batch", pathInstance(t, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	variants := []SolveOptions{
		{},                      // paper defaults
		{SkipPhase2: true},      // ablation
		{SkipPhase3: true},      // ablation
		{Algo: "single"},        // baseline
		{Algo: "full"},          // baseline
		{Algo: "optimal"},       // exact (10 nodes)
		{Algo: "bogus"},         // must fail per-variant, not whole batch
		{},                      // duplicate of variant 0: cache or flight
		{Algo: "tree"},          // path network is a tree
		{FL: "mettu-plaxton"},   // explicit phase-1 solver
		{Phase2Factor: 7},       // custom factor
		{Metric: "nonexistent"}, // must fail per-variant
	}
	out, err := c.WhatIf(ctx, up.ID, variants)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(variants) {
		t.Fatalf("got %d outcomes for %d variants", len(out), len(variants))
	}
	for i, o := range out {
		bad := i == 6 || i == 11
		if bad && o.Error == "" {
			t.Fatalf("variant %d should have failed", i)
		}
		if !bad && o.Error != "" {
			t.Fatalf("variant %d failed: %s", i, o.Error)
		}
		if !bad && o.Result.Breakdown.Total <= 0 {
			t.Fatalf("variant %d: %+v", i, o.Result)
		}
	}
	// The exact optimum lower-bounds every other restricted-model result.
	opt := out[5].Result.Breakdown.Total
	for _, i := range []int{0, 1, 2, 3, 4, 9, 10} {
		if out[i].Result.Breakdown.Total < opt-1e-9 {
			t.Fatalf("variant %d beat the exact optimum: %v < %v", i, out[i].Result.Breakdown.Total, opt)
		}
	}
	// The duplicate variant must not have run the solver twice.
	if out[7].Result.Breakdown != out[0].Result.Breakdown {
		t.Fatal("duplicate variant diverged")
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	srv, c := newTestServer(t, Config{MaxBatchVariants: 2})
	ctx := context.Background()
	up, err := c.Upload(ctx, "bad", pathInstance(t, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, up.ID, SolveOptions{Algo: "nope"}); err == nil {
		t.Fatal("unknown algo accepted")
	}
	if _, err := c.Solve(ctx, up.ID, SolveOptions{FL: "nope"}); err == nil {
		t.Fatal("unknown fl accepted")
	}
	if _, err := c.Solve(ctx, "missing", SolveOptions{}); err == nil {
		t.Fatal("unknown instance accepted")
	}
	if _, err := c.WhatIf(ctx, up.ID, make([]SolveOptions, 3)); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if _, err := c.WhatIf(ctx, up.ID, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	// A placement naming no objects must be rejected, not priced.
	if _, err := c.Cost(ctx, up.ID, encode.PlacementJSON{}); err == nil {
		t.Fatal("empty placement accepted")
	}
	if _, err := c.Simulate(ctx, up.ID, encode.PlacementJSON{Copies: map[string][]int{"obj": {99}}}); err == nil {
		t.Fatal("out-of-range placement accepted")
	}
	// Garbage instance uploads are rejected by validation.
	bad := encode.InstanceJSON{Nodes: 2, Storage: []float64{1}} // wrong storage len
	if _, err := bad.Instance(); err == nil {
		t.Fatal("bad wire instance validated")
	}
	if srv.Stats().SolveErrors != 0 {
		// Input validation failures never reach the solver.
		t.Fatalf("validation errors counted as solve errors: %+v", srv.Stats())
	}
}

func TestSolveTimeoutCancelsOptimal(t *testing.T) {
	// A 24-node optimal solve takes far longer than 1ms on any hardware;
	// the configured timeout must cancel it and surface an error.
	_, c := newTestServer(t, Config{SolveTimeout: time.Millisecond})
	ctx := context.Background()
	up, err := c.Upload(ctx, "slow", pathInstance(t, 24, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, up.ID, SolveOptions{Algo: "optimal"}); err == nil {
		t.Fatal("optimal solve outlived a 1ms budget")
	}
}

func TestCacheDisabled(t *testing.T) {
	srv, c := newTestServer(t, Config{CacheEntries: -1})
	ctx := context.Background()
	up, err := c.Upload(ctx, "nocache", pathInstance(t, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := c.Solve(ctx, up.ID, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("cache disabled but result served cached")
		}
	}
	if st := srv.Stats(); st.SolvesTotal != 2 || st.CacheEntries != 0 {
		t.Fatalf("stats with disabled cache: %+v", st)
	}
}

// TestInstanceSharedOracle asserts that repeated differing solves of one
// instance reuse the same metric oracle rather than rebuilding it.
func TestInstanceSharedOracle(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ctx := context.Background()
	in := pathInstance(t, 10, 3)
	up, err := c.Upload(ctx, "oracle", in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, up.ID, SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	reg, _, ok := srv.Engine().Registry().Get(up.ID)
	if !ok {
		t.Fatal("instance missing")
	}
	before := reg.Metric()
	if _, err := c.Solve(ctx, up.ID, SolveOptions{SkipPhase3: true}); err != nil {
		t.Fatal(err)
	}
	if reg.Metric() != before {
		t.Fatal("second solve rebuilt the shared oracle")
	}
}

// /statz must report the raw parallel knob, the auto threshold, and the
// per-instance resolved parallelism — which under the auto policy depends
// on each instance's node count.
func TestStatsEffectiveParallelPerInstance(t *testing.T) {
	srv, c := newTestServer(t, Config{}) // Parallel 0: size-aware auto
	ctx := context.Background()
	up, err := c.Upload(ctx, "small", pathInstance(t, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.ParallelConfig != 0 {
		t.Fatalf("parallel_config = %d, want 0", st.ParallelConfig)
	}
	if st.AutoParallelMinNodes != core.AutoParallelMinNodes {
		t.Fatalf("auto_parallel_min_nodes = %d, want %d", st.AutoParallelMinNodes, core.AutoParallelMinNodes)
	}
	// A 10-node instance is far below the threshold: auto resolves serial.
	if got, ok := st.EffectiveParallel[up.ID]; !ok || got != 1 {
		t.Fatalf("effective_parallel[%s] = %d (ok %v), want 1", up.ID, got, ok)
	}

	// A pinned config reports the pin for every instance regardless of size.
	srv2, c2 := newTestServer(t, Config{Parallel: 3})
	up2, err := c2.Upload(ctx, "pinned", pathInstance(t, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := srv2.Stats().EffectiveParallel[up2.ID]; got != 3 {
		t.Fatalf("pinned effective_parallel = %d, want 3", got)
	}

	// The resolver itself flips at the threshold for the auto knob.
	if got := effectiveParallel(0, core.AutoParallelMinNodes); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("auto at threshold = %d, want GOMAXPROCS", got)
	}
	if got := effectiveParallel(0, core.AutoParallelMinNodes-1); got != 1 {
		t.Fatalf("auto below threshold = %d, want 1", got)
	}
}
