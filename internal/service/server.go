package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"netplace/internal/core"
	"netplace/internal/encode"
)

// ErrNotFound reports that a requested instance id is not resident (never
// uploaded, deleted, or evicted under the memory budget).
var ErrNotFound = errors.New("service: instance not found")

// ErrInternal marks server-side faults (a solver invariant violation or a
// recovered panic) so the HTTP layer reports them as 5xx rather than
// blaming the client; match with errors.Is.
var ErrInternal = errors.New("service: internal error")

// Server wires the engine to an HTTP API. Construct with New, then mount
// Handler on an http.Server.
//
// The API (all bodies JSON):
//
//	POST   /instances                 upload {name?, instance} → instance record
//	GET    /instances                 list resident instances
//	GET    /instances/{id}            one instance record
//	DELETE /instances/{id}            drop an instance
//	POST   /instances/{id}/solve      {options?} → placement + cost
//	POST   /instances/{id}/whatif     {variants: [options...]} or
//	                                  {options?, scenarios: [scenario...]}
//	                                  → per-variant/per-scenario results
//	POST   /instances/{id}/cost       {placement} → cost breakdown
//	POST   /instances/{id}/simulate   {placement} → metered message-level bill
//	GET    /instances/{id}/export     full instance content (drain migration)
//	POST   /v1/sessions               open a streaming session {instance_id, config?}
//	GET    /v1/sessions               list open sessions
//	GET    /v1/sessions/{id}          one session record
//	DELETE /v1/sessions/{id}          close a session
//	POST   /v1/sessions/{id}/events   stream request events into a session
//	POST   /v1/sessions/{id}/flush    close the open partial epoch
//	GET    /v1/sessions/{id}/placement  current adaptive placement + stats
//	POST   /v1/cache/probe            peer solve-cache probe {hash, options}
//	PUT    /v1/replica/instances/{id} store a read-only instance snapshot
//	DELETE /v1/replica/instances/{id} drop a snapshot (idempotent)
//	GET    /v1/replica/instances      list held snapshots
//	POST   /v1/cluster/drain          {peer?} drain self / remove a peer
//	GET    /healthz                   liveness probe
//	GET    /readyz                    readiness probe (503 during recovery/drain)
//	GET    /statz                     Stats snapshot (cache hit rate, in-flight, …);
//	                                  ?cluster=1 merges every replica's snapshot
type Server struct {
	cfg      Config
	engine   *Engine
	sessions sessions
	counters counters
	start    time.Time
	mux      *http.ServeMux
	store    *store   // nil: in-memory server (New, or Open without DataDir)
	peers    *peerSet // nil: standalone (no Config.Peers)

	health       *PeerHealth   // nil: standalone; per-peer breakers + prober
	successor    *Client       // nil: no Config.SuccessorURL; snapshot pushes
	successorURL string        // resolved Config.SuccessorURL ("" when self)
	replicas     *replicaStore // read-only snapshots held for the predecessor

	ready    atomic.Bool // recovery finished; cleared never (drain uses draining)
	draining atomic.Bool // BeginDrain called: /readyz answers 503
}

// New assembles a server (registry, engine, routes) from a config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, start: time.Now(),
		replicas: &replicaStore{entries: make(map[string]*replicaEntry)}}
	reg := NewRegistry(cfg.MemoryBudget, &s.counters.evictions)
	s.engine = NewEngine(cfg, reg, &s.counters)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /instances", s.handleUpload)
	s.mux.HandleFunc("GET /instances", s.handleList)
	s.mux.HandleFunc("GET /instances/{id}", s.handleInfo)
	s.mux.HandleFunc("DELETE /instances/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /instances/{id}/solve", s.handleSolve)
	s.mux.HandleFunc("POST /instances/{id}/whatif", s.handleWhatIf)
	s.mux.HandleFunc("POST /instances/{id}/cost", s.handleCost)
	s.mux.HandleFunc("POST /instances/{id}/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /instances/{id}/export", s.handleExport)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionOpen)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionInfo)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleSessionEvents)
	s.mux.HandleFunc("POST /v1/sessions/{id}/flush", s.handleSessionFlush)
	s.mux.HandleFunc("GET /v1/sessions/{id}/placement", s.handleSessionPlacement)
	s.mux.HandleFunc("POST /v1/cache/probe", s.handleCacheProbe)
	s.mux.HandleFunc("PUT /v1/replica/instances/{id}", s.handleReplicaPush)
	s.mux.HandleFunc("DELETE /v1/replica/instances/{id}", s.handleReplicaDelete)
	s.mux.HandleFunc("GET /v1/replica/instances", s.handleReplicaList)
	s.mux.HandleFunc("POST /v1/cluster/drain", s.handleClusterDrain)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /statz", s.handleStats)
	s.setupPeers()
	// New builds a complete in-memory server: ready immediately. Open
	// re-clears the flag while recovery replays WALs.
	s.ready.Store(true)
	return s
}

// Open assembles a server like New and, when cfg.DataDir is set,
// attaches the persistence layer: the data directory is created if
// needed, previously snapshotted instances are reloaded, and every
// durable session is rebuilt from its snapshot plus WAL replay — its
// placements, accounting, and counters byte-identical to a server that
// never stopped (see docs/persistence.md). Individually damaged files
// are logged and skipped; only directory-level failures error.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if cfg.DataDir == "" {
		return s, nil
	}
	s.ready.Store(false) // unready until recovery completes
	st, err := openStore(cfg.DataDir, cfg.NoSync, cfg.FsyncInterval)
	if err != nil {
		return nil, err
	}
	s.store = st
	if err := s.recoverState(); err != nil {
		return nil, err
	}
	s.ready.Store(true)
	return s, nil
}

// Close flushes and closes every open session WAL. The server must not
// be used afterwards; a server killed without Close loses nothing acked
// (that is the recovery property the crash tests assert), Close merely
// releases the file handles promptly.
func (s *Server) Close() {
	if s.health != nil {
		s.health.Close()
	}
	for _, sess := range s.sessions.list() {
		sess.mu.Lock()
		if sess.log != nil {
			sess.log.close()
			sess.log = nil
		}
		sess.mu.Unlock()
	}
}

// Handler returns the server's HTTP handler: the route mux behind the
// resilience middleware (deadline propagation, retry accounting — see
// serveHTTP in resilience.go).
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serveHTTP) }

// Engine returns the server's solve engine, for embedding and tests.
func (s *Server) Engine() *Engine { return s.engine }

// PeerHealth returns the server's per-peer breaker tracker, nil on a
// standalone server. The forwarding proxy shares it (Proxy.UseHealth)
// so the proxy and the peer-probe path agree on which replicas are
// down.
func (s *Server) PeerHealth() *PeerHealth { return s.health }

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	hits := s.counters.hits.Load()
	misses := s.counters.misses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	scenarios := s.counters.scenarios.Load()
	incr := s.counters.incremental.Load()
	incrRate := 0.0
	if scenarios > 0 {
		incrRate = float64(incr) / float64(scenarios)
	}
	// Per-instance resolved parallelism: under the auto policy the same
	// Config.Parallel yields different worker counts per instance size.
	perInstance := make(map[string]int)
	for _, info := range s.engine.registry.List() {
		perInstance[info.ID] = effectiveParallel(s.cfg.Parallel, info.Nodes)
	}
	return Stats{
		UptimeSeconds:        time.Since(s.start).Seconds(),
		Instances:            s.engine.registry.Len(),
		InstanceBytes:        s.engine.registry.UsedBytes(),
		MemoryBudget:         s.cfg.MemoryBudget,
		Evictions:            s.counters.evictions.Load(),
		CacheEntries:         s.engine.CacheLen(),
		CacheHits:            hits,
		CacheMisses:          misses,
		CacheHitRate:         rate,
		SolvesTotal:          s.counters.runs.Load(),
		Workers:              s.cfg.Workers,
		ParallelConfig:       s.cfg.Parallel,
		AutoParallelMinNodes: core.AutoParallelMinNodes,
		EffectiveParallel:    perInstance,
		SharedSolves:         s.counters.shared.Load(),
		InFlightSolves:       s.counters.inflight.Load(),
		SolveErrors:          s.counters.errors.Load(),
		Simulations:          s.counters.simulations.Load(),
		WhatIfScenarios:      scenarios,
		WhatIfIncremental:    incr,
		WhatIfFull:           s.counters.fullScenarios.Load(),
		IncrementalHitRate:   incrRate,
		ObjectsResolved:      s.counters.objectsResolved.Load(),
		ObjectsSpliced:       s.counters.objectsSpliced.Load(),
		SessionsOpen:         s.sessions.len(),
		SessionsOpened:       s.counters.sessionsOpened.Load(),
		SessionEvents:        s.counters.sessionEvents.Load(),
		SessionEpochs:        s.counters.sessionEpochs.Load(),
		SessionResolves:      s.counters.sessionResolves.Load(),
		SessionMoves:         s.counters.sessionMoves.Load(),
		Persistence:          s.store != nil,
		PersistErrors:        s.counters.persistErrors.Load(),
		RecoveredSessions:    s.counters.recoveredSessions.Load(),
		WALDiscardedBytes:    s.counters.walDiscarded.Load(),
		Ready:                s.Ready(),
		Draining:             s.draining.Load(),
		Sheds:                s.counters.sheds.Load(),
		MaxSolveQueue:        s.cfg.MaxSolveQueue,
		QueueDepth:           s.counters.queued.Load(),
		QueueHighWater:       s.counters.queueHighWater.Load(),
		StaleReads:           s.counters.staleReads.Load(),
		RetriesObserved:      s.counters.retriesObserved.Load(),
		DeadlineRejects:      s.counters.deadlineRejects.Load(),
		DedupedBatches:       s.counters.dedupedBatches.Load(),
		Peers:                s.livePeers(),
		PeerCache:            s.cfg.PeerCache,
		PeerProbes:           s.counters.peerProbes.Load(),
		PeerHits:             s.counters.peerHits.Load(),
		PeerServed:           s.counters.peerServed.Load(),
		PeerProbeInflight:    s.counters.peerProbeInflight.Load(),
		PeerHealth:           s.peerHealthStates(),
		BreakerOpens:         s.breakerOpens(),
		ReplicaInstances:     s.replicas.len(),
		FailoverReads:        s.counters.failoverReads.Load(),
		ReplicaPushes:        s.counters.replicaPushes.Load(),
		ReplicaPushErrors:    s.counters.replicaPushErrors.Load(),
	}
}

// livePeers is the current peer count — membership drains shrink it.
func (s *Server) livePeers() int {
	if s.peers == nil {
		return 0
	}
	return s.peers.len()
}

// peerHealthStates snapshots the breaker states for /statz, nil on a
// standalone server.
func (s *Server) peerHealthStates() map[string]string {
	if s.health == nil {
		return nil
	}
	return s.health.States()
}

// breakerOpens is the total breaker open-transition count.
func (s *Server) breakerOpens() int64 {
	if s.health == nil {
		return 0
	}
	return s.health.Opens()
}

// errorJSON is the wire form of every error response.
type errorJSON struct {
	Error string `json:"error"`
}

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to do
}

// writeError maps an error to a status code and renders it. Shed
// requests get 429 with a Retry-After hint so well-behaved clients
// (Client's RetryPolicy honors it) back off instead of hammering.
// Rejections that provably happened before any state change (admission
// shed, on-arrival deadline reject) carry HeaderShed so the client may
// retry them even on non-idempotent calls; a mid-request
// context.DeadlineExceeded does not — the work may already be applied.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfter))
		w.Header().Set(HeaderShed, "1")
	case errors.Is(err, ErrDeadlineUnmeetable):
		code = http.StatusGatewayTimeout
		w.Header().Set(HeaderShed, "1")
	case errors.Is(err, ErrReplicaDown):
		// A typed replica-down refusal (the target's circuit breaker is
		// open): 503 naming the replica, with the breaker's reopen time as
		// the Retry-After hint (at least 1s — the header has whole-second
		// resolution).
		code = http.StatusServiceUnavailable
		var rde *ReplicaDownError
		replica, after := "", time.Duration(0)
		if errors.As(err, &rde) {
			replica, after = rde.Replica, rde.RetryAfter
		}
		var ae *APIError
		if replica == "" && errors.As(err, &ae) {
			replica, after = ae.ReplicaDown, ae.RetryAfter
		}
		w.Header().Set(HeaderReplicaDown, replica)
		secs := int(after.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.Is(err, ErrInternal):
		code = http.StatusInternalServerError
	case errors.Is(err, context.Canceled):
		code = 499 // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

// decodeBody decodes a JSON request body into v, rejecting unknown fields
// so client typos fail loudly instead of silently solving the wrong thing.
func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}

// UploadRequest is the body of POST /instances.
type UploadRequest struct {
	// Name optionally labels the instance; identity is still the content
	// hash, so the label does not distinguish otherwise-equal uploads.
	Name string `json:"name,omitempty"`
	// Instance is the problem in the shared wire format.
	Instance encode.InstanceJSON `json:"instance"`
}

// UploadResponse is the body of a successful upload.
type UploadResponse struct {
	InstanceInfo
	// Created is false when an identical instance was already resident.
	Created bool `json:"created"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	in, err := req.Instance.Instance()
	if err != nil {
		writeError(w, err)
		return
	}
	info, created := s.engine.registry.Add(req.Name, in)
	if s.store != nil {
		// Saved on every upload, not only creations: re-uploads refresh the
		// label and retry a previously failed save. Identity is the content
		// hash, so the snapshot's payload never changes for a given id.
		if err := s.store.saveInstance(info.ID, info.Name, in); err != nil {
			s.counters.persistErrors.Add(1)
			writeError(w, fmt.Errorf("%w: persisting instance: %v", ErrInternal, err))
			return
		}
	}
	// Replicate the accepted upload to the ring successor so instance
	// reads survive this replica's failure (degraded failover; see
	// replica.go). Synchronous but PeerTimeout-bounded and best-effort.
	s.pushToSuccessor(info.ID, info.Name, in)
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, UploadResponse{InstanceInfo: info, Created: created})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.registry.List())
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, info, ok := s.engine.registry.Get(id)
	if !ok {
		if replicaFallbackAllowed(r) && s.replicaInfo(w, r, id) {
			return
		}
		writeError(w, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.engine.registry.Delete(id) {
		writeError(w, ErrNotFound)
		return
	}
	// Propagate to the successor's snapshot store so a deleted instance
	// cannot keep being served by failover reads.
	s.dropFromSuccessor(id)
	if s.store != nil {
		if err := s.store.deleteInstance(id); err != nil {
			// Memory state is already correct; the stale snapshot would
			// resurrect the instance on restart, so surface it loudly.
			s.counters.persistErrors.Add(1)
			writeError(w, fmt.Errorf("%w: deleting instance snapshot: %v", ErrInternal, err))
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// SolveRequest is the body of POST /instances/{id}/solve. An empty body is
// also accepted and means default options.
type SolveRequest struct {
	Options SolveOptions `json:"options"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if r.ContentLength != 0 {
		if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
			writeError(w, err)
			return
		}
	}
	res, err := s.engine.Solve(r.Context(), r.PathValue("id"), req.Options)
	if err != nil {
		if errors.Is(err, ErrNotFound) && replicaFallbackAllowed(r) &&
			s.replicaSolve(w, r, r.PathValue("id"), req.Options) {
			// Degraded failover: this replica only holds the instance as a
			// read-only snapshot for its down predecessor; the caller opted
			// into stale serving, so answer from the snapshot (Stale=true).
			return
		}
		if errors.Is(err, ErrOverloaded) && r.Header.Get(HeaderAllowStale) != "" {
			// Degraded mode: the request opted in, so overload serves the
			// last completed placement (flagged, with its age) instead of
			// shedding — stale beats unavailable for read-mostly callers.
			if stale, age, ok := s.engine.StaleResult(r.PathValue("id")); ok {
				s.counters.staleReads.Add(1)
				stale.Stale = true
				stale.StaleSeconds = age.Seconds()
				w.Header().Set(HeaderStale, strconv.FormatFloat(stale.StaleSeconds, 'f', 3, 64))
				writeJSON(w, http.StatusOK, stale)
				return
			}
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// WhatIfRequest is the body of POST /instances/{id}/whatif. Exactly one of
// Variants and Scenarios must be non-empty: Variants solves the resident
// instance under several options (the historical batch form); Scenarios
// solves modified copies of the instance under one shared Options,
// incrementally where only object workloads changed.
type WhatIfRequest struct {
	Variants []SolveOptions `json:"variants,omitempty"`
	// Options applies to every scenario (default options when omitted).
	Options   SolveOptions `json:"options,omitzero"`
	Scenarios []Scenario   `json:"scenarios,omitempty"`
}

// WhatIfResponse carries per-variant outcomes, index-aligned with the
// request: exactly one of Result / Error is set per slot.
type WhatIfResponse struct {
	Results []WhatIfOutcome `json:"results"`
}

// WhatIfOutcome is one variant's result or error.
type WhatIfOutcome struct {
	Result *SolveResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req WhatIfRequest
	if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Variants) == 0 && len(req.Scenarios) == 0 {
		writeError(w, fmt.Errorf("service: whatif needs at least one variant or scenario"))
		return
	}
	if len(req.Variants) > 0 && len(req.Scenarios) > 0 {
		writeError(w, fmt.Errorf("service: whatif takes variants or scenarios, not both"))
		return
	}
	if n := len(req.Variants) + len(req.Scenarios); n > s.cfg.MaxBatchVariants {
		writeError(w, fmt.Errorf("service: whatif batch of %d exceeds the %d-variant limit",
			n, s.cfg.MaxBatchVariants))
		return
	}
	var results []SolveResult
	var errs []error
	if len(req.Variants) > 0 {
		results, errs = s.engine.Batch(r.Context(), r.PathValue("id"), req.Variants)
	} else {
		results, errs = s.engine.WhatIf(r.Context(), r.PathValue("id"), req.Options, req.Scenarios)
	}
	resp := WhatIfResponse{Results: make([]WhatIfOutcome, len(results))}
	for i := range results {
		if errs[i] != nil {
			resp.Results[i].Error = errs[i].Error()
		} else {
			res := results[i]
			resp.Results[i].Result = &res
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// PlacementRequest is the body of cost and simulate calls: a placement in
// the shared wire format, keyed by object name.
type PlacementRequest struct {
	Placement encode.PlacementJSON `json:"placement"`
}

func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) {
	var req PlacementRequest
	if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	b, err := s.engine.Cost(r.PathValue("id"), req.Placement)
	if err != nil {
		if errors.Is(err, ErrNotFound) && replicaFallbackAllowed(r) &&
			s.replicaCost(w, r, r.PathValue("id"), req.Placement) {
			return
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, b)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req PlacementRequest
	if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	st, err := s.engine.Simulate(r.PathValue("id"), req.Placement)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("cluster") != "" {
		writeJSON(w, http.StatusOK, s.clusterStats(r.Context()))
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}
