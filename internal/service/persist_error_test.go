package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCrashHarnessMisuse pins the harness's guard rails: no double
// Start, no Clone of a live server, bounds-checked truncation, and
// errors for sessions that have no durable state.
func TestCrashHarnessMisuse(t *testing.T) {
	h := NewCrashHarness(t.TempDir(), Config{})
	h.Kill() // no-op before the first Start
	if h.Server() != nil {
		t.Fatal("server before Start")
	}
	if _, err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start(); err == nil {
		t.Fatal("second Start on a live harness succeeded")
	}
	if _, err := h.Clone(filepath.Join(t.TempDir(), "c")); err == nil {
		t.Fatal("Clone of a live harness succeeded")
	}
	if _, _, err := h.WALFile("s-000099"); err == nil {
		t.Fatal("WALFile of an unknown session succeeded")
	}
	ctx := context.Background()
	c := serveExisting(t, h.Server())
	up, err := c.Upload(ctx, "guard", pathInstance(t, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	ingestBatches(t, c, sess.SessionID, []SessionEvent{{Obj: "obj", Node: 1}}, 1)
	h.Kill()
	_, size, err := h.WALFile(sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.TruncateWAL(sess.SessionID, size+1); err == nil {
		t.Fatal("truncate past the end succeeded")
	}
	if err := h.TruncateWAL(sess.SessionID, -1); err == nil {
		t.Fatal("negative truncate succeeded")
	}
}

// TestSessionRecoverySkipsDamagedSessionFiles: each way a session's own
// files can rot — unreadable meta, unreadable or rejected snapshot, a
// config that no longer lowers — skips just that session (reserving its
// id) and never blocks startup.
func TestSessionRecoverySkipsDamagedSessionFiles(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "rot", pathInstance(t, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	ingestBatches(t, c, sid, []SessionEvent{{Obj: "obj", Node: 1}, {Obj: "obj", Node: 2}}, 2)
	h.Kill()

	damage := map[string]func(t *testing.T, dir string){
		"corrupt-meta": func(t *testing.T, dir string) {
			overwrite(t, filepath.Join(dir, "sessions", sid+".meta.json"), "{")
		},
		"corrupt-snap": func(t *testing.T, dir string) {
			overwrite(t, filepath.Join(dir, "sessions", sid+".snap.json"), "not json")
		},
		"zero-walseq": func(t *testing.T, dir string) {
			overwrite(t, filepath.Join(dir, "sessions", sid+".snap.json"), `{"wal_seq":0,"state":null}`)
		},
		"bad-config": func(t *testing.T, dir string) {
			meta, _ := json.Marshal(sessionMetaJSON{SessionID: sid, InstanceID: up.ID,
				Config: SessionConfig{Epoch: 8, Alpha: 2}}) // alpha outside [0,1]
			overwrite(t, filepath.Join(dir, "sessions", sid+".meta.json"), string(meta))
		},
		"state-shape-mismatch": func(t *testing.T, dir string) {
			p := filepath.Join(dir, "sessions", sid+".snap.json")
			buf, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			var snap sessionSnapJSON
			if err := json.Unmarshal(buf, &snap); err != nil {
				t.Fatal(err)
			}
			snap.State.Objects = snap.State.Objects[:0] // wrong object count
			out, _ := json.Marshal(snap)
			overwrite(t, p, string(out))
		},
	}
	for name, breakIt := range damage {
		t.Run(name, func(t *testing.T) {
			clone, err := h.Clone(filepath.Join(t.TempDir(), "d"))
			if err != nil {
				t.Fatal(err)
			}
			breakIt(t, clone.Dir())
			csrv, err := clone.Start()
			if err != nil {
				t.Fatalf("damaged session blocked startup: %v", err)
			}
			cc := serveExisting(t, csrv)
			if got, err := cc.Sessions(ctx); err != nil || len(got) != 0 {
				t.Fatalf("sessions: %+v err=%v", got, err)
			}
			// The damaged id stays reserved.
			fresh, err := cc.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
			if err != nil {
				t.Fatal(err)
			}
			if fresh.SessionID <= sid {
				t.Fatalf("fresh id %s does not advance past damaged %s", fresh.SessionID, sid)
			}
			clone.Kill()
		})
	}
}

func overwrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPersistWriteFailures drives the handlers' persistence-error
// branches by yanking the store's subdirectories out from under a live
// server: uploads and session opens fail loudly (nothing half-persisted
// lingers), epoch rotations degrade to a counted warning, and flushes
// refuse to ack a checkpoint they could not write.
func TestPersistWriteFailures(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "fail", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID

	// Sabotage the sessions directory: the open WAL handle still accepts
	// appends (the fd survives), but rotation cannot create the next
	// generation.
	if err := os.RemoveAll(filepath.Join(h.Dir(), "sessions")); err != nil {
		t.Fatal(err)
	}
	// Epoch-closing batch: rotation fails, the batch is still acked and
	// the failure is counted.
	resp, err := c.SessionEvents(ctx, sid, driftTrace(24, 4))
	if err != nil || resp.Accepted != 4 {
		t.Fatalf("epoch batch under rotation failure: %+v err=%v", resp, err)
	}
	if n := srv.Stats().PersistErrors; n == 0 {
		t.Fatal("failed rotation not counted")
	}
	// A flush cannot be made durable: it must refuse, not silently ack.
	if _, err := c.SessionFlush(ctx, sid); err == nil {
		t.Fatal("flush acked without a durable checkpoint")
	} else if !strings.Contains(err.Error(), "flush not durable") {
		t.Fatalf("flush error: %v", err)
	}
	// Opening a session cannot persist its meta: the open rolls back.
	if _, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 4}); err == nil {
		t.Fatal("session open acked without durable meta")
	}
	if n := srv.sessions.len(); n != 1 {
		t.Fatalf("rolled-back open left %d sessions registered", n)
	}

	// Sabotage the instances directory the same way: uploads must fail.
	if err := os.RemoveAll(filepath.Join(h.Dir(), "instances")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload(ctx, "fail2", pathInstance(t, 10, 5)); err == nil {
		t.Fatal("upload acked without a durable snapshot")
	}
	// Deleting with a broken store surfaces the failure too (a stale
	// snapshot would resurrect the instance on restart). os.Remove fails
	// with ENOTDIR when a file squats on the directory name.
	if err := os.WriteFile(filepath.Join(h.Dir(), "instances"), []byte("squat"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, up.ID); err == nil {
		t.Fatal("delete acked with an undeletable snapshot")
	}
}

// TestOpenFailsOnUnusableDataDir: Open must refuse a data directory it
// cannot create or read rather than silently running in-memory.
func TestOpenFailsOnUnusableDataDir(t *testing.T) {
	squat := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(squat, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{DataDir: filepath.Join(squat, "nested")}); err == nil {
		t.Fatal("Open under a regular file succeeded")
	}
	// A store whose sessions dir is unreadable fails recovery.
	dir := t.TempDir()
	if _, err := openStore(dir, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, "sessions")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sessions"), []byte("squat"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{DataDir: dir}); err == nil {
		t.Fatal("Open with an unreadable session store succeeded")
	}
}

// TestSessionLogAppendRollbackAndPoison unit-tests the WAL append's
// failure contract: a failed write rolls the file back to the durable
// prefix; when even the rollback fails, the log marks itself broken and
// refuses everything until a restart reopens it.
func TestSessionLogAppendRollbackAndPoison(t *testing.T) {
	st, err := openStore(t.TempDir(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := st.createSessionLog("s-0000ff", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.append([][]byte{[]byte("{\"obj\":\"a\",\"node\":1}\n")}, 0); err != nil {
		t.Fatal(err)
	}
	durable := l.size
	// Sabotage the fd: the next flush/sync fails, and so does the
	// rollback truncate — the log must poison itself.
	l.f.Close()
	if err := l.append([][]byte{[]byte("{\"obj\":\"a\",\"node\":2}\n")}, 0); err == nil {
		t.Fatal("append on a closed fd succeeded")
	}
	if !l.broken {
		t.Fatal("failed rollback did not mark the log broken")
	}
	if err := l.append([][]byte{[]byte("x\n")}, 0); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("broken log accepted an append: %v", err)
	}
	if err := l.rotate(nil, 0); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("broken log accepted a rotate: %v", err)
	}
	// A restart-style reopen over the durable prefix works again.
	l2, err := st.openSessionLog("s-0000ff", 1, durable)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.append([][]byte{[]byte("{\"obj\":\"a\",\"node\":3}\n")}, 0); err != nil {
		t.Fatal(err)
	}
	l2.close()
}

// TestSessionOpenRollbackOnLaterPersistSteps drives the open-rollback
// branches past the meta write: WAL creation failure and initial
// snapshot failure must both un-register the session.
func TestSessionOpenRollbackOnLaterPersistSteps(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "rollback", pathInstance(t, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8}); err != nil {
		t.Fatal(err) // s-000001, keeps the table non-empty
	}
	// The next session would be s-000002: squat a directory on its WAL
	// path so createSessionLog fails after the meta write.
	if err := os.Mkdir(filepath.Join(h.Dir(), "sessions", "s-000002.wal.1.jsonl"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8}); err == nil {
		t.Fatal("open with an uncreatable WAL succeeded")
	}
	// And s-000003: squat a non-empty directory on its snapshot path so
	// the atomic rename fails after meta and WAL succeed.
	snapDir := filepath.Join(h.Dir(), "sessions", "s-000003.snap.json")
	if err := os.MkdirAll(filepath.Join(snapDir, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8}); err == nil {
		t.Fatal("open with an unwritable snapshot succeeded")
	}
	if n := srv.sessions.len(); n != 1 {
		t.Fatalf("rolled-back opens left %d sessions registered", n)
	}
	if n := srv.Stats().PersistErrors; n < 2 {
		t.Fatalf("persist errors: %d, want >= 2", n)
	}
	// The server is not poisoned: a clean id still opens.
	if _, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8}); err != nil {
		t.Fatalf("open after rollbacks: %v", err)
	}
}

// TestRecoveryWithMissingWAL: a crash can land between the snapshot
// rename and the new segment's creation; the snapshot alone is then the
// complete state and recovery must treat the absent WAL as empty.
func TestRecoveryWithMissingWAL(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "nowal", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	ingestBatches(t, c, sid, driftTrace(24, 8), 8) // one epoch: snapshot at 8 events
	ingestBatches(t, c, sid, driftTrace(24, 3), 3) // 3 events only in the WAL
	h.Kill()
	path, _, err := h.WALFile(sid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	srv, err = h.Start()
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.RecoveredSessions != 1 || st.SessionEvents != 8 || st.WALDiscardedBytes != 0 {
		t.Fatalf("recovery with missing wal: %+v", st)
	}
	// The reopened log accepts appends (the segment is recreated).
	c = serveExisting(t, srv)
	if r, err := c.SessionEvents(ctx, sid, driftTrace(24, 2)); err != nil || r.Stats.Events != 10 {
		t.Fatalf("ingest after missing-wal recovery: %+v err=%v", r, err)
	}
}

// TestRecoverySkipsWALReadError: a WAL that exists but cannot be read
// as a file (a directory squatting its path) skips the session instead
// of failing startup.
func TestRecoverySkipsWALReadError(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "badwal", pathInstance(t, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	h.Kill()
	path, _, err := h.WALFile(sid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	srv, err = h.Start()
	if err != nil {
		t.Fatalf("unreadable wal blocked startup: %v", err)
	}
	if st := srv.Stats(); st.RecoveredSessions != 0 || st.SessionsOpen != 0 {
		t.Fatalf("session with unreadable wal recovered: %+v", st)
	}
}

// TestClientErrorBodiesAndScenarios covers the client's non-JSON error
// fallback (raw body surfaced, capped) plus the typed scenario batch and
// instance String helpers that round out the client surface.
func TestClientErrorBodiesAndScenarios(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "scen", pathInstance(t, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	infos, err := c.List(ctx)
	if err != nil || len(infos) != 1 {
		t.Fatalf("list: %+v err=%v", infos, err)
	}
	if s := infos[0].String(); !strings.Contains(s, up.ID) || !strings.Contains(s, "8 nodes") {
		t.Fatalf("InstanceInfo.String: %q", s)
	}
	out, err := c.WhatIfScenarios(ctx, up.ID, SolveOptions{}, []Scenario{
		{Label: "base"},
		{Label: "hot-reads", Objects: []ObjectPatch{{Name: "obj", Reads: []int64{9, 9, 0, 0, 0, 0, 0, 0}}}},
	})
	if err != nil || len(out) != 2 {
		t.Fatalf("scenarios: %+v err=%v", out, err)
	}
	// A non-JSON error body (plain 404 from the mux) must surface through
	// the fallback formatting, not vanish into a bare status code.
	err = c.do(ctx, "GET", "/definitely/not/a/route", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "HTTP 404") || !strings.Contains(err.Error(), "page not found") {
		t.Fatalf("non-JSON error body lost: %v", err)
	}
}

// TestResultCacheLRU unit-tests the solve cache: update-in-place,
// recency-ordered eviction, and the disabled (cap<=0) mode.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // update refreshes recency, no growth
	if n := c.Len(); n != 2 {
		t.Fatalf("len after update: %d", n)
	}
	c.Put("c", 3) // evicts "b", the least recently used
	if _, ok := c.Get("b"); ok {
		t.Fatal("lru entry survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("updated entry: %v %v", v, ok)
	}
	off := newResultCache(0)
	off.Put("x", 1)
	if _, ok := off.Get("x"); ok || off.Len() != 0 {
		t.Fatal("disabled cache stored a value")
	}
}
