package service

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// CrashHarness drives kill/restart cycles of a persistent server over
// one data directory — the fault-injection half of the persistence
// layer's test suite, exported so integration tests outside this package
// (and future cluster tests) can reuse it.
//
// The lifecycle is Start → use the server → Kill → Start again; Kill is
// a SIGKILL equivalent: it abandons every open WAL handle without
// flushing application buffers, so anything the server acked (and
// therefore fsynced) survives and anything buffered mid-request is
// lost, exactly like a real crash. TruncateWAL additionally simulates a
// torn final write by cutting the current WAL generation at an
// arbitrary byte offset.
//
// The multi-process sibling is cluster.Harness (internal/cluster),
// which kills whole netplaced processes instead of in-process servers.
// Both follow the same flake-hardening pattern, which any new
// process-spawning test should too:
//
//   - Ports are pre-allocated by binding 127.0.0.1:0 and closing, never
//     chosen from a fixed range; the close-to-exec race window is
//     covered by retrying the whole boot with fresh ports.
//   - Readiness is only ever established by polling /readyz until 200
//     (failing fast if the process exits meanwhile) — never by sleeping
//     a guessed duration. Guessed sleeps are where timing flakes live.
//   - Crash points sit at acked-batch boundaries, so the durable prefix
//     is deterministic and assertions can demand byte identity instead
//     of tolerating a loss window.
type CrashHarness struct {
	dir string
	cfg Config
	srv *Server
}

// NewCrashHarness prepares a harness over dir (created if missing).
// cfg.DataDir is forced to dir; cfg.NoSync is honoured.
func NewCrashHarness(dir string, cfg Config) *CrashHarness {
	cfg.DataDir = dir
	return &CrashHarness{dir: dir, cfg: cfg}
}

// Dir returns the harness's data directory.
func (h *CrashHarness) Dir() string { return h.dir }

// Start opens a server over the data directory, recovering whatever
// state previous incarnations left behind.
func (h *CrashHarness) Start() (*Server, error) {
	if h.srv != nil {
		return nil, fmt.Errorf("service: crash harness already has a live server; Kill it first")
	}
	srv, err := Open(h.cfg)
	if err != nil {
		return nil, err
	}
	h.srv = srv
	return srv, nil
}

// Server returns the live server, or nil between Kill and Start.
func (h *CrashHarness) Server() *Server { return h.srv }

// Kill crashes the live server: every session's WAL handle is closed
// without flushing buffered writes and the server is discarded. No
// snapshot, flush, or cleanup runs — durable state is exactly what the
// server had already fsynced.
func (h *CrashHarness) Kill() {
	if h.srv == nil {
		return
	}
	for _, sess := range h.srv.sessions.list() {
		sess.mu.Lock()
		if sess.log != nil {
			sess.log.abandon()
			sess.log = nil
		}
		sess.mu.Unlock()
	}
	h.srv = nil
}

// KillOSCrash crashes the whole machine, not just the process: besides
// abandoning WAL handles it truncates each live WAL back to its last
// fsynced offset, discarding writes that only reached the kernel page
// cache. With a group-commit interval (Config.FsyncInterval > 0) this
// is the crash mode that actually loses acked-but-unsynced batches —
// the loss window the interval trades for throughput.
func (h *CrashHarness) KillOSCrash() error {
	if h.srv == nil {
		return nil
	}
	type cut struct {
		path string
		size int64
	}
	var cuts []cut
	for _, sess := range h.srv.sessions.list() {
		sess.mu.Lock()
		if sess.log != nil {
			cuts = append(cuts, cut{h.srv.store.sessionWALPath(sess.ID, sess.log.seq), sess.log.synced})
			sess.log.abandon()
			sess.log = nil
		}
		sess.mu.Unlock()
	}
	h.srv = nil
	for _, c := range cuts {
		if err := os.Truncate(c.path, c.size); err != nil {
			return err
		}
	}
	return nil
}

// WALFile returns the path and current size of a session's live WAL
// generation (the one the session's snapshot references). It reads the
// on-disk snapshot, so it works on a killed harness too.
func (h *CrashHarness) WALFile(sessionID string) (path string, size int64, err error) {
	st := &store{dir: h.dir, noSync: h.cfg.NoSync}
	snap, err := st.readSessionSnap(sessionID)
	if err != nil {
		return "", 0, err
	}
	path = st.sessionWALPath(sessionID, snap.WALSeq)
	fi, err := os.Stat(path)
	if err != nil {
		return "", 0, err
	}
	return path, fi.Size(), nil
}

// TruncateWAL cuts a session's live WAL generation to size bytes,
// simulating a torn final write (a crash mid-write, a lost disk block).
// Use on a killed harness before restarting.
func (h *CrashHarness) TruncateWAL(sessionID string, size int64) error {
	path, cur, err := h.WALFile(sessionID)
	if err != nil {
		return err
	}
	if size < 0 || size > cur {
		return fmt.Errorf("service: truncate to %d outside [0,%d]", size, cur)
	}
	return os.Truncate(path, size)
}

// Clone copies the harness's data directory into dst (which must not
// exist) and returns a harness over the copy — so one ingested history
// can be crashed at many different offsets, each in its own sandbox.
// Clone only a killed (or never-started) harness: a live server may be
// mid-write.
func (h *CrashHarness) Clone(dst string) (*CrashHarness, error) {
	if h.srv != nil {
		return nil, fmt.Errorf("service: clone of a live harness; Kill it first")
	}
	if err := copyTree(h.dir, dst); err != nil {
		return nil, err
	}
	return NewCrashHarness(dst, h.cfg), nil
}

// copyTree recursively copies a directory of regular files.
func copyTree(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := copyTree(s, d); err != nil {
				return err
			}
			continue
		}
		if err := copyFile(s, d); err != nil {
			return err
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
