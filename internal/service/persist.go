package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/stream"
	"netplace/internal/workload"
)

// store is the server's persistence layer under one data directory:
//
//	<dir>/instances/<id>.json           instance snapshot (content-hash named)
//	<dir>/sessions/<sid>.meta.json      session identity + wire config
//	<dir>/sessions/<sid>.snap.json      engine state snapshot + WAL generation
//	<dir>/sessions/<sid>.wal.<seq>.jsonl  event log since that snapshot
//
// Instances are snapshotted once at registration (their content hash is
// their identity, so the file never changes). Session durability is
// snapshot + WAL: every acked events batch is appended to the WAL and
// fsynced before it is applied, and every epoch close rotates — a fresh
// (empty) WAL generation is created, the engine state is snapshotted
// referencing it, and the old generation is deleted. Recovery is
// snapshot restore + WAL replay through the same stream.Engine path, so
// a recovered session is byte-identical to one that never stopped.
//
// All snapshot writes are atomic (tmp + fsync + rename + dir fsync);
// noSync drops the fsyncs for throughput at the price of durability
// across an OS crash (process crashes still lose nothing acked).
type store struct {
	dir       string
	noSync    bool
	syncEvery time.Duration // WAL group-commit interval; 0 fsyncs every append
}

// openStore creates the data directory layout and returns the store.
// syncEvery batches WAL fsyncs (Config.FsyncInterval); snapshot writes
// always fsync regardless.
func openStore(dir string, noSync bool, syncEvery time.Duration) (*store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "instances"), filepath.Join(dir, "sessions")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("service: creating data dir: %w", err)
		}
	}
	return &store{dir: dir, noSync: noSync, syncEvery: syncEvery}, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable. A no-op under noSync.
func (st *store) syncDir(dir string) error {
	if st.noSync {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// atomicWrite durably replaces path with data: write to a .tmp sibling,
// fsync, rename over the target, fsync the directory.
func (st *store) atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if !st.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return st.syncDir(filepath.Dir(path))
}

// instanceFileJSON is the on-disk instance record: the client label plus
// the instance in the shared wire format.
type instanceFileJSON struct {
	Name     string              `json:"name,omitempty"`
	Instance encode.InstanceJSON `json:"instance"`
}

func (st *store) instancePath(id string) string {
	return filepath.Join(st.dir, "instances", id+".json")
}

// saveInstance snapshots a registered instance under its registry id.
func (st *store) saveInstance(id, name string, in *core.Instance) error {
	buf, err := json.Marshal(instanceFileJSON{Name: name, Instance: encode.InstanceJSONOf(in)})
	if err != nil {
		return err
	}
	return st.atomicWrite(st.instancePath(id), buf)
}

// deleteInstance removes an instance snapshot; a missing file is not an
// error (the instance may predate the data dir or have failed to save).
func (st *store) deleteInstance(id string) error {
	if err := os.Remove(st.instancePath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// storedInstance is one instance loaded back from disk.
type storedInstance struct {
	Name     string
	Instance *core.Instance
}

// loadInstances reads every instance snapshot, skipping (with a logged
// warning) files that are unreadable, invalid, or whose content hash no
// longer matches their id — a corrupt snapshot must not poison startup.
func (st *store) loadInstances() ([]storedInstance, error) {
	dir := filepath.Join(st.dir, "instances")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: reading instance store: %w", err)
	}
	var out []storedInstance
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			log.Printf("service: skipping instance %s: %v", id, err)
			continue
		}
		var file instanceFileJSON
		if err := json.Unmarshal(buf, &file); err != nil {
			log.Printf("service: skipping corrupt instance %s: %v", id, err)
			continue
		}
		in, err := file.Instance.Instance()
		if err != nil {
			log.Printf("service: skipping invalid instance %s: %v", id, err)
			continue
		}
		if hash := encode.HashInstance(in); hash[:idLen] != id {
			log.Printf("service: skipping instance %s: content hash %s does not match its id", id, hash[:idLen])
			continue
		}
		out = append(out, storedInstance{Name: file.Name, Instance: in})
	}
	return out, nil
}

// sessionMetaJSON is the on-disk session identity: which instance it
// streams against and the wire config it was opened with (re-lowered to
// a stream.Config at recovery — deterministic, so the restored engine is
// configured exactly as the original).
type sessionMetaJSON struct {
	SessionID  string        `json:"session_id"`
	InstanceID string        `json:"instance_id"`
	Config     SessionConfig `json:"config"`
}

// walFormatVersion is the WAL wire format this server writes: version 2
// groups event lines into batches terminated by stream.WALCommit marker
// lines, giving batch-atomic recovery and durable idempotency sequence
// numbers. Snapshots record the version so version-1 WALs (plain event
// lines, line-atomic recovery) from older servers still recover.
const walFormatVersion = 2

// sessionSnapJSON pairs an engine state snapshot with the WAL generation
// holding the events observed after it, that WAL's format version, and
// the idempotency sequence high-water mark at the snapshot point.
type sessionSnapJSON struct {
	WALSeq  int                 `json:"wal_seq"`
	WALVer  int                 `json:"wal_ver,omitempty"`
	LastSeq int64               `json:"last_seq,omitempty"`
	State   *stream.EngineState `json:"state"`
}

func (st *store) sessionMetaPath(sid string) string {
	return filepath.Join(st.dir, "sessions", sid+".meta.json")
}

func (st *store) sessionSnapPath(sid string) string {
	return filepath.Join(st.dir, "sessions", sid+".snap.json")
}

func (st *store) sessionWALPath(sid string, seq int) string {
	return filepath.Join(st.dir, "sessions", fmt.Sprintf("%s.wal.%d.jsonl", sid, seq))
}

func (st *store) saveSessionMeta(meta sessionMetaJSON) error {
	buf, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	return st.atomicWrite(st.sessionMetaPath(meta.SessionID), buf)
}

func (st *store) readSessionMeta(sid string) (sessionMetaJSON, error) {
	var meta sessionMetaJSON
	buf, err := os.ReadFile(st.sessionMetaPath(sid))
	if err != nil {
		return meta, err
	}
	if err := json.Unmarshal(buf, &meta); err != nil {
		return meta, fmt.Errorf("service: corrupt session meta: %w", err)
	}
	return meta, nil
}

func (st *store) saveSessionSnap(sid string, seq int, state *stream.EngineState, lastSeq int64) error {
	buf, err := json.Marshal(sessionSnapJSON{WALSeq: seq, WALVer: walFormatVersion, LastSeq: lastSeq, State: state})
	if err != nil {
		return err
	}
	return st.atomicWrite(st.sessionSnapPath(sid), buf)
}

func (st *store) readSessionSnap(sid string) (sessionSnapJSON, error) {
	var snap sessionSnapJSON
	buf, err := os.ReadFile(st.sessionSnapPath(sid))
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(buf, &snap); err != nil {
		return snap, fmt.Errorf("service: corrupt session snapshot: %w", err)
	}
	if snap.WALSeq <= 0 || snap.State == nil {
		return snap, fmt.Errorf("service: corrupt session snapshot: wal_seq %d, state %v", snap.WALSeq, snap.State != nil)
	}
	return snap, nil
}

// listSessionIDs returns the ids of every session with a meta file,
// sorted so recovery order (and therefore id-counter restoration) is
// deterministic.
func (st *store) listSessionIDs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "sessions"))
	if err != nil {
		return nil, fmt.Errorf("service: reading session store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".meta.json") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".meta.json"))
	}
	sort.Strings(ids)
	return ids, nil
}

// sessionWALs returns the WAL generations present for a session.
func (st *store) sessionWALs(sid string) ([]int, error) {
	matches, err := filepath.Glob(filepath.Join(st.dir, "sessions", sid+".wal.*.jsonl"))
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), sid+".wal."), ".jsonl")
		if seq, err := strconv.Atoi(base); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// cleanStraySegments deletes WAL generations other than keep — leftovers
// of a rotation that crashed between creating the next generation and
// deleting the previous one (either order is recoverable; only keep is
// referenced by the snapshot).
func (st *store) cleanStraySegments(sid string, keep int) {
	seqs, err := st.sessionWALs(sid)
	if err != nil {
		return
	}
	for _, seq := range seqs {
		if seq != keep {
			os.Remove(st.sessionWALPath(sid, seq))
		}
	}
}

// removeSessionFiles deletes every file of a session (meta, snapshot,
// all WAL generations). Best-effort: the first error is returned but
// removal continues.
func (st *store) removeSessionFiles(sid string) error {
	var first error
	keep := func(err error) {
		if err != nil && !errors.Is(err, fs.ErrNotExist) && first == nil {
			first = err
		}
	}
	if seqs, err := st.sessionWALs(sid); err == nil {
		for _, seq := range seqs {
			keep(os.Remove(st.sessionWALPath(sid, seq)))
		}
	}
	keep(os.Remove(st.sessionSnapPath(sid)))
	keep(os.Remove(st.sessionMetaPath(sid)))
	return first
}

// sessionLog is one session's open WAL generation. Access is serialised
// by the session mutex, like the engine it journals for.
//
// The append contract mirrors the ingest path's all-or-nothing
// semantics: append writes a batch of complete event lines plus a
// stream.WALCommit marker line carrying the batch's idempotency
// sequence number, and makes the whole batch durable before returning;
// on failure it truncates back to the last acked offset so a partial
// batch can never be followed by later appends (which would corrupt the
// middle of the log — a torn *tail* is recoverable, a torn middle is
// not). If even the truncate fails the log is marked broken and every
// later append errors.
//
// Durability is per-append by default; with store.syncEvery set, fsyncs
// group-commit — an append fsyncs only when the interval elapsed since
// the last one, so an OS crash can lose at most one interval of acked
// batches (a process crash still loses nothing: every append is flushed
// to the OS). synced tracks the last offset known to have hit the disk;
// the crash harness's OS-crash simulation truncates to it.
type sessionLog struct {
	st       *store
	id       string
	seq      int
	f        *os.File
	bw       *bufio.Writer
	size     int64 // acked bytes: offset after the last acked batch
	synced   int64 // fsynced bytes: offset the OS promised is on disk
	lastSync time.Time
	broken   bool
}

// createSessionLog starts WAL generation seq for a session (a fresh,
// empty log).
func (st *store) createSessionLog(sid string, seq int) (*sessionLog, error) {
	f, err := os.OpenFile(st.sessionWALPath(sid, seq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &sessionLog{st: st, id: sid, seq: seq, f: f, bw: bufio.NewWriter(f), lastSync: time.Now()}, nil
}

// openSessionLog reopens WAL generation seq for appending after
// recovery truncated it to size valid bytes.
func (st *store) openSessionLog(sid string, seq int, size int64) (*sessionLog, error) {
	f, err := os.OpenFile(st.sessionWALPath(sid, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &sessionLog{st: st, id: sid, seq: seq, f: f, bw: bufio.NewWriter(f), size: size, synced: size, lastSync: time.Now()}, nil
}

// append writes a batch of newline-terminated event lines followed by
// its commit marker (batchSeq is the client's idempotency sequence
// number, 0 for unsequenced batches) and makes the batch durable —
// fsyncing every append, or at the store's group-commit interval. On
// any failure it rolls the file back to the last acked offset and
// reports the error; the engine state must not advance when append
// fails.
func (l *sessionLog) append(lines [][]byte, batchSeq int64) error {
	if l.broken {
		return fmt.Errorf("service: session %s wal is broken; reopen the session after a restart", l.id)
	}
	marker, err := json.Marshal(stream.WALCommit{Seq: batchSeq, N: len(lines)})
	if err != nil {
		return fmt.Errorf("service: wal append: %w", err)
	}
	marker = append(marker, '\n')
	var n int64
	write := func() error {
		for _, line := range lines {
			if _, err := l.bw.Write(line); err != nil {
				return err
			}
			n += int64(len(line))
		}
		if _, err := l.bw.Write(marker); err != nil {
			return err
		}
		n += int64(len(marker))
		if err := l.bw.Flush(); err != nil {
			return err
		}
		if !l.st.noSync && (l.st.syncEvery <= 0 || time.Since(l.lastSync) >= l.st.syncEvery) {
			if err := l.f.Sync(); err != nil {
				return err
			}
			l.synced = l.size + n
			l.lastSync = time.Now()
		}
		return nil
	}
	if err := write(); err != nil {
		// Roll back to the acked prefix so the log stays appendable.
		l.bw.Reset(l.f)
		if terr := l.f.Truncate(l.size); terr != nil {
			l.broken = true
		}
		return fmt.Errorf("service: wal append: %w", err)
	}
	l.size += n
	return nil
}

// rotate starts the next WAL generation and snapshots the engine state
// against it: create wal.(seq+1), atomically write the snapshot
// referencing it, delete the old generation. Every crash point is
// recoverable — until the snapshot rename lands, recovery still uses the
// old snapshot + old (intact) WAL; after it, the new snapshot + empty
// WAL. On error the log keeps its current generation and the caller's
// state remains recoverable by replay.
func (l *sessionLog) rotate(state *stream.EngineState, lastSeq int64) error {
	if l.broken {
		return fmt.Errorf("service: session %s wal is broken", l.id)
	}
	next, err := l.st.createSessionLog(l.id, l.seq+1)
	if err != nil {
		return fmt.Errorf("service: wal rotate: %w", err)
	}
	if err := l.st.saveSessionSnap(l.id, next.seq, state, lastSeq); err != nil {
		next.f.Close()
		os.Remove(l.st.sessionWALPath(l.id, next.seq))
		return fmt.Errorf("service: wal rotate: %w", err)
	}
	old := l.f
	oldSeq := l.seq
	l.f, l.bw, l.seq, l.size = next.f, next.bw, next.seq, 0
	l.synced, l.lastSync = 0, time.Now()
	old.Close()
	os.Remove(l.st.sessionWALPath(l.id, oldSeq))
	return nil
}

// close flushes and closes the log file (normal shutdown).
func (l *sessionLog) close() {
	l.bw.Flush()
	l.f.Close()
}

// abandon closes the log file WITHOUT flushing buffered data — the
// crash harness's SIGKILL equivalent. Anything acked was already
// flushed and fsynced by append, so abandoning loses only unacked work,
// exactly like a real kill.
func (l *sessionLog) abandon() {
	l.f.Close()
}

// remove closes the log and deletes every file of its session.
func (l *sessionLog) remove() error {
	l.f.Close()
	return l.st.removeSessionFiles(l.id)
}

// persistNewSession writes a just-opened session's meta, initial WAL
// generation, and initial snapshot, and returns the open log. Written in
// that order so a crash mid-open leaves either no snapshot (recovery
// skips the half-created session — the open was never acked) or a fully
// recoverable one.
func (s *Server) persistNewSession(sess *Session, cfg SessionConfig) (*sessionLog, error) {
	meta := sessionMetaJSON{SessionID: sess.ID, InstanceID: sess.InstanceID, Config: cfg}
	if err := s.store.saveSessionMeta(meta); err != nil {
		return nil, err
	}
	l, err := s.store.createSessionLog(sess.ID, 1)
	if err != nil {
		return nil, err
	}
	if err := s.store.saveSessionSnap(sess.ID, 1, sess.engine.State(), 0); err != nil {
		l.f.Close()
		return nil, err
	}
	return l, nil
}

// recoverState reloads instances and sessions from the data directory.
// Individually damaged records are logged and skipped (a corrupt file
// must not block startup); only store-level I/O failures are returned.
func (s *Server) recoverState() error {
	insts, err := s.store.loadInstances()
	if err != nil {
		return err
	}
	for _, si := range insts {
		s.engine.registry.Add(si.Name, si.Instance)
	}
	ids, err := s.store.listSessionIDs()
	if err != nil {
		return err
	}
	for _, sid := range ids {
		s.recoverSession(sid)
	}
	return nil
}

// recoverSession rebuilds one session: restore the engine from its
// snapshot, replay the WAL's longest valid prefix through the normal
// Observe path (truncating a torn tail), and re-register it under its
// original id. Recovery writes no new snapshot — replay is idempotent,
// so crashing during recovery just replays again — with one exception:
// a session recovered from a pre-v2 snapshot rotates immediately, so
// the commit-marker batches appended from now on are never mixed into a
// log a v1 (line-granular) recovery would decode.
func (s *Server) recoverSession(sid string) {
	meta, err := s.store.readSessionMeta(sid)
	if err != nil {
		log.Printf("service: skipping session %s: %v", sid, err)
		s.sessions.reserve(sid)
		return
	}
	snap, err := s.store.readSessionSnap(sid)
	if err != nil {
		log.Printf("service: skipping session %s: %v", sid, err)
		s.sessions.reserve(sid)
		return
	}
	in, _, ok := s.engine.registry.Get(meta.InstanceID)
	if !ok {
		log.Printf("service: skipping session %s: instance %s is not resident", sid, meta.InstanceID)
		s.sessions.reserve(sid)
		return
	}
	cfg, err := meta.Config.streamConfig(s.engine.runWorkers(), s.cfg.Parallel)
	if err != nil {
		log.Printf("service: skipping session %s: %v", sid, err)
		s.sessions.reserve(sid)
		return
	}
	sess := &Session{
		ID:         sid,
		InstanceID: meta.InstanceID,
		instance:   in,
		objIndex:   stream.ObjectIndex(in),
	}
	cfg.SolveGate = s.sessionGate(sess)
	eng, err := stream.Restore(in, cfg, snap.State)
	if err != nil {
		log.Printf("service: skipping session %s: %v", sid, err)
		s.sessions.reserve(sid)
		return
	}

	walPath := s.store.sessionWALPath(sid, snap.WALSeq)
	events, walSeq, valid, size, err := s.decodeSessionWAL(walPath, in, snap.WALVer >= 2)
	if err != nil {
		log.Printf("service: skipping session %s: %v", sid, err)
		s.sessions.reserve(sid)
		return
	}
	sess.lastSeq = snap.LastSeq
	if walSeq > sess.lastSeq {
		sess.lastSeq = walSeq
	}
	if discarded := size - valid; discarded > 0 {
		log.Printf("service: session %s: discarding %d bytes of torn wal tail (%d valid)", sid, discarded, valid)
		s.counters.walDiscarded.Add(discarded)
		if err := os.Truncate(walPath, valid); err != nil {
			log.Printf("service: skipping session %s: truncating torn wal: %v", sid, err)
			s.sessions.reserve(sid)
			return
		}
	}
	for _, r := range events {
		if _, err := eng.Observe(r); err != nil {
			// DecodeWAL validated every event; reaching this is a bug, but
			// a skipped session beats a poisoned server.
			log.Printf("service: skipping session %s: replay: %v", sid, err)
			s.sessions.reserve(sid)
			return
		}
	}
	l, err := s.store.openSessionLog(sid, snap.WALSeq, valid)
	if err != nil {
		log.Printf("service: skipping session %s: reopening wal: %v", sid, err)
		s.sessions.reserve(sid)
		return
	}
	s.store.cleanStraySegments(sid, snap.WALSeq)
	if snap.WALVer < walFormatVersion {
		// Upgrade path: append writes v2 commit-marker batches, but the
		// snapshot still selects the line-granular v1 decoder. If a crash
		// landed before the first natural rotation, the next recovery
		// would read the first marker as a torn tail and truncate every
		// acknowledged batch after it. Rotate now — fresh empty
		// generation, snapshot stamped wal_ver=2 — before any append.
		if err := l.rotate(eng.State(), sess.lastSeq); err != nil {
			log.Printf("service: skipping session %s: upgrading wal format: %v", sid, err)
			l.close()
			s.sessions.reserve(sid)
			return
		}
	}
	sess.engine = eng
	sess.log = l
	if err := s.sessions.restore(sess); err != nil {
		log.Printf("service: skipping session %s: %v", sid, err)
		l.close()
		return
	}
	// Reconstruct the /statz session counters from the recovered engine:
	// its stats cover every event and epoch the session ever saw, so the
	// counters match an uninterrupted run (sessions deleted before the
	// crash are gone from both).
	st := eng.Stats()
	s.counters.sessionsOpened.Add(1)
	s.counters.recoveredSessions.Add(1)
	s.counters.sessionEvents.Add(int64(st.Events))
	s.counters.sessionEpochs.Add(int64(st.Epochs))
	s.counters.sessionResolves.Add(int64(st.Resolves))
	s.counters.sessionMoves.Add(int64(st.Moves))
}

// decodeSessionWAL reads a WAL file's longest valid prefix. With
// batchAtomic (version-2 WALs, the format this server writes) the
// prefix is the committed batches — events after the last commit marker
// belong to an unacknowledged batch and are excluded, and lastSeq is
// the highest committed idempotency sequence number; without it
// (version-1 WALs from older servers) recovery is line-granular and
// lastSeq is 0. A missing file is an empty log (the crash may have
// landed before the first append — or between snapshot rename and
// segment creation, where the snapshot alone is the complete state).
func (s *Server) decodeSessionWAL(path string, in *core.Instance, batchAtomic bool) (events []workload.Request, lastSeq, valid, size int64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	var seq []workload.Request
	if batchAtomic {
		seq, lastSeq, valid, err = stream.DecodeWALBatches(f, in)
	} else {
		seq, valid, err = stream.DecodeWAL(f, in)
	}
	if err != nil {
		return nil, 0, 0, 0, err
	}
	return seq, lastSeq, valid, fi.Size(), nil
}
