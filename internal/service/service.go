// Package service turns the netplace library into a long-running concurrent
// placement service: the engine behind the cmd/netplaced HTTP/JSON server.
//
// It is organised in three layers:
//
//   - Registry keeps uploaded instances resident, identified by their
//     stable content hash (encode.HashInstance), with least-recently-used
//     eviction under a configurable memory budget — an instance is parsed
//     and validated once and then queried many times;
//   - Engine executes solves against resident instances. Identical
//     in-flight requests collapse to a single solver run (singleflight) and
//     finished results are cached keyed by (instance hash, canonical solve
//     options), so a repeated what-if query is a map lookup. Batched
//     variant sweeps run across a bounded worker pool and all solves of one
//     instance share its metric.Oracle. What-if scenarios (demand-patched
//     copies of an instance) take an incremental path that re-solves only
//     the changed objects and splices a cached base solve for the rest,
//     falling back to a full solve on structural changes (see Scenario);
//   - Server exposes the engine over HTTP: instance CRUD, solve, batched
//     what-if, cost evaluation of a client-supplied placement,
//     message-level simulation via internal/netsim, plus /healthz and an
//     expvar-style /statz snapshot.
//
// Client is a thin typed HTTP client for the same wire format; see the
// package example for the full upload → solve → cost → simulate flow.
package service

import (
	"runtime"
	"sync/atomic"
	"time"

	"netplace/internal/core"
)

// Config tunes a Server. The zero value is serviceable: DefaultConfig
// documents the defaults applied by New.
type Config struct {
	// MemoryBudget bounds the estimated bytes of resident instances before
	// the registry starts evicting least-recently-used ones. 0 selects
	// DefaultMemoryBudget; negative disables eviction.
	MemoryBudget int64
	// CacheEntries bounds the solve-result cache. 0 selects
	// DefaultCacheEntries; negative disables caching.
	CacheEntries int
	// Workers bounds concurrently executing solver runs (batched what-if
	// variants queue behind it). 0 selects GOMAXPROCS.
	Workers int
	// Parallel is the default intra-solve parallelism of a solver run:
	// how many goroutines cooperate on a single object's solve (see
	// core.Options.Parallel). 0 selects the size-aware auto policy —
	// serial below core.AutoParallelMinNodes nodes (where Workers'
	// object-level fan-out already saturates the machine and sharding
	// costs more than the scans), GOMAXPROCS at or above, which is what
	// makes incremental what-if and session re-solves (one object at a
	// time, so object-level fan-out cannot help them) scale on large
	// instances without configuration. 1 pins serial, negative selects
	// GOMAXPROCS unconditionally. A request's own "parallel" option
	// overrides this default per solve.
	Parallel int
	// SolveTimeout caps one solver run. 0 selects DefaultSolveTimeout;
	// negative disables the cap. The cap (and a client disconnect) always
	// cancels waiting for a worker slot; whether it can abort a running
	// solve depends on the algorithm — algo=optimal polls the context
	// mid-enumeration, the other solvers run to completion once started.
	SolveTimeout time.Duration
	// MaxUploadBytes caps the size of an uploaded instance document.
	// 0 selects DefaultMaxUploadBytes.
	MaxUploadBytes int64
	// MaxBatchVariants caps the number of options variants or scenarios in
	// one what-if request. 0 selects DefaultMaxBatchVariants.
	MaxBatchVariants int
	// DisableIncremental forces every what-if scenario down the full-solve
	// path. Off by default; an operational escape hatch, and the lever the
	// benchmark harness uses to measure the incremental path's gain.
	DisableIncremental bool
	// MaxSessions caps concurrently open streaming sessions (each pins
	// its instance and holds estimator state). 0 selects
	// DefaultMaxSessions.
	MaxSessions int
	// DataDir, when non-empty, persists instances and sessions under this
	// directory and recovers them at startup: instances are snapshotted at
	// registration, sessions as snapshot + event WAL (see
	// docs/persistence.md). Only honoured by Open; New always builds an
	// in-memory server.
	DataDir string
	// NoSync skips the fsyncs on the persistence path. Throughput goes up;
	// an OS crash (not a mere process crash) can lose acked events.
	NoSync bool
	// MaxSolveQueue bounds how many solve/what-if executions may be
	// admitted (waiting for a worker slot or running) beyond the Workers
	// pool before the engine sheds load: an admission past
	// Workers+MaxSolveQueue is rejected immediately with ErrOverloaded
	// (HTTP 429 + Retry-After) instead of queueing without bound.
	// 0 selects DefaultMaxSolveQueue; negative disables shedding
	// (unbounded queueing, the pre-admission-control behavior).
	// Singleflight dedup runs before admission, so identical concurrent
	// solves still collapse to one queue slot; session epoch re-solves
	// bypass admission (they are already-admitted ingest work).
	MaxSolveQueue int
	// FsyncInterval batches session-WAL fsyncs (group commit): an append
	// fsyncs only when this much time has passed since the last fsync,
	// bounding the acked-but-lost window after an OS crash to one
	// interval. 0 fsyncs every append (the strict durability default);
	// the knob is moot under NoSync. Snapshot writes always fsync.
	FsyncInterval time.Duration
	// Peers lists the base URLs of the other replicas in a netplaced
	// cluster (SelfURL, if present in the list, is skipped). Empty means
	// standalone — every cluster feature below is inert. See
	// docs/cluster.md.
	Peers []string
	// SelfURL is this replica's own advertised base URL; it keys the
	// replica in /statz?cluster=1 and is filtered out of Peers so a
	// replica never probes itself.
	SelfURL string
	// PeerCache lets a solve that misses the local result cache probe the
	// peers' caches (POST /v1/cache/probe) before running the solver, so
	// identical solves collapse cluster-wide, not just per process. The
	// probe runs inside the local singleflight leader: concurrent local
	// duplicates still cost one probe round. Off by default.
	PeerCache bool
	// PeerTimeout caps one peer cache probe or /statz gossip fetch.
	// 0 selects DefaultPeerTimeout. Probes are best-effort: a slow or
	// dead peer costs at most this long, never a failed solve.
	PeerTimeout time.Duration
	// SuccessorURL is the replica that holds read-only snapshots of this
	// replica's instances for degraded failover reads: every accepted
	// upload is pushed to it (PUT /v1/replica/instances/{id}, re-verified
	// by content hash on arrival). Empty disables replication;
	// cmd/netplaced derives it automatically as the next cluster member
	// in sorted order. See docs/cluster.md "Failure modes & membership".
	SuccessorURL string
	// ProbeInterval is the period of the background /readyz prober that
	// feeds the per-peer circuit breakers. 0 selects DefaultProbeInterval;
	// negative disables active probing (breakers then open only on
	// passive request failures). Only meaningful with Peers set.
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker. 0 selects DefaultBreakerThreshold.
	BreakerThreshold int
	// BreakerBackoff is the initial open interval before a breaker admits
	// a reopen probe; failed probes double it up to
	// DefaultBreakerMaxBackoff. 0 selects DefaultBreakerBackoff.
	BreakerBackoff time.Duration
}

// Defaults applied by New for zero Config fields.
const (
	DefaultMemoryBudget     = 1 << 31 // 2 GiB of estimated instance memory
	DefaultCacheEntries     = 1024
	DefaultSolveTimeout     = 5 * time.Minute
	DefaultMaxUploadBytes   = 256 << 20
	DefaultMaxBatchVariants = 64
	DefaultMaxSessions      = 64
	DefaultMaxSolveQueue    = 256
	DefaultPeerTimeout      = 2 * time.Second
)

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.MemoryBudget == 0 {
		c.MemoryBudget = DefaultMemoryBudget
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SolveTimeout == 0 {
		c.SolveTimeout = DefaultSolveTimeout
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if c.MaxBatchVariants <= 0 {
		c.MaxBatchVariants = DefaultMaxBatchVariants
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxSolveQueue == 0 {
		c.MaxSolveQueue = DefaultMaxSolveQueue
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = DefaultPeerTimeout
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = DefaultBreakerBackoff
	}
	return c
}

// effectiveParallel resolves a Config.Parallel value against an instance
// of n nodes to the worker count a solver run actually uses: negative is
// GOMAXPROCS, zero the size-aware auto policy (serial below
// core.AutoParallelMinNodes).
func effectiveParallel(p, n int) int {
	return core.EffectiveParallel(p, n)
}

// counters aggregates the engine's monotonic event counts and gauges; all
// fields are atomics so hot paths never take a lock to count.
type counters struct {
	hits        atomic.Int64 // solves served from the result cache
	misses      atomic.Int64 // solves not served from the result cache
	runs        atomic.Int64 // solver executions (monotonic)
	shared      atomic.Int64 // solves that joined an in-flight identical run
	errors      atomic.Int64 // solver runs that returned an error
	inflight    atomic.Int64 // currently executing solver runs
	evictions   atomic.Int64 // instances evicted under the memory budget
	simulations atomic.Int64 // message-level simulation runs

	scenarios       atomic.Int64 // what-if scenarios answered
	incremental     atomic.Int64 // scenarios served by the incremental path
	fullScenarios   atomic.Int64 // scenarios that fell back to a full solve
	objectsResolved atomic.Int64 // objects re-solved by incremental scenarios
	objectsSpliced  atomic.Int64 // objects spliced from cached base solves

	sessionsOpened  atomic.Int64 // streaming sessions opened (monotonic)
	sessionEvents   atomic.Int64 // events ingested across sessions
	sessionEpochs   atomic.Int64 // epochs closed across sessions
	sessionResolves atomic.Int64 // objects re-solved at session epoch closes
	sessionMoves    atomic.Int64 // per-object moves adopted by sessions

	persistErrors     atomic.Int64 // failed persistence operations (logged, mostly non-fatal)
	recoveredSessions atomic.Int64 // sessions rebuilt from snapshot+WAL at startup
	walDiscarded      atomic.Int64 // torn WAL tail bytes discarded at recovery

	peerProbes atomic.Int64 // cache probes this replica sent to peers
	peerHits   atomic.Int64 // probes that found a peer's cached result
	peerServed atomic.Int64 // probes from peers this replica answered with a result

	peerProbeInflight atomic.Int64 // cache probes to peers in flight right now
	failoverReads     atomic.Int64 // degraded reads served from the replica snapshot store
	replicaPushes     atomic.Int64 // instance snapshots pushed to the successor
	replicaPushErrors atomic.Int64 // failed successor pushes (best-effort, logged)

	sheds           atomic.Int64 // solves rejected by admission control (429)
	staleReads      atomic.Int64 // degraded stale placements served under overload
	queued          atomic.Int64 // solves admitted right now (waiting + running)
	queueHighWater  atomic.Int64 // high-water mark of admission pressure (includes shed attempts)
	retriesObserved atomic.Int64 // requests carrying a client retry header
	deadlineRejects atomic.Int64 // requests rejected on arrival as unmeetable
	dedupedBatches  atomic.Int64 // sequenced event batches deduplicated by idempotent ingest
}

// bumpHighWater lifts queueHighWater to at least v.
func (c *counters) bumpHighWater(v int64) {
	for {
		cur := c.queueHighWater.Load()
		if v <= cur || c.queueHighWater.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of the service, rendered by /statz.
type Stats struct {
	// UptimeSeconds since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Instances currently resident in the registry.
	Instances int `json:"instances"`
	// InstanceBytes is the registry's estimated resident memory.
	InstanceBytes int64 `json:"instance_bytes"`
	// MemoryBudget is the configured registry budget (negative: unbounded).
	MemoryBudget int64 `json:"memory_budget"`
	// Evictions counts instances dropped under the memory budget.
	Evictions int64 `json:"evictions"`
	// CacheEntries is the number of cached solve results.
	CacheEntries int `json:"cache_entries"`
	// CacheHits / CacheMisses count solves served from cache vs executed.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CacheHitRate is hits / (hits + misses), 0 when nothing was asked.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// SolvesTotal counts solver executions; because identical in-flight
	// requests collapse, it can be far below CacheMisses under load.
	SolvesTotal int64 `json:"solves_total"`
	// Workers is the configured worker-pool size. ParallelConfig is the
	// raw Config.Parallel knob (0 = size-aware auto) and
	// AutoParallelMinNodes the auto policy's threshold; EffectiveParallel
	// maps each loaded instance id to the intra-solve parallelism a solve
	// of it uses when the request does not override the default — the
	// resolved value depends on the instance's node count under auto.
	Workers              int            `json:"workers"`
	ParallelConfig       int            `json:"parallel_config"`
	AutoParallelMinNodes int            `json:"auto_parallel_min_nodes"`
	EffectiveParallel    map[string]int `json:"effective_parallel"`
	// SharedSolves counts requests that joined an identical in-flight run
	// instead of executing their own.
	SharedSolves int64 `json:"shared_solves"`
	// InFlightSolves is the number of solver runs executing right now.
	InFlightSolves int64 `json:"in_flight_solves"`
	// SolveErrors counts solver runs that failed (including cancellations).
	SolveErrors int64 `json:"solve_errors"`
	// Simulations counts message-level simulation runs.
	Simulations int64 `json:"simulations"`
	// WhatIfScenarios counts answered what-if scenarios;
	// WhatIfIncremental of them took the incremental path and WhatIfFull
	// fell back to a full solve (storage change, non-approx algorithm, or
	// incremental disabled).
	WhatIfScenarios   int64 `json:"whatif_scenarios"`
	WhatIfIncremental int64 `json:"whatif_incremental"`
	WhatIfFull        int64 `json:"whatif_full"`
	// IncrementalHitRate is WhatIfIncremental / WhatIfScenarios (0 when no
	// scenarios were asked).
	IncrementalHitRate float64 `json:"incremental_hit_rate"`
	// ObjectsResolved / ObjectsSpliced count, across incremental scenarios,
	// objects re-solved versus spliced from the cached base solve — the
	// work the incremental path did versus avoided.
	ObjectsResolved int64 `json:"objects_resolved"`
	ObjectsSpliced  int64 `json:"objects_spliced"`
	// SessionsOpen is the number of live streaming sessions;
	// SessionsOpened counts every session ever opened.
	SessionsOpen   int   `json:"sessions_open"`
	SessionsOpened int64 `json:"sessions_opened"`
	// SessionEvents / SessionEpochs / SessionResolves / SessionMoves
	// aggregate the streaming sessions' ingest volume, closed epochs,
	// per-epoch object re-solves, and adopted placement moves.
	SessionEvents   int64 `json:"session_events"`
	SessionEpochs   int64 `json:"session_epochs"`
	SessionResolves int64 `json:"session_resolves"`
	SessionMoves    int64 `json:"session_moves"`
	// Persistence reports whether a data directory is attached (servers
	// built by Open with Config.DataDir). PersistErrors counts failed
	// persistence operations, RecoveredSessions the sessions rebuilt from
	// snapshot + WAL at the last startup, and WALDiscardedBytes the torn
	// WAL tail bytes recovery discarded (see docs/persistence.md).
	Persistence       bool  `json:"persistence"`
	PersistErrors     int64 `json:"persist_errors"`
	RecoveredSessions int64 `json:"recovered_sessions"`
	WALDiscardedBytes int64 `json:"wal_discarded_bytes"`
	// Ready mirrors /readyz (true once recovery finished and until drain
	// begins); Draining reports that BeginDrain was called.
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	// Sheds counts solve/what-if requests rejected by admission control
	// (429 + Retry-After); MaxSolveQueue echoes the configured bound
	// (negative: shedding disabled). QueueDepth is the number of solves
	// admitted right now (waiting + running) and QueueHighWater the
	// highest admission pressure ever seen, counting the attempt that was
	// shed — under sustained overload it reads Workers+MaxSolveQueue+1.
	Sheds          int64 `json:"sheds"`
	MaxSolveQueue  int   `json:"max_solve_queue"`
	QueueDepth     int64 `json:"queue_depth"`
	QueueHighWater int64 `json:"queue_high_water"`
	// StaleReads counts degraded responses served from the last-good
	// placement cache while the solver was saturated; RetriesObserved
	// counts requests that carried the client retry header;
	// DeadlineRejects counts requests rejected on arrival because their
	// X-Netplace-Deadline could not be met; DedupedBatches counts
	// sequenced session event batches the idempotent ingest path dropped
	// as already applied (see docs/resilience.md).
	StaleReads      int64 `json:"stale_reads"`
	RetriesObserved int64 `json:"retries_observed"`
	DeadlineRejects int64 `json:"deadline_rejects"`
	DedupedBatches  int64 `json:"deduped_batches"`
	// Peers is the live peer count (drained members drop out) and PeerCache whether the
	// cluster-wide solve-cache probe is enabled. PeerProbes / PeerHits
	// count cache probes this replica SENT to peers (and how many found a
	// result there); PeerServed counts probes FROM peers this replica
	// answered with a cached result. A solve answered on replica A and
	// probed from replica B shows as peer_hits=1 on B and peer_served=1
	// on A, with solves_total summing to 1 cluster-wide (see
	// docs/cluster.md).
	Peers      int   `json:"peers"`
	PeerCache  bool  `json:"peer_cache"`
	PeerProbes int64 `json:"peer_probes"`
	PeerHits   int64 `json:"peer_hits"`
	PeerServed int64 `json:"peer_served"`
	// PeerProbeInflight is the number of peer cache probes in flight
	// right now (the probe fan-out is parallel with bounded concurrency).
	PeerProbeInflight int64 `json:"peer_probe_inflight"`
	// PeerHealth maps each peer URL to its circuit breaker state
	// (closed / open / half-open); BreakerOpens counts every breaker
	// open transition since startup. Absent when the replica has no
	// peers. See docs/cluster.md "Failure modes & membership".
	PeerHealth   map[string]string `json:"peer_health,omitempty"`
	BreakerOpens int64             `json:"breaker_opens"`
	// ReplicaInstances counts read-only instance snapshots held for
	// other replicas' keys; FailoverReads counts degraded reads answered
	// from them; ReplicaPushes / ReplicaPushErrors count snapshot pushes
	// to this replica's successor (and how many failed).
	ReplicaInstances  int   `json:"replica_instances"`
	FailoverReads     int64 `json:"failover_reads"`
	ReplicaPushes     int64 `json:"replica_pushes"`
	ReplicaPushErrors int64 `json:"replica_push_errors"`
}

// ClusterStats is the cluster-wide /statz view (GET /statz?cluster=1):
// the serving replica fans the plain /statz request out to its peers and
// merges every reachable snapshot. See docs/cluster.md.
type ClusterStats struct {
	// Self is the serving replica's advertised URL (Config.SelfURL, or
	// "self" when unset).
	Self string `json:"self"`
	// Replicas maps each replica URL (Self included) to its own Stats
	// snapshot. Unreachable peers are absent here and listed in Errors.
	Replicas map[string]Stats `json:"replicas"`
	// Errors maps unreachable peer URLs to the fetch error.
	Errors map[string]string `json:"errors,omitempty"`
	// Totals sums the load-bearing counters across reachable replicas.
	Totals ClusterTotals `json:"totals"`
}

// ClusterTotals sums the counters that make cluster-wide behavior
// legible: whether identical solves collapsed (SolvesTotal vs
// CacheHits+PeerHits), how much ingest the cluster absorbed, and how
// much it shed.
type ClusterTotals struct {
	Replicas      int   `json:"replicas"`
	Instances     int   `json:"instances"`
	SolvesTotal   int64 `json:"solves_total"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	PeerProbes    int64 `json:"peer_probes"`
	PeerHits      int64 `json:"peer_hits"`
	PeerServed    int64 `json:"peer_served"`
	SessionsOpen  int   `json:"sessions_open"`
	SessionEvents int64 `json:"session_events"`
	SessionEpochs int64 `json:"session_epochs"`
	Sheds         int64 `json:"sheds"`
}
