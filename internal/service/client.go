package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"netplace/internal/core"
	"netplace/internal/encode"
)

// Client is a typed HTTP client for a netplaced server. The zero value is
// not usable; construct with NewClient. Safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:8723"). httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// do sends a JSON request and decodes a JSON response into out (which may
// be nil). Non-2xx responses surface as errors carrying the server message.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var e errorJSON
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("service: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		// Not the service's error envelope (a proxy page, a panic trace):
		// surface the raw body rather than a bare status code.
		if msg := strings.TrimSpace(string(raw)); msg != "" {
			if len(msg) > 256 {
				msg = msg[:256] + "..."
			}
			return fmt.Errorf("service: %s %s: HTTP %d: %s", method, path, resp.StatusCode, msg)
		}
		return fmt.Errorf("service: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Upload registers an instance under an optional name and returns its
// registry record. Uploading the same problem twice is idempotent.
func (c *Client) Upload(ctx context.Context, name string, in *core.Instance) (UploadResponse, error) {
	var out UploadResponse
	err := c.do(ctx, http.MethodPost, "/instances",
		UploadRequest{Name: name, Instance: encode.InstanceJSONOf(in)}, &out)
	return out, err
}

// List returns the resident instances, most recently used first.
func (c *Client) List(ctx context.Context) ([]InstanceInfo, error) {
	var out []InstanceInfo
	err := c.do(ctx, http.MethodGet, "/instances", nil, &out)
	return out, err
}

// Info returns one instance's registry record.
func (c *Client) Info(ctx context.Context, id string) (InstanceInfo, error) {
	var out InstanceInfo
	err := c.do(ctx, http.MethodGet, "/instances/"+id, nil, &out)
	return out, err
}

// Delete drops an instance from the registry.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/instances/"+id, nil, nil)
}

// Solve solves a registered instance with the given options.
func (c *Client) Solve(ctx context.Context, id string, opts SolveOptions) (SolveResult, error) {
	var out SolveResult
	err := c.do(ctx, http.MethodPost, "/instances/"+id+"/solve", SolveRequest{Options: opts}, &out)
	return out, err
}

// WhatIf solves a batch of options variants concurrently server-side.
func (c *Client) WhatIf(ctx context.Context, id string, variants []SolveOptions) ([]WhatIfOutcome, error) {
	var out WhatIfResponse
	err := c.do(ctx, http.MethodPost, "/instances/"+id+"/whatif", WhatIfRequest{Variants: variants}, &out)
	return out.Results, err
}

// WhatIfScenarios solves a batch of demand-patched scenarios of one
// resident instance under shared options. Scenarios that only change
// object workloads are answered incrementally server-side: check
// SolveResult.Incremental and ResolvedObjects on the outcomes.
func (c *Client) WhatIfScenarios(ctx context.Context, id string, opts SolveOptions, scenarios []Scenario) ([]WhatIfOutcome, error) {
	var out WhatIfResponse
	err := c.do(ctx, http.MethodPost, "/instances/"+id+"/whatif",
		WhatIfRequest{Options: opts, Scenarios: scenarios}, &out)
	return out.Results, err
}

// Cost evaluates a placement (typically a SolveResult.Placement, possibly
// edited) under the restricted cost model.
func (c *Client) Cost(ctx context.Context, id string, p encode.PlacementJSON) (BreakdownJSON, error) {
	var out BreakdownJSON
	err := c.do(ctx, http.MethodPost, "/instances/"+id+"/cost", PlacementRequest{Placement: p}, &out)
	return out, err
}

// Simulate replays the instance's workload against a placement in the
// message-level simulator and returns the metered bill.
func (c *Client) Simulate(ctx context.Context, id string, p encode.PlacementJSON) (SimulationResult, error) {
	var out SimulationResult
	err := c.do(ctx, http.MethodPost, "/instances/"+id+"/simulate", PlacementRequest{Placement: p}, &out)
	return out, err
}

// OpenSession opens a streaming adaptive placement session against a
// resident instance; stream events with SessionEvents and read the
// adapting placement with SessionPlacement.
func (c *Client) OpenSession(ctx context.Context, instanceID string, cfg SessionConfig) (SessionInfo, error) {
	var out SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions",
		SessionRequest{InstanceID: instanceID, Config: cfg}, &out)
	return out, err
}

// Session returns one session's record — configuration and cost
// accounting so far. cmd/netreplay's resume path uses the event count to
// skip the already-ingested trace prefix.
func (c *Client) Session(ctx context.Context, id string) (SessionInfo, error) {
	var out SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &out)
	return out, err
}

// Sessions lists the server's open streaming sessions.
func (c *Client) Sessions(ctx context.Context) ([]SessionInfo, error) {
	var out []SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out, err
}

// SessionEvents streams a batch of request events into a session and
// returns the per-epoch reports the batch triggered.
func (c *Client) SessionEvents(ctx context.Context, id string, events []SessionEvent) (SessionEventsResponse, error) {
	var out SessionEventsResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/events",
		SessionEventsRequest{Events: events}, &out)
	return out, err
}

// SessionFlush closes a session's open partial epoch, so a finished
// trace is fully accounted before reading the final placement.
func (c *Client) SessionFlush(ctx context.Context, id string) (SessionEventsResponse, error) {
	var out SessionEventsResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/flush", nil, &out)
	return out, err
}

// SessionPlacement returns a session's current adaptive placement and
// its cost accounting so far.
func (c *Client) SessionPlacement(ctx context.Context, id string) (SessionPlacementResponse, error) {
	var out SessionPlacementResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/placement", nil, &out)
	return out, err
}

// CloseSession drops a session.
func (c *Client) CloseSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Stats snapshots the server's /statz counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/statz", nil, &out)
	return out, err
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
