package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"netplace/internal/core"
	"netplace/internal/encode"
)

// APIError is a typed non-2xx response from the service: the HTTP
// status, the server's error message, and any Retry-After hint. Match
// with errors.As; Retryable reports whether the request may safely be
// retried regardless of idempotency (the failure provably happened
// before the server applied anything).
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Method and Path identify the failed call.
	Method, Path string
	// Message is the server's error text (or a snippet of a non-envelope
	// body, e.g. a proxy page).
	Message string
	// RetryAfter is the server's Retry-After hint, 0 when absent.
	RetryAfter time.Duration
	// Shed reports the X-Netplace-Shed marker: the server itself
	// rejected the request before applying anything. A 502/504 without
	// it may have been minted by an intermediary after the backend did
	// the work.
	Shed bool
	// ReplicaDown carries the X-Netplace-Replica-Down marker: the named
	// replica's circuit breaker is open and the request was refused
	// before anything was sent to it. errors.Is(err, ErrReplicaDown)
	// matches when set.
	ReplicaDown string
}

// Is makes errors.Is(err, ErrReplicaDown) match a response carrying the
// X-Netplace-Replica-Down marker, so callers handle the server-minted
// and client-breaker forms of the condition uniformly.
func (e *APIError) Is(target error) bool {
	return target == ErrReplicaDown && e.ReplicaDown != ""
}

// Error renders the call, server message, and status.
func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("service: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("service: %s %s: HTTP %d", e.Method, e.Path, e.Status)
}

// Retryable reports responses that provably precede any state change,
// so a retry cannot double-apply even on non-idempotent calls: 429
// (admission shed), 503 (drain/not-ready — also what a proxy sends when
// it never reached the backend), and a 504 carrying the server's
// X-Netplace-Shed marker (deadline rejected on arrival). A bare 502 or
// 504 can be minted by a reverse proxy AFTER the backend applied the
// request, so those are transport-class faults: doRetry retries them
// only on idempotent calls.
func (e *APIError) Retryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true
	case http.StatusGatewayTimeout:
		return e.Shed
	}
	return false
}

// RetryPolicy configures the client's retries: capped exponential
// backoff with proportional jitter, honoring the server's Retry-After.
// The zero value disables retries (every call is a single attempt, the
// historical behavior). Typed-retryable server errors (APIError.Retryable)
// retry on every call; transport errors (connection reset, truncated
// response) and bare gateway statuses (502/504 without the server's
// X-Netplace-Shed marker, which a proxy may emit after the backend
// applied the request) retry only on calls the client knows are
// idempotent — notably NOT OpenSession or the deletes, and session
// event batches only when sequenced (SessionEventsSeq). See
// docs/resilience.md.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first;
	// values below 2 disable retries.
	MaxAttempts int
	// BaseDelay is the first backoff (default 50ms), doubling per
	// attempt up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter spreads each delay by ±Jitter·delay (e.g. 0.2 for ±20%).
	Jitter float64
	// Seed makes the jitter deterministic for tests; 0 uses the global
	// random source.
	Seed int64
	// Sleep replaces the real inter-attempt wait, for tests; nil sleeps
	// on a timer, aborting on context cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy is a production-reasonable policy: 4 attempts,
// 50ms base delay doubling to a 2s cap, ±20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.2}
}

// Client is a typed HTTP client for a netplaced server. The zero value is
// not usable; construct with NewClient. Safe for concurrent use once
// configured (call SetRetryPolicy before sharing across goroutines).
type Client struct {
	base    string
	http    *http.Client
	retry   RetryPolicy
	breaker *Breaker // optional per-target circuit breaker; see SetBreaker

	mu  sync.Mutex
	rng *rand.Rand // seeded jitter source; nil uses the global one
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:8723"). httpClient may be nil for http.DefaultClient.
// Retries are off until SetRetryPolicy.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// SetRetryPolicy installs the client's retry policy. Call before the
// client is shared across goroutines.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.retry = p
	if p.Seed != 0 {
		c.rng = rand.New(rand.NewSource(p.Seed))
	} else {
		c.rng = nil
	}
}

// SetBreaker attaches a circuit breaker for this client's target: every
// attempt consults Breaker.Allow first and fails fast with a
// *ReplicaDownError while the breaker is open, transport outcomes feed
// Success/Failure back. Typically the breaker comes from a shared
// PeerHealth so all clients of one process agree on peer state. Call
// before the client is shared across goroutines.
func (c *Client) SetBreaker(b *Breaker) { c.breaker = b }

// do sends a JSON request and decodes a JSON response into out (which may
// be nil), for calls that are safe to retry at the transport level.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doRetry(ctx, method, path, nil, in, out, true)
}

// doRetry is the request engine behind every call: marshal once, then
// attempt under the retry policy. idempotent gates transport-level
// retries (a lost response to a non-idempotent call may have been
// applied); typed-retryable server errors retry regardless. A context
// deadline is propagated to the server via the X-Netplace-Deadline
// header, retried attempts carry X-Netplace-Retry.
func (c *Client) doRetry(ctx context.Context, method, path string, hdr map[string]string, in, out any, idempotent bool) error {
	var payload []byte
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = buf
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		if c.breaker != nil && !c.breaker.Allow() {
			// Fail fast: the target's breaker is open, nothing is sent. The
			// typed error is retryable (provably pre-application) and backoff
			// sleeps on the breaker clock, so a retry budget rides out the
			// outage at near-zero network cost.
			err = &ReplicaDownError{Replica: c.base, RetryAfter: c.breaker.RetryAfter()}
		} else {
			err = c.doOnce(ctx, method, path, hdr, payload, out, attempt)
		}
		if err == nil {
			return nil
		}
		if attempt >= attempts || ctx.Err() != nil || !retryableError(err, idempotent) {
			return err
		}
		if serr := c.sleep(ctx, c.backoff(attempt, err)); serr != nil {
			return err
		}
	}
}

// retryableError decides whether one failed attempt may be retried:
// typed server sheds always, transport faults — including gateway
// statuses an intermediary may emit after the backend applied the
// request (bare 502/504) and per-attempt timeouts against a hung peer
// (http.Client.Timeout reads as context.DeadlineExceeded) — only on
// idempotent calls, cancellations never. The CALLER's context ending
// stops the loop separately, via doRetry's ctx.Err() guard, so a
// deadline here is known to be attempt-local.
func retryableError(err error, idempotent bool) bool {
	if errors.Is(err, ErrReplicaDown) {
		// The local breaker refused the attempt before anything was sent
		// (or the server refused before applying): always safe to retry.
		return true
	}
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Retryable() {
			return true
		}
		switch ae.Status {
		case http.StatusBadGateway, http.StatusGatewayTimeout:
			return idempotent
		}
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	return idempotent
}

// backoff computes the delay before the next attempt: the server's
// Retry-After when present, else capped exponential with jitter.
func (c *Client) backoff(attempt int, err error) time.Duration {
	var rde *ReplicaDownError
	if errors.As(err, &rde) && rde.RetryAfter > 0 {
		// Sleep on the breaker clock (plus a margin so the reopen probe is
		// due when the retry fires) instead of the exponential schedule.
		return rde.RetryAfter + 25*time.Millisecond
	}
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		return ae.RetryAfter
	}
	d := c.retry.BaseDelay
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	maxd := c.retry.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	for i := 1; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	if j := c.retry.Jitter; j > 0 {
		d = time.Duration(float64(d) * (1 + j*(2*c.rand01()-1)))
		if d < 0 {
			d = 0
		}
	}
	return d
}

// rand01 draws from the seeded jitter source, or the global one.
func (c *Client) rand01() float64 {
	if c.rng == nil {
		return rand.Float64()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// sleep waits d or until ctx is done, via the policy's hook when set.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.retry.Sleep != nil {
		return c.retry.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// doOnce executes a single HTTP attempt. Non-2xx responses surface as
// *APIError carrying the server message and any Retry-After hint.
func (c *Client) doOnce(ctx context.Context, method, path string, hdr map[string]string, payload []byte, out any, attempt int) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); remaining > 0 {
			req.Header.Set(HeaderDeadline, remaining.Round(time.Millisecond).String())
		}
	}
	if attempt > 1 {
		req.Header.Set(HeaderRetry, strconv.Itoa(attempt-1))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Feed the breaker: a transport fault (refused, reset, client
		// timeout against a blackholed peer) is a failure — unless OUR
		// context caused it, which says nothing about the peer.
		if c.breaker != nil && ctx.Err() == nil {
			c.breaker.Failure()
		}
		return err
	}
	// Any HTTP response proves the peer is alive, whatever the status.
	if c.breaker != nil {
		c.breaker.Success()
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		apiErr := &APIError{Status: resp.StatusCode, Method: method, Path: path,
			Shed:        resp.Header.Get(HeaderShed) != "",
			ReplicaDown: resp.Header.Get(HeaderReplicaDown)}
		apiErr.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		var e errorJSON
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
			return apiErr
		}
		// Not the service's error envelope (a proxy page, a panic trace):
		// surface the raw body rather than a bare status code.
		if msg := strings.TrimSpace(string(raw)); msg != "" {
			if len(msg) > 256 {
				msg = msg[:256] + "..."
			}
			apiErr.Message = msg
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// a non-negative delay in seconds, or an HTTP-date (the delay is then
// the time remaining until it). Unparseable or past values yield 0 —
// the backoff policy takes over rather than guessing.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// Upload registers an instance under an optional name and returns its
// registry record. Uploading the same problem twice is idempotent.
func (c *Client) Upload(ctx context.Context, name string, in *core.Instance) (UploadResponse, error) {
	var out UploadResponse
	err := c.do(ctx, http.MethodPost, "/instances",
		UploadRequest{Name: name, Instance: encode.InstanceJSONOf(in)}, &out)
	return out, err
}

// List returns the resident instances, most recently used first.
func (c *Client) List(ctx context.Context) ([]InstanceInfo, error) {
	var out []InstanceInfo
	err := c.do(ctx, http.MethodGet, "/instances", nil, &out)
	return out, err
}

// Info returns one instance's registry record.
func (c *Client) Info(ctx context.Context, id string) (InstanceInfo, error) {
	var out InstanceInfo
	err := c.do(ctx, http.MethodGet, "/instances/"+id, nil, &out)
	return out, err
}

// Delete drops an instance from the registry. Not retried on transport
// faults: a lost response may have deleted the instance, and a blind
// retry would surface a confusing 404.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.doRetry(ctx, http.MethodDelete, "/instances/"+id, nil, nil, nil, false)
}

// Solve solves a registered instance with the given options.
func (c *Client) Solve(ctx context.Context, id string, opts SolveOptions) (SolveResult, error) {
	var out SolveResult
	err := c.do(ctx, http.MethodPost, "/instances/"+id+"/solve", SolveRequest{Options: opts}, &out)
	return out, err
}

// SolveStale is Solve with degraded-mode opt-in: when the server sheds
// the request under overload but holds a previously completed placement
// of the same instance, it answers with that result instead of a 429.
// The stale cache is keyed by instance alone (see Engine.StaleResult),
// so the degraded answer may have been computed with different options
// than requested — check SolveResult.Options alongside Stale and
// StaleSeconds before trusting option-sensitive fields.
func (c *Client) SolveStale(ctx context.Context, id string, opts SolveOptions) (SolveResult, error) {
	var out SolveResult
	hdr := map[string]string{HeaderAllowStale: "1"}
	err := c.doRetry(ctx, http.MethodPost, "/instances/"+id+"/solve", hdr, SolveRequest{Options: opts}, &out, true)
	return out, err
}

// SolveDegraded is the failover form of SolveStale: it additionally
// carries the forwarded hop guard, so the receiving replica answers
// strictly locally — from its registry or, for an instance it only
// replicates, from the read-only snapshot store (Stale=true) — instead
// of forwarding back toward the down owner. ShardedClient uses it to
// read through the owner's successor while the owner's breaker is open.
func (c *Client) SolveDegraded(ctx context.Context, id string, opts SolveOptions) (SolveResult, error) {
	var out SolveResult
	hdr := map[string]string{HeaderAllowStale: "1", HeaderForwarded: "degraded"}
	err := c.doRetry(ctx, http.MethodPost, "/instances/"+id+"/solve", hdr, SolveRequest{Options: opts}, &out, true)
	return out, err
}

// WhatIf solves a batch of options variants concurrently server-side.
func (c *Client) WhatIf(ctx context.Context, id string, variants []SolveOptions) ([]WhatIfOutcome, error) {
	var out WhatIfResponse
	err := c.do(ctx, http.MethodPost, "/instances/"+id+"/whatif", WhatIfRequest{Variants: variants}, &out)
	return out.Results, err
}

// WhatIfScenarios solves a batch of demand-patched scenarios of one
// resident instance under shared options. Scenarios that only change
// object workloads are answered incrementally server-side: check
// SolveResult.Incremental and ResolvedObjects on the outcomes.
func (c *Client) WhatIfScenarios(ctx context.Context, id string, opts SolveOptions, scenarios []Scenario) ([]WhatIfOutcome, error) {
	var out WhatIfResponse
	err := c.do(ctx, http.MethodPost, "/instances/"+id+"/whatif",
		WhatIfRequest{Options: opts, Scenarios: scenarios}, &out)
	return out.Results, err
}

// Cost evaluates a placement (typically a SolveResult.Placement, possibly
// edited) under the restricted cost model.
func (c *Client) Cost(ctx context.Context, id string, p encode.PlacementJSON) (BreakdownJSON, error) {
	var out BreakdownJSON
	err := c.do(ctx, http.MethodPost, "/instances/"+id+"/cost", PlacementRequest{Placement: p}, &out)
	return out, err
}

// Simulate replays the instance's workload against a placement in the
// message-level simulator and returns the metered bill.
func (c *Client) Simulate(ctx context.Context, id string, p encode.PlacementJSON) (SimulationResult, error) {
	var out SimulationResult
	err := c.do(ctx, http.MethodPost, "/instances/"+id+"/simulate", PlacementRequest{Placement: p}, &out)
	return out, err
}

// OpenSession opens a streaming adaptive placement session against a
// resident instance; stream events with SessionEventsSeq and read the
// adapting placement with SessionPlacement. Not retried on transport
// faults: a lost response may have opened a session the client would
// never learn the ID of, leaking it until a MaxSessions eviction.
func (c *Client) OpenSession(ctx context.Context, instanceID string, cfg SessionConfig) (SessionInfo, error) {
	var out SessionInfo
	err := c.doRetry(ctx, http.MethodPost, "/v1/sessions", nil,
		SessionRequest{InstanceID: instanceID, Config: cfg}, &out, false)
	return out, err
}

// Session returns one session's record — configuration and cost
// accounting so far. cmd/netreplay's resume path uses the event count to
// skip the already-ingested trace prefix.
func (c *Client) Session(ctx context.Context, id string) (SessionInfo, error) {
	var out SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &out)
	return out, err
}

// Sessions lists the server's open streaming sessions.
func (c *Client) Sessions(ctx context.Context) ([]SessionInfo, error) {
	var out []SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out, err
}

// SessionEvents streams a batch of request events into a session and
// returns the per-epoch reports the batch triggered. Unsequenced: the
// server cannot tell a retried batch from a new one, so transport
// faults are NOT retried (a torn response may already have applied the
// batch). Prefer SessionEventsSeq for at-most-once retried ingest.
func (c *Client) SessionEvents(ctx context.Context, id string, events []SessionEvent) (SessionEventsResponse, error) {
	var out SessionEventsResponse
	err := c.doRetry(ctx, http.MethodPost, "/v1/sessions/"+id+"/events", nil,
		SessionEventsRequest{Events: events}, &out, false)
	return out, err
}

// SessionEventsSeq streams a batch under a client-assigned sequence
// number (strictly increasing per session, starting at 1). The server
// remembers the highest applied sequence durably — in the session WAL's
// commit markers and snapshots — so a retried batch after a torn
// response is detected and acknowledged without re-applying: exactly-
// once ingest even across a server crash. Safe to retry on any fault.
func (c *Client) SessionEventsSeq(ctx context.Context, id string, seq int64, events []SessionEvent) (SessionEventsResponse, error) {
	var out SessionEventsResponse
	err := c.doRetry(ctx, http.MethodPost, "/v1/sessions/"+id+"/events", nil,
		SessionEventsRequest{Seq: seq, Events: events}, &out, true)
	return out, err
}

// SessionFlush closes a session's open partial epoch, so a finished
// trace is fully accounted before reading the final placement.
func (c *Client) SessionFlush(ctx context.Context, id string) (SessionEventsResponse, error) {
	var out SessionEventsResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/flush", nil, &out)
	return out, err
}

// SessionPlacement returns a session's current adaptive placement and
// its cost accounting so far.
func (c *Client) SessionPlacement(ctx context.Context, id string) (SessionPlacementResponse, error) {
	var out SessionPlacementResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/placement", nil, &out)
	return out, err
}

// CloseSession drops a session. Like Delete, not retried on transport
// faults; tolerate a 404 when closing after a retry ambiguity.
func (c *Client) CloseSession(ctx context.Context, id string) error {
	return c.doRetry(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil, nil, false)
}

// Stats snapshots the server's /statz counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/statz", nil, &out)
	return out, err
}

// ClusterStats snapshots the cluster-wide /statz view: the server fans
// out to its configured peers and merges every reachable replica's
// counters (GET /statz?cluster=1). On a standalone server the view
// contains just that server.
func (c *Client) ClusterStats(ctx context.Context) (ClusterStats, error) {
	var out ClusterStats
	err := c.do(ctx, http.MethodGet, "/statz?cluster=1", nil, &out)
	return out, err
}

// Export fetches an instance's full content (GET /instances/{id}/export)
// for re-registration elsewhere — the drain path's migration read.
func (c *Client) Export(ctx context.Context, id string) (InstanceExport, error) {
	var out InstanceExport
	err := c.do(ctx, http.MethodGet, "/instances/"+id+"/export", nil, &out)
	return out, err
}

// PushReplica stores an instance's content in the server's read-only
// replica snapshot store (PUT /v1/replica/instances/{id}); the server
// re-verifies id against the content hash before accepting. Idempotent:
// pushing the same content again overwrites in place.
func (c *Client) PushReplica(ctx context.Context, id string, exp InstanceExport) error {
	return c.doRetry(ctx, http.MethodPut, "/v1/replica/instances/"+id, nil, exp, nil, true)
}

// DeleteReplica drops an instance from the server's replica snapshot
// store. Idempotent — deleting an absent snapshot succeeds.
func (c *Client) DeleteReplica(ctx context.Context, id string) error {
	return c.doRetry(ctx, http.MethodDelete, "/v1/replica/instances/"+id, nil, nil, nil, true)
}

// ReplicaInstances lists the read-only instance snapshots the server
// holds for other replicas' keys.
func (c *Client) ReplicaInstances(ctx context.Context) ([]ReplicaInstanceInfo, error) {
	var out []ReplicaInstanceInfo
	err := c.do(ctx, http.MethodGet, "/v1/replica/instances", nil, &out)
	return out, err
}

// ClusterDrain drives the membership change behind netplaced
// -drain-peer (POST /v1/cluster/drain). With peer empty (or the
// server's own URL) the server itself drains: final session snapshots
// and WAL flushes are written and /readyz starts failing. With peer set
// to another replica's URL, the server removes that replica from its
// ring view and peer set. Idempotent in both directions.
func (c *Client) ClusterDrain(ctx context.Context, peer string) (ClusterDrainResponse, error) {
	var out ClusterDrainResponse
	err := c.doRetry(ctx, http.MethodPost, "/v1/cluster/drain", nil,
		ClusterDrainRequest{Peer: peer}, &out, true)
	return out, err
}

// CacheProbe asks the server whether it holds a cached solve of
// (instance content hash, options) — the cluster peer-cache protocol's
// wire call (POST /v1/cache/probe). Servers answer from the result cache
// only; a probe never triggers a solve.
func (c *Client) CacheProbe(ctx context.Context, hash string, opts SolveOptions) (CacheProbeResponse, error) {
	var out CacheProbeResponse
	err := c.do(ctx, http.MethodPost, "/v1/cache/probe", CacheProbeRequest{Hash: hash, Options: opts}, &out)
	return out, err
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Ready probes /readyz: nil when the server is recovered and not
// draining, an *APIError with status 503 otherwise.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}
