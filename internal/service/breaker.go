package service

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the failure-detection half of the cluster fault-tolerance
// layer (see docs/cluster.md "Failure modes & membership"): a per-peer
// circuit breaker fed by passive error accounting and an active /readyz
// prober, shared — through PeerHealth — by the peer-cache probe path,
// the forwarding proxy, and cluster.ShardedClient, so every routing
// layer agrees on which replicas are down and fails fast instead of
// burning its retry budget against a blackholed socket.

// ErrReplicaDown reports that a request was refused because the target
// replica's circuit breaker is open (the replica failed repeatedly or
// stopped answering its /readyz probe). Rendered over HTTP as 503 with
// the X-Netplace-Replica-Down header naming the replica and a
// Retry-After hint; match with errors.Is.
var ErrReplicaDown = errors.New("service: replica down (circuit breaker open)")

// HeaderReplicaDown names the down replica on a 503 minted because its
// circuit breaker is open — distinguishing "the owner of this key is
// down" from an ordinary drain/not-ready 503, so clients and tests can
// assert on the typed condition.
const HeaderReplicaDown = "X-Netplace-Replica-Down"

// ReplicaDownError is the typed form of ErrReplicaDown: which replica is
// down and how long until its breaker admits a reopen probe. It unwraps
// to ErrReplicaDown, so errors.Is works on both forms.
type ReplicaDownError struct {
	// Replica is the down replica's base URL.
	Replica string
	// RetryAfter is the time until the breaker's next reopen probe.
	RetryAfter time.Duration
}

// Error renders the replica and the retry hint.
func (e *ReplicaDownError) Error() string {
	return fmt.Sprintf("%v: %s (retry in %v)", ErrReplicaDown, e.Replica, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap matches errors.Is(err, ErrReplicaDown).
func (e *ReplicaDownError) Unwrap() error { return ErrReplicaDown }

// Breaker defaults applied by BreakerConfig.withDefaults.
const (
	// DefaultBreakerThreshold is the consecutive-failure count that opens
	// a closed breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerBackoff is the first open interval before a reopen
	// probe; each failed probe doubles it up to DefaultBreakerMaxBackoff.
	DefaultBreakerBackoff = 250 * time.Millisecond
	// DefaultBreakerMaxBackoff caps the doubling reopen backoff.
	DefaultBreakerMaxBackoff = 8 * time.Second
	// DefaultProbeInterval is the background /readyz prober's period.
	DefaultProbeInterval = time.Second
)

// BreakerConfig tunes a circuit breaker. The zero value selects the
// documented defaults.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (0: DefaultBreakerThreshold).
	Threshold int
	// Backoff is the first open interval before a reopen probe is
	// admitted (0: DefaultBreakerBackoff); every failed probe doubles it.
	Backoff time.Duration
	// MaxBackoff caps the doubled backoff (0: DefaultBreakerMaxBackoff).
	MaxBackoff time.Duration
}

// withDefaults resolves zero fields to the documented defaults.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = DefaultBreakerThreshold
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBreakerBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultBreakerMaxBackoff
	}
	return c
}

// BreakerState is a circuit breaker's coarse state.
type BreakerState int

// The three breaker states: closed passes traffic and counts consecutive
// failures; open fails fast until its backoff elapses; half-open has
// admitted a single reopen probe and fails fast until it reports.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for /statz and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-peer circuit breaker: closed until Threshold
// consecutive Failures, then open for a backoff that doubles (capped)
// on every failed reopen probe. Allow admits exactly one probe per
// elapsed backoff while open; any Success closes it. Safe for
// concurrent use; fed both passively (request outcomes) and actively
// (the PeerHealth /readyz prober).
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // test clock; time.Now outside tests

	mu      sync.Mutex
	state   BreakerState
	fails   int           // consecutive failures while closed
	until   time.Time     // open: earliest reopen probe
	backoff time.Duration // current open interval
	probeAt time.Time     // half-open: when the probe was admitted
	seen    bool          // any Success ever — probe or passive traffic
	onOpen  func()        // counts closed/half-open → open transitions
}

// NewBreaker returns a closed breaker with cfg's thresholds.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Allow reports whether a request to the peer may proceed. Closed:
// always. Open: false until the backoff elapses, then the breaker turns
// half-open and admits exactly this one reopen probe. Half-open: false
// while the probe is outstanding (with a MaxBackoff grace so a probe
// whose outcome was never reported — e.g. its context was canceled —
// cannot wedge the breaker).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probeAt = b.now()
		return true
	default: // half-open: one probe in flight
		if b.now().Sub(b.probeAt) >= b.cfg.MaxBackoff {
			b.probeAt = b.now() // probe outcome lost; admit another
			return true
		}
		return false
	}
}

// Ready is a non-consuming peek at Allow: true when a request right now
// would be admitted (closed, or open with the backoff elapsed). Unlike
// Allow it never claims the half-open probe slot, so callers can use it
// to skip down peers without racing real traffic for the probe.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return !b.now().Before(b.until)
	default:
		return false
	}
}

// Success records a successful contact: the breaker closes (from any
// state), the failure count and backoff reset, and the peer counts as
// seen — lifting the prober's boot grace (Seen).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.backoff = 0
	b.seen = true
}

// Seen reports whether the peer has ever answered successfully — via
// the /readyz prober or real forwarded traffic. The prober only counts
// failures against seen peers (boot grace: replicas start in arbitrary
// order), so a passive success must lift the grace too: a peer that
// served requests and then partitioned must still be detectable with no
// traffic flowing.
func (b *Breaker) Seen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seen
}

// Failure records a failed contact. Closed: one more consecutive
// failure, opening the breaker at the threshold. Half-open: the reopen
// probe failed, so the breaker reopens with its backoff doubled (capped
// at MaxBackoff). Open: no-op — the peer is already known down.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.open(b.cfg.Backoff)
		}
	case BreakerHalfOpen:
		next := b.backoff * 2
		if next > b.cfg.MaxBackoff {
			next = b.cfg.MaxBackoff
		}
		b.open(next)
	}
}

// open transitions to the open state for d; callers hold b.mu.
func (b *Breaker) open(d time.Duration) {
	b.state = BreakerOpen
	b.backoff = d
	b.until = b.now().Add(d)
	b.fails = 0
	if b.onOpen != nil {
		b.onOpen()
	}
}

// State returns the breaker's current coarse state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns how long until the breaker would next admit a
// probe: the remaining open interval, the current backoff while a
// half-open probe is outstanding, and 0 when closed. It is the
// Retry-After hint on replica-down 503s and the backoff the client's
// retry loop sleeps instead of its exponential schedule.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if d := b.until.Sub(b.now()); d > 0 {
			return d
		}
		return 0
	case BreakerHalfOpen:
		return b.backoff
	default:
		return 0
	}
}

// PeerHealth tracks one circuit breaker per peer URL and optionally
// runs the background /readyz prober that feeds them, so a replica
// learns a peer died even with no traffic flowing. One PeerHealth is
// shared per process by the peer-cache probe path, the forwarding
// proxy, and any embedded clients — every routing layer sees the same
// verdict. Safe for concurrent use.
type PeerHealth struct {
	cfg   BreakerConfig
	opens atomic.Int64

	mu       sync.Mutex
	peers    map[string]*Breaker
	inflight map[string]bool // a prober request is outstanding

	stop     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
}

// NewPeerHealth returns a tracker with cfg's breaker thresholds,
// pre-creating a breaker per listed peer (more are created on demand by
// For). The prober is off until StartProber.
func NewPeerHealth(cfg BreakerConfig, peers ...string) *PeerHealth {
	h := &PeerHealth{
		cfg:      cfg.withDefaults(),
		peers:    make(map[string]*Breaker),
		inflight: make(map[string]bool),
		stop:     make(chan struct{}),
	}
	for _, u := range peers {
		h.For(u)
	}
	return h
}

// For returns the peer's breaker, creating a closed one on first use.
func (h *PeerHealth) For(url string) *Breaker {
	h.mu.Lock()
	defer h.mu.Unlock()
	b, ok := h.peers[url]
	if !ok {
		b = NewBreaker(h.cfg)
		b.onOpen = func() { h.opens.Add(1) }
		h.peers[url] = b
	}
	return b
}

// Remove drops a peer's breaker — the drain path's membership change.
func (h *PeerHealth) Remove(url string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.peers, url)
}

// States snapshots every tracked peer's breaker state, keyed by URL —
// the /statz peer_health map.
func (h *PeerHealth) States() map[string]string {
	h.mu.Lock()
	urls := make([]string, 0, len(h.peers))
	breakers := make([]*Breaker, 0, len(h.peers))
	for u, b := range h.peers {
		urls = append(urls, u)
		breakers = append(breakers, b)
	}
	h.mu.Unlock()
	out := make(map[string]string, len(urls))
	for i, u := range urls {
		out[u] = breakers[i].State().String()
	}
	return out
}

// Opens returns the total number of breaker open transitions — the
// /statz breaker_opens counter.
func (h *PeerHealth) Opens() int64 { return h.opens.Load() }

// StartProber launches the background failure detector: every interval
// it GETs each tracked peer's /readyz (bounded by timeout, one
// outstanding request per peer) and feeds the result into the peer's
// breaker — Success on 200, Failure otherwise. A peer that has never
// answered — by probe or by passive traffic (Breaker.Seen) — is not
// failed by the prober (boot grace: replicas start in arbitrary order).
// No-op when interval <= 0 or the prober already runs; stop it with
// Close.
func (h *PeerHealth) StartProber(interval, timeout time.Duration) {
	if interval <= 0 || !h.started.CompareAndSwap(false, true) {
		return
	}
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	client := &http.Client{Timeout: timeout}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
			}
			h.probeAll(client)
		}
	}()
}

// probeAll fires one probe per tracked peer that has none outstanding.
func (h *PeerHealth) probeAll(client *http.Client) {
	h.mu.Lock()
	var urls []string
	for u := range h.peers {
		if !h.inflight[u] {
			h.inflight[u] = true
			urls = append(urls, u)
		}
	}
	h.mu.Unlock()
	for _, u := range urls {
		go func(url string) {
			ok := probeReady(client, url)
			h.mu.Lock()
			delete(h.inflight, url)
			b := h.peers[url]
			h.mu.Unlock()
			if b == nil {
				return // removed while probing
			}
			switch {
			case ok:
				b.Success()
			case b.Seen():
				b.Failure()
			}
		}(u)
	}
}

// probeReady is one GET /readyz attempt: true iff it answered 200.
func probeReady(client *http.Client, url string) bool {
	resp, err := client.Get(url + "/readyz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Close stops the background prober; breakers keep working passively.
// Idempotent and safe when the prober never started.
func (h *PeerHealth) Close() {
	h.stopOnce.Do(func() { close(h.stop) })
}
