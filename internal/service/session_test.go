package service

import (
	"context"
	"strings"
	"testing"
)

// openTestSession uploads a path instance and opens a session over it.
func openTestSession(t *testing.T, cfg SessionConfig) (*Client, string, string) {
	t.Helper()
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	in := pathInstance(t, 10, 7)
	up, err := c.Upload(ctx, "sess", in)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.OpenSession(ctx, up.ID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, up.ID, info.SessionID
}

func TestSessionFlow(t *testing.T) {
	ctx := context.Background()
	c, _, sid := openTestSession(t, SessionConfig{Epoch: 10, Window: 2})

	// Stream one epoch: the object seeds at the first requester (the cold
	// writer at node 0), then the read traffic at node 7 makes the epoch
	// close move the copy — the estimated saving dwarfs the migration.
	resp, err := c.SessionEvents(ctx, sid, []SessionEvent{
		{Obj: "obj", Node: 0, Write: true},
		{Obj: "obj", Node: 7, Count: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 10 {
		t.Fatalf("accepted %d events, want 10", resp.Accepted)
	}
	if len(resp.Epochs) != 1 || resp.Epochs[0].Resolved == 0 || resp.Epochs[0].Moved == 0 {
		t.Fatalf("epoch close missing or idle: %+v", resp.Epochs)
	}
	if resp.Stats.Events != 10 || resp.Stats.Epochs != 1 {
		t.Fatalf("session stats wrong: %+v", resp.Stats)
	}

	pl, err := c.SessionPlacement(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Placement.Copies["obj"]) == 0 {
		t.Fatalf("no placement after epoch close: %+v", pl)
	}
	if pl.Breakdown == nil || pl.Breakdown.Total <= 0 {
		t.Fatalf("placement breakdown missing: %+v", pl)
	}

	// A second identical epoch changes no estimate: no moves.
	resp2, err := c.SessionEvents(ctx, sid, []SessionEvent{
		{Obj: "obj", Node: 0, Write: true},
		{Obj: "obj", Node: 7, Count: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Epochs) != 1 || resp2.Epochs[0].Moved != 0 {
		t.Fatalf("stationary epoch still moved: %+v", resp2.Epochs)
	}

	// A partial epoch flushes on demand; an empty epoch flush is a no-op.
	if _, err := c.SessionEvents(ctx, sid, []SessionEvent{{Obj: "obj", Node: 7, Count: 3}}); err != nil {
		t.Fatal(err)
	}
	fl, err := c.SessionFlush(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(fl.Epochs) != 1 || fl.Epochs[0].Events != 3 {
		t.Fatalf("flush did not close the partial epoch: %+v", fl)
	}
	fl, err = c.SessionFlush(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(fl.Epochs) != 0 {
		t.Fatalf("empty flush closed an epoch: %+v", fl)
	}

	// Sessions appear in the list and in /statz.
	sessions, err := c.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions[0].SessionID != sid {
		t.Fatalf("session list wrong: %+v", sessions)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsOpen != 1 || st.SessionsOpened != 1 || st.SessionEvents != 23 || st.SessionEpochs != 3 {
		t.Fatalf("service session stats wrong: %+v", st)
	}

	// Close; the session is gone.
	if err := c.CloseSession(ctx, sid); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionPlacement(ctx, sid); err == nil {
		t.Fatal("placement of a closed session succeeded")
	}
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsOpen != 0 {
		t.Fatalf("closed session still counted open: %+v", st)
	}
}

func TestSessionValidation(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, Config{MaxSessions: 1})
	in := pathInstance(t, 8, 3)
	up, err := c.Upload(ctx, "v", in)
	if err != nil {
		t.Fatal(err)
	}

	// Unknown instance.
	if _, err := c.OpenSession(ctx, "deadbeef", SessionConfig{}); err == nil {
		t.Fatal("session over unknown instance accepted")
	}
	// Non-approx algorithms cannot drive the incremental epoch re-solve.
	if _, err := c.OpenSession(ctx, up.ID, SessionConfig{Options: SolveOptions{Algo: "single"}}); err == nil ||
		!strings.Contains(err.Error(), "approx") {
		t.Fatalf("algo=single session accepted: %v", err)
	}
	info, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Session cap.
	if _, err := c.OpenSession(ctx, up.ID, SessionConfig{}); err == nil ||
		!strings.Contains(err.Error(), "session limit") {
		t.Fatalf("session cap not enforced: %v", err)
	}
	// EWMA weight outside [0, 1].
	if _, err := c.OpenSession(ctx, up.ID, SessionConfig{Alpha: 4}); err == nil ||
		!strings.Contains(err.Error(), "alpha") {
		t.Fatalf("alpha=4 session accepted: %v", err)
	}
	// A single event whose count alone exceeds the batch cap (would
	// overflow a naive running total).
	if _, err := c.SessionEvents(ctx, info.SessionID, []SessionEvent{
		{Obj: "obj", Node: 0, Count: 1},
		{Obj: "obj", Node: 0, Count: int(^uint(0) >> 1)},
	}); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("overflowing count accepted: %v", err)
	}
	// Unknown object and out-of-range node in events.
	if _, err := c.SessionEvents(ctx, info.SessionID, []SessionEvent{{Obj: "nope", Node: 0}}); err == nil {
		t.Fatal("unknown object accepted")
	}
	if _, err := c.SessionEvents(ctx, info.SessionID, []SessionEvent{{Obj: "obj", Node: 99}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	// Empty batch.
	if _, err := c.SessionEvents(ctx, info.SessionID, nil); err == nil {
		t.Fatal("empty events batch accepted")
	}
	// Events against a missing session 404.
	if _, err := c.SessionEvents(ctx, "s-ffffff", []SessionEvent{{Obj: "obj", Node: 0}}); err == nil ||
		!strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing session error wrong: %v", err)
	}
}
