package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"

	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/stream"
	"netplace/internal/workload"
)

// SessionConfig is the wire form of a streaming session's tuning knobs,
// lowered onto stream.Config (zero fields select the stream defaults).
type SessionConfig struct {
	// Epoch is the number of events per re-placement epoch.
	Epoch int `json:"epoch,omitempty"`
	// Window is the sliding-window width in epochs (ignored when Alpha
	// is set).
	Window int `json:"window,omitempty"`
	// Alpha switches the estimator to an EWMA with this per-epoch weight.
	Alpha float64 `json:"alpha,omitempty"`
	// Horizon is the event count one storage fee amortises over when
	// estimates are quantised for the solver.
	Horizon int `json:"horizon,omitempty"`
	// Payback is the number of epochs a move's estimated saving must pay
	// its migration cost back within; negative takes any improving move.
	Payback float64 `json:"payback,omitempty"`
	// MigrationFactor scales the migration price in the hysteresis
	// decision; negative disables hysteresis.
	MigrationFactor float64 `json:"migration_factor,omitempty"`
	// Options configures the per-epoch re-solve (approx algorithm only;
	// the incremental path re-solves object by object).
	Options SolveOptions `json:"options,omitzero"`
}

// streamConfig lowers the wire config to a stream.Config. parallel is
// the service's default intra-solve parallelism, applied when the
// session's own options leave it unset — session epoch re-solves run one
// object at a time, so this is the only parallelism available to them.
func (c SessionConfig) streamConfig(runWorkers, parallel int) (stream.Config, error) {
	opts, err := c.Options.normalize()
	if err != nil {
		return stream.Config{}, err
	}
	if opts.Algo != "approx" {
		return stream.Config{}, fmt.Errorf("service: sessions re-solve with algo=approx only (got %q)", opts.Algo)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return stream.Config{}, fmt.Errorf("service: session alpha %v outside [0, 1]", c.Alpha)
	}
	return stream.Config{
		Epoch:           c.Epoch,
		Window:          c.Window,
		Alpha:           c.Alpha,
		Horizon:         c.Horizon,
		Payback:         c.Payback,
		MigrationFactor: c.MigrationFactor,
		Solve:           opts.coreOptions(runWorkers, parallel),
	}, nil
}

// Session is one live streaming re-placement session over a resident
// instance: it owns a stream.Engine and serialises access to it. The
// session pins its instance, so registry eviction does not invalidate
// it; abandoned sessions hold that pin until an explicit DELETE, which
// is what MaxSessions bounds.
type Session struct {
	// ID identifies the session in URLs.
	ID string
	// InstanceID is the registry id the session was opened against.
	InstanceID string

	mu       sync.Mutex
	engine   *stream.Engine
	instance *core.Instance
	objIndex map[string]int  // wire object name → index, immutable
	reqCtx   context.Context // current request's context; only touched under mu
	log      *sessionLog     // nil: server has no data dir
	lastSeq  int64           // highest applied client sequence number (idempotent ingest)
}

// SessionRequest is the body of POST /v1/sessions.
type SessionRequest struct {
	// InstanceID names the resident instance to stream against.
	InstanceID string `json:"instance_id"`
	// Config tunes the session; zero fields select defaults.
	Config SessionConfig `json:"config,omitzero"`
}

// SessionInfo is the wire form of a session record.
type SessionInfo struct {
	// SessionID addresses the session under /v1/sessions/{id}.
	SessionID string `json:"session_id"`
	// InstanceID is the instance the session streams against.
	InstanceID string `json:"instance_id"`
	// Epoch/Window/Alpha/Horizon/Payback/MigrationFactor echo the
	// resolved engine configuration.
	Epoch           int     `json:"epoch"`
	Window          int     `json:"window"`
	Alpha           float64 `json:"alpha,omitempty"`
	Horizon         int     `json:"horizon"`
	Payback         float64 `json:"payback"`
	MigrationFactor float64 `json:"migration_factor"`
	// Stats snapshots the session's accounting so far.
	Stats SessionStats `json:"stats"`
	// LastSeq is the highest applied client sequence number (0 when the
	// session has only seen unsequenced batches) — the resume point for
	// idempotent ingest.
	LastSeq int64 `json:"last_seq,omitempty"`
}

// SessionStats is the wire form of stream.Stats: the session's exact
// cost accounting (pro-rata storage over observed events) plus the
// adaptation counters.
type SessionStats struct {
	Events       int     `json:"events"`
	Epochs       int     `json:"epochs"`
	Resolves     int     `json:"resolves"`
	Moves        int     `json:"moves"`
	Rejected     int     `json:"rejected"`
	Transmission float64 `json:"transmission"`
	Storage      float64 `json:"storage"`
	Migration    float64 `json:"migration"`
	Total        float64 `json:"total"`
}

func sessionStats(s stream.Stats) SessionStats {
	return SessionStats{
		Events: s.Events, Epochs: s.Epochs, Resolves: s.Resolves,
		Moves: s.Moves, Rejected: s.Rejected,
		Transmission: s.Transmission, Storage: s.Storage,
		Migration: s.Migration, Total: s.Total(),
	}
}

// SessionEvent is one streamed request event, addressed like a trace
// line: object by wire name, issuing node, read or write. Count > 1
// expands to that many identical events.
type SessionEvent struct {
	Obj   string `json:"obj"`
	Node  int    `json:"node"`
	Write bool   `json:"write,omitempty"`
	Count int    `json:"count,omitempty"`
}

// SessionEventsRequest is the body of POST /v1/sessions/{id}/events.
// Seq, when positive, is the batch's client sequence number and makes
// the ingest idempotent: sequence numbers must be strictly increasing
// per session, and a batch whose Seq is at or below the session's
// high-water mark is acknowledged without being applied (the response
// sets Deduplicated) — so a retry after a torn response applies exactly
// once. The sequence number is journaled with the batch (and carried in
// snapshots), so deduplication survives crashes and restarts. Seq 0
// streams unsequenced, as before.
type SessionEventsRequest struct {
	Events []SessionEvent `json:"events"`
	Seq    int64          `json:"seq,omitempty"`
}

// SessionEpochJSON is the wire form of one closed epoch's report.
type SessionEpochJSON struct {
	Epoch        int     `json:"epoch"`
	Events       int     `json:"events"`
	Resolved     int     `json:"resolved"`
	Moved        int     `json:"moved"`
	Rejected     int     `json:"rejected"`
	Transmission float64 `json:"transmission"`
	Migration    float64 `json:"migration"`
}

// SessionEventsResponse reports what a batch of events caused: how many
// events were ingested and which epochs closed while ingesting them.
// Seq echoes the session's applied-sequence high-water mark;
// Deduplicated reports that the batch was recognised as already applied
// (its events were NOT re-ingested — Accepted is 0 and Stats reflects
// the original application).
type SessionEventsResponse struct {
	Accepted     int                `json:"accepted"`
	Epochs       []SessionEpochJSON `json:"epochs,omitempty"`
	Stats        SessionStats       `json:"stats"`
	Seq          int64              `json:"seq,omitempty"`
	Deduplicated bool               `json:"deduplicated,omitempty"`
}

// SessionPlacementResponse is the body of GET /v1/sessions/{id}/placement.
type SessionPlacementResponse struct {
	SessionID string `json:"session_id"`
	// Placement is the current copy sets in the shared wire format.
	// Objects not yet placed (no event seen, no epoch closed) are absent.
	Placement encode.PlacementJSON `json:"placement"`
	// Breakdown prices the current placement against the instance's own
	// frequency tables (the service's static model), when every object
	// is placed; omitted before the first full placement exists.
	Breakdown *BreakdownJSON `json:"breakdown,omitempty"`
	Stats     SessionStats   `json:"stats"`
}

// sessions is the server's session table.
type sessions struct {
	mu   sync.Mutex
	m    map[string]*Session
	next int
}

// add registers a session under a fresh id; cap is the configured
// session limit.
func (t *sessions) add(s *Session, cap int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[string]*Session)
	}
	if len(t.m) >= cap {
		return fmt.Errorf("service: session limit of %d reached", cap)
	}
	t.next++
	s.ID = fmt.Sprintf("s-%06x", t.next)
	t.m[s.ID] = s
	return nil
}

// restore re-registers a recovered session under its original id,
// bumping the id counter past it so new sessions never collide with
// recovered ones. Recovery bypasses the MaxSessions cap: the sessions
// were already admitted before the restart.
func (t *sessions) restore(s *Session) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[string]*Session)
	}
	if _, ok := t.m[s.ID]; ok {
		return fmt.Errorf("service: duplicate session id %s", s.ID)
	}
	t.m[s.ID] = s
	t.bumpLocked(s.ID)
	return nil
}

// reserve bumps the id counter past an on-disk session id that could
// not be recovered, so its leftover files are never clobbered by a new
// session minted under the same id.
func (t *sessions) reserve(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bumpLocked(id)
}

// bumpLocked advances next past a recovered id. Called with t.mu held.
func (t *sessions) bumpLocked(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "s-%x", &n); err == nil && n > t.next {
		t.next = n
	}
}

func (t *sessions) get(id string) (*Session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[id]
	return s, ok
}

func (t *sessions) delete(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[id]; !ok {
		return false
	}
	delete(t.m, id)
	return true
}

func (t *sessions) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

func (t *sessions) list() []*Session {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Session, 0, len(t.m))
	for _, s := range t.m {
		out = append(out, s)
	}
	return out
}

// info snapshots a session's wire record under its lock.
func (s *Session) info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := s.engine.Config()
	return SessionInfo{
		SessionID: s.ID, InstanceID: s.InstanceID,
		Epoch: cfg.Epoch, Window: cfg.Window, Alpha: cfg.Alpha,
		Horizon: cfg.Horizon, Payback: cfg.Payback, MigrationFactor: cfg.MigrationFactor,
		Stats:   sessionStats(s.engine.Stats()),
		LastSeq: s.lastSeq,
	}
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	in, info, ok := s.engine.registry.Get(req.InstanceID)
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	cfg, err := req.Config.streamConfig(s.engine.runWorkers(), s.cfg.Parallel)
	if err != nil {
		writeError(w, err)
		return
	}
	sess := &Session{
		InstanceID: info.ID,
		instance:   in,
		objIndex:   stream.ObjectIndex(in),
	}
	cfg.SolveGate = s.sessionGate(sess)
	sess.engine = stream.New(in, cfg)
	if err := s.sessions.add(sess, s.cfg.MaxSessions); err != nil {
		writeError(w, err)
		return
	}
	if s.store != nil {
		l, err := s.persistNewSession(sess, req.Config)
		if err != nil {
			// Roll the open back: an unacked session must not linger
			// half-persisted in memory or on disk.
			s.sessions.delete(sess.ID)
			s.store.removeSessionFiles(sess.ID)
			s.counters.persistErrors.Add(1)
			writeError(w, fmt.Errorf("%w: persisting session: %v", ErrInternal, err))
			return
		}
		sess.log = l
	}
	s.counters.sessionsOpened.Add(1)
	writeJSON(w, http.StatusCreated, sess.info())
}

// sessionGate wraps a session's epoch re-solves in the engine's
// worker-pool semaphore, so sessions compete with ordinary solves for
// the configured slots instead of bypassing them. The wait is
// cancellable by the current request's context: a client gone mid-epoch
// skips the re-placement (the engine retries at the next epoch close)
// instead of holding the session lock until a slot frees up.
func (s *Server) sessionGate(sess *Session) func(solve func()) {
	return func(solve func()) {
		ctx := sess.reqCtx // gate runs under sess.mu, where reqCtx is set
		if ctx == nil {
			ctx = context.Background()
		}
		select {
		case s.engine.sem <- struct{}{}:
		case <-ctx.Done():
			return
		}
		s.counters.inflight.Add(1)
		defer func() {
			s.counters.inflight.Add(-1)
			<-s.engine.sem
		}()
		solve()
	}
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	out := []SessionInfo{}
	for _, sess := range s.sessions.list() {
		out = append(out, sess.info())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok || !s.sessions.delete(sess.ID) {
		// The second check loses a race against a concurrent DELETE of the
		// same id; exactly one of the two removes the files below.
		writeError(w, ErrNotFound)
		return
	}
	// Take the session lock so an in-flight ingest finishes before the
	// files go away; new requests can no longer find the session.
	sess.mu.Lock()
	if sess.log != nil {
		if err := sess.log.remove(); err != nil {
			s.counters.persistErrors.Add(1)
		}
		sess.log = nil
	}
	sess.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// maxSessionEventBatch bounds one events call after count expansion, so a
// single request cannot hold a session's lock for unbounded work.
const maxSessionEventBatch = 1 << 20

func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	var req SessionEventsRequest
	if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Events) == 0 {
		writeError(w, fmt.Errorf("service: events batch is empty"))
		return
	}
	if req.Seq < 0 {
		writeError(w, fmt.Errorf("service: negative batch seq %d", req.Seq))
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.reqCtx = r.Context()
	defer func() { sess.reqCtx = nil }()
	if req.Seq > 0 && req.Seq <= sess.lastSeq {
		// Idempotent retry: this sequence number (or a later one) was
		// already applied and acknowledged — or the response carrying the
		// ack was torn. Either way the events are in; acknowledge again
		// without re-applying.
		s.counters.dedupedBatches.Add(1)
		writeJSON(w, http.StatusOK, SessionEventsResponse{
			Deduplicated: true,
			Seq:          sess.lastSeq,
			Stats:        sessionStats(sess.engine.Stats()),
		})
		return
	}
	// Validate the whole batch before the first Observe: ingestion must
	// be all-or-nothing, so a failed request never leaves the session's
	// estimates skewed by a half-applied prefix that a retry would then
	// double-count.
	idx := sess.objIndex
	objOf := make([]int, len(req.Events))
	total := 0
	for i, ev := range req.Events {
		oi, ok := idx[ev.Obj]
		if !ok {
			writeError(w, fmt.Errorf("service: events[%d]: unknown object %q", i, ev.Obj))
			return
		}
		if ev.Node < 0 || ev.Node >= sess.instance.N() {
			writeError(w, fmt.Errorf("service: events[%d]: node %d out of range [0,%d)", i, ev.Node, sess.instance.N()))
			return
		}
		objOf[i] = oi
		count := ev.Count
		if count <= 0 {
			count = 1
		}
		// Per-event cap before summing: a huge count must not overflow
		// the running total past the batch check.
		if count > maxSessionEventBatch {
			writeError(w, fmt.Errorf("service: events[%d]: count %d exceeds the %d-event batch cap", i, count, maxSessionEventBatch))
			return
		}
		if total += count; total > maxSessionEventBatch {
			writeError(w, fmt.Errorf("service: events batch expands past %d events", maxSessionEventBatch))
			return
		}
	}
	if sess.log != nil {
		// Journal the expanded batch and make it durable BEFORE the first
		// Observe: an acked batch can always be replayed, and a crash
		// between sync and apply just replays the full WAL to the same
		// state (the client never saw an ack, and ingestion stays
		// all-or-nothing either way). Count lines are expanded to one
		// event per line so a torn tail costs at most one event's bytes.
		lines := make([][]byte, 0, total)
		for i, ev := range req.Events {
			line, err := json.Marshal(stream.EventJSON{Obj: ev.Obj, Node: ev.Node, Write: ev.Write})
			if err != nil {
				writeError(w, fmt.Errorf("%w: events[%d]: %v", ErrInternal, i, err))
				return
			}
			line = append(line, '\n')
			count := ev.Count
			if count <= 0 {
				count = 1
			}
			for k := 0; k < count; k++ {
				lines = append(lines, line)
			}
		}
		if err := sess.log.append(lines, req.Seq); err != nil {
			// The log rolled itself back to the durable prefix; the engine
			// never saw the batch, so memory and disk still agree.
			s.counters.persistErrors.Add(1)
			writeError(w, fmt.Errorf("%w: %v", ErrInternal, err))
			return
		}
	}
	resp := SessionEventsResponse{}
	for i, ev := range req.Events {
		count := ev.Count
		if count <= 0 {
			count = 1
		}
		for k := 0; k < count; k++ {
			rep, err := sess.engine.Observe(workload.Request{Obj: objOf[i], V: ev.Node, Write: ev.Write})
			if err != nil {
				// Unreachable after validation above; surface as internal.
				writeError(w, fmt.Errorf("%w: events[%d]: %v", ErrInternal, i, err))
				return
			}
			resp.Accepted++
			s.counters.sessionEvents.Add(1)
			if rep != nil {
				resp.Epochs = append(resp.Epochs, s.recordEpoch(rep))
			}
		}
	}
	if req.Seq > 0 {
		sess.lastSeq = req.Seq
	}
	resp.Seq = sess.lastSeq
	if sess.log != nil && len(resp.Epochs) > 0 {
		// Epoch boundary: snapshot the engine state and truncate the log
		// (rotate to a fresh generation). Failure is benign for
		// correctness — the old snapshot plus the intact WAL still replays
		// to exactly this state — so the batch is still acked.
		if err := sess.log.rotate(sess.engine.State(), sess.lastSeq); err != nil {
			s.counters.persistErrors.Add(1)
			log.Printf("service: session %s: %v", sess.ID, err)
		}
	}
	resp.Stats = sessionStats(sess.engine.Stats())
	writeJSON(w, http.StatusOK, resp)
}

// recordEpoch counts a closed epoch into the service counters and
// converts the report to wire form.
func (s *Server) recordEpoch(rep *stream.EpochReport) SessionEpochJSON {
	s.counters.sessionEpochs.Add(1)
	s.counters.sessionMoves.Add(int64(rep.Moved))
	s.counters.sessionResolves.Add(int64(rep.Resolved))
	return SessionEpochJSON{
		Epoch: rep.Epoch, Events: rep.Events,
		Resolved: rep.Resolved, Moved: rep.Moved, Rejected: rep.Rejected,
		Transmission: rep.Transmission, Migration: rep.Migration,
	}
}

// handleSessionFlush closes the session's open partial epoch (estimates
// refresh, re-placement runs), so a finished trace is fully accounted —
// the server-side counterpart of stream.Engine.Flush, used by
// cmd/netreplay's server mode to match in-process accounting.
func (s *Server) handleSessionFlush(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.reqCtx = r.Context()
	defer func() { sess.reqCtx = nil }()
	resp := SessionEventsResponse{}
	if rep := sess.engine.Flush(); rep != nil {
		resp.Epochs = append(resp.Epochs, s.recordEpoch(rep))
	}
	if sess.log != nil {
		// A flush is the one state change the WAL does not record (it
		// closes a partial epoch without an event), so its durability IS
		// the snapshot rotation: on failure the flush is reported
		// not-durable and the client may retry. Rotation runs even when
		// the epoch was already empty, so a retry re-attempts exactly the
		// failed checkpoint.
		if err := sess.log.rotate(sess.engine.State(), sess.lastSeq); err != nil {
			s.counters.persistErrors.Add(1)
			writeError(w, fmt.Errorf("%w: flush not durable: %v", ErrInternal, err))
			return
		}
	}
	resp.Seq = sess.lastSeq
	resp.Stats = sessionStats(sess.engine.Stats())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionPlacement(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	p := sess.engine.Placement()
	resp := SessionPlacementResponse{
		SessionID: sess.ID,
		Placement: encode.PlacementJSON{Copies: map[string][]int{}},
		Stats:     sessionStats(sess.engine.Stats()),
	}
	complete := true
	for i, copies := range p.Copies {
		if len(copies) == 0 {
			complete = false
			continue
		}
		resp.Placement.Copies[wireObjectName(&sess.instance.Objects[i], i)] = copies
	}
	if complete && len(p.Copies) > 0 {
		b := breakdownJSON(sess.instance.Cost(p))
		resp.Breakdown = &b
	}
	writeJSON(w, http.StatusOK, resp)
}
