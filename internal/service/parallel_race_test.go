package service

import (
	"context"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/workload"
)

// testParallel is the intra-solve parallelism the concurrency hammers
// force. The CI race lane raises it via NETPLACE_TEST_PARALLEL so the
// sharded scans run wider than the default under the race detector.
func testParallel() int {
	if v, err := strconv.Atoi(os.Getenv("NETPLACE_TEST_PARALLEL")); err == nil && v != 0 {
		return v
	}
	return 4
}

// clusteredServiceInstance builds a mid-size clustered instance whose
// re-solves do enough radius-scan work for the sharded workers to overlap.
func clusteredServiceInstance(t *testing.T, objects int) *core.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	g := gen.Grid(10, 10, gen.UnitWeights)
	n := g.N()
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 2 + rng.Float64()*6
	}
	objs := workload.Generate(n, workload.Spec{Objects: objects, MeanRate: 3, WriteFraction: 0.3, ZipfS: 0.8}, rng)
	in, err := core.NewInstance(g, storage, objs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestConcurrentSessionResolvesParallelRace hammers several streaming
// sessions at once with intra-solve parallelism forced on, so session
// epoch re-solves (sharded radius scans, concurrent lazy-oracle access)
// overlap with each other and with concurrent what-if scenarios. Run
// with -race; the final placements must also match a serial reference.
func TestConcurrentSessionResolvesParallelRace(t *testing.T) {
	par := testParallel()
	srv, c := newTestServer(t, Config{Workers: 4, Parallel: par})
	ctx := context.Background()
	in := clusteredServiceInstance(t, 4)
	up, err := c.Upload(ctx, "hammer", in)
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 4
	const epochs = 3
	ids := make([]string, sessions)
	for i := range ids {
		// Mettu–Plaxton keeps re-solves on the sharded ball-scan path (the
		// auto-selected local search is Θ(n²) per sweep and ignores
		// Parallel — far too slow to hammer in a test).
		info, err := c.OpenSession(ctx, up.ID, SessionConfig{
			Epoch: 32, Window: 2,
			Options: SolveOptions{FL: "mettu-plaxton", Metric: "lazy", MetricRows: 16, Parallel: par},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.SessionID
	}

	// Identical event streams per session: every session must converge to
	// the same placement no matter how its parallel re-solves interleave.
	rng := rand.New(rand.NewSource(17))
	seq := workload.Sequence(in.Objects, 32*epochs, rng)
	batch := make([]SessionEvent, len(seq))
	for i, r := range seq {
		batch[i] = SessionEvent{Obj: in.Objects[r.Obj].Name, Node: r.V, Write: r.Write}
	}

	var wg sync.WaitGroup
	for _, sid := range ids {
		wg.Add(1)
		go func(sid string) {
			defer wg.Done()
			for e := 0; e < epochs; e++ {
				if _, err := c.SessionEvents(ctx, sid, batch[e*32:(e+1)*32]); err != nil {
					t.Error(err)
					return
				}
			}
		}(sid)
	}
	// Concurrent what-if pressure through the same engine and oracle: the
	// incremental path re-solves one object with the same parallel knob.
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			reads := make([]int64, in.N())
			for v := range reads {
				reads[v] = int64((v + k) % 5)
			}
			sc := Scenario{Objects: []ObjectPatch{{Name: in.Objects[0].Name, Reads: reads}}}
			opts := SolveOptions{FL: "mettu-plaxton", Metric: "lazy", MetricRows: 16, Parallel: par}
			for i := 0; i < 3; i++ {
				if _, err := srv.Engine().Scenario(ctx, up.ID, opts, sc); err != nil {
					t.Error(err)
					return
				}
			}
		}(k)
	}
	wg.Wait()

	var want map[string][]int
	for i, sid := range ids {
		pl, err := c.SessionPlacement(ctx, sid)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = pl.Placement.Copies
			continue
		}
		if !reflect.DeepEqual(pl.Placement.Copies, want) {
			t.Fatalf("session %s diverged under parallel re-solves: %v vs %v", sid, pl.Placement.Copies, want)
		}
	}
}
