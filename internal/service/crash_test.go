package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"netplace/internal/core"
	"netplace/internal/graph"
	"netplace/internal/stream"
	"netplace/internal/workload"
)

// crashInstance builds the crash tests' shared fixture: a 24-node path
// with integer edge weights and storage fees, three objects with spread
// hot spots. Integer weights make every backend's distances exactly
// representable, so byte-identity assertions can span oracle backends.
func crashInstance(t *testing.T) *core.Instance {
	t.Helper()
	const n = 24
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, 1)
	}
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(1 + v%3)
	}
	objs := make([]core.Object, 3)
	for oi := range objs {
		o := core.Object{Name: string(rune('a' + oi)), Reads: make([]int64, n), Writes: make([]int64, n)}
		o.Reads[(oi*7+3)%n] = 4
		o.Writes[oi] = 1
		objs[oi] = o
	}
	in, err := core.NewInstance(g, storage, objs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// driftTrace synthesises a deterministic trace whose hot region drifts
// across the path every 40 events, forcing real placement moves.
func driftTrace(n, events int) []SessionEvent {
	names := []string{"a", "b", "c"}
	evs := make([]SessionEvent, events)
	for i := range evs {
		phase := i / 40
		evs[i] = SessionEvent{
			Obj:   names[i%3],
			Node:  ((i*5)%7 + phase*(n/3) + i%3) % n,
			Write: i%5 == 0,
		}
	}
	return evs
}

// serveExisting wraps an already-constructed server (recovered from a
// data directory, unlike newTestServer's fresh New) in a real listener.
func serveExisting(t *testing.T, srv *Server) *Client {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client())
}

// ingestBatches streams a trace slice in fixed-size event batches.
func ingestBatches(t *testing.T, c *Client, sid string, evs []SessionEvent, batch int) {
	t.Helper()
	ctx := context.Background()
	for start := 0; start < len(evs); start += batch {
		end := min(start+batch, len(evs))
		resp, err := c.SessionEvents(ctx, sid, evs[start:end])
		if err != nil {
			t.Fatalf("events[%d:%d]: %v", start, end, err)
		}
		if resp.Accepted != end-start {
			t.Fatalf("events[%d:%d]: accepted %d", start, end, resp.Accepted)
		}
	}
}

// sessionFingerprint serialises everything the byte-identity property
// covers: the full engine state (estimates, placement, accounting,
// hysteresis fee), the wire placement response, and the /statz session
// counters.
func sessionFingerprint(t *testing.T, srv *Server, c *Client, sid string) []byte {
	t.Helper()
	sess, ok := srv.sessions.get(sid)
	if !ok {
		t.Fatalf("session %s not found", sid)
	}
	sess.mu.Lock()
	state := sess.engine.State()
	sess.mu.Unlock()
	pl, err := c.SessionPlacement(context.Background(), sid)
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	fp, err := json.Marshal(struct {
		State     *stream.EngineState
		Placement SessionPlacementResponse
		Open      int
		Opened    int64
		Events    int64
		Epochs    int64
		Resolves  int64
		Moves     int64
	}{state, pl, st.SessionsOpen, st.SessionsOpened, st.SessionEvents, st.SessionEpochs, st.SessionResolves, st.SessionMoves})
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// pinBackend points a resident instance's distance oracle at a named
// backend, as a solve with the same metric option would.
func pinBackend(t *testing.T, srv *Server, id, backend string) {
	t.Helper()
	in, _, ok := srv.engine.registry.Get(id)
	if !ok {
		t.Fatalf("instance %s not resident", id)
	}
	in.UseMetric(metricBackends[backend], 64)
}

// TestCrashRecoveryByteIdenticalAcrossBackends is the persistence
// layer's core property: a run killed mid-epoch (twice) and recovered
// from snapshot + WAL ends byte-identical — engine state, placement,
// and /statz session counters — to an uninterrupted run of the same
// trace, across the three oracle backends and the parallelism modes.
// Recovery replays under the reloaded instance's auto-selected backend,
// so the cross-backend cases also re-assert the repo's oracle
// equivalence invariant along the way.
func TestCrashRecoveryByteIdenticalAcrossBackends(t *testing.T) {
	for _, backend := range []string{"dense", "lazy", "tree"} {
		for _, par := range []int{0, 2, -1} {
			t.Run(fmt.Sprintf("%s/parallel=%d", backend, par), func(t *testing.T) {
				ctx := context.Background()
				in := crashInstance(t)
				trace := driftTrace(24, 126)
				scfg := SessionConfig{Epoch: 16, Window: 3, Options: SolveOptions{Metric: backend, Parallel: par}}

				// Uninterrupted reference on a plain in-memory server.
				refSrv, refC := newTestServer(t, Config{})
				refUp, err := refC.Upload(ctx, "crash", in)
				if err != nil {
					t.Fatal(err)
				}
				pinBackend(t, refSrv, refUp.ID, backend)
				refSess, err := refC.OpenSession(ctx, refUp.ID, scfg)
				if err != nil {
					t.Fatal(err)
				}
				ingestBatches(t, refC, refSess.SessionID, trace, 9)
				if _, err := refC.SessionFlush(ctx, refSess.SessionID); err != nil {
					t.Fatal(err)
				}
				want := sessionFingerprint(t, refSrv, refC, refSess.SessionID)

				// Same trace against a persistent server, killed twice
				// mid-epoch (54 = 3·16+6 and 90 = 5·16+10 events).
				h := NewCrashHarness(t.TempDir(), Config{})
				srv, err := h.Start()
				if err != nil {
					t.Fatal(err)
				}
				c := serveExisting(t, srv)
				up, err := c.Upload(ctx, "crash", in)
				if err != nil {
					t.Fatal(err)
				}
				if up.ID != refUp.ID {
					t.Fatalf("content-addressed ids diverge: %s vs %s", up.ID, refUp.ID)
				}
				pinBackend(t, srv, up.ID, backend)
				sess, err := c.OpenSession(ctx, up.ID, scfg)
				if err != nil {
					t.Fatal(err)
				}
				sid := sess.SessionID
				if sid != refSess.SessionID {
					t.Fatalf("session ids diverge: %s vs %s", sid, refSess.SessionID)
				}

				ingestBatches(t, c, sid, trace[:54], 9)
				h.Kill()
				srv, err = h.Start()
				if err != nil {
					t.Fatal(err)
				}
				c = serveExisting(t, srv)
				st := srv.Stats()
				if !st.Persistence || st.RecoveredSessions != 1 || st.WALDiscardedBytes != 0 {
					t.Fatalf("first recovery stats: %+v", st)
				}
				if st.SessionEvents != 54 {
					t.Fatalf("recovered counters report %d events, want 54", st.SessionEvents)
				}

				ingestBatches(t, c, sid, trace[54:90], 9)
				h.Kill()
				srv, err = h.Start()
				if err != nil {
					t.Fatal(err)
				}
				c = serveExisting(t, srv)
				ingestBatches(t, c, sid, trace[90:], 9)
				if _, err := c.SessionFlush(ctx, sid); err != nil {
					t.Fatal(err)
				}

				got := sessionFingerprint(t, srv, c, sid)
				if !bytes.Equal(got, want) {
					t.Errorf("recovered run diverges from uninterrupted run\n got %s\nwant %s", got, want)
				}
			})
		}
	}
}

// TestCrashRecoveryEwmaEstimator runs the same kill/restart property in
// the EWMA estimator mode, whose state (continuous rates, initialised
// flag) is disjoint from the windowed mode's rings.
func TestCrashRecoveryEwmaEstimator(t *testing.T) {
	ctx := context.Background()
	in := crashInstance(t)
	trace := driftTrace(24, 100)
	scfg := SessionConfig{Epoch: 16, Alpha: 0.3}

	refSrv, refC := newTestServer(t, Config{})
	refUp, err := refC.Upload(ctx, "ewma", in)
	if err != nil {
		t.Fatal(err)
	}
	refSess, err := refC.OpenSession(ctx, refUp.ID, scfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestBatches(t, refC, refSess.SessionID, trace, 11)
	if _, err := refC.SessionFlush(ctx, refSess.SessionID); err != nil {
		t.Fatal(err)
	}
	want := sessionFingerprint(t, refSrv, refC, refSess.SessionID)

	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "ewma", in)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, scfg)
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	ingestBatches(t, c, sid, trace[:44], 11)
	h.Kill()
	srv, err = h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c = serveExisting(t, srv)
	ingestBatches(t, c, sid, trace[44:], 11)
	if _, err := c.SessionFlush(ctx, sid); err != nil {
		t.Fatal(err)
	}
	got := sessionFingerprint(t, srv, c, sid)
	if !bytes.Equal(got, want) {
		t.Errorf("recovered EWMA run diverges\n got %s\nwant %s", got, want)
	}
}

// TestCrashMidBatchWALTornWrite cuts the live WAL at every byte offset
// — the torn-write window of a crash mid-append — and asserts recovery
// always succeeds with the longest *committed* prefix, accounts the
// discarded bytes, and leaves the session ingestable. The v2 WAL is
// batch-atomic: a batch counts only once its commit marker is fully on
// disk, so a cut anywhere inside the final batch (event lines or the
// marker itself) drops the whole batch. That batch was never acked —
// the marker is written before the HTTP response — so dropping it keeps
// the store consistent with what the client observed, and a sequenced
// retry re-applies it exactly once.
func TestCrashMidBatchWALTornWrite(t *testing.T) {
	ctx := context.Background()
	in := crashInstance(t)
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "torn", in)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 16})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	// One full epoch rotates the log; the next batch (with a
	// count-expanded event, so 6 WAL lines) is the live segment.
	ingestBatches(t, c, sid, driftTrace(24, 16), 16)
	last := []SessionEvent{
		{Obj: "a", Node: 3}, {Obj: "b", Node: 9, Write: true},
		{Obj: "c", Node: 20, Count: 2}, {Obj: "a", Node: 14}, {Obj: "b", Node: 1},
	}
	resp, err := c.SessionEvents(ctx, sid, last)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 6 {
		t.Fatalf("accepted %d, want 6", resp.Accepted)
	}
	h.Kill()

	path, size, err := h.WALFile(sid)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != size || size == 0 || data[len(data)-1] != '\n' {
		t.Fatalf("wal file: %d bytes (stat %d)", len(data), size)
	}

	// The live generation holds exactly the final batch: its 6 expanded
	// event lines plus the commit marker.
	const fullEvents = 16 + 6
	roots := t.TempDir()
	for off := int64(0); off <= size; off++ {
		clone, err := h.Clone(filepath.Join(roots, fmt.Sprintf("off-%d", off)))
		if err != nil {
			t.Fatal(err)
		}
		if err := clone.TruncateWAL(sid, off); err != nil {
			t.Fatal(err)
		}
		csrv, err := clone.Start()
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		// Any cut short of the full file tears the final batch's marker,
		// so the whole batch rolls back to the epoch snapshot's 16 events.
		wantEvents, wantDiscarded, wantValid := int64(fullEvents-6), off, int64(0)
		if off == size {
			wantEvents, wantDiscarded, wantValid = fullEvents, 0, size
		}
		st := csrv.Stats()
		if st.RecoveredSessions != 1 || st.SessionEvents != wantEvents || st.WALDiscardedBytes != wantDiscarded {
			t.Fatalf("offset %d: recovered=%d events=%d discarded=%d, want 1/%d/%d",
				off, st.RecoveredSessions, st.SessionEvents, st.WALDiscardedBytes, wantEvents, wantDiscarded)
		}
		// Recovery physically truncated the torn tail.
		cpath, csize, err := clone.WALFile(sid)
		if err != nil {
			t.Fatal(err)
		}
		if csize != wantValid {
			t.Fatalf("offset %d: wal %s is %d bytes after recovery, want %d", off, cpath, csize, wantValid)
		}
		// The recovered session keeps working: the reopened log appends
		// where the valid prefix ends.
		cc := serveExisting(t, csrv)
		r, err := cc.SessionEvents(ctx, sid, []SessionEvent{{Obj: "a", Node: 5}})
		if err != nil {
			t.Fatalf("offset %d: post-recovery ingest: %v", off, err)
		}
		if r.Accepted != 1 || r.Stats.Events != int(wantEvents)+1 {
			t.Fatalf("offset %d: post-recovery ingest: %+v", off, r)
		}
		clone.Kill()
	}
}

// TestWALRotationTruncatesLog asserts the epoch-boundary checkpoint:
// every closed epoch snapshots the engine and starts a fresh (empty) WAL
// generation, deleting the old one; stray generations left by an
// interrupted rotation are swept at recovery.
func TestWALRotationTruncatesLog(t *testing.T) {
	ctx := context.Background()
	in := crashInstance(t)
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "rotate", in)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	st := &store{dir: h.Dir()}

	snap, err := st.readSessionSnap(sid)
	if err != nil || snap.WALSeq != 1 {
		t.Fatalf("fresh session snapshot: seq=%d err=%v", snap.WALSeq, err)
	}
	trace := driftTrace(24, 16)
	ingestBatches(t, c, sid, trace[:8], 8) // closes epoch 1 → rotation
	snap, err = st.readSessionSnap(sid)
	if err != nil || snap.WALSeq != 2 {
		t.Fatalf("after epoch 1: seq=%d err=%v", snap.WALSeq, err)
	}
	if seqs, err := st.sessionWALs(sid); err != nil || len(seqs) != 1 || seqs[0] != 2 {
		t.Fatalf("after epoch 1: wal segments %v err=%v", seqs, err)
	}
	if _, size, err := h.WALFile(sid); err != nil || size != 0 {
		t.Fatalf("rotated wal not empty: size=%d err=%v", size, err)
	}
	ingestBatches(t, c, sid, trace[8:12], 4) // mid-epoch: no rotation
	if snap, _ = st.readSessionSnap(sid); snap.WALSeq != 2 {
		t.Fatalf("mid-epoch rotation: seq=%d", snap.WALSeq)
	}
	if _, size, _ := h.WALFile(sid); size == 0 {
		t.Fatal("mid-epoch events not in wal")
	}
	ingestBatches(t, c, sid, trace[12:16], 4) // closes epoch 2
	if snap, _ = st.readSessionSnap(sid); snap.WALSeq != 3 {
		t.Fatalf("after epoch 2: seq=%d", snap.WALSeq)
	}

	// Stray generations (an interrupted rotation's leftovers) are swept
	// at the next recovery; the live segment survives.
	h.Kill()
	for _, stray := range []int{1, 99} {
		p := st.sessionWALPath(sid, stray)
		if err := os.WriteFile(p, []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if seqs, err := st.sessionWALs(sid); err != nil || len(seqs) != 1 || seqs[0] != 3 {
		t.Fatalf("stray segments not swept: %v err=%v", seqs, err)
	}
}

// TestRecoveryAfterCleanRestart: a graceful Close + reopen recovers the
// exact engine state, including a partial epoch living only in the WAL.
func TestRecoveryAfterCleanRestart(t *testing.T) {
	ctx := context.Background()
	in := crashInstance(t)
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "clean", in)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 16})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	ingestBatches(t, c, sid, driftTrace(24, 20), 10) // 1 epoch + 4 events in the WAL

	live, _ := srv.sessions.get(sid)
	before, err := json.Marshal(live.engine.State())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	h.Kill() // logs already closed; this just detaches the server

	srv, err = h.Start()
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.RecoveredSessions != 1 || st.WALDiscardedBytes != 0 || st.SessionEvents != 20 {
		t.Fatalf("clean-restart stats: %+v", st)
	}
	recovered, _ := srv.sessions.get(sid)
	after, err := json.Marshal(recovered.engine.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("state diverges across clean restart\n got %s\nwant %s", after, before)
	}
}

// TestNetplacedDataDirRoundTrip is the acceptance integration test: a
// trace ingested half before a kill and half after the restart bills
// exactly what a single uninterrupted in-process replay (the
// cmd/netreplay accounting, via stream.Compare) bills.
func TestNetplacedDataDirRoundTrip(t *testing.T) {
	ctx := context.Background()
	in := crashInstance(t)
	trace := driftTrace(24, 126)

	idx := stream.ObjectIndex(in)
	seq := make([]workload.Request, len(trace))
	for i, ev := range trace {
		seq[i] = workload.Request{Obj: idx[ev.Obj], V: ev.Node, Write: ev.Write}
	}
	want := stream.Compare(in, seq, stream.Config{Epoch: 16}).Adaptive

	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "roundtrip", in)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 16})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	ingestBatches(t, c, sid, trace[:63], 7)
	h.Kill()
	srv, err = h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c = serveExisting(t, srv)
	ingestBatches(t, c, sid, trace[63:], 7)
	fl, err := c.SessionFlush(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	got := fl.Stats
	if got.Events != len(trace) ||
		got.Transmission != want.Transmission ||
		got.Storage != want.Storage ||
		got.Migration != want.Migration ||
		got.Total != want.Total() ||
		got.Moves != want.Moves ||
		got.Resolves != want.Resolves {
		t.Errorf("split-run totals diverge from single-run replay\n got %+v\nwant %+v", got, want)
	}
}
