package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"netplace/internal/encode"
)

// TestInstancePersistenceRoundTrip: uploads survive a restart with their
// labels, deletes stay deleted, and re-uploading after recovery is the
// usual idempotent no-op against the recovered copy.
func TestInstancePersistenceRoundTrip(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)

	inA, inB := pathInstance(t, 10, 7), pathInstance(t, 12, 4)
	upA, err := c.Upload(ctx, "keep-me", inA)
	if err != nil {
		t.Fatal(err)
	}
	upB, err := c.Upload(ctx, "drop-me", inB)
	if err != nil {
		t.Fatal(err)
	}
	// A re-upload refreshes the persisted label too.
	if re, err := c.Upload(ctx, "keep-me-renamed", inA); err != nil || re.Created {
		t.Fatalf("re-upload: %+v err=%v", re, err)
	}
	if err := c.Delete(ctx, upB.ID); err != nil {
		t.Fatal(err)
	}

	h.Kill()
	srv, err = h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c = serveExisting(t, srv)
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != upA.ID || list[0].Name != "keep-me-renamed" {
		t.Fatalf("recovered instances: %+v", list)
	}
	// The recovered copy answers queries and re-upload is idempotent.
	if res, err := c.Solve(ctx, upA.ID, SolveOptions{}); err != nil || res.Copies == 0 {
		t.Fatalf("solve on recovered instance: %+v err=%v", res, err)
	}
	if re, err := c.Upload(ctx, "", inA); err != nil || re.Created || re.ID != upA.ID {
		t.Fatalf("re-upload after recovery: %+v err=%v", re, err)
	}
}

// TestInstanceRecoverySkipsDamagedFiles: unparseable, invalid, and
// hash-mismatched snapshots (and leftover .tmp files) are skipped with a
// warning; intact ones still load.
func TestInstanceRecoverySkipsDamagedFiles(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "good", pathInstance(t, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	h.Kill()

	dir := filepath.Join(h.Dir(), "instances")
	// Unparseable JSON.
	if err := os.WriteFile(filepath.Join(dir, "0000000000000001.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Parseable but semantically invalid (no nodes).
	bad, _ := json.Marshal(instanceFileJSON{Name: "bad", Instance: encode.InstanceJSON{}})
	if err := os.WriteFile(filepath.Join(dir, "0000000000000002.json"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	// Valid instance filed under the wrong id: content hash mismatch.
	mis, _ := json.Marshal(instanceFileJSON{Name: "mismatch", Instance: encode.InstanceJSONOf(pathInstance(t, 6, 2))})
	if err := os.WriteFile(filepath.Join(dir, "0000000000000003.json"), mis, 0o644); err != nil {
		t.Fatal(err)
	}
	// Leftover temp file from an interrupted atomic write.
	if err := os.WriteFile(filepath.Join(dir, "0000000000000004.json.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err = h.Start()
	if err != nil {
		t.Fatalf("recovery must skip damaged snapshots, not fail: %v", err)
	}
	c = serveExisting(t, srv)
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != up.ID {
		t.Fatalf("recovered instances: %+v", list)
	}
}

// TestSessionRecoverySkipsMissingInstance: a session whose instance
// snapshot vanished cannot be rebuilt; recovery skips it but still
// reserves its id so a new session never reuses it (and never clobbers
// the leftover files).
func TestSessionRecoverySkipsMissingInstance(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "doomed", pathInstance(t, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	ingestBatches(t, c, sess.SessionID, []SessionEvent{
		{Obj: "obj", Node: 7}, {Obj: "obj", Node: 2, Write: true}, {Obj: "obj", Node: 7},
	}, 3)
	h.Kill()
	if err := os.Remove(filepath.Join(h.Dir(), "instances", up.ID+".json")); err != nil {
		t.Fatal(err)
	}

	srv, err = h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c = serveExisting(t, srv)
	if got, err := c.Sessions(ctx); err != nil || len(got) != 0 {
		t.Fatalf("sessions after losing the instance: %+v err=%v", got, err)
	}
	if st := srv.Stats(); st.RecoveredSessions != 0 || st.SessionsOpened != 0 {
		t.Fatalf("stats after skipped session: %+v", st)
	}
	// The skipped id is reserved: a fresh session gets the next id up.
	if _, err := c.Upload(ctx, "doomed", pathInstance(t, 10, 7)); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.SessionID <= sess.SessionID {
		t.Fatalf("fresh session id %s does not advance past reserved %s", fresh.SessionID, sess.SessionID)
	}
}

// TestPersistenceDisabledByDefault: New and Open-without-DataDir build a
// purely in-memory server whose /statz reports persistence off.
func TestPersistenceDisabledByDefault(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	if st := srv.Stats(); st.Persistence {
		t.Fatalf("in-memory server reports persistence: %+v", st)
	}
	srv2, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st := srv2.Stats(); st.Persistence {
		t.Fatalf("Open without DataDir reports persistence: %+v", st)
	}
}
