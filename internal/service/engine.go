package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/facility"
	"netplace/internal/metric"
	"netplace/internal/netsim"
	"netplace/internal/solver"
	"netplace/internal/tree"
)

// SolveOptions is the wire form of a solve request: core.Options plus the
// algorithm selector, with every function-valued knob replaced by a name so
// requests are serialisable and canonically comparable for caching.
type SolveOptions struct {
	// Algo selects the algorithm: "approx" (default; the paper's Section 2
	// approximation), "tree" (exact Section 3 DP, tree networks only),
	// "optimal" (exact subset enumeration, ≤ 18 nodes), or a baseline:
	// "single", "full", "greedy", "fl-only".
	Algo string `json:"algo,omitempty"`
	// FL names the phase-1 facility location solver: "local-search",
	// "jain-vazirani", "mettu-plaxton", "greedy". Empty auto-selects by
	// instance size (see core.Options.FL).
	FL string `json:"fl,omitempty"`
	// Phase2Factor / Phase3Factor override the paper's 5·rs and 4·rw
	// thresholds; zero keeps the defaults.
	Phase2Factor float64 `json:"phase2_factor,omitempty"`
	Phase3Factor float64 `json:"phase3_factor,omitempty"`
	// SkipPhase2 / SkipPhase3 disable the augmentation and thinning phases.
	SkipPhase2 bool `json:"skip_phase2,omitempty"`
	SkipPhase3 bool `json:"skip_phase3,omitempty"`
	// Metric names the distance-oracle backend: "auto" (default), "dense",
	// "lazy", "tree". Overriding it rebuilds the instance's shared oracle,
	// so mixing different overrides in one what-if batch thrashes the
	// oracle; prefer "auto" for batches.
	Metric string `json:"metric,omitempty"`
	// MetricRows bounds the lazy backend's row cache (see
	// core.Options.MetricRows).
	MetricRows int `json:"metric_rows,omitempty"`
	// Parallel bounds the goroutines cooperating on a single object's
	// solve (see core.Options.Parallel): 0 falls back to the service's
	// configured default (Config.Parallel, itself 0 = size-aware auto:
	// serial below core.AutoParallelMinNodes nodes, GOMAXPROCS at or
	// above), 1 forces serial, negative selects GOMAXPROCS. Parallel
	// output is byte-identical to serial.
	Parallel int `json:"parallel,omitempty"`
}

// flSolvers maps wire names to facility location solvers.
var flSolvers = map[string]facility.Solver{
	"local-search":  facility.LocalSearch,
	"jain-vazirani": facility.JainVazirani,
	"mettu-plaxton": facility.MettuPlaxton,
	"greedy":        facility.Greedy,
}

// metricBackends maps wire names to oracle backends.
var metricBackends = map[string]core.MetricBackend{
	"":      core.MetricAuto,
	"auto":  core.MetricAuto,
	"dense": core.MetricDense,
	"lazy":  core.MetricLazy,
	"tree":  core.MetricTree,
}

// algos is the set of accepted Algo values ("" means "approx").
var algos = map[string]bool{
	"": true, "approx": true, "tree": true, "optimal": true,
	"single": true, "full": true, "greedy": true, "fl-only": true,
}

// normalize validates the options and resolves defaults so that two
// requests meaning the same solve normalise to identical values.
func (o SolveOptions) normalize() (SolveOptions, error) {
	if !algos[o.Algo] {
		return o, fmt.Errorf("service: unknown algo %q", o.Algo)
	}
	if o.Algo == "" {
		o.Algo = "approx"
	}
	if o.FL != "" {
		if _, ok := flSolvers[o.FL]; !ok {
			return o, fmt.Errorf("service: unknown facility location solver %q", o.FL)
		}
	}
	if _, ok := metricBackends[o.Metric]; !ok {
		return o, fmt.Errorf("service: unknown metric backend %q", o.Metric)
	}
	if o.Metric == "" {
		o.Metric = "auto"
	}
	if o.Phase2Factor < 0 || o.Phase3Factor < 0 {
		return o, fmt.Errorf("service: negative phase factor")
	}
	if o.Phase2Factor == 0 {
		o.Phase2Factor = 5
	}
	if o.Phase3Factor == 0 {
		o.Phase3Factor = 4
	}
	if o.MetricRows < 0 {
		return o, fmt.Errorf("service: negative metric_rows")
	}
	if o.Parallel < 0 {
		o.Parallel = -1 // canonical "all cores"
	}
	return o, nil
}

// key renders normalised options canonically; together with the instance
// hash it is the solve-cache key. Parallel is deliberately excluded:
// like the engine's worker split it is execution policy, not semantics —
// parallel output is byte-identical to serial (property-tested) — so
// solves differing only in parallelism share cache entries and collapse
// in flight.
func (o SolveOptions) key() string {
	var b strings.Builder
	b.WriteString("algo=")
	b.WriteString(o.Algo)
	b.WriteString("|fl=")
	b.WriteString(o.FL)
	b.WriteString("|p2=")
	b.WriteString(strconv.FormatFloat(o.Phase2Factor, 'g', -1, 64))
	b.WriteString("|p3=")
	b.WriteString(strconv.FormatFloat(o.Phase3Factor, 'g', -1, 64))
	b.WriteString("|s2=")
	b.WriteString(strconv.FormatBool(o.SkipPhase2))
	b.WriteString("|s3=")
	b.WriteString(strconv.FormatBool(o.SkipPhase3))
	b.WriteString("|metric=")
	b.WriteString(o.Metric)
	b.WriteString("|rows=")
	b.WriteString(strconv.Itoa(o.MetricRows))
	return b.String()
}

// validateFor rejects normalised options that are invalid or unsafe for a
// specific resident instance — checks that must run before the solver so a
// bad request can neither panic in a handler nor blow the memory budget
// the registry charged for the instance.
func (o SolveOptions) validateFor(in *core.Instance) error {
	n := in.N()
	if o.Metric == "tree" && !in.G.IsTree() {
		return fmt.Errorf("service: metric=tree on a non-tree network (%d nodes, %d edges)", n, in.G.M())
	}
	if o.Metric == "dense" && n > core.DenseMetricMaxNodes {
		return fmt.Errorf("service: metric=dense would materialise a %d² distance matrix on a resident instance; limited to %d nodes", n, core.DenseMetricMaxNodes)
	}
	if o.MetricRows > metric.DefaultLazyRows {
		// The registry budgeted the instance at the default row budget; a
		// request may shrink the cache but not grow it past the estimate.
		return fmt.Errorf("service: metric_rows %d exceeds the service cap of %d", o.MetricRows, metric.DefaultLazyRows)
	}
	if o.Algo == "optimal" && n > 18 {
		return fmt.Errorf("service: algo=optimal enumerates all copy sets; limited to 18 nodes (got %d)", n)
	}
	if o.Algo == "tree" && !in.G.IsTree() {
		return fmt.Errorf("service: algo=tree requires a tree network (%d nodes, %d edges)", n, in.G.M())
	}
	return nil
}

// coreOptions lowers normalised wire options to core.Options. workers is
// the solver's internal object-level parallelism; the engine divides
// GOMAXPROCS across its concurrent runs so the pool and the per-run
// fan-out do not multiply. parallel is the intra-solve worker count a
// single object's solve shards across (the request's own value wins over
// this engine default — see Engine.lowerOptions).
func (o SolveOptions) coreOptions(workers, parallel int) core.Options {
	if o.Parallel != 0 {
		parallel = o.Parallel
	}
	return core.Options{
		FL:           flSolvers[o.FL], // nil for "": auto-select
		Phase2Factor: o.Phase2Factor,
		Phase3Factor: o.Phase3Factor,
		SkipPhase2:   o.SkipPhase2,
		SkipPhase3:   o.SkipPhase3,
		Workers:      workers,
		Parallel:     parallel,
		Metric:       metricBackends[o.Metric],
		MetricRows:   o.MetricRows,
	}
}

// lowerOptions is coreOptions with the engine's configured intra-solve
// parallelism as the default for requests that leave parallel unset.
func (e *Engine) lowerOptions(o SolveOptions, workers int) core.Options {
	return o.coreOptions(workers, e.cfg.Parallel)
}

// BreakdownJSON is the wire form of a cost decomposition.
type BreakdownJSON struct {
	Storage float64 `json:"storage"`
	Read    float64 `json:"read"`
	Update  float64 `json:"update"`
	Total   float64 `json:"total"`
}

// breakdownJSON converts a core.Breakdown.
func breakdownJSON(b core.Breakdown) BreakdownJSON {
	return BreakdownJSON{Storage: b.Storage, Read: b.Read, Update: b.Update, Total: b.Total()}
}

// SolveResult is the wire form of a finished solve.
type SolveResult struct {
	// InstanceID and Options identify what was solved.
	InstanceID string       `json:"instance_id"`
	Options    SolveOptions `json:"options"`
	// Placement is the computed placement in wire form.
	Placement encode.PlacementJSON `json:"placement"`
	// Breakdown is the restricted-model (Section 2) cost of the placement.
	Breakdown BreakdownJSON `json:"breakdown"`
	// TreeCost is the Section 3 tree-model cost; present only for
	// algo=tree, whose optimality is stated in that model.
	TreeCost float64 `json:"tree_cost,omitempty"`
	// Copies is the total copy count across objects.
	Copies int `json:"copies"`
	// ElapsedMS is the solver's wall-clock run time (0 for cache hits).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Cached reports that the result came from the solve cache; Shared that
	// it was computed once for several concurrent identical requests.
	Cached bool `json:"cached"`
	Shared bool `json:"shared,omitempty"`
	// PeerCached reports that this replica answered from a cluster peer's
	// solve cache (Config.PeerCache) instead of running the solver; the
	// placement bytes are the peer's verbatim. See docs/cluster.md.
	PeerCached bool `json:"peer_cached,omitempty"`
	// Scenario echoes the label of the what-if scenario this result answers.
	Scenario string `json:"scenario,omitempty"`
	// Incremental reports that the scenario was served by the incremental
	// path: only ResolvedObjects objects were re-solved, the rest spliced
	// from the cached base solve.
	Incremental     bool `json:"incremental,omitempty"`
	ResolvedObjects int  `json:"resolved_objects,omitempty"`
	// Stale reports a degraded response: the solver was saturated and the
	// request opted in (X-Netplace-Allow-Stale), so this is the last
	// completed placement, StaleSeconds old (also in the
	// X-Netplace-Stale-Seconds response header).
	Stale        bool    `json:"stale,omitempty"`
	StaleSeconds float64 `json:"stale_seconds,omitempty"`
}

// Engine executes solves against registered instances with result caching,
// in-flight deduplication, and a bounded worker pool. Safe for concurrent
// use.
type Engine struct {
	cfg      Config
	registry *Registry
	cache    *resultCache
	bases    *resultCache // incremental what-if base records
	flight   flightGroup
	sem      chan struct{} // bounds concurrently executing solver runs
	counters *counters

	// stale holds the last completed solve per cache key for the degraded
	// read mode; solveEWMA smooths run wall-clock nanos for the
	// reject-on-arrival deadline check (see resilience.go).
	stale     *resultCache
	solveEWMA atomic.Int64

	// testHookSolveStart, when non-nil, runs at the top of every solver
	// execution; tests use it to hold a run in flight deterministically.
	testHookSolveStart func()

	// peerProbe, when non-nil, asks the cluster peers' solve caches for
	// (instance hash, normalized options) before running the solver. Set
	// by Server.setupPeers under Config.PeerCache; it runs inside the
	// singleflight leader so concurrent local duplicates share one probe
	// round (see docs/cluster.md).
	peerProbe func(ctx context.Context, hash string, opts SolveOptions) (*SolveResult, bool)
}

// NewEngine assembles an engine over a registry. counters may be shared
// with the enclosing server; it must be non-nil.
func NewEngine(cfg Config, reg *Registry, ct *counters) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:      cfg,
		registry: reg,
		cache:    newResultCache(cfg.CacheEntries),
		bases:    newResultCache(cfg.CacheEntries),
		stale:    newResultCache(cfg.CacheEntries),
		sem:      make(chan struct{}, cfg.Workers),
		counters: ct,
	}
}

// Registry returns the engine's instance registry.
func (e *Engine) Registry() *Registry { return e.registry }

// runWorkers is the object-level parallelism granted to one solver run:
// the machine's cores divided across the worker pool, at least 1 — so a
// single-slot pool still solves at full speed while a saturated pool does
// not oversubscribe the scheduler cfg.Workers × GOMAXPROCS-fold.
func (e *Engine) runWorkers() int {
	w := runtime.GOMAXPROCS(0) / e.cfg.Workers
	if w < 1 {
		w = 1
	}
	return w
}

// CacheLen returns the number of cached solve results.
func (e *Engine) CacheLen() int { return e.cache.Len() }

// Solve runs (or serves from cache) one solve of a registered instance.
// Identical concurrent requests collapse to a single solver execution; the
// context cancels waiting for a worker slot and, for algo=optimal, the
// enumeration itself. A request that was sharing a run whose leader got
// cancelled takes the solve over instead of inheriting the cancellation.
func (e *Engine) Solve(ctx context.Context, id string, opts SolveOptions) (SolveResult, error) {
	opts, err := opts.normalize()
	if err != nil {
		return SolveResult{}, err
	}
	in, info, ok := e.registry.Get(id)
	if !ok {
		return SolveResult{}, ErrNotFound
	}
	return e.solveOn(ctx, info.ID, info.Hash, in, opts)
}

// SolveSnapshot solves an instance that is NOT in the registry — the
// degraded failover path serving a read-only replica snapshot. It runs
// through the same cache and singleflight as Solve, keyed by the
// instance's content hash, so repeated failover reads of one instance
// cost a single solver run and a snapshot solve can even be answered
// from a result the replica cached while it still owned the key. opts
// must already be normalized by the caller's request decoding.
func (e *Engine) SolveSnapshot(ctx context.Context, id, hash string, in *core.Instance, opts SolveOptions) (SolveResult, error) {
	opts, err := opts.normalize()
	if err != nil {
		return SolveResult{}, err
	}
	return e.solveOn(ctx, id, hash, in, opts)
}

// solveOn is the shared solve kernel behind Solve and SolveSnapshot:
// validate the normalized options against the instance, then serve from
// the result cache or run under singleflight (probing peers' caches
// first when the peer cache is on).
func (e *Engine) solveOn(ctx context.Context, id, hash string, in *core.Instance, opts SolveOptions) (SolveResult, error) {
	if err := opts.validateFor(in); err != nil {
		return SolveResult{}, err
	}
	key := hash + "|" + opts.key()
	counted := false
	for {
		if res, ok := e.cache.Get(key); ok {
			e.counters.hits.Add(1)
			out := *res.(*SolveResult)
			out.Cached = true
			// The cached run may have used different execution policy
			// (parallel is not part of the key); echo this request's.
			out.Options = opts
			return out, nil
		}
		if !counted {
			e.counters.misses.Add(1)
			counted = true
		}
		val, err, shared := e.flight.Do(ctx, key, func() (any, error) {
			if e.peerProbe != nil {
				if res, ok := e.peerProbe(ctx, hash, opts); ok {
					// A peer already solved this: adopt its result verbatim
					// (bytes must match a local run — the conformance suite
					// pins that) and cache it here like our own.
					res.PeerCached = true
					e.cache.Put(key, res)
					e.keepStale(hash, res)
					return res, nil
				}
			}
			res, err := e.run(ctx, id, in, opts)
			if err != nil {
				return nil, err
			}
			e.cache.Put(key, res)
			e.keepStale(hash, res)
			return res, nil
		})
		if shared {
			e.counters.shared.Add(1)
		}
		if shared && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			// The leader's client disconnected, not ours: take over and
			// solve (or join whoever already did).
			continue
		}
		if err != nil {
			return SolveResult{}, err
		}
		out := *(val.(*SolveResult))
		out.Shared = shared
		out.Options = opts
		return out, nil
	}
}

// Batch solves len(variants) options variants of one instance across the
// engine's worker pool, collapsing duplicates through the same cache and
// singleflight as Solve. The i-th error slot is nil iff the i-th result is
// valid; the first context cancellation aborts remaining variants.
func (e *Engine) Batch(ctx context.Context, id string, variants []SolveOptions) ([]SolveResult, []error) {
	results := make([]SolveResult, len(variants))
	errs := make([]error, len(variants))
	done := make(chan int)
	for i := range variants {
		go func(i int) {
			defer func() { done <- i }()
			results[i], errs[i] = e.Solve(ctx, id, variants[i])
		}(i)
	}
	for range variants {
		<-done
	}
	return results, errs
}

// run executes one solver run under admission control, the worker-pool
// semaphore, and the configured timeout. It is only entered by the
// singleflight leader, so identical concurrent solves consume one
// admission slot and load shedding never rejects a solve that would
// have been deduplicated anyway.
func (e *Engine) run(ctx context.Context, id string, in *core.Instance, opts SolveOptions) (*SolveResult, error) {
	if err := e.checkDeadline(ctx); err != nil {
		e.counters.errors.Add(1)
		return nil, err
	}
	release, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if e.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.SolveTimeout)
		defer cancel()
	}
	e.counters.runs.Add(1)
	if e.testHookSolveStart != nil {
		e.testHookSolveStart()
	}

	start := time.Now()
	res := &SolveResult{InstanceID: id, Options: opts}
	p, treeCost, err := e.solveInstance(ctx, in, opts)
	if err != nil {
		e.counters.errors.Add(1)
		return nil, err
	}
	res.TreeCost = treeCost
	pj, err := encode.PlacementJSONOf(in, p)
	if err != nil {
		e.counters.errors.Add(1)
		return nil, err
	}
	res.Placement = pj
	res.Breakdown = breakdownJSON(in.Cost(p))
	for _, c := range p.Copies {
		res.Copies += len(c)
	}
	elapsed := time.Since(start)
	e.observeSolveTime(elapsed)
	res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	return res, nil
}

// solveInstance dispatches one solver run on an assembled instance — the
// shared kernel of the resident-instance path (run) and the what-if
// fallback path (scenarioFull). The float64 result is the Section 3 tree
// cost, non-zero only for algo=tree. It applies the metric override for
// every algorithm (validateFor has already vetted it): the baselines and
// the exact solvers read distances through in.Metric() just like approx
// does.
func (e *Engine) solveInstance(ctx context.Context, in *core.Instance, opts SolveOptions) (core.Placement, float64, error) {
	if b := metricBackends[opts.Metric]; b != core.MetricAuto {
		in.UseMetric(b, opts.MetricRows)
	}
	switch opts.Algo {
	case "tree":
		return solveTree(in)
	case "optimal":
		sols, err := solver.OptimalRestrictedCtx(ctx, in)
		if err != nil {
			return core.Placement{}, 0, err
		}
		p := core.Placement{Copies: make([][]int, len(sols))}
		for i, s := range sols {
			p.Copies[i] = s.Copies
		}
		return p, 0, nil
	case "single":
		return core.SingleBest(in), 0, nil
	case "full":
		return core.FullReplication(in), 0, nil
	case "greedy":
		return core.GreedyAdd(in), 0, nil
	case "fl-only":
		return core.FacilityOnly(in, flSolvers[opts.FL]), 0, nil
	default: // "approx"
		return core.Approximate(in, e.lowerOptions(opts, e.runWorkers())), 0, nil
	}
}

// solveTree runs the Section 3 DP and returns the placement plus its
// tree-model cost.
func solveTree(in *core.Instance) (core.Placement, float64, error) {
	if !in.G.IsTree() {
		return core.Placement{}, 0, fmt.Errorf("service: algo=tree requires a tree network (%d nodes, %d edges)", in.G.N(), in.G.M())
	}
	t := tree.Build(in.G, 0)
	p := core.Placement{Copies: make([][]int, len(in.Objects))}
	total := 0.0
	for i := range in.Objects {
		obj := &in.Objects[i]
		copies, cost := t.Solve(in.Storage, obj.Reads, obj.Writes)
		if len(copies) == 0 {
			return core.Placement{}, 0, fmt.Errorf("%w: tree DP failed on object %d", ErrInternal, i)
		}
		p.Copies[i] = copies
		total += obj.Scale() * cost
	}
	return p, total, nil
}

// Cost evaluates a client-supplied placement against a registered instance
// under the restricted (Section 2) model.
func (e *Engine) Cost(id string, pj encode.PlacementJSON) (BreakdownJSON, error) {
	in, _, ok := e.registry.Get(id)
	if !ok {
		return BreakdownJSON{}, ErrNotFound
	}
	return costOn(in, pj)
}

// costOn evaluates a placement against an assembled instance — shared by
// Cost and the degraded replica-snapshot path (cost of a placement is a
// pure function of the instance bytes, so a hash-verified snapshot gives
// the exact same answer the owner would).
func costOn(in *core.Instance, pj encode.PlacementJSON) (BreakdownJSON, error) {
	p, err := pj.Placement(in)
	if err != nil {
		return BreakdownJSON{}, err
	}
	return breakdownJSON(in.Cost(p)), nil
}

// SimulationResult is the wire form of a message-level replay.
type SimulationResult struct {
	Requests         int64   `json:"requests"`
	Messages         int64   `json:"messages"`
	TransmissionCost float64 `json:"transmission_cost"`
	StorageCost      float64 `json:"storage_cost"`
	Total            float64 `json:"total"`
	MaxEdgeBill      float64 `json:"max_edge_bill"`
	FinalTime        float64 `json:"final_time"`
}

// Simulate replays the instance's workload against a client-supplied
// placement hop by hop via internal/netsim and returns the metered bill.
func (e *Engine) Simulate(id string, pj encode.PlacementJSON) (SimulationResult, error) {
	in, _, ok := e.registry.Get(id)
	if !ok {
		return SimulationResult{}, ErrNotFound
	}
	p, err := pj.Placement(in)
	if err != nil {
		return SimulationResult{}, err
	}
	sim, err := netsim.New(in, p)
	if err != nil {
		return SimulationResult{}, err
	}
	st := sim.Run()
	e.counters.simulations.Add(1)
	return SimulationResult{
		Requests:         st.Requests,
		Messages:         st.Messages,
		TransmissionCost: st.TransmissionCost,
		StorageCost:      st.StorageCost,
		Total:            st.Total(),
		MaxEdgeBill:      st.MaxEdgeBill(),
		FinalTime:        st.FinalTime,
	}, nil
}
