package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestParseRetryAfter pins the Retry-After header grammar (RFC 9110):
// delay-seconds or an HTTP-date, with anything unparseable, zero,
// negative, or already in the past collapsing to "no server guidance".
func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-5", 0},
		{"soon", 0},
		{"3.5", 0},                           // RFC grammar is integral seconds
		{"Mon, 02 Jan 2006 15:04:05 GMT", 0}, // long past
	} {
		if got := parseRetryAfter(tc.header); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
	// A future HTTP-date yields the remaining wait: positive, bounded by
	// the nominal offset.
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 0 || d > 3*time.Second {
		t.Errorf("parseRetryAfter(%q) = %v, want within (0, 3s]", future, d)
	}
}

// TestClientRetryAfterHTTPDate: a 503 carrying an HTTP-date Retry-After
// steers the retry wait exactly like the delay-seconds form.
func TestClientRetryAfterHTTPDate(t *testing.T) {
	ctx := context.Background()
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /flaky", func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"draining"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var slept []time.Duration
	c := NewClient(ts.URL, ts.Client())
	c.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Sleep:       func(ctx context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	})
	if err := c.do(ctx, http.MethodGet, "/flaky", nil, nil); err != nil {
		t.Fatalf("flaky GET: %v", err)
	}
	// The single wait came from the HTTP-date (≈30s, shrunk only by
	// handler-to-parse latency), not from the 1ms backoff.
	if len(slept) != 1 || slept[0] <= 25*time.Second || slept[0] > 30*time.Second {
		t.Fatalf("slept %v, want one wait within (25s, 30s]", slept)
	}
}

// TestClientBackoffJitterBounds pins the jitter contract: every delay
// stays within ±Jitter·delay of the nominal exponential value, the
// seeded source actually spreads (not a constant offset), and a server
// Retry-After bypasses jitter entirely.
func TestClientBackoffJitterBounds(t *testing.T) {
	c := NewClient("http://unused", nil)
	c.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 9,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
		Jitter:      0.2,
		Seed:        1,
	})
	plain := fmt.Errorf("reset")
	nominal := map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		8: 400 * time.Millisecond, // capped
	}
	for attempt, base := range nominal {
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		distinct := make(map[time.Duration]bool)
		for i := 0; i < 200; i++ {
			d := c.backoff(attempt, plain)
			if d < lo || d > hi {
				t.Fatalf("backoff(%d) sample %v outside [%v, %v]", attempt, d, lo, hi)
			}
			distinct[d] = true
		}
		if len(distinct) < 2 {
			t.Errorf("backoff(%d) never varied across 200 samples", attempt)
		}
	}
	// Server guidance is authoritative: no jitter is applied on top.
	for i := 0; i < 20; i++ {
		if d := c.backoff(1, &APIError{Status: 429, RetryAfter: 5 * time.Second}); d != 5*time.Second {
			t.Fatalf("Retry-After delay jittered to %v", d)
		}
	}
}

// TestClientShedHeaderDecode: the shed marker crosses the wire — an
// APIError decoded from an X-Netplace-Shed 504 carries Shed=true and is
// therefore retryable even on non-idempotent calls, while the same 504
// without the header stays gated (a proxy may have minted it after the
// backend applied the request).
func TestClientShedHeaderDecode(t *testing.T) {
	ctx := context.Background()
	var shed atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /busy", func(w http.ResponseWriter, r *http.Request) {
		if shed.Load() {
			w.Header().Set(HeaderShed, "1")
		}
		writeJSON(w, http.StatusGatewayTimeout, errorJSON{Error: "overloaded"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client()) // no retry policy: one attempt

	for _, markShed := range []bool{true, false} {
		shed.Store(markShed)
		err := c.do(ctx, http.MethodGet, "/busy", nil, nil)
		ae, ok := err.(*APIError)
		if !ok {
			t.Fatalf("shed=%v: error not typed: %v", markShed, err)
		}
		if ae.Shed != markShed {
			t.Errorf("shed=%v: decoded Shed=%v", markShed, ae.Shed)
		}
		if !retryableError(ae, false) != !markShed {
			t.Errorf("shed=%v: non-idempotent retryability %v", markShed, retryableError(ae, false))
		}
	}
}
