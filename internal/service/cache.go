package service

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU map from solve-cache keys — "<instance
// hash>|<canonical options>" strings — to finished values (solve results,
// and the incremental path's base records). Safe for concurrent use. A
// non-positive capacity disables caching entirely.
type resultCache struct {
	cap int

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

// cacheItem is one cached value with its key (needed again at eviction).
type cacheItem struct {
	key string
	val any
}

// newResultCache returns a cache bounded to capacity entries.
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

// Get returns the cached value for key and refreshes its recency.
func (c *resultCache) Get(key string) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// Put stores a value under key, evicting the least-recently-used entry
// beyond capacity.
func (c *resultCache) Put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, val: val})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		delete(c.entries, back.Value.(*cacheItem).key)
		c.order.Remove(back)
	}
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
