package service

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU map from solve-cache keys — "<instance
// hash>|<canonical options>" strings — to finished solve results. Safe for
// concurrent use. A non-positive capacity disables caching entirely.
type resultCache struct {
	cap int

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

// cacheItem is one cached result with its key (needed again at eviction).
type cacheItem struct {
	key string
	val *SolveResult
}

// newResultCache returns a cache bounded to capacity entries.
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

// Get returns the cached result for key and refreshes its recency.
func (c *resultCache) Get(key string) (*SolveResult, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// Put stores a result under key, evicting the least-recently-used entry
// beyond capacity.
func (c *resultCache) Put(key string, val *SolveResult) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, val: val})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		delete(c.entries, back.Value.(*cacheItem).key)
		c.order.Remove(back)
	}
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
