package service

import (
	"context"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"netplace/internal/core"
	"netplace/internal/encode"
)

// This file is the degraded-read half of the cluster fault-tolerance
// layer (see docs/cluster.md "Failure modes & membership"): every
// accepted upload is pushed as a read-only snapshot to the replica's
// ring successor, and instance-keyed reads (solve with Allow-Stale,
// cost, info) of keys whose owner is down are answered from that
// snapshot — marked stale — instead of failing. The snapshot is
// re-verified against its content hash on arrival, so a failover answer
// is computed from byte-identical instance data.

// InstanceExport is an instance's full portable content: the export
// response of GET /instances/{id}/export and the push body of
// PUT /v1/replica/instances/{id}.
type InstanceExport struct {
	// Name is the registry label, if any.
	Name string `json:"name,omitempty"`
	// Instance is the problem in the shared wire format.
	Instance encode.InstanceJSON `json:"instance"`
}

// ReplicaInstanceInfo describes one read-only snapshot in the replica
// store (GET /v1/replica/instances).
type ReplicaInstanceInfo struct {
	// ID is the registry id the snapshot answers for.
	ID string `json:"id"`
	// Name is the owner's registry label, if any.
	Name string `json:"name,omitempty"`
	// AgeSeconds is how long ago the snapshot was (re-)pushed.
	AgeSeconds float64 `json:"age_seconds"`
}

// ClusterDrainRequest is the body of POST /v1/cluster/drain. Peer empty
// (or equal to the serving replica's own URL) drains the serving
// replica itself; otherwise the serving replica removes Peer from its
// ring view and peer set.
type ClusterDrainRequest struct {
	Peer string `json:"peer,omitempty"`
}

// ClusterDrainResponse reports a drain call's outcome: Status is
// "draining" (self-drain: sessions flushed to durable storage, /readyz
// failing) or "removed" (membership update applied — idempotently, even
// if the peer was already gone).
type ClusterDrainResponse struct {
	Status string `json:"status"`
	// Peer echoes the drained/removed replica URL ("" for self).
	Peer string `json:"peer,omitempty"`
	// SessionsDrained counts the open sessions flushed by a self-drain.
	SessionsDrained int `json:"sessions_drained"`
}

// replicaEntry is one read-only instance snapshot held for another
// replica's key.
type replicaEntry struct {
	in   *core.Instance
	hash string // full content hash; SolveSnapshot's cache key
	name string
	at   time.Time
}

// replicaStore holds the read-only instance snapshots pushed by the
// predecessor replica. Deliberately simple: snapshots are small relative
// to resident instances (no oracle state until a failover solve runs)
// and the set mirrors the predecessor's registry, which is already
// budget-bounded.
type replicaStore struct {
	mu      sync.Mutex
	entries map[string]*replicaEntry
}

// get returns the snapshot for id, if held.
func (rs *replicaStore) get(id string) (*replicaEntry, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	e, ok := rs.entries[id]
	return e, ok
}

// put stores (or refreshes) a snapshot.
func (rs *replicaStore) put(id string, e *replicaEntry) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.entries[id] = e
}

// drop removes a snapshot, reporting whether it was held.
func (rs *replicaStore) drop(id string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	_, ok := rs.entries[id]
	delete(rs.entries, id)
	return ok
}

// len is the /statz replica_instances gauge.
func (rs *replicaStore) len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.entries)
}

// list snapshots the store for GET /v1/replica/instances.
func (rs *replicaStore) list() []ReplicaInstanceInfo {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	now := time.Now()
	out := make([]ReplicaInstanceInfo, 0, len(rs.entries))
	for id, e := range rs.entries {
		out = append(out, ReplicaInstanceInfo{ID: id, Name: e.name, AgeSeconds: now.Sub(e.at).Seconds()})
	}
	return out
}

// handleReplicaPush is PUT /v1/replica/instances/{id}: accept a
// read-only instance snapshot from the predecessor. The id is
// re-verified against the decoded instance's content hash — a corrupted
// or misrouted push is rejected, so every failover answer is computed
// from exactly the bytes the owner registered.
func (s *Server) handleReplicaPush(w http.ResponseWriter, r *http.Request) {
	var req InstanceExport
	if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	in, err := req.Instance.Instance()
	if err != nil {
		writeError(w, err)
		return
	}
	id := r.PathValue("id")
	hash := encode.HashInstance(in)
	if hash[:idLen] != id {
		writeJSON(w, http.StatusBadRequest, errorJSON{
			Error: "service: replica push content hash " + hash[:idLen] + " does not match id " + id})
		return
	}
	s.replicas.put(id, &replicaEntry{in: in, hash: hash, name: req.Name, at: time.Now()})
	writeJSON(w, http.StatusOK, ReplicaInstanceInfo{ID: id, Name: req.Name})
}

// handleReplicaDelete is DELETE /v1/replica/instances/{id}: drop a
// snapshot. Idempotent — deleting an absent snapshot still answers 204,
// so the owner's delete propagation can be retried blindly.
func (s *Server) handleReplicaDelete(w http.ResponseWriter, r *http.Request) {
	s.replicas.drop(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaList is GET /v1/replica/instances.
func (s *Server) handleReplicaList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.replicas.list())
}

// handleExport is GET /instances/{id}/export: the instance's full
// content for re-registration elsewhere — the drain tool's migration
// read. Falls back to the replica store so a drained owner's instances
// can still be exported from their snapshot holder.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if in, info, ok := s.engine.registry.Get(id); ok {
		writeJSON(w, http.StatusOK, InstanceExport{Name: info.Name, Instance: encode.InstanceJSONOf(in)})
		return
	}
	if e, ok := s.replicas.get(id); ok {
		writeJSON(w, http.StatusOK, InstanceExport{Name: e.name, Instance: encode.InstanceJSONOf(e.in)})
		return
	}
	writeError(w, ErrNotFound)
}

// pushToSuccessor replicates an accepted upload to the configured
// successor, best-effort and bounded by PeerTimeout: replication must
// never fail or slow an upload past the timeout, it only widens the
// window a failover read can cover. Failures are counted and logged;
// the next re-upload (or the successor's recovery) heals the gap.
func (s *Server) pushToSuccessor(id, name string, in *core.Instance) {
	if s.successor == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	err := s.successor.PushReplica(ctx, id, InstanceExport{Name: name, Instance: encode.InstanceJSONOf(in)})
	if err != nil {
		s.counters.replicaPushErrors.Add(1)
		log.Printf("netplaced: replica push %s to %s failed: %v", id, s.successorURL, err)
		return
	}
	s.counters.replicaPushes.Add(1)
}

// dropFromSuccessor propagates an instance delete to the successor's
// snapshot store, best-effort like the push.
func (s *Server) dropFromSuccessor(id string) {
	if s.successor == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	if err := s.successor.DeleteReplica(ctx, id); err != nil {
		s.counters.replicaPushErrors.Add(1)
		log.Printf("netplaced: replica delete %s at %s failed: %v", id, s.successorURL, err)
	}
}

// replicaFallbackAllowed gates degraded serving from the snapshot
// store: the request must carry the Allow-Stale opt-in — without it a
// non-owner keeps answering 404 for keys it merely replicates, which
// the hop-guard semantics (and tests) rely on.
func replicaFallbackAllowed(r *http.Request) bool {
	return r.Header.Get(HeaderAllowStale) != ""
}

// replicaSolve answers a solve for an instance this replica only holds
// as a snapshot: SolveSnapshot shares the engine's cache and
// singleflight keyed by the content hash, and the result is marked
// Stale with the snapshot's age. The false return means no snapshot.
func (s *Server) replicaSolve(w http.ResponseWriter, r *http.Request, id string, opts SolveOptions) bool {
	e, ok := s.replicas.get(id)
	if !ok {
		return false
	}
	res, err := s.engine.SolveSnapshot(r.Context(), id, e.hash, e.in, opts)
	if err != nil {
		writeError(w, err)
		return true
	}
	s.counters.failoverReads.Add(1)
	res.Stale = true
	res.StaleSeconds = time.Since(e.at).Seconds()
	w.Header().Set(HeaderStale, strconv.FormatFloat(res.StaleSeconds, 'f', 3, 64))
	writeJSON(w, http.StatusOK, res)
	return true
}

// replicaCost answers a cost evaluation from the snapshot store; cost
// is a pure function of the (hash-verified) instance bytes, so the
// answer equals the owner's. Marked stale anyway for honesty about the
// serving path.
func (s *Server) replicaCost(w http.ResponseWriter, r *http.Request, id string, pj encode.PlacementJSON) bool {
	e, ok := s.replicas.get(id)
	if !ok {
		return false
	}
	b, err := costOn(e.in, pj)
	if err != nil {
		writeError(w, err)
		return true
	}
	s.counters.failoverReads.Add(1)
	w.Header().Set(HeaderStale, strconv.FormatFloat(time.Since(e.at).Seconds(), 'f', 3, 64))
	writeJSON(w, http.StatusOK, b)
	return true
}

// replicaInfo answers an instance info read from the snapshot store
// with a synthesized record (the owner's LRU timestamps are not
// replicated; CreatedAt carries the snapshot push time).
func (s *Server) replicaInfo(w http.ResponseWriter, r *http.Request, id string) bool {
	e, ok := s.replicas.get(id)
	if !ok {
		return false
	}
	s.counters.failoverReads.Add(1)
	w.Header().Set(HeaderStale, strconv.FormatFloat(time.Since(e.at).Seconds(), 'f', 3, 64))
	writeJSON(w, http.StatusOK, InstanceInfo{
		ID: id, Hash: e.hash, Name: e.name,
		Nodes: e.in.G.N(), Edges: e.in.G.M(), Objects: len(e.in.Objects),
		MemBytes:  estimateBytes(e.in),
		CreatedAt: e.at, LastUsed: e.at,
	})
	return true
}

// handleClusterDrain is POST /v1/cluster/drain — the administrative
// membership change behind netplaced -drain-peer. Self form (peer empty
// or this replica's URL): flush every open session to durable storage
// (final snapshot + WAL rotation, PR 7's Drain) and start failing
// /readyz so load balancers stop routing here. Peer form: drop the
// named replica from this replica's peer set and breaker tracker; the
// forwarding proxy intercepts the same call to shrink its ring view
// with the ring's minimal-movement guarantee.
func (s *Server) handleClusterDrain(w http.ResponseWriter, r *http.Request) {
	var req ClusterDrainRequest
	if r.ContentLength != 0 {
		if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
			writeError(w, err)
			return
		}
	}
	if req.Peer != "" && req.Peer != s.cfg.SelfURL {
		s.removePeer(req.Peer)
		writeJSON(w, http.StatusOK, ClusterDrainResponse{Status: "removed", Peer: req.Peer})
		return
	}
	n := s.sessions.len()
	if err := s.Drain(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ClusterDrainResponse{Status: "draining", Peer: req.Peer, SessionsDrained: n})
}
