package service

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// ingestSeq streams evs in fixed-size batches under sequence numbers
// startSeq, startSeq+1, ... and returns the last sequence used.
func ingestSeq(t *testing.T, c *Client, sid string, evs []SessionEvent, batch int, startSeq int64) int64 {
	t.Helper()
	ctx := context.Background()
	seq := startSeq - 1
	for start := 0; start < len(evs); start += batch {
		end := min(start+batch, len(evs))
		seq++
		resp, err := c.SessionEventsSeq(ctx, sid, seq, evs[start:end])
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if resp.Deduplicated || resp.Accepted != end-start || resp.Seq != seq {
			t.Fatalf("seq %d: %+v", seq, resp)
		}
	}
	return seq
}

// TestGroupCommitFsyncLossWindow: with a group-commit interval, an OS
// crash (page cache lost) may drop acked batches newer than the last
// fsync — and nothing else. Recovery lands exactly on the last synced
// commit boundary, reports the durable sequence watermark, and the
// client's retries of the lost window apply exactly once. With the
// default interval (0 = fsync every append) the same crash loses
// nothing.
func TestGroupCommitFsyncLossWindow(t *testing.T) {
	ctx := context.Background()
	in := crashInstance(t)
	trace := driftTrace(24, 24)

	h := NewCrashHarness(t.TempDir(), Config{FsyncInterval: time.Hour})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "gc", in)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 64})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID

	// Batch 1 lands inside the hour-long interval: flushed, not fsynced.
	ingestSeq(t, c, sid, trace[0:8], 8, 1)
	// Age the sync clock so batch 2's append takes the interval-elapsed
	// branch and fsyncs everything written so far.
	live, _ := srv.sessions.get(sid)
	live.mu.Lock()
	live.log.lastSync = time.Time{}
	live.mu.Unlock()
	ingestSeq(t, c, sid, trace[8:16], 8, 2)
	// Batch 3 is acked but unsynced again.
	ingestSeq(t, c, sid, trace[16:24], 8, 3)
	live.mu.Lock()
	synced, size := live.log.synced, live.log.size
	live.mu.Unlock()
	if synced == 0 || synced >= size {
		t.Fatalf("sync watermark %d of %d, want a strict mid-file boundary", synced, size)
	}

	if err := h.KillOSCrash(); err != nil {
		t.Fatal(err)
	}
	srv2, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c2 := serveExisting(t, srv2)
	st := srv2.Stats()
	// The crash cost exactly the unsynced suffix: batch 3. The file was
	// cut at a commit boundary, so nothing reads as torn.
	if st.RecoveredSessions != 1 || st.SessionEvents != 16 || st.WALDiscardedBytes != 0 {
		t.Fatalf("recovered=%d events=%d discarded=%d, want 1/16/0", st.RecoveredSessions, st.SessionEvents, st.WALDiscardedBytes)
	}
	info, err := c2.Session(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != 2 {
		t.Fatalf("durable watermark %d, want 2", info.LastSeq)
	}
	// The client retries its unacknowledged window: the covered batch
	// dedupes, the lost one applies — exactly once each.
	r2, err := c2.SessionEventsSeq(ctx, sid, 2, trace[8:16])
	if err != nil || !r2.Deduplicated || r2.Accepted != 0 {
		t.Fatalf("retry of durable seq 2: %+v, %v", r2, err)
	}
	r3, err := c2.SessionEventsSeq(ctx, sid, 3, trace[16:24])
	if err != nil || r3.Deduplicated || r3.Accepted != 8 {
		t.Fatalf("retry of lost seq 3: %+v, %v", r3, err)
	}
	if ev := srv2.Stats().SessionEvents; ev != 24 {
		t.Fatalf("events after retries: %d, want 24", ev)
	}
	h.Kill()

	// Contrast: the default fsync-every-append loses nothing acked.
	h0 := NewCrashHarness(t.TempDir(), Config{})
	srv0, err := h0.Start()
	if err != nil {
		t.Fatal(err)
	}
	c0 := serveExisting(t, srv0)
	up0, _ := c0.Upload(ctx, "gc0", in)
	sess0, err := c0.OpenSession(ctx, up0.ID, SessionConfig{Epoch: 64})
	if err != nil {
		t.Fatal(err)
	}
	ingestSeq(t, c0, sess0.SessionID, trace, 8, 1)
	if err := h0.KillOSCrash(); err != nil {
		t.Fatal(err)
	}
	srv0b, err := h0.Start()
	if err != nil {
		t.Fatal(err)
	}
	c0b := serveExisting(t, srv0b)
	if st := srv0b.Stats(); st.SessionEvents != 24 || st.WALDiscardedBytes != 0 {
		t.Fatalf("fsync-every-append lost data: events=%d discarded=%d", st.SessionEvents, st.WALDiscardedBytes)
	}
	r, err := c0b.SessionEventsSeq(ctx, sess0.SessionID, 3, trace[16:24])
	if err != nil || !r.Deduplicated {
		t.Fatalf("retry after lossless crash: %+v, %v", r, err)
	}
	h0.Kill()
}

// TestDrainFlushesDurability: a graceful shutdown (Drain after traffic
// quiesces) snapshots every live session, so the next start recovers
// with an empty WAL — wal_discarded_bytes == 0, zero replay — and a
// byte-identical session, durable sequence watermark included.
func TestDrainFlushesDurability(t *testing.T) {
	ctx := context.Background()
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "drain", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 64})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	lastSeq := ingestSeq(t, c, sid, driftTrace(24, 24), 8, 1)
	if _, size, err := h.WALFile(sid); err != nil || size == 0 {
		t.Fatalf("live WAL before drain: size=%d err=%v", size, err)
	}
	want := sessionFingerprint(t, srv, c, sid)

	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if !srv.Stats().Draining {
		t.Fatal("Drain did not mark the server draining")
	}
	// The final snapshot emptied the live WAL generation.
	if _, size, err := h.WALFile(sid); err != nil || size != 0 {
		t.Fatalf("live WAL after drain: size=%d err=%v", size, err)
	}
	h.Kill()

	srv2, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c2 := serveExisting(t, srv2)
	st := srv2.Stats()
	if st.RecoveredSessions != 1 || st.WALDiscardedBytes != 0 || st.SessionEvents != 24 {
		t.Fatalf("recovery after drain: recovered=%d discarded=%d events=%d", st.RecoveredSessions, st.WALDiscardedBytes, st.SessionEvents)
	}
	got := sessionFingerprint(t, srv2, c2, sid)
	if !bytes.Equal(got, want) {
		t.Errorf("drained-then-recovered session diverges\n got %s\nwant %s", got, want)
	}
	// The watermark rode the snapshot: a stale retry still dedupes.
	r, err := c2.SessionEventsSeq(ctx, sid, lastSeq, nil)
	if err == nil && !r.Deduplicated {
		t.Fatalf("retry of drained seq %d applied: %+v", lastSeq, r)
	}
	h.Kill()
}

// TestIdempotentRetryAcrossCrash: the sequence watermark lives in the
// WAL's commit markers, so even a crash-and-replay recovery (no
// snapshot since open) still recognizes a retried batch.
func TestIdempotentRetryAcrossCrash(t *testing.T) {
	ctx := context.Background()
	trace := driftTrace(24, 32)
	h := NewCrashHarness(t.TempDir(), Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "idem", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 64})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	ingestSeq(t, c, sid, trace[0:24], 8, 1)
	if info, err := c.Session(ctx, sid); err != nil || info.LastSeq != 3 {
		t.Fatalf("live watermark: %+v, %v", info, err)
	}
	h.Kill()

	srv2, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c2 := serveExisting(t, srv2)
	// Replay recovered all three batches and their watermark.
	if st := srv2.Stats(); st.SessionEvents != 24 {
		t.Fatalf("recovered events=%d, want 24", st.SessionEvents)
	}
	r3, err := c2.SessionEventsSeq(ctx, sid, 3, trace[16:24])
	if err != nil || !r3.Deduplicated || r3.Accepted != 0 || r3.Seq != 3 {
		t.Fatalf("retry of recovered seq 3: %+v, %v", r3, err)
	}
	if st := srv2.Stats(); st.DedupedBatches != 1 {
		t.Fatalf("dedupedBatches=%d, want 1", st.DedupedBatches)
	}
	// The stream then advances normally.
	r4, err := c2.SessionEventsSeq(ctx, sid, 4, trace[24:32])
	if err != nil || r4.Deduplicated || r4.Accepted != 8 || r4.Seq != 4 {
		t.Fatalf("next batch after recovery: %+v, %v", r4, err)
	}
	if st := srv2.Stats(); st.SessionEvents != 32 {
		t.Fatalf("events=%d, want 32", st.SessionEvents)
	}
	h.Kill()
}

// TestLegacyWALRecoveryCompat: a data directory written by the
// line-atomic v1 WAL format (no commit markers, no wal_ver in the
// snapshot) still recovers — the decoder is chosen per snapshot
// version, and an un-versioned snapshot selects the legacy path.
// Recovery must also upgrade the layout on the spot (rotate to a fresh
// generation with wal_ver=2) before accepting appends: commit-marker
// batches appended into a still-v1 layout would read as a torn tail on
// the next crash and silently truncate acknowledged data.
func TestLegacyWALRecoveryCompat(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	h := NewCrashHarness(dir, Config{})
	srv, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := serveExisting(t, srv)
	up, err := c.Upload(ctx, "legacy", crashInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.OpenSession(ctx, up.ID, SessionConfig{Epoch: 64})
	if err != nil {
		t.Fatal(err)
	}
	sid := sess.SessionID
	ingestSeq(t, c, sid, driftTrace(24, 16), 8, 1)
	h.Kill()

	// Rewrite the session's files as a v1 server would have left them:
	// strip the commit markers from the WAL and the version/watermark
	// fields from the snapshot.
	walPath, _, err := h.WALFile(sid)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	var v1 []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, `{"seq"`) {
			continue
		}
		v1 = append(v1, line)
	}
	if err := os.WriteFile(walPath, []byte(strings.Join(v1, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "sessions", sid+".snap.json")
	snapRaw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(snapRaw, &snap); err != nil {
		t.Fatal(err)
	}
	delete(snap, "wal_ver")
	delete(snap, "last_seq")
	downgraded, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, downgraded, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c2 := serveExisting(t, srv2)
	st := srv2.Stats()
	if st.RecoveredSessions != 1 || st.SessionEvents != 16 || st.WALDiscardedBytes != 0 {
		t.Fatalf("legacy recovery: recovered=%d events=%d discarded=%d", st.RecoveredSessions, st.SessionEvents, st.WALDiscardedBytes)
	}
	// No watermark in a v1 layout: sequencing restarts from scratch.
	if info, err := c2.Session(ctx, sid); err != nil || info.LastSeq != 0 {
		t.Fatalf("legacy watermark: %+v, %v", info, err)
	}
	// Recovery upgraded the layout in place: the snapshot now names the
	// v2 format, so future appends and recoveries agree on the decoder.
	upSnap, err := srv2.store.readSessionSnap(sid)
	if err != nil || upSnap.WALVer != walFormatVersion {
		t.Fatalf("snapshot after legacy recovery: wal_ver=%d err=%v, want %d", upSnap.WALVer, err, walFormatVersion)
	}
	// Append two sequenced (v2 commit-marker) batches, then crash before
	// any rotation. Without the upgrade rotate, the next recovery would
	// decode line-granularly, read batch 1's marker as a torn tail, and
	// truncate batch 2 away despite both having been acknowledged.
	tail := driftTrace(24, 16)
	ingestSeq(t, c2, sid, tail, 8, 1)
	h.Kill()

	srv3, err := h.Start()
	if err != nil {
		t.Fatal(err)
	}
	c3 := serveExisting(t, srv3)
	if st := srv3.Stats(); st.RecoveredSessions != 1 || st.SessionEvents != 32 || st.WALDiscardedBytes != 0 {
		t.Fatalf("recovery after upgrade: recovered=%d events=%d discarded=%d, want 1/32/0", st.RecoveredSessions, st.SessionEvents, st.WALDiscardedBytes)
	}
	if info, err := c3.Session(ctx, sid); err != nil || info.LastSeq != 2 {
		t.Fatalf("watermark after upgrade crash: %+v, %v", info, err)
	}
	// The acknowledged batches survived: a retry of either dedupes.
	if r, err := c3.SessionEventsSeq(ctx, sid, 2, tail[8:16]); err != nil || !r.Deduplicated || r.Accepted != 0 {
		t.Fatalf("retry of upgraded seq 2: %+v, %v", r, err)
	}
	h.Kill()
}
