package service

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// FaultKind names one class of injected network fault.
type FaultKind int

const (
	// FaultReset fails the request before it reaches the server — a
	// connection reset on dial. The server never sees the batch, so a
	// correct client retry cannot double-apply.
	FaultReset FaultKind = iota
	// FaultTruncate forwards the request, lets the server apply it,
	// then discards the response — the torn-response case. Only a
	// sequenced retry (SessionEventsSeq) survives this without
	// duplicating the batch.
	FaultTruncate
	// FaultLatency delays the request before forwarding it intact.
	FaultLatency
	// FaultBlackhole swallows the request without forwarding it and
	// fails after a delay, as if packets vanished en route.
	FaultBlackhole
	numFaultKinds
)

// String names the kind for logs and counters.
func (k FaultKind) String() string {
	switch k {
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultLatency:
		return "latency"
	case FaultBlackhole:
		return "blackhole"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// faultError is the transport-level error an injected fault surfaces.
// It is deliberately NOT an *APIError: clients must classify it as a
// transport fault and apply idempotency rules.
type faultError struct {
	kind FaultKind
}

func (e *faultError) Error() string { return "faultinject: injected " + e.kind.String() }

// IsInjectedFault reports whether err (or anything it wraps, e.g. a
// *url.Error from http.Client) came from a FaultTransport.
func IsInjectedFault(err error) bool {
	for err != nil {
		if _, ok := err.(*faultError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// FaultConfig sets the per-request probability of each fault kind and
// the delay used by latency/blackhole faults. Probabilities are
// evaluated in order reset, truncate, latency, blackhole; at most one
// fault fires per request.
type FaultConfig struct {
	ResetProb     float64
	TruncateProb  float64
	LatencyProb   float64
	BlackholeProb float64
	// Delay is how long latency faults stall and blackhole faults hang
	// before failing. Defaults to 1ms — enough to reorder goroutines
	// without slowing tests.
	Delay time.Duration
}

// FaultTransport is an http.RoundTripper that injects seeded,
// reproducible network faults in front of an inner transport. Disarmed
// it forwards transparently, so a harness can open sessions cleanly and
// then arm chaos for the ingest phase. Safe for concurrent use.
type FaultTransport struct {
	inner http.RoundTripper

	mu     sync.Mutex
	cfg    FaultConfig
	rng    *rand.Rand
	armed  bool
	counts [numFaultKinds]int64
}

// NewFaultTransport wraps inner (nil for http.DefaultTransport) with a
// fault injector drawing from a deterministic source seeded with seed.
// The transport starts disarmed.
func NewFaultTransport(inner http.RoundTripper, seed int64, cfg FaultConfig) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if cfg.Delay <= 0 {
		cfg.Delay = time.Millisecond
	}
	return &FaultTransport{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Arm enables fault injection.
func (t *FaultTransport) Arm() {
	t.mu.Lock()
	t.armed = true
	t.mu.Unlock()
}

// Disarm stops injecting; in-flight latency faults still complete.
func (t *FaultTransport) Disarm() {
	t.mu.Lock()
	t.armed = false
	t.mu.Unlock()
}

// Counts returns how many faults of each kind have been injected.
func (t *FaultTransport) Counts() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, numFaultKinds)
	for k := FaultKind(0); k < numFaultKinds; k++ {
		out[k.String()] = t.counts[k]
	}
	return out
}

// Total returns the total number of injected faults.
func (t *FaultTransport) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, c := range t.counts {
		n += c
	}
	return n
}

// draw picks at most one fault for this request, under the lock so the
// seeded sequence is stable for a given schedule of requests.
func (t *FaultTransport) draw() (FaultKind, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.armed {
		return 0, false
	}
	r := t.rng.Float64()
	probs := [numFaultKinds]float64{t.cfg.ResetProb, t.cfg.TruncateProb, t.cfg.LatencyProb, t.cfg.BlackholeProb}
	acc := 0.0
	for k := FaultKind(0); k < numFaultKinds; k++ {
		acc += probs[k]
		if r < acc {
			t.counts[k]++
			return k, true
		}
	}
	return 0, false
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, ok := t.draw()
	if !ok {
		return t.inner.RoundTrip(req)
	}
	switch kind {
	case FaultReset:
		// Fail before the server sees anything. RoundTrippers own the
		// body even on error.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &faultError{kind: FaultReset}
	case FaultLatency:
		if err := faultSleep(req.Context(), t.cfg.Delay); err != nil {
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, err
		}
		return t.inner.RoundTrip(req)
	case FaultBlackhole:
		if req.Body != nil {
			req.Body.Close()
		}
		if err := faultSleep(req.Context(), t.cfg.Delay); err != nil {
			return nil, err
		}
		return nil, &faultError{kind: FaultBlackhole}
	case FaultTruncate:
		// Deliver the request — the server applies it — then lose the
		// response on the way back.
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &faultError{kind: FaultTruncate}
	}
	return t.inner.RoundTrip(req)
}

// faultSleep waits d or until the request's context is done.
func faultSleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
