package service

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/graph"
)

// whatifInstance builds a seeded instance with small integer weights and
// fees, so costs are exact in float64 and the incremental path can be
// asserted byte-identical to full re-solves.
func whatifInstance(seed int64, n, objects int) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	w := func(u, v int) float64 { return float64(1 + rng.Intn(9)) }
	var g *graph.Graph
	g = gen.RandomTree(n, rng, w)
	for e := 0; e < n/2; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, w(u, v))
		}
	}
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = float64(1 + rng.Intn(25))
	}
	objs := make([]core.Object, objects)
	for i := range objs {
		objs[i] = core.Object{
			Name:   fmt.Sprintf("obj-%d", i),
			Size:   float64(1 + rng.Intn(3)),
			Reads:  make([]int64, n),
			Writes: make([]int64, n),
		}
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.8 {
				objs[i].Reads[v] = rng.Int63n(8)
			}
			if rng.Float64() < 0.4 {
				objs[i].Writes[v] = rng.Int63n(4)
			}
		}
	}
	return core.MustInstance(g, storage, objs)
}

// randomScenario patches a random subset of objects — fresh demand
// vectors, size changes, deliberate no-op patches — and occasionally the
// storage vector, covering incremental, splice-only, and fallback paths.
func randomScenario(rng *rand.Rand, in *core.Instance) Scenario {
	n := in.N()
	var sc Scenario
	for i := range in.Objects {
		if rng.Float64() > 0.5 {
			continue
		}
		p := ObjectPatch{Name: in.Objects[i].Name}
		switch rng.Intn(4) {
		case 0: // new read vector
			reads := make([]int64, n)
			for v := range reads {
				reads[v] = rng.Int63n(9)
			}
			p.Reads = reads
		case 1: // new write vector
			writes := make([]int64, n)
			for v := range writes {
				if rng.Float64() < 0.3 {
					writes[v] = rng.Int63n(5)
				}
			}
			p.Writes = writes
		case 2: // size-only change: must splice without re-solving
			s := float64(1 + rng.Intn(7))
			p.Size = &s
		case 3: // no-op patch: identical vector must not count as changed
			p.Reads = append([]int64(nil), in.Objects[i].Reads...)
		}
		sc.Objects = append(sc.Objects, p)
	}
	if rng.Float64() < 0.15 { // structural change: full-solve fallback
		storage := make([]float64, n)
		for v := range storage {
			storage[v] = float64(1 + rng.Intn(25))
		}
		sc.Storage = storage
	}
	return sc
}

// registerFor uploads a fresh copy of the seeded instance into a server
// and returns its id.
func registerFor(t *testing.T, srv *Server, seed int64, n, objects int) string {
	t.Helper()
	info, _ := srv.Engine().Registry().Add("", whatifInstance(seed, n, objects))
	return info.ID
}

// TestScenarioIncrementalEquivalence is the incremental path's contract:
// every scenario must produce a placement and cost byte-identical to a
// full from-scratch solve of the patched instance.
func TestScenarioIncrementalEquivalence(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 5; seed++ {
		const n, objects = 24, 4
		incr := New(Config{Workers: 2})
		full := New(Config{Workers: 2, DisableIncremental: true})
		idI := registerFor(t, incr, seed, n, objects)
		idF := registerFor(t, full, seed, n, objects)
		rng := rand.New(rand.NewSource(seed + 100))
		base := whatifInstance(seed, n, objects)
		for k := 0; k < 6; k++ {
			sc := randomScenario(rng, base)
			sc.Label = fmt.Sprintf("s%d", k)
			got, err := incr.Engine().Scenario(ctx, idI, SolveOptions{}, sc)
			if err != nil {
				t.Fatalf("seed %d scenario %d: incremental: %v", seed, k, err)
			}
			want, err := full.Engine().Scenario(ctx, idF, SolveOptions{}, sc)
			if err != nil {
				t.Fatalf("seed %d scenario %d: full: %v", seed, k, err)
			}
			if !reflect.DeepEqual(got.Placement.Copies, want.Placement.Copies) {
				t.Fatalf("seed %d scenario %d: incremental placement %v, full %v",
					seed, k, got.Placement.Copies, want.Placement.Copies)
			}
			if got.Breakdown != want.Breakdown {
				t.Fatalf("seed %d scenario %d: incremental breakdown %+v, full %+v",
					seed, k, got.Breakdown, want.Breakdown)
			}
			if sc.Storage == nil && !got.Incremental {
				t.Fatalf("seed %d scenario %d: workload-only scenario did not take the incremental path", seed, k)
			}
			if sc.Storage != nil && got.Incremental {
				t.Fatalf("seed %d scenario %d: storage scenario bypassed the full-solve fallback", seed, k)
			}
			if want.Incremental {
				t.Fatalf("seed %d scenario %d: DisableIncremental engine answered incrementally", seed, k)
			}
		}
	}
}

// TestScenarioConcurrentEquivalence runs a batch of scenarios through
// WhatIf concurrently (exercised under -race in CI) and checks every
// outcome against an independent full solve.
func TestScenarioConcurrentEquivalence(t *testing.T) {
	ctx := context.Background()
	const seed, n, objects = 7, 20, 3
	incr := New(Config{Workers: 4})
	full := New(Config{Workers: 2, DisableIncremental: true})
	idI := registerFor(t, incr, seed, n, objects)
	idF := registerFor(t, full, seed, n, objects)
	rng := rand.New(rand.NewSource(seed))
	base := whatifInstance(seed, n, objects)
	scenarios := make([]Scenario, 12)
	for i := range scenarios {
		scenarios[i] = randomScenario(rng, base)
		scenarios[i].Label = fmt.Sprintf("c%d", i)
	}
	results, errs := incr.Engine().WhatIf(ctx, idI, SolveOptions{}, scenarios)
	for i := range scenarios {
		if errs[i] != nil {
			t.Fatalf("scenario %d: %v", i, errs[i])
		}
		want, err := full.Engine().Scenario(ctx, idF, SolveOptions{}, scenarios[i])
		if err != nil {
			t.Fatalf("scenario %d full: %v", i, err)
		}
		if !reflect.DeepEqual(results[i].Placement.Copies, want.Placement.Copies) {
			t.Fatalf("scenario %d: concurrent placement diverged from full solve", i)
		}
		if results[i].Breakdown != want.Breakdown {
			t.Fatalf("scenario %d: concurrent breakdown %+v, full %+v", i, results[i].Breakdown, want.Breakdown)
		}
		if results[i].Scenario != scenarios[i].Label {
			t.Fatalf("scenario %d: label %q not echoed (got %q)", i, scenarios[i].Label, results[i].Scenario)
		}
	}
}

// TestScenarioBookkeeping pins the incremental path's accounting: a
// one-object patch re-solves exactly one object, splices the rest, and
// the /statz counters reflect it.
func TestScenarioBookkeeping(t *testing.T) {
	ctx := context.Background()
	const seed, n, objects = 3, 24, 4
	srv := New(Config{Workers: 2})
	id := registerFor(t, srv, seed, n, objects)
	base := whatifInstance(seed, n, objects)

	reads := make([]int64, n)
	for v := range reads {
		reads[v] = int64(v % 5)
	}
	res, err := srv.Engine().Scenario(ctx, id, SolveOptions{}, Scenario{
		Objects: []ObjectPatch{{Name: base.Objects[1].Name, Reads: reads}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental || res.ResolvedObjects != 1 {
		t.Fatalf("one-object patch: incremental=%v resolved=%d, want true/1", res.Incremental, res.ResolvedObjects)
	}
	// A size-only change must splice everything.
	size := 5.0
	res, err = srv.Engine().Scenario(ctx, id, SolveOptions{}, Scenario{
		Objects: []ObjectPatch{{Name: base.Objects[0].Name, Size: &size}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental || res.ResolvedObjects != 0 {
		t.Fatalf("size-only patch: incremental=%v resolved=%d, want true/0", res.Incremental, res.ResolvedObjects)
	}
	st := srv.Stats()
	if st.WhatIfScenarios != 2 || st.WhatIfIncremental != 2 || st.WhatIfFull != 0 {
		t.Fatalf("stats scenarios=%d incremental=%d full=%d, want 2/2/0",
			st.WhatIfScenarios, st.WhatIfIncremental, st.WhatIfFull)
	}
	if st.IncrementalHitRate != 1 {
		t.Fatalf("incremental hit rate %v, want 1", st.IncrementalHitRate)
	}
	if st.ObjectsResolved != 1 || st.ObjectsSpliced != 7 {
		t.Fatalf("objects resolved=%d spliced=%d, want 1/7", st.ObjectsResolved, st.ObjectsSpliced)
	}
	// Unknown object names are client errors, not fallbacks.
	if _, err := srv.Engine().Scenario(ctx, id, SolveOptions{}, Scenario{
		Objects: []ObjectPatch{{Name: "no-such-object"}},
	}); err == nil {
		t.Fatal("patching an unknown object name did not error")
	}
	// With result caching disabled the incremental path cannot amortise
	// its base record and must fall back to full solves.
	noCache := New(Config{Workers: 2, CacheEntries: -1})
	idNC := registerFor(t, noCache, seed, n, objects)
	res, err = noCache.Engine().Scenario(ctx, idNC, SolveOptions{}, Scenario{
		Objects: []ObjectPatch{{Name: base.Objects[1].Name, Reads: reads}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental {
		t.Fatal("cache-disabled engine answered incrementally")
	}
}
