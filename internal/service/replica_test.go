package service

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"netplace/internal/core"
	"netplace/internal/encode"
)

// newReplicatedPair boots successor B and primary A (B is A's peer and
// successor) on real listeners, probers off for determinism.
func newReplicatedPair(t *testing.T) (a, b *Server, ca, cb *Client) {
	t.Helper()
	b = New(Config{ProbeInterval: -1})
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(tsB.Close)
	a = New(Config{
		Peers:         []string{tsB.URL},
		SuccessorURL:  tsB.URL,
		ProbeInterval: -1,
	})
	tsA := httptest.NewServer(a.Handler())
	t.Cleanup(tsA.Close)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	return a, b, NewClient(tsA.URL, tsA.Client()), NewClient(tsB.URL, tsB.Client())
}

func TestReplicaPushAndDegradedReads(t *testing.T) {
	a, b, ca, cb := newReplicatedPair(t)
	ctx := context.Background()
	in := pathInstance(t, 12, 5)

	up, err := ca.Upload(ctx, "replicated", in)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().ReplicaPushes; got != 1 {
		t.Fatalf("replica_pushes=%d after upload, want 1", got)
	}
	if got := b.Stats().ReplicaInstances; got != 1 {
		t.Fatalf("successor replica_instances=%d, want 1", got)
	}

	// Without the Allow-Stale opt-in the successor still answers 404 for
	// a key it merely replicates (hop-guard semantics depend on this).
	if _, err := cb.Info(ctx, up.ID); err == nil {
		t.Fatal("plain info on the successor served a replicated key")
	}
	if _, err := cb.Solve(ctx, up.ID, SolveOptions{}); err == nil {
		t.Fatal("plain solve on the successor served a replicated key")
	}

	// Degraded reads: solve from the snapshot is marked stale and
	// byte-identical in placement to the owner's solve.
	want, err := ca.Solve(ctx, up.ID, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cb.SolveDegraded(ctx, up.ID, SolveOptions{})
	if err != nil {
		t.Fatalf("degraded solve on the successor: %v", err)
	}
	if !got.Stale || got.StaleSeconds < 0 {
		t.Fatalf("degraded solve not marked stale: stale=%v age=%v", got.Stale, got.StaleSeconds)
	}
	if !reflect.DeepEqual(got.Placement, want.Placement) {
		t.Fatal("degraded placement differs from the owner's")
	}
	if b.Stats().FailoverReads == 0 {
		t.Fatal("failover_reads not counted")
	}

	// Cost against the hash-verified snapshot equals the owner's answer.
	wantCost, err := ca.Cost(ctx, up.ID, want.Placement)
	if err != nil {
		t.Fatal(err)
	}
	var gotCost BreakdownJSON
	hdr := map[string]string{HeaderAllowStale: "1"}
	if err := cb.doRetry(ctx, http.MethodPost, "/instances/"+up.ID+"/cost",
		hdr, PlacementRequest{Placement: want.Placement}, &gotCost, true); err != nil {
		t.Fatalf("degraded cost: %v", err)
	}
	if gotCost != wantCost {
		t.Fatalf("degraded cost %+v != owner cost %+v", gotCost, wantCost)
	}

	// Info fallback with the opt-in serves a synthesized record.
	var info InstanceInfo
	if err := cb.doRetry(ctx, http.MethodGet, "/instances/"+up.ID, hdr, nil, &info, true); err != nil {
		t.Fatalf("degraded info: %v", err)
	}
	if info.ID != up.ID || info.Hash != up.Hash || info.Nodes != 12 {
		t.Fatalf("degraded info %+v does not match the owner's record", info)
	}

	// Deleting on the owner propagates to the successor's snapshot store.
	if err := ca.Delete(ctx, up.ID); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().ReplicaInstances; got != 0 {
		t.Fatalf("successor replica_instances=%d after owner delete, want 0", got)
	}
}

func TestReplicaPushRejectsHashMismatch(t *testing.T) {
	_, b, _, cb := newReplicatedPair(t)
	ctx := context.Background()
	in := pathInstance(t, 10, 3)
	exp := exportOf(t, in)

	err := cb.PushReplica(ctx, "0000000000000000", exp)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("hash-mismatched push: err=%v, want HTTP 400", err)
	}
	if got := b.Stats().ReplicaInstances; got != 0 {
		t.Fatalf("mismatched push was stored (replica_instances=%d)", got)
	}
	// The correctly keyed push is accepted and idempotent.
	id := InstanceIDFor(in)
	if err := cb.PushReplica(ctx, id, exp); err != nil {
		t.Fatal(err)
	}
	if err := cb.PushReplica(ctx, id, exp); err != nil {
		t.Fatalf("re-push: %v", err)
	}
	if got := b.Stats().ReplicaInstances; got != 1 {
		t.Fatalf("replica_instances=%d, want 1", got)
	}
	// Deleting an absent snapshot is also fine.
	if err := cb.DeleteReplica(ctx, "ffffffffffffffff"); err != nil {
		t.Fatalf("idempotent replica delete: %v", err)
	}
}

// exportOf builds the wire-form export of an instance.
func exportOf(t *testing.T, in *core.Instance) InstanceExport {
	t.Helper()
	return InstanceExport{Instance: encode.InstanceJSONOf(in)}
}

func TestClusterDrainEndpoint(t *testing.T) {
	a, _, ca, _ := newReplicatedPair(t)
	ctx := context.Background()

	// Peer form: the named replica leaves this replica's peer set.
	if a.Stats().Peers != 1 {
		t.Fatalf("peers=%d before drain, want 1", a.Stats().Peers)
	}
	resp, err := ca.ClusterDrain(ctx, a.cfg.Peers[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "removed" || resp.Peer != a.cfg.Peers[0] {
		t.Fatalf("peer drain response %+v", resp)
	}
	if got := a.Stats().Peers; got != 0 {
		t.Fatalf("peers=%d after drain, want 0", got)
	}
	// Idempotent: removing it again still succeeds.
	if _, err := ca.ClusterDrain(ctx, resp.Peer); err != nil {
		t.Fatalf("repeated peer drain: %v", err)
	}

	// Self form: open a session, drain, readiness drops.
	in := pathInstance(t, 10, 3)
	up, err := ca.Upload(ctx, "drainme", in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.OpenSession(ctx, up.ID, SessionConfig{Epoch: 8}); err != nil {
		t.Fatal(err)
	}
	dresp, err := ca.ClusterDrain(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if dresp.Status != "draining" || dresp.SessionsDrained != 1 {
		t.Fatalf("self drain response %+v, want draining with 1 session", dresp)
	}
	if err := ca.Ready(ctx); err == nil {
		t.Fatal("drained server still answers /readyz 200")
	}
}

// TestClusterStatsErrors: /statz?cluster=1 with unreachable peers lists
// them under errors, still merges the reachable replicas, and finishes
// within roughly one per-peer timeout — the fan-out is parallel, so two
// hanging peers do not serialize into two timeouts.
func TestClusterStatsErrors(t *testing.T) {
	hang1, hang2 := hangListener(t), hangListener(t)
	b := New(Config{ProbeInterval: -1})
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(tsB.Close)

	timeout := 400 * time.Millisecond
	a := New(Config{
		Peers:         []string{tsB.URL, hang1, hang2},
		PeerTimeout:   timeout,
		ProbeInterval: -1,
	})
	tsA := httptest.NewServer(a.Handler())
	t.Cleanup(tsA.Close)
	ca := NewClient(tsA.URL, tsA.Client())

	start := time.Now()
	cs, err := ca.ClusterStats(context.Background())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Errors) != 2 || cs.Errors[hang1] == "" || cs.Errors[hang2] == "" {
		t.Fatalf("errors=%v, want both hanging peers listed", cs.Errors)
	}
	if cs.Totals.Replicas != 2 {
		t.Fatalf("merged %d replicas, want self + the reachable peer", cs.Totals.Replicas)
	}
	if _, ok := cs.Replicas[tsB.URL]; !ok {
		t.Fatalf("reachable peer %s missing from merge: %v", tsB.URL, cs.Replicas)
	}
	if elapsed > 2*timeout {
		t.Fatalf("cluster stats took %v with two dead peers — serial stall (timeout %v)", elapsed, timeout)
	}
}

// hangListener returns the URL of a TCP listener that accepts
// connections and never answers — a blackholed peer.
func hangListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done); ln.Close() })
	go func() {
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, c)
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	return "http://" + ln.Addr().String()
}

// TestProbePeersSkipsOpenBreaker: the peer-cache probe fan-out skips
// peers whose breaker is open instead of burning the per-peer timeout,
// and the in-flight gauge returns to zero.
func TestProbePeersSkipsOpenBreaker(t *testing.T) {
	hang := hangListener(t)
	s := New(Config{
		Peers:         []string{hang},
		PeerCache:     true,
		PeerTimeout:   2 * time.Second,
		ProbeInterval: -1,
	})
	t.Cleanup(s.Close)
	br := s.health.For(hang)
	for i := 0; i < DefaultBreakerThreshold; i++ {
		br.Failure()
	}
	start := time.Now()
	_, ok := s.probePeers(context.Background(), "deadbeef", SolveOptions{})
	if ok {
		t.Fatal("probe of a down peer reported a hit")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("probe with an open breaker took %v — it should have been skipped", elapsed)
	}
	st := s.Stats()
	if st.PeerProbes != 0 {
		t.Fatalf("peer_probes=%d, want 0 (skipped, not attempted)", st.PeerProbes)
	}
	if st.PeerProbeInflight != 0 {
		t.Fatalf("peer_probe_inflight=%d, want 0", st.PeerProbeInflight)
	}
	if st.PeerHealth[hang] != "open" {
		t.Fatalf("peer_health[%s]=%q, want open", hang, st.PeerHealth[hang])
	}
}

// TestProbePeersFirstHitWins: with one hanging peer and one that
// answers from cache, the parallel fan-out returns the hit without
// waiting out the hanging peer's timeout.
func TestProbePeersFirstHitWins(t *testing.T) {
	hang := hangListener(t)
	hit := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cache/probe" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(CacheProbeResponse{ //nolint:errcheck
			Found: true, Result: &SolveResult{InstanceID: "cached-elsewhere"}})
	}))
	t.Cleanup(hit.Close)

	timeout := 2 * time.Second
	s := New(Config{
		Peers:         []string{hang, hit.URL},
		PeerCache:     true,
		PeerTimeout:   timeout,
		ProbeInterval: -1,
	})
	t.Cleanup(s.Close)
	start := time.Now()
	res, ok := s.probePeers(context.Background(), "deadbeef", SolveOptions{})
	elapsed := time.Since(start)
	if !ok || res.InstanceID != "cached-elsewhere" {
		t.Fatalf("probe hit not returned: ok=%v res=%+v", ok, res)
	}
	if elapsed > timeout {
		t.Fatalf("first hit took %v — it must cancel, not wait for, the hanging peer", elapsed)
	}
	st := s.Stats()
	if st.PeerHits != 1 {
		t.Fatalf("peer_hits=%d, want 1", st.PeerHits)
	}
}

// TestExportAndReplicaList covers the drain tool's read side: exports
// from the registry and from the snapshot store answer the same bytes,
// the snapshot listing names what is held, and an unknown id is a 404.
func TestExportAndReplicaList(t *testing.T) {
	a, _, ca, cb := newReplicatedPair(t)
	ctx := context.Background()
	in := pathInstance(t, 9, 4)

	up, err := ca.Upload(ctx, "exported", in)
	if err != nil {
		t.Fatal(err)
	}
	if a.PeerHealth() == nil {
		t.Fatal("server exposes no peer health tracker")
	}

	// Owner export comes from the registry, with the label.
	exp, err := ca.Export(ctx, up.ID)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Name != "exported" {
		t.Fatalf("export name %q, want \"exported\"", exp.Name)
	}
	decoded, err := exp.Instance.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if got := InstanceIDFor(decoded); got != up.ID {
		t.Fatalf("export decodes to id %s, want %s", got, up.ID)
	}
	// Successor export falls back to the snapshot store: same content.
	snapExp, err := cb.Export(ctx, up.ID)
	if err != nil {
		t.Fatalf("export from the snapshot holder: %v", err)
	}
	snapDecoded, err := snapExp.Instance.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if encode.HashInstance(snapDecoded) != encode.HashInstance(decoded) {
		t.Fatal("snapshot export content differs from the owner's")
	}

	var ae *APIError
	if _, err := ca.Export(ctx, "ffffffffffffffff"); !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("unknown export: err=%v, want HTTP 404", err)
	}

	// The successor's snapshot listing names the held instance.
	held, err := cb.ReplicaInstances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(held) != 1 || held[0].ID != up.ID || held[0].Name != "exported" || held[0].AgeSeconds < 0 {
		t.Fatalf("replica listing %+v, want one fresh entry for %s", held, up.ID)
	}
	if own, err := ca.ReplicaInstances(ctx); err != nil || len(own) != 0 {
		t.Fatalf("owner replica listing %v (err %v), want empty", own, err)
	}
}

// TestCacheProbeEndpoint covers the peer-cache wire call end to end: a
// probe for an unsolved hash is a miss, a probe after a solve is a hit
// answered from the cache (peer_served counts it), and the hit result
// carries the cached placement.
func TestCacheProbeEndpoint(t *testing.T) {
	a, _, ca, _ := newReplicatedPair(t)
	ctx := context.Background()
	in := pathInstance(t, 9, 4)

	up, err := ca.Upload(ctx, "probed", in)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := ca.CacheProbe(ctx, up.Hash, SolveOptions{}); err != nil || res.Found {
		t.Fatalf("probe before any solve: found=%v err=%v, want a miss", res.Found, err)
	}
	want, err := ca.Solve(ctx, up.ID, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ca.CacheProbe(ctx, up.Hash, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Result == nil || !reflect.DeepEqual(res.Result.Placement, want.Placement) {
		t.Fatalf("probe after solve: %+v, want the cached placement", res)
	}
	if got := a.Stats().PeerServed; got != 1 {
		t.Fatalf("peer_served=%d after a probe hit, want 1", got)
	}
}
