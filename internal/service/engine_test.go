package service

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"netplace/internal/core"
	"netplace/internal/graph"
	"netplace/internal/metric"
)

// cycleInstance builds a small non-tree network (a cycle).
func cycleInstance(t *testing.T, n int) *core.Instance {
	t.Helper()
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n, 1)
	}
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = 2
	}
	obj := core.Object{Name: "obj", Reads: make([]int64, n), Writes: make([]int64, n)}
	obj.Reads[0] = 3
	obj.Writes[1] = 1
	in, err := core.NewInstance(g, storage, []core.Object{obj})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestValidateForRejectsUnsafeOptions covers the per-instance request
// checks: tree options on non-trees, dense materialisation and oversized
// row budgets on large resident instances — each must fail as a client
// error before reaching the solver (no panic, no allocation).
func TestValidateForRejectsUnsafeOptions(t *testing.T) {
	srv := New(Config{})
	e := srv.Engine()
	ctx := context.Background()

	cyc, _ := e.Registry().Add("cycle", cycleInstance(t, 8))
	for _, opts := range []SolveOptions{
		{Metric: "tree"},
		{Algo: "tree"},
	} {
		if _, err := e.Solve(ctx, cyc.ID, opts); err == nil {
			t.Fatalf("%+v accepted on a non-tree network", opts)
		}
	}

	big, _ := e.Registry().Add("big", pathInstance(t, core.DenseMetricMaxNodes+1, 7))
	if _, err := e.Solve(ctx, big.ID, SolveOptions{Metric: "dense"}); err == nil ||
		!strings.Contains(err.Error(), "dense") {
		t.Fatalf("dense materialisation on a %d-node resident instance accepted (err=%v)",
			core.DenseMetricMaxNodes+1, err)
	}
	if _, err := e.Solve(ctx, big.ID, SolveOptions{MetricRows: metric.DefaultLazyRows + 1}); err == nil {
		t.Fatal("metric_rows beyond the budgeted cap accepted")
	}
	if _, err := e.Solve(ctx, big.ID, SolveOptions{Algo: "optimal"}); err == nil {
		t.Fatal("optimal enumeration on a large instance accepted")
	}
	if st := srv.Stats(); st.SolvesTotal != 0 || st.SolveErrors != 0 {
		t.Fatalf("validation failures reached the solver: %+v", st)
	}
}

// TestSolvePanicDoesNotWedgeKey recovers a panic inside a solver run into
// an error and proves the cache key stays usable afterwards (a wedged
// singleflight entry would hang the second call forever).
func TestSolvePanicDoesNotWedgeKey(t *testing.T) {
	srv := New(Config{})
	e := srv.Engine()
	ctx := context.Background()
	info, _ := e.Registry().Add("panicky", pathInstance(t, 8, 2))

	first := true
	e.testHookSolveStart = func() {
		if first {
			first = false
			panic("injected failure")
		}
	}
	if _, err := e.Solve(ctx, info.ID, SolveOptions{}); err == nil ||
		!strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking solve returned err=%v, want recovered panic error", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.Solve(ctx, info.ID, SolveOptions{})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("solve after panic: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("solve after panic hung: singleflight key wedged")
	}
}

// TestWaiterTakesOverCancelledLeader joins request B onto a solve led by
// request A, cancels A mid-run, and asserts B re-runs the solve under its
// own context instead of inheriting A's cancellation.
func TestWaiterTakesOverCancelledLeader(t *testing.T) {
	srv := New(Config{})
	e := srv.Engine()
	// 13 nodes: the optimal enumeration crosses the 4096-mask context
	// checkpoint, so cancelling the leader actually aborts its run.
	info, _ := e.Registry().Add("takeover", pathInstance(t, 13, 4))

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.testHookSolveStart = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := make(chan error, 1)
	go func() {
		_, err := e.Solve(ctxA, info.ID, SolveOptions{Algo: "optimal"})
		errA <- err
	}()
	<-entered // A is the leader, held inside its run
	errB := make(chan error, 1)
	var resB SolveResult
	go func() {
		var err error
		resB, err = e.Solve(context.Background(), info.ID, SolveOptions{Algo: "optimal"})
		errB <- err
	}()
	time.Sleep(50 * time.Millisecond) // let B join the flight
	cancelA()
	close(release)

	if err := <-errA; err == nil {
		t.Fatal("cancelled leader reported success")
	}
	if err := <-errB; err != nil {
		t.Fatalf("waiter inherited the leader's cancellation: %v", err)
	}
	if resB.Breakdown.Total <= 0 || resB.Copies == 0 {
		t.Fatalf("takeover produced no result: %+v", resB)
	}
}

// TestWaiterContextCancelsItsWait cancels a waiter's own context while the
// leader is still running: the waiter must return promptly without
// affecting the leader.
func TestWaiterContextCancelsItsWait(t *testing.T) {
	srv := New(Config{})
	e := srv.Engine()
	info, _ := e.Registry().Add("waitcancel", pathInstance(t, 10, 3))

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.testHookSolveStart = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}

	errA := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), info.ID, SolveOptions{})
		errA <- err
	}()
	<-entered
	ctxB, cancelB := context.WithCancel(context.Background())
	errB := make(chan error, 1)
	go func() {
		_, err := e.Solve(ctxB, info.ID, SolveOptions{})
		errB <- err
	}()
	time.Sleep(50 * time.Millisecond) // let B join the flight
	cancelB()
	select {
	case err := <-errB:
		if err == nil {
			t.Fatal("cancelled waiter reported success while leader still running")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter stayed blocked on the leader")
	}
	close(release)
	if err := <-errA; err != nil {
		t.Fatalf("leader failed after waiter cancellation: %v", err)
	}
}
