package service

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"netplace/internal/core"
	"netplace/internal/encode"
)

// ObjectPatch overrides one object's workload inputs in a what-if
// scenario. Omitted fields keep the base instance's values.
type ObjectPatch struct {
	// Name identifies the object by its wire name: Object.Name, or
	// object-<index> for unnamed objects.
	Name string `json:"name"`
	// Reads / Writes replace the per-node frequency vectors when non-nil.
	Reads  []int64 `json:"reads,omitempty"`
	Writes []int64 `json:"writes,omitempty"`
	// Size replaces the object size when non-nil. A size-only change never
	// re-solves: the optimal copy set is invariant under size (fees are per
	// byte on both storage and transmission), so the cached raw breakdown
	// is re-scaled instead.
	Size *float64 `json:"size,omitempty"`
}

// Scenario is one what-if variant of a resident instance: the base problem
// with some objects' demand vectors (and/or the storage fee vector)
// replaced. Scenarios that only touch object workloads are answered
// incrementally — the engine re-solves exactly the objects whose inputs
// differ from the base and splices the cached base solve for the rest,
// which is what makes a batched sweep of single-object tweaks over a large
// resident instance nearly free. A storage change invalidates every
// object's placement and falls back to a full solve, as does any algorithm
// other than "approx" (only the paper's algorithm treats objects
// independently object by object here).
type Scenario struct {
	// Label tags the scenario; it is echoed in the result.
	Label string `json:"label,omitempty"`
	// Objects patches named objects' inputs.
	Objects []ObjectPatch `json:"objects,omitempty"`
	// Storage, when non-nil, replaces the per-node storage fee vector.
	Storage []float64 `json:"storage,omitempty"`
}

// baseRecord is a cached base solve in spliceable form: per-object copy
// sets plus per-object raw (size-1) cost breakdowns. Copy sets and
// breakdowns are treated as immutable once recorded.
type baseRecord struct {
	placement core.Placement
	raw       []core.Breakdown
}

// WhatIf answers a batch of scenarios against one resident instance, all
// under the same solve options, fanning them across the engine's worker
// pool. The i-th error slot is nil iff the i-th result is valid.
func (e *Engine) WhatIf(ctx context.Context, id string, opts SolveOptions, scenarios []Scenario) ([]SolveResult, []error) {
	results := make([]SolveResult, len(scenarios))
	errs := make([]error, len(scenarios))
	done := make(chan int)
	for i := range scenarios {
		go func(i int) {
			defer func() { done <- i }()
			results[i], errs[i] = e.Scenario(ctx, id, opts, scenarios[i])
		}(i)
	}
	for range scenarios {
		<-done
	}
	return results, errs
}

// Scenario answers one what-if scenario, incrementally when possible.
func (e *Engine) Scenario(ctx context.Context, id string, opts SolveOptions, sc Scenario) (SolveResult, error) {
	opts, err := opts.normalize()
	if err != nil {
		return SolveResult{}, err
	}
	in, info, ok := e.registry.Get(id)
	if !ok {
		return SolveResult{}, ErrNotFound
	}
	if err := opts.validateFor(in); err != nil {
		return SolveResult{}, err
	}
	patched, changed, storage, err := applyScenario(in, sc)
	if err != nil {
		return SolveResult{}, err
	}
	// The incremental path needs the base-record cache: with caching
	// disabled it would re-run the base solve per scenario, strictly worse
	// than the plain fallback.
	if opts.Algo != "approx" || storage != nil || e.cfg.DisableIncremental || e.cfg.CacheEntries < 0 {
		res, err := e.scenarioFull(ctx, id, in, opts, sc, patched, storage)
		if err != nil {
			return SolveResult{}, err
		}
		e.counters.scenarios.Add(1)
		e.counters.fullScenarios.Add(1)
		return res, nil
	}
	base, err := e.baseFor(ctx, id, in, info, opts)
	if err != nil {
		return SolveResult{}, err
	}
	res, err := e.scenarioIncremental(ctx, id, in, opts, sc, patched, changed, base)
	if err != nil {
		return SolveResult{}, err
	}
	e.counters.scenarios.Add(1)
	e.counters.incremental.Add(1)
	e.counters.objectsResolved.Add(int64(len(changed)))
	e.counters.objectsSpliced.Add(int64(len(patched) - len(changed)))
	return res, nil
}

// applyScenario resolves a scenario against the base instance. It returns
// the patched object slice (entries shallow-copied from the base, patched
// fields replaced), the indices whose request vectors actually differ from
// the base, and the replacement storage vector (nil when absent or equal
// to the base). Patches referencing unknown or ambiguous object names are
// errors.
func applyScenario(in *core.Instance, sc Scenario) (patched []core.Object, changed []int, storage []float64, err error) {
	patched = append([]core.Object(nil), in.Objects...)
	if len(sc.Objects) > 0 {
		index := make(map[string]int, len(in.Objects))
		dup := make(map[string]bool)
		for i := range in.Objects {
			name := wireObjectName(&in.Objects[i], i)
			if _, ok := index[name]; ok {
				dup[name] = true
			}
			index[name] = i
		}
		isChanged := make(map[int]bool, len(sc.Objects))
		for _, p := range sc.Objects {
			i, ok := index[p.Name]
			if !ok {
				return nil, nil, nil, fmt.Errorf("service: scenario patches unknown object %q", p.Name)
			}
			if dup[p.Name] {
				return nil, nil, nil, fmt.Errorf("service: object name %q is ambiguous", p.Name)
			}
			o := patched[i] // shallow copy; vectors replaced wholesale below
			if p.Reads != nil {
				o.Reads = p.Reads
			}
			if p.Writes != nil {
				o.Writes = p.Writes
			}
			if p.Size != nil {
				o.Size = *p.Size
			}
			patched[i] = o
			if !slices.Equal(o.Reads, in.Objects[i].Reads) || !slices.Equal(o.Writes, in.Objects[i].Writes) {
				isChanged[i] = true
			}
		}
		for i := range patched {
			if isChanged[i] {
				changed = append(changed, i)
			}
		}
	}
	if sc.Storage != nil && !slices.Equal(sc.Storage, in.Storage) {
		storage = sc.Storage
	}
	return patched, changed, storage, nil
}

// wireObjectName is the wire name of an object: its Name, or
// object-<index> for unnamed objects (the encode package's rule).
func wireObjectName(o *core.Object, i int) string {
	return encode.ObjectName(o, i)
}

// baseFor returns the spliceable base record for (instance, options),
// computing and caching it on first use. The base solve itself goes
// through the regular solve cache and singleflight, so concurrent
// scenarios warm it exactly once. Like Solve, a waiter whose leader got
// cancelled takes the computation over instead of inheriting the
// cancellation.
func (e *Engine) baseFor(ctx context.Context, id string, in *core.Instance, info InstanceInfo, opts SolveOptions) (*baseRecord, error) {
	key := info.Hash + "|" + opts.key() + "|base"
	for {
		if v, ok := e.bases.Get(key); ok {
			return v.(*baseRecord), nil
		}
		val, err, shared := e.flight.Do(ctx, key, func() (any, error) {
			res, err := e.Solve(ctx, id, opts)
			if err != nil {
				return nil, err
			}
			p, err := res.Placement.Placement(in)
			if err != nil {
				return nil, fmt.Errorf("%w: base placement does not fit instance: %v", ErrInternal, err)
			}
			rec := &baseRecord{placement: p, raw: make([]core.Breakdown, len(in.Objects))}
			// Pricing honours the request's parallel knob: on large
			// instances a copy set past the oracle's row budget needs its
			// rows rebuilt, and the batched prefetch is the difference
			// between one sweep at a time and all cores.
			par := e.lowerOptions(opts, 1).Parallel
			for i := range in.Objects {
				rec.raw[i] = in.ObjectCostRawParallel(&in.Objects[i], p.Copies[i], par)
			}
			e.bases.Put(key, rec)
			return rec, nil
		})
		if shared && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			// The leader's client disconnected, not ours: take over.
			continue
		}
		if err != nil {
			return nil, err
		}
		return val.(*baseRecord), nil
	}
}

// scenarioIncremental re-solves only the changed objects of a scenario on
// a derived instance that shares the base's network, fees and warmed
// oracle, splicing cached copy sets and raw breakdowns for the rest.
// Scaling raw breakdowns here performs the exact float operations a full
// evaluation would, so results are byte-identical to a from-scratch solve.
func (e *Engine) scenarioIncremental(ctx context.Context, id string, in *core.Instance, opts SolveOptions, sc Scenario, patched []core.Object, changed []int, base *baseRecord) (SolveResult, error) {
	start := time.Now()
	scen, err := in.WithObjects(patched)
	if err != nil {
		return SolveResult{}, err
	}
	res := SolveResult{
		InstanceID: id, Options: opts, Scenario: sc.Label,
		Incremental: true, ResolvedObjects: len(changed),
	}
	p := core.Placement{Copies: base.placement.Copies}
	if len(changed) > 0 {
		// Copy-on-write: only scenarios that re-solve something need their
		// own copy-set slice.
		p = core.Placement{Copies: append([][]int(nil), base.placement.Copies...)}
		release, err := e.admit(ctx)
		if err != nil {
			return SolveResult{}, err
		}
		// One object at a time: object-level fan-out is useless here, so
		// intra-solve parallelism is the only way this path uses more than
		// one core.
		copt := e.lowerOptions(opts, 1)
		for _, i := range changed {
			p.Copies[i] = core.ApproximateObject(scen, &scen.Objects[i], copt)
		}
		release()
	}
	isChanged := make(map[int]bool, len(changed))
	for _, i := range changed {
		isChanged[i] = true
	}
	var b core.Breakdown
	par := e.lowerOptions(opts, 1).Parallel
	for i := range patched {
		obj := &scen.Objects[i]
		var raw core.Breakdown
		if isChanged[i] {
			raw = scen.ObjectCostRawParallel(obj, p.Copies[i], par)
		} else {
			raw = base.raw[i]
		}
		b.Add(raw.Scale(obj.Scale()))
		res.Copies += len(p.Copies[i])
	}
	pj, err := encode.PlacementJSONOf(scen, p)
	if err != nil {
		e.counters.errors.Add(1)
		return SolveResult{}, fmt.Errorf("%w: %v", ErrInternal, err)
	}
	res.Placement = pj
	res.Breakdown = breakdownJSON(b)
	res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return res, nil
}

// scenarioFull solves a patched instance from scratch — the fallback for
// structural changes (storage fees, non-approx algorithms). The derived
// instance still shares the base's warmed oracle, since the network is
// unchanged.
func (e *Engine) scenarioFull(ctx context.Context, id string, in *core.Instance, opts SolveOptions, sc Scenario, patched []core.Object, storage []float64) (SolveResult, error) {
	if storage == nil {
		storage = in.Storage
	}
	scen, err := core.NewInstance(in.G, storage, patched)
	if err != nil {
		return SolveResult{}, err
	}
	scen.SetMetric(in.Metric())
	if err := e.checkDeadline(ctx); err != nil {
		e.counters.errors.Add(1)
		return SolveResult{}, err
	}
	release, err := e.admit(ctx)
	if err != nil {
		return SolveResult{}, err
	}
	defer release()
	if e.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.SolveTimeout)
		defer cancel()
	}
	e.counters.runs.Add(1)
	start := time.Now()
	res := SolveResult{InstanceID: id, Options: opts, Scenario: sc.Label}
	p, treeCost, err := e.solveInstance(ctx, scen, opts)
	if err != nil {
		e.counters.errors.Add(1)
		return SolveResult{}, err
	}
	res.TreeCost = treeCost
	pj, err := encode.PlacementJSONOf(scen, p)
	if err != nil {
		e.counters.errors.Add(1)
		return SolveResult{}, err
	}
	res.Placement = pj
	res.Breakdown = breakdownJSON(scen.Cost(p))
	for _, c := range p.Copies {
		res.Copies += len(c)
	}
	res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return res, nil
}
