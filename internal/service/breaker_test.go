package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives a Breaker deterministically in tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(cfg)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Threshold: 3, Backoff: 100 * time.Millisecond})
	for i := 0; i < 2; i++ {
		b.Failure()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state=%v, want closed", i+1, got)
		}
		if !b.Allow() {
			t.Fatalf("closed breaker refused traffic after %d failures", i+1)
		}
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after 3 failures state=%v, want open", got)
	}
	if b.Allow() || b.Ready() {
		t.Fatal("open breaker admitted traffic before backoff elapsed")
	}
	if ra := b.RetryAfter(); ra != 100*time.Millisecond {
		t.Fatalf("RetryAfter=%v, want 100ms", ra)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Threshold: 3})
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state=%v after success reset, want closed", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Threshold: 1, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second})
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted traffic immediately")
	}
	clk.advance(100 * time.Millisecond)
	if !b.Ready() {
		t.Fatal("due breaker not Ready after backoff")
	}
	if !b.Allow() {
		t.Fatal("due breaker refused the reopen probe")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state=%v after probe admitted, want half-open", got)
	}
	// Exactly one probe: the slot is taken until the outcome lands.
	if b.Allow() || b.Ready() {
		t.Fatal("half-open breaker admitted a second probe")
	}
	// Failed probe doubles the backoff.
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state=%v after failed probe, want open", got)
	}
	if ra := b.RetryAfter(); ra != 200*time.Millisecond {
		t.Fatalf("RetryAfter after failed probe=%v, want doubled 200ms", ra)
	}
	clk.advance(200 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused second reopen probe")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state=%v after successful probe, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Threshold: 1, Backoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond})
	b.Failure()
	for i := 0; i < 4; i++ {
		clk.advance(time.Second)
		if !b.Allow() {
			t.Fatalf("probe %d refused", i)
		}
		b.Failure()
	}
	if ra := b.RetryAfter(); ra != 300*time.Millisecond {
		t.Fatalf("RetryAfter=%v, want capped 300ms", ra)
	}
}

func TestBreakerHalfOpenStaleProbeRecovers(t *testing.T) {
	// A probe whose outcome is never reported (canceled context) must not
	// wedge the breaker forever: after MaxBackoff another probe is let in.
	b, clk := newTestBreaker(BreakerConfig{Threshold: 1, Backoff: 50 * time.Millisecond, MaxBackoff: 400 * time.Millisecond})
	b.Failure()
	clk.advance(50 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	// Outcome lost; shortly after, still blocked.
	clk.advance(100 * time.Millisecond)
	if b.Allow() {
		t.Fatal("second probe admitted before the stale-probe grace")
	}
	clk.advance(300 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker wedged by a probe that never reported")
	}
}

func TestReplicaDownErrorIs(t *testing.T) {
	err := &ReplicaDownError{Replica: "http://x", RetryAfter: time.Second}
	if !errors.Is(err, ErrReplicaDown) {
		t.Fatal("ReplicaDownError does not match ErrReplicaDown")
	}
	api := &APIError{Status: http.StatusServiceUnavailable, ReplicaDown: "http://x"}
	if !errors.Is(api, ErrReplicaDown) {
		t.Fatal("APIError with ReplicaDown marker does not match ErrReplicaDown")
	}
	plain := &APIError{Status: http.StatusServiceUnavailable}
	if errors.Is(plain, ErrReplicaDown) {
		t.Fatal("plain 503 APIError must not match ErrReplicaDown")
	}
}

func TestPeerHealthProberOpensAndCloses(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	h := NewPeerHealth(BreakerConfig{Threshold: 2, Backoff: 10 * time.Millisecond}, srv.URL)
	defer h.Close()
	h.StartProber(5*time.Millisecond, 200*time.Millisecond)

	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if h.States()[srv.URL] == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("breaker never reached %q (now %q)", want, h.States()[srv.URL])
	}
	waitState("closed")
	// The boot grace suppresses prober failures until the peer has
	// answered once; wait for that first success before partitioning.
	seenDeadline := time.Now().Add(3 * time.Second)
	for !h.For(srv.URL).Seen() {
		if time.Now().After(seenDeadline) {
			t.Fatal("prober never recorded a successful probe")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ready.Store(false)
	waitState("open")
	if h.Opens() == 0 {
		t.Fatal("opens counter not bumped")
	}
	ready.Store(true)
	waitState("closed")
}

func TestPeerHealthProberBootGrace(t *testing.T) {
	// A peer that has never answered is not failed by the prober — boot
	// order between replicas must not open breakers.
	h := NewPeerHealth(BreakerConfig{Threshold: 1, Backoff: 10 * time.Millisecond}, "http://127.0.0.1:1")
	defer h.Close()
	h.StartProber(5*time.Millisecond, 50*time.Millisecond)
	time.Sleep(150 * time.Millisecond)
	if got := h.States()["http://127.0.0.1:1"]; got != "closed" {
		t.Fatalf("never-seen peer breaker=%q, want closed (boot grace)", got)
	}
	// Passive failures still count from the start.
	h.For("http://127.0.0.1:1").Failure()
	if got := h.States()["http://127.0.0.1:1"]; got != "open" {
		t.Fatalf("breaker=%q after passive failure, want open", got)
	}
}

func TestPeerHealthPassiveSuccessLiftsBootGrace(t *testing.T) {
	// A peer that served real forwarded traffic counts as seen even if
	// the prober never reached it successfully: after a passive Success,
	// prober failures open the breaker — a replica that answered
	// requests and then partitioned must be detectable with no traffic
	// flowing.
	h := NewPeerHealth(BreakerConfig{Threshold: 1, Backoff: 10 * time.Millisecond}, "http://127.0.0.1:1")
	defer h.Close()
	b := h.For("http://127.0.0.1:1")
	if b.Seen() {
		t.Fatal("fresh breaker reports seen")
	}
	b.Success()
	if !b.Seen() {
		t.Fatal("passive success did not mark the peer seen")
	}
	h.StartProber(5*time.Millisecond, 50*time.Millisecond)
	deadline := time.Now().Add(3 * time.Second)
	for h.States()["http://127.0.0.1:1"] != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("prober never opened a seen-but-unreachable peer (state %q)",
				h.States()["http://127.0.0.1:1"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBreakerRetryAfterBranches(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Threshold: 1, Backoff: time.Second, MaxBackoff: 8 * time.Second})
	if ra := b.RetryAfter(); ra != 0 {
		t.Fatalf("closed RetryAfter=%v, want 0", ra)
	}
	b.Failure() // opens for 1s
	if ra := b.RetryAfter(); ra != time.Second {
		t.Fatalf("open RetryAfter=%v, want 1s", ra)
	}
	clk.advance(2 * time.Second)
	if ra := b.RetryAfter(); ra != 0 {
		t.Fatalf("open-with-elapsed-backoff RetryAfter=%v, want 0", ra)
	}
	if !b.Allow() {
		t.Fatal("due reopen probe refused")
	}
	// Half-open: the hint is the current backoff, and the states render
	// for /statz.
	if got := b.State().String(); got != "half-open" {
		t.Fatalf("state=%q, want half-open", got)
	}
	if ra := b.RetryAfter(); ra != time.Second {
		t.Fatalf("half-open RetryAfter=%v, want the 1s backoff", ra)
	}
	for want, s := range map[string]BreakerState{
		"closed": BreakerClosed, "open": BreakerOpen, "half-open": BreakerHalfOpen,
	} {
		if got := s.String(); got != want {
			t.Fatalf("BreakerState(%d).String()=%q, want %q", s, got, want)
		}
	}
}

func TestReplicaDownErrorMessage(t *testing.T) {
	err := &ReplicaDownError{Replica: "http://b:8723", RetryAfter: 1500 * time.Millisecond}
	msg := err.Error()
	for _, want := range []string{"http://b:8723", "1.5s", "circuit breaker open"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
}

func TestWriteErrorReplicaDown(t *testing.T) {
	// The typed form: 503, the header naming the replica, and a whole-
	// second Retry-After floor even for sub-second breaker backoffs.
	rec := httptest.NewRecorder()
	writeError(rec, &ReplicaDownError{Replica: "http://b:8723", RetryAfter: 80 * time.Millisecond})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if got := rec.Header().Get(HeaderReplicaDown); got != "http://b:8723" {
		t.Fatalf("%s=%q, want the replica URL", HeaderReplicaDown, got)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After=%q, want the 1s floor", got)
	}
	// The relayed form: an APIError that unwraps to ErrReplicaDown (a
	// downstream 503 passed through) keeps the replica attribution.
	rec = httptest.NewRecorder()
	writeError(rec, &APIError{Status: http.StatusServiceUnavailable,
		ReplicaDown: "http://c:8723", RetryAfter: 3 * time.Second})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("relayed status %d, want 503", rec.Code)
	}
	if got := rec.Header().Get(HeaderReplicaDown); got != "http://c:8723" {
		t.Fatalf("relayed %s=%q, want the replica URL", HeaderReplicaDown, got)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("relayed Retry-After=%q, want 3", got)
	}
}
