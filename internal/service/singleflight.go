package service

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup collapses concurrent calls with the same key into one
// execution whose result every caller shares — the classic singleflight
// pattern, reimplemented here because the module deliberately has no
// external dependencies.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight execution.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do executes fn under key, or — if an identical call is already running —
// waits for that call and returns its result. shared reports whether the
// result came from (or was awaited on) another caller's execution.
//
// A waiter's own ctx cancels only its wait, never the leader's execution.
// A panic inside fn is recovered into an error so the key is never wedged:
// the call is always unregistered and its waiters always released.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.val, c.err = nil, fmt.Errorf("%w: solve panicked: %v", ErrInternal, r)
			}
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()
	return c.val, c.err, false
}
