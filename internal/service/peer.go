package service

import (
	"context"
	"net/http"
	"time"
)

// This file is the server half of netplaced clustering (see
// docs/cluster.md): the peer solve-cache probe endpoint, the outgoing
// probe path the engine consults before running a solver, and the
// cluster-wide /statz merge. The routing halves — consistent-hash ring,
// ShardedClient, stateless proxy — live in internal/cluster, which
// builds on this package.

// HeaderForwarded is the proxy hop guard: a replica forwarding a request
// it does not own sets it, and a replica receiving it serves locally no
// matter what the ring says — so a stale ring or a membership
// disagreement degrades to one extra hop, never a forwarding loop.
const HeaderForwarded = "X-Netplace-Forwarded"

// CacheProbeRequest is the body of POST /v1/cache/probe: a peer asking
// whether this replica has already solved (hash, options). Hash is the
// instance content hash (InstanceInfo.Hash), not the registry id, so a
// replica can answer even when it registered the instance under a label.
type CacheProbeRequest struct {
	Hash    string       `json:"hash"`
	Options SolveOptions `json:"options,omitzero"`
}

// CacheProbeResponse is the probe answer. Found is false when this
// replica has no cached result for the key; Result is set iff Found.
type CacheProbeResponse struct {
	Found  bool         `json:"found"`
	Result *SolveResult `json:"result,omitempty"`
}

// handleCacheProbe is POST /v1/cache/probe: answer a peer's solve-cache
// probe straight from the result cache. It never solves, never blocks on
// the worker pool, and never probes further peers — the caller is a
// singleflight leader on its own replica, so anything but a map lookup
// here would cascade load instead of collapsing it.
func (s *Server) handleCacheProbe(w http.ResponseWriter, r *http.Request) {
	var req CacheProbeRequest
	if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	opts, err := req.Options.normalize()
	if err != nil {
		writeError(w, err)
		return
	}
	res, ok := s.engine.cachedResult(req.Hash, opts)
	if !ok {
		writeJSON(w, http.StatusOK, CacheProbeResponse{})
		return
	}
	s.counters.peerServed.Add(1)
	writeJSON(w, http.StatusOK, CacheProbeResponse{Found: true, Result: res})
}

// cachedResult looks a (hash, normalized options) pair up in the result
// cache without counting a hit or miss — the probe answers on behalf of
// a peer's solve, not a local one.
func (e *Engine) cachedResult(hash string, opts SolveOptions) (*SolveResult, bool) {
	v, ok := e.cache.Get(hash + "|" + opts.key())
	if !ok {
		return nil, false
	}
	out := *v.(*SolveResult)
	return &out, true
}

// peerSet holds the probe clients for the configured peers. Built once
// at server construction; the probe clients carry no retry policy (a
// probe is an optimization — on any fault the solve just runs locally)
// and every probe is bounded by Config.PeerTimeout.
type peerSet struct {
	urls    []string
	clients []*Client
	timeout time.Duration
}

// setupPeers filters SelfURL out of cfg.Peers and builds one probe
// client per remaining peer, wiring the engine's peer-probe hook when
// PeerCache is on.
func (s *Server) setupPeers() {
	var urls []string
	for _, u := range s.cfg.Peers {
		if u != "" && u != s.cfg.SelfURL {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return
	}
	ps := &peerSet{urls: urls, timeout: s.cfg.PeerTimeout}
	for _, u := range urls {
		ps.clients = append(ps.clients, NewClient(u, nil))
	}
	s.peers = ps
	if s.cfg.PeerCache {
		s.engine.peerProbe = s.probePeers
	}
}

// probePeers asks each peer in turn whether it already solved (hash,
// opts), returning the first cached result found. Sequential on purpose:
// the common case is a small cluster where the owner answers first, and
// a fan-out would multiply probe load quadratically under a cache-miss
// storm. Every per-peer error is swallowed — a probe can only save work,
// never fail the solve.
func (s *Server) probePeers(ctx context.Context, hash string, opts SolveOptions) (*SolveResult, bool) {
	for _, pc := range s.peers.clients {
		s.counters.peerProbes.Add(1)
		pctx, cancel := context.WithTimeout(ctx, s.peers.timeout)
		var resp CacheProbeResponse
		err := pc.do(pctx, http.MethodPost, "/v1/cache/probe",
			CacheProbeRequest{Hash: hash, Options: opts}, &resp)
		cancel()
		if err != nil || !resp.Found || resp.Result == nil {
			continue
		}
		s.counters.peerHits.Add(1)
		return resp.Result, true
	}
	return nil, false
}

// clusterStats fans the plain /statz request out to every peer and
// merges the snapshots into the cluster-wide view. Peers are asked for
// plain /statz (never ?cluster=1), so two replicas gossiping about each
// other cannot recurse. Unreachable peers degrade to an entry in Errors
// rather than failing the request.
func (s *Server) clusterStats(ctx context.Context) ClusterStats {
	self := s.cfg.SelfURL
	if self == "" {
		self = "self"
	}
	out := ClusterStats{Self: self, Replicas: map[string]Stats{self: s.Stats()}}
	if s.peers != nil {
		type fetched struct {
			url string
			st  Stats
			err error
		}
		results := make(chan fetched, len(s.peers.clients))
		for i, pc := range s.peers.clients {
			go func(url string, pc *Client) {
				pctx, cancel := context.WithTimeout(ctx, s.peers.timeout)
				defer cancel()
				st, err := pc.Stats(pctx)
				results <- fetched{url: url, st: st, err: err}
			}(s.peers.urls[i], pc)
		}
		for range s.peers.clients {
			f := <-results
			if f.err != nil {
				if out.Errors == nil {
					out.Errors = map[string]string{}
				}
				out.Errors[f.url] = f.err.Error()
				continue
			}
			out.Replicas[f.url] = f.st
		}
	}
	for _, st := range out.Replicas {
		out.Totals.Replicas++
		out.Totals.Instances += st.Instances
		out.Totals.SolvesTotal += st.SolvesTotal
		out.Totals.CacheHits += st.CacheHits
		out.Totals.CacheMisses += st.CacheMisses
		out.Totals.PeerProbes += st.PeerProbes
		out.Totals.PeerHits += st.PeerHits
		out.Totals.PeerServed += st.PeerServed
		out.Totals.SessionsOpen += st.SessionsOpen
		out.Totals.SessionEvents += st.SessionEvents
		out.Totals.SessionEpochs += st.SessionEpochs
		out.Totals.Sheds += st.Sheds
	}
	return out
}
