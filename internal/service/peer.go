package service

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// This file is the server half of netplaced clustering (see
// docs/cluster.md): the peer solve-cache probe endpoint, the outgoing
// probe path the engine consults before running a solver, and the
// cluster-wide /statz merge. The routing halves — consistent-hash ring,
// ShardedClient, stateless proxy — live in internal/cluster, which
// builds on this package.

// HeaderForwarded is the proxy hop guard: a replica forwarding a request
// it does not own sets it, and a replica receiving it serves locally no
// matter what the ring says — so a stale ring or a membership
// disagreement degrades to one extra hop, never a forwarding loop.
const HeaderForwarded = "X-Netplace-Forwarded"

// CacheProbeRequest is the body of POST /v1/cache/probe: a peer asking
// whether this replica has already solved (hash, options). Hash is the
// instance content hash (InstanceInfo.Hash), not the registry id, so a
// replica can answer even when it registered the instance under a label.
type CacheProbeRequest struct {
	Hash    string       `json:"hash"`
	Options SolveOptions `json:"options,omitzero"`
}

// CacheProbeResponse is the probe answer. Found is false when this
// replica has no cached result for the key; Result is set iff Found.
type CacheProbeResponse struct {
	Found  bool         `json:"found"`
	Result *SolveResult `json:"result,omitempty"`
}

// handleCacheProbe is POST /v1/cache/probe: answer a peer's solve-cache
// probe straight from the result cache. It never solves, never blocks on
// the worker pool, and never probes further peers — the caller is a
// singleflight leader on its own replica, so anything but a map lookup
// here would cascade load instead of collapsing it.
func (s *Server) handleCacheProbe(w http.ResponseWriter, r *http.Request) {
	var req CacheProbeRequest
	if err := decodeBody(w, r, s.cfg.MaxUploadBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	opts, err := req.Options.normalize()
	if err != nil {
		writeError(w, err)
		return
	}
	res, ok := s.engine.cachedResult(req.Hash, opts)
	if !ok {
		writeJSON(w, http.StatusOK, CacheProbeResponse{})
		return
	}
	s.counters.peerServed.Add(1)
	writeJSON(w, http.StatusOK, CacheProbeResponse{Found: true, Result: res})
}

// cachedResult looks a (hash, normalized options) pair up in the result
// cache without counting a hit or miss — the probe answers on behalf of
// a peer's solve, not a local one.
func (e *Engine) cachedResult(hash string, opts SolveOptions) (*SolveResult, bool) {
	v, ok := e.cache.Get(hash + "|" + opts.key())
	if !ok {
		return nil, false
	}
	out := *v.(*SolveResult)
	return &out, true
}

// peerSet holds the probe clients for the configured peers. Built at
// server construction and mutated only by drain-driven membership
// removal; the probe clients carry no retry policy (a probe is an
// optimization — on any fault the solve just runs locally) and every
// probe is bounded by Config.PeerTimeout.
type peerSet struct {
	timeout time.Duration

	mu      sync.Mutex
	urls    []string
	clients []*Client
}

// snapshot returns consistent copies of the peer URL and client lists.
func (ps *peerSet) snapshot() ([]string, []*Client) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	urls := make([]string, len(ps.urls))
	copy(urls, ps.urls)
	clients := make([]*Client, len(ps.clients))
	copy(clients, ps.clients)
	return urls, clients
}

// remove drops a peer from the set, reporting whether it was present.
func (ps *peerSet) remove(url string) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for i, u := range ps.urls {
		if u == url {
			ps.urls = append(ps.urls[:i], ps.urls[i+1:]...)
			ps.clients = append(ps.clients[:i], ps.clients[i+1:]...)
			return true
		}
	}
	return false
}

// len is the current peer count (the live /statz peers gauge).
func (ps *peerSet) len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.urls)
}

// setupPeers filters SelfURL out of cfg.Peers and builds one probe
// client per remaining peer, every client sharing the server's
// PeerHealth breakers; it wires the engine's peer-probe hook when
// PeerCache is on, builds the successor push client when SuccessorURL
// is set, and starts the background /readyz prober.
func (s *Server) setupPeers() {
	var urls []string
	for _, u := range s.cfg.Peers {
		if u != "" && u != s.cfg.SelfURL {
			urls = append(urls, u)
		}
	}
	succ := s.cfg.SuccessorURL
	if succ == s.cfg.SelfURL {
		succ = ""
	}
	if len(urls) == 0 && succ == "" {
		return
	}
	bcfg := BreakerConfig{Threshold: s.cfg.BreakerThreshold, Backoff: s.cfg.BreakerBackoff}
	s.health = NewPeerHealth(bcfg, urls...)
	ps := &peerSet{urls: urls, timeout: s.cfg.PeerTimeout}
	for _, u := range urls {
		pc := NewClient(u, nil)
		pc.SetBreaker(s.health.For(u))
		ps.clients = append(ps.clients, pc)
	}
	s.peers = ps
	if succ != "" {
		sc := NewClient(succ, nil)
		sc.SetBreaker(s.health.For(succ))
		s.successor = sc
		s.successorURL = succ
	}
	if s.cfg.PeerCache {
		s.engine.peerProbe = s.probePeers
	}
	if s.cfg.ProbeInterval > 0 {
		s.health.StartProber(s.cfg.ProbeInterval, s.cfg.PeerTimeout)
	}
}

// removePeer drops a peer from the probe set and its breaker from the
// health tracker — the service half of a cluster drain. Reports whether
// the peer was known.
func (s *Server) removePeer(url string) bool {
	if s.peers == nil {
		return false
	}
	ok := s.peers.remove(url)
	if s.health != nil {
		s.health.Remove(url)
	}
	return ok
}

// probeConcurrency bounds the parallel peer cache-probe fan-out: enough
// to hide one slow peer behind the others, small enough that a
// cache-miss storm cannot multiply probe load quadratically.
const probeConcurrency = 4

// probePeers asks the peers in parallel (bounded by probeConcurrency)
// whether one of them already solved (hash, opts), returning the first
// cached result found; the first hit cancels the remaining probes.
// Peers whose circuit breaker is not Ready are skipped outright — a
// down peer must cost nothing, not a timeout. Each launched probe keeps
// its own Config.PeerTimeout bound, and every per-peer error is
// swallowed: a probe can only save work, never fail the solve.
func (s *Server) probePeers(ctx context.Context, hash string, opts SolveOptions) (*SolveResult, bool) {
	urls, clients := s.peers.snapshot()
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan *SolveResult, len(clients))
	sem := make(chan struct{}, probeConcurrency)
	var wg sync.WaitGroup
	for i, pc := range clients {
		if !s.health.For(urls[i]).Ready() {
			continue
		}
		wg.Add(1)
		go func(pc *Client) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-pctx.Done():
				return
			}
			s.counters.peerProbes.Add(1)
			s.counters.peerProbeInflight.Add(1)
			defer s.counters.peerProbeInflight.Add(-1)
			cctx, ccancel := context.WithTimeout(pctx, s.peers.timeout)
			defer ccancel()
			var resp CacheProbeResponse
			err := pc.do(cctx, http.MethodPost, "/v1/cache/probe",
				CacheProbeRequest{Hash: hash, Options: opts}, &resp)
			if err != nil || !resp.Found || resp.Result == nil {
				return
			}
			select {
			case results <- resp.Result:
			default: // a hit already won; drop the duplicate
			}
		}(pc)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	res, ok := <-results
	if !ok {
		return nil, false
	}
	cancel() // first hit cancels the stragglers
	s.counters.peerHits.Add(1)
	return res, true
}

// clusterStats fans the plain /statz request out to every peer and
// merges the snapshots into the cluster-wide view. Peers are asked for
// plain /statz (never ?cluster=1), so two replicas gossiping about each
// other cannot recurse. Unreachable peers degrade to an entry in Errors
// rather than failing the request.
func (s *Server) clusterStats(ctx context.Context) ClusterStats {
	self := s.cfg.SelfURL
	if self == "" {
		self = "self"
	}
	out := ClusterStats{Self: self, Replicas: map[string]Stats{self: s.Stats()}}
	if s.peers != nil {
		urls, clients := s.peers.snapshot()
		type fetched struct {
			url string
			st  Stats
			err error
		}
		results := make(chan fetched, len(clients))
		for i, pc := range clients {
			go func(url string, pc *Client) {
				pctx, cancel := context.WithTimeout(ctx, s.peers.timeout)
				defer cancel()
				st, err := pc.Stats(pctx)
				results <- fetched{url: url, st: st, err: err}
			}(urls[i], pc)
		}
		for range clients {
			f := <-results
			if f.err != nil {
				if out.Errors == nil {
					out.Errors = map[string]string{}
				}
				out.Errors[f.url] = f.err.Error()
				continue
			}
			out.Replicas[f.url] = f.st
		}
	}
	for _, st := range out.Replicas {
		out.Totals.Replicas++
		out.Totals.Instances += st.Instances
		out.Totals.SolvesTotal += st.SolvesTotal
		out.Totals.CacheHits += st.CacheHits
		out.Totals.CacheMisses += st.CacheMisses
		out.Totals.PeerProbes += st.PeerProbes
		out.Totals.PeerHits += st.PeerHits
		out.Totals.PeerServed += st.PeerServed
		out.Totals.SessionsOpen += st.SessionsOpen
		out.Totals.SessionEvents += st.SessionEvents
		out.Totals.SessionEpochs += st.SessionEpochs
		out.Totals.Sheds += st.Sheds
	}
	return out
}
