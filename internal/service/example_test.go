package service_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"netplace/internal/core"
	"netplace/internal/graph"
	"netplace/internal/service"
)

// Example walks the full client flow against an in-process server: upload
// an instance once, solve it, price the returned placement, replay it in
// the message-level simulator, and watch a repeated solve hit the cache.
func Example() {
	// In production the server runs as cmd/netplaced; here it is mounted on
	// an httptest listener.
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := service.NewClient(ts.URL, nil)
	ctx := context.Background()

	// A two-site network: cheap LAN edges around nodes 0 and 3, one
	// expensive WAN link between the sites.
	g := graph.New(6)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 2, 0.5)
	g.AddEdge(0, 3, 8) // WAN
	g.AddEdge(3, 4, 0.5)
	g.AddEdge(3, 5, 0.5)
	in, err := core.NewInstance(g, []float64{2, 2, 2, 2, 2, 2}, []core.Object{{
		Name:   "doc",
		Reads:  []int64{4, 6, 5, 2, 7, 6},
		Writes: []int64{0, 1, 0, 0, 1, 0},
	}})
	if err != nil {
		panic(err)
	}

	up, err := c.Upload(ctx, "two-sites", in)
	if err != nil {
		panic(err)
	}
	fmt.Println("uploaded:", up.Nodes, "nodes")

	res, err := c.Solve(ctx, up.ID, service.SolveOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("solved: copies %v, total %.1f\n", res.Placement.Copies["doc"], res.Breakdown.Total)

	cost, err := c.Cost(ctx, up.ID, res.Placement)
	if err != nil {
		panic(err)
	}
	sim, err := c.Simulate(ctx, up.ID, res.Placement)
	if err != nil {
		panic(err)
	}
	fmt.Printf("priced %.1f, simulated %.1f\n", cost.Total, sim.Total)

	again, err := c.Solve(ctx, up.ID, service.SolveOptions{})
	if err != nil {
		panic(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("repeat cached: %v (hit rate %.2f)\n", again.Cached, st.CacheHitRate)
	// Output:
	// uploaded: 6 nodes
	// solved: copies [0 1 2 4 5], total 32.0
	// priced 32.0, simulated 32.0
	// repeat cached: true (hit rate 0.50)
}

// ExampleSession shows the client side of a streaming adaptive session:
// open a session over a resident instance, stream request events as they
// happen, and watch the server re-place copies at epoch boundaries —
// first toward one site's read traffic, then, as demand drifts, toward
// the other.
func ExampleSession() {
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := service.NewClient(ts.URL, nil)
	ctx := context.Background()

	// The same two-site network as the package example; the frequency
	// tables are irrelevant to a session (it learns demand from events).
	g := graph.New(6)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 2, 0.5)
	g.AddEdge(0, 3, 8) // WAN
	g.AddEdge(3, 4, 0.5)
	g.AddEdge(3, 5, 0.5)
	in, err := core.NewInstance(g, []float64{2, 2, 2, 2, 2, 2}, []core.Object{{
		Name:   "doc",
		Reads:  []int64{1, 1, 1, 1, 1, 1},
		Writes: []int64{0, 0, 0, 0, 0, 0},
	}})
	if err != nil {
		panic(err)
	}
	up, err := c.Upload(ctx, "two-sites", in)
	if err != nil {
		panic(err)
	}

	// One epoch per 16 events; a one-epoch window keeps the example's
	// estimates easy to follow.
	sess, err := c.OpenSession(ctx, up.ID, service.SessionConfig{Epoch: 16, Window: 1})
	if err != nil {
		panic(err)
	}

	// Site A (nodes 0–2) reads the document: the epoch close places the
	// copy on site A.
	_, err = c.SessionEvents(ctx, sess.SessionID, []service.SessionEvent{
		{Obj: "doc", Node: 1, Count: 8},
		{Obj: "doc", Node: 2, Count: 8},
	})
	if err != nil {
		panic(err)
	}
	pl, err := c.SessionPlacement(ctx, sess.SessionID)
	if err != nil {
		panic(err)
	}
	fmt.Println("after site-A epoch:", pl.Placement.Copies["doc"])

	// Demand drifts to site B (nodes 3–5): the next epoch moves it.
	_, err = c.SessionEvents(ctx, sess.SessionID, []service.SessionEvent{
		{Obj: "doc", Node: 4, Count: 8},
		{Obj: "doc", Node: 5, Count: 8},
	})
	if err != nil {
		panic(err)
	}
	pl, err = c.SessionPlacement(ctx, sess.SessionID)
	if err != nil {
		panic(err)
	}
	fmt.Println("after site-B epoch:", pl.Placement.Copies["doc"])
	fmt.Println("epochs:", pl.Stats.Epochs, "moves:", pl.Stats.Moves)

	if err := c.CloseSession(ctx, sess.SessionID); err != nil {
		panic(err)
	}
	// Output:
	// after site-A epoch: [1 2]
	// after site-B epoch: [4 5]
	// epochs: 2 moves: 2
}
