package service_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"netplace/internal/core"
	"netplace/internal/graph"
	"netplace/internal/service"
)

// Example walks the full client flow against an in-process server: upload
// an instance once, solve it, price the returned placement, replay it in
// the message-level simulator, and watch a repeated solve hit the cache.
func Example() {
	// In production the server runs as cmd/netplaced; here it is mounted on
	// an httptest listener.
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := service.NewClient(ts.URL, nil)
	ctx := context.Background()

	// A two-site network: cheap LAN edges around nodes 0 and 3, one
	// expensive WAN link between the sites.
	g := graph.New(6)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 2, 0.5)
	g.AddEdge(0, 3, 8) // WAN
	g.AddEdge(3, 4, 0.5)
	g.AddEdge(3, 5, 0.5)
	in, err := core.NewInstance(g, []float64{2, 2, 2, 2, 2, 2}, []core.Object{{
		Name:   "doc",
		Reads:  []int64{4, 6, 5, 2, 7, 6},
		Writes: []int64{0, 1, 0, 0, 1, 0},
	}})
	if err != nil {
		panic(err)
	}

	up, err := c.Upload(ctx, "two-sites", in)
	if err != nil {
		panic(err)
	}
	fmt.Println("uploaded:", up.Nodes, "nodes")

	res, err := c.Solve(ctx, up.ID, service.SolveOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("solved: copies %v, total %.1f\n", res.Placement.Copies["doc"], res.Breakdown.Total)

	cost, err := c.Cost(ctx, up.ID, res.Placement)
	if err != nil {
		panic(err)
	}
	sim, err := c.Simulate(ctx, up.ID, res.Placement)
	if err != nil {
		panic(err)
	}
	fmt.Printf("priced %.1f, simulated %.1f\n", cost.Total, sim.Total)

	again, err := c.Solve(ctx, up.ID, service.SolveOptions{})
	if err != nil {
		panic(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("repeat cached: %v (hit rate %.2f)\n", again.Cached, st.CacheHitRate)
	// Output:
	// uploaded: 6 nodes
	// solved: copies [0 1 2 4 5], total 32.0
	// priced 32.0, simulated 32.0
	// repeat cached: true (hit rate 0.50)
}
