package tree

import (
	"math"
	"sort"
)

// imTuple is an import placement: the nearest copy inside the subtree sits
// at distance d from the subtree root and the placement's cost contribution
// is C; a parent routing R requests into the subtree adds R * d. These are
// the paper's I_R_v / J_R_v families reparameterised by copy distance — the
// view Claim 15 itself adopts (one optimal placement per distance value).
type imTuple struct {
	C, d float64
	emit func(out *[]int)
}

// tables is the sufficient set of one (binarised) subtree.
type tables struct {
	i0  []imTuple // no copy outside the subtree exists (paper's I family)
	i1  []imTuple // a copy exists outside (paper's J family)
	exp envelope  // export placements over outside distance D (E_D family)
	// the empty placement (paper's E_v): no copy inside.
	emptyC float64 // read+write path mass to the subtree root
	emptyR float64 // number of reads exiting
	wSub   float64 // total writes inside the subtree
}

// dpState carries per-object solve context.
type dpState struct {
	t       *Tree
	storage []float64
	reads   []int64
	writes  []int64
	W       float64 // global write count
	tab     []tables
}

// Solve computes an optimal placement of a single object with the given
// read/write frequencies on the tree, returning the copy set (original node
// ids, ascending) and the optimal total cost in the Section 3 model
// (reads to nearest copy, a write at v pays the minimal subtree spanning
// the copies and v, storage fees per copy).
func (t *Tree) Solve(storage []float64, reads, writes []int64) ([]int, float64) {
	n := t.G.N()
	if len(storage) != n || len(reads) != n || len(writes) != n {
		panic("tree: Solve input length mismatch")
	}
	var W float64
	for _, w := range writes {
		W += float64(w)
	}
	st := &dpState{t: t, storage: storage, reads: reads, writes: writes, W: W,
		tab: make([]tables, t.BN)}
	// children-first: bin ids are parent-before-child, so reverse order.
	for i := t.BN - 1; i >= 0; i-- {
		st.combine(i)
	}
	root := st.tab[0]
	best := math.Inf(1)
	var bestEmit func(out *[]int)
	for _, tp := range root.i0 {
		if tp.C < best {
			best = tp.C
			bestEmit = tp.emit
		}
	}
	if bestEmit == nil {
		panic("tree: no feasible placement (no storable node)")
	}
	var copies []int
	bestEmit(&copies)
	sort.Ints(copies)
	copies = dedupInts(copies)
	return copies, best
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// node attribute helpers (virtual nodes carry no requests, no storage).

func (st *dpState) fr(b int) float64 {
	if o := st.t.orig[b]; o >= 0 {
		return float64(st.reads[o])
	}
	return 0
}

func (st *dpState) fw(b int) float64 {
	if o := st.t.orig[b]; o >= 0 {
		return float64(st.writes[o])
	}
	return 0
}

func (st *dpState) storable(b int) bool { return st.t.orig[b] >= 0 }

func (st *dpState) cs(b int) float64 {
	if o := st.t.orig[b]; o >= 0 {
		return st.storage[o]
	}
	return math.Inf(1)
}

// topOff prices child c's subtree when every request reaching c's root
// continues to a copy at distance dc from c's root that lies outside c's
// subtree (either the parent's copy, a sibling's, or beyond): the child is
// in export-or-empty mode. Returns the cost contribution including the
// parent edge's write traffic, and an emit for the chosen child placement.
func (st *dpState) topOff(c int, dc float64) (float64, func(out *[]int)) {
	wc := st.t.pw[c]
	tc := &st.tab[c]
	// empty child: reads exit paying dc beyond c's root; writes cross the
	// parent edge only (they stop at the first point of the copy span,
	// which is at or above the parent).
	bestC := tc.emptyC + tc.emptyR*dc + tc.wSub*wc
	var bestEmit func(out *[]int)
	if len(tc.exp) > 0 {
		ln, v := tc.exp.evalAt(dc)
		// non-empty child: the parent edge straddles the copy split.
		if cand := v + st.W*wc; cand < bestC {
			bestC = cand
			bestEmit = func(out *[]int) { ln.emit(dc, out) }
		}
	}
	return bestC, bestEmit
}

// combine builds the tables of bin node b from its children's tables.
func (st *dpState) combine(b int) {
	t := st.t
	kids := t.children[b]
	tb := &st.tab[b]

	// Empty placement.
	tb.emptyC = 0
	tb.emptyR = st.fr(b)
	tb.wSub = st.fw(b)
	for _, c := range kids {
		tc := &st.tab[c]
		wc := t.pw[c]
		tb.emptyC += tc.emptyC + (tc.emptyR+tc.wSub)*wc
		tb.emptyR += tc.emptyR
		tb.wSub += tc.wSub
	}

	// --- Import tuples ---
	var i0, i1 []imTuple

	// Option A: copy at b itself (shared by I0 and I1).
	if st.storable(b) {
		C := st.cs(b)
		emits := make([]func(out *[]int), 0, len(kids)+1)
		o := t.orig[b]
		emits = append(emits, func(out *[]int) { *out = append(*out, o) })
		ok := true
		for _, c := range kids {
			cost, em := st.topOff(c, t.pw[c])
			if math.IsInf(cost, 1) {
				ok = false
				break
			}
			C += cost
			if em != nil {
				emits = append(emits, em)
			}
		}
		if ok {
			tp := imTuple{C: C, d: 0, emit: emitAll(emits)}
			i0 = append(i0, tp)
			i1 = append(i1, tp)
		}
	}

	// Options B/C: the nearest copy lives in child X; sibling Y (if any)
	// is in export-or-empty mode pointing at that copy.
	for xi, X := range kids {
		var Y = -1
		if len(kids) == 2 {
			Y = kids[1-xi]
		}
		wX := t.pw[X]
		tX := &st.tab[X]

		// I1 tuples (a copy exists outside Tv, so edge (b, X) straddles).
		for _, tp := range tX.i1 {
			d := wX + tp.d
			C := tp.C + st.W*wX + st.fr(b)*d
			emits := []func(out *[]int){tp.emit}
			if Y >= 0 {
				cost, em := st.topOff(Y, t.pw[Y]+d)
				if math.IsInf(cost, 1) {
					continue
				}
				C += cost
				if em != nil {
					emits = append(emits, em)
				}
			}
			i1 = append(i1, imTuple{C: C, d: d, emit: emitAll(emits)})
		}

		// I0 tuples (no copy outside Tv).
		// (i) sibling holds copies too: X sees copies outside itself, the
		// split straddles both edges.
		if Y >= 0 && len(st.tab[Y].exp) > 0 {
			wY := t.pw[Y]
			tY := &st.tab[Y]
			for _, tp := range tX.i1 {
				d := wX + tp.d
				ln, v := tY.exp.evalAt(wY + d)
				C := tp.C + st.W*wX + st.fr(b)*d + v + st.W*wY
				dcY := wY + d
				lnc := ln
				i0 = append(i0, imTuple{C: C, d: d, emit: emitAll([]func(out *[]int){
					tp.emit,
					func(out *[]int) { lnc.emit(dcY, out) },
				})})
			}
		}
		// (ii) sibling empty (or absent): all copies live inside X; edge
		// (b, X) carries the W - W_below(X) writes coming from above.
		for _, tp := range tX.i0 {
			d := wX + tp.d
			C := tp.C + (st.W-tX.wSub)*wX + st.fr(b)*d
			if Y >= 0 {
				tY := &st.tab[Y]
				wY := t.pw[Y]
				C += tY.emptyC + tY.emptyR*(wY+d) + tY.wSub*wY
			}
			i0 = append(i0, imTuple{C: C, d: d, emit: tp.emit})
		}
	}

	tb.i0 = paretoTuples(i0)
	tb.i1 = paretoTuples(i1)

	// --- Export envelope ---
	var components []envelope
	// (a) self-contained: the best I1 placement serves everything inside.
	if len(tb.i1) > 0 {
		best := tb.i1[0]
		for _, tp := range tb.i1[1:] {
			if tp.C < best.C {
				best = tp
			}
		}
		be := best.emit
		components = append(components, lineEnv(expLine{
			C: best.C, nR: 0,
			emit: func(_ float64, out *[]int) { be(out) },
		}))
	}
	// (b) exporting: every request reaching b leaves the subtree; each
	// child is independently in export-or-empty mode, at least one child
	// non-empty (the all-empty case is the Empty placement, kept separate).
	switch len(kids) {
	case 1:
		c := kids[0]
		if e := envShift(st.tab[c].exp, t.pw[c], st.W*t.pw[c]); len(e) > 0 {
			components = append(components, envAddSlope(e, st.fr(b)))
		}
	case 2:
		c1, c2 := kids[0], kids[1]
		e1 := envShift(st.tab[c1].exp, t.pw[c1], st.W*t.pw[c1])
		e2 := envShift(st.tab[c2].exp, t.pw[c2], st.W*t.pw[c2])
		l1 := lineEnv(st.emptyLineAtParent(c1))
		l2 := lineEnv(st.emptyLineAtParent(c2))
		var combo envelope
		if len(e1) > 0 && len(e2) > 0 {
			combo = envMin(combo, envSum(e1, e2))
		}
		if len(e1) > 0 {
			combo = envMin(combo, envSum(e1, l2))
		}
		if len(e2) > 0 {
			combo = envMin(combo, envSum(l1, e2))
		}
		if len(combo) > 0 {
			components = append(components, envAddSlope(combo, st.fr(b)))
		}
	}
	var exp envelope
	for _, comp := range components {
		exp = envMin(exp, comp)
	}
	tb.exp = exp
}

// emptyLineAtParent prices child c's empty placement as a line over the
// parent-scale distance D: exiting reads pay the child edge plus D; the
// child's writes pay the child edge and stop (the copy span passes through
// the parent in every export context).
func (st *dpState) emptyLineAtParent(c int) expLine {
	tc := &st.tab[c]
	wc := st.t.pw[c]
	return expLine{
		C:    tc.emptyC + tc.emptyR*wc + tc.wSub*wc,
		nR:   tc.emptyR,
		emit: func(_ float64, _ *[]int) {},
	}
}

func emitAll(fns []func(out *[]int)) func(out *[]int) {
	return func(out *[]int) {
		for _, f := range fns {
			if f != nil {
				f(out)
			}
		}
	}
}

// paretoTuples sorts import tuples by distance and removes dominated ones
// (same or larger distance with same or larger cost); the survivors have
// strictly increasing d and strictly decreasing C.
func paretoTuples(ts []imTuple) []imTuple {
	if len(ts) == 0 {
		return nil
	}
	sort.SliceStable(ts, func(a, b int) bool {
		if ts[a].d != ts[b].d {
			return ts[a].d < ts[b].d
		}
		return ts[a].C < ts[b].C
	})
	out := ts[:0]
	for _, tp := range ts {
		if len(out) == 0 || tp.C < out[len(out)-1].C {
			if len(out) > 0 && tp.d == out[len(out)-1].d {
				continue // same distance, larger C already filtered by sort
			}
			out = append(out, tp)
		}
	}
	return out
}
