package tree

import (
	"math"
	"math/rand"
	"testing"

	"netplace/internal/gen"
	"netplace/internal/graph"
)

// randomInstance builds a random tree with random integer-ish weights,
// storage fees, and frequencies. Integer-valued floats keep envelope
// arithmetic exact so brute-force comparisons can use tight tolerances.
func randomInstance(rng *rand.Rand, n int, maxF int64, writeP float64) (*graph.Graph, []float64, []int64, []int64) {
	w := func(u, v int) float64 { return float64(1 + rng.Intn(9)) }
	var g *graph.Graph
	switch rng.Intn(4) {
	case 0:
		g = gen.Path(n, w)
	case 1:
		g = gen.Star(n, w)
	case 2:
		g = gen.KaryTree(n, 1+rng.Intn(3), w)
	default:
		g = gen.RandomTree(n, rng, w)
	}
	storage := make([]float64, n)
	reads := make([]int64, n)
	writes := make([]int64, n)
	for v := 0; v < n; v++ {
		storage[v] = float64(rng.Intn(40))
		if rng.Float64() < 0.8 {
			reads[v] = rng.Int63n(maxF)
		}
		if rng.Float64() < writeP {
			writes[v] = rng.Int63n(maxF)
		}
	}
	return g, storage, reads, writes
}

func solveAndCheck(t *testing.T, g *graph.Graph, storage []float64, reads, writes []int64, seed int64) {
	t.Helper()
	tr := Build(g, 0)
	if err := tr.Validate(); err != nil {
		t.Fatalf("seed %d: invalid binarisation: %v", seed, err)
	}
	copies, got := tr.Solve(storage, reads, writes)
	if len(copies) == 0 {
		t.Fatalf("seed %d: empty placement", seed)
	}
	// The DP's claimed cost must match an independent evaluation of the
	// placement it reconstructs ...
	eval := ObjectCost(g, storage, reads, writes, copies)
	if !close(eval, got, 1e-6) {
		t.Fatalf("seed %d: DP cost %v but reconstructed placement costs %v (copies %v)", seed, got, eval, copies)
	}
	// ... and must equal the brute-force optimum.
	_, want := BruteForce(g, storage, reads, writes)
	if !close(got, want, 1e-6) {
		t.Fatalf("seed %d: DP cost %v, brute force %v (copies %v)", seed, got, want, copies)
	}
}

func close(a, b, eps float64) bool {
	d := math.Abs(a - b)
	return d <= eps || d <= eps*math.Max(math.Abs(a), math.Abs(b))
}

func TestSolveMatchesBruteForceReadOnly(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		g, storage, reads, writes := randomInstance(rng, n, 12, 0)
		_ = writes
		solveAndCheck(t, g, storage, reads, make([]int64, n), seed)
	}
}

func TestSolveMatchesBruteForceGeneral(t *testing.T) {
	for seed := int64(1000); seed < 1150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		g, storage, reads, writes := randomInstance(rng, n, 12, 0.6)
		solveAndCheck(t, g, storage, reads, writes, seed)
	}
}

func TestSolveMatchesBruteForceWriteHeavy(t *testing.T) {
	for seed := int64(2000); seed < 2100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g, storage, reads, writes := randomInstance(rng, n, 20, 1.0)
		for v := range reads {
			reads[v] = 0 // pure-write instances
		}
		solveAndCheck(t, g, storage, reads, writes, seed)
	}
}

func TestSolveSingleNode(t *testing.T) {
	g := graph.New(1)
	copies, cost := Build(g, 0).Solve([]float64{7}, []int64{5}, []int64{3})
	if len(copies) != 1 || copies[0] != 0 {
		t.Fatalf("copies = %v", copies)
	}
	if cost != 7 {
		t.Fatalf("cost = %v, want 7 (storage only)", cost)
	}
}

func TestSolveZeroRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.RandomTree(9, rng, gen.UnitWeights)
	storage := []float64{5, 3, 9, 1, 4, 8, 2, 6, 7}
	copies, cost := Build(g, 0).Solve(storage, make([]int64, 9), make([]int64, 9))
	if cost != 1 {
		t.Fatalf("cost = %v, want cheapest storage 1", cost)
	}
	if len(copies) != 1 || copies[0] != 3 {
		t.Fatalf("copies = %v, want [3]", copies)
	}
}

func TestEdgeLocalWriteAccountingMatchesSteiner(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g, storage, reads, writes := randomInstance(rng, n, 15, 0.8)
		// random non-empty copy set
		k := 1 + rng.Intn(n)
		perm := rng.Perm(n)[:k]
		a := ObjectCost(g, storage, reads, writes, perm)
		b := ObjectCostSteiner(g, storage, reads, writes, perm)
		if !close(a, b, 1e-9) {
			t.Fatalf("seed %d: edge-local %v != steiner %v (copies %v)", seed, a, b, perm)
		}
	}
}

func TestBinarisationShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.Star(50, gen.UniformWeights(rng, 1, 2))
	tr := Build(g, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.BN < 50 {
		t.Fatalf("binarised node count %d < original 50", tr.BN)
	}
	// Balanced gadget: depth of the binarised star should be O(log 49).
	depth := make([]int, tr.BN)
	maxDepth := 0
	for b := 1; b < tr.BN; b++ {
		depth[b] = depth[tr.parent[b]] + 1
		if depth[b] > maxDepth {
			maxDepth = depth[b]
		}
	}
	if maxDepth > 10 {
		t.Fatalf("binarised star depth %d, want O(log n)", maxDepth)
	}
}

func TestSolveWithZeroWeightEdges(t *testing.T) {
	// Zero-cost edges create massive distance ties — the worst case for
	// envelope breakpoint handling. Cross-check against brute force.
	for seed := int64(5000); seed < 5080; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := graph.New(n)
		for v := 1; v < n; v++ {
			w := float64(rng.Intn(3)) // weight 0, 1 or 2
			g.AddEdge(rng.Intn(v), v, w)
		}
		storage := make([]float64, n)
		reads := make([]int64, n)
		writes := make([]int64, n)
		for v := 0; v < n; v++ {
			storage[v] = float64(rng.Intn(10))
			reads[v] = rng.Int63n(6)
			writes[v] = rng.Int63n(4)
		}
		solveAndCheck(t, g, storage, reads, writes, seed)
	}
}

func TestSolveWithIdenticalStorage(t *testing.T) {
	// All-equal storage fees and unit edges: heavy cost ties everywhere.
	for seed := int64(6000); seed < 6060; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(9)
		g := gen.RandomTree(n, rng, gen.UnitWeights)
		storage := make([]float64, n)
		reads := make([]int64, n)
		writes := make([]int64, n)
		for v := 0; v < n; v++ {
			storage[v] = 3
			reads[v] = rng.Int63n(4)
			writes[v] = rng.Int63n(3)
		}
		solveAndCheck(t, g, storage, reads, writes, seed)
	}
}

func TestSolveHugeFrequencies(t *testing.T) {
	// Large int64 frequencies must not lose precision in float envelopes.
	rng := rand.New(rand.NewSource(77))
	n := 8
	g := gen.RandomTree(n, rng, gen.UniformWeights(rng, 1, 4))
	storage := make([]float64, n)
	reads := make([]int64, n)
	writes := make([]int64, n)
	for v := 0; v < n; v++ {
		storage[v] = 1e6 * rng.Float64()
		reads[v] = rng.Int63n(1 << 30)
		writes[v] = rng.Int63n(1 << 20)
	}
	tr := Build(g, 0)
	copies, got := tr.Solve(storage, reads, writes)
	eval := ObjectCost(g, storage, reads, writes, copies)
	if !close(eval, got, 1e-9) {
		t.Fatalf("DP %v vs evaluated %v", got, eval)
	}
	_, want := BruteForce(g, storage, reads, writes)
	if !close(got, want, 1e-9) {
		t.Fatalf("DP %v vs brute force %v", got, want)
	}
}
