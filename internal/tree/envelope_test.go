package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveEval evaluates a raw line set at D.
func naiveEval(lines []expLine, D float64) float64 {
	best := math.Inf(1)
	for _, l := range lines {
		if v := l.C + l.nR*D; v < best {
			best = v
		}
	}
	return best
}

func randomLines(rng *rand.Rand, k int) []expLine {
	lines := make([]expLine, k)
	for i := range lines {
		lines[i] = expLine{
			C:    float64(rng.Intn(200)),
			nR:   float64(rng.Intn(20)),
			emit: func(float64, *[]int) {},
		}
	}
	return lines
}

var sampleDs = []float64{0, 0.25, 0.5, 1, 2, 3.75, 5, 8, 13, 21, 100, 1e4}

func TestEnvFromLinesMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lines := randomLines(rng, 1+rng.Intn(12))
		env := envFromLines(append([]expLine(nil), lines...))
		for _, D := range sampleDs {
			_, got := env.evalAt(D)
			want := naiveEval(lines, D)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: env(%v) = %v, want %v", seed, D, got, want)
			}
		}
	}
}

func TestEnvelopeInvariants(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := envFromLines(randomLines(rng, 1+rng.Intn(15)))
		if len(env) == 0 {
			return false
		}
		if env[0].from != 0 {
			return false
		}
		for i := 1; i < len(env); i++ {
			// froms strictly increasing, slopes strictly decreasing
			if env[i].from <= env[i-1].from {
				return false
			}
			if env[i].ln.nR >= env[i-1].ln.nR {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvSumMatchesPointwiseSum(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		la := randomLines(rng, 1+rng.Intn(8))
		lb := randomLines(rng, 1+rng.Intn(8))
		a := envFromLines(append([]expLine(nil), la...))
		b := envFromLines(append([]expLine(nil), lb...))
		sum := envSum(a, b)
		for _, D := range sampleDs {
			_, got := sum.evalAt(D)
			want := naiveEval(la, D) + naiveEval(lb, D)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: sum(%v) = %v, want %v", seed, D, got, want)
			}
		}
	}
}

func TestEnvMinMatchesPointwiseMin(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		la := randomLines(rng, 1+rng.Intn(8))
		lb := randomLines(rng, 1+rng.Intn(8))
		a := envFromLines(append([]expLine(nil), la...))
		b := envFromLines(append([]expLine(nil), lb...))
		m := envMin(a, b)
		for _, D := range sampleDs {
			_, got := m.evalAt(D)
			want := math.Min(naiveEval(la, D), naiveEval(lb, D))
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: min(%v) = %v, want %v", seed, D, got, want)
			}
		}
	}
}

func TestEnvShiftReparameterises(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lines := randomLines(rng, 1+rng.Intn(8))
		env := envFromLines(append([]expLine(nil), lines...))
		w := float64(rng.Intn(10))
		extra := float64(rng.Intn(50))
		shifted := envShift(env, w, extra)
		for _, D := range sampleDs {
			_, got := shifted.evalAt(D)
			want := naiveEval(lines, D+w) + extra
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: shift(%v) = %v, want %v (w=%v extra=%v)", seed, D, got, want, w, extra)
			}
		}
	}
}

func TestEnvAddSlope(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lines := randomLines(rng, 1+rng.Intn(8))
		env := envFromLines(append([]expLine(nil), lines...))
		s := float64(rng.Intn(9))
		bumped := envAddSlope(env, s)
		for _, D := range sampleDs {
			_, got := bumped.evalAt(D)
			want := naiveEval(lines, D) + s*D
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("seed %d: addSlope(%v) = %v, want %v", seed, D, got, want)
			}
		}
	}
}

func TestEnvMinWithEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	env := envFromLines(randomLines(rng, 4))
	if got := envMin(nil, env); len(got) != len(env) {
		t.Fatal("min with empty lost the envelope")
	}
	if got := envMin(env, nil); len(got) != len(env) {
		t.Fatal("min with empty lost the envelope (right)")
	}
	if got := envMin(nil, nil); got != nil {
		t.Fatal("min of empties not empty")
	}
	if _, v := envelope(nil).evalAt(3); !math.IsInf(v, 1) {
		t.Fatal("empty envelope must evaluate to +Inf")
	}
}

func TestParetoTuplesDomination(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(20)
		in := make([]imTuple, k)
		for i := range in {
			in[i] = imTuple{C: float64(rng.Intn(50)), d: float64(rng.Intn(20)), emit: func(*[]int) {}}
		}
		out := paretoTuples(append([]imTuple(nil), in...))
		// survivors: strictly increasing d, strictly decreasing C
		for i := 1; i < len(out); i++ {
			if out[i].d <= out[i-1].d || out[i].C >= out[i-1].C {
				return false
			}
		}
		// every input tuple is dominated by (or equal to) some survivor
		for _, tp := range in {
			ok := false
			for _, s := range out {
				if s.d <= tp.d && s.C <= tp.C {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The DP's answer must not depend on the root chosen for the traversal.
func TestSolveRootInvariance(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g, storage, reads, writes := randomInstance(rng, n, 10, 0.5)
		_, want := Build(g, 0).Solve(storage, reads, writes)
		for root := 1; root < n; root += 1 + n/4 {
			_, got := Build(g, root).Solve(storage, reads, writes)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("seed %d: root %d gives %v, root 0 gives %v", seed, root, got, want)
			}
		}
	}
}
