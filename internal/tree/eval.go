package tree

import (
	"math"

	"netplace/internal/graph"
)

// ObjectCost evaluates the Section 3 cost of placing one object's copies on
// a tree: storage fees, reads (and nothing else) to the nearest copy, and
// for each write at v the weight of the minimal subtree spanning the copies
// and v. Runs in O(n log n) using the edge-local write accounting.
func ObjectCost(g *graph.Graph, storage []float64, reads, writes []int64, copies []int) float64 {
	if len(copies) == 0 {
		return math.Inf(1)
	}
	total := 0.0
	for _, c := range copies {
		total += storage[c]
	}
	// Reads: nearest copy via multi-source Dijkstra.
	dist, _ := g.DijkstraFrom(copies)
	for v, r := range reads {
		if r > 0 {
			total += float64(r) * dist[v]
		}
	}
	// Writes: edge-local rule. Root the tree at copies[0].
	var W float64
	for _, w := range writes {
		W += float64(w)
	}
	if W == 0 {
		return total
	}
	isCopy := make([]bool, g.N())
	for _, c := range copies {
		isCopy[c] = true
	}
	parent, pw, order := g.TreeParents(copies[0])
	wBelow := make([]float64, g.N())
	copiesBelow := make([]int, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		wBelow[v] += float64(writes[v])
		if isCopy[v] {
			copiesBelow[v]++
		}
		if p := parent[v]; p >= 0 {
			wBelow[p] += wBelow[v]
			copiesBelow[p] += copiesBelow[v]
		}
	}
	k := len(copies)
	for v := 0; v < g.N(); v++ {
		if parent[v] < 0 {
			continue
		}
		var weight float64
		switch {
		case copiesBelow[v] > 0 && copiesBelow[v] < k:
			weight = W // copies on both sides: every write crosses
		case copiesBelow[v] == k:
			weight = W - wBelow[v] // all copies below: writes above descend
		default:
			weight = wBelow[v] // no copy below: writes below ascend
		}
		total += weight * pw[v]
	}
	return total
}

// ObjectCostSteiner evaluates the same cost by the literal definition —
// summing fw(v) times the spanning-subtree weight of copies ∪ {v} — in
// O(n^2). Used by tests to validate the edge-local accounting.
func ObjectCostSteiner(g *graph.Graph, storage []float64, reads, writes []int64, copies []int) float64 {
	if len(copies) == 0 {
		return math.Inf(1)
	}
	total := 0.0
	for _, c := range copies {
		total += storage[c]
	}
	dist, _ := g.DijkstraFrom(copies)
	for v, r := range reads {
		if r > 0 {
			total += float64(r) * dist[v]
		}
	}
	for v, w := range writes {
		if w > 0 {
			terms := append([]int{v}, copies...)
			total += float64(w) * g.SubtreeSteiner(terms)
		}
	}
	return total
}

// BruteForce finds an optimal placement for one object on a tree by
// enumerating all non-empty copy sets. Exponential; n <= ~18.
func BruteForce(g *graph.Graph, storage []float64, reads, writes []int64) ([]int, float64) {
	n := g.N()
	if n > 22 {
		panic("tree: brute force instance too large")
	}
	best := math.Inf(1)
	var bestSet []int
	set := make([]int, 0, n)
	for mask := 1; mask < 1<<n; mask++ {
		set = set[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, v)
			}
		}
		if c := ObjectCost(g, storage, reads, writes, set); c < best {
			best = c
			bestSet = append(bestSet[:0], set...)
		}
	}
	return bestSet, best
}
