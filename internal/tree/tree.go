// Package tree implements the paper's Section 3: an algorithm computing an
// optimal placement for the static data management problem on trees in time
// O(|X| * |V| * diam(T) * log(deg(T))).
//
// The dynamic program maintains, per subtree Tv, the paper's sufficient set
// of placements:
//
//   - import tuples under "no copy outside Tv" (the paper's I_R_v family),
//   - import tuples under "a copy exists outside Tv" (the J_R_v family),
//   - export placements as a concave piecewise-linear lower envelope over
//     the outside-copy distance D (the E_D_v family with its optimality
//     intervals, Claims 15/16),
//   - the single empty placement E_v.
//
// Write costs follow Section 3's model — a write at v costs the minimal
// subtree spanning the copies and v — using an edge-local accounting: edge e
// carries write traffic W (the global write count) if copies lie on both
// sides, W - W_below(e) if all copies are below e, and W_below(e) if none
// are. Summing ct(e) times that weight over all edges equals
// sum_w fw(w) * steiner(S ∪ {w}); this identity is what lets each combine
// step remain local (it plays the role of the paper's cost^0_W / cost^1_W
// split).
//
// Arbitrary trees are binarised with balanced gadgets of virtual
// (non-storable, request-free) nodes joined by zero-cost edges, giving the
// paper's O(|T|) nodes and O(diam * log deg) depth.
package tree

import (
	"fmt"

	"netplace/internal/graph"
)

// Tree is a rooted, binarised view of a tree network, ready for the DP.
type Tree struct {
	// Original tree and root.
	G    *graph.Graph
	Root int

	// Binarised structure: nodes 0..BN-1; original node v maps to binOf[v];
	// virtual nodes have orig[b] == -1.
	BN       int
	orig     []int // bin node -> original node or -1
	binOf    []int // original node -> bin node
	parent   []int // bin parent (-1 at root)
	pw       []float64
	children [][]int // at most 2 per bin node
	order    []int   // topological order, parents first
}

// Build roots the tree graph g at root and binarises it. It panics if g is
// not a tree.
func Build(g *graph.Graph, root int) *Tree {
	if !g.IsTree() {
		panic("tree: Build on non-tree graph")
	}
	n := g.N()
	t := &Tree{G: g, Root: root, binOf: make([]int, n)}
	parent, _, order := g.TreeParents(root)

	// children lists in the original tree with edge weights
	type cw struct {
		c int
		w float64
	}
	kids := make([][]cw, n)
	for _, v := range order {
		if parent[v] >= 0 {
			// find edge weight via adjacency scan
			w := 0.0
			g.Neighbors(v, func(u int, ew float64) {
				if u == parent[v] {
					w = ew
				}
			})
			kids[parent[v]] = append(kids[parent[v]], cw{c: v, w: w})
		}
	}

	newBin := func(origNode int) int {
		id := t.BN
		t.BN++
		t.orig = append(t.orig, origNode)
		t.parent = append(t.parent, -1)
		t.pw = append(t.pw, 0)
		t.children = append(t.children, nil)
		if origNode >= 0 {
			t.binOf[origNode] = id
		}
		return id
	}
	link := func(p, c int, w float64) {
		t.parent[c] = p
		t.pw[c] = w
		t.children[p] = append(t.children[p], c)
	}

	// attach hangs the original children list under bin node bp using a
	// balanced binary gadget of virtual nodes.
	var attach func(bp int, list []cw)
	var buildSub func(v int) int
	attach = func(bp int, list []cw) {
		switch len(list) {
		case 0:
			return
		case 1:
			link(bp, buildSub(list[0].c), list[0].w)
		case 2:
			link(bp, buildSub(list[0].c), list[0].w)
			link(bp, buildSub(list[1].c), list[1].w)
		default:
			mid := len(list) / 2
			l := newBin(-1)
			link(bp, l, 0)
			attach(l, list[:mid])
			r := newBin(-1)
			link(bp, r, 0)
			attach(r, list[mid:])
		}
	}
	buildSub = func(v int) int {
		b := newBin(v)
		attach(b, kids[v])
		return b
	}
	rb := buildSub(root)
	if rb != 0 {
		panic("tree: root bin id must be 0")
	}

	// topological order (parents first) over bin nodes: ids are assigned
	// parent-before-child by construction, so identity order works.
	t.order = make([]int, t.BN)
	for i := range t.order {
		t.order[i] = i
	}
	return t
}

// Orig returns the original node for bin node b, or -1 for virtual nodes.
func (t *Tree) Orig(b int) int { return t.orig[b] }

// Validate cross-checks internal invariants; used by tests.
func (t *Tree) Validate() error {
	for b := 0; b < t.BN; b++ {
		if len(t.children[b]) > 2 {
			return fmt.Errorf("tree: bin node %d has %d children", b, len(t.children[b]))
		}
		for _, c := range t.children[b] {
			if t.parent[c] != b {
				return fmt.Errorf("tree: parent mismatch at %d", c)
			}
			if c <= b {
				return fmt.Errorf("tree: child id %d not greater than parent %d", c, b)
			}
		}
	}
	seen := make(map[int]bool)
	for b := 0; b < t.BN; b++ {
		if v := t.orig[b]; v >= 0 {
			if seen[v] {
				return fmt.Errorf("tree: original node %d appears twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != t.G.N() {
		return fmt.Errorf("tree: %d of %d original nodes mapped", len(seen), t.G.N())
	}
	return nil
}
