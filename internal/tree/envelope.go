package tree

import (
	"math"
	"sort"
)

// expLine is one export placement family member: exporting nR requests out
// of the subtree costs C + nR * D when the nearest outside copy is at
// distance D from the subtree root. emit appends the copy nodes of the
// underlying placement; it receives the D the line is used at so nested
// export choices can resolve their own optimality intervals.
type expLine struct {
	C    float64
	nR   float64
	emit func(D float64, out *[]int)
}

// seg is an envelope segment: ln is optimal for D in [from, next seg's
// from). Envelopes are concave piecewise-linear functions represented as
// segments with strictly decreasing slopes, exactly the paper's sorted
// sequences of export tuples with optimality intervals.
type seg struct {
	from float64
	ln   expLine
}

// envelope invariants: segs sorted by from ascending, first from == 0,
// slopes strictly decreasing.
type envelope []seg

// evalAt returns the optimal line and value at distance D.
func (e envelope) evalAt(D float64) (expLine, float64) {
	if len(e) == 0 {
		return expLine{}, math.Inf(1)
	}
	// binary search: last segment with from <= D
	lo, hi := 0, len(e)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if e[mid].from <= D {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	ln := e[lo].ln
	return ln, ln.C + ln.nR*D
}

// envFromLines builds the lower envelope of a set of lines over D >= 0.
func envFromLines(lines []expLine) envelope {
	if len(lines) == 0 {
		return nil
	}
	// Sort by slope descending; ties keep smaller C.
	sort.SliceStable(lines, func(a, b int) bool {
		if lines[a].nR != lines[b].nR {
			return lines[a].nR > lines[b].nR
		}
		return lines[a].C < lines[b].C
	})
	var st []seg
	for _, l := range lines {
		if len(st) > 0 && st[len(st)-1].ln.nR == l.nR {
			continue // duplicate slope, worse or equal C
		}
		for len(st) > 0 {
			t := st[len(st)-1]
			// Crossing of t.ln and l: t has larger slope, so l wins beyond x.
			x := (l.C - t.ln.C) / (t.ln.nR - l.nR)
			if x <= t.from {
				st = st[:len(st)-1] // t never optimal
				continue
			}
			st = append(st, seg{from: x, ln: l})
			break
		}
		if len(st) == 0 {
			st = append(st, seg{from: 0, ln: l})
		}
	}
	return st
}

// envSum adds two envelopes pointwise (both must be non-empty); the result
// is again concave with breakpoints from both inputs. Line emits compose.
func envSum(a, b envelope) envelope {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	var out envelope
	i, j := 0, 0
	from := 0.0
	for {
		la, lb := a[i].ln, b[j].ln
		sum := expLine{C: la.C + lb.C, nR: la.nR + lb.nR, emit: emitBoth(la.emit, lb.emit)}
		out = append(out, seg{from: from, ln: sum})
		// advance to the next breakpoint
		nextA, nextB := math.Inf(1), math.Inf(1)
		if i+1 < len(a) {
			nextA = a[i+1].from
		}
		if j+1 < len(b) {
			nextB = b[j+1].from
		}
		next := math.Min(nextA, nextB)
		if math.IsInf(next, 1) {
			break
		}
		if nextA == next {
			i++
		}
		if nextB == next {
			j++
		}
		from = next
	}
	return out
}

func emitBoth(a, b func(float64, *[]int)) func(float64, *[]int) {
	return func(D float64, out *[]int) {
		if a != nil {
			a(D, out)
		}
		if b != nil {
			b(D, out)
		}
	}
}

// envShift re-parameterises an envelope from the child's distance scale to
// the parent's: the child sees distance D + w when the parent sees D, and
// extraC is added to every line (e.g. the straddling edge's write cost).
// Line emits receive the child-scale distance.
func envShift(a envelope, w, extraC float64) envelope {
	if len(a) == 0 {
		return nil
	}
	// find the segment active at child-distance w
	idx := 0
	for idx+1 < len(a) && a[idx+1].from <= w {
		idx++
	}
	out := make(envelope, 0, len(a)-idx)
	for k := idx; k < len(a); k++ {
		s := a[k]
		nf := s.from - w
		if nf < 0 {
			nf = 0
		}
		child := s.ln
		out = append(out, seg{
			from: nf,
			ln: expLine{
				C:  child.C + child.nR*w + extraC,
				nR: child.nR,
				emit: func(D float64, o *[]int) {
					child.emit(D+w, o)
				},
			},
		})
	}
	return out
}

// envMin takes the pointwise minimum of two envelopes (either may be nil,
// meaning +infinity). Minimum of concave functions is concave.
func envMin(a, b envelope) envelope {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	// Collect candidate breakpoints: all froms plus crossings within
	// overlapping intervals; then rebuild by evaluating both.
	var cuts []float64
	for _, s := range a {
		cuts = append(cuts, s.from)
	}
	for _, s := range b {
		cuts = append(cuts, s.from)
	}
	// crossings
	i, j := 0, 0
	from := 0.0
	for {
		la, lb := a[i].ln, b[j].ln
		if la.nR != lb.nR {
			x := (lb.C - la.C) / (la.nR - lb.nR)
			if x > from {
				cuts = append(cuts, x)
			}
		}
		nextA, nextB := math.Inf(1), math.Inf(1)
		if i+1 < len(a) {
			nextA = a[i+1].from
		}
		if j+1 < len(b) {
			nextB = b[j+1].from
		}
		next := math.Min(nextA, nextB)
		if math.IsInf(next, 1) {
			break
		}
		if nextA == next {
			i++
		}
		if nextB == next {
			j++
		}
		from = next
	}
	sort.Float64s(cuts)
	// de-duplicate cuts
	uniq := cuts[:0]
	for k, c := range cuts {
		if k == 0 || c > uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	var out envelope
	for k, c := range uniq {
		// Pick the winner strictly inside the interval [c, next): at the
		// cut itself (a crossing) the two values tie and floating rounding
		// could select the line that loses immediately after.
		mid := c + 1
		if k+1 < len(uniq) {
			mid = c + (uniq[k+1]-c)/2
		}
		la, va := a.evalAt(mid)
		lb, vb := b.evalAt(mid)
		var win expLine
		if va < vb || (va == vb && la.nR <= lb.nR) {
			win = la
		} else {
			win = lb
		}
		if len(out) > 0 && out[len(out)-1].ln.nR == win.nR && out[len(out)-1].ln.C == win.C {
			continue // same line continues
		}
		out = append(out, seg{from: c, ln: win})
	}
	return out
}

// envAddSlope adds extra slope (requests exiting per unit of D) to every
// line of the envelope; breakpoints are unchanged.
func envAddSlope(a envelope, slope float64) envelope {
	out := make(envelope, len(a))
	for i, s := range a {
		out[i] = seg{from: s.from, ln: expLine{C: s.ln.C, nR: s.ln.nR + slope, emit: s.ln.emit}}
	}
	return out
}

// lineEnv wraps a single line as an envelope.
func lineEnv(l expLine) envelope { return envelope{{from: 0, ln: l}} }
