// Package steiner computes Steiner trees over a network metric: the classic
// metric-closure MST 2-approximation used by the paper's update machinery
// (Claim 2), and an exact Dreyfus–Wagner dynamic program for small terminal
// sets used by the evaluation to measure the MST-vs-Steiner gap.
package steiner

import (
	"math"

	"netplace/internal/graph"
)

// ApproxMST returns the weight of the metric-closure MST over the terminal
// set, which is at most twice the weight of a minimum Steiner tree
// connecting the terminals (the bound the paper's Claim 2 builds on).
// dist is the dense shortest-path matrix of the network.
func ApproxMST(dist [][]float64, terminals []int) float64 {
	return graph.MetricMST(dist, terminals)
}

// Exact computes the weight of a minimum Steiner tree connecting the
// terminals in g via the Dreyfus–Wagner dynamic program:
//
//	S[T][v] = min cost of a tree spanning terminal subset T plus node v.
//
// Complexity O(3^k n + 2^k (m + n) log n) for k terminals; practical for
// k <= ~14. Terminals must be non-empty; a single terminal costs 0.
//
// Only the k terminal rows of the metric are ever computed (one Dijkstra
// each), and the propagation step runs as a potential-seeded Dijkstra on
// the graph instead of a dense-matrix relaxation, so Exact works on large
// sparse networks without an all-pairs matrix.
func Exact(g *graph.Graph, terminals []int) float64 {
	k := len(terminals)
	if k <= 1 {
		return 0
	}
	n := g.N()

	full := 1<<k - 1
	// One scanner serves every terminal row and relaxation pass, so the DP's
	// Dijkstra bookkeeping (heap, stamps) is allocated once, not per subset.
	sc := graph.NewScanner(g)
	// dp[mask][v]: min tree weight spanning terminals in mask united with v.
	dp := make([][]float64, full+1)
	for i, t := range terminals {
		dp[1<<i] = sc.RowInto(t, make([]float64, n))
	}
	for mask := 1; mask <= full; mask++ {
		if mask&(mask-1) == 0 {
			continue // singletons initialised above
		}
		dp[mask] = make([]float64, n)
		for v := range dp[mask] {
			dp[mask][v] = math.Inf(1)
		}
		// Merge step: combine two disjoint submasks meeting at v.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask ^ sub
			if sub < other {
				continue // each split counted once
			}
			for v := 0; v < n; v++ {
				if c := dp[sub][v] + dp[other][v]; c < dp[mask][v] {
					dp[mask][v] = c
				}
			}
		}
		// Propagation step: best meeting point may be elsewhere; relax by
		// shortest paths (min_u dp[mask][u] + d(u, v) is exactly a
		// multi-source Dijkstra with dp[mask] as initial potentials),
		// in place through the shared scanner.
		sc.Relax(dp[mask])
	}
	best := math.Inf(1)
	for v := 0; v < n; v++ {
		if dp[full][v] < best {
			best = dp[full][v]
		}
	}
	return best
}

// ExactMetric computes the minimum Steiner tree weight when the "graph" is a
// complete metric given by dist; nodes are 0..len(dist)-1. Same DP as Exact
// but skips recomputing shortest paths. Used on metric closures.
func ExactMetric(dist [][]float64, terminals []int) float64 {
	k := len(terminals)
	if k <= 1 {
		return 0
	}
	n := len(dist)
	full := 1<<k - 1
	dp := make([][]float64, full+1)
	for m := range dp {
		dp[m] = make([]float64, n)
		for v := range dp[m] {
			dp[m][v] = math.Inf(1)
		}
	}
	for i, t := range terminals {
		for v := 0; v < n; v++ {
			dp[1<<i][v] = dist[t][v]
		}
	}
	for mask := 1; mask <= full; mask++ {
		if mask&(mask-1) == 0 {
			continue
		}
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask ^ sub
			if sub < other {
				continue
			}
			for v := 0; v < n; v++ {
				if c := dp[sub][v] + dp[other][v]; c < dp[mask][v] {
					dp[mask][v] = c
				}
			}
		}
		for v := 0; v < n; v++ {
			best := dp[mask][v]
			for u := 0; u < n; u++ {
				if c := dp[mask][u] + dist[u][v]; c < best {
					best = c
				}
			}
			dp[mask][v] = best
		}
	}
	best := math.Inf(1)
	for v := 0; v < n; v++ {
		if dp[full][v] < best {
			best = dp[full][v]
		}
	}
	return best
}
